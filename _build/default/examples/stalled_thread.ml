(* Robustness: what one stalled reader does to reclamation.

   Run with:  dune exec examples/stalled_thread.exe

   A reader enters a bracket, reads one block, and then stops
   responding (preempted forever, in the paper's terms).  Under basic
   Hyaline — as under EBR — every batch subsequently retired into the
   stalled reader's slot waits for a dereference that never comes, so
   garbage grows with throughput.  Hyaline-S stamps blocks with birth
   eras and skips slots whose published access era is older than a
   batch's oldest member (paper §4.2), so the backlog stops growing
   once the stalled slot's era goes stale.  Same workload, both
   schemes, side by side. *)

let run (module T : Smr.Tracker.S) =
  let module Map = Dstruct.Hash_map.Make (T) in
  let cfg = Smr.Config.paper ~nthreads:2 in
  let m = Map.create ~cfg () in
  (* tid 1: the stalled reader. *)
  Map.enter m ~tid:1;
  ignore (Map.get m ~tid:1 42);
  (* tid 0: a healthy worker churning inserts and deletes. *)
  let checkpoints = ref [] in
  for i = 1 to 60_000 do
    Map.enter m ~tid:0;
    if i land 1 = 0 then ignore (Map.insert m ~tid:0 (i mod 10_000) i)
    else ignore (Map.remove m ~tid:0 ((i - 1) mod 10_000));
    Map.leave m ~tid:0;
    if i mod 10_000 = 0 then
      checkpoints :=
        (i, Smr.Stats.unreclaimed (Map.stats m)) :: !checkpoints
  done;
  (* Release the stalled reader so the process can end cleanly. *)
  Map.leave m ~tid:1;
  (T.name, List.rev !checkpoints)

let () =
  let runs =
    [
      run (module Hyaline_core.Hyaline);
      run (module Hyaline_core.Hyaline_s);
      run (module Smr.Ebr);
      run (module Smr.Ibr);
    ]
  in
  Printf.printf "%-12s" "ops";
  List.iter (fun (name, _) -> Printf.printf "%14s" name) runs;
  print_newline ();
  let nrows = List.length (snd (List.hd runs)) in
  for row = 0 to nrows - 1 do
    let ops, _ = List.nth (snd (List.hd runs)) row in
    Printf.printf "%-12d" ops;
    List.iter
      (fun (_, cps) ->
        let _, unreclaimed = List.nth cps row in
        Printf.printf "%14d" unreclaimed)
      runs;
    print_newline ()
  done;
  print_endline
    "\n(unreclaimed blocks while one reader is stalled: Hyaline and Epoch \
     grow with the operation count; Hyaline-S and IBR plateau.)"
