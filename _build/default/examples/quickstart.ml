(* Quickstart: protecting a Treiber stack with Hyaline.

   Run with:  dune exec examples/quickstart.exe

   The programming model is the paper's Figure 1a: wrap every
   operation in enter/leave, hand unlinked nodes to retire, and that
   is all — the scheme frees each node once no concurrent operation
   can still reach it.  The Treiber module below does the wrapping, so
   this example just drives it from several domains and then shows the
   reclamation ledger. *)

module Stack = Dstruct.Treiber.Make (Hyaline_core.Hyaline)

let () =
  let nthreads = 4 in
  let cfg = { (Smr.Config.paper ~nthreads) with Smr.Config.batch_min = 16 } in
  let stack = Stack.create cfg in

  (* Four domains hammer the same stack: each pushes its own values
     and pops whatever is on top, all lock-free. *)
  let per_thread = 20_000 in
  let popped = Array.make nthreads 0 in
  let domains =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per_thread do
              Stack.push stack ~tid ((tid * per_thread) + i);
              if i mod 2 = 0 then
                match Stack.pop stack ~tid with
                | Some _ -> popped.(tid) <- popped.(tid) + 1
                | None -> ()
            done))
  in
  List.iter Domain.join domains;

  (* Drain what's left. *)
  let rec drain n =
    match Stack.pop stack ~tid:0 with Some _ -> drain (n + 1) | None -> n
  in
  let drained = drain 0 in

  (* Threads are off the hook after leave (transparency): nobody needs
     to unregister; a final flush finalizes the last partial batches. *)
  for tid = 0 to nthreads - 1 do
    Stack.flush stack ~tid
  done;

  let s = Smr.Stats.snapshot (Stack.stats stack) in
  Printf.printf "pushed        : %d\n" (nthreads * per_thread);
  Printf.printf "popped        : %d (+%d drained)\n"
    (Array.fold_left ( + ) 0 popped)
    drained;
  Printf.printf "retired nodes : %d\n" s.Smr.Stats.retires;
  Printf.printf "freed nodes   : %d\n" s.Smr.Stats.frees;
  Printf.printf "unreclaimed   : %d\n" (s.Smr.Stats.retires - s.Smr.Stats.frees);
  assert (s.Smr.Stats.retires = s.Smr.Stats.frees);
  print_endline "quickstart: every retired node was reclaimed. ok"
