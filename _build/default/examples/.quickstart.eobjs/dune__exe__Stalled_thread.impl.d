examples/stalled_thread.ml: Dstruct Hyaline_core List Printf Smr
