examples/dynamic_threads.ml: Domain Dstruct Hyaline_core List Prims Printf Smr
