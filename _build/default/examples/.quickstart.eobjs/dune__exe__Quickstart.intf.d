examples/quickstart.mli:
