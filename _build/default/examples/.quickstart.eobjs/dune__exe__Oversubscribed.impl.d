examples/oversubscribed.ml: Driver Format List Registry Smr Workload
