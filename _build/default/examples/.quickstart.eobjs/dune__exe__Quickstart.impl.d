examples/quickstart.ml: Array Domain Dstruct Hyaline_core List Printf Smr
