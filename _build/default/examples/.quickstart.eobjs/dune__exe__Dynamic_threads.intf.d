examples/dynamic_threads.mli:
