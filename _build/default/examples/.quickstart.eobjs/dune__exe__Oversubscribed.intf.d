examples/oversubscribed.mli:
