(* Transparency: an ever-changing population of short-lived threads.

   Run with:  dune exec examples/dynamic_threads.exe

   This is the server-with-per-client-threads scenario from the
   paper's introduction.  Registration-based schemes (EBR, HP, ...)
   need every thread to register a slot and — worse — block on
   unregistration until its limbo list can drain.  Hyaline has a fixed
   number of slots shared by arbitrarily many threads: a "client"
   below is born, does a burst of hash-map operations bracketed by
   enter/leave, flushes, and dies.  Nothing registers, nothing waits;
   retired batches left behind are finished off by whoever still runs.

   We run several waves of clients (far more client identities than
   slots) and show that reclamation keeps up throughout. *)

module Map = Dstruct.Hash_map.Make (Hyaline_core.Hyaline)

let () =
  let waves = 8 in
  let clients_per_wave = 4 in
  (* k = 8 slots serve all 32 client threads over the run; tids only
     index scratch handles and may be reused across waves. *)
  let cfg =
    { (Smr.Config.paper ~nthreads:clients_per_wave) with Smr.Config.slots = 8 }
  in
  let m = Map.create ~cfg () in
  let rng_seed = ref 1 in
  for wave = 1 to waves do
    let domains =
      List.init clients_per_wave (fun tid ->
          incr rng_seed;
          let seed = !rng_seed in
          Domain.spawn (fun () ->
              let rng = Prims.Rng.create ~seed in
              (* A client session: a burst of inserts/deletes/lookups. *)
              for _ = 1 to 5_000 do
                let k = Prims.Rng.below rng 10_000 in
                Map.enter m ~tid;
                (match Prims.Rng.below rng 3 with
                | 0 -> ignore (Map.insert m ~tid k k)
                | 1 -> ignore (Map.remove m ~tid k)
                | _ -> ignore (Map.get m ~tid k));
                Map.leave m ~tid
              done;
              (* The client finalizes its partial batch and simply
                 exits — no unregistration, no blocking handshake. *)
              Map.flush m ~tid))
    in
    List.iter Domain.join domains;
    let s = Smr.Stats.snapshot (Map.stats m) in
    Printf.printf
      "wave %d: %3d client threads served so far | retired %7d  freed %7d  \
       backlog %5d\n%!"
      wave
      (wave * clients_per_wave)
      s.Smr.Stats.retires s.Smr.Stats.frees
      (s.Smr.Stats.retires - s.Smr.Stats.frees)
  done;
  (* Quiesce: one last bracket from any thread reaps the leftovers of
     the final wave. *)
  for tid = 0 to clients_per_wave - 1 do
    Map.flush m ~tid
  done;
  let s = Smr.Stats.snapshot (Map.stats m) in
  Printf.printf "final: retired %d, freed %d\n" s.Smr.Stats.retires
    s.Smr.Stats.frees;
  assert (s.Smr.Stats.retires = s.Smr.Stats.frees);
  print_endline
    "dynamic_threads: 32 transient threads shared 8 slots, reclamation \
     complete. ok"
