(* Oversubscription: the paper's headline scenario.

   Run with:  dune exec examples/oversubscribed.exe

   When threads outnumber cores, EBR suffers doubly: preempted threads
   hold epochs back (so limbo lists balloon), and every reclamation
   attempt scans all n thread reservations.  Hyaline's tracking is
   asynchronous — the last thread out frees the batch, nobody scans
   anybody — so its reclamation keeps pace no matter how many thread
   identities exist (§6 reports >30% gains at 2x oversubscription).

   This container has a single core, so *every* multi-threaded run
   here is oversubscribed; we sweep the thread count and compare
   Epoch with Hyaline on the hash map. *)

let () =
  let open Workload in
  let structure = Registry.find_structure "hashmap" in
  Format.printf "hash map, write-heavy, 1 core — threads vs schemes@.@.";
  Driver.pp_result_header Format.std_formatter ();
  List.iter
    (fun threads ->
      List.iter
        (fun sname ->
          let scheme = Registry.find_scheme sname in
          let p =
            {
              Driver.default_params with
              Driver.threads;
              duration = 0.5;
              cfg = Smr.Config.paper ~nthreads:threads;
            }
          in
          let r = Driver.run ~structure ~scheme p in
          Driver.pp_result Format.std_formatter r;
          Format.pp_print_flush Format.std_formatter ())
        [ "Epoch"; "Hyaline"; "Hyaline-1" ])
    [ 1; 2; 4; 8 ];
  Format.printf
    "@.(watch avg-unreclaim: Epoch's backlog grows with oversubscription \
     while Hyaline's stays batch-sized.)@."
