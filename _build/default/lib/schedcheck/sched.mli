(** Deterministic bounded interleaving exploration (a miniature
    dscheck/CHESS).

    The paper validated Hyaline by stress-testing on 72-core x86 and
    64-thread POWER machines; this container has one core, so instead
    of hoping the OS produces adversarial preemptions we {e enumerate}
    them: threads run as effect-based fibers that yield at every
    shared-memory access, and the scheduler explores the tree of
    thread-choice decisions — exhaustively up to a budget, then (for
    state spaces that outgrow it) by seeded random sampling.

    Programs under test must use {!Shared} cells (not [Stdlib.Atomic])
    and be deterministic apart from scheduling. *)

exception Deadlock
(** Raised if no fiber can run but some have not finished (a program
    blocked forever — must not happen for lock-free code). *)

module Shared : sig
  (** Shared-memory cells: each access is one atomic step and one
      scheduling point. *)

  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Physical-equality CAS, like [Stdlib.Atomic]. *)

  val fetch_and_add : int t -> int -> int
  val exchange : 'a t -> 'a -> 'a
end

val yield : unit -> unit
(** Extra scheduling point, usable inside a program to model a
    non-atomic step boundary. *)

type stats = {
  schedules : int;  (** distinct schedules executed *)
  exhausted : bool;  (** true if the whole tree fit in the budget *)
  max_depth : int;  (** longest schedule seen (in scheduling points) *)
}

type scenario = unit -> (unit -> unit) list * (unit -> unit)
(** A scenario builds {e fresh} shared state on every call and returns
    the fiber bodies plus the end-state [check] over that state.
    (State must be rebuilt per schedule — the explorer replays from
    scratch.) *)

val explore : ?max_schedules:int -> scenario:scenario -> unit -> stats
(** [explore ~scenario ()] runs every interleaving of the scenario's
    fibers (depth-first over scheduling decisions), calling its check
    in the final state of each complete schedule; exploration stops
    after [max_schedules] (default [50_000]) runs.  Exceptions from
    fibers or checks propagate (schedules are deterministic, so
    rerunning reproduces them). *)

val sample : seed:int -> runs:int -> scenario:scenario -> unit -> stats
(** [sample ~seed ~runs ...] executes [runs] uniformly random
    schedules — for state spaces too large to enumerate. *)

val pct :
  seed:int -> runs:int -> depth:int -> scenario:scenario -> unit -> stats
(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS'10):
    each run assigns the fibers random priorities, always schedules
    the highest-priority runnable fiber, and demotes the running fiber
    below everyone at [depth - 1] pre-drawn step indices.  For a bug
    requiring [d] ordering constraints this finds it with probability
    >= 1/(n k^(d-1)) per run — far better than uniform sampling for
    rare races.  Use [depth] 2-4. *)
