exception Deadlock

type _ Effect.t += Yield : unit Effect.t

let yield () = Effect.perform Yield

module Shared = struct
  type 'a t = { mutable v : 'a }

  let make v = { v }

  let get c =
    yield ();
    c.v

  let set c v =
    yield ();
    c.v <- v

  let compare_and_set c old v =
    yield ();
    if c.v == old then begin
      c.v <- v;
      true
    end
    else false

  let fetch_and_add c d =
    yield ();
    let o = c.v in
    c.v <- o + d;
    o

  let exchange c v =
    yield ();
    let o = c.v in
    c.v <- v;
    o
end

type stats = { schedules : int; exhausted : bool; max_depth : int }
type scenario = unit -> (unit -> unit) list * (unit -> unit)

(* End-of-schedule checks run outside the scheduler, with no
   concurrency left; their [Shared] accesses just pass through. *)
let run_sequential f =
  Effect.Deep.match_with f ()
    {
      Effect.Deep.retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }
type fiber_state = Not_started | Ready | Done

(* Execute one complete schedule.  [decide step runnables] picks the
   fiber to advance; the trace of (chosen, runnables) pairs is
   returned so the explorer can branch on the alternatives. *)
let run_once ~programs ~decide =
  let progs = Array.of_list programs in
  let n = Array.length progs in
  let conts : (unit, unit) Effect.Deep.continuation option array =
    Array.make n None
  in
  let state = Array.make n Not_started in
  let handler i : (unit, unit) Effect.Deep.handler =
    {
      Effect.Deep.retc = (fun () -> state.(i) <- Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  conts.(i) <- Some k;
                  state.(i) <- Ready)
          | _ -> None);
    }
  in
  let step i =
    match state.(i) with
    | Not_started -> Effect.Deep.match_with progs.(i) () (handler i)
    | Ready -> (
        match conts.(i) with
        | Some k ->
            conts.(i) <- None;
            state.(i) <- Done (* overwritten on the next yield *);
            Effect.Deep.continue k ()
        | None -> assert false)
    | Done -> assert false
  in
  let trace = ref [] in
  let idx = ref 0 in
  let rec loop () =
    let runnable =
      List.filter
        (fun i -> state.(i) <> Done)
        (List.init n Fun.id)
    in
    match runnable with
    | [] -> ()
    | _ ->
        let chosen = decide !idx runnable in
        if not (List.mem chosen runnable) then
          invalid_arg "Sched: decision picked a non-runnable fiber";
        trace := (chosen, runnable) :: !trace;
        incr idx;
        step chosen;
        loop ()
  in
  loop ();
  if Array.exists (fun s -> s <> Done) state then raise Deadlock;
  Array.of_list (List.rev !trace)

let explore ?(max_schedules = 50_000) ~scenario () =
  let schedules = ref 0 in
  let budget_hit = ref false in
  let max_depth = ref 0 in
  let rec dfs prefix =
    if !schedules >= max_schedules then budget_hit := true
    else begin
      incr schedules;
      let programs, check = scenario () in
      let plen = Array.length prefix in
      let trace =
        run_once ~programs ~decide:(fun idx runnable ->
            if idx < plen then prefix.(idx) else List.hd runnable)
      in
      run_sequential check;
      let depth = Array.length trace in
      if depth > !max_depth then max_depth := depth;
      (* Branch on every non-default alternative past the prefix; the
         first-deviation decomposition makes each schedule unique. *)
      for i = depth - 1 downto plen do
        let chosen, runnable = trace.(i) in
        List.iter
          (fun alt ->
            if alt <> chosen && not !budget_hit then begin
              let prefix' = Array.init (i + 1) (fun j -> fst trace.(j)) in
              prefix'.(i) <- alt;
              dfs prefix'
            end)
          runnable
      done
    end
  in
  dfs [||];
  { schedules = !schedules; exhausted = not !budget_hit; max_depth = !max_depth }

let sample ~seed ~runs ~scenario () =
  let rng = Prims.Rng.create ~seed in
  let max_depth = ref 0 in
  for _ = 1 to runs do
    let programs, check = scenario () in
    let trace =
      run_once ~programs ~decide:(fun _ runnable ->
          List.nth runnable (Prims.Rng.below rng (List.length runnable)))
    in
    run_sequential check;
    if Array.length trace > !max_depth then max_depth := Array.length trace
  done;
  { schedules = runs; exhausted = false; max_depth = !max_depth }

let pct ~seed ~runs ~depth ~scenario () =
  if depth < 1 then invalid_arg "Sched.pct: depth < 1";
  let rng = Prims.Rng.create ~seed in
  let max_depth = ref 0 in
  (* Track schedule lengths to place change points meaningfully. *)
  let est_len = ref 64 in
  for _ = 1 to runs do
    let programs, check = scenario () in
    let n = List.length programs in
    (* Distinct random priorities; higher wins. *)
    let prio = Array.init n (fun i -> (Prims.Rng.below rng 1_000_000 * n) + i) in
    let change_points =
      Array.init (depth - 1) (fun _ -> Prims.Rng.below rng (max 1 !est_len))
    in
    let trace =
      run_once ~programs ~decide:(fun step runnable ->
          (* Demote-then-pick: if this step is a change point, demote
             the currently highest-priority runnable fiber. *)
          let best () =
            List.fold_left
              (fun acc i ->
                match acc with
                | None -> Some i
                | Some j -> if prio.(i) > prio.(j) then Some i else Some j)
              None runnable
            |> Option.get
          in
          if Array.exists (fun cp -> cp = step) change_points then begin
            let b = best () in
            let lowest = Array.fold_left min prio.(0) prio in
            prio.(b) <- lowest - 1
          end;
          best ())
    in
    run_sequential check;
    let d = Array.length trace in
    if d > !max_depth then max_depth := d;
    est_len := max 8 d
  done;
  { schedules = runs; exhausted = false; max_depth = !max_depth }
