(** Executable model of the simplified (single-list, §3.1) Hyaline
    algorithm over {!Sched.Shared} cells, for exhaustive interleaving
    checking.

    The model is the paper's simplest form: one retirement list, each
    retired node its own batch (NRef on the node itself, [Adjs = 0]
    because [k = 1]).  Every shared access is a scheduling point, so
    {!Sched.explore} enumerates all the races between [enter],
    [retire]'s insertion + predecessor adjustment, and [leave]'s
    decrement/detach/traverse — including the stall of Figure 2a.

    Safety is asserted {e inside} the model: decrementing or linking
    through a freed node raises, as does freeing twice.  Use
    {!check_quiescent} as the end-of-schedule check. *)

type t
(** One model instance (head + allocation site). *)

type node

val create : unit -> t

val make_node : t -> string -> node
(** A node to be retired, labelled for error messages. *)

type handle

val enter : t -> handle
val retire : t -> node -> unit

val leave : t -> handle -> unit

val check_quiescent : t -> unit
(** After all fibers finished: head is [{0, null}], and every retired
    node was freed exactly once.  @raise Failure otherwise. *)

val unsafe_free : node -> unit
(** Free a node with no protocol whatsoever — exists only so the test
    suite can demonstrate that the model's safety assertions actually
    fire under some interleaving. *)
