module Shared = Sched.Shared

type node = {
  label : string;
  next : node option Shared.t;
  nref : int Shared.t;
  retired : bool Shared.t;
  freed : bool Shared.t;
}

type head_val = { href : int; hptr : node option }
type t = { head : head_val Shared.t; mutable nodes : node list }
type handle = node option

let create () = { head = Shared.make { href = 0; hptr = None }; nodes = [] }

let make_node t label =
  let n =
    {
      label;
      next = Shared.make None;
      nref = Shared.make 0;
      retired = Shared.make false;
      freed = Shared.make false;
    }
  in
  t.nodes <- n :: t.nodes;
  n

let same_handle a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

let fail fmt = Printf.ksprintf failwith fmt

let assert_live ctx n =
  if Shared.get n.freed then fail "%s: use-after-free of %s" ctx n.label

let free n =
  if Shared.exchange n.freed true then fail "double free of %s" n.label

(* adjust (paper Fig. 3): with k = 1 the Adjs constant is 0, so the
   counter is plain signed arithmetic and zero means "all references
   accounted for". *)
let add_ref n v =
  let old = Shared.fetch_and_add n.nref v in
  if old + v = 0 then free n

let rec enter t =
  let h = Shared.get t.head in
  if Shared.compare_and_set t.head h { h with href = h.href + 1 } then h.hptr
  else enter t

let rec retire_loop t n =
  let h = Shared.get t.head in
  if h.href = 0 then
    (* Empty slot: the batch's only reference credit arrives
       immediately (REF #1#/#3# collapsed for k = 1). *)
    add_ref n 0
  else begin
    Shared.set n.next h.hptr;
    if Shared.compare_and_set t.head h { h with hptr = Some n } then
      (* REF #2#: the displaced predecessor gets the HRef snapshot. *)
      match h.hptr with
      | Some pred ->
          assert_live "retire adjust" pred;
          add_ref pred h.href
      | None -> ()
    else retire_loop t n
  end

let retire t n =
  if Shared.exchange n.retired true then fail "double retire of %s" n.label;
  retire_loop t n

let traverse first handle =
  let rec go = function
    | None -> ()
    | Some c ->
        assert_live "traverse" c;
        let nx = Shared.get c.next in
        add_ref c (-1);
        if not (same_handle (Some c) handle) then go nx
  in
  go first

let rec leave t handle =
  let h = Shared.get t.head in
  let curr = h.hptr in
  let stayed = same_handle curr handle in
  let next =
    if stayed then None
    else begin
      let c = Option.get curr in
      assert_live "leave first-node" c;
      Shared.get c.next
    end
  in
  let new_hptr = if h.href = 1 then None else curr in
  if Shared.compare_and_set t.head h { href = h.href - 1; hptr = new_hptr }
  then begin
    (if h.href = 1 then
       match curr with
       | Some c ->
           (* Detached: treat the first node as a predecessor
              (Fig. 3 lines 16-17; Adjs = 0 here). *)
           assert_live "leave detach" c;
           add_ref c 0
       | None -> ());
    if not stayed then traverse next handle
  end
  else leave t handle

let unsafe_free = free

let check_quiescent t =
  let h = Shared.get t.head in
  if h.href <> 0 then fail "quiescent HRef = %d" h.href;
  if h.hptr <> None then fail "quiescent HPtr non-null";
  List.iter
    (fun n ->
      let retired = Shared.get n.retired and freed = Shared.get n.freed in
      if retired && not freed then fail "%s retired but never freed" n.label;
      if freed && not retired then fail "%s freed without retire" n.label)
    t.nodes
