lib/schedcheck/hyaline_model.ml: List Option Printf Sched
