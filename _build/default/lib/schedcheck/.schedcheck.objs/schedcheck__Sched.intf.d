lib/schedcheck/sched.mli:
