lib/schedcheck/head_sched.ml: Hyaline_core Sched
