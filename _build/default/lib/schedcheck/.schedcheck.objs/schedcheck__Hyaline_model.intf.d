lib/schedcheck/hyaline_model.mli:
