lib/schedcheck/sched.ml: Array Effect Fun List Option Prims
