lib/schedcheck/head_sched.mli: Hyaline_core
