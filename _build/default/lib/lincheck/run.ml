let run_map (module M : Dstruct.Map_intf.S) ~cfg ~threads ~ops_per_thread
    ~key_range ~seed =
  let m = M.create ~cfg () in
  let h = History.create () in
  let worker tid () =
    let rng = Prims.Rng.create ~seed:(seed + (7919 * tid)) in
    for _ = 1 to ops_per_thread do
      let k = Prims.Rng.below rng key_range in
      let v = Prims.Rng.below rng 1000 in
      M.enter m ~tid;
      (match Prims.Rng.below rng 4 with
      | 0 ->
          ignore
            (History.record h ~tid (History.Insert (k, v)) (fun () ->
                 History.Bool (M.insert m ~tid k v)))
      | 1 ->
          ignore
            (History.record h ~tid (History.Remove k) (fun () ->
                 History.Bool (M.remove m ~tid k)))
      | 2 ->
          ignore
            (History.record h ~tid (History.Get k) (fun () ->
                 History.Opt (M.get m ~tid k)))
      | _ ->
          ignore
            (History.record h ~tid (History.Put (k, v)) (fun () ->
                 History.Bool (M.put m ~tid k v))));
      M.leave m ~tid
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  History.events h
