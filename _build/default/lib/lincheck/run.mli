(** Drive a benchmark map concurrently while recording a history. *)

val run_map :
  (module Dstruct.Map_intf.S) ->
  cfg:Smr.Config.t ->
  threads:int ->
  ops_per_thread:int ->
  key_range:int ->
  seed:int ->
  History.event list
(** [run_map (module M) ~cfg ~threads ~ops_per_thread ~key_range ~seed]
    spawns [threads] domains, each performing [ops_per_thread] random
    operations (uniform over insert/remove/get/put with keys below
    [key_range]) inside enter/leave brackets, recording every
    invocation/response.  Keep [threads * ops_per_thread <= 62] for
    {!History.check}. *)
