lib/lincheck/history.ml: Array Atomic Buffer Format Hashtbl Int List Map
