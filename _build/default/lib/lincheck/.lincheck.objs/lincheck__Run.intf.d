lib/lincheck/run.mli: Dstruct History Smr
