lib/lincheck/run.ml: Domain Dstruct History List Prims
