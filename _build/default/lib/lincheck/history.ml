type op = Insert of int * int | Remove of int | Get of int | Put of int * int
type result = Bool of bool | Opt of int option

type event = { tid : int; op : op; result : result; inv : int; res : int }

let pp_op ppf = function
  | Insert (k, v) -> Format.fprintf ppf "insert(%d,%d)" k v
  | Remove k -> Format.fprintf ppf "remove(%d)" k
  | Get k -> Format.fprintf ppf "get(%d)" k
  | Put (k, v) -> Format.fprintf ppf "put(%d,%d)" k v

let pp_result ppf = function
  | Bool b -> Format.fprintf ppf "%b" b
  | Opt None -> Format.fprintf ppf "None"
  | Opt (Some v) -> Format.fprintf ppf "Some %d" v

let pp_event ppf e =
  Format.fprintf ppf "[t%d %a -> %a @@%d..%d]" e.tid pp_op e.op pp_result
    e.result e.inv e.res

type t = { clock : int Atomic.t; log : event list Atomic.t }

let create () = { clock = Atomic.make 0; log = Atomic.make [] }

let record t ~tid op f =
  let inv = Atomic.fetch_and_add t.clock 1 in
  let result = f () in
  let res = Atomic.fetch_and_add t.clock 1 in
  let e = { tid; op; result; inv; res } in
  let rec push () =
    let old = Atomic.get t.log in
    if not (Atomic.compare_and_set t.log old (e :: old)) then push ()
  in
  push ();
  result

let events t = List.rev (Atomic.get t.log)

module IntMap = Map.Make (Int)

(* Sequential specification: what each op returns in a given state and
   the state it leaves behind. *)
let apply state = function
  | Insert (k, v) ->
      if IntMap.mem k state then (Bool false, state)
      else (Bool true, IntMap.add k v state)
  | Remove k ->
      if IntMap.mem k state then (Bool true, IntMap.remove k state)
      else (Bool false, state)
  | Get k -> (Opt (IntMap.find_opt k state), state)
  | Put (k, v) -> (Bool (not (IntMap.mem k state)), IntMap.add k v state)

let check evs =
  let evs = Array.of_list evs in
  let n = Array.length evs in
  if n > 62 then invalid_arg "History.check: more than 62 events";
  if n = 0 then true
  else begin
    (* Memoize failed (remaining-set, state) configurations.  The same
       remaining set can be reached with different states through
       different linearization prefixes, so the state is part of the
       key. *)
    let failed = Hashtbl.create 1024 in
    let key mask state = (mask, IntMap.bindings state) in
    let rec search mask state =
      if mask = 0 then true
      else if Hashtbl.mem failed (key mask state) then false
      else begin
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let c = !i in
          incr i;
          if mask land (1 lsl c) <> 0 then begin
            (* c may linearize first iff no other remaining operation
               responded before c was invoked. *)
            let minimal = ref true in
            for o = 0 to n - 1 do
              if
                o <> c
                && mask land (1 lsl o) <> 0
                && evs.(o).res < evs.(c).inv
              then minimal := false
            done;
            if !minimal then begin
              let r, state' = apply state evs.(c).op in
              if r = evs.(c).result then
                if search (mask lxor (1 lsl c)) state' then ok := true
            end
          end
        done;
        if not !ok then Hashtbl.replace failed (key mask state) ();
        !ok
      end
    in
    search ((1 lsl n) - 1) IntMap.empty
  end

let check_exn evs =
  if not (check evs) then begin
    let buf = Buffer.create 512 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "history is not linearizable:@.";
    List.iter (fun e -> Format.fprintf ppf "  %a@." pp_event e) evs;
    Format.pp_print_flush ppf ();
    failwith (Buffer.contents buf)
  end
