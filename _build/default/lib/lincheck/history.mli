(** Concurrent histories and a linearizability checker (Wing & Gong)
    for the integer-map interface.

    The paper's data structures are advertised as linearizable maps;
    the stress tests validate structural invariants, and this module
    validates the {e behaviour}: record each operation's invocation
    and response instants during a real concurrent run, then search
    for a sequential order of the operations that (a) respects
    real-time precedence (if A responded before B was invoked, A comes
    first) and (b) replays correctly against the sequential map
    specification.

    The search is the classic Wing-Gong enumeration with memoization
    on (remaining-operation set, abstract state); exponential in the
    worst case, fine for the short, high-contention histories the
    tests generate (up to 62 operations — the remaining set is a
    single int bitmask). *)

type op =
  | Insert of int * int
  | Remove of int
  | Get of int
  | Put of int * int

type result = Bool of bool | Opt of int option

type event = {
  tid : int;
  op : op;
  result : result;
  inv : int;  (** global sequence number at invocation *)
  res : int;  (** global sequence number at response *)
}

val pp_event : Format.formatter -> event -> unit

type t
(** A mutable history recorder, shared between threads. *)

val create : unit -> t

val record : t -> tid:int -> op -> (unit -> result) -> result
(** [record h ~tid op f] stamps the invocation, runs [f] (which
    performs the operation), stamps the response, and logs the event.
    Thread-safe and lock-free. *)

val events : t -> event list
(** All recorded events (quiescent use). *)

val check : event list -> bool
(** Is the history linearizable against the sequential int-map
    specification?
    @raise Invalid_argument on histories of more than 62 events. *)

val check_exn : event list -> unit
(** @raise Failure with a readable description if not linearizable. *)
