(** Deliberately broken "scheme" that frees blocks the moment they are
    retired, with no protection whatsoever.

    Exists only to prove the reclamation-safety detector works: under
    concurrent load the pool recycles blocks out from under readers
    and the [Hdr] lifecycle checks (or data-structure invariant
    checks) fire.  Never use outside the test suite. *)

include Tracker.S
