type 'a block = {
  mutable v : 'a;
  count : int Atomic.t;
  on_free : 'a block -> unit;
}

type 'a cell = 'a block option Atomic.t

(* Freed blocks park their counter here; stray acquire bumps (undone
   by their paired decrements) oscillate around the bias instead of
   re-crossing the 1 -> 0 edge.  Stray imbalance is bounded by the
   number of concurrent acquirers, far below the bias. *)
let dead_bias = 1 lsl 40

let make_block v ~on_free = { v; count = Atomic.make 1; on_free }

let reset b v =
  ignore (Atomic.fetch_and_add b.count (1 - dead_bias));
  b.v <- v;
  b

let value b = b.v

let same a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

(* The final decrement must park the counter at the bias in the same
   atomic step: if the count ever sat at plain 0, a stray acquire bump
   (0 -> 1) and its undo (1 -> 0) would re-trigger the free.  Hence a
   CAS loop rather than fetch-and-add — release is the slow path
   anyway, which is rather the point of the LFRC row of Table 1. *)
let rec release b =
  let c = Atomic.get b.count in
  if c = 1 then begin
    if Atomic.compare_and_set b.count 1 dead_bias then b.on_free b
    else release b
  end
  else if not (Atomic.compare_and_set b.count c (c - 1)) then release b

let rec acquire (cell : 'a cell) =
  match Atomic.get cell with
  | None -> None
  | Some b as seen ->
      (* The bump may land on a freed (type-stable) block; the
         revalidation detects that the link moved on and undoes it. *)
      ignore (Atomic.fetch_and_add b.count 1);
      if same (Atomic.get cell) seen then Some b
      else begin
        release b;
        acquire cell
      end

let link target = Atomic.make target

let rec cas cell ~expect target =
  let cur = Atomic.get cell in
  if not (same cur expect) then false
  else if Atomic.compare_and_set cell cur target then true
  else cas cell ~expect target

let peek_count b = Atomic.get b.count
