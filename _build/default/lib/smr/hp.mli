(** Hazard pointers (Michael, 2004).

    Each tracked dereference publishes the target block in a
    per-thread protection slot and re-reads the link to validate the
    publication; a retired block is freed only when it appears in no
    slot.  Robust and memory-frugal but the slowest baseline: every
    traversal step pays a publication write plus a validating re-read
    (on hardware, also a fence), and scans are [O(mn)]. *)

include Tracker.S
