(** No reclamation at all — the paper's [Leaky] baseline (§6).

    Retired blocks are counted but never freed, so the pool never
    recycles them; throughput measured over it is an upper bound for
    schemes that pay reclamation costs (though, as the paper notes,
    recycling can occasionally beat leaking because a warm free list
    is cheaper than fresh allocation). *)

include Tracker.S
