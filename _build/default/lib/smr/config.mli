(** Shared configuration for all SMR schemes.

    A single record carries every knob any scheme needs, so the
    benchmark harness can instantiate all schemes uniformly; each
    scheme reads only the fields relevant to it (mirroring the shared
    command line of the Wen et al. framework). *)

type t = {
  nthreads : int;
      (** Maximum number of worker threads (thread ids are
          [0..nthreads-1]).  Schemes with per-thread state size their
          arrays from this; Hyaline proper does {e not} need it for
          correctness (it is transparent) but uses it to size the
          per-thread handle scratch space of the harness. *)
  slots : int;
      (** Hyaline(-S): number of slots [k]; must be a power of two.
          The paper caps it at 128 ([next_pow2 cores]). *)
  batch_min : int;
      (** Hyaline: minimum nodes per retirement batch; the effective
          batch size is [max batch_min (slots + 1)] as required by
          §3.2.  The paper's evaluation uses 64. *)
  hazards : int;
      (** HP / HE: per-thread protection slots [m]. *)
  epoch_freq : int;
      (** EBR / IBR / HE / Hyaline-S: advance the global epoch/era
          clock every [epoch_freq] allocations ([Freq] in Fig. 5). *)
  empty_freq : int;
      (** Baselines: attempt limbo-list reclamation every
          [empty_freq] retires. *)
  ack_threshold : int;
      (** Hyaline-S: Ack value past which a slot is presumed occupied
          by stalled threads (the paper suggests 8192). *)
  adaptive : bool;
      (** Hyaline-S: enable §4.3 adaptive slot resizing. *)
  check_uaf : bool;
      (** Verify on every tracked dereference that the block has not
          been freed (the pool-reuse use-after-free detector). *)
}

val default : t
(** [nthreads=8, slots=8, batch_min=8, hazards=8, epoch_freq=16,
    empty_freq=32, ack_threshold=8192, adaptive=false,
    check_uaf=false] — small defaults suited to unit tests. *)

val paper : nthreads:int -> t
(** The paper's §6 parameters: [slots = 128], [batch_min = 64],
    [epoch_freq = 150], [empty_freq = 120], [ack_threshold = 8192]. *)

val validate : t -> unit
(** @raise Invalid_argument if a field is out of range (non-positive
    counts, [slots] not a power of two, ...). *)

val is_pow2 : int -> bool
