(** Hazard eras (Ramalhete & Correia, SPAA'17).

    Hazard-pointer structure with era values in the protection slots:
    each tracked dereference publishes the current era clock in the
    slot [idx] (re-reading until the clock is stable), and a retired
    block — stamped with birth and retire eras — is freed only when no
    published era falls inside its [birth, retire] lifetime.  Robust,
    with HP-like [O(mn)] scans, but era-grained rather than
    pointer-grained, so reads are cheaper than HP's. *)

include Tracker.S
