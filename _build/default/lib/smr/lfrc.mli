(** Lock-free reference counting (LFRC) — Table 1's counted-pointer
    row (Valois PODC'95, with the Michael & Scott correction, in its
    type-stable-memory form).

    Unlike every other scheme here, LFRC does not fit the
    {!Tracker.S} interface: it is {e intrusive} — every shared link is
    a counted pointer, every dereference pays an atomic
    increment-validate-(later)-decrement, and blocks free themselves
    when their count drains.  That intrusiveness and the read-path
    cost are exactly the paper's qualitative verdict ("very slow,
    especially reading"), which the Table 1 microbenchmarks quantify
    against this module.

    The Michael-Scott correction assumes {e type-stable memory}:
    freed blocks are recycled as blocks (never returned to the OS), so
    the acquire fast path may harmlessly bump the count of a block
    that was freed between the pointer load and the increment — the
    subsequent link revalidation detects it and undoes the bump.  This
    repository's {!Mpool} provides exactly that discipline.  A freed
    block's counter parks at a large {e dead bias} so stray
    bump/undo pairs on it can never re-trigger the 1->0 edge. *)

type 'a block
(** A reference-counted block holding an ['a]. *)

type 'a cell = 'a block option Atomic.t
(** A shared counted link (the count lives in the target block). *)

val make_block : 'a -> on_free:('a block -> unit) -> 'a block
(** A fresh block with count 1 — the creator's reference.  [on_free]
    runs exactly once, when the count drains to zero. *)

val reset : 'a block -> 'a -> 'a block
(** Recycle a previously freed block (type-stable reuse): rearm the
    counter to 1 and store the new value. *)

val value : 'a block -> 'a

val acquire : 'a cell -> 'a block option
(** Protected read: load, bump the target's count, revalidate the
    link; undo and retry if the link moved.  Pair every [Some] result
    with {!release}. *)

val release : 'a block -> unit
(** Drop one reference; frees the block (running [on_free]) when the
    count drains to zero. *)

val link : 'a block option -> 'a cell
(** A new cell; linking a block consumes one reference. *)

val cas : 'a cell -> expect:'a block option -> 'a block option -> bool
(** Swing the link.  Reference accounting is the caller's: the new
    target must carry a donated reference; on success the caller
    receives the old target's link reference (and typically
    {!release}s it after retiring the block from the structure). *)

val peek_count : 'a block -> int
(** Racy; tests only. *)
