lib/smr/limbo.mli: Hdr
