lib/smr/limbo.ml: Hdr
