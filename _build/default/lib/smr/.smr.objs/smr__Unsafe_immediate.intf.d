lib/smr/unsafe_immediate.mli: Tracker
