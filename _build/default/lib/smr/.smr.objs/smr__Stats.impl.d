lib/smr/stats.ml: Atomic Format
