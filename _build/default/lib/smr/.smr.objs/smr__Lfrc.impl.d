lib/smr/lfrc.ml: Atomic
