lib/smr/stats.mli: Format
