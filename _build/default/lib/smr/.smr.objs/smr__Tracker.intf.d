lib/smr/tracker.mli: Atomic Config Hdr Stats
