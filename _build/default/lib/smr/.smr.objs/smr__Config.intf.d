lib/smr/config.mli:
