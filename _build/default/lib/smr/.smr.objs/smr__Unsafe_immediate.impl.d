lib/smr/unsafe_immediate.ml: Atomic Config Hdr Stats Tracker
