lib/smr/he.ml: Array Atomic Config Hdr Limbo Stats Tracker
