lib/smr/hdr.ml: Atomic Format
