lib/smr/hp.ml: Array Atomic Config Hashtbl Hdr Limbo Stats Tracker
