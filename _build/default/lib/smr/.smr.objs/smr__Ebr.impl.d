lib/smr/ebr.ml: Array Atomic Config Hdr Limbo Stats Tracker
