lib/smr/ibr.ml: Array Atomic Config Hdr Limbo Stats Tracker
