lib/smr/lfrc.mli: Atomic
