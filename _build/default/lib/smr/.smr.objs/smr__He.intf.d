lib/smr/he.mli: Tracker
