lib/smr/config.ml:
