lib/smr/ibr.mli: Tracker
