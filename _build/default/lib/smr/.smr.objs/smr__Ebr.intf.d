lib/smr/ebr.mli: Tracker
