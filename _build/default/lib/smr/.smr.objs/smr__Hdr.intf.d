lib/smr/hdr.mli: Atomic Format
