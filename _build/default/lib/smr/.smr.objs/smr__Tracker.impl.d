lib/smr/tracker.ml: Atomic Config Hdr Stats
