lib/smr/hp.mli: Tracker
