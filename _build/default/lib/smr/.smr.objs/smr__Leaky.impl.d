lib/smr/leaky.ml: Atomic Config Hdr Stats Tracker
