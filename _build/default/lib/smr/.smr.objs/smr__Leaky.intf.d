lib/smr/leaky.mli: Tracker
