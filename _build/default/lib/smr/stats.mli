(** Reclamation statistics shared by every scheme.

    The paper's second metric (Figures 9, 12, 14, 16) is the average
    number of {e retired but not yet reclaimed} objects, sampled during
    the run; trackers bump these counters on each transition and the
    workload harness samples [unreclaimed]. *)

type t

val create : unit -> t

val on_alloc : t -> unit
val on_retire : t -> unit
val on_free : t -> unit

val allocs : t -> int
val retires : t -> int
val frees : t -> int

val unreclaimed : t -> int
(** [retires - frees] at the moment of the call: blocks whose storage
    an unmanaged-heap program could not yet have returned to the OS. *)

type snapshot = { allocs : int; retires : int; frees : int }

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
