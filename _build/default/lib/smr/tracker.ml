module type S = sig
  type t

  val name : string
  val robust : bool
  val transparent : bool
  val create : Config.t -> t
  val enter : t -> tid:int -> unit
  val leave : t -> tid:int -> unit
  val trim : t -> tid:int -> unit
  val alloc_hook : t -> tid:int -> Hdr.t -> unit
  val read : t -> tid:int -> idx:int -> 'a Atomic.t -> ('a -> Hdr.t) -> 'a
  val transfer : t -> tid:int -> from_idx:int -> to_idx:int -> unit
  val retire : t -> tid:int -> Hdr.t -> unit
  val flush : t -> tid:int -> unit
  val stats : t -> Stats.t
end

type packed = (module S)

let free_block stats hdr =
  Hdr.set_freed hdr;
  hdr.Hdr.free_hook ();
  Stats.on_free stats

let retire_block stats hdr =
  Hdr.set_retired hdr;
  Stats.on_retire stats
