type t = {
  nthreads : int;
  slots : int;
  batch_min : int;
  hazards : int;
  epoch_freq : int;
  empty_freq : int;
  ack_threshold : int;
  adaptive : bool;
  check_uaf : bool;
}

let default =
  {
    nthreads = 8;
    slots = 8;
    batch_min = 8;
    hazards = 8;
    epoch_freq = 16;
    empty_freq = 32;
    ack_threshold = 8192;
    adaptive = false;
    check_uaf = false;
  }

let paper ~nthreads =
  {
    nthreads;
    slots = 128;
    batch_min = 64;
    hazards = 16;
    epoch_freq = 150;
    empty_freq = 120;
    ack_threshold = 8192;
    adaptive = false;
    check_uaf = false;
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate t =
  if t.nthreads <= 0 then invalid_arg "Config: nthreads <= 0";
  if not (is_pow2 t.slots) then invalid_arg "Config: slots not a power of two";
  if t.batch_min <= 0 then invalid_arg "Config: batch_min <= 0";
  if t.hazards <= 0 then invalid_arg "Config: hazards <= 0";
  if t.epoch_freq <= 0 then invalid_arg "Config: epoch_freq <= 0";
  if t.empty_freq <= 0 then invalid_arg "Config: empty_freq <= 0";
  if t.ack_threshold <= 0 then invalid_arg "Config: ack_threshold <= 0"
