(** Epoch-based reclamation (Fraser; Hart et al.) — the paper's
    [Epoch] baseline.

    The variant follows the Wen et al. framework: a global epoch clock
    advanced every [Config.epoch_freq] allocations; threads publish
    the clock value on [enter] and an infinite reservation on [leave];
    retired blocks are stamped with the clock and freed once their
    stamp is older than every published reservation.  Fast — one
    uncontended write per [enter]/[leave], unprotected reads — but
    {e not robust}: one stalled reader pins every block retired after
    its reservation (Figure 10a). *)

include Tracker.S
