(** Per-thread limbo lists for the registration-based baselines.

    EBR, HP, HE and IBR all buffer retired blocks in a thread-local
    list and periodically attempt to reclaim ("empty" in the Wen et
    al. framework).  The list links through {!Hdr.t.next}; a limbo is
    owned by a single thread and is not thread-safe. *)

type t

val create : unit -> t

val push : t -> Hdr.t -> unit
(** Add a retired block; bumps the retire counter used by
    {!should_scan}. *)

val should_scan : t -> every:int -> bool
(** True once [every] pushes have happened since the last {!sweep};
    the caller then runs a scan.  Resets the counter when returning
    [true]. *)

val sweep : t -> keep:(Hdr.t -> bool) -> free:(Hdr.t -> unit) -> unit
(** [sweep t ~keep ~free] partitions the limbo: blocks for which
    [keep] holds stay (in order); the rest are handed to [free]. *)

val size : t -> int
val is_empty : t -> bool
val iter : t -> (Hdr.t -> unit) -> unit
