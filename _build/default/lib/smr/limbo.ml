type t = { mutable head : Hdr.t; mutable size : int; mutable since_scan : int }

let create () = { head = Hdr.nil; size = 0; since_scan = 0 }

let push t h =
  h.Hdr.next <- t.head;
  t.head <- h;
  t.size <- t.size + 1;
  t.since_scan <- t.since_scan + 1

let should_scan t ~every =
  if t.since_scan >= every then begin
    t.since_scan <- 0;
    true
  end
  else false

let sweep t ~keep ~free =
  let rec go h kept_head kept_size =
    if Hdr.is_nil h then (kept_head, kept_size)
    else
      let next = h.Hdr.next in
      if keep h then begin
        h.Hdr.next <- kept_head;
        go next h (kept_size + 1)
      end
      else begin
        free h;
        go next kept_head kept_size
      end
  in
  let head, size = go t.head Hdr.nil 0 in
  t.head <- head;
  t.size <- size

let size t = t.size
let is_empty t = Hdr.is_nil t.head

let iter t f =
  let rec go h =
    if not (Hdr.is_nil h) then begin
      let next = h.Hdr.next in
      f h;
      go next
    end
  in
  go t.head
