(** Interval-based reclamation, 2GE variant (Wen et al., PPoPP'18).

    Each thread publishes a reservation {e interval} [\[lower, upper\]]:
    [enter] pins both ends to the era clock; every tracked dereference
    raises [upper] to the current clock.  A retired block (stamped with
    birth and retire eras) is freed once its lifetime interval is
    disjoint from every thread's reservation.  Robust: a stalled
    thread's interval stops growing, so only blocks born before its
    [upper] stay pinned.  API-wise this is the scheme closest to
    Hyaline-S, which borrows its birth eras (but not its retire eras —
    see [Hyaline_s]). *)

include Tracker.S
