type t = {
  allocs : int Atomic.t;
  retires : int Atomic.t;
  frees : int Atomic.t;
}

let create () =
  { allocs = Atomic.make 0; retires = Atomic.make 0; frees = Atomic.make 0 }

let on_alloc t = Atomic.incr t.allocs
let on_retire t = Atomic.incr t.retires
let on_free t = Atomic.incr t.frees
let allocs t = Atomic.get t.allocs
let retires t = Atomic.get t.retires
let frees t = Atomic.get t.frees
let unreclaimed t = Atomic.get t.retires - Atomic.get t.frees

type snapshot = { allocs : int; retires : int; frees : int }

let snapshot (t : t) =
  {
    allocs = Atomic.get t.allocs;
    retires = Atomic.get t.retires;
    frees = Atomic.get t.frees;
  }

let pp_snapshot ppf { allocs; retires; frees } =
  Format.fprintf ppf "allocs=%d retires=%d frees=%d unreclaimed=%d" allocs
    retires frees (retires - frees)
