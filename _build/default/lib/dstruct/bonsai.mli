(** The Bonsai-tree benchmark (Clements et al. variant; paper §6,
    Figures 8b/9b/11b/12b): a persistent weight-balanced tree whose
    writers path-copy and publish with one root CAS, retiring the
    whole displaced path.

    The heaviest retirement rate of the four benchmarks — the one
    where the paper reports Hyaline's steady ~10% win over EBR.  HP
    and HE are not run on it (per-pointer protection cannot cover
    snapshot traversals through rotated subtrees), matching the
    paper's framework. *)

val delta : int
(** Adams' weight-balance factor (3). *)

val ratio : int
(** Adams' single/double rotation threshold (2). *)

module Make (_ : Smr.Tracker.S) : Map_intf.S
