(** Natarajan & Mittal's lock-free external BST (paper §6, Figures
    8d/9d/11d/12d).

    Leaves carry the bindings; deletions flag the victim's parent
    edge, tag the survivor edge, and excise a whole chain of
    condemned internal nodes with one CAS at the nearest live
    ancestor.  The thread whose CAS performs the excision retires the
    entire detached chain, so every block is retired exactly once. *)

module Make (_ : Smr.Tracker.S) : Map_intf.S
