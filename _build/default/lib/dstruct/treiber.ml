(** Treiber stack over the SMR framework — not part of the paper's
    benchmark suite, but the canonical minimal client of a reclamation
    scheme; used by the quickstart example and the tutorial tests. *)

open Smr

module Make (T : Tracker.S) = struct
  type 'a node = {
    hdr : Hdr.t;
    value : 'a;
    mutable next : 'a node option;
  }

  type 'a t = { tracker : T.t; top : 'a node option Atomic.t }

  let create cfg = { tracker = T.create cfg; top = Atomic.make None }
  let tracker t = t.tracker
  let proj = function Some n -> n.hdr | None -> Hdr.nil

  let push t ~tid value =
    let n = { hdr = Hdr.create (); value; next = None } in
    T.alloc_hook t.tracker ~tid n.hdr;
    let rec loop () =
      let top = Atomic.get t.top in
      n.next <- top;
      if not (Atomic.compare_and_set t.top top (Some n)) then loop ()
    in
    T.enter t.tracker ~tid;
    loop ();
    T.leave t.tracker ~tid

  let pop t ~tid =
    T.enter t.tracker ~tid;
    let rec loop () =
      match T.read t.tracker ~tid ~idx:0 t.top proj with
      | None -> None
      | Some n as top ->
          if Atomic.compare_and_set t.top top n.next then begin
            let v = n.value in
            T.retire t.tracker ~tid n.hdr;
            Some v
          end
          else loop ()
    in
    let r = loop () in
    T.leave t.tracker ~tid;
    r

  let flush t ~tid = T.flush t.tracker ~tid
  let stats t = T.stats t.tracker
end
