(** The sorted lock-free linked-list benchmark (Harris's algorithm
    with Michael's timely-unlink modification; paper §6, Figures
    8a/9a/11a/12a).

    One list spans the whole key range, so operations are dominated by
    long traversals — the benchmark that stresses each SMR scheme's
    {e per-dereference} cost (HP's publication barriers, the era
    updates of the robust schemes) rather than its retire path.

    Timely retirement — every traversal unlinks and retires the marked
    nodes it passes — is exactly the property §2.4 requires for the
    robust schemes to work on a linked list. *)

module Make (_ : Smr.Tracker.S) : Map_intf.S
