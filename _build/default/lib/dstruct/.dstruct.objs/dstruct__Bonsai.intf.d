lib/dstruct/bonsai.mli: Map_intf Smr
