lib/dstruct/ms_queue.mli: Smr
