lib/dstruct/nm_tree.mli: Map_intf Smr
