lib/dstruct/map_intf.ml: Smr
