lib/dstruct/nm_tree.ml: Atomic Config Hdr List Map_intf Mpool Option Printf Smr Tracker
