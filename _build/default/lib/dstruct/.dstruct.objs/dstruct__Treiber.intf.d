lib/dstruct/treiber.mli: Smr
