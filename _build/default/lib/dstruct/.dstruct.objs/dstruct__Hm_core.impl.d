lib/dstruct/hm_core.ml: Atomic Config Hdr List Mpool Printf Smr Tracker
