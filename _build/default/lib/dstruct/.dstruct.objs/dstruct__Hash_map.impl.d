lib/dstruct/hash_map.ml: Array Atomic Hm_core List Map_intf Smr
