lib/dstruct/ms_queue.ml: Atomic Config Hdr Mpool Smr Tracker
