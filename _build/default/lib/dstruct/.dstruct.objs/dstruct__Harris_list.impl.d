lib/dstruct/harris_list.ml: Atomic Hm_core Map_intf Smr
