lib/dstruct/hash_map.mli: Map_intf Smr
