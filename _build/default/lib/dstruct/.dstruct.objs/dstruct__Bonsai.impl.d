lib/dstruct/bonsai.ml: Atomic Config Hdr List Map_intf Mpool Option Smr Tracker
