lib/dstruct/harris_list.mli: Map_intf Smr
