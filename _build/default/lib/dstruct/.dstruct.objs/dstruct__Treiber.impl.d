lib/dstruct/treiber.ml: Atomic Hdr Smr Tracker
