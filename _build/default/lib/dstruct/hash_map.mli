(** Michael's lock-free hash map (paper §6, Figures 8c/9c/11c/12c):
    a fixed array of buckets, each a Harris-Michael list.

    Operations are very short, making this the evaluation's main
    reclamation stress and the structure used for the robustness
    (Fig. 10a) and trimming (Fig. 10b) experiments. *)

val default_buckets : int
(** Bucket count used by [create] (8192). *)

module Make (_ : Smr.Tracker.S) : Map_intf.S
