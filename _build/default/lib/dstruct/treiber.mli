(** Treiber stack over the SMR framework — the canonical minimal
    client of a reclamation scheme.  Not part of the paper's benchmark
    suite; used by the quickstart example and tutorial tests. *)

module Make (T : Smr.Tracker.S) : sig
  type 'a t

  val create : Smr.Config.t -> 'a t
  val tracker : 'a t -> T.t

  val push : 'a t -> tid:int -> 'a -> unit
  (** Self-bracketing: performs its own [enter]/[leave]. *)

  val pop : 'a t -> tid:int -> 'a option
  (** Self-bracketing; retires the popped node. *)

  val flush : 'a t -> tid:int -> unit
  val stats : 'a t -> Smr.Stats.t
end
