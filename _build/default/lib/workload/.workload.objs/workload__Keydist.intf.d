lib/workload/keydist.mli: Prims
