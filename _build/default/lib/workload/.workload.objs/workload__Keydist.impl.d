lib/workload/keydist.ml: Array Float Prims Printf
