lib/workload/plot.mli:
