lib/workload/registry.mli: Dstruct Smr
