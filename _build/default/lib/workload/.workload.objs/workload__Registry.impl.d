lib/workload/registry.ml: Dstruct Hyaline_core List Printf Smr String
