lib/workload/driver.ml: Array Atomic Domain Dstruct Format Keydist List Prims Printf Registry Smr Unix
