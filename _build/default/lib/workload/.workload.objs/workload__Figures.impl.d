lib/workload/figures.ml: Driver Format Fun Hyaline_core Keydist List Printf Registry Smr String
