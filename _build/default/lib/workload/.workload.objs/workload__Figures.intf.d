lib/workload/figures.mli: Driver Format Registry Smr
