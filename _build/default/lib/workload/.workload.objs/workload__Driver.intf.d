lib/workload/driver.mli: Format Keydist Registry Smr
