module type POOLABLE = sig
  type t

  val create : index:int -> t
  val index : t -> int
  val on_alloc : t -> unit
  val on_free : t -> unit
end

type stats = { created : int; allocs : int; frees : int }

let pp_stats ppf { created; allocs; frees } =
  Format.fprintf ppf "created=%d allocs=%d frees=%d live=%d" created allocs
    frees (allocs - frees)

(* Registry chunking: [lookup] must be wait-free while creation grows
   the index space, so nodes live in fixed-size chunks hung off a
   fixed directory, never moved after publication. *)
let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 16

module Make (P : POOLABLE) = struct
  type t = {
    next_index : int Atomic.t;
    chunks : P.t array option Atomic.t array;
    shared_free : P.t list Atomic.t;
    local_cache : int;
    cache_key : P.t list ref Domain.DLS.key;
    created : int Atomic.t;
    allocs : int Atomic.t;
    frees : int Atomic.t;
  }

  let create ?(local_cache = 64) () =
    if local_cache < 0 then invalid_arg "Mpool.create: local_cache < 0";
    {
      next_index = Atomic.make 0;
      chunks = Array.init max_chunks (fun _ -> Atomic.make None);
      shared_free = Atomic.make [];
      local_cache;
      cache_key = Domain.DLS.new_key (fun () -> ref []);
      created = Atomic.make 0;
      allocs = Atomic.make 0;
      frees = Atomic.make 0;
    }

  let rec push_shared t node =
    let old = Atomic.get t.shared_free in
    if not (Atomic.compare_and_set t.shared_free old (node :: old)) then
      push_shared t node

  let rec pop_shared t =
    match Atomic.get t.shared_free with
    | [] -> None
    | node :: rest as old ->
        if Atomic.compare_and_set t.shared_free old rest then Some node
        else pop_shared t

  let publish t node =
    let i = P.index node in
    let c = i lsr chunk_bits in
    if c >= max_chunks then failwith "Mpool: index space exhausted";
    let slot = t.chunks.(c) in
    (match Atomic.get slot with
    | Some _ -> ()
    | None ->
        let arr = Array.make chunk_size node in
        (* Only one thread wins the install; losers just use the
           winner's chunk.  Pre-filling with [node] is harmless: every
           cell is overwritten before [lookup] can legitimately ask for
           its index. *)
        ignore (Atomic.compare_and_set slot None (Some arr)));
    match Atomic.get slot with
    | Some arr -> arr.(i land (chunk_size - 1)) <- node
    | None -> assert false

  let fresh t =
    let i = Atomic.fetch_and_add t.next_index 1 in
    let node = P.create ~index:i in
    publish t node;
    Atomic.incr t.created;
    node

  let alloc t =
    Atomic.incr t.allocs;
    let node =
      if t.local_cache = 0 then
        match pop_shared t with Some n -> n | None -> fresh t
      else
        let cache = Domain.DLS.get t.cache_key in
        match !cache with
        | n :: rest ->
            cache := rest;
            n
        | [] -> ( match pop_shared t with Some n -> n | None -> fresh t)
    in
    P.on_alloc node;
    node

  let free t node =
    P.on_free node;
    Atomic.incr t.frees;
    if t.local_cache = 0 then push_shared t node
    else begin
      let cache = Domain.DLS.get t.cache_key in
      cache := node :: !cache;
      (* Spill the whole cache once it exceeds the bound; counting the
         list here is fine because the bound is small. *)
      if List.length !cache > t.local_cache then begin
        List.iter (push_shared t) !cache;
        cache := []
      end
    end

  let lookup t i =
    if i < 0 || i >= Atomic.get t.next_index then
      invalid_arg "Mpool.lookup: index out of range";
    match Atomic.get t.chunks.(i lsr chunk_bits) with
    | Some arr -> arr.(i land (chunk_size - 1))
    | None -> invalid_arg "Mpool.lookup: chunk not yet published"

  let stats t =
    {
      created = Atomic.get t.created;
      allocs = Atomic.get t.allocs;
      frees = Atomic.get t.frees;
    }

  let live t = Atomic.get t.allocs - Atomic.get t.frees
end
