include Hyaline1_core.Make (struct
  let eras = false
end)
