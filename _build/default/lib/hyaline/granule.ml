type state = { href : int; hptr : Smr.Hdr.t }
type token = state
type t = { state : state Atomic.t; spurious_every : int; ticks : int Atomic.t }

let make ?(spurious_every = 0) () =
  if spurious_every < 0 then invalid_arg "Granule.make: spurious_every < 0";
  {
    state = Atomic.make { href = 0; hptr = Smr.Hdr.nil };
    spurious_every;
    ticks = Atomic.make 0;
  }

let ll t = Atomic.get t.state
let href (tok : token) = tok.href
let hptr (tok : token) = tok.hptr

let spurious t =
  t.spurious_every > 0
  && Atomic.fetch_and_add t.ticks 1 mod t.spurious_every = t.spurious_every - 1

let sc t tok ~href ~hptr =
  if spurious t then false
  else Atomic.compare_and_set t.state tok { href; hptr }

let peek t =
  let s = Atomic.get t.state in
  (s.href, s.hptr)
