(** The Head tuple value [\[HRef, HPtr\]] (paper §3.1).

    A snapshot of one slot's Head: the number of threads currently
    inside [enter]/[leave] brackets on that slot, and the most recently
    retired node of the slot's retirement list ([Hdr.nil] when empty).
    Immutable; atomicity over the pair is provided by a {!Head.OPS}
    backend. *)

type t = { href : int; hptr : Smr.Hdr.t }

val zero : t
(** [{ href = 0; hptr = Hdr.nil }] — the initial Head value. *)

val pp : Format.formatter -> t -> unit
