module type S = sig
  include Smr.Tracker.S

  val slots : t -> int
  val pending : t -> tid:int -> int
end
