include Hyaline1_core.Make (struct
  let eras = true
end)
