type t = { href : int; hptr : Smr.Hdr.t }

let zero = { href = 0; hptr = Smr.Hdr.nil }
let pp ppf t = Format.fprintf ppf "{href=%d; hptr=%a}" t.href Smr.Hdr.pp t.hptr
