(** Thread-local assembly of retirement batches (paper §3.2).

    [retire] calls append nodes to a per-thread builder; once the batch
    holds strictly more nodes than there are slots (and at least
    [Config.batch_min]), it is sealed and inserted into the slots'
    retirement lists.  One node of the batch — the {e NRef node} — is
    dedicated to the shared reference counter; every other node can
    serve as the batch's link in one slot's list.  All nodes are
    chained through [Hdr.batch_link] and point back to the NRef node
    through [Hdr.ref_node], giving the paper's three-words-per-node
    layout. *)

type t
(** A builder, owned by one thread. *)

val create : unit -> t

val add : t -> Smr.Hdr.t -> unit
(** Append a retired node; tracks the batch's minimum birth era. *)

val size : t -> int

val is_empty : t -> bool

val min_birth : t -> int
(** Minimum birth era over the nodes added so far ([max_int] when
    empty) — Hyaline-S's [MinBirth()]. *)

val seal : t -> adjs:int -> Smr.Hdr.t
(** [seal b ~adjs] finalizes the batch: picks the NRef node,
    initializes its counter to zero and its per-batch [Adjs] snapshot,
    points every node's [ref_node] at it, resets the builder, and
    returns the NRef node.  The batch's slot nodes are the chain
    [refnode.batch_link], [refnode.batch_link.batch_link], ...
    @raise Invalid_argument on an empty builder. *)

val nodes : Smr.Hdr.t -> Smr.Hdr.t list
(** [nodes refnode] lists every node of a sealed batch (the NRef node
    first) — test/teardown helper. *)
