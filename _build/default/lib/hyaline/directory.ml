type 'a t = {
  kmin : int;
  log_kmin : int;
  levels : 'a array option Atomic.t array;
  mk : unit -> 'a;
}

let max_levels = 64

let create ~kmin mk =
  if not (Smr.Config.is_pow2 kmin) then
    invalid_arg "Directory.create: kmin not a power of two";
  let levels = Array.init max_levels (fun _ -> Atomic.make None) in
  Atomic.set levels.(0) (Some (Array.init kmin (fun _ -> mk ())));
  { kmin; log_kmin = Adjs.log2 kmin; levels; mk }

let kmin t = t.kmin

(* floor(log2 n) for n >= 1 *)
let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let level_of t i =
  if i < t.kmin then (0, i)
  else
    let l = ilog2 (i lsr t.log_kmin) + 1 in
    let base = t.kmin lsl (l - 1) in
    (l, i - base)

let capacity t =
  let rec go l cap =
    if l >= max_levels then cap
    else
      match Atomic.get t.levels.(l) with
      | None -> cap
      | Some _ -> go (l + 1) (if l = 0 then t.kmin else cap * 2)
  in
  go 0 0

let get t i =
  let l, off = level_of t i in
  match Atomic.get t.levels.(l) with
  | Some arr -> arr.(off)
  | None -> invalid_arg "Directory.get: slot not yet published"

let ensure t ~k =
  let rec go l covered =
    if covered >= k || l >= max_levels then ()
    else begin
      (match Atomic.get t.levels.(l) with
      | Some _ -> ()
      | None ->
          (* Level [l >= 1] has as many slots as all previous levels
             combined, doubling the total. *)
          let size = t.kmin lsl (l - 1) in
          let arr = Array.init size (fun _ -> t.mk ()) in
          ignore (Atomic.compare_and_set t.levels.(l) None (Some arr)));
      go (l + 1) (covered * 2)
    end
  in
  go 1 t.kmin
