(** Atomic operations on a slot Head — the backend signature.

    Hyaline needs read-modify-write atomicity over the two-word
    [\[HRef, HPtr\]] tuple.  The paper implements it three ways:
    double-width CAS (x86-64 [cmpxchg16b], ARM64), single-width LL/SC
    over a shared reservation granule (PPC/MIPS, §4.4), or
    counter-in-pointer squeezing (SPARC).  The algorithm in
    [Hyaline.Make] is written against this signature so each backend
    is a drop-in module: {!Dwcas} here and [Llsc_head] for the
    emulated-LL/SC port.

    All operations are atomic with respect to each other.  The [cas_*]
    operations may fail spuriously (returning [false] with the head
    unchanged); callers re-read and retry, which is exactly the
    weak-CAS tolerance the paper's §4.4 relies on. *)

module type OPS = sig
  type t

  val backend : string
  val make : unit -> t

  val read : t -> Snap.t
  (** Atomic load of the pair. *)

  val enter_faa : t -> Snap.t
  (** Atomically increment [href] leaving [hptr] intact; return the
      {e pre-increment} snapshot (whose [hptr] becomes the caller's
      handle).  This is the paper's
      [FAA(&Heads[slot], {.HRef=1, .HPtr=0})]. *)

  val cas_ref : t -> expected:Snap.t -> int -> bool
  (** Replace [href] if the pair still equals [expected]. *)

  val cas_ptr : t -> expected:Snap.t -> Smr.Hdr.t -> bool
  (** Replace [hptr] if the pair still equals [expected]. *)
end

module Dwcas : OPS
(** Double-width-CAS backend: the pair lives in one [Atomic.t] as an
    immutable {!Snap.t}; compare-and-set on the box is the double-width
    RMW.  The GC pins a snapshot box while any thread still holds it,
    which is why no ABA tag is needed (the paper gets the same effect
    from handles keeping nodes un-recycled). *)
