(** Tracker interface extended with Hyaline-specific observability. *)

module type S = sig
  include Smr.Tracker.S

  val slots : t -> int
  (** Current number of slots [k] (grows under §4.3 adaptive
      resizing). *)

  val pending : t -> tid:int -> int
  (** Nodes sitting in [tid]'s not-yet-sealed local batch — what
      [flush] would finalize. *)
end
