lib/hyaline/adjs.ml: Smr
