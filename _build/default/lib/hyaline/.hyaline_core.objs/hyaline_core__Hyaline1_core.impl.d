lib/hyaline/hyaline1_core.ml: Array Atomic Batch Config Hdr Internal Prims Smr Stats Tracker Tracker_ext
