lib/hyaline/snap.mli: Format Smr
