lib/hyaline/head.ml: Atomic Smr Snap
