lib/hyaline/llsc_head.mli: Head
