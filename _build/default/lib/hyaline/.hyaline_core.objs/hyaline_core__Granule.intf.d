lib/hyaline/granule.mli: Smr
