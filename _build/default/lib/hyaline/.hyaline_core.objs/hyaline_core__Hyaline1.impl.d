lib/hyaline/hyaline1.ml: Hyaline1_core
