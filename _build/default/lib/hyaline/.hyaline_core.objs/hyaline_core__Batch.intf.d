lib/hyaline/batch.mli: Smr
