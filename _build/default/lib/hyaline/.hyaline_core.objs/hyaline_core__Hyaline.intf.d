lib/hyaline/hyaline.mli: Head Tracker_ext
