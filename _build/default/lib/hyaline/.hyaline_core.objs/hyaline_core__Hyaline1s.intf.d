lib/hyaline/hyaline1s.mli: Tracker_ext
