lib/hyaline/hyaline1s.ml: Hyaline1_core
