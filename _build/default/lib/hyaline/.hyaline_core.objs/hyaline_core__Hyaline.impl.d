lib/hyaline/hyaline.ml: Adjs Array Atomic Batch Config Hdr Head Internal Llsc_head Smr Snap Stats Tracker Tracker_ext
