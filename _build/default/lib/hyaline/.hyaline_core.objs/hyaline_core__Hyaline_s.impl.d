lib/hyaline/hyaline_s.ml: Adjs Array Atomic Batch Config Directory Hdr Head Internal Llsc_head Prims Smr Snap Stats Tracker Tracker_ext
