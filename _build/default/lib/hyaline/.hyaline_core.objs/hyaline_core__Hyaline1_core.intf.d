lib/hyaline/hyaline1_core.mli: Tracker_ext
