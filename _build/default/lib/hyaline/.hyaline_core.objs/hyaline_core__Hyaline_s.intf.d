lib/hyaline/hyaline_s.mli: Head Tracker_ext
