lib/hyaline/tracker_ext.mli: Smr
