lib/hyaline/granule.ml: Atomic Smr
