lib/hyaline/head.mli: Smr Snap
