lib/hyaline/batch.ml: Atomic Hdr List Smr
