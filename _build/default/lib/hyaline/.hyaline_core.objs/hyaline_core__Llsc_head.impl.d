lib/hyaline/llsc_head.ml: Granule Snap
