lib/hyaline/hyaline1.mli: Tracker_ext
