lib/hyaline/snap.ml: Format Smr
