lib/hyaline/adjs.mli:
