lib/hyaline/internal.ml: Atomic Hdr Head List Prims Smr Snap Tracker
