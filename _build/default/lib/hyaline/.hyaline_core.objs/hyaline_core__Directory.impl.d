lib/hyaline/directory.ml: Adjs Array Atomic Smr
