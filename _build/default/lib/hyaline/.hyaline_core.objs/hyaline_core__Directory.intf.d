lib/hyaline/directory.mli:
