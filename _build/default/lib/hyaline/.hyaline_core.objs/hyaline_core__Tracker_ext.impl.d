lib/hyaline/tracker_ext.ml: Smr
