lib/hyaline/internal.mli: Head Smr
