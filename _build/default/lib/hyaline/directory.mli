(** Directory of slot arrays for adaptive resizing (paper §4.3, Fig. 6).

    The slot count [k] must grow when every existing slot is poisoned
    by stalled threads, but a flat array cannot be resized lock-free
    without moving elements.  The paper's fix: a small fixed directory
    (at most 64 entries on 64-bit machines) of pointers to arrays;
    level 0 holds the initial [Kmin] slots, and each later level
    doubles the total, so level [L >= 1] covers slots
    [\[Kmin * 2{^L-1}, Kmin * 2{^L})].  Published levels are never
    moved, so {!get} is a wait-free address computation via [log2]
    (hardware [lzcnt] in the paper; a shift loop here). *)

type 'a t

val create : kmin:int -> (unit -> 'a) -> 'a t
(** [create ~kmin mk] allocates level 0 with [kmin] slots, each
    initialized by [mk].  [kmin] must be a positive power of two.
    @raise Invalid_argument otherwise. *)

val kmin : 'a t -> int

val capacity : 'a t -> int
(** Number of slots currently backed by published levels. *)

val get : 'a t -> int -> 'a
(** [get t i] returns slot [i].  Wait-free.
    @raise Invalid_argument if [i] is not yet covered (callers must
    [ensure] growth before advertising a larger [k]). *)

val ensure : 'a t -> k:int -> unit
(** [ensure t ~k] publishes levels until at least [k] slots exist.
    Lock-free; concurrent callers race on CAS-publishing each level
    and losers discard their allocation (exactly the paper's
    protocol). *)
