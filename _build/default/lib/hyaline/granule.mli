(** Emulated LL/SC reservation granule (paper §4.4 substrate).

    PPC and MIPS expose only single-width load-linked /
    store-conditional, but the hardware reservation covers a whole
    granule (an L1 line or more), so two adjacent words share one
    reservation: an SC to either word fails if {e anything} in the
    granule changed — the "false sharing" §4.4 exploits to get
    double-width atomicity from single-width instructions.

    This module emulates exactly that semantics for a granule holding
    the [\[HRef, HPtr\]] pair: {!ll} opens a reservation over the whole
    granule, an ordinary load of the other word is the paper's
    dependency-ordered [load], and {!sc} succeeds only if the granule
    is untouched since the matching {!ll}.  Spurious SC failures — real
    LL/SC may fail for cache-pressure reasons — are injected at a
    configurable rate so the retry paths the paper's inline assembly
    must tolerate are actually exercised. *)

type t
(** A reservation granule holding an [href] word and an [hptr] word. *)

type token
(** A reservation opened by {!ll}; consumed by {!sc}. *)

val make : ?spurious_every:int -> unit -> t
(** [make ()] returns a granule initialized to [{href = 0;
    hptr = Hdr.nil}].  If [spurious_every = n > 0], roughly every n-th
    [sc] fails spuriously (deterministic counter, contention-
    independent).  [0] (default) disables injection. *)

val ll : t -> token
(** Open a reservation and atomically read the granule. *)

val href : token -> int
(** The [href] word as read by the [ll] (the "LL'd word" or the
    dependent [load], depending on which CAS flavour is emulated). *)

val hptr : token -> Smr.Hdr.t
(** The [hptr] word as read by the [ll]. *)

val sc : t -> token -> href:int -> hptr:Smr.Hdr.t -> bool
(** [sc g tok ~href ~hptr] stores both words iff the granule has not
    been modified since [tok] was obtained (and the spurious-failure
    injector spares it).  A faithful single-width SC writes one word;
    writing both on success is equivalent here because success proves
    exclusive ownership of the granule. *)

val peek : t -> int * Smr.Hdr.t
(** Plain atomic read of the granule without opening a reservation. *)
