let log2 k =
  if not (Smr.Config.is_pow2 k) then invalid_arg "Adjs.log2: not a power of two";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 k

let of_k k =
  let l = log2 k in
  if l = 0 then 0 else 1 lsl (63 - l)

let next_pow2 n =
  if n <= 1 then 1
  else
    let rec go p = if p >= n then p else go (p * 2) in
    go 1
