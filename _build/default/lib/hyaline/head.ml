module type OPS = sig
  type t

  val backend : string
  val make : unit -> t
  val read : t -> Snap.t
  val enter_faa : t -> Snap.t
  val cas_ref : t -> expected:Snap.t -> int -> bool
  val cas_ptr : t -> expected:Snap.t -> Smr.Hdr.t -> bool
end

module Dwcas : OPS = struct
  type t = Snap.t Atomic.t

  let backend = "dwcas"
  let make () = Atomic.make Snap.zero
  let read = Atomic.get

  let rec enter_faa t =
    let old = Atomic.get t in
    let next = { old with Snap.href = old.Snap.href + 1 } in
    if Atomic.compare_and_set t old next then old else enter_faa t

  (* [expected] is a box previously obtained from [read]/[enter_faa],
     so physical compare-and-set implements the pair CAS.  A
     semantically-equal-but-distinct box only arises if the head
     changed in between, in which case failing is correct. *)
  let cas_ref t ~expected href =
    Atomic.compare_and_set t expected { expected with Snap.href }

  let cas_ptr t ~expected hptr =
    Atomic.compare_and_set t expected { expected with Snap.hptr }
end
