(** Shared implementation of Hyaline-1 and Hyaline-1S (Figures 4-5).
    Use [Hyaline1] / [Hyaline1s]; this functor only selects whether
    the birth-era machinery (the [-S] robustness extension) is
    compiled in. *)

module Make (E : sig
  val eras : bool
end) : Tracker_ext.S
