open Smr

type t = { mutable first : Hdr.t; mutable count : int; mutable min_birth : int }

let create () = { first = Hdr.nil; count = 0; min_birth = max_int }

let add t h =
  h.Hdr.batch_link <- t.first;
  t.first <- h;
  t.count <- t.count + 1;
  if h.Hdr.birth < t.min_birth then t.min_birth <- h.Hdr.birth

let size t = t.count
let is_empty t = t.count = 0
let min_birth t = t.min_birth

let seal t ~adjs =
  if t.count = 0 then invalid_arg "Batch.seal: empty batch";
  let refnode = t.first in
  Atomic.set refnode.Hdr.nref 0;
  refnode.Hdr.adjs <- adjs;
  let rec link h =
    if not (Hdr.is_nil h) then begin
      h.Hdr.ref_node <- refnode;
      link h.Hdr.batch_link
    end
  in
  link refnode;
  t.first <- Hdr.nil;
  t.count <- 0;
  t.min_birth <- max_int;
  refnode

let nodes refnode =
  let rec go acc h =
    if Hdr.is_nil h then List.rev acc else go (h :: acc) h.Hdr.batch_link
  in
  go [] refnode
