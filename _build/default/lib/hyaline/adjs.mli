(** The [Adjs] adjustment constant (paper §3.2).

    Hyaline completes a batch's reference count only after the batch
    has been accounted for in {e every} slot.  Each slot contributes
    exactly once — either an insertion/detach adjustment or an "empty
    slot" credit — and each contribution carries
    [Adjs = floor((2{^N}-1)/k) + 1 = 2{^N}/k] for [k] a power of two,
    so the count cannot reach zero until all [k] contributions, which
    sum to [k * Adjs = 2{^N} = 0] in wrapping arithmetic, have landed.
    OCaml native ints are 63-bit, hence [N = 63] here. *)

val log2 : int -> int
(** [log2 k] for [k] a positive power of two.
    @raise Invalid_argument otherwise. *)

val of_k : int -> int
(** [of_k k] is the [Adjs] constant for [k] slots: [0] when [k = 1]
    (the paper's unsigned-overflow special case), [2{^63}/k]
    otherwise.
    @raise Invalid_argument if [k] is not a positive power of two. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)
