type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood; JDK 8 SplittableRandom). *)
let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next64 t in
  { state = s }

(* Keep 62 bits so the result is a non-negative OCaml int (63-bit). *)
let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let below t n =
  if n <= 0 then invalid_arg "Rng.below: n <= 0";
  (* Rejection-free for benchmark purposes: modulo bias is negligible
     for n << 2^62 (key ranges here are ~10^5). *)
  next t mod n

let float t = Stdlib.float_of_int (next t) /. 4611686018427387904.0
