(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    The workload generator must be reproducible across runs and cheap
    enough not to perturb throughput measurements; [Stdlib.Random] in
    OCaml 5 is domain-local but not seed-stable across spawn orders.
    SplitMix64 gives each worker thread an independent, seeded stream. *)

type t
(** Mutable generator state; each thread owns its own. *)

val create : seed:int -> t
(** [create ~seed] returns a generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t].  Deterministic: the n-th split of a given seed is fixed. *)

val next : t -> int
(** [next t] returns the next 62-bit non-negative pseudo-random int. *)

val below : t -> int -> int
(** [below t n] returns a uniform int in [\[0, n)].
    @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)]. *)
