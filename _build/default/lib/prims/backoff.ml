type t = { min_wait : int; max_wait : int; mutable wait : int }

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  if min_wait <= 0 then invalid_arg "Backoff.create: min_wait <= 0";
  if max_wait < min_wait then invalid_arg "Backoff.create: max_wait < min_wait";
  { min_wait; max_wait; wait = min_wait }

let once t =
  for _ = 1 to t.wait do
    Domain.cpu_relax ()
  done;
  let next = t.wait * 2 in
  t.wait <- (if next > t.max_wait then t.max_wait else next)

let reset t = t.wait <- t.min_wait
