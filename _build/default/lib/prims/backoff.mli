(** Truncated exponential backoff for CAS retry loops.

    Lock-free algorithms retry failed compare-and-set operations; under
    contention, retrying immediately wastes cycles and prolongs the
    contention window.  A [Backoff.t] value tracks how many times the
    caller has failed and spins for an exponentially growing (but
    capped) number of iterations on each {!once}. *)

type t
(** Mutable backoff state.  Cheap to create; not thread-safe (each
    thread should own its value, typically a fresh one per operation). *)

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff whose first wait spins
    [min_wait] iterations (default [16]) and whose waits are capped at
    [max_wait] iterations (default [4096]).

    @raise Invalid_argument if [min_wait <= 0] or [max_wait < min_wait]. *)

val once : t -> unit
(** [once b] spins for the current wait duration and doubles the next
    wait (up to the cap).  Calls {!Domain.cpu_relax} in the loop so
    sibling hyperthreads are not starved. *)

val reset : t -> unit
(** [reset b] restores [b] to its initial (shortest) wait. *)
