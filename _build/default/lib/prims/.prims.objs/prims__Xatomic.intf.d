lib/prims/xatomic.mli: Atomic
