lib/prims/xatomic.ml: Atomic
