lib/prims/backoff.ml: Domain
