lib/prims/rng.ml: Int64 Stdlib
