lib/prims/rng.mli:
