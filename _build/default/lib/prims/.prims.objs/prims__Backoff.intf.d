lib/prims/backoff.mli:
