let rec cas_max a v =
  let cur = Atomic.get a in
  if cur >= v then cur
  else if Atomic.compare_and_set a cur v then v
  else cas_max a v

let rec incr_if_at_least a floor =
  let cur = Atomic.get a in
  if cur < floor then false
  else if Atomic.compare_and_set a cur (cur + 1) then true
  else incr_if_at_least a floor

let rec update a f =
  let cur = Atomic.get a in
  let next = f cur in
  if Atomic.compare_and_set a cur next then cur else update a f

let wrapping_add a b = a + b
