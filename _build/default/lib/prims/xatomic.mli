(** Helpers over [Stdlib.Atomic] used throughout the SMR schemes. *)

val cas_max : int Atomic.t -> int -> int
(** [cas_max a v] atomically raises [a] to at least [v] and returns the
    resulting value (which is [>= v]).  This is the [touch] helper of
    Hyaline-S (paper Figure 5): a CAS loop that only ever increases the
    stored value, so concurrent callers cannot regress an era. *)

val incr_if_at_least : int Atomic.t -> int -> bool
(** [incr_if_at_least a floor] atomically increments [a] by one if its
    current value is [>= floor]; returns whether the increment
    happened.  Used by epoch/era clocks that must not skip values. *)

val update : 'a Atomic.t -> ('a -> 'a) -> 'a
(** [update a f] repeatedly applies [f] to the current value of [a]
    until a compare-and-set succeeds; returns the value that was
    replaced (the "old" value witnessed by the successful CAS). *)

val wrapping_add : int -> int -> int
(** [wrapping_add a b] is [a + b] modulo [2{^63}] (OCaml native-int
    arithmetic already wraps; this alias documents intent at the call
    sites implementing Hyaline's unsigned-overflow adjustment trick). *)
