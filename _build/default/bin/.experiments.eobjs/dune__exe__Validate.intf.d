bin/validate.mli:
