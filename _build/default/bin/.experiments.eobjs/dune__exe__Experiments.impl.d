bin/experiments.ml: Arg Cmd Cmdliner Driver Figures Format Hashtbl List Plot Printf String Term Workload
