bin/validate.ml: Arg Atomic Cmd Cmdliner Domain Dstruct Lincheck List Prims Printexc Printf Registry Smr String Term Unix Workload
