bin/experiments.mli:
