(* Deterministic tests for the ASCII chart renderer. *)

open Workload

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let two_series =
  [
    { Plot.label = "up"; points = [ (1.0, 1.0); (2.0, 2.0); (4.0, 4.0) ] };
    { Plot.label = "down"; points = [ (1.0, 4.0); (2.0, 2.5); (4.0, 1.0) ] };
  ]

let test_render_basic () =
  let out =
    Plot.render ~title:"t" ~ylabel:"y" ~xlabel:"x" two_series
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true (contains out needle))
    [ "t\n"; "A = up"; "B = down"; "(x: x, y: y)"; "+--" ]

let test_render_deterministic () =
  let a = Plot.render ~title:"t" ~ylabel:"y" ~xlabel:"x" two_series in
  let b = Plot.render ~title:"t" ~ylabel:"y" ~xlabel:"x" two_series in
  Alcotest.(check string) "same output" a b

let test_markers_positioned () =
  (* A single monotone series: the first column must carry the marker
     near the bottom, the last column near the top. *)
  let out =
    Plot.render ~width:20 ~height:5 ~title:"m" ~ylabel:"y" ~xlabel:"x"
      [ { Plot.label = "s"; points = [ (0.0, 0.0); (10.0, 10.0) ] } ]
  in
  let lines = String.split_on_char '\n' out in
  (* line 1 is the top row of the canvas: marker in the LAST column;
     the bottom row has it in the first canvas column. *)
  let top = List.nth lines 1 and bottom = List.nth lines 5 in
  Alcotest.(check bool) "top-right marker" true
    (String.length top > 0 && top.[String.length top - 1] = 'A');
  Alcotest.(check bool) "bottom-left marker" true (contains bottom "|A")

let test_collision_star () =
  let out =
    Plot.render ~width:10 ~height:4 ~title:"c" ~ylabel:"y" ~xlabel:"x"
      [
        { Plot.label = "a"; points = [ (0.0, 1.0) ] };
        { Plot.label = "b"; points = [ (0.0, 1.0) ] };
      ]
  in
  Alcotest.(check bool) "collision rendered as *" true (contains out "*")

let test_log_scale () =
  let out =
    Plot.render ~logy:true ~title:"l" ~ylabel:"y" ~xlabel:"x"
      [ { Plot.label = "s"; points = [ (0.0, 1.0); (1.0, 1_000_000.0) ] } ]
  in
  Alcotest.(check bool) "log annotated" true (contains out "log scale");
  Alcotest.(check bool) "megascale tick" true (contains out "1.0M")

let test_empty () =
  let out = Plot.render ~title:"e" ~ylabel:"y" ~xlabel:"x" [] in
  Alcotest.(check bool) "no data notice" true (contains out "(no data)")

let test_single_point () =
  (* Degenerate spans must not divide by zero. *)
  let out =
    Plot.render ~title:"p" ~ylabel:"y" ~xlabel:"x"
      [ { Plot.label = "s"; points = [ (5.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let suites =
  [
    ( "workload.plot",
      [
        Alcotest.test_case "basic render" `Quick test_render_basic;
        Alcotest.test_case "deterministic" `Quick test_render_deterministic;
        Alcotest.test_case "marker positions" `Quick test_markers_positioned;
        Alcotest.test_case "collision star" `Quick test_collision_star;
        Alcotest.test_case "log scale" `Quick test_log_scale;
        Alcotest.test_case "empty input" `Quick test_empty;
        Alcotest.test_case "single point" `Quick test_single_point;
      ] );
  ]
