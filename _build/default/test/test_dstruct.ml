(* Data-structure tests: sequential model checking against Stdlib.Map,
   quiescent-reclamation accounting, disjoint-range concurrent
   correctness, and mixed concurrent stress with the UAF detector
   armed — across the (structure x scheme) matrix of the paper's
   evaluation. *)

open Smr

module IntMap = Map.Make (Int)

let cfg_base =
  { Config.default with nthreads = 4; slots = 4; batch_min = 8; check_uaf = true }

(* --- sequential model ------------------------------------------------ *)

let model_test (module M : Dstruct.Map_intf.S) ~ops ~seed () =
  let m = M.create ~cfg:cfg_base () in
  let rng = Prims.Rng.create ~seed in
  let model = ref IntMap.empty in
  let key_range = 200 in
  for _ = 1 to ops do
    let k = Prims.Rng.below rng key_range in
    let v = Prims.Rng.next rng in
    M.enter m ~tid:0;
    (match Prims.Rng.below rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        let got = M.insert m ~tid:0 k v in
        if got then model := IntMap.add k v !model;
        Alcotest.(check bool) "insert agrees" expected got
    | 1 ->
        let expected = IntMap.mem k !model in
        let got = M.remove m ~tid:0 k in
        if got then model := IntMap.remove k !model;
        Alcotest.(check bool) "remove agrees" expected got
    | 2 ->
        let expected = IntMap.find_opt k !model in
        let got = M.get m ~tid:0 k in
        Alcotest.(check (option int)) "get agrees" expected got
    | _ ->
        let expected = not (IntMap.mem k !model) in
        let got = M.put m ~tid:0 k v in
        model := IntMap.add k v !model;
        Alcotest.(check bool) "put agrees" expected got);
    M.leave m ~tid:0
  done;
  M.check m;
  let expected = IntMap.bindings !model in
  Alcotest.(check (list (pair int int))) "final contents" expected
    (M.to_sorted_list m);
  Alcotest.(check int) "size" (IntMap.cardinal !model) (M.size m)

(* --- quiescent reclamation ------------------------------------------- *)

let reclaim_test (module M : Dstruct.Map_intf.S) () =
  let m = M.create ~cfg:cfg_base () in
  (* Fill, churn, then empty the structure completely. *)
  for k = 0 to 299 do
    M.enter m ~tid:0;
    ignore (M.insert m ~tid:0 k k);
    M.leave m ~tid:0
  done;
  for k = 0 to 299 do
    M.enter m ~tid:0;
    ignore (M.remove m ~tid:0 k);
    M.leave m ~tid:0
  done;
  for tid = 0 to cfg_base.nthreads - 1 do
    M.flush m ~tid;
    M.flush m ~tid
  done;
  Alcotest.(check int) "structure empty" 0 (M.size m);
  let s = Stats.snapshot (M.stats m) in
  Alcotest.(check bool) "something was retired" true (s.Stats.retires > 0);
  Alcotest.(check int) "all retired blocks freed" s.Stats.retires s.Stats.frees

(* --- disjoint-range concurrency -------------------------------------- *)

let disjoint_test (module M : Dstruct.Map_intf.S) () =
  let m = M.create ~cfg:cfg_base () in
  let per = 250 in
  let worker tid () =
    let base = tid * per in
    for i = 0 to per - 1 do
      M.enter m ~tid;
      assert (M.insert m ~tid (base + i) tid);
      M.leave m ~tid
    done;
    (* Everything this thread inserted is visible to it. *)
    for i = 0 to per - 1 do
      M.enter m ~tid;
      assert (M.get m ~tid (base + i) = Some tid);
      M.leave m ~tid
    done;
    (* Remove the even half. *)
    for i = 0 to per - 1 do
      if i mod 2 = 0 then begin
        M.enter m ~tid;
        assert (M.remove m ~tid (base + i));
        M.leave m ~tid
      end
    done
  in
  let ds = List.init cfg_base.nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  M.check m;
  (* Exactly the odd keys of every range remain. *)
  let expected =
    List.concat_map
      (fun tid ->
        List.filter_map
          (fun i -> if i mod 2 = 1 then Some ((tid * per) + i, tid) else None)
          (List.init per Fun.id))
      (List.init cfg_base.nthreads Fun.id)
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "surviving bindings" expected
    (M.to_sorted_list m)

(* --- mixed concurrent stress ----------------------------------------- *)

let stress_test (module M : Dstruct.Map_intf.S) ~leaky ~ops () =
  let m = M.create ~cfg:cfg_base () in
  let key_range = 512 in
  let worker tid () =
    let rng = Prims.Rng.create ~seed:(1000 + tid) in
    for _ = 1 to ops do
      let k = Prims.Rng.below rng key_range in
      M.enter m ~tid;
      (match Prims.Rng.below rng 10 with
      | 0 | 1 | 2 | 3 -> ignore (M.insert m ~tid k tid)
      | 4 | 5 | 6 | 7 -> ignore (M.remove m ~tid k)
      | _ -> ignore (M.get m ~tid k));
      M.leave m ~tid
    done
  in
  let ds = List.init cfg_base.nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  M.check m;
  for tid = 0 to cfg_base.nthreads - 1 do
    M.flush m ~tid;
    M.flush m ~tid
  done;
  let s = Stats.snapshot (M.stats m) in
  if not leaky then
    Alcotest.(check int) "all retired blocks freed at quiescence"
      s.Stats.retires s.Stats.frees;
  (* The sorted view is coherent (strictly increasing keys). *)
  let keys = List.map fst (M.to_sorted_list m) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "keys strictly sorted" true (sorted keys)

(* --- trim-chained operation mode (Figure 10b's access pattern) ------- *)

let trim_mode_test (module M : Dstruct.Map_intf.S) () =
  let m = M.create ~cfg:cfg_base () in
  (* One bracket around many operations, trim between them. *)
  M.enter m ~tid:0;
  for k = 0 to 199 do
    ignore (M.insert m ~tid:0 k k);
    M.trim m ~tid:0
  done;
  for k = 0 to 199 do
    ignore (M.remove m ~tid:0 k);
    M.trim m ~tid:0
  done;
  M.leave m ~tid:0;
  M.flush m ~tid:0;
  M.flush m ~tid:0;
  Alcotest.(check int) "empty" 0 (M.size m);
  let s = Stats.snapshot (M.stats m) in
  Alcotest.(check int) "reclaimed through trim" s.Stats.retires s.Stats.frees

(* --- matrix ----------------------------------------------------------- *)

type maker = (module Dstruct.Map_intf.MAKER)

let structures : (string * maker * bool (* hp_he_ok *)) list =
  [
    ("list", (module Dstruct.Harris_list.Make), true);
    ("hashmap", (module Dstruct.Hash_map.Make), true);
    ("bonsai", (module Dstruct.Bonsai.Make), false);
    ("nmtree", (module Dstruct.Nm_tree.Make), true);
  ]

let schemes : (string * (module Tracker.S) * bool (* is_hp_like *)) list =
  [
    ("leaky", (module Leaky), false);
    ("ebr", (module Ebr), false);
    ("hp", (module Hp), true);
    ("he", (module He), true);
    ("ibr", (module Ibr), false);
    ("hyaline", (module Hyaline_core.Hyaline), false);
    ("hyaline-llsc", (module Hyaline_core.Hyaline.Llsc), false);
    ("hyaline-1", (module Hyaline_core.Hyaline1), false);
    ("hyaline-s", (module Hyaline_core.Hyaline_s), false);
    ("hyaline-1s", (module Hyaline_core.Hyaline1s), false);
  ]

let suites =
  List.concat_map
    (fun (sname, (module Mk : Dstruct.Map_intf.MAKER), hp_ok) ->
      let cases =
        List.concat_map
          (fun (tname, (module T : Tracker.S), is_hp_like) ->
            if is_hp_like && not hp_ok then []
            else
              let map : (module Dstruct.Map_intf.S) = (module Mk (T)) in
              let leaky = tname = "leaky" in
              [
                Alcotest.test_case
                  (Printf.sprintf "%s: sequential model" tname)
                  `Quick
                  (model_test map ~ops:1_500 ~seed:42);
              ]
              @ (if leaky then []
                 else
                   [
                     Alcotest.test_case
                       (Printf.sprintf "%s: quiescent reclamation" tname)
                       `Quick (reclaim_test map);
                     Alcotest.test_case
                       (Printf.sprintf "%s: trim-chained ops" tname)
                       `Quick (trim_mode_test map);
                   ])
              @ [
                  Alcotest.test_case
                    (Printf.sprintf "%s: disjoint concurrent" tname)
                    `Slow (disjoint_test map);
                  Alcotest.test_case
                    (Printf.sprintf "%s: mixed stress" tname)
                    `Slow
                    (stress_test map ~leaky ~ops:2_000);
                ])
          schemes
      in
      [ ("dstruct." ^ sname, cases) ])
    structures
