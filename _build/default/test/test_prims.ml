(* Unit and property tests for the prims library. *)

open Prims

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Backoff *)

let test_backoff_basic () =
  let b = Backoff.create () in
  (* Must terminate and be callable many times. *)
  for _ = 1 to 10 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b

let test_backoff_invalid () =
  Alcotest.check_raises "min_wait <= 0"
    (Invalid_argument "Backoff.create: min_wait <= 0") (fun () ->
      ignore (Backoff.create ~min_wait:0 ()));
  Alcotest.check_raises "max < min"
    (Invalid_argument "Backoff.create: max_wait < min_wait") (fun () ->
      ignore (Backoff.create ~min_wait:8 ~max_wait:4 ()))

(* ------------------------------------------------------------------ *)
(* Xatomic *)

let test_cas_max_seq () =
  let a = Atomic.make 5 in
  Alcotest.(check int) "raise" 9 (Xatomic.cas_max a 9);
  Alcotest.(check int) "no regress" 9 (Xatomic.cas_max a 3);
  Alcotest.(check int) "stored" 9 (Atomic.get a)

let test_cas_max_concurrent () =
  let a = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              ignore (Xatomic.cas_max a ((i * 4) + d))
            done))
  in
  List.iter Domain.join domains;
  (* The maximum ever proposed must have won. *)
  Alcotest.(check int) "max wins" 4003 (Atomic.get a)

let test_incr_if_at_least () =
  let a = Atomic.make 10 in
  Alcotest.(check bool) "incr ok" true (Xatomic.incr_if_at_least a 10);
  Alcotest.(check int) "value" 11 (Atomic.get a);
  Alcotest.(check bool) "below floor" false (Xatomic.incr_if_at_least a 100);
  Alcotest.(check int) "unchanged" 11 (Atomic.get a)

let test_update () =
  let a = Atomic.make 7 in
  let old = Xatomic.update a (fun x -> x * 2) in
  Alcotest.(check int) "old" 7 old;
  Alcotest.(check int) "new" 14 (Atomic.get a)

let test_update_concurrent () =
  let a = Atomic.make 0 in
  let per_domain = 5000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              ignore (Xatomic.update a succ)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all increments applied" (4 * per_domain) (Atomic.get a)

let test_wrapping_add () =
  (* The Hyaline Adjs identity: k * (2^63/k) = 0 mod 2^63 (OCaml ints
     are 63-bit, so the paper's N is 63 here). *)
  List.iter
    (fun k ->
      let log2 =
        let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
        go 0 k
      in
      let adjs = if k = 1 then 0 else 1 lsl (63 - log2) in
      let acc = ref 0 in
      for _ = 1 to k do
        acc := Xatomic.wrapping_add !acc adjs
      done;
      Alcotest.(check int)
        (Printf.sprintf "k=%d: k * Adjs wraps to zero" k)
        0 !acc)
    [ 1; 2; 8; 128; 1024 ]

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next c1 = Rng.next c2 then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 4)

let test_rng_below_invalid () =
  let r = Rng.create ~seed:0 in
  Alcotest.check_raises "n <= 0" (Invalid_argument "Rng.below: n <= 0")
    (fun () -> ignore (Rng.below r 0))

let prop_rng_below_range =
  QCheck.Test.make ~name:"Rng.below stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, n) ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.below r n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let prop_rng_nonnegative =
  QCheck.Test.make ~name:"Rng.next is non-negative" ~count:200
    QCheck.small_int (fun seed ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        if Rng.next r < 0 then ok := false
      done;
      !ok)

let prop_rng_float_range =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:200 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let f = Rng.float r in
        if f < 0.0 || f >= 1.0 then ok := false
      done;
      !ok)

let test_rng_distribution () =
  (* Coarse uniformity check: 10 buckets, 10k draws, each bucket
     within 30% of the expectation. *)
  let r = Rng.create ~seed:2024 in
  let buckets = Array.make 10 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let i = Rng.below r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (c > 700 && c < 1300))
    buckets

let suites =
  [
    ( "prims.backoff",
      [
        Alcotest.test_case "basic" `Quick test_backoff_basic;
        Alcotest.test_case "invalid args" `Quick test_backoff_invalid;
      ] );
    ( "prims.xatomic",
      [
        Alcotest.test_case "cas_max sequential" `Quick test_cas_max_seq;
        Alcotest.test_case "cas_max concurrent" `Quick test_cas_max_concurrent;
        Alcotest.test_case "incr_if_at_least" `Quick test_incr_if_at_least;
        Alcotest.test_case "update" `Quick test_update;
        Alcotest.test_case "update concurrent" `Quick test_update_concurrent;
        Alcotest.test_case "wrapping_add Adjs identity" `Quick
          test_wrapping_add;
      ] );
    ( "prims.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick
          test_rng_split_independent;
        Alcotest.test_case "below invalid" `Quick test_rng_below_invalid;
        Alcotest.test_case "distribution" `Quick test_rng_distribution;
        qcheck prop_rng_below_range;
        qcheck prop_rng_nonnegative;
        qcheck prop_rng_float_range;
      ] );
  ]
