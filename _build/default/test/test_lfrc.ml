(* LFRC (Table 1's counted-pointer row): reference algebra, stray
   bump/undo safety, and a Treiber stack client exercising the full
   intrusive protocol under concurrency. *)

open Smr

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Core algebra *)

let test_create_release_frees () =
  let freed = ref 0 in
  let b = Lfrc.make_block 42 ~on_free:(fun _ -> incr freed) in
  Alcotest.(check int) "value" 42 (Lfrc.value b);
  Alcotest.(check int) "count 1" 1 (Lfrc.peek_count b);
  Lfrc.release b;
  Alcotest.(check int) "freed once" 1 !freed

let test_acquire_release () =
  let freed = ref 0 in
  let b = Lfrc.make_block 7 ~on_free:(fun _ -> incr freed) in
  let cell = Lfrc.link (Some b) in
  (match Lfrc.acquire cell with
  | Some b' ->
      Alcotest.(check bool) "same block" true (b == b');
      Alcotest.(check int) "count 2" 2 (Lfrc.peek_count b);
      Lfrc.release b'
  | None -> Alcotest.fail "acquire missed");
  Alcotest.(check int) "not freed while linked" 0 !freed;
  (* Unlink and drop the link's reference. *)
  Alcotest.(check bool) "cas" true (Lfrc.cas cell ~expect:(Some b) None);
  Lfrc.release b;
  Alcotest.(check int) "freed after unlink" 1 !freed

let test_acquire_empty () =
  let cell : int Lfrc.cell = Lfrc.link None in
  Alcotest.(check bool) "none" true (Lfrc.acquire cell = None)

let test_reset_rearms () =
  let freed = ref 0 in
  let b = Lfrc.make_block 1 ~on_free:(fun _ -> incr freed) in
  Lfrc.release b;
  Alcotest.(check int) "freed" 1 !freed;
  let b = Lfrc.reset b 2 in
  Alcotest.(check int) "count rearmed" 1 (Lfrc.peek_count b);
  Alcotest.(check int) "value" 2 (Lfrc.value b);
  Lfrc.release b;
  Alcotest.(check int) "freed again exactly once more" 2 !freed

let test_cas_expect_mismatch () =
  let a = Lfrc.make_block 1 ~on_free:ignore in
  let b = Lfrc.make_block 2 ~on_free:ignore in
  let cell = Lfrc.link (Some a) in
  Alcotest.(check bool) "mismatch fails" false
    (Lfrc.cas cell ~expect:(Some b) None);
  Alcotest.(check bool) "match works" true
    (Lfrc.cas cell ~expect:(Some a) (Some b))

(* ------------------------------------------------------------------ *)
(* Treiber stack over LFRC: the intrusive protocol end to end. *)

module Stack = struct
  type node = { v : int; next : node Lfrc.cell }
  type t = { top : node Lfrc.cell; freed : int Atomic.t }

  let node_free t blk =
    (* A dying node releases its link to the successor. *)
    (match Atomic.get (Lfrc.value blk).next with
    | Some nxt -> Lfrc.release nxt
    | None -> ());
    Atomic.incr t.freed

  let create () = { top = Lfrc.link None; freed = Atomic.make 0 }

  let push t v =
    (* One allocation per push; retries reuse the block (so the freed
       counter counts exactly the published nodes). *)
    let blk =
      Lfrc.make_block { v; next = Lfrc.link None } ~on_free:(fun b ->
          node_free t b)
    in
    let rec loop () =
      let cur = Lfrc.acquire t.top in
      (* We own the unpublished block: donate the acquired reference
         to its next-link by plain store. *)
      Atomic.set (Lfrc.value blk).next cur;
      if Lfrc.cas t.top ~expect:cur (Some blk) then
        (* The old top-link reference to [cur] is now ours to drop
           (the new node's link carries its own). *)
        match cur with Some c -> Lfrc.release c | None -> ()
      else begin
        (match cur with Some c -> Lfrc.release c | None -> ());
        Atomic.set (Lfrc.value blk).next None;
        loop ()
      end
    in
    loop ()

  let rec pop t =
    match Lfrc.acquire t.top with
    | None -> None
    | Some blk ->
        let nxt = Lfrc.acquire (Lfrc.value blk).next in
        if Lfrc.cas t.top ~expect:(Some blk) nxt then begin
          (* Donate our [nxt] acquisition to the top link; release both
             the old top-link reference and our own acquisition of
             [blk]. *)
          let v = (Lfrc.value blk).v in
          Lfrc.release blk;
          Lfrc.release blk;
          Some v
        end
        else begin
          (match nxt with Some n -> Lfrc.release n | None -> ());
          Lfrc.release blk;
          pop t
        end
end

let test_stack_sequential () =
  let s = Stack.create () in
  for i = 1 to 50 do
    Stack.push s i
  done;
  for i = 50 downto 1 do
    Alcotest.(check (option int)) "lifo" (Some i) (Stack.pop s)
  done;
  Alcotest.(check (option int)) "empty" None (Stack.pop s);
  Alcotest.(check int) "all nodes freed" 50 (Atomic.get s.Stack.freed)

let test_stack_interleaved_frees () =
  let s = Stack.create () in
  Stack.push s 1;
  Stack.push s 2;
  ignore (Stack.pop s);
  Stack.push s 3;
  ignore (Stack.pop s);
  ignore (Stack.pop s);
  Alcotest.(check int) "3 freed" 3 (Atomic.get s.Stack.freed);
  Alcotest.(check (option int)) "empty" None (Stack.pop s)

let test_stack_concurrent () =
  let s = Stack.create () in
  let producers = 2 and consumers = 2 in
  let per = 4_000 in
  let done_producing = Atomic.make 0 in
  let popped = Atomic.make 0 in
  let prod p () =
    for i = 1 to per do
      Stack.push s ((p * per) + i)
    done;
    Atomic.incr done_producing
  in
  let cons () =
    let rec drain () =
      match Stack.pop s with
      | Some _ ->
          Atomic.incr popped;
          drain ()
      | None ->
          if Atomic.get done_producing < producers then begin
            Domain.cpu_relax ();
            drain ()
          end
          else (match Stack.pop s with
            | Some _ ->
                Atomic.incr popped;
                drain ()
            | None -> ())
    in
    drain ()
  in
  let ds =
    List.init producers (fun p -> Domain.spawn (prod p))
    @ List.init consumers (fun _ -> Domain.spawn cons)
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "every push popped" (producers * per)
    (Atomic.get popped);
  Alcotest.(check int) "every node freed exactly once" (producers * per)
    (Atomic.get s.Stack.freed)

let prop_push_pop_conserves =
  QCheck.Test.make ~name:"lfrc stack conserves values" ~count:100
    QCheck.(list small_int)
    (fun xs ->
      let s = Stack.create () in
      List.iter (Stack.push s) xs;
      let rec drain acc =
        match Stack.pop s with Some v -> drain (v :: acc) | None -> acc
      in
      drain [] = xs && Atomic.get s.Stack.freed = List.length xs)

let suites =
  [
    ( "lfrc",
      [
        Alcotest.test_case "create/release frees" `Quick
          test_create_release_frees;
        Alcotest.test_case "acquire/release" `Quick test_acquire_release;
        Alcotest.test_case "acquire empty" `Quick test_acquire_empty;
        Alcotest.test_case "reset rearms" `Quick test_reset_rearms;
        Alcotest.test_case "cas expectations" `Quick test_cas_expect_mismatch;
        Alcotest.test_case "stack sequential" `Quick test_stack_sequential;
        Alcotest.test_case "stack interleaved frees" `Quick
          test_stack_interleaved_frees;
        Alcotest.test_case "stack concurrent conservation" `Slow
          test_stack_concurrent;
        qcheck prop_push_pop_conserves;
      ] );
  ]
