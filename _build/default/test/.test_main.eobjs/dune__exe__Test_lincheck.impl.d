test/test_lincheck.ml: Alcotest Dstruct History Hyaline_core Int Lincheck List Map Printf QCheck QCheck_alcotest Run Smr
