test/test_lfrc.ml: Alcotest Atomic Domain Lfrc List QCheck QCheck_alcotest Smr
