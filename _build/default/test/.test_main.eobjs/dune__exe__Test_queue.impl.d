test/test_queue.ml: Alcotest Array Atomic Config Domain Dstruct Fun Hyaline_core List Smr Stats Tracker
