test/test_schedcheck.ml: Alcotest Head_sched Hyaline_core Hyaline_model List Printf Sched Schedcheck Smr String Test_support
