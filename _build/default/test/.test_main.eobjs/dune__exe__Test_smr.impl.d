test/test_smr.ml: Alcotest Atomic Blk Config Ebr Hdr He Hp Ibr Leaky List Pool Smr Test_support Unsafe_immediate
