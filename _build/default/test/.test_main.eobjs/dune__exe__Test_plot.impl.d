test/test_plot.ml: Alcotest List Plot Printf String Workload
