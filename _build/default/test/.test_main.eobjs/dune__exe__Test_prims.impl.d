test/test_prims.ml: Alcotest Array Atomic Backoff Domain List Prims Printf QCheck QCheck_alcotest Rng Xatomic
