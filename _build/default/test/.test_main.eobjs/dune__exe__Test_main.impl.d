test/test_main.ml: Alcotest List Test_dstruct Test_hyaline Test_lfrc Test_lincheck Test_mpool Test_plot Test_prims Test_queue Test_schedcheck Test_smr Test_workload
