test/test_mpool.ml: Alcotest Domain Fun List Mpool Prims QCheck QCheck_alcotest
