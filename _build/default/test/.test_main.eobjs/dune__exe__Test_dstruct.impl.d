test/test_dstruct.ml: Alcotest Config Domain Dstruct Ebr Fun He Hp Hyaline_core Ibr Int Leaky List Map Prims Printf Smr Stats Tracker
