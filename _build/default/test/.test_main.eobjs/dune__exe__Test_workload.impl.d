test/test_workload.ml: Alcotest Array Buffer Driver Dstruct Figures Format Keydist List Prims Printf Registry Smr String Workload
