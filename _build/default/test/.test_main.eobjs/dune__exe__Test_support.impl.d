test/test_support.ml: Alcotest Array Atomic Config Domain Hdr List Mpool Prims Printf Smr Stats Tracker
