(* Shared machinery for scheme-generic tracker tests: a pool-backed
   reclaimable block, a test battery functor run against every SMR
   scheme (baselines and all Hyaline variants), and the robustness
   scenario used to contrast robust and non-robust schemes. *)

open Smr

module Blk = struct
  type t = { hdr : Hdr.t; index : int; mutable payload : int }

  let create ~index = { hdr = Hdr.create (); index; payload = 0 }
  let index b = b.index
  let on_alloc b = Hdr.set_live b.hdr
  let on_free _ = ()
end

module Pool = Mpool.Make (Blk)

type expectations = {
  reclaims : bool; (* frees blocks at quiescence (false for Leaky) *)
  protects : bool; (* a protected block survives a scan (false for Unsafe) *)
}

let proj (b : Blk.t) = b.Blk.hdr

module MakeBattery (S : Tracker.S) = struct
  let cfg = { Config.default with nthreads = 4; check_uaf = true }

  let with_tracker f =
    let t = S.create cfg in
    f t

  let alloc_blk t pool ~tid =
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    S.alloc_hook t ~tid b.Blk.hdr;
    b

  let churn t pool ~tid n =
    for _ = 1 to n do
      S.enter t ~tid;
      let b = alloc_blk t pool ~tid in
      S.retire t ~tid b.Blk.hdr;
      S.leave t ~tid
    done

  (* Quiesce: all threads out; drive every tid's buffered work.  Some
     schemes need an active bracket for flush-time padding retires to
     drain, so flush twice. *)
  let quiesce t =
    for tid = 0 to cfg.nthreads - 1 do
      S.flush t ~tid
    done;
    for tid = 0 to cfg.nthreads - 1 do
      S.flush t ~tid
    done

  let test_retire_quiesce_frees () =
    with_tracker @@ fun t ->
    let pool = Pool.create ~local_cache:0 () in
    S.enter t ~tid:0;
    let b = alloc_blk t pool ~tid:0 in
    S.retire t ~tid:0 b.Blk.hdr;
    S.leave t ~tid:0;
    quiesce t;
    let s = Stats.snapshot (S.stats t) in
    Alcotest.(check bool) "retired >= 1" true (s.Stats.retires >= 1);
    if S.name = "Leaky" then
      Alcotest.(check int) "leaky never frees" 0 s.Stats.frees
    else begin
      (* Padding dummies may inflate both counters equally; the real
         invariants are full reclamation and pool emptiness. *)
      Alcotest.(check int) "freed = retired at quiescence" s.Stats.retires
        s.Stats.frees;
      Alcotest.(check int) "block back in pool" 0 (Pool.live pool)
    end

  let test_many_retires_all_freed () =
    if S.name = "Leaky" then ()
    else
      with_tracker @@ fun t ->
      let pool = Pool.create ~local_cache:0 () in
      churn t pool ~tid:0 500;
      quiesce t;
      let s = Stats.snapshot (S.stats t) in
      Alcotest.(check bool) "all data blocks retired" true
        (s.Stats.retires >= 500);
      Alcotest.(check int) "all freed" s.Stats.retires s.Stats.frees;
      Alcotest.(check int) "pool empty" 0 (Pool.live pool)

  let test_protection ~expect () =
    with_tracker @@ fun t ->
    let pool = Pool.create ~local_cache:0 () in
    S.enter t ~tid:0;
    let b0 = alloc_blk t pool ~tid:0 in
    let link = Atomic.make b0 in
    (* Reader *)
    S.enter t ~tid:1;
    let seen = S.read t ~tid:1 ~idx:0 link proj in
    Alcotest.(check bool) "reader sees b0" true (seen == b0);
    (* Writer swaps and retires the old block, then drives scans. *)
    let b1 = alloc_blk t pool ~tid:0 in
    Atomic.set link b1;
    S.retire t ~tid:0 b0.Blk.hdr;
    S.leave t ~tid:0;
    S.flush t ~tid:0;
    if expect.protects then begin
      Alcotest.(check bool)
        "protected block not freed" false
        (Hdr.is_freed b0.Blk.hdr);
      S.leave t ~tid:1;
      S.flush t ~tid:0;
      if expect.reclaims then
        Alcotest.(check bool)
          "freed after release" true
          (Hdr.is_freed b0.Blk.hdr)
    end
    else begin
      S.leave t ~tid:1;
      S.flush t ~tid:0
    end

  let test_double_retire_raises () =
    with_tracker @@ fun t ->
    let pool = Pool.create ~local_cache:0 () in
    S.enter t ~tid:0;
    let b = alloc_blk t pool ~tid:0 in
    S.retire t ~tid:0 b.Blk.hdr;
    (match S.retire t ~tid:0 b.Blk.hdr with
    | exception Hdr.Lifecycle ("double-retire", _) -> ()
    | () -> Alcotest.fail "double retire not detected");
    S.leave t ~tid:0

  let test_trim_releases () =
    if S.name = "Leaky" then ()
    else
      with_tracker @@ fun t ->
      let pool = Pool.create ~local_cache:0 () in
      S.enter t ~tid:0;
      for _ = 1 to 200 do
        let b = alloc_blk t pool ~tid:0 in
        S.retire t ~tid:0 b.Blk.hdr
      done;
      S.trim t ~tid:0;
      S.flush t ~tid:0;
      let s = Stats.snapshot (S.stats t) in
      Alcotest.(check bool)
        (Printf.sprintf "trim enabled reclamation (freed %d)" s.Stats.frees)
        true (s.Stats.frees > 0);
      S.leave t ~tid:0;
      S.flush t ~tid:0

  let test_concurrent_stress () =
    with_tracker @@ fun t ->
    let pool = Pool.create ~local_cache:16 () in
    let nslots = 32 in
    S.enter t ~tid:0;
    let links =
      Array.init nslots (fun _ -> Atomic.make (alloc_blk t pool ~tid:0))
    in
    S.leave t ~tid:0;
    let iters = 3_000 in
    let worker tid () =
      let rng = Prims.Rng.create ~seed:(tid * 7919) in
      for _ = 1 to iters do
        S.enter t ~tid;
        let i = Prims.Rng.below rng nslots in
        let _ = S.read t ~tid ~idx:0 links.(i) proj in
        let j = Prims.Rng.below rng nslots in
        let _ = S.read t ~tid ~idx:1 links.(j) proj in
        let fresh = alloc_blk t pool ~tid in
        let old = Atomic.exchange links.(Prims.Rng.below rng nslots) fresh in
        S.retire t ~tid old.Blk.hdr;
        S.leave t ~tid
      done
    in
    let domains =
      List.init cfg.nthreads (fun tid -> Domain.spawn (worker tid))
    in
    List.iter Domain.join domains;
    quiesce t;
    let s = Stats.snapshot (S.stats t) in
    Alcotest.(check bool)
      "every replaced block retired" true
      (s.Stats.retires >= cfg.nthreads * iters);
    if S.name <> "Leaky" then begin
      Alcotest.(check int) "all retired blocks freed at quiescence"
        s.Stats.retires s.Stats.frees;
      Alcotest.(check int) "pool live = array contents" nslots
        (Pool.live pool)
    end

  let tests ~expect =
    [
      Alcotest.test_case "retire+quiesce frees" `Quick
        test_retire_quiesce_frees;
      Alcotest.test_case "bulk retires all freed" `Quick
        test_many_retires_all_freed;
      Alcotest.test_case "protection honoured" `Quick
        (test_protection ~expect);
      Alcotest.test_case "double retire raises" `Quick
        test_double_retire_raises;
      Alcotest.test_case "trim releases prior retires" `Quick
        test_trim_releases;
      Alcotest.test_case "concurrent stress" `Slow test_concurrent_stress;
    ]
end

(* Stalled-reader scenario: returns the number of unreclaimed blocks
   after a stalled reader pins its reservation while another thread
   retires [n] fresh blocks. *)
module Robustness (S : Tracker.S) = struct
  let run ?(cfg = { Config.default with nthreads = 2; check_uaf = true }) ()
      =
    let t = S.create cfg in
    let pool = Pool.create ~local_cache:0 () in
    let alloc_blk ~tid =
      let b = Pool.alloc pool in
      b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
      S.alloc_hook t ~tid b.Blk.hdr;
      b
    in
    S.enter t ~tid:0;
    let pinned = alloc_blk ~tid:0 in
    let link = Atomic.make pinned in
    S.leave t ~tid:0;
    (* tid 1 enters, protects one block, then stalls forever. *)
    S.enter t ~tid:1;
    let _ = S.read t ~tid:1 ~idx:0 link proj in
    let n = 2_000 in
    for _ = 1 to n do
      S.enter t ~tid:0;
      let b = alloc_blk ~tid:0 in
      S.retire t ~tid:0 b.Blk.hdr;
      S.leave t ~tid:0
    done;
    S.flush t ~tid:0;
    Stats.unreclaimed (S.stats t)
end

let test_robust_bounded (module S : Tracker.S) () =
  let module R = Robustness (S) in
  let unreclaimed = R.run () in
  Alcotest.(check bool)
    (Printf.sprintf "%s: unreclaimed (%d) stays bounded" S.name unreclaimed)
    true
    (unreclaimed < 500)

let test_nonrobust_pins (module S : Tracker.S) () =
  let module R = Robustness (S) in
  let unreclaimed = R.run () in
  Alcotest.(check bool)
    (Printf.sprintf "%s: stalled reader pins retires (%d)" S.name unreclaimed)
    true
    (unreclaimed > 1_500)

let scheme_suite name (module S : Tracker.S) ~expect =
  let module B = MakeBattery (S) in
  (name, B.tests ~expect)
