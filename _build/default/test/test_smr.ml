(* Scheme-generic tests for the SMR framework and the baseline
   trackers (battery machinery lives in Test_support). *)

open Smr
open Test_support

(* ------------------------------------------------------------------ *)
(* The use-after-free detector must fire when a broken scheme frees a
   still-referenced block and a reader dereferences it again. *)

let test_uaf_detector_fires () =
  let cfg = { Config.default with nthreads = 2; check_uaf = true } in
  let t = Unsafe_immediate.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  Unsafe_immediate.enter t ~tid:0;
  let b = Pool.alloc pool in
  b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
  Unsafe_immediate.alloc_hook t ~tid:0 b.Blk.hdr;
  let link = Atomic.make b in
  (* Bug under test: retiring while [link] still points at the block.
     Unsafe_immediate frees instantly; the next tracked read must
     trip the lifecycle check. *)
  Unsafe_immediate.retire t ~tid:0 b.Blk.hdr;
  (match Unsafe_immediate.read t ~tid:1 ~idx:0 link proj with
  | exception Hdr.Lifecycle _ -> ()
  | _ -> Alcotest.fail "use-after-free went undetected");
  Unsafe_immediate.leave t ~tid:0

(* ------------------------------------------------------------------ *)
(* Hdr unit tests *)

let test_hdr_lifecycle () =
  let h = Hdr.create () in
  Hdr.set_retired h;
  Hdr.set_freed h;
  Alcotest.(check bool) "freed" true (Hdr.is_freed h);
  (match Hdr.set_freed h with
  | exception Hdr.Lifecycle ("double-free", _) -> ()
  | () -> Alcotest.fail "double free not detected");
  Hdr.set_live h;
  Alcotest.(check bool) "revived" false (Hdr.is_freed h)

let test_hdr_nil () =
  Alcotest.(check bool) "nil is nil" true (Hdr.is_nil Hdr.nil);
  Alcotest.(check bool) "fresh not nil" false (Hdr.is_nil (Hdr.create ()));
  Hdr.check_not_freed "test" Hdr.nil

let test_hdr_uids_unique () =
  let hs = List.init 64 (fun _ -> Hdr.create ()) in
  let uids = List.map (fun h -> h.Hdr.uid) hs in
  let sorted = List.sort_uniq compare uids in
  Alcotest.(check int) "unique uids" 64 (List.length sorted)

let test_hdr_set_live_resets () =
  let h = Hdr.create () in
  let other = Hdr.create () in
  h.Hdr.next <- other;
  h.Hdr.batch_link <- other;
  h.Hdr.ref_node <- other;
  Atomic.set h.Hdr.nref 42;
  h.Hdr.birth <- 7;
  h.Hdr.retire_era <- 9;
  Hdr.set_live h;
  Alcotest.(check bool) "next reset" true (Hdr.is_nil h.Hdr.next);
  Alcotest.(check bool) "batch_link reset" true (Hdr.is_nil h.Hdr.batch_link);
  Alcotest.(check bool) "ref_node reset" true (Hdr.is_nil h.Hdr.ref_node);
  Alcotest.(check int) "nref reset" 0 (Atomic.get h.Hdr.nref);
  Alcotest.(check int) "birth reset" 0 h.Hdr.birth;
  Alcotest.(check int) "retire_era reset" 0 h.Hdr.retire_era

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  Config.validate Config.default;
  Config.validate (Config.paper ~nthreads:72);
  let bad = { Config.default with slots = 3 } in
  (match Config.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-power-of-two slots accepted");
  let bad = { Config.default with nthreads = 0 } in
  match Config.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero threads accepted"

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "smr.hdr",
      [
        Alcotest.test_case "lifecycle" `Quick test_hdr_lifecycle;
        Alcotest.test_case "nil sentinel" `Quick test_hdr_nil;
        Alcotest.test_case "uids unique" `Quick test_hdr_uids_unique;
        Alcotest.test_case "set_live resets fields" `Quick
          test_hdr_set_live_resets;
        Alcotest.test_case "config validation" `Quick test_config_validate;
      ] );
    scheme_suite "smr.leaky" (module Leaky)
      ~expect:{ reclaims = false; protects = true };
    scheme_suite "smr.ebr" (module Ebr)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.ibr" (module Ibr)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.he" (module He)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.hp" (module Hp)
      ~expect:{ reclaims = true; protects = true };
    ( "smr.robustness",
      [
        Alcotest.test_case "HP bounded under stall" `Quick
          (test_robust_bounded (module Hp));
        Alcotest.test_case "HE bounded under stall" `Quick
          (test_robust_bounded (module He));
        Alcotest.test_case "IBR bounded under stall" `Quick
          (test_robust_bounded (module Ibr));
        Alcotest.test_case "Epoch pins under stall" `Quick
          (test_nonrobust_pins (module Ebr));
        Alcotest.test_case "UAF detector fires" `Quick test_uaf_detector_fires;
      ] );
  ]
