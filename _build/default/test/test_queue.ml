(* Michael-Scott queue: FIFO semantics, conservation under
   concurrency, and reclamation accounting — across schemes. *)

open Smr

let cfg = { Config.default with nthreads = 4; check_uaf = true }

module MakeTests (T : Tracker.S) = struct
  module Q = Dstruct.Ms_queue.Make (T)

  let test_fifo () =
    let q = Q.create cfg in
    for i = 1 to 100 do
      Q.enqueue q ~tid:0 i
    done;
    Alcotest.(check int) "length" 100 (Q.length q);
    for i = 1 to 100 do
      Alcotest.(check (option int)) "fifo order" (Some i) (Q.dequeue q ~tid:0)
    done;
    Alcotest.(check (option int)) "empty" None (Q.dequeue q ~tid:0)

  let test_interleaved () =
    let q = Q.create cfg in
    Q.enqueue q ~tid:0 1;
    Q.enqueue q ~tid:0 2;
    Alcotest.(check (option int)) "1" (Some 1) (Q.dequeue q ~tid:0);
    Q.enqueue q ~tid:0 3;
    Alcotest.(check (option int)) "2" (Some 2) (Q.dequeue q ~tid:0);
    Alcotest.(check (option int)) "3" (Some 3) (Q.dequeue q ~tid:0);
    Alcotest.(check (option int)) "none" None (Q.dequeue q ~tid:0)

  let test_reclamation () =
    let q = Q.create cfg in
    for round = 1 to 5 do
      for i = 1 to 200 do
        Q.enqueue q ~tid:0 ((round * 1000) + i)
      done;
      for _ = 1 to 200 do
        ignore (Q.dequeue q ~tid:0)
      done
    done;
    Q.flush q ~tid:0;
    Q.flush q ~tid:0;
    let s = Stats.snapshot (Q.stats q) in
    if T.name <> "Leaky" then begin
      Alcotest.(check int) "all retired dummies freed" s.Stats.retires
        s.Stats.frees;
      Alcotest.(check bool) "plenty retired" true (s.Stats.retires >= 1000)
    end

  let test_concurrent_conservation () =
    let q = Q.create cfg in
    let producers = 2 and consumers = 2 in
    let per_producer = 3_000 in
    let consumed = Array.make consumers [] in
    let produced_done = Atomic.make 0 in
    let prod p () =
      for i = 1 to per_producer do
        Q.enqueue q ~tid:p ((p * per_producer) + i)
      done;
      Atomic.incr produced_done
    in
    let cons c () =
      let tid = producers + c in
      let acc = ref [] in
      (* Drain until every producer has finished *and* a subsequent
         dequeue (after observing that) comes back empty — a None seen
         while producers may still enqueue is not final. *)
      let rec drain () =
        match Q.dequeue q ~tid with
        | Some v ->
            acc := v :: !acc;
            drain ()
        | None ->
            if Atomic.get produced_done < producers then begin
              Domain.cpu_relax ();
              drain ()
            end
            else final ()
      and final () =
        match Q.dequeue q ~tid with
        | Some v ->
            acc := v :: !acc;
            final ()
        | None -> ()
      in
      drain ();
      consumed.(c) <- !acc
    in
    let ds =
      List.init producers (fun p -> Domain.spawn (prod p))
      @ List.init consumers (fun c -> Domain.spawn (cons c))
    in
    List.iter Domain.join ds;
    (* Conservation: every value dequeued exactly once. *)
    let all = Array.to_list consumed |> List.concat |> List.sort compare in
    let expected =
      List.concat_map
        (fun p -> List.init per_producer (fun i -> (p * per_producer) + i + 1))
        (List.init producers Fun.id)
      |> List.sort compare
    in
    Alcotest.(check int) "count conserved" (List.length expected)
      (List.length all);
    Alcotest.(check bool) "multiset conserved" true (all = expected);
    (* Per-producer FIFO: each producer's values appear in order within
       each consumer's stream. *)
    Array.iter
      (fun stream ->
        let stream = List.rev stream in
        List.iter
          (fun p ->
            let mine =
              List.filter
                (fun v ->
                  v > p * per_producer && v <= (p + 1) * per_producer)
                stream
            in
            let sorted = List.sort compare mine in
            Alcotest.(check bool) "per-producer order" true (mine = sorted))
          (List.init producers Fun.id))
      consumed;
    for tid = 0 to cfg.nthreads - 1 do
      Q.flush q ~tid
    done;
    let s = Stats.snapshot (Q.stats q) in
    if T.name <> "Leaky" then
      Alcotest.(check int) "reclamation complete" s.Stats.retires s.Stats.frees

  let tests =
    [
      Alcotest.test_case "fifo" `Quick test_fifo;
      Alcotest.test_case "interleaved" `Quick test_interleaved;
      Alcotest.test_case "reclamation" `Quick test_reclamation;
      Alcotest.test_case "concurrent conservation" `Slow
        test_concurrent_conservation;
    ]
end

let suite name (module T : Tracker.S) =
  let module Q = MakeTests (T) in
  ("queue." ^ name, Q.tests)

let suites =
  [
    suite "hyaline" (module Hyaline_core.Hyaline);
    suite "hyaline-1s" (module Hyaline_core.Hyaline1s);
    suite "hp" (module Smr.Hp);
    suite "ebr" (module Smr.Ebr);
    suite "ibr" (module Smr.Ibr);
  ]
