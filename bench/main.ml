(* Benchmark harness.

   Part 1 — microbenchmarks, one group per quantitative claim of
   Table 1: the per-operation cost of retire, of an enter/leave
   bracket, and of a protected read, for every scheme.  Measured with
   a calibrated min-of-trials timer rather than OLS over raw samples:
   on shared/oversubscribed containers CPU steal inflates the mean by
   an order of magnitude and flips scheme orderings run to run, while
   the minimum over repeated fixed-size trials converges on the
   uncontended cost (the quantity Table 1 is about).

   Part 2 — the full figure suite (Figures 8-16 + Table 1 properties)
   at container scale, via the same Workload.Figures definitions as
   bin/experiments.exe.  Override the per-point duration with
   BENCH_DURATION (seconds) and the thread sweep with BENCH_THREADS
   (comma-separated). *)

(* ------------------------------------------------------------------ *)
(* Pool-backed block, as in the test suite. *)

module Blk = struct
  type t = { hdr : Smr.Hdr.t; index : int }

  let create ~index = { hdr = Smr.Hdr.create (); index }
  let index b = b.index
  let on_alloc b = Smr.Hdr.set_live b.hdr
  let on_free _ = ()
end

module Pool = Mpool.Make (Blk)

let cfg_bench = Smr.Config.paper ~nthreads:2

(* One tracked retire (enter; alloc; retire; leave), steady-state: the
   pool recycles, so reclamation work is included, amortized. *)
let retire_cost (module T : Smr.Tracker.S) =
  let t = T.create cfg_bench in
  let pool = Pool.create () in
  (fun () ->
      T.enter t ~tid:0;
      let b = Pool.alloc pool in
      b.Blk.hdr.Smr.Hdr.free_hook <- (fun () -> Pool.free pool b);
      T.alloc_hook t ~tid:0 b.Blk.hdr;
      T.retire t ~tid:0 b.Blk.hdr;
      T.leave t ~tid:0)

(* Bare bracket cost: what a read-only operation pays. *)
let bracket_cost (module T : Smr.Tracker.S) =
  let t = T.create cfg_bench in
  (fun () ->
      T.enter t ~tid:0;
      T.leave t ~tid:0)

(* One protected dereference inside a long-lived bracket. *)
let read_cost (module T : Smr.Tracker.S) =
  let t = T.create cfg_bench in
  let pool = Pool.create () in
  T.enter t ~tid:0;
  let b = Pool.alloc pool in
  T.alloc_hook t ~tid:0 b.Blk.hdr;
  let link = Atomic.make b in
  let proj (b : Blk.t) = b.Blk.hdr in
  (fun () -> ignore (T.read t ~tid:0 ~idx:0 link proj))

(* One row per registry scheme, named "table1/<group>/<scheme>" so the
   head-backend variants (dwcas vs llsc vs packed) sort side by side. *)
let scheme_rows group f =
  List.map
    (fun (s : Workload.Registry.scheme) ->
      ( "table1/" ^ group ^ "/" ^ s.Workload.Registry.s_name,
        f s.Workload.Registry.s_mod ))
    Workload.Registry.schemes

(* The transparency baseline: the same dereference with no tracker in
   the loop — one atomic load plus the projection.  Pairing this row
   with table1/read-cost/<scheme> measures the whole price of
   protection on the read path, Table 1's "transparent" column as a
   number: for Hyaline-family schemes the pair should be within a few
   ns (reads add no per-access bookkeeping), while LFRC's pair spreads
   by two atomic RMWs. *)
let plain_read_cost =
  let pool = Pool.create () in
  let b = Pool.alloc pool in
  let link = Atomic.make b in
  let proj (b : Blk.t) = b.Blk.hdr in
  (fun () -> ignore (Sys.opaque_identity (proj (Atomic.get link))))

(* LFRC's protected read: atomic bump + revalidate + atomic release —
   the "very slow (esp. reading)" row of Table 1, measured. *)
let lfrc_read_cost =
  let b = Smr.Lfrc.make_block 42 ~on_free:ignore in
  let cell = Smr.Lfrc.link (Some b) in
  (fun () ->
      match Smr.Lfrc.acquire cell with
      | Some b -> Smr.Lfrc.release b
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Service-layer costs: one wire round-trip of the codec (encode +
   decode both directions, no transport) and one send/drain cycle of
   the bounded mailbox (the control-plane overhead a request pays on
   top of the map operation). *)

let codec_roundtrip_cost =
  let buf = Buffer.create 64 in
  (fun () ->
      Buffer.clear buf;
      Service.Codec.encode_request buf
        (Service.Codec.Cas { key = 7; expected = 1; desired = 2 });
      let b = Buffer.to_bytes buf in
      let payload = Bytes.sub b 4 (Bytes.length b - 4) in
      ignore (Service.Codec.request_of_payload payload);
      Buffer.clear buf;
      Service.Codec.encode_reply buf Service.Codec.Cas_ok;
      let b = Buffer.to_bytes buf in
      let payload = Bytes.sub b 4 (Bytes.length b - 4) in
      ignore (Service.Codec.reply_of_payload payload))

let mailbox_cost (module T : Smr.Tracker.S) =
  let module MB = Service.Mailbox.Make (T) in
  let mb = MB.create ~cfg:cfg_bench ~capacity:64 () in
  (fun () ->
      ignore (MB.try_send mb ~tid:0 42);
      ignore (MB.drain mb ~tid:1 ~max:1))

(* Chaos hook overhead with chaos off — the zero-cost-when-disabled
   claim, measured on both injection points.  Mpool.alloc pays one
   uncontended atomic load on the (empty) OOM budget; the Conn reply
   path pays one physical-equality check against [Faults.none].  Each
   hooked path is paired with its hypothetical hook-free baseline
   (plain alloc/free has no such baseline left, so the pair there is
   alloc/free with the budget at rest vs. armed-and-drained — the
   same branch, both sides). *)

let mpool_alloc_disabled_hook_cost =
  let pool = Pool.create () in
  (fun () ->
      let b = Pool.alloc pool in
      Pool.free pool b)

let devnull = lazy (Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0)

let conn_write_frame_cost =
  let fd = Lazy.force devnull in
  let out = Buffer.create 32 in
  (fun () ->
      Service.Codec.encode_reply out (Service.Codec.Value 7);
      Service.Conn.write_frame fd out)

let conn_write_reply_disabled_hook_cost =
  let fd = Lazy.force devnull in
  let out = Buffer.create 32 in
  (fun () ->
      Service.Codec.encode_reply out (Service.Codec.Value 7);
      Service.Conn.write_reply ~faults:Service.Conn.Faults.none fd out)

(* lib/replica durability costs: the checksum, one record encode/
   decode, the WAL write path at both batching extremes (a 1-record
   group commit pays the whole sync; a 64-record commit amortizes it),
   and the ack-tap pair — a shard call with the hook disabled (one
   physical-equality check) vs the same call group-committing to the
   deterministic mem store. *)

let crc32_cost =
  let s = String.init 64 Char.chr in
  fun () -> ignore (Service.Codec.crc32 s ~pos:0 ~len:64)

let wal_record_roundtrip_cost =
  let buf = Buffer.create 64 in
  fun () ->
    Buffer.clear buf;
    Service.Codec.encode_wal_record buf ~seq:123456
      (Service.Codec.Set { key = 7; value = 70 });
    let b = Buffer.to_bytes buf in
    let payload = Bytes.sub b 4 (Bytes.length b - 4) in
    ignore (Service.Codec.decode_wal_record payload)

(* Keep the log bounded under the calibrated iteration counts: drop
   the committed prefix (and its dead segments) every few thousand
   records, like a primary snapshotting would. *)
let wal_trim w =
  let c = Replica.Wal.committed_seq w in
  if c land 4095 = 0 then Replica.Wal.truncate_upto w ~seq:c

let wal_commit_cost ~batch =
  let store, _ = Replica.Store.Mem.create () in
  let w, _ = Replica.Wal.open_ ~store ~shard:0 () in
  fun () ->
    for k = 1 to batch do
      ignore (Replica.Wal.append w (Service.Codec.Set { key = k; value = k }))
    done;
    Replica.Wal.commit w;
    wal_trim w

let shard_call_hook_off_cost =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      { Service.Shard.default_config with Service.Shard.shards = 1; clients = 1 }
  in
  fun () ->
    ignore (Service.Shard.call svc ~tid:0 (Service.Codec.Put { key = 7; value = 1 }))

let shard_call_mem_wal_cost =
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      { Service.Shard.default_config with Service.Shard.shards = 1; clients = 1 }
      ~store ()
  in
  fun () ->
    ignore
      (Service.Shard.call p.Replica.Primary.svc ~tid:0
         (Service.Codec.Put { key = 7; value = 1 }));
    wal_trim p.Replica.Primary.wals.(0)

(* ------------------------------------------------------------------ *)
(* lib/cluster placement costs: the per-request ring hash, the full
   virtual-node table build, and the ownership check + redirect a
   mis-routed request pays at a node before any shard is touched (the
   evloop pump answers it inline, so this is the whole server-side
   cost of a Moved bounce). *)

let ring_slot_cost =
  let k = ref 0 in
  fun () ->
    incr k;
    ignore (Sys.opaque_identity (Cluster.Ring.slot_of_key ~nslots:64 !k))

let ring_assign_cost () =
  ignore
    (Sys.opaque_identity
       (Cluster.Ring.assign ~seed:42 ~nslots:64 ~nodes:[ 0; 1; 2 ]))

let node_redirect_cost =
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      { Service.Shard.default_config with Service.Shard.shards = 1; clients = 2 }
      ~store ()
  in
  (* Every slot assigned to node 1 while this is node 0: every key
     bounces, so the loop measures check + Moved construction only. *)
  let node =
    Cluster.Node.create ~node_id:0 ~nslots:64 ~owners:(Array.make 64 1)
      ~apply_tid:1 p
  in
  fun () ->
    ignore
      (Sys.opaque_identity (Cluster.Node.handle node (Service.Codec.Get 7)))

(* ------------------------------------------------------------------ *)
(* lib/shm transport costs: the syscall-vs-memcpy substitution,
   measured in isolation.  Each row carries the same codec CAS frame
   across a process-boundary mechanism on one thread.  The ring row is
   try_send + pending + streaming decode + finish_msg over an
   in-memory ring — the exact per-frame hot path of [Shm_conn], pure
   memory traffic.  The socketpair row writes the same frame and reads
   it back through the same shared [Codec.frame_reader] — the
   per-frame syscall cost the unix transport pays.  Single-threaded on
   purpose: on a 1-CPU container the end-to-end p99 of both live
   transports is dominated by the same ~1 ms scheduler/GC tail, which
   would hide exactly the substitution these rows quantify (end-to-end
   RTTs come from [experiments serve --transport]). *)

let bench_frame () =
  let b = Buffer.create 32 in
  Service.Codec.encode_request b
    (Service.Codec.Cas { key = 7; expected = 1; desired = 2 });
  Buffer.to_bytes b

let mk_mem_ring cap =
  let ctrl = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 16 in
  let data = Bigarray.Array1.create Bigarray.char Bigarray.c_layout cap in
  Shm.Ring.init ~ctrl ~head_cell:0 ~tail_cell:8;
  Shm.Ring.create ~ctrl ~head_cell:0 ~tail_cell:8 ~data ~off:0 ~cap

let ring_frame_pass_cost =
  let ring = mk_mem_ring 4096 in
  let reader = Service.Codec.frame_reader (Shm.Ring.source ring) in
  let frame = bench_frame () in
  let len = Bytes.length frame in
  fun () ->
    if not (Shm.Ring.try_send ring frame ~pos:0 ~len) then
      failwith "bench: ring full";
    match Shm.Ring.pending ring with
    | `Msg _ -> (
        match Service.Codec.next_frame reader with
        | Service.Codec.Frame _ -> Shm.Ring.finish_msg ring
        | _ -> failwith "bench: ring decode")
    | _ -> failwith "bench: ring pending"

let sock_pair = lazy (Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)

let unix_frame_pass_cost =
  let reader =
    lazy
      (let _, rd = Lazy.force sock_pair in
       Service.Codec.frame_reader (fun b off len -> Unix.read rd b off len))
  in
  let frame = bench_frame () in
  let len = Bytes.length frame in
  fun () ->
    let wr, _ = Lazy.force sock_pair in
    if Unix.write wr frame 0 len <> len then failwith "bench: short write";
    match Service.Codec.next_frame (Lazy.force reader) with
    | Service.Codec.Frame _ -> ()
    | _ -> failwith "bench: sock decode"

(* The shared streaming decoder alone, over an in-memory source — the
   unix transport's read path after this PR moved it onto
   [Codec.frame_reader]; pairs with codec-roundtrip as the
   no-regression evidence for the socket path. *)
let frame_decode_cost =
  let frame = bench_frame () in
  let len = Bytes.length frame in
  let pos = ref 0 in
  let src b off l =
    let l = min l (len - !pos) in
    Bytes.blit frame !pos b off l;
    pos := !pos + l;
    if !pos = len then pos := 0;
    l
  in
  let reader = Service.Codec.frame_reader src in
  fun () ->
    match Service.Codec.next_frame reader with
    | Service.Codec.Frame _ -> ()
    | _ -> failwith "bench: decode"

(* What the multiplexer pays to answer a GET inline: enter the leased
   zero-copy bracket, read the live map, leave.  The shm transport's
   replacement for a whole mailbox round trip. *)
let zc_get_inline_cost =
  let svc =
    lazy
      (let svc =
         Service.Shard.create
           ~structure:(Workload.Registry.find_structure "hashmap")
           ~scheme:(Workload.Registry.find_scheme "hyaline")
           {
             Service.Shard.default_config with
             Service.Shard.shards = 1;
             clients = 1;
             zc_readers = 1;
           }
       in
       ignore
         (Service.Shard.call svc ~tid:0
            (Service.Codec.Put { key = 7; value = 70 }));
       let slot =
         match svc.Service.Shard.zc_lease () with
         | Some s -> s
         | None -> failwith "bench: no zc slot"
       in
       (svc, slot))
  in
  fun () ->
    let svc, slot = Lazy.force svc in
    svc.Service.Shard.zc_enter ~slot;
    ignore (svc.Service.Shard.zc_get ~slot 7);
    svc.Service.Shard.zc_leave ~slot

(* Latency-distribution rows for the same two frame passes: exact
   percentiles over sorted per-op samples, each sample the per-op mean
   of 512 consecutive ops.  Batching serves two masters: the only
   clock here is [gettimeofday] (microsecond granularity, a single
   ring pass is ~150 ns), and the kernel's ~1 ms scheduler tick —
   batches short enough that a tick lands in ~1% of them would make
   both p99s read as the tick, while 512-op batches amortize it below
   the transport signal.  Paired sampling: same-size batches of the
   two mechanisms alternate within one pass, so a burst of CPU steal
   lands on both distributions alike and the percentile *ratio* stays
   a property of the mechanisms (separate passes run in different
   steal climates and the ratio wanders run to run).  Single-threaded,
   so the tail reflects the transport itself rather than the scheduler
   — the form of the shm-vs-unix comparison that is stable in CI;
   scheduler-inclusive end-to-end RTTs come from
   [experiments serve --transport]. *)
let sample_percentiles_paired fn_a fn_b =
  let k = 512 in
  let n = 3_000 in
  let sa = Array.make n 0.0 and sb = Array.make n 0.0 in
  let window s i fn =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      fn ()
    done;
    s.(i) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int k
  in
  for _ = 1 to 10_000 do
    fn_a ();
    fn_b ()
  done;
  for i = 0 to n - 1 do
    window sa i fn_a;
    window sb i fn_b
  done;
  let pct s =
    Array.sort compare s;
    (s.(n / 2), s.(n * 99 / 100))
  in
  (pct sa, pct sb)

let percentile_rows () =
  (* The decode path allocates one payload per frame, so with the
     default 256k-word minor heap a ~60 µs collection lands in several
     percent of the batches and both p99s read as p50 + an equal GC
     term — the GC, not the transports.  A large minor heap pushes
     collections past the 1% quantile on both sides equally; the
     min-of-trials rows above are unaffected either way. *)
  let g = Gc.get () in
  Gc.set { g with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let (ring_p50, ring_p99), (unix_p50, unix_p99) =
    sample_percentiles_paired ring_frame_pass_cost unix_frame_pass_cost
  in
  Gc.set g;
  [
    ("serve/transport/frame-pass-p50/shm-ring", ring_p50);
    ("serve/transport/frame-pass-p99/shm-ring", ring_p99);
    ("serve/transport/frame-pass-p50/unix-socketpair", unix_p50);
    ("serve/transport/frame-pass-p99/unix-socketpair", unix_p99);
  ]

(* The measurement kernel: warm up, grow the batch until one trial is
   long enough to dwarf timer granularity (~2 ms), then report the
   minimum ns/op over repeated trials.  Any preemption, steal or GC
   pause only ever *adds* time to a trial, so the minimum estimates
   the uncontended cost — the quantity Table 1 is about — and is
   stable where a mean (or an OLS fit over raw samples) is not. *)
let measure fn =
  for _ = 1 to 1_000 do
    fn ()
  done;
  let time_batch n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      fn ()
    done;
    Unix.gettimeofday () -. t0
  in
  let rec calibrate n =
    if n >= 10_000_000 || time_batch n >= 0.002 then n else calibrate (n * 10)
  in
  let n = calibrate 100 in
  let best = ref infinity in
  for _ = 1 to 7 do
    let d = time_batch n in
    if d < !best then best := d
  done;
  !best *. 1e9 /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Incremental-snapshot amplification: the cost of publishing one
   shard snapshot as a function of keyspace size and dirty-set size.
   Single-shot wall-clock rows (best of 3), not [measure] rows: a
   large-keyspace traversal is milliseconds — far above timer
   granularity — and each delta consumes the dirty set it measures,
   so a calibrated batch loop would time an empty set.  Every trial
   re-dirties the same keys through acked shard calls *outside* the
   timed region, so full and delta snapshot the identical state. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let size_label n =
  if n >= 1_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else Printf.sprintf "%dk" (n / 1_000)

let with_bench_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

(* The commit-sync substitution the mmap store makes: the same
   [Wal.commit] group-commit loop, synced by fsync(2) on the fs store
   vs msync(2) on the mmap store's live mapping. *)
let wal_commit_sync_row ~name store =
  let w, _ = Replica.Wal.open_ ~store ~shard:0 () in
  let k = ref 0 in
  let ns =
    measure (fun () ->
        incr k;
        ignore (Replica.Wal.append w (Service.Codec.Set { key = !k; value = !k }));
        Replica.Wal.commit w;
        wal_trim w)
  in
  Replica.Wal.close w;
  (name, ns)

let snapshot_rows () =
  let structure = Workload.Registry.find_structure "hashmap" in
  let scheme = Workload.Registry.find_scheme "hyaline" in
  let rows = ref [] in
  List.iter
    (fun keys ->
      let store, _ = Replica.Store.Mem.create () in
      let p, _ =
        Replica.Primary.create ~structure ~scheme
          {
            Service.Shard.default_config with
            Service.Shard.shards = 1;
            clients = 1;
          }
          ~store ~delta:true ~dirty_cap:(1 lsl 16) ()
      in
      let svc = p.Replica.Primary.svc in
      let put k v =
        ignore
          (Service.Shard.call svc ~tid:0
             (Service.Codec.Put { key = k; value = v }))
      in
      for k = 1 to keys do
        put k k
      done;
      (* Publish the base first: truncates the prefill WAL and arms a
         fresh dirty set for the delta trials. *)
      ignore (Replica.Primary.snapshot_shard p ~shard:0 ~mode:`Full ());
      if keys = 100_000 then begin
        (* The streaming strict loader, over the base just published. *)
        let load_ns = ref infinity in
        for _ = 1 to 3 do
          let d =
            time_once (fun () ->
                ignore (Replica.Snapshot.load_latest ~store ~shard:0))
          in
          if d < !load_ns then load_ns := d
        done;
        rows :=
          ( Printf.sprintf "table1/replica/snapshot-load/%s" (size_label keys),
            !load_ns )
          :: !rows
      end;
      List.iter
        (fun dirty ->
          let stride = max 1 (keys / dirty) in
          let redirty salt =
            for i = 0 to dirty - 1 do
              let k = 1 + (i * stride mod keys) in
              put k (k + salt)
            done
          in
          let timed_snap mode =
            let best = ref infinity in
            for trial = 1 to 3 do
              redirty trial;
              let d =
                time_once (fun () ->
                    ignore
                      (Replica.Primary.snapshot_shard p ~shard:0
                         ~truncate:false ~mode ()))
              in
              if d < !best then best := d
            done;
            !best
          in
          let delta_ns = timed_snap `Delta in
          let full_ns = timed_snap `Full in
          let tag m =
            Printf.sprintf "table1/replica/snapshot-%s/%s@%sdirty" m
              (size_label keys) (size_label dirty)
          in
          rows := (tag "delta", delta_ns) :: (tag "full", full_ns) :: !rows)
        (List.filter (fun d -> d <= keys) [ 1_000; 10_000 ]);
      Replica.Primary.stop p)
    [ 10_000; 100_000; 1_000_000 ];
  let sync_rows =
    [
      with_bench_dir "walfsync" (fun dir ->
          wal_commit_sync_row ~name:"table1/replica/wal-commit-fsync"
            (Replica.Store.fs ~dir));
      with_bench_dir "walmsync" (fun dir ->
          wal_commit_sync_row ~name:"table1/replica/wal-commit-msync"
            (Replica.Store.mmap ~dir ()));
    ]
  in
  List.rev !rows @ sync_rows

(* ------------------------------------------------------------------ *)
(* lib/shmalloc: the shared-memory value arena.  The class rows time
   the two halves of a block's life separately — phase-timed fills and
   drains, snapshot_rows-style, because a steady-state [measure] thunk
   can only ever see alloc+free blended.  The free row deliberately
   includes the amortized flush (batch padding + insert pass): that is
   the real retire cost the daemon pays, not just the stamp bump. *)

let shmalloc_tmp tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bench-%s-%d" tag (Unix.getpid ()))

let with_arena tag f =
  let path = shmalloc_tmp tag ^ ".arena" in
  Shmalloc.Arena.unlink_path path;
  let a = Shmalloc.Arena.create ~path ~slots:2 ~tids:1 () in
  Fun.protect
    ~finally:(fun () ->
      Shmalloc.Arena.mark_closed a;
      Shmalloc.Arena.detach a;
      Shmalloc.Arena.unlink a)
  @@ fun () -> f a

let shmalloc_class_rows () =
  with_arena "shmalloc" @@ fun a ->
  let class_rows =
    (* Default geometry: payload caps 16/128/1024/4104 B; fill counts
       stay under the per-class block budgets (4096/2048/1024/512). *)
    [ (16, 2048); (128, 1024); (1024, 512); (4104, 256) ]
    |> List.concat_map (fun (payload, count) ->
           let s = String.make payload 'v' in
           let refs = Array.make count 0 in
           let rounds = 16 in
           let best_alloc = ref infinity and best_free = ref infinity in
           for _trial = 1 to 3 do
             let t_alloc = ref 0.0 and t_free = ref 0.0 in
             for _round = 1 to rounds do
               let t0 = Unix.gettimeofday () in
               for i = 0 to count - 1 do
                 match Shmalloc.Arena.alloc_put a s with
                 | Some r -> refs.(i) <- r
                 | None -> failwith "bench: arena class exhausted"
               done;
               let t1 = Unix.gettimeofday () in
               for i = 0 to count - 1 do
                 Shmalloc.Arena.retire a ~tid:0 refs.(i)
               done;
               Shmalloc.Arena.flush a;
               let t2 = Unix.gettimeofday () in
               t_alloc := !t_alloc +. (t1 -. t0);
               t_free := !t_free +. (t2 -. t1)
             done;
             if !t_alloc < !best_alloc then best_alloc := !t_alloc;
             if !t_free < !best_free then best_free := !t_free
           done;
           let per t = t *. 1e9 /. float_of_int (count * rounds) in
           [
             (Printf.sprintf "shmalloc/alloc/%dB" payload, per !best_alloc);
             (Printf.sprintf "shmalloc/free/%dB" payload, per !best_free);
           ])
  in
  (* Reference decode: unpack all four packed fields plus the byte
     offset — the work a client does per [Val_ref] frame before the
     copy-out.  Class-independent, one row. *)
  let decode_row =
    match Shmalloc.Arena.alloc_put a (String.make 64 'r') with
    | None -> []
    | Some r ->
        let ns =
          measure (fun () ->
              ignore
                (Sys.opaque_identity
                   (Shmalloc.Arena.Ref.gen r + Shmalloc.Arena.Ref.cls r
                  + Shmalloc.Arena.Ref.len r + Shmalloc.Arena.Ref.idx r
                  + Shmalloc.Arena.off_of_ref a r)))
        in
        Shmalloc.Arena.retire a ~tid:0 r;
        Shmalloc.Arena.flush a;
        [ ("shmalloc/ref-decode", ns) ]
  in
  class_rows @ decode_row

(* The transparency gate, arena edition: the same shard call with the
   arena branch disabled (heap values, the default) vs wired in.  The
   arena-off row is the overhead the subsystem must not add when it is
   not configured. *)
let shmalloc_shard_call ~arena =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 1;
        clients = 1;
        arena;
      }
  in
  let lc = Service.Conn.Loopback.connect svc ~tid:0 in
  let k = ref 0 in
  let ns =
    measure (fun () ->
        incr k;
        let key = !k land 255 in
        ignore
          (Service.Conn.Loopback.call lc
             (Service.Codec.Put { key; value = !k }));
        ignore (Service.Conn.Loopback.call lc (Service.Codec.Get key)))
  in
  svc.Service.Shard.stop ();
  ns

let shmalloc_overhead_rows () =
  let off = shmalloc_shard_call ~arena:None in
  let on = with_arena "shmalloc-svc" (fun a -> shmalloc_shard_call ~arena:(Some a)) in
  [
    ("shmalloc/overhead/shard-call-arena-off", off);
    ("shmalloc/overhead/shard-call-arena-on", on);
  ]

(* The remote GET the subsystem exists for: full RTT through the shm
   rings for a 1 KiB value, answered by reference (the multiplexer
   mints a [Val_ref] from one atomic map read and the client copies
   out of its own mapping) vs materialized daemon-side through the
   mailbox.  BENCH JSON pairs these rows for the CI ratio gate. *)
let serve_zc_rows () =
  let path = shmalloc_tmp "zc-serve" in
  Service.Shm_conn.claim_listen_path path;
  let arena =
    Shmalloc.Arena.create ~path:(path ^ ".arena") ~slots:2 ~tids:1 ()
  in
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 1;
        clients = 2;
        zc_readers = 1;
        arena = Some arena;
      }
  in
  let srv = Service.Shm_conn.serve svc ~path () in
  Fun.protect
    ~finally:(fun () ->
      Service.Shm_conn.shutdown srv;
      svc.Service.Shard.stop ();
      Shmalloc.Arena.mark_closed arena;
      Shmalloc.Arena.detach arena;
      Shmalloc.Arena.unlink arena)
  @@ fun () ->
  let cref = Service.Shm_conn.connect ~path in
  let ccopy = Service.Shm_conn.connect ~path in
  Fun.protect
    ~finally:(fun () ->
      Service.Shm_conn.close cref;
      Service.Shm_conn.close ccopy)
  @@ fun () ->
  if not (Service.Shm_conn.enable_zc cref) then
    failwith "bench: zc negotiation failed";
  (* Value-size sweep: the reference path's win should hold from a
     cache-line-sized value up to the largest legal blob. *)
  [ 64; 1024; 4080 ]
  |> List.concat_map (fun n ->
         let blob = String.init n (fun i -> Char.chr (i land 0xff)) in
         ignore
           (Service.Shm_conn.call cref
              (Service.Codec.Putb { key = 1; value = blob }));
         let ref_ns =
           measure (fun () ->
               ignore (Service.Shm_conn.call cref (Service.Codec.Get 1)))
         in
         let copy_ns =
           measure (fun () ->
               ignore (Service.Shm_conn.call ccopy (Service.Codec.Get 1)))
         in
         [
           (Printf.sprintf "serve/zc/ref-get/%dB" n, ref_ns);
           (Printf.sprintf "serve/zc/copy-get/%dB" n, copy_ns);
         ])

let shmalloc_rows () =
  shmalloc_class_rows () @ shmalloc_overhead_rows () @ serve_zc_rows ()

let microbenches () =
  scheme_rows "retire-cost" retire_cost
  @ scheme_rows "bracket-cost" bracket_cost
  @ scheme_rows "read-cost" read_cost
  @ [
      ("table1/read-cost/LFRC", lfrc_read_cost);
      ("table1/transparency/plain-read", plain_read_cost);
      ("table1/service/codec-roundtrip", codec_roundtrip_cost);
    ]
  @ scheme_rows "service/mailbox-cycle" mailbox_cost
  @ [
      ("table1/chaos/mpool-alloc-hook-off", mpool_alloc_disabled_hook_cost);
      ("table1/chaos/conn-write-frame-baseline", conn_write_frame_cost);
      ("table1/chaos/conn-write-reply-hook-off",
       conn_write_reply_disabled_hook_cost);
      ("table1/replica/crc32-64B", crc32_cost);
      ("table1/replica/wal-record-roundtrip", wal_record_roundtrip_cost);
      ("table1/replica/wal-commit-1rec", wal_commit_cost ~batch:1);
      ("table1/replica/wal-commit-64rec", wal_commit_cost ~batch:64);
      ("table1/replica/shard-call-hook-off", shard_call_hook_off_cost);
      ("table1/replica/shard-call-mem-wal", shard_call_mem_wal_cost);
      ("cluster/ring/slot-of-key", ring_slot_cost);
      ("cluster/ring/assign-64s-3n", ring_assign_cost);
      ("cluster/node/redirect-check", node_redirect_cost);
    ]
  @ [
      ("serve/transport/frame-pass/shm-ring", ring_frame_pass_cost);
      ("serve/transport/frame-pass/unix-socketpair", unix_frame_pass_cost);
      ("serve/transport/frame-decode/shared-reader", frame_decode_cost);
      ("serve/transport/zc-get-inline", zc_get_inline_cost);
    ]

(* Machine-readable Table 1 rows ([BENCH_JSON=path] or [--json path]):
   the perf trajectory artifact CI uploads, one {name, ns_per_op}
   object per microbench, the head-backend sweep included (every
   registry scheme appears, so dwcas vs llsc vs packed rows sit side
   by side under the same benchmark name prefix). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n  \"unit\": \"ns/op\",\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n"
        (json_escape name)
        (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "(wrote %d JSON rows to %s)@.@." (List.length rows) path

let run_microbenches ?json ~parts () =
  let rows =
    (if List.mem `Table1 parts then
       (microbenches () |> List.map (fun (name, fn) -> (name, measure fn)))
       @ percentile_rows () @ shmalloc_rows ()
     else [])
    @ (if List.mem `Snapshots parts then snapshot_rows () else [])
    |> List.sort compare
  in
  Format.printf "## Table 1 — measured per-operation costs (ns/op)@.";
  Format.printf "%-48s %12s@." "benchmark" "ns/op";
  List.iter (fun (name, ns) -> Format.printf "%-48s %12.1f@." name ns) rows;
  Format.printf "@.";
  Option.iter (fun path -> write_json path rows) json

(* ------------------------------------------------------------------ *)

let getenv_f name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let getenv_threads () =
  match Sys.getenv_opt "BENCH_THREADS" with
  | Some v -> String.split_on_char ',' v |> List.map int_of_string
  | None -> [ 1; 2; 4 ]

let run_figures () =
  let sc =
    {
      Workload.Figures.quick with
      Workload.Figures.duration = getenv_f "BENCH_DURATION" 0.3;
      threads = getenv_threads ();
      stalled = [ 0; 1; 2; 4 ];
    }
  in
  let open Workload in
  let header title =
    Format.printf "## %s@." title;
    Driver.pp_result_header Format.std_formatter ()
  in
  let emit r =
    Driver.pp_result Format.std_formatter r;
    Format.pp_print_flush Format.std_formatter ()
  in
  Format.printf "## Table 1 — scheme properties@.";
  Figures.table1 Format.std_formatter;
  Format.printf "@.";
  let structures = [ "list"; "hashmap"; "bonsai"; "nmtree" ] in
  List.iter
    (fun ds ->
      header (Printf.sprintf "Fig. 8/9 (write-heavy 50i/50d) — %s" ds);
      Figures.sweep ~sc ~structure_name:ds ~schemes:Figures.figure8_schemes
        ~mix:Driver.write_heavy ~emit;
      Format.printf "@.")
    structures;
  header "Fig. 10a (robustness: 2 active + stalled, hashmap)";
  Figures.robustness ~sc ~active:2 ~emit;
  Format.printf "@.";
  header "Fig. 10b (trimming, hashmap, 32 slots)";
  Figures.trimming ~sc ~emit;
  Format.printf "@.";
  List.iter
    (fun ds ->
      header (Printf.sprintf "Fig. 11/12 (read-mostly 90g/10p) — %s" ds);
      Figures.sweep ~sc ~structure_name:ds ~schemes:Figures.figure8_schemes
        ~mix:Driver.read_mostly ~emit;
      Format.printf "@.")
    structures;
  List.iter
    (fun ds ->
      header (Printf.sprintf "Fig. 13/14 (LL/SC backend, write-heavy) — %s" ds);
      Figures.sweep ~sc ~structure_name:ds ~schemes:Figures.ppc_schemes
        ~mix:Driver.write_heavy ~emit;
      Format.printf "@.")
    structures;
  List.iter
    (fun ds ->
      header (Printf.sprintf "Fig. 15/16 (LL/SC backend, read-mostly) — %s" ds);
      Figures.sweep ~sc ~structure_name:ds ~schemes:Figures.ppc_schemes
        ~mix:Driver.read_mostly ~emit;
      Format.printf "@.")
    structures

(* CLI: [--json PATH] (or BENCH_JSON=PATH) writes the Table-1 rows as
   JSON; [--only table1|snapshots|figures|all] restricts which part
   runs, so CI can smoke-test the microbenchmarks (or regenerate just
   the snapshot-amplification rows) without paying for the figure
   suite. *)
let () =
  let json = ref (Sys.getenv_opt "BENCH_JSON") in
  let only = ref "all" in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--only" :: part :: rest ->
        List.iter
          (function
            | "table1" | "snapshots" | "figures" | "all" -> ()
            | p ->
                prerr_endline
                  ("bench: unknown --only part " ^ p
                 ^ " (expected table1|snapshots|figures|all, \
                    comma-separable)");
                exit 2)
          (String.split_on_char ',' part);
        only := part;
        parse rest
    | arg :: _ ->
        prerr_endline ("bench: unknown argument " ^ arg);
        prerr_endline
          "usage: bench [--json PATH] [--only table1|snapshots|figures|all]";
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Format.printf
    "Hyaline reproduction benchmark suite (1-core container scale; see \
     EXPERIMENTS.md)@.@.";
  let picked = String.split_on_char ',' !only in
  let has p = List.mem p picked || List.mem "all" picked in
  let parts =
    (if has "table1" then [ `Table1 ] else [])
    @ if has "snapshots" then [ `Snapshots ] else []
  in
  if parts <> [] then run_microbenches ?json:!json ~parts ();
  if has "figures" then run_figures ()
