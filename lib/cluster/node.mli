(** One cluster member: a durable {!Replica.Primary} that also speaks
    the cluster-control opcodes and enforces slot ownership.

    The node's [handle] is a {!Service.Conn} [ext] handler.  Data
    requests are ownership-checked first: a key whose slot this node
    does not own gets {!Service.Codec.Moved} without touching a shard
    — redirects are served off the data path, from whatever domain
    runs the transport (the evloop pump included).  Owned keys fall
    through ([None]) to the normal shard/WAL route.

    That transport-side check is a fast path only; the {e
    authoritative} one is an execution-time admission filter
    ({!Service.Shard.admit}, installed by {!create}) that each shard
    consumer runs in the same serial stream as the mutations it
    gates.  A write that passed the dispatch check and then sat in a
    transport backpressure queue or a shard mailbox while its slot was
    frozen is answered [Moved] at execution — it never mutates the
    map, never reaches the WAL, and is never acked by the old owner.

    [Cl_freeze] completes the other half of that argument: after
    flipping and persisting the table it runs a {e quiesce barrier} —
    one Get per shard through the FIFO mailboxes, waited to completion
    — so its ack certifies that every write the node will ever ack on
    the frozen slot is already committed.  The committed watermark
    read after freeze-ack therefore bounds the migration driver's
    final catch-up exactly.  If a stalled or dead consumer keeps a
    barrier from landing within the quiesce budget, the freeze rolls
    the flip back and answers [Error] instead of acking an
    uncertifiable cutover.

    The ownership table is the cluster's {e atomic cutover record}: it
    is persisted through the store's [s_write] (write-temp-fsync-
    rename) {e before} any [Cl_grant]/[Cl_freeze] ack fires, so a
    node that crashes and reboots recovers exactly the slot set it
    last acknowledged — a migration is never half-remembered.

    Migration ingest ([Cl_apply]) bypasses the ownership check by
    design (the target does not own the slot until the final grant)
    and acks only once every record's normal submit path has
    committed — the WAL ack hook defers replies past the group
    commit, so [Cl_ok] means durable, same as any client ack.

    Snapshot shipping ([Cl_snap]) pages a bracket-protected live
    traversal: cursor 0 stamps the shard's committed WAL seq {e
    before} traversing (catch-up resumes after that seq — the fuzzy
    snapshot + absolute-replay convergence argument from
    lib/replica), caches the result, and later cursors page it out in
    {!Service.Codec.cl_snap_max} chunks.

    {b Delta shipping (the handoff-token handshake).}  A successful
    [Cl_freeze] mints an in-memory {e handoff token} for the slot
    (answered by [Cl_base]); the driver threads it into the final
    [Cl_grant], and the grantee records it as its {e acquisition
    token} and starts a per-slot dirty set fed by the primary's
    mutation tap — installed {e before} the ownership flip, so every
    write this tenure admits is tracked.  When the slot later
    migrates back, the driver reads the target's [Cl_base] token and
    passes it as [Cl_snap]'s [base]: if it equals the source's
    acquisition token, the source's copy diverged from the target's
    exactly by its dirty set, and the ship pages only those keys —
    deletions as tombstones, the batch's [delta] flag up.  Any
    mismatch (a reboot cleared the in-memory tokens, an intermediate
    owner, dirty-set overflow) silently degrades to the full
    traversal, for which the driver first purges the slot at the
    target ([Cl_purge], normal-ingest deletions, WAL-durable) so
    stale prior-tenure keys cannot resurrect. *)

type t

val create :
  node_id:int ->
  ?nslots:int ->
  ?quiesce_timeout:float ->
  ?slot_dirty_cap:int ->
  owners:int array ->
  apply_tid:int ->
  Replica.Primary.t ->
  t
(** Wrap a booted primary.  [owners] is the initial table (length
    [nslots], default {!Ring.default_nslots}); a table persisted by a
    previous life of this node in the primary's store takes
    precedence — reboot keeps acknowledged cutovers.  [apply_tid] is
    the producer tid migration ingest and the freeze barrier run
    under; reserve it for the node (in particular it must differ from
    the evloop backend's [evloop_tid]), because the admission filter
    exempts it.  [quiesce_timeout] (seconds, default 5) bounds the
    [Cl_freeze] barrier wait.  [slot_dirty_cap] (default 16384)
    bounds each per-slot dirty set; past half occupancy it poisons
    and the slot's next outbound ship degrades to full.  Installs the
    node's admission filter on the primary's service
    ({!Service.Shard.t.set_admit}) {e and} its mutation tap
    ({!Replica.Primary.set_tap}) — wire the node before serving
    traffic.  @raise Invalid_argument on a table/[nslots] length
    mismatch. *)

val handle : t -> Service.Codec.request -> Service.Codec.reply option
(** The [ext] handler described above.  Control ops serialize on an
    internal lock; the data-path ownership check is two atomic
    loads. *)

val deferrable : Service.Codec.request -> bool
(** The [ext_defer] classifier to pair with {!handle} on an event-loop
    transport: [true] for the control and replication opcodes, whose
    handling blocks (group-commit waits, full-shard traversals, WAL
    segment reads, the node's control lock — a freeze holds it across
    its whole quiesce).  Pass as [~ext_defer:(Node.deferrable)] to
    {!Service.Conn.serve_unix} so they run on the loop's worker domain
    instead of stalling the pump. *)

val node_id : t -> int
val nslots : t -> int
val owners : t -> int array
(** Snapshot copy of the current table. *)

val version : t -> int
val owns_slot : t -> int -> bool
val primary : t -> Replica.Primary.t
