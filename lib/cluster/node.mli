(** One cluster member: a durable {!Replica.Primary} that also speaks
    the cluster-control opcodes and enforces slot ownership.

    The node's [handle] is a {!Service.Conn} [ext] handler.  Data
    requests are ownership-checked first: a key whose slot this node
    does not own gets {!Service.Codec.Moved} without touching a shard
    — redirects are served off the data path, from whatever domain
    runs the transport (the evloop pump included).  Owned keys fall
    through ([None]) to the normal shard/WAL route.

    The ownership table is the cluster's {e atomic cutover record}: it
    is persisted through the store's [s_write] (write-temp-fsync-
    rename) {e before} any [Cl_grant]/[Cl_freeze] ack fires, so a
    node that crashes and reboots recovers exactly the slot set it
    last acknowledged — a migration is never half-remembered.

    Migration ingest ([Cl_apply]) bypasses the ownership check by
    design (the target does not own the slot until the final grant)
    and acks only once every record's normal submit path has
    committed — the WAL ack hook defers replies past the group
    commit, so [Cl_ok] means durable, same as any client ack.

    Snapshot shipping ([Cl_snap]) pages a bracket-protected live
    traversal: cursor 0 stamps the shard's committed WAL seq {e
    before} traversing (catch-up resumes after that seq — the fuzzy
    snapshot + absolute-replay convergence argument from
    lib/replica), caches the result, and later cursors page it out in
    {!Service.Codec.cl_snap_max} chunks. *)

type t

val create :
  node_id:int ->
  ?nslots:int ->
  owners:int array ->
  apply_tid:int ->
  Replica.Primary.t ->
  t
(** Wrap a booted primary.  [owners] is the initial table (length
    [nslots], default {!Ring.default_nslots}); a table persisted by a
    previous life of this node in the primary's store takes
    precedence — reboot keeps acknowledged cutovers.  [apply_tid] is
    the producer tid [Cl_apply] ingests under; reserve it for the
    node.  @raise Invalid_argument on a table/[nslots] length
    mismatch. *)

val handle : t -> Service.Codec.request -> Service.Codec.reply option
(** The [ext] handler described above.  Control ops serialize on an
    internal lock; the data-path ownership check is lock-free. *)

val node_id : t -> int
val nslots : t -> int
val owners : t -> int array
(** Snapshot copy of the current table. *)

val version : t -> int
val owns_slot : t -> int -> bool
val primary : t -> Replica.Primary.t
