(* Client-side routing; see router.mli. *)

module Codec = Service.Codec

type endpoint = {
  ep_id : int;
  ep_path : string;
  ep_lock : Mutex.t;
  mutable ep_fd : Unix.file_descr option;
}

let endpoint ~id ~path =
  { ep_id = id; ep_path = path; ep_lock = Mutex.create (); ep_fd = None }

let endpoint_id ep = ep.ep_id

let ep_fd ep =
  match ep.ep_fd with
  | Some fd -> fd
  | None ->
      let fd = Service.Conn.connect_unix ~path:ep.ep_path in
      ep.ep_fd <- Some fd;
      fd

let ep_drop ep =
  (match ep.ep_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  ep.ep_fd <- None

let endpoint_call ep req =
  Mutex.lock ep.ep_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ep.ep_lock)
    (fun () ->
      let attempt () = Service.Conn.call_fd (ep_fd ep) req in
      try attempt ()
      with
      | Service.Conn.Closed | Codec.Malformed _
      | Unix.Unix_error _ | Sys_error _
      -> (
        (* The node may have rebooted under us: re-dial once.  A node
           that is actually down surfaces as an [Error] reply, which
           routing treats like any other dead end. *)
        ep_drop ep;
        try attempt ()
        with
        | Service.Conn.Closed | Codec.Malformed _
        | Unix.Unix_error _ | Sys_error _
        ->
          ep_drop ep;
          Codec.Error "endpoint unreachable"))

let endpoint_close ep =
  Mutex.lock ep.ep_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ep.ep_lock)
    (fun () -> ep_drop ep)

(* ------------------------------------------------------------------ *)

type t = {
  r_nslots : int;
  r_slots : int array;  (* believed owner per slot; benign races *)
  r_eps : (int * endpoint) list;
  r_max_retries : int;
  r_retry_sleep : float;
  r_moved : int Atomic.t;
  r_shed : int Atomic.t;
}

let adopt t ~version:_ owners =
  let n = min (Array.length owners) t.r_nslots in
  Array.blit owners 0 t.r_slots 0 n

let pull_table t =
  let best = ref None in
  List.iter
    (fun (_, ep) ->
      match endpoint_call ep Codec.Cl_info with
      | Codec.Cl_state { version; owners; _ } -> (
          match !best with
          | Some (v, _) when v >= version -> ()
          | _ -> best := Some (version, owners))
      | _ -> ())
    t.r_eps;
  match !best with
  | Some (version, owners) -> adopt t ~version owners
  | None -> ()

let create ?(nslots = Ring.default_nslots) ?(max_retries = 64)
    ?(retry_sleep_s = 0.001) ~endpoints () =
  (match endpoints with [] -> invalid_arg "Router.create: no endpoints" | _ -> ());
  let fallback = (List.hd endpoints).ep_id in
  let t =
    {
      r_nslots = nslots;
      r_slots = Array.make nslots fallback;
      r_eps = List.map (fun ep -> (ep.ep_id, ep)) endpoints;
      r_max_retries = max_retries;
      r_retry_sleep = retry_sleep_s;
      r_moved = Atomic.make 0;
      r_shed = Atomic.make 0;
    }
  in
  pull_table t;
  t

let refresh = pull_table
let slot_table t = Array.copy t.r_slots
let moved_seen t = Atomic.get t.r_moved
let shed_seen t = Atomic.get t.r_shed

let note_owner t ~slot ~node =
  if slot >= 0 && slot < t.r_nslots then t.r_slots.(slot) <- node

let key_of = function
  | Codec.Get k | Codec.Del k -> Some k
  | Codec.Put { key; _ } | Codec.Cas { key; _ } -> Some key
  | _ -> None

let call t req =
  match key_of req with
  | None -> Codec.Error "router: not a data request"
  | Some key ->
      let slot = Ring.slot_of_key ~nslots:t.r_nslots key in
      let rec go attempt =
        let node = t.r_slots.(slot) in
        match List.assoc_opt node t.r_eps with
        | None -> Codec.Error (Printf.sprintf "router: no endpoint for node %d" node)
        | Some ep -> (
            match endpoint_call ep req with
            | Codec.Moved { slot = s; node = n } ->
                Atomic.incr t.r_moved;
                if s >= 0 && s < t.r_nslots then t.r_slots.(s) <- n;
                if attempt >= t.r_max_retries then
                  Codec.Error "router: redirect budget exhausted"
                else begin
                  (* The freeze→grant window answers Moved from both
                     sides for a few round-trips; back off briefly. *)
                  Unix.sleepf t.r_retry_sleep;
                  go (attempt + 1)
                end
            | Codec.Shed ->
                Atomic.incr t.r_shed;
                if attempt >= t.r_max_retries then Codec.Shed
                else begin
                  Unix.sleepf t.r_retry_sleep;
                  go (attempt + 1)
                end
            | r -> r)
      in
      go 0

let close t = List.iter (fun (_, ep) -> endpoint_close ep) t.r_eps
