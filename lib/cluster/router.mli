(** Client-side cluster routing: hash, dial the owner, chase
    redirects.

    The router holds one connection per node (an {!endpoint}, calls
    serialized and transparently re-dialed after a node reboot) and a
    slot→node table seeded from any member's [Cl_info].  A data call
    hashes its key to a slot, calls the believed owner, and on
    {!Service.Codec.Moved} adopts the redirect and retries — bounded,
    with a small sleep, which rides out the freeze→grant window of a
    live migration (both sides briefly answer [Moved] at each other;
    the grant lands within a few round-trips).  [Shed] retries on the
    same backoff.

    Thread-safe: the proxy serves many connections through one
    router.  Slot-table updates are plain int stores — a racy reader
    at worst takes one extra redirect hop. *)

type endpoint

val endpoint : id:int -> path:string -> endpoint
(** Lazily-dialed unix-socket endpoint for node [id].  Calls
    serialize on an internal lock; a connection error closes and
    re-dials once before giving up with an [Error] reply. *)

val endpoint_id : endpoint -> int

val endpoint_call :
  endpoint -> Service.Codec.request -> Service.Codec.reply
(** One raw round-trip to this node, no routing — the migration
    driver's primitive. *)

val endpoint_close : endpoint -> unit

type t

val create :
  ?nslots:int ->
  ?max_retries:int ->
  ?retry_sleep_s:float ->
  endpoints:endpoint list ->
  unit ->
  t
(** [max_retries] (default 64) bounds redirect/shed chasing per call;
    [retry_sleep_s] (default 1 ms) is the backoff between attempts.
    The initial slot table is pulled from the first endpoint that
    answers [Cl_info]; endpoints that are down at creation are used
    lazily.  @raise Invalid_argument on an empty endpoint list. *)

val call : t -> Service.Codec.request -> Service.Codec.reply
(** Route a data request (GET/PUT/DEL/CAS).  Control requests are
    answered with [Error] — they are addressed to specific nodes via
    {!endpoint_call}, not routed. *)

val refresh : t -> unit
(** Re-pull [Cl_info] from every reachable endpoint and adopt the
    highest-version table. *)

val note_owner : t -> slot:int -> node:int -> unit
(** Install one slot mapping (the migration driver's post-cutover
    hint; a stale entry would self-correct through [Moved] anyway). *)

val slot_table : t -> int array
val moved_seen : t -> int
(** Total [Moved] redirects chased — the availability cost of
    migrations, reported in the cluster experiment CSV. *)

val shed_seen : t -> int
val close : t -> unit
