(** Consistent-hash placement: keys → slots → nodes.

    Placement is two-level, the classic sharded-cluster split:

    - [slot_of_key] maps a key to one of [nslots] {e slots} with a
      fixed avalanche mix — this level never changes, so a key's slot
      is a pure function any client can compute offline.
    - [assign] maps slots to node ids with a consistent-hash ring of
      virtual nodes — this level changes when membership does, and
      moves only the slots whose successor vnode changed (expected
      [nslots/n] per joining node), never reshuffling the rest.

    Slots, not keys, are the migration unit: shipping a slot moves a
    stable 1/[nslots] fraction of the keyspace regardless of which
    keys exist, and the ownership table ([int array] of length
    [nslots]) is small enough to persist atomically as the cutover
    record ({!Node}).

    Everything is seeded and deterministic: same [seed], same nodes,
    same table — experiment matrices replay placement exactly. *)

val mix : int -> int
(** SplitMix64-style avalanche finalizer (the same family the shard
    router and WAL checksums use); bijective on 63-bit ints. *)

val slot_of_key : nslots:int -> int -> int
(** The key's slot, in [[0, nslots)].  Pure; independent of
    membership. *)

val default_nslots : int
(** 64 — small enough that a migration matrix exercises a meaningful
    fraction of slots, large enough that per-slot movement is ~1.5 %
    of the keyspace. *)

val assign : seed:int -> nslots:int -> nodes:int list -> int array
(** Ownership table: entry [s] is the node id owning slot [s], chosen
    as the successor virtual node of slot [s]'s point on the ring.
    Each node projects {!vnodes} points.  Deterministic in [seed].
    @raise Invalid_argument on an empty node list, non-positive
    [nslots], or duplicate node ids. *)

val vnodes : int
(** Virtual nodes per physical node (128): balances the ring so the
    heaviest node carries within ~2× the mean at small cluster
    sizes. *)

val moved : int array -> int array -> int
(** Slots whose owner differs between two tables — the movement a
    membership change costs ([assign]'s minimal-movement property is
    asserted on this in the tests). *)

val spread : int array -> nodes:int list -> (int * int) list
(** [(node, slots owned)] per node, in [nodes] order — the balance
    statistic the tests and the cluster experiment CSV report. *)
