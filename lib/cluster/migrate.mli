(** Live slot migration: snapshot bootstrap + WAL catch-up + atomic
    cutover, driven entirely over the wire.

    The driver owns no node internals — it speaks [Cl_snap]/[Cl_apply]
    /[Rep_info]/[Rep_pull]/[Cl_freeze]/[Cl_grant]/[Cl_release] to the
    two endpoints, so it can run anywhere a client can.  Phases:

    + {b Snapshot ship}: for each source shard, page a
      bracket-protected live traversal of the slot's keys ([Cl_snap];
      the traversal is stamped with the shard's committed WAL seq {e
      before} it starts) and ingest each page at the target
      ([Cl_apply] — acked only when WAL-durable there).
    + {b Catch-up}: pull committed records after each shard's stamp
      ([Rep_pull]), filter to the slot client-side, ship them.  The
      fuzzy snapshot plus absolute-mutation replay converges exactly
      as follower bootstrap does.
    + {b Cutover}: [Cl_freeze] makes the source persist
      "slot → target" and then {e quiesce} — one barrier request
      through every shard's FIFO mailbox, waited to completion —
      before acking.  The ack therefore certifies that every write
      the source will ever ack on the slot is already WAL-committed
      there (writes still queued behind the barrier hit the source's
      execution-time admission filter, answer [Moved], and are never
      acked).  The driver then reads the source's committed vector
      and pulls each shard past it — a deterministic drain target,
      not a "rounds that ship nothing" heuristic — before [Cl_grant]
      persists ownership at the target and [Cl_release] drops the
      source's snapshot cache.

    Zero lost acks: a write acked by the source is WAL-committed
    there with seq at or below the post-freeze committed vector, and
    every committed slot-record with seq above the snapshot stamp and
    up to that vector is shipped before the grant.  A write admitted
    after the freeze barrier is never acked by the source at all — it
    bounces with [Moved] to the target and is acked there, after the
    grant.  [Cl_freeze] itself can fail (quiesce timeout on a stalled
    source shard); the source then rolls the redirect back and the
    driver surfaces the error rather than cutting over. *)

type stats = {
  mg_slot : int;
  mg_snap_kvs : int;  (** bindings shipped in the bootstrap phase *)
  mg_snap_tombs : int;  (** tombstones shipped (delta mode only) *)
  mg_snap_pages : int;
  mg_snap_bytes : int;  (** wire bytes of the bootstrap Cl_apply calls *)
  mg_catchup_records : int;  (** slot records shipped from the WALs *)
  mg_catchup_rounds : int;
  mg_catchup_bytes : int;  (** wire bytes of the catch-up Cl_apply calls *)
  mg_delta : bool;  (** the bootstrap shipped a delta, not a full copy *)
  mg_version : int;  (** ownership-table version after the grant *)
}

val run :
  src:Router.endpoint ->
  dst:Router.endpoint ->
  slot:int ->
  nshards:int ->
  ?nslots:int ->
  ?router:Router.t ->
  ?recorder:Obs.Recorder.t ->
  unit ->
  (stats, string) result
(** Migrate [slot] from [src] to [dst] while both serve load.
    [nshards] is the source's shard count (each shard snapshots
    independently).  [router], when given, learns the new owner
    immediately after the grant (staleness would self-correct through
    [Moved], at the cost of redirects).

    {b Delta bootstrap.}  Phase 0 asks the target for its handoff
    token ([Cl_base]) and threads it through every [Cl_snap]; if the
    source recognizes it (the target's copy is exactly the source's
    acquisition base — see {!Node}), the bootstrap ships only the
    keys dirtied since, deletions as tombstones.  Otherwise the
    driver purges the slot at the target ([Cl_purge], before anything
    ships) and runs the always-correct full copy.  After the freeze,
    the source's freshly-minted token rides the final [Cl_grant], so
    a later migration back can ship a delta.  A mode flip {e during}
    the bootstrap (the slot's dirty set overflowing between shards)
    aborts with an error; rerunning restarts cleanly in full mode.

    [recorder], when given, receives [cluster/migrate/*] gauges —
    shipped kvs/tombstones/pages/bytes per phase and the delta flag. *)
