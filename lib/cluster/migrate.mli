(** Live slot migration: snapshot bootstrap + WAL catch-up + atomic
    cutover, driven entirely over the wire.

    The driver owns no node internals — it speaks [Cl_snap]/[Cl_apply]
    /[Rep_info]/[Rep_pull]/[Cl_freeze]/[Cl_grant]/[Cl_release] to the
    two endpoints, so it can run anywhere a client can.  Phases:

    + {b Snapshot ship}: for each source shard, page a
      bracket-protected live traversal of the slot's keys ([Cl_snap];
      the traversal is stamped with the shard's committed WAL seq {e
      before} it starts) and ingest each page at the target
      ([Cl_apply] — acked only when WAL-durable there).
    + {b Catch-up}: pull committed records after each shard's stamp
      ([Rep_pull]), filter to the slot client-side, ship them.  The
      fuzzy snapshot plus absolute-mutation replay converges exactly
      as follower bootstrap does.
    + {b Cutover}: [Cl_freeze] makes the source persist
      "slot → target" {e before} acking — from that ack on, new
      writes bounce with [Moved] and are retried by routers.  Then
      catch-up repeats until two consecutive rounds ship nothing (the
      in-flight window: requests already past the source's ownership
      check at freeze time still commit there, and those rounds
      collect them), [Cl_grant] persists ownership at the target, and
      [Cl_release] drops the source's snapshot cache.

    Zero lost acks: a write acked before the freeze is WAL-committed
    at the source, and every committed slot-record with seq above the
    snapshot stamp is shipped before the grant.  A write arriving
    after the freeze is never acked by the source at all — it bounces
    to the target and is acked there, after the grant. *)

type stats = {
  mg_slot : int;
  mg_snap_kvs : int;  (** bindings shipped in the bootstrap phase *)
  mg_snap_pages : int;
  mg_catchup_records : int;  (** slot records shipped from the WALs *)
  mg_catchup_rounds : int;
  mg_version : int;  (** ownership-table version after the grant *)
}

val run :
  src:Router.endpoint ->
  dst:Router.endpoint ->
  slot:int ->
  nshards:int ->
  ?nslots:int ->
  ?router:Router.t ->
  unit ->
  (stats, string) result
(** Migrate [slot] from [src] to [dst] while both serve load.
    [nshards] is the source's shard count (each shard snapshots
    independently).  [router], when given, learns the new owner
    immediately after the grant (staleness would self-correct through
    [Moved], at the cost of redirects). *)
