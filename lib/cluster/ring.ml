(* Consistent-hash placement; see ring.mli for the two-level design. *)

(* SplitMix64 finalizer over OCaml's 63-bit ints.  The masks keep
   every intermediate in the positive range so [mod] below never sees
   a negative operand. *)
let mix k =
  let k = k land max_int in
  let k = (k lxor (k lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let k = (k lxor (k lsr 27)) * 0x14057b7ef767814f land max_int in
  k lxor (k lsr 31)

let default_nslots = 64
let vnodes = 128

let slot_of_key ~nslots k =
  if nslots <= 0 then invalid_arg "Ring.slot_of_key: nslots must be positive";
  mix k mod nslots

(* A point on the ring for (seed, a, b): one mix with the operands
   folded in at distinct shifts, so vnode points and slot points draw
   from the same space without colliding structurally. *)
let point ~seed a b = mix (seed lxor (a * 0x1e3779b97f4a7c15) lxor (b + 1))

let assign ~seed ~nslots ~nodes =
  if nslots <= 0 then invalid_arg "Ring.assign: nslots must be positive";
  if nodes = [] then invalid_arg "Ring.assign: no nodes";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Ring.assign: duplicate node id";
      Hashtbl.replace seen n ())
    nodes;
  (* The ring: every node's vnode points, sorted.  Ties (astronomically
     unlikely) break by node id so the table stays deterministic. *)
  let ring =
    List.concat_map
      (fun node -> List.init vnodes (fun v -> (point ~seed node v, node)))
      nodes
    |> List.sort compare
    |> Array.of_list
  in
  let npoints = Array.length ring in
  (* Successor lookup: first vnode point >= the slot's point, wrapping
     to ring.(0) past the end. *)
  let successor p =
    let lo = ref 0 and hi = ref npoints in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst ring.(mid) < p then lo := mid + 1 else hi := mid
    done;
    snd ring.(if !lo = npoints then 0 else !lo)
  in
  Array.init nslots (fun s -> successor (point ~seed (-1) s))

let moved a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ring.moved: table sizes differ";
  let n = ref 0 in
  Array.iteri (fun i o -> if o <> b.(i) then incr n) a;
  !n

let spread owners ~nodes =
  List.map
    (fun node ->
      (node, Array.fold_left (fun a o -> if o = node then a + 1 else a) 0 owners))
    nodes
