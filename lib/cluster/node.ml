(* Cluster member: ownership-checked primary + control opcodes.  See
   node.mli for the cutover-record and durability contracts. *)

module Codec = Service.Codec

type cache = {
  sc_seq : int;
  sc_entries : (int * int option) array;  (* None = tombstone *)
  sc_delta : bool;
}

type t = {
  n_id : int;
  n_nslots : int;
  n_primary : Replica.Primary.t;
  n_apply_tid : int;
  n_owners : int Atomic.t array;
      (* entry = owning node id.  Reads are atomic because the
         execution-time admit filter (installed in [create]) runs from
         every shard consumer domain and must see a freeze's flip
         promptly; writes only under [n_lock]. *)
  mutable n_version : int;
  n_barrier_keys : int array;
      (* one key per shard — the freeze quiesce submits a barrier Get
         through each *)
  n_quiesce_timeout : float;
  n_snaps : (int * int, cache) Hashtbl.t;  (* (slot, shard) -> page cache *)
  (* Handoff tokens, the delta-ship handshake (see node.mli).  Both
     are in-memory only: a reboot forgets them, and the token
     mismatch then forces the always-correct full ship. *)
  n_handoff : int array;
      (* token minted when THIS node last froze the slot away; what
         [Cl_base] answers.  0 = never handed off (or rebooted). *)
  n_acq : int array;
      (* token this node received when granted the slot; a [Cl_snap]
         whose [base] equals it may be served as a delta.  0 = the
         slot was not acquired via a tokened grant. *)
  n_slot_dirty : Replica.Dirty.t array;
      (* per-slot write set since acquisition, fed by the primary's
         mutation tap.  Stable — never swapped or sealed: writes stop
         at freeze (the admit filter bounces them), so by the time a
         delta is served the set is quiescent.  Replaced wholesale at
         the next grant. *)
  n_slot_dirty_cap : int;
  n_lock : Mutex.t;
}

let owners_file = "cluster-owners"

(* ------------------------------------------------------------------ *)
(* The persisted cutover record.  Plain text, one atomic [s_write]:
   either the old table or the new one, never a blend. *)

let encode_owners ~version owners =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "clusterv1 %d %d\n" version (Array.length owners));
  Array.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int o))
    owners;
  Buffer.add_char b '\n';
  Buffer.contents b

let decode_owners s =
  try
    Scanf.sscanf s "clusterv1 %d %d\n %[0-9 -]" (fun version n rest ->
        let owners =
          String.split_on_char ' ' (String.trim rest)
          |> List.filter (fun t -> t <> "")
          |> List.map int_of_string |> Array.of_list
        in
        if Array.length owners <> n then None else Some (version, owners))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let persist t =
  (Replica.Primary.(t.n_primary.store)).Replica.Store.s_write owners_file
    (encode_owners ~version:t.n_version (Array.map Atomic.get t.n_owners))

let load store =
  match store.Replica.Store.s_read owners_file with
  | exception Sys_error _ -> None
  | s -> decode_owners s

(* ------------------------------------------------------------------ *)

(* One key per shard: smallest non-negative keys covering every shard,
   so the freeze quiesce can put a barrier request in every mailbox. *)
let barrier_keys svc =
  let n = svc.Service.Shard.nshards in
  let keys = Array.make n (-1) in
  let found = ref 0 in
  let k = ref 0 in
  while !found < n do
    let s = svc.Service.Shard.shard_of_key !k in
    if keys.(s) < 0 then begin
      keys.(s) <- !k;
      incr found
    end;
    incr k
  done;
  keys

let create ~node_id ?(nslots = Ring.default_nslots) ?(quiesce_timeout = 5.0)
    ?(slot_dirty_cap = 1 lsl 14) ~owners ~apply_tid primary =
  if Array.length owners <> nslots then
    invalid_arg "Node.create: owners length <> nslots";
  let svc = primary.Replica.Primary.svc in
  if apply_tid < 0 || apply_tid >= svc.Service.Shard.clients then
    invalid_arg "Node.create: apply_tid out of range";
  let version, owners =
    match load primary.Replica.Primary.store with
    | Some (v, persisted) when Array.length persisted = nslots -> (v, persisted)
    | _ -> (0, Array.copy owners)
  in
  let t =
    {
      n_id = node_id;
      n_nslots = nslots;
      n_primary = primary;
      n_apply_tid = apply_tid;
      n_owners = Array.map Atomic.make owners;
      n_version = version;
      n_barrier_keys = barrier_keys svc;
      n_quiesce_timeout = quiesce_timeout;
      n_snaps = Hashtbl.create 8;
      n_handoff = Array.make nslots 0;
      n_acq = Array.make nslots 0;
      n_slot_dirty = Array.make nslots Replica.Dirty.none;
      n_slot_dirty_cap = slot_dirty_cap;
      n_lock = Mutex.create ();
    }
  in
  (* Per-slot write tracking: every applied mutation records its key
     in the key's slot set.  [Dirty.none] slots (never acquired via a
     tokened grant) make this one equality check; the seal-retry
     return value is irrelevant here because slot sets are never
     sealed. *)
  Replica.Primary.set_tap primary (fun ~shard:_ m ->
      let key =
        match m with Codec.Set { key; _ } -> key | Codec.Unset key -> key
      in
      ignore
        (Replica.Dirty.add
           t.n_slot_dirty.(Ring.slot_of_key ~nslots:t.n_nslots key)
           ~key));
  (* The authoritative ownership check: executed by each shard
     consumer in the same serial stream as the mutations it gates, so
     it cannot go stale between check and execution the way the
     transport-side check in [handle] can (a request may sit in a
     backpressure queue or a mailbox while a freeze flips the slot).
     The node's own migration ingest and barrier tid is exempt — the
     target legitimately writes slots it does not own yet. *)
  let admit ~tid req =
    if tid = t.n_apply_tid then None
    else
      let check key =
        let slot = Ring.slot_of_key ~nslots:t.n_nslots key in
        let owner = Atomic.get t.n_owners.(slot) in
        if owner = t.n_id then None
        else Some (Codec.Moved { slot; node = owner })
      in
      match req with
      | Codec.Get k | Codec.Del k -> check k
      | Codec.Put { key; _ } | Codec.Cas { key; _ } -> check key
      | _ -> None
  in
  svc.Service.Shard.set_admit admit;
  (* Make the boot table durable, so the very first reboot — before
     any migration — also recovers a table instead of defaults. *)
  persist t;
  t

let node_id t = t.n_id
let nslots t = t.n_nslots
let owners t = Array.map Atomic.get t.n_owners
let version t = t.n_version
let owns_slot t slot = Atomic.get t.n_owners.(slot) = t.n_id
let primary t = t.n_primary

let with_lock t f =
  Mutex.lock t.n_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.n_lock) f

(* ------------------------------------------------------------------ *)
(* Migration ingest: pipeline the batch through the normal submit
   path under the node's reserved tid, then wait for every reply —
   the WAL hook defers replies past the group commit, so returning
   [Cl_ok] here certifies durability.  [Shed] only ever fires
   synchronously from [submit] (consumers never produce it), so the
   retry loop reads its flag race-free. *)

let req_of_mutation = function
  | Codec.Set { key; value } -> Codec.Put { key; value }
  | Codec.Unset key -> Codec.Del key

let apply_records t records =
  let svc = t.n_primary.Replica.Primary.svc in
  let remaining = Atomic.make (List.length records) in
  let failed = Atomic.make None in
  List.iter
    (fun (_seq, m) ->
      let req = req_of_mutation m in
      let rec submit () =
        let shed = ref false in
        svc.Service.Shard.submit ~tid:t.n_apply_tid req (fun reply ->
            (match reply with
            | Codec.Shed -> shed := true
            | Codec.Error e ->
                if Atomic.get failed = None then Atomic.set failed (Some e);
                Atomic.decr remaining
            | _ -> Atomic.decr remaining));
        if !shed then begin
          Unix.sleepf 0.0002;
          submit ()
        end
      in
      submit ())
    records;
  let spins = ref 0 in
  while Atomic.get remaining > 0 do
    incr spins;
    if !spins land 63 = 0 then Unix.sleepf 0.0001 else Domain.cpu_relax ()
  done;
  match Atomic.get failed with
  | None -> Codec.Cl_ok
  | Some e -> Codec.Error ("cl_apply: " ^ e)

(* ------------------------------------------------------------------ *)
(* Freeze-time quiesce barrier.  After the ownership flip, submit one
   Get per shard under the node's reserved tid and wait for every
   reply.  Each shard mailbox is FIFO with a single consumer and the
   WAL hook defers replies past the group commit, so a barrier reply
   certifies that every write submitted to that shard before the
   barrier has committed and acked; and any write executing after the
   barrier reads the flipped table in the admit filter and answers
   [Moved] — it is never acked here.  Freeze-ack therefore bounds the
   set of acked writes on the frozen slot by the committed watermark
   read right after it, which is what makes the migration driver's
   final drain deterministic.  Returns [false] on timeout (a stalled
   or dead consumer kept a barrier from landing). *)

let quiesce t =
  let svc = t.n_primary.Replica.Primary.svc in
  let deadline = Unix.gettimeofday () +. t.n_quiesce_timeout in
  let remaining = Atomic.make (Array.length t.n_barrier_keys) in
  let timed_out = ref false in
  (try
     Array.iter
       (fun key ->
         let rec submit () =
           let shed = ref false in
           svc.Service.Shard.submit ~tid:t.n_apply_tid (Codec.Get key)
             (fun reply ->
               match reply with
               | Codec.Shed -> shed := true
               | _ -> Atomic.decr remaining);
           if !shed then begin
             if Unix.gettimeofday () > deadline then raise Exit;
             Unix.sleepf 0.0002;
             submit ()
           end
         in
         submit ())
       t.n_barrier_keys
   with Exit -> timed_out := true);
  while (not !timed_out) && Atomic.get remaining > 0 do
    if Unix.gettimeofday () > deadline then timed_out := true
    else Unix.sleepf 0.0001
  done;
  not !timed_out

(* ------------------------------------------------------------------ *)
(* Snapshot shipping: cursor 0 stamps committed-before-traversal and
   caches the slot's entries; later cursors page the cache.

   Delta mode: when the requester's [base] token matches what this
   node was granted ([n_acq]) and the slot's dirty set is usable, the
   traversal visits only the keys mutated since acquisition — cost
   proportional to the slot's write rate — and deleted keys page out
   as tombstones.  Any mismatch (reboot cleared the tokens, an
   intermediate owner, overflow) silently degrades to the full
   traversal; the [delta] flag in each batch tells the driver which
   one it is getting, and the driver purges the target first only for
   full ships. *)

let snap_page t ~slot ~shard ~cursor ~max ~base =
  let prim = t.n_primary in
  let svc = prim.Replica.Primary.svc in
  if shard < 0 || shard >= svc.Service.Shard.nshards then
    Codec.Error "cl_snap: shard out of range"
  else if slot < 0 || slot >= t.n_nslots then
    Codec.Error "cl_snap: slot out of range"
  else begin
    let key = (slot, shard) in
    let cache =
      if cursor = 0 then begin
        (* Stamp BEFORE the traversal: every mutation the fuzzy
           snapshot might miss has seq > sc_seq, so catch-up pulls
           resuming after the stamp re-apply it absolutely. *)
        let seq = Replica.Wal.committed_seq prim.Replica.Primary.wals.(shard) in
        let d = t.n_slot_dirty.(slot) in
        let delta_ok =
          base <> 0
          && base = t.n_acq.(slot)
          && (not (Replica.Dirty.is_none d))
          && not (Replica.Dirty.overflowed d)
        in
        if delta_ok then begin
          let keys =
            Replica.Dirty.elements d
            |> List.filter (fun k -> svc.Service.Shard.shard_of_key k = shard)
            |> List.sort_uniq compare
          in
          match svc.Service.Shard.snapshot_keys ~shard ~keys ~gate:(fun _ -> ())
          with
          | exception Invalid_argument _ -> None  (* a traversal is live *)
          | entries ->
              let c =
                {
                  sc_seq = seq;
                  sc_entries = Array.of_list entries;
                  sc_delta = true;
                }
              in
              Hashtbl.replace t.n_snaps key c;
              Some c
        end
        else begin
          match svc.Service.Shard.snapshot ~shard ~gate:(fun _ -> ()) with
          | exception Invalid_argument _ -> None  (* a traversal is live *)
          | kvs ->
              let entries =
                List.filter
                  (fun (k, _) -> Ring.slot_of_key ~nslots:t.n_nslots k = slot)
                  kvs
                |> List.map (fun (k, v) -> (k, Some v))
                |> Array.of_list
              in
              let c = { sc_seq = seq; sc_entries = entries; sc_delta = false } in
              Hashtbl.replace t.n_snaps key c;
              Some c
        end
      end
      else Hashtbl.find_opt t.n_snaps key
    in
    match cache with
    | None ->
        if cursor = 0 then Codec.Error "cl_snap: traversal already running"
        else Codec.Error "cl_snap: no cached traversal (cursor without start)"
    | Some c ->
        let len = Array.length c.sc_entries in
        if cursor < 0 || cursor > len then Codec.Error "cl_snap: bad cursor"
        else begin
          let n =
            min (if max <= 0 then Codec.cl_snap_max else min max Codec.cl_snap_max)
              (len - cursor)
          in
          let page = Array.to_list (Array.sub c.sc_entries cursor n) in
          let kvs =
            List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) page
          in
          let tombs =
            List.filter_map (fun (k, v) -> if v = None then Some k else None) page
          in
          let next = if cursor + n >= len then -1 else cursor + n in
          Codec.Cl_snap_batch
            { seq = c.sc_seq; next; kvs; tombs; delta = c.sc_delta }
        end
  end

(* ------------------------------------------------------------------ *)
(* Slot purge: delete every key of the slot through the normal ingest
   path, so the deletions are WAL-durable like any other mutation.
   The driver runs this on the TARGET before a full ship — a full
   snapshot carries no tombstones, so without the purge a key deleted
   at the source since the target's last tenure (or surviving in the
   target's rebooted store) would resurrect after cutover. *)

let purge_slot t ~slot =
  let svc = t.n_primary.Replica.Primary.svc in
  let result = ref Codec.Cl_ok in
  (try
     for shard = 0 to svc.Service.Shard.nshards - 1 do
       let victims =
         svc.Service.Shard.snapshot ~shard ~gate:(fun _ -> ())
         |> List.filter (fun (k, _) ->
                Ring.slot_of_key ~nslots:t.n_nslots k = slot)
       in
       if victims <> [] then begin
         match
           apply_records t
             (List.map (fun (k, _) -> (0, Codec.Unset k)) victims)
         with
         | Codec.Cl_ok -> ()
         | r ->
             result := r;
             raise Exit
       end
     done
   with
  | Exit -> ()
  | Invalid_argument _ ->
      result := Codec.Error "cl_purge: traversal already running");
  !result

(* ------------------------------------------------------------------ *)

(* Which requests an event-loop transport must hand to its worker
   domain instead of running inline on the pump: everything that can
   block for unbounded time (migration ingest spins on group commits,
   snapshot paging traverses a full shard, replication pulls read WAL
   segments, and all of them serialize on [n_lock], so even [Cl_info]
   could convoy behind a freeze).  The data-path ownership check stays
   inline — it is two atomic loads. *)
let deferrable = function
  | Codec.Cl_info | Codec.Cl_grant _ | Codec.Cl_freeze _ | Codec.Cl_release _
  | Codec.Cl_snap _ | Codec.Cl_apply _ | Codec.Cl_base _ | Codec.Cl_purge _
  | Codec.Rep_info | Codec.Rep_pull _ ->
      true
  | _ -> false

let handle t req =
  match req with
  | Codec.Get k | Codec.Del k | Codec.Getc k ->
      let slot = Ring.slot_of_key ~nslots:t.n_nslots k in
      let owner = Atomic.get t.n_owners.(slot) in
      if owner = t.n_id then None else Some (Codec.Moved { slot; node = owner })
  | Codec.A_info ->
      (* Cluster nodes run WAL-backed stores, never arena-backed ones;
         fall through and let the shard answer slot -1 (no arena). *)
      None
  | Codec.Putb { key; _ } | Codec.Put { key; _ } | Codec.Cas { key; _ } ->
      let slot = Ring.slot_of_key ~nslots:t.n_nslots key in
      let owner = Atomic.get t.n_owners.(slot) in
      if owner = t.n_id then None else Some (Codec.Moved { slot; node = owner })
  | Codec.Rep_info | Codec.Rep_pull _ -> Replica.Primary.handle t.n_primary req
  | Codec.Cl_info ->
      Some
        (with_lock t (fun () ->
             Codec.Cl_state
               {
                 version = t.n_version;
                 node = t.n_id;
                 owners = Array.map Atomic.get t.n_owners;
               }))
  | Codec.Cl_grant { slot; version; token } ->
      Some
        (with_lock t (fun () ->
             if slot < 0 || slot >= t.n_nslots then
               Codec.Error "cl_grant: slot out of range"
             else begin
               (* Acquisition tracking BEFORE the ownership flip: the
                  fresh dirty set must be in place when the first
                  admitted write's tap fires, or that key would be
                  missing from the next delta this node serves.  A
                  tokenless grant (token 0) disables delta service
                  from this tenure. *)
               t.n_acq.(slot) <- token;
               t.n_slot_dirty.(slot) <-
                 (if token <> 0 then
                    Replica.Dirty.create ~cap:t.n_slot_dirty_cap
                  else Replica.Dirty.none);
               (* This node is owner again: any token it minted for a
                  past handoff no longer describes anyone's base. *)
               t.n_handoff.(slot) <- 0;
               Atomic.set t.n_owners.(slot) t.n_id;
               t.n_version <- max t.n_version version;
               (* Durable before the ack: the cutover record. *)
               persist t;
               Codec.Cl_ok
             end))
  | Codec.Cl_freeze { slot; target } ->
      Some
        (with_lock t (fun () ->
             if slot < 0 || slot >= t.n_nslots then
               Codec.Error "cl_freeze: slot out of range"
             else begin
               let prev = Atomic.get t.n_owners.(slot) in
               Atomic.set t.n_owners.(slot) target;
               t.n_version <- t.n_version + 1;
               persist t;
               (* The flip redirects what arrives from here on; the
                  barrier flushes what is already inside the service.
                  Only after both does the ack fire — see [quiesce]
                  for why ack then bounds the slot's acked writes. *)
               if quiesce t then begin
                 (* Mint the handoff token: this node's state as of
                    the freeze, which the grantee will record as its
                    base.  A later migration back to this node may
                    then ship only the delta since this moment. *)
                 t.n_handoff.(slot) <-
                   (t.n_id lsl 32) lor (t.n_version land 0xFFFFFFFF);
                 Codec.Cl_ok
               end
               else begin
                 (* A stalled or dead consumer kept a barrier from
                    landing within the budget: un-flip so the slot
                    keeps serving here, and fail the freeze — the
                    driver aborts rather than cutting over a slot
                    whose in-flight writes cannot be certified. *)
                 Atomic.set t.n_owners.(slot) prev;
                 t.n_version <- t.n_version + 1;
                 persist t;
                 Codec.Error "cl_freeze: quiesce timed out"
               end
             end))
  | Codec.Cl_release { slot } ->
      Some
        (with_lock t (fun () ->
             Hashtbl.iter
               (fun (s, sh) _ -> if s = slot then Hashtbl.remove t.n_snaps (s, sh))
               (Hashtbl.copy t.n_snaps);
             Codec.Cl_ok))
  | Codec.Cl_base { slot } ->
      Some
        (with_lock t (fun () ->
             if slot < 0 || slot >= t.n_nslots then
               Codec.Error "cl_base: slot out of range"
             else Codec.Cl_token { token = t.n_handoff.(slot) }))
  | Codec.Cl_purge { slot } ->
      Some
        (with_lock t (fun () ->
             if slot < 0 || slot >= t.n_nslots then
               Codec.Error "cl_purge: slot out of range"
             else purge_slot t ~slot))
  | Codec.Cl_snap { slot; shard; cursor; max; base } ->
      Some (with_lock t (fun () -> snap_page t ~slot ~shard ~cursor ~max ~base))
  | Codec.Cl_apply { records } ->
      Some (with_lock t (fun () -> apply_records t records))
