(* Wire-driven slot migration; see migrate.mli for the protocol and
   the zero-lost-acks argument. *)

module Codec = Service.Codec

type stats = {
  mg_slot : int;
  mg_snap_kvs : int;
  mg_snap_tombs : int;
  mg_snap_pages : int;
  mg_snap_bytes : int;
  mg_catchup_records : int;
  mg_catchup_rounds : int;
  mg_catchup_bytes : int;
  mg_delta : bool;
  mg_version : int;
}

let ( let* ) = Result.bind

let key_of_mutation = function
  | Codec.Set { key; _ } -> key
  | Codec.Unset key -> key

(* Ship a batch of records to the target, [cl_apply_max] at a time.
   [Cl_ok] certifies WAL durability at the target.  [bytes], when
   given, accumulates the exact wire size of the Cl_apply requests —
   the shipped-volume gauge. *)
let ship ?bytes dst records =
  let rec go = function
    | [] -> Ok ()
    | records ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | r :: rest -> take (n - 1) (r :: acc) rest
        in
        let batch, rest = take Codec.cl_apply_max [] records in
        let req = Codec.Cl_apply { records = batch } in
        (match bytes with
        | Some b ->
            let scratch = Buffer.create 256 in
            Codec.encode_request scratch req;
            b := !b + Buffer.length scratch
        | None -> ());
        (match Router.endpoint_call dst req with
        | Codec.Cl_ok -> Ok ()
        | Codec.Error e -> Error ("cl_apply: " ^ e)
        | r -> Error ("cl_apply: unexpected " ^ Codec.reply_to_string r))
        |> function
        | Ok () -> go rest
        | Error _ as e -> e
  in
  go records

(* The only retryable [Cl_snap] start failure: another traversal holds
   the shard's snapshot slot for the length of one bracket.  Anything
   else (bad slot/shard, a crashed source) is permanent — retrying it
   250 times just stretches the failure. *)
let transient_snap_error e =
  let needle = "traversal already running" in
  let nl = String.length needle and el = String.length e in
  let rec at i = i + nl <= el && (String.sub e i nl = needle || at (i + 1)) in
  at 0

(* Page the source's bracket-protected traversal of (slot, shard) and
   ingest every page at the target.  [base] is the target's handoff
   token (0 = none): when the source recognizes it, pages carry only
   the keys dirtied since the target last held the slot, deletions as
   tombstones, with the [delta] flag up.  [on_mode] fires once, after
   the cursor-0 reply reveals which mode the source chose and BEFORE
   anything ships — the driver's purge-on-full hook.  Returns the
   stamp seq plus binding/tombstone/page counts and the mode.  A
   transient "traversal already running" (an in-process reader holds
   the shard's snapshot slot) retries briefly; every other error
   fails fast. *)
let snapshot_ship ?(base = 0) ?(on_mode = fun _ -> Ok ()) ?bytes ~src ~dst
    ~slot ~shard () =
  let page_req cursor =
    Codec.Cl_snap { slot; shard; cursor; max = Codec.cl_snap_max; base }
  in
  let rec start tries =
    match Router.endpoint_call src (page_req 0) with
    | Codec.Cl_snap_batch { seq; next; kvs; tombs; delta } ->
        Ok (seq, next, kvs, tombs, delta)
    | Codec.Error e when tries > 0 && transient_snap_error e ->
        Unix.sleepf 0.002;
        start (tries - 1)
    | Codec.Error e -> Error ("cl_snap: " ^ e)
    | r -> Error ("cl_snap: unexpected " ^ Codec.reply_to_string r)
  in
  let* stamp, first_next, first_kvs, first_tombs, delta = start 250 in
  let* () = on_mode delta in
  let rec pages acc_kvs acc_tombs acc_pages cursor kvs tombs =
    let records =
      List.map (fun (k, v) -> (0, Codec.Set { key = k; value = v })) kvs
      @ List.map (fun k -> (0, Codec.Unset k)) tombs
    in
    let* () = if records = [] then Ok () else ship ?bytes dst records in
    let acc_kvs = acc_kvs + List.length kvs
    and acc_tombs = acc_tombs + List.length tombs
    and acc_pages = acc_pages + 1 in
    if cursor < 0 then Ok (stamp, acc_kvs, acc_tombs, acc_pages, delta)
    else
      match Router.endpoint_call src (page_req cursor) with
      | Codec.Cl_snap_batch { next; kvs; tombs; _ } ->
          pages acc_kvs acc_tombs acc_pages next kvs tombs
      | Codec.Error e -> Error ("cl_snap page: " ^ e)
      | r -> Error ("cl_snap page: unexpected " ^ Codec.reply_to_string r)
  in
  pages 0 0 0 first_next first_kvs first_tombs

(* One catch-up round: advance every shard's pull cursor to its
   current committed seq, shipping the slot's records.  Returns how
   many slot records this round shipped. *)
let catchup_round ?bytes ~src ~dst ~slot ~nslots ~nshards pulled =
  let* committed =
    match Router.endpoint_call src Codec.Rep_info with
    | Codec.Rep_state c -> Ok c
    | r -> Error ("rep_info: unexpected " ^ Codec.reply_to_string r)
  in
  if Array.length committed < nshards then Error "rep_info: short shard vector"
  else
    let shipped = ref 0 in
    let rec shard_loop shard =
      if shard >= nshards then Ok !shipped
      else if pulled.(shard) >= committed.(shard) then shard_loop (shard + 1)
      else
        match
          Router.endpoint_call src
            (Codec.Rep_pull
               { shard; from = pulled.(shard); max = Codec.rep_batch_max })
        with
        | Codec.Rep_batch { last; records } ->
            let* () =
              let mine =
                List.filter
                  (fun (_, m) ->
                    Ring.slot_of_key ~nslots (key_of_mutation m) = slot)
                  records
              in
              shipped := !shipped + List.length mine;
              if mine = [] then Ok () else ship ?bytes dst mine
            in
            pulled.(shard) <-
              (match records with
              | [] -> last  (* nothing after [from]: cursor is current *)
              | rs -> fst (List.nth rs (List.length rs - 1)));
            shard_loop shard
        | Codec.Error e -> Error ("rep_pull: " ^ e)
        | r -> Error ("rep_pull: unexpected " ^ Codec.reply_to_string r)
    in
    shard_loop 0

let run ~src ~dst ~slot ~nshards ?(nslots = Ring.default_nslots) ?router
    ?recorder () =
  let dst_id = Router.endpoint_id dst in
  (* Phase 0: the target's handoff token, if it ever held this slot.
     Matching is the source's call; the driver only threads it. *)
  let* base =
    match Router.endpoint_call dst (Codec.Cl_base { slot }) with
    | Codec.Cl_token { token } -> Ok token
    | Codec.Error e -> Error ("cl_base: " ^ e)
    | r -> Error ("cl_base: unexpected " ^ Codec.reply_to_string r)
  in
  let snap_bytes = ref 0 and catchup_bytes = ref 0 in
  (* Mode is decided by the source at the first cursor-0 reply and
     must hold for the whole migration: a full ship purges the
     target's stale copy of the slot BEFORE anything lands (a full
     snapshot carries no tombstones, so stale keys would otherwise
     resurrect), while a delta ship must NOT purge — the stale copy
     is the base it extends.  A mid-migration flip (the slot's dirty
     set overflowing between shards) aborts: rerunning restarts
     cleanly in full mode. *)
  let mode = ref None in
  let purge_dst () =
    let rec go tries =
      match Router.endpoint_call dst (Codec.Cl_purge { slot }) with
      | Codec.Cl_ok -> Ok ()
      | Codec.Error e when tries > 0 && transient_snap_error e ->
          Unix.sleepf 0.002;
          go (tries - 1)
      | Codec.Error e -> Error ("cl_purge: " ^ e)
      | r -> Error ("cl_purge: unexpected " ^ Codec.reply_to_string r)
    in
    go 250
  in
  let on_mode shard delta =
    match !mode with
    | None ->
        mode := Some delta;
        if delta then Ok () else purge_dst ()
    | Some m when m = delta -> Ok ()
    | Some _ ->
        Error
          (Printf.sprintf
             "cl_snap: shard %d switched ship mode mid-migration (slot dirty \
              set overflowed?); rerun the migration"
             shard)
  in
  (* Phase 1: per-shard snapshot bootstrap; record each stamp. *)
  let pulled = Array.make nshards 0 in
  let rec boot shard kvs tombs pages =
    if shard >= nshards then Ok (kvs, tombs, pages)
    else
      let* stamp, k, tb, p =
        let* stamp, k, tb, p, _delta =
          snapshot_ship ~base ~on_mode:(on_mode shard) ~bytes:snap_bytes ~src
            ~dst ~slot ~shard ()
        in
        Ok (stamp, k, tb, p)
      in
      pulled.(shard) <- stamp;
      boot (shard + 1) (kvs + k) (tombs + tb) (pages + p)
  in
  let* snap_kvs, snap_tombs, snap_pages = boot 0 0 0 0 in
  let delta = match !mode with Some d -> d | None -> false in
  (* Phase 2: catch-up under load until a round ships nothing — the
     live tail is then one in-flight window wide. *)
  let rounds = ref 0 and cr = ref 0 in
  let rec drain () =
    incr rounds;
    let* n =
      catchup_round ~bytes:catchup_bytes ~src ~dst ~slot ~nslots ~nshards
        pulled
    in
    cr := !cr + n;
    if n > 0 && !rounds < 10_000 then drain () else Ok ()
  in
  let* () = drain () in
  (* Phase 3: cutover.  Freeze flips + persists the redirect at the
     source and quiesces every shard before its ack, so each write
     the source will ever ack on this slot is committed by the time
     [Cl_ok] lands here.  The committed vector read AFTER that ack is
     therefore a deterministic drain target: pull every shard past it
     and the slot's acked history is fully shipped.  (The old scheme —
     stop after two rounds that ship nothing — raced writes that were
     in the source's queues, admitted pre-freeze, but not yet
     committed when the empty rounds ran.) *)
  let* () =
    match Router.endpoint_call src (Codec.Cl_freeze { slot; target = dst_id }) with
    | Codec.Cl_ok -> Ok ()
    | Codec.Error e -> Error ("cl_freeze: " ^ e)
    | r -> Error ("cl_freeze: unexpected " ^ Codec.reply_to_string r)
  in
  let* watermark =
    match Router.endpoint_call src Codec.Rep_info with
    | Codec.Rep_state c when Array.length c >= nshards -> Ok c
    | Codec.Rep_state _ -> Error "rep_info: short shard vector"
    | r -> Error ("rep_info: unexpected " ^ Codec.reply_to_string r)
  in
  let reached () =
    let ok = ref true in
    for s = 0 to nshards - 1 do
      if pulled.(s) < watermark.(s) then ok := false
    done;
    !ok
  in
  (* One round normally suffices: [catchup_round] pulls each shard to
     the committed seq it reads at round start, which is >= the
     watermark.  The bound guards against a source that keeps failing
     pulls, not against a moving target. *)
  let rec final_drain attempts =
    if reached () then Ok ()
    else if attempts <= 0 then Error "final drain: watermark not reached"
    else begin
      incr rounds;
      let* n =
        catchup_round ~bytes:catchup_bytes ~src ~dst ~slot ~nslots ~nshards
          pulled
      in
      cr := !cr + n;
      final_drain (attempts - 1)
    end
  in
  let* () = final_drain 100 in
  let* version =
    match Router.endpoint_call src Codec.Cl_info with
    | Codec.Cl_state { version; _ } -> Ok version
    | r -> Error ("cl_info: unexpected " ^ Codec.reply_to_string r)
  in
  (* The freeze minted the source's handoff token; the grant hands it
     to the new owner as its acquisition token, arming a future
     delta-ship back. *)
  let* token =
    match Router.endpoint_call src (Codec.Cl_base { slot }) with
    | Codec.Cl_token { token } -> Ok token
    | Codec.Error e -> Error ("cl_base: " ^ e)
    | r -> Error ("cl_base: unexpected " ^ Codec.reply_to_string r)
  in
  let* () =
    match Router.endpoint_call dst (Codec.Cl_grant { slot; version; token }) with
    | Codec.Cl_ok -> Ok ()
    | r -> Error ("cl_grant: unexpected " ^ Codec.reply_to_string r)
  in
  let* () =
    match Router.endpoint_call src (Codec.Cl_release { slot }) with
    | Codec.Cl_ok -> Ok ()
    | r -> Error ("cl_release: unexpected " ^ Codec.reply_to_string r)
  in
  (match router with
  | Some rt -> Router.note_owner rt ~slot ~node:dst_id
  | None -> ());
  (match recorder with
  | Some rec_ ->
      let g name v =
        Obs.Recorder.set_gauge rec_ ~name:("cluster/migrate/" ^ name) v
      in
      g "slot" slot;
      g "delta" (if delta then 1 else 0);
      g "snap_kvs" snap_kvs;
      g "snap_tombs" snap_tombs;
      g "snap_pages" snap_pages;
      g "snap_bytes" !snap_bytes;
      g "catchup_records" !cr;
      g "catchup_rounds" !rounds;
      g "catchup_bytes" !catchup_bytes
  | None -> ());
  Ok
    {
      mg_slot = slot;
      mg_snap_kvs = snap_kvs;
      mg_snap_tombs = snap_tombs;
      mg_snap_pages = snap_pages;
      mg_snap_bytes = !snap_bytes;
      mg_catchup_records = !cr;
      mg_catchup_rounds = !rounds;
      mg_catchup_bytes = !catchup_bytes;
      mg_delta = delta;
      mg_version = version;
    }
