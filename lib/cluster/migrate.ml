(* Wire-driven slot migration; see migrate.mli for the protocol and
   the zero-lost-acks argument. *)

module Codec = Service.Codec

type stats = {
  mg_slot : int;
  mg_snap_kvs : int;
  mg_snap_pages : int;
  mg_catchup_records : int;
  mg_catchup_rounds : int;
  mg_version : int;
}

let ( let* ) = Result.bind

let key_of_mutation = function
  | Codec.Set { key; _ } -> key
  | Codec.Unset key -> key

(* Ship a batch of records to the target, [cl_apply_max] at a time.
   [Cl_ok] certifies WAL durability at the target. *)
let ship dst records =
  let rec go = function
    | [] -> Ok ()
    | records ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | r :: rest -> take (n - 1) (r :: acc) rest
        in
        let batch, rest = take Codec.cl_apply_max [] records in
        (match Router.endpoint_call dst (Codec.Cl_apply { records = batch }) with
        | Codec.Cl_ok -> Ok ()
        | Codec.Error e -> Error ("cl_apply: " ^ e)
        | r -> Error ("cl_apply: unexpected " ^ Codec.reply_to_string r))
        |> function
        | Ok () -> go rest
        | Error _ as e -> e
  in
  go records

(* The only retryable [Cl_snap] start failure: another traversal holds
   the shard's snapshot slot for the length of one bracket.  Anything
   else (bad slot/shard, a crashed source) is permanent — retrying it
   250 times just stretches the failure. *)
let transient_snap_error e =
  let needle = "traversal already running" in
  let nl = String.length needle and el = String.length e in
  let rec at i = i + nl <= el && (String.sub e i nl = needle || at (i + 1)) in
  at 0

(* Page the source's bracket-protected traversal of (slot, shard) and
   ingest every page at the target.  Returns the stamp seq plus page
   and binding counts.  A transient "traversal already running" (an
   in-process reader holds the shard's snapshot slot) retries
   briefly; every other error fails fast. *)
let snapshot_ship ~src ~dst ~slot ~shard =
  let rec start tries =
    match
      Router.endpoint_call src
        (Codec.Cl_snap { slot; shard; cursor = 0; max = Codec.cl_snap_max })
    with
    | Codec.Cl_snap_batch { seq; next; kvs } -> Ok (seq, next, kvs)
    | Codec.Error e when tries > 0 && transient_snap_error e ->
        Unix.sleepf 0.002;
        start (tries - 1)
    | Codec.Error e -> Error ("cl_snap: " ^ e)
    | r -> Error ("cl_snap: unexpected " ^ Codec.reply_to_string r)
  in
  let* stamp, first_next, first_kvs = start 250 in
  let rec pages acc_kvs acc_pages cursor kvs =
    let* () =
      if kvs = [] then Ok ()
      else
        ship dst (List.map (fun (k, v) -> (0, Codec.Set { key = k; value = v })) kvs)
    in
    let acc_kvs = acc_kvs + List.length kvs and acc_pages = acc_pages + 1 in
    if cursor < 0 then Ok (stamp, acc_kvs, acc_pages)
    else
      match
        Router.endpoint_call src
          (Codec.Cl_snap { slot; shard; cursor; max = Codec.cl_snap_max })
      with
      | Codec.Cl_snap_batch { next; kvs; _ } -> pages acc_kvs acc_pages next kvs
      | Codec.Error e -> Error ("cl_snap page: " ^ e)
      | r -> Error ("cl_snap page: unexpected " ^ Codec.reply_to_string r)
  in
  pages 0 0 first_next first_kvs

(* One catch-up round: advance every shard's pull cursor to its
   current committed seq, shipping the slot's records.  Returns how
   many slot records this round shipped. *)
let catchup_round ~src ~dst ~slot ~nslots ~nshards pulled =
  let* committed =
    match Router.endpoint_call src Codec.Rep_info with
    | Codec.Rep_state c -> Ok c
    | r -> Error ("rep_info: unexpected " ^ Codec.reply_to_string r)
  in
  if Array.length committed < nshards then Error "rep_info: short shard vector"
  else
    let shipped = ref 0 in
    let rec shard_loop shard =
      if shard >= nshards then Ok !shipped
      else if pulled.(shard) >= committed.(shard) then shard_loop (shard + 1)
      else
        match
          Router.endpoint_call src
            (Codec.Rep_pull
               { shard; from = pulled.(shard); max = Codec.rep_batch_max })
        with
        | Codec.Rep_batch { last; records } ->
            let* () =
              let mine =
                List.filter
                  (fun (_, m) ->
                    Ring.slot_of_key ~nslots (key_of_mutation m) = slot)
                  records
              in
              shipped := !shipped + List.length mine;
              if mine = [] then Ok () else ship dst mine
            in
            pulled.(shard) <-
              (match records with
              | [] -> last  (* nothing after [from]: cursor is current *)
              | rs -> fst (List.nth rs (List.length rs - 1)));
            shard_loop shard
        | Codec.Error e -> Error ("rep_pull: " ^ e)
        | r -> Error ("rep_pull: unexpected " ^ Codec.reply_to_string r)
    in
    shard_loop 0

let run ~src ~dst ~slot ~nshards ?(nslots = Ring.default_nslots) ?router () =
  let dst_id = Router.endpoint_id dst in
  (* Phase 1: per-shard snapshot bootstrap; record each stamp. *)
  let pulled = Array.make nshards 0 in
  let rec boot shard kvs pages =
    if shard >= nshards then Ok (kvs, pages)
    else
      let* stamp, k, p = snapshot_ship ~src ~dst ~slot ~shard in
      pulled.(shard) <- stamp;
      boot (shard + 1) (kvs + k) (pages + p)
  in
  let* snap_kvs, snap_pages = boot 0 0 0 in
  (* Phase 2: catch-up under load until a round ships nothing — the
     live tail is then one in-flight window wide. *)
  let rounds = ref 0 and cr = ref 0 in
  let rec drain () =
    incr rounds;
    let* n = catchup_round ~src ~dst ~slot ~nslots ~nshards pulled in
    cr := !cr + n;
    if n > 0 && !rounds < 10_000 then drain () else Ok ()
  in
  let* () = drain () in
  (* Phase 3: cutover.  Freeze flips + persists the redirect at the
     source and quiesces every shard before its ack, so each write
     the source will ever ack on this slot is committed by the time
     [Cl_ok] lands here.  The committed vector read AFTER that ack is
     therefore a deterministic drain target: pull every shard past it
     and the slot's acked history is fully shipped.  (The old scheme —
     stop after two rounds that ship nothing — raced writes that were
     in the source's queues, admitted pre-freeze, but not yet
     committed when the empty rounds ran.) *)
  let* () =
    match Router.endpoint_call src (Codec.Cl_freeze { slot; target = dst_id }) with
    | Codec.Cl_ok -> Ok ()
    | Codec.Error e -> Error ("cl_freeze: " ^ e)
    | r -> Error ("cl_freeze: unexpected " ^ Codec.reply_to_string r)
  in
  let* watermark =
    match Router.endpoint_call src Codec.Rep_info with
    | Codec.Rep_state c when Array.length c >= nshards -> Ok c
    | Codec.Rep_state _ -> Error "rep_info: short shard vector"
    | r -> Error ("rep_info: unexpected " ^ Codec.reply_to_string r)
  in
  let reached () =
    let ok = ref true in
    for s = 0 to nshards - 1 do
      if pulled.(s) < watermark.(s) then ok := false
    done;
    !ok
  in
  (* One round normally suffices: [catchup_round] pulls each shard to
     the committed seq it reads at round start, which is >= the
     watermark.  The bound guards against a source that keeps failing
     pulls, not against a moving target. *)
  let rec final_drain attempts =
    if reached () then Ok ()
    else if attempts <= 0 then Error "final drain: watermark not reached"
    else begin
      incr rounds;
      let* n = catchup_round ~src ~dst ~slot ~nslots ~nshards pulled in
      cr := !cr + n;
      final_drain (attempts - 1)
    end
  in
  let* () = final_drain 100 in
  let* version =
    match Router.endpoint_call src Codec.Cl_info with
    | Codec.Cl_state { version; _ } -> Ok version
    | r -> Error ("cl_info: unexpected " ^ Codec.reply_to_string r)
  in
  let* () =
    match Router.endpoint_call dst (Codec.Cl_grant { slot; version }) with
    | Codec.Cl_ok -> Ok ()
    | r -> Error ("cl_grant: unexpected " ^ Codec.reply_to_string r)
  in
  let* () =
    match Router.endpoint_call src (Codec.Cl_release { slot }) with
    | Codec.Cl_ok -> Ok ()
    | r -> Error ("cl_release: unexpected " ^ Codec.reply_to_string r)
  in
  (match router with
  | Some rt -> Router.note_owner rt ~slot ~node:dst_id
  | None -> ());
  Ok
    {
      mg_slot = slot;
      mg_snap_kvs = snap_kvs;
      mg_snap_pages = snap_pages;
      mg_catchup_records = !cr;
      mg_catchup_rounds = !rounds;
      mg_version = version;
    }
