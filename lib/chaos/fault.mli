(** Declarative, replayable fault plans.

    A plan is pure data: a seed, a virtual-step budget, and a list of
    events sorted by virtual timestamp, each addressed to a shard.
    The {!Engine} consumes one plan against one (scheme, structure)
    pair; since the plan fixes {e what} happens and the engine's
    barriers fix {e when}, two runs of the same plan produce
    byte-identical fault traces and matrix rows. *)

type net = Truncate_reply | Close_mid_frame | Delayed_read

type kind =
  | Stall of int
      (** Park the shard consumer inside a control-plane bracket for N
          virtual steps — the paper's §2.3 stalled adversary. *)
  | Crash
      (** Kill the shard consumer mid-bracket ({!Service.Shard.t.crash});
          the abandoned reservation pins retirements until the
          {!Reaper} recovers it. *)
  | Oom of int
      (** The next N node allocations of the shard's map raise
          [Mpool.Injected_oom]. *)
  | Net of net  (** Transport fault on one socket exchange. *)
  | Churn  (** Abrupt client disconnect mid-request-frame. *)

type event = { at : int; shard : int; kind : kind }
type plan = { seed : int; steps : int; events : event list }

type fault_class = Stalls | Crashes | Ooms | Nets | Churns

val classes_named : string -> fault_class list option
(** ["stall"], ["crash"], ["oom"], ["net"], ["churn"], or ["mixed"]
    (all five). *)

val class_names : string list

val kind_to_string : kind -> string
val event_to_string : event -> string
(** The deterministic trace line: ["[t=0123] shard 2: ..."]. *)

val pp_plan : Format.formatter -> plan -> unit
val uses_net : plan -> bool
(** Whether the engine needs a socket server for this plan. *)

val has_crash : plan -> bool

val generate :
  seed:int ->
  steps:int ->
  nshards:int ->
  classes:fault_class list ->
  events:int ->
  crash_window:int ->
  plan
(** Seeded plan generator.  Per-shard busy-until bookkeeping keeps
    shard faults non-overlapping (a shard is stalled, dead, or healthy
    — never two at once), and crashes land at least [crash_window]
    steps before the end so the reaper recovers them in-plan. *)

val smoke : nshards:int -> detect:int -> plan
(** The fixed CI plan: one crash + one OOM burst + one net fault,
    sized to the reaper's [detect] threshold. *)

(** {2 Node-level faults}

    Whole-daemon events for the cluster experiment: a node dies (its
    primary is killed and its server torn down) or partitions (its
    socket stops answering) for a bounded window, then comes back via
    the normal store-recovery boot.  Same discipline as shard plans —
    pure data, seeded, non-overlapping per node. *)

type node_kind =
  | Node_kill of int
      (** Kill the daemon; reboot it after N virtual steps.  Reboot
          recovers WAL + snapshot + the persisted slot table. *)
  | Node_partition of int
      (** Drop the node's connectivity for N steps; the process keeps
          running (nothing to recover — clients see redirect/retry
          behaviour only). *)

type node_event = { n_at : int; n_node : int; n_kind : node_kind }

val node_event_to_string : node_event -> string

val node_plan :
  seed:int ->
  steps:int ->
  nnodes:int ->
  events:int ->
  outage:int ->
  node_event list
(** Seeded node-fault plan: [events] kill/partition events spread over
    [steps] virtual timestamps, each outage lasting about [outage]
    steps, at most one concurrent outage per node, and every outage
    ending before [steps] — the cluster is whole again at plan end,
    so the merged-history oracle check can read every key. *)
