(* Crash detection and recovery.

   The reaper watches each shard's heartbeat gauge (bumped once per
   consumer loop iteration, frozen by a crash).  A frozen heartbeat
   alone is NOT enough to act on: a stalled consumer parked inside its
   bracket also freezes, and force-exiting a live consumer's bracket
   would corrupt the control plane.  So a recovery fires only after
   [threshold] consecutive polls in which the heartbeat is frozen AND
   the domain is confirmed dead (joinable) — the confirmation is what
   makes a destructive force-leave safe, and counting polls from the
   confirmed death is what makes the detection step deterministic. *)

type t = {
  svc : Service.Shard.t;
  threshold : int;
  last_hb : int array;
  polls_dead : int array;
}

let create ~svc ~threshold =
  if threshold <= 0 then invalid_arg "Reaper.create: threshold <= 0";
  let n = svc.Service.Shard.nshards in
  {
    svc;
    threshold;
    last_hb = Array.init n (fun i -> svc.Service.Shard.heartbeat i);
    polls_dead = Array.make n 0;
  }

(* One detection poll; returns the shards whose death was confirmed on
   this poll (recover them now, or never hear about them again until
   their counter refills). *)
let poll t =
  let confirmed = ref [] in
  for i = 0 to t.svc.Service.Shard.nshards - 1 do
    let hb = t.svc.Service.Shard.heartbeat i in
    let frozen = hb = t.last_hb.(i) in
    t.last_hb.(i) <- hb;
    if t.svc.Service.Shard.consumer_alive i then t.polls_dead.(i) <- 0
    else begin
      t.polls_dead.(i) <- t.polls_dead.(i) + 1;
      if t.polls_dead.(i) >= t.threshold && frozen then begin
        confirmed := i :: !confirmed;
        t.polls_dead.(i) <- 0
      end
    end
  done;
  List.rev !confirmed

let recover t ~shard =
  t.svc.Service.Shard.recover ~shard;
  t.polls_dead.(shard) <- 0;
  t.last_hb.(shard) <- t.svc.Service.Shard.heartbeat shard
