(* Declarative fault plans.

   A plan is data, not behaviour: a seed, a virtual-step count, and a
   sorted list of events, each addressed to a shard and a virtual
   timestamp (the index of the driver's next request — see Engine).
   Everything downstream (trace lines, shed/deferred counts, oracle
   verdicts) is a deterministic function of the plan, so replaying the
   same plan against the same scheme yields byte-identical output. *)

type net = Truncate_reply | Close_mid_frame | Delayed_read

type kind =
  | Stall of int  (** park the consumer in a ctl bracket for N steps *)
  | Crash  (** kill the consumer mid-bracket (§2.3 dead thread) *)
  | Oom of int  (** next N map allocations on this shard fail *)
  | Net of net  (** transport fault on one socket exchange *)
  | Churn  (** abrupt client disconnect mid-request-frame *)

type event = { at : int; shard : int; kind : kind }
type plan = { seed : int; steps : int; events : event list }

type fault_class = Stalls | Crashes | Ooms | Nets | Churns

let classes_named = function
  | "stall" -> Some [ Stalls ]
  | "crash" -> Some [ Crashes ]
  | "oom" -> Some [ Ooms ]
  | "net" -> Some [ Nets ]
  | "churn" -> Some [ Churns ]
  | "mixed" -> Some [ Stalls; Crashes; Ooms; Nets; Churns ]
  | _ -> None

let class_names = [ "stall"; "crash"; "oom"; "net"; "churn"; "mixed" ]

let net_to_string = function
  | Truncate_reply -> "net truncate-reply"
  | Close_mid_frame -> "net close-mid-frame"
  | Delayed_read -> "net delayed-read"

let kind_to_string = function
  | Stall d -> Printf.sprintf "stall for %d steps" d
  | Crash -> "crash consumer mid-bracket"
  | Oom n -> Printf.sprintf "inject %d alloc failures" n
  | Net n -> net_to_string n
  | Churn -> "churn: abrupt disconnect mid-frame"

let event_to_string e =
  Printf.sprintf "[t=%04d] shard %d: %s" e.at e.shard (kind_to_string e.kind)

let pp_plan ppf p =
  Format.fprintf ppf "plan seed=%d steps=%d events=%d@." p.seed p.steps
    (List.length p.events);
  List.iter (fun e -> Format.fprintf ppf "  %s@." (event_to_string e)) p.events

let uses_net p =
  List.exists (fun e -> match e.kind with Net _ | Churn -> true | _ -> false)
    p.events

let has_crash p = List.exists (fun e -> e.kind = Crash) p.events

(* Generate a plan from a seed.  Per-shard busy-until bookkeeping keeps
   shard faults non-overlapping: a shard is stalled, dead, or healthy —
   never two at once — so the Engine can barrier on a healthy shard
   before every injection and the shed/deferred accounting stays
   deterministic.  [crash_window] must cover the reaper's detection
   threshold plus drain slack, so every crash recovers inside the plan. *)
let generate ~seed ~steps ~nshards ~classes ~events ~crash_window =
  if steps <= 0 then invalid_arg "Fault.generate: steps <= 0";
  if nshards <= 0 then invalid_arg "Fault.generate: nshards <= 0";
  if classes = [] then invalid_arg "Fault.generate: no fault classes";
  let rng = Prims.Rng.create ~seed in
  let busy_until = Array.make nshards 0 in
  let menu = Array.of_list classes in
  let acc = ref [] in
  let at = ref (8 + Prims.Rng.below rng 8) in
  let gap = max 4 (steps / max 1 (2 * events)) in
  let n = ref 0 in
  while !n < events && !at < steps - 8 do
    let shard = Prims.Rng.below rng nshards in
    let cls = menu.(Prims.Rng.below rng (Array.length menu)) in
    let kind, busy =
      match cls with
      | Stalls ->
          let d = 16 + Prims.Rng.below rng 32 in
          (Some (Stall d), !at + d + 8)
      | Crashes -> (Some Crash, !at + crash_window + 32)
      | Ooms -> (Some (Oom (1 + Prims.Rng.below rng 3)), !at + 4)
      | Nets ->
          let nf =
            match Prims.Rng.below rng 3 with
            | 0 -> Truncate_reply
            | 1 -> Close_mid_frame
            | _ -> Delayed_read
          in
          (Some (Net nf), !at)
      | Churns -> (Some Churn, !at)
    in
    (match kind with
    | Some k
      when busy_until.(shard) <= !at
           && (k <> Crash || !at + crash_window + 16 < steps)
           && (match k with
              | Stall d -> !at + d + 8 < steps
              | _ -> true) ->
        acc := { at = !at; shard; kind = k } :: !acc;
        busy_until.(shard) <- busy;
        incr n
    | _ -> ());
    at := !at + 1 + Prims.Rng.below rng gap
  done;
  let events = List.sort (fun a b -> compare (a.at, a.shard) (b.at, b.shard))
      (List.rev !acc)
  in
  { seed; steps; events }

(* ------------------------------------------------------------------ *)
(* Node-level faults (cluster experiment): whole-daemon kill/partition
   windows, same pure-data discipline as shard plans. *)

type node_kind = Node_kill of int | Node_partition of int
type node_event = { n_at : int; n_node : int; n_kind : node_kind }

let node_event_to_string e =
  match e.n_kind with
  | Node_kill d ->
      Printf.sprintf "[t=%04d] node %d: kill, reboot after %d" e.n_at e.n_node d
  | Node_partition d ->
      Printf.sprintf "[t=%04d] node %d: partition for %d" e.n_at e.n_node d

let node_plan ~seed ~steps ~nnodes ~events ~outage =
  if steps <= 0 then invalid_arg "Fault.node_plan: steps <= 0";
  if nnodes <= 0 then invalid_arg "Fault.node_plan: nnodes <= 0";
  if outage <= 0 then invalid_arg "Fault.node_plan: outage <= 0";
  let rng = Prims.Rng.create ~seed in
  let busy_until = Array.make nnodes 0 in
  let acc = ref [] in
  let at = ref (4 + Prims.Rng.below rng 8) in
  let gap = max 2 (steps / max 1 (2 * events)) in
  let n = ref 0 in
  while !n < events && !at + outage + 8 < steps do
    let node = Prims.Rng.below rng nnodes in
    if busy_until.(node) <= !at then begin
      let d = (outage / 2) + 1 + Prims.Rng.below rng outage in
      if !at + d + 4 < steps then begin
        let kind =
          if Prims.Rng.below rng 2 = 0 then Node_kill d else Node_partition d
        in
        acc := { n_at = !at; n_node = node; n_kind = kind } :: !acc;
        busy_until.(node) <- !at + d + 4;
        incr n
      end
    end;
    at := !at + 1 + Prims.Rng.below rng gap
  done;
  List.sort
    (fun a b -> compare (a.n_at, a.n_node) (b.n_at, b.n_node))
    (List.rev !acc)

(* The CI smoke plan: one crash, one OOM burst, one net fault — fixed
   by hand so the smoke test exercises exactly the acceptance trio
   regardless of seed.  [detect] is the reaper threshold the engine
   will run with; the crash lands early enough to recover in-plan. *)
let smoke ~nshards ~detect =
  let steps = detect + 160 in
  let ev at shard kind = { at; shard; kind } in
  {
    seed = 42;
    steps;
    events =
      [
        ev 24 0 Crash;
        ev 40 (min 1 (nshards - 1)) (Oom 2);
        ev 56 (min 1 (nshards - 1)) (Net Truncate_reply);
      ];
  }
