(** The chaos engine: one (scheme, structure) service, one fault plan,
    full accounting.

    A single-driver closed loop over virtual time (the step counter is
    the plan's timestamp domain).  Requests to healthy shards are
    awaited in-step; requests to stalled/dead shards are left deferred
    or shed by the mailbox bound.  Before every shard-addressed fault
    the engine barriers on an idle shard, so the deferred/shed split —
    and with it the whole trace and matrix row — is a deterministic
    function of (plan, scheme).  Wall-clock measurements are kept in
    result fields the deterministic outputs never print. *)

type cfg = {
  scheme : Workload.Registry.scheme;
  structure : Workload.Registry.structure;
  shards : int;
  clients : int;  (** [>= 3]; the driver owns the top tid slot *)
  mailbox_capacity : int;
  batch : int;
  key_range : int;  (** normal keys in [[0, key_range)]; OOM probes above *)
  detect : int;  (** reaper polls between a crash and its recovery *)
  bound : int;  (** robustness bound on the ctl backlog at detection *)
  socket_path : string option;
}

val default_cfg :
  scheme:Workload.Registry.scheme ->
  structure:Workload.Registry.structure ->
  cfg

type result = {
  r_scheme : string;
  r_structure : string;
  r_steps : int;
  r_prompt : int;
  r_deferred : int;
  r_shed : int;
  r_oom_injected : int;
  r_net_faults : int;
  r_churns : int;
  r_crashes : int;
  r_recoveries : int;
  r_recovery_steps : int;
  r_mem_bounded : bool option;
  r_peak_ctl : int;
  r_bound : int;
  r_recovery_ns : int;
  r_wall_s : float;
  r_series : int array;
  r_oracle : Oracle.verdict;
  r_trace : string list;
}

val availability : result -> float
(** Percent of normal requests not shed (prompt + deferred). *)

val run : cfg -> Fault.plan -> result
(** Create the service, drive the plan, heal, sweep the key range,
    stop, and run the {!Oracle}.  Owns the service for its whole
    lifetime.  @raise Invalid_argument if [cfg.clients < 3]. *)
