(** Post-run invariant oracle: sequential replay of acknowledged
    responses, plus reclamation-quiescence checks.

    The engine's closed single-driver loop over per-shard FIFOs with
    disjoint key partitions makes the global submission order a
    linearization, so a plain [Hashtbl] replay must reproduce every
    acknowledged reply and the surviving map state exactly.  [Shed]
    and injected-OOM [Error] replies are no-ops by contract; any other
    [Error] — notably one carrying a generation-check ["Lifecycle"]
    trip — is a violation, as is any retired-but-unreclaimed block
    surviving [stop]. *)

type verdict = {
  ok : bool;
  checked : int;
  gen_trips : int;
  failures : string list;
}

val is_injected_oom : Service.Codec.reply -> bool
val is_gen_trip : Service.Codec.reply -> bool

val replay_state :
  ops:(Service.Codec.request * Service.Codec.reply) list -> (int * int) list
(** Sequential replay of the acked history alone: the model's final
    bindings, sorted by key.  The replication failover gate compares a
    promoted follower's (or recovered primary's) swept state against
    exactly this — acked-but-lost or lost-but-unacked work shows up as
    a byte difference.  [Shed]/[Error] replies apply nothing. *)

val run :
  ops:(Service.Codec.request * Service.Codec.reply) list ->
  final:(int * Service.Codec.reply) list ->
  ctl_unreclaimed:int ->
  data_unreclaimed:int list ->
  verdict
