(** Dead-consumer detection and recovery.

    Polls each shard's heartbeat gauge once per engine step; after
    [threshold] consecutive polls with a frozen heartbeat {e and} a
    confirmed-dead domain, the shard is reported for recovery
    ({!Service.Shard.t.recover}: force-exit the abandoned control-plane
    bracket, reuse its tid slot, respawn the consumer).  Confirmation
    matters: stalled consumers freeze their heartbeat too, and
    force-leaving a live bracket would corrupt the control plane. *)

type t

val create : svc:Service.Shard.t -> threshold:int -> t
(** @raise Invalid_argument if [threshold <= 0]. *)

val poll : t -> int list
(** One detection poll; the shards whose death was confirmed on this
    poll.  Deterministic relative to the crash step: a shard crashed
    at engine step [t] is reported exactly [threshold] polls later. *)

val recover : t -> shard:int -> unit
(** {!Service.Shard.t.recover} plus reaper-state reset. *)
