(* The invariant oracle: replay acknowledged responses against a
   sequential model.

   Why a sequential model is exact here: the engine is a single-driver
   closed loop — one request in flight per virtual step — and each
   shard owns a disjoint key partition drained FIFO by one consumer.
   So the global submission order IS a linearization, and a plain
   Hashtbl replay of it must reproduce every acknowledged reply and
   the surviving map state.  Replies that by contract did not execute
   (Shed, injected-OOM Error) are no-ops in the model; any other Error
   — in particular one carrying a generation-check "Lifecycle" trip —
   is an invariant violation. *)

type verdict = {
  ok : bool;
  checked : int;  (** replies validated against the model *)
  gen_trips : int;  (** Error replies carrying a Hdr lifecycle trip *)
  failures : string list;  (** first few divergences, oldest first *)
}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_injected_oom = function
  | Service.Codec.Error m -> contains m "Injected_oom"
  | _ -> false

let is_gen_trip = function
  | Service.Codec.Error m -> contains m "Lifecycle"
  | _ -> false

let max_failures = 8

(* The model's reply to [req], applying its effect. *)
let apply model req =
  let open Service.Codec in
  match req with
  | Get k -> (
      match Hashtbl.find_opt model k with
      | Some v -> Value v
      | None -> Not_found)
  | Put { key; value } ->
      let existed = Hashtbl.mem model key in
      Hashtbl.replace model key value;
      if existed then Updated else Created
  | Del k ->
      if Hashtbl.mem model k then begin
        Hashtbl.remove model k;
        Deleted
      end
      else Not_found
  | Cas { key; expected; desired } -> (
      match Hashtbl.find_opt model key with
      | None -> Not_found
      | Some v when v <> expected -> Cas_fail
      | Some _ ->
          Hashtbl.replace model key desired;
          Cas_ok)
  | Rep_info | Rep_pull _ | Cl_info | Cl_grant _ | Cl_freeze _ | Cl_release _
  | Cl_snap _ | Cl_apply _ | Cl_base _ | Cl_purge _ ->
      (* Replication/cluster-control opcodes never reach the data path
         in a correct run; treat one as a divergence-visible error. *)
      Error "oracle: control request in acked history"
  | Putb _ | Getc _ | A_info ->
      (* Arena opcodes: the chaos engine drives the int-valued data
         path only — blob traffic never appears in its histories. *)
      Error "oracle: arena request in acked history"

(* Sequential replay of the acked history alone, yielding the model's
   final bindings — what a promoted replica (or a primary recovered
   from its WAL) must be byte-identical to.  Shed and Error replies
   executed nothing by contract, so they apply nothing. *)
let replay_state ~ops =
  let model = Hashtbl.create 1024 in
  List.iter
    (fun (req, reply) ->
      match reply with
      | Service.Codec.Shed | Service.Codec.Error _ -> ()
      | _ -> ignore (apply model req))
    ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare

(* [ops]: every acknowledged (request, reply) in submission order.
   [final]: the post-quiesce Get sweep over the whole key range.
   [ctl_unreclaimed]/[data_unreclaimed]: tracker backlogs after
   [stop] flushed everything — robust or not, a quiesced tracker must
   have reclaimed every retirement. *)
let run ~ops ~final ~ctl_unreclaimed ~data_unreclaimed =
  let model = Hashtbl.create 1024 in
  let checked = ref 0 in
  let gen_trips = ref 0 in
  let failures = ref [] in
  let fail msg =
    if List.length !failures < max_failures then failures := msg :: !failures
  in
  List.iter
    (fun (req, reply) ->
      if is_gen_trip reply then begin
        incr gen_trips;
        fail
          (Printf.sprintf "generation trip on %s: %s"
             (Service.Codec.request_to_string req)
             (Service.Codec.reply_to_string reply))
      end
      else
        match reply with
        | Service.Codec.Shed -> ()
        | Service.Codec.Error _ when is_injected_oom reply ->
            (* By the injection contract the request failed before any
               mutation: the model skips it too. *)
            ()
        | Service.Codec.Error m ->
            fail
              (Printf.sprintf "error reply on %s: %s"
                 (Service.Codec.request_to_string req)
                 m)
        | reply ->
            incr checked;
            let expected = apply model req in
            if reply <> expected then
              fail
                (Printf.sprintf "%s: got %s, model says %s"
                   (Service.Codec.request_to_string req)
                   (Service.Codec.reply_to_string reply)
                   (Service.Codec.reply_to_string expected)))
    ops;
  List.iter
    (fun (key, reply) ->
      incr checked;
      let expected =
        match Hashtbl.find_opt model key with
        | Some v -> Service.Codec.Value v
        | None -> Service.Codec.Not_found
      in
      if reply <> expected then
        fail
          (Printf.sprintf "final sweep key %d: got %s, model says %s" key
             (Service.Codec.reply_to_string reply)
             (Service.Codec.reply_to_string expected)))
    final;
  if ctl_unreclaimed <> 0 then
    fail
      (Printf.sprintf "post-stop control-plane backlog: %d unreclaimed"
         ctl_unreclaimed);
  List.iteri
    (fun i u ->
      if u <> 0 then
        fail (Printf.sprintf "post-stop shard %d map backlog: %d unreclaimed" i u))
    data_unreclaimed;
  {
    ok = !failures = [] && !gen_trips = 0;
    checked = !checked;
    gen_trips = !gen_trips;
    failures = List.rev !failures;
  }
