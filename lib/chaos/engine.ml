(* The chaos engine: drive one (scheme, structure) service through one
   fault plan and account for every request.

   Determinism is the whole game.  The engine is a single-driver
   closed loop over virtual time — the step counter, not the wall
   clock, is the plan's timestamp domain — with three rules:

   - One normal request per step, generated from the plan seed.  A
     request routed to a healthy shard is waited for before the next
     step (closed loop); one routed to a stalled/dead shard is left
     in flight ("deferred") or immediately shed — which of the two is
     decided by mailbox occupancy alone.
   - Before any shard-addressed fault is injected, the engine barriers
     until that shard has zero outstanding replies and an empty
     mailbox (and, for stalls, until the consumer confirms it is
     parked).  So every fault always lands on the same queue state,
     and the deferred/shed split is a function of the plan.
   - The reaper polls once per step, and detection counts polls from
     the confirmed death — a crash at step t recovers at exactly
     t + detect.

   Wall-clock durations (recovery ns, run seconds, raw peak backlog)
   are measured but quarantined in fields the deterministic outputs
   (trace, matrix row, CSV) never print. *)

type cfg = {
  scheme : Workload.Registry.scheme;
  structure : Workload.Registry.structure;
  shards : int;
  clients : int;
  mailbox_capacity : int;
  batch : int;
  key_range : int;
  detect : int;  (** reaper polls between crash and recovery *)
  bound : int;  (** ctl-plane backlog bound checked at detection *)
  socket_path : string option;  (** needed only for net/churn plans *)
}

let default_cfg ~scheme ~structure =
  {
    scheme;
    structure;
    shards = 4;
    clients = 4;
    mailbox_capacity = 16;
    batch = 16;
    key_range = 256;
    detect = 160;
    bound = 96;
    socket_path = None;
  }

type result = {
  r_scheme : string;
  r_structure : string;
  r_steps : int;
  r_prompt : int;  (** closed-loop requests answered in-step *)
  r_deferred : int;  (** accepted by a stalled/dead shard's mailbox *)
  r_shed : int;  (** rejected at a full mailbox *)
  r_oom_injected : int;  (** probes answered with a clean injected Error *)
  r_net_faults : int;
  r_churns : int;
  r_crashes : int;
  r_recoveries : int;
  r_recovery_steps : int;  (** virtual detection latency; -1 if no crash *)
  r_mem_bounded : bool option;
      (** ctl backlog at every detection point within [bound]; [None]
          when the plan crashed nothing *)
  r_peak_ctl : int;  (** wall-clock-ish magnitude; not in the trace *)
  r_bound : int;
  r_recovery_ns : int;  (** max crash→respawn wall latency *)
  r_wall_s : float;
  r_series : int array;  (** per-step ctl unreclaimed, for --plot *)
  r_oracle : Oracle.verdict;
  r_trace : string list;
}

let availability r =
  let denom = r.r_prompt + r.r_deferred + r.r_shed in
  if denom = 0 then 100.0
  else 100.0 *. float_of_int (r.r_prompt + r.r_deferred) /. float_of_int denom

type shard_state = Alive | Stalled of int | Dead of int

let run cfg (plan : Fault.plan) =
  if cfg.clients < 3 then invalid_arg "Engine.run: clients < 3";
  let svc =
    Service.Shard.create ~structure:cfg.structure ~scheme:cfg.scheme
      {
        Service.Shard.default_config with
        Service.Shard.shards = cfg.shards;
        clients = cfg.clients;
        mailbox_capacity = cfg.mailbox_capacity;
        batch = cfg.batch;
        seed = plan.Fault.seed;
        smr = { Smr.Config.default with Smr.Config.check_uaf = true };
      }
  in
  (* The driver's control-plane slot.  Socket handlers lease tids from
     0 upward and at most two connections overlap (one draining churn
     leftover, one active), so the top slot is never leased — the
     driver's brackets and any handler's never share a tid. *)
  let driver_tid = cfg.clients - 1 in
  let server =
    if Fault.uses_net plan then begin
      let path =
        match cfg.socket_path with
        | Some p -> p
        | None ->
            Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "chaos-%d.sock" (Unix.getpid ()))
      in
      Some (Service.Conn.serve_unix svc ~path ~faults:(Service.Conn.Faults.create ()) (), path)
    end
    else None
  in
  let t0 = Obs.Clock.now_ns () in
  let rng = Prims.Rng.create ~seed:((plan.Fault.seed * 2) + 1) in
  let state = Array.make cfg.shards Alive in
  let pending = Array.init cfg.shards (fun _ -> Atomic.make 0) in
  let ops = ref [] (* (request, reply cell), newest first *) in
  let trace = ref [] in
  let failures = ref [] in
  let emit line = trace := line :: !trace in
  let fail msg = failures := msg :: !failures in
  let prompt = ref 0
  and deferred = ref 0
  and shed = ref 0
  and oom_injected = ref 0
  and net_faults = ref 0
  and churns = ref 0
  and crashes = ref 0
  and recoveries = ref 0
  and recovery_steps = ref (-1)
  and mem_bounded = ref None
  and peak_ctl = ref 0
  and recovery_ns = ref 0 in
  let crash_step = Array.make cfg.shards (-1) in
  let crash_ns = Array.make cfg.shards 0 in
  let series = Array.make plan.Fault.steps 0 in
  let ctl_unreclaimed () =
    Smr.Stats.unreclaimed_of
      (Smr.Stats.snapshot (svc.Service.Shard.control_stats ()))
  in
  let spin_until ~what pred =
    let deadline = Unix.gettimeofday () +. 30.0 in
    let spins = ref 0 in
    let rec go () =
      if pred () then true
      else begin
        incr spins;
        if !spins land 255 = 0 then begin
          if Unix.gettimeofday () > deadline then begin
            fail (Printf.sprintf "timeout waiting for %s" what);
            false
          end
          else begin
            Unix.sleepf 0.0001;
            go ()
          end
        end
        else begin
          Domain.cpu_relax ();
          go ()
        end
      end
    in
    go ()
  in
  (* All replies for [shard] fired and its mailbox is empty: the fixed
     queue state every fault injection starts from. *)
  let barrier shard =
    ignore
      (spin_until
         ~what:(Printf.sprintf "shard %d to quiesce" shard)
         (fun () ->
           Atomic.get pending.(shard) = 0
           && svc.Service.Shard.shard_depth shard = 0))
  in
  let submit req =
    let s = svc.Service.Shard.shard_of_key (Service.Codec.key_of_request req) in
    let cell = Atomic.make None in
    Atomic.incr pending.(s);
    svc.Service.Shard.submit ~tid:driver_tid req (fun r ->
        Atomic.set cell (Some r);
        Atomic.decr pending.(s));
    (s, cell)
  in
  let submit_wait req =
    let _, cell = submit req in
    ops := (req, cell) :: !ops;
    if
      spin_until ~what:(Service.Codec.request_to_string req) (fun () ->
          Atomic.get cell <> None)
    then Atomic.get cell
    else None
  in
  (* Probe keys live in [key_range, ∞): never generated by the normal
     stream, never swept, so a probe that (correctly) fails to insert
     leaves the model untouched. *)
  let probe_key = ref cfg.key_range in
  let next_probe_key shard =
    while svc.Service.Shard.shard_of_key !probe_key <> shard do
      incr probe_key
    done;
    let k = !probe_key in
    incr probe_key;
    k
  in
  let gen_request () =
    let key = Prims.Rng.below rng cfg.key_range in
    match Prims.Rng.below rng 100 with
    | r when r < 55 -> Service.Codec.Get key
    | r when r < 80 ->
        Service.Codec.Put { key; value = Prims.Rng.below rng 1000 }
    | r when r < 92 -> Service.Codec.Del key
    | _ ->
        Service.Codec.Cas
          {
            key;
            expected = Prims.Rng.below rng 1000;
            desired = Prims.Rng.below rng 1000;
          }
  in
  let reaper = Reaper.create ~svc ~threshold:cfg.detect in
  let inject step (ev : Fault.event) =
    let shard = ev.Fault.shard in
    match ev.Fault.kind with
    | Fault.Stall d ->
        barrier shard;
        svc.Service.Shard.set_stalled ~shard true;
        ignore
          (spin_until
             ~what:(Printf.sprintf "shard %d to park" shard)
             (fun () -> svc.Service.Shard.is_parked shard));
        state.(shard) <- Stalled (step + d);
        emit (Fault.event_to_string ev)
    | Fault.Crash ->
        barrier shard;
        emit (Fault.event_to_string ev);
        svc.Service.Shard.crash ~shard;
        state.(shard) <- Dead step;
        crash_step.(shard) <- step;
        crash_ns.(shard) <- Obs.Clock.now_ns ();
        incr crashes
    | Fault.Oom n ->
        barrier shard;
        emit (Fault.event_to_string ev);
        svc.Service.Shard.inject_oom ~shard ~n;
        let clean = ref 0 in
        for _ = 1 to n do
          let req =
            Service.Codec.Put { key = next_probe_key shard; value = step }
          in
          match submit_wait req with
          | Some r when Oracle.is_injected_oom r -> incr clean
          | Some r ->
              fail
                (Printf.sprintf "oom probe %s got %s, not an injected error"
                   (Service.Codec.request_to_string req)
                   (Service.Codec.reply_to_string r))
          | None -> ()
        done;
        oom_injected := !oom_injected + !clean;
        emit
          (Printf.sprintf
             "[t=%04d] shard %d: %d/%d alloc failures surfaced as clean \
              Error replies, no mutation"
             step shard !clean n)
    | Fault.Net nf -> (
        match server with
        | None -> fail "net fault without a server"
        | Some (srv, path) -> (
            emit (Fault.event_to_string ev);
            let faults = Service.Conn.faults srv in
            (match nf with
            | Fault.Truncate_reply ->
                Service.Conn.Faults.arm_truncate_reply faults 1
            | Fault.Close_mid_frame ->
                Service.Conn.Faults.arm_close_mid_frame faults 1
            | Fault.Delayed_read ->
                Service.Conn.Faults.arm_delayed_read faults 1);
            let fd = Service.Conn.connect_unix ~path in
            (* Gets only: a reply lost mid-frame must not desynchronize
               the oracle, and a Get mutates nothing. *)
            let req = Service.Codec.Get (Prims.Rng.below rng cfg.key_range) in
            (match nf with
            | Fault.Delayed_read -> (
                match Service.Conn.call_fd fd req with
                | reply ->
                    ops := (req, Atomic.make (Some reply)) :: !ops;
                    incr net_faults;
                    emit
                      (Printf.sprintf
                         "[t=%04d] shard %d: delayed read absorbed, reply \
                          intact"
                         step shard)
                | exception Service.Conn.Closed ->
                    fail "delayed read lost its reply")
            | Fault.Truncate_reply | Fault.Close_mid_frame -> (
                match Service.Conn.call_fd fd req with
                | exception Service.Conn.Closed ->
                    incr net_faults;
                    emit
                      (Printf.sprintf
                         "[t=%04d] shard %d: client observed mid-frame EOF, \
                          service unharmed"
                         step shard)
                | reply ->
                    fail
                      (Printf.sprintf "net fault delivered a whole reply: %s"
                         (Service.Codec.reply_to_string reply))));
            try Unix.close fd with Unix.Unix_error _ -> ()))
    | Fault.Churn -> (
        match server with
        | None -> fail "churn without a server"
        | Some (_, path) ->
            emit (Fault.event_to_string ev);
            let fd = Service.Conn.connect_unix ~path in
            (* Two bytes of a length prefix, then vanish: the handler
               must observe Closed, free the leased tid, and leave the
               stream position of nobody else disturbed. *)
            (try ignore (Unix.write fd (Bytes.make 2 '\001') 0 2)
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            incr churns)
  in
  let reap step =
    List.iter
      (fun shard ->
        let u = ctl_unreclaimed () in
        if u > !peak_ctl then peak_ctl := u;
        let within = u <= cfg.bound in
        mem_bounded :=
          Some (match !mem_bounded with None -> within | Some b -> b && within);
        let now = Obs.Clock.now_ns () in
        if crash_step.(shard) >= 0 then begin
          let lat = step - crash_step.(shard) in
          if lat > !recovery_steps then recovery_steps := lat;
          let ns = now - crash_ns.(shard) in
          if ns > !recovery_ns then recovery_ns := ns
        end;
        Reaper.recover reaper ~shard;
        state.(shard) <- Alive;
        incr recoveries;
        emit
          (Printf.sprintf
             "[t=%04d] shard %d: heartbeat frozen %d polls, death confirmed \
              — ctl bracket force-exited, consumer respawned, backlog \
              draining (ctl backlog %s bound)"
             step shard cfg.detect
             (if within then "within" else "EXCEEDS")))
      (Reaper.poll reaper)
  in
  let events = Array.of_list plan.Fault.events in
  let next_ev = ref 0 in
  for step = 0 to plan.Fault.steps - 1 do
    Array.iteri
      (fun shard st ->
        match st with
        | Stalled until when until <= step ->
            svc.Service.Shard.set_stalled ~shard false;
            state.(shard) <- Alive;
            emit (Printf.sprintf "[t=%04d] shard %d: unstall" step shard)
        | _ -> ())
      state;
    while
      !next_ev < Array.length events && events.(!next_ev).Fault.at = step
    do
      inject step events.(!next_ev);
      incr next_ev
    done;
    reap step;
    let req = gen_request () in
    let s, cell = submit req in
    ops := (req, cell) :: !ops;
    (match state.(s) with
    | Alive ->
        if
          spin_until ~what:(Service.Codec.request_to_string req) (fun () ->
              Atomic.get cell <> None)
        then incr prompt
    | Stalled _ | Dead _ -> (
        match Atomic.get cell with
        | Some Service.Codec.Shed -> incr shed
        | Some _ | None -> incr deferred));
    let u = ctl_unreclaimed () in
    if u > !peak_ctl then peak_ctl := u;
    series.(step) <- u
  done;
  (* Heal: lift surviving stalls, recover any crash the plan left
     unrecovered (a mis-sized plan, not the normal path), and wait for
     every deferred reply before sweeping. *)
  Array.iteri
    (fun shard st ->
      match st with
      | Stalled _ ->
          svc.Service.Shard.set_stalled ~shard false;
          state.(shard) <- Alive;
          emit
            (Printf.sprintf "[t=%04d] shard %d: final heal: unstall"
               plan.Fault.steps shard)
      | Dead _ ->
          Reaper.recover reaper ~shard;
          state.(shard) <- Alive;
          incr recoveries;
          emit
            (Printf.sprintf "[t=%04d] shard %d: final heal: recover"
               plan.Fault.steps shard)
      | Alive -> ())
    state;
  for shard = 0 to cfg.shards - 1 do
    barrier shard
  done;
  let final = ref [] in
  for key = 0 to cfg.key_range - 1 do
    match submit_wait (Service.Codec.Get key) with
    | Some reply -> final := (key, reply) :: !final
    | None -> ()
  done;
  (match server with Some (srv, _) -> Service.Conn.shutdown srv | None -> ());
  svc.Service.Shard.stop ();
  let ctl_left = ctl_unreclaimed () in
  let data_left =
    List.map
      (fun st -> Smr.Stats.unreclaimed_of (Smr.Stats.snapshot st))
      (svc.Service.Shard.data_stats ())
  in
  let resolved =
    List.rev_map
      (fun (req, cell) ->
        match Atomic.get cell with
        | Some r -> (req, r)
        | None -> (req, Service.Codec.Error "reply never arrived"))
      !ops
  in
  let verdict =
    Oracle.run ~ops:resolved ~final:(List.rev !final) ~ctl_unreclaimed:ctl_left
      ~data_unreclaimed:data_left
  in
  let verdict =
    if !failures = [] then verdict
    else
      {
        verdict with
        Oracle.ok = false;
        failures = verdict.Oracle.failures @ List.rev !failures;
      }
  in
  {
    r_scheme = svc.Service.Shard.scheme_name;
    r_structure = svc.Service.Shard.structure_name;
    r_steps = plan.Fault.steps;
    r_prompt = !prompt;
    r_deferred = !deferred;
    r_shed = !shed;
    r_oom_injected = !oom_injected;
    r_net_faults = !net_faults;
    r_churns = !churns;
    r_crashes = !crashes;
    r_recoveries = !recoveries;
    r_recovery_steps = !recovery_steps;
    r_mem_bounded = !mem_bounded;
    r_peak_ctl = !peak_ctl;
    r_bound = cfg.bound;
    r_recovery_ns = !recovery_ns;
    r_wall_s = float_of_int (Obs.Clock.now_ns () - t0) /. 1e9;
    r_series = series;
    r_oracle = verdict;
    r_trace = List.rev !trace;
  }
