open Smr

module Make (H : Head.OPS) : Tracker_ext.S = struct
  module I = Internal.Make (H)

  type t = {
    cfg : Config.t;
    k : int Atomic.t; (* current slot count; grows when adaptive *)
    heads : H.t Directory.t;
    accesses : int Atomic.t Directory.t; (* per-slot access eras *)
    acks : int Atomic.t Directory.t; (* per-slot Ack counters *)
    era : int Atomic.t; (* the AllocEra clock *)
    alloc_count : int array; (* per tid, owner-written *)
    handles : Hdr.t array;
    slots_of : int array;
    builders : Batch.t array;
    reaps : Internal.reap array; (* per tid, reused; drain empties them *)
    stats : Stats.t;
  }

  let name =
    if H.backend = "dwcas" then "Hyaline-S" else "Hyaline-S(" ^ H.backend ^ ")"
  let robust = true
  let transparent = true

  let create cfg =
    Config.validate cfg;
    let kmin = cfg.slots in
    {
      cfg;
      k = Atomic.make kmin;
      heads = Directory.create ~kmin H.make;
      accesses = Directory.create ~kmin (fun () -> Atomic.make 0);
      acks = Directory.create ~kmin (fun () -> Atomic.make 0);
      era = Atomic.make 1;
      alloc_count = Array.make cfg.nthreads 0;
      handles = Array.make cfg.nthreads Hdr.nil;
      slots_of = Array.init cfg.nthreads (fun tid -> tid land (kmin - 1));
      builders = Array.init cfg.nthreads (fun _ -> Batch.create ());
      reaps = Array.init cfg.nthreads (fun _ -> Internal.new_reap ());
      stats = Stats.create ();
    }

  let slots t = Atomic.get t.k
  let pending t ~tid = Batch.size t.builders.(tid)

  (* §4.3: double the slot space.  Losers of the CAS just observe the
     winner's larger k; Directory.ensure is idempotent. *)
  let grow t =
    let kc = Atomic.get t.k in
    let k2 = kc * 2 in
    Directory.ensure t.heads ~k:k2;
    Directory.ensure t.accesses ~k:k2;
    Directory.ensure t.acks ~k:k2;
    ignore (Atomic.compare_and_set t.k kc k2)

  (* Fig. 5 enter: walk away from slots whose Ack marks them as
     occupied by stalled threads; if every slot is marked, either
     grow (§4.3) or — capped mode — settle for the current slot (the
     interference regime of Figure 10a). *)
  (* Top-level rather than a local closure so the enter path does not
     allocate (the packed backend's bracket is allocation-free end to
     end). *)
  let rec scan_slot t slot attempts k =
    if Atomic.get (Directory.get t.acks slot) < t.cfg.ack_threshold then slot
    else if attempts + 1 >= k then
      if t.cfg.adaptive then begin
        grow t;
        let k' = Atomic.get t.k in
        (* Fresh slots have Ack = 0; restart the scan in the new
           region. *)
        scan_slot t (k land (k' - 1)) 0 k'
      end
      else slot
    else scan_slot t ((slot + 1) land (k - 1)) (attempts + 1) k

  let pick_slot t ~tid =
    let k = Atomic.get t.k in
    scan_slot t (t.slots_of.(tid) land (k - 1)) 0 k

  let enter t ~tid =
    let slot = pick_slot t ~tid in
    t.slots_of.(tid) <- slot;
    let snap = H.enter_faa (Directory.get t.heads slot) in
    t.handles.(tid) <- H.hptr snap

  let leave t ~tid =
    let slot = t.slots_of.(tid) in
    let reap = t.reaps.(tid) in
    let count =
      I.leave_slot (Directory.get t.heads slot) ~handle:t.handles.(tid) reap
    in
    if count > 0 then
      ignore (Atomic.fetch_and_add (Directory.get t.acks slot) (-count));
    t.handles.(tid) <- Hdr.nil;
    Internal.drain t.stats ~tid reap

  let trim t ~tid =
    let slot = t.slots_of.(tid) in
    let reap = t.reaps.(tid) in
    let handle, count =
      I.trim_slot (Directory.get t.heads slot) ~handle:t.handles.(tid) reap
    in
    if count > 0 then
      ignore (Atomic.fetch_and_add (Directory.get t.acks slot) (-count));
    t.handles.(tid) <- handle;
    Internal.drain t.stats ~tid reap

  (* Fig. 5 init_node: advance the era clock every Freq allocations
     and stamp the block's birth. *)
  let alloc_hook t ~tid hdr =
    Stats.on_alloc t.stats;
    let c = t.alloc_count.(tid) + 1 in
    t.alloc_count.(tid) <- c;
    if c mod t.cfg.epoch_freq = 0 then ignore (Atomic.fetch_and_add t.era 1);
    hdr.Hdr.birth <- Atomic.get t.era

  (* Fig. 5 deref: publish (via the monotonic touch) an access era at
     least as recent as the clock before trusting the loaded value. *)
  let read t ~tid ~idx:_ a proj =
    let slot = t.slots_of.(tid) in
    let access = Directory.get t.accesses slot in
    let rec loop () =
      let v = Atomic.get a in
      let alloc = Atomic.get t.era in
      if Atomic.get access >= alloc then begin
        if t.cfg.check_uaf then Hdr.check_not_freed "Hyaline_s.read" (proj v);
        v
      end
      else begin
        ignore (Prims.Xatomic.cas_max access alloc);
        loop ()
      end
    in
    loop ()

  let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

  let retire_batch t ~tid ~k_now =
    let min_birth = Batch.min_birth t.builders.(tid) in
    let refnode = Batch.seal t.builders.(tid) ~adjs:(Adjs.of_k k_now) in
    let reap = t.reaps.(tid) in
    I.insert_batch
      (fun s -> Directory.get t.heads s)
      ~k:k_now refnode
      ~skip:(fun ~slot ->
        (* Stale access era: nobody in this slot ever dereferenced a
           block as young as this batch. *)
        Atomic.get (Directory.get t.accesses slot) < min_birth)
      ~after_insert:(fun ~slot ~href ->
        ignore (Atomic.fetch_and_add (Directory.get t.acks slot) href))
      reap;
    Internal.drain t.stats ~tid reap

  let retire t ~tid hdr =
    Tracker.retire_block t.stats ~tid hdr;
    Batch.add t.builders.(tid) hdr;
    let k_now = Atomic.get t.k in
    if Batch.size t.builders.(tid) >= max t.cfg.batch_min (k_now + 1) then
      retire_batch t ~tid ~k_now

  let flush t ~tid =
    let builder = t.builders.(tid) in
    if not (Batch.is_empty builder) then begin
      let k_now = Atomic.get t.k in
      let target = max t.cfg.batch_min (k_now + 1) in
      while Batch.size builder < target do
        let dummy = Hdr.create () in
        (* Dummies are born now, so they never lower the batch's
           minimum birth era. *)
        dummy.Hdr.birth <- Atomic.get t.era;
        Tracker.retire_block t.stats ~tid dummy;
        Batch.add builder dummy
      done;
      retire_batch t ~tid ~k_now
    end

  let stats t = t.stats

  let gauges t =
    let pend_total = ref 0 and pend_max = ref 0 in
    Array.iter
      (fun b ->
        let s = Batch.size b in
        pend_total := !pend_total + s;
        if s > !pend_max then pend_max := s)
      t.builders;
    [
      ("slots", Atomic.get t.k);
      ("batch_pending_total", !pend_total);
      ("batch_pending_max", !pend_max);
    ]
end

include Make (Head.Dwcas)
module Llsc = Make (Llsc_head)
module Packed = Make (Head.Packed)
