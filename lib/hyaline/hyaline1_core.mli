(** Shared implementation of Hyaline-1 and Hyaline-1S (Figures 4-5).
    Use [Hyaline1] / [Hyaline1s]; this functor selects whether the
    birth-era machinery (the [-S] robustness extension) is compiled in
    and which representation of the merged Fig. 4 word is used. *)

(** The merged single word of Fig. 4 — the owner's presence bit packed
    with the retirement-list head.  All operations are single-word
    atomics; [exchange_*] are wait-free. *)
module type WORD = sig
  type t
  type word

  val backend : string
  val make : unit -> t
  val get : t -> word

  val exchange_active : t -> word
  (** Swap in [{active = true; hptr = nil}]; return the old word
      (enter's wait-free publication). *)

  val exchange_idle : t -> word
  (** Swap in [{active = false; hptr = nil}]; return the old word
      (leave's wait-free detach). *)

  val cas_insert : t -> expected:word -> Smr.Hdr.t -> bool
  (** Replace the pointer field, keeping the bit, if the word still
      equals [expected] (retire's insertion). *)

  val active : word -> bool

  val empty : word -> bool
  (** [empty w] iff [hptr w] is nil, without materializing the pointer
      (the packed backend's empty-bracket fast path). *)

  val hptr : word -> Smr.Hdr.t
end

module Boxed_word : WORD
(** The historical default: an immutable [{active; hptr}] pair in one
    [Atomic.t], compare-and-set on the box (GC-pinned, so no ABA
    tag).  Each insertion allocates a fresh pair. *)

module Packed_word : WORD
(** Fig. 4's word for real: bit 0 is the presence bit, the upper bits
    hold [uid + 1] (0 = nil) decoded through the wait-free
    [Smr.Hdr.of_uid] registry.  Nothing allocates; the value-based CAS
    is ABA-safe because uids permanently denote one physical header
    (see DESIGN.md §1). *)

module Make
    (_ : sig
      val eras : bool
    end)
    (_ : WORD) : Tracker_ext.S
