open Smr

type reap = { mutable batches : Hdr.t list }

let new_reap () = { batches = [] }

let add_ref reap node v =
  let refn = node.Hdr.ref_node in
  let old = Atomic.fetch_and_add refn.Hdr.nref v in
  (* OCaml ints wrap modulo 2^63, which is exactly the unsigned
     arithmetic the Adjs construction needs: the count reads zero only
     once every slot's contribution has landed. *)
  if old + v = 0 then reap.batches <- refn :: reap.batches

let free_batch stats ~tid refn =
  let rec go h =
    if not (Hdr.is_nil h) then begin
      (* The hook recycles the node, so grab the chain link first. *)
      let next = h.Hdr.batch_link in
      Tracker.free_block stats ~tid h;
      go next
    end
  in
  go refn

let drain stats ~tid reap =
  List.iter (free_batch stats ~tid) (List.rev reap.batches);
  reap.batches <- []

let traverse reap ~next ~handle =
  let count = ref 0 in
  let rec go curr =
    if not (Hdr.is_nil curr) then begin
      let next = curr.Hdr.next in
      incr count;
      add_ref reap curr (-1);
      if curr != handle then go next
    end
  in
  go next;
  !count

module Make (H : Head.OPS) = struct
  let insert_batch heads ~k refnode ~skip ~after_insert reap =
    let empty = ref 0 in
    let do_adj = ref false in
    let node = ref refnode.Hdr.batch_link in
    let adjs = refnode.Hdr.adjs in
    for slot = 0 to k - 1 do
      let head = heads slot in
      let b = Prims.Backoff.create () in
      let rec attempt () =
        let snap = H.read head in
        if snap.Snap.href = 0 || skip ~slot then begin
          (* No thread in this slot can reference the batch: credit
             the slot's Adjs directly (REF #1# / Fig. 5's era skip). *)
          do_adj := true;
          empty := !empty + adjs
        end
        else begin
          let n = !node in
          assert (not (Hdr.is_nil n));
          n.Hdr.next <- snap.Snap.hptr;
          if H.cas_ptr head ~expected:snap n then begin
            node := n.Hdr.batch_link;
            after_insert ~slot ~href:snap.Snap.href;
            (* REF #2#: the displaced predecessor is complete for this
               slot — credit its batch's own Adjs plus the snapshot of
               threads that will dereference it on leave. *)
            if not (Hdr.is_nil snap.Snap.hptr) then
              add_ref reap snap.Snap.hptr
                (snap.Snap.hptr.Hdr.ref_node.Hdr.adjs + snap.Snap.href)
          end
          else begin
            Prims.Backoff.once b;
            attempt ()
          end
        end
      in
      attempt ()
    done;
    (* REF #3#: all skipped slots' credits in a single adjustment.
       When every slot was empty this is k * Adjs = 0 and the FAA
       observes zero immediately — the batch frees on the spot. *)
    if !do_adj then add_ref reap refnode !empty

  let leave_slot head ~handle reap =
    let b = Prims.Backoff.create () in
    let rec dec () =
      let snap = H.read head in
      assert (snap.Snap.href > 0);
      let curr = snap.Snap.hptr in
      (* Reading the successor is safe only while our HRef reference
         pins the first node; the pair-validating CAS below confirms
         nothing moved in between (the reason Fig. 3 reads Next inside
         the CAS loop). *)
      let next = if curr != handle then curr.Hdr.next else Hdr.nil in
      if H.cas_ref head ~expected:snap (snap.Snap.href - 1) then
        (snap, curr, next)
      else begin
        Prims.Backoff.once b;
        dec ()
      end
    in
    let snap, curr, next = dec () in
    (if snap.Snap.href = 1 && not (Hdr.is_nil curr) then
       (* We were the last thread out: detach the list, treating the
          first node as a predecessor (Fig. 3 lines 16-17).  Strong
          CAS: retry while the head still reads [{0, curr}] so a
          spurious SC failure (§4.4) cannot leak the list. *)
       let rec detach () =
         let s = H.read head in
         if s.Snap.href = 0 && s.Snap.hptr == curr then
           if H.cas_ptr head ~expected:s Hdr.nil then
             add_ref reap curr curr.Hdr.ref_node.Hdr.adjs
           else detach ()
       in
       detach ());
    if curr != handle then traverse reap ~next ~handle else 0

  let trim_slot head ~handle reap =
    let snap = H.read head in
    let curr = snap.Snap.hptr in
    let count =
      if curr != handle then traverse reap ~next:curr.Hdr.next ~handle else 0
    in
    (curr, count)
end
