open Smr

type reap = { mutable batches : Hdr.t list }

let new_reap () = { batches = [] }

let add_ref reap node v =
  let refn = node.Hdr.ref_node in
  let old = Atomic.fetch_and_add refn.Hdr.nref v in
  (* OCaml ints wrap modulo 2^63, which is exactly the unsigned
     arithmetic the Adjs construction needs: the count reads zero only
     once every slot's contribution has landed. *)
  if old + v = 0 then reap.batches <- refn :: reap.batches

let free_batch stats ~tid refn =
  let rec go h =
    if not (Hdr.is_nil h) then begin
      (* The hook recycles the node, so grab the chain link first. *)
      let next = h.Hdr.batch_link in
      Tracker.free_block stats ~tid h;
      go next
    end
  in
  go refn

(* Empty-guarded so a bracket that reaped nothing — the common case —
   allocates neither the partial application nor the reversal; reaps
   are reused per thread, so clear {e before} freeing (an exception
   from a free hook must not leave batches behind to double-free). *)
let drain stats ~tid reap =
  match reap.batches with
  | [] -> ()
  | batches ->
      reap.batches <- [];
      List.iter (free_batch stats ~tid) (List.rev batches)

(* Top-level (not a local closure) so callers on the bracket path
   allocate nothing. *)
let rec traverse_go reap handle curr count =
  if Hdr.is_nil curr then count
  else begin
    let next = curr.Hdr.next in
    add_ref reap curr (-1);
    if curr != handle then traverse_go reap handle next (count + 1)
    else count + 1
  end

let traverse reap ~next ~handle = traverse_go reap handle next 0

module Make (H : Head.OPS) = struct
  let insert_batch heads ~k refnode ~skip ~after_insert reap =
    let empty = ref 0 in
    let do_adj = ref false in
    let node = ref refnode.Hdr.batch_link in
    let adjs = refnode.Hdr.adjs in
    (* [attempt] finishes the slot (inserted, or credited empty) or
       returns [false] on a lost CAS; only then does [retry] create
       the backoff record, so an uncontended retire allocates no
       backoff at all. *)
    let attempt head slot =
      let snap = H.read head in
      if H.href snap = 0 || skip ~slot then begin
        (* No thread in this slot can reference the batch: credit
           the slot's Adjs directly (REF #1# / Fig. 5's era skip). *)
        do_adj := true;
        empty := !empty + adjs;
        true
      end
      else begin
        let n = !node in
        assert (not (Hdr.is_nil n));
        let prev = H.hptr snap in
        (* A tombstone decode means the snapshot went stale — the head's
           first node was freed after [read] — yet the value CAS below
           could still ABA-succeed (the uid survives recycling and the
           word can revisit its old bit pattern), which would link the
           shared sentinel into a live list.  Fail the attempt and
           retry from a fresh read; a non-tombstone decode is the same
           physical header the word denotes (uid permanence), so
           proceeding is ABA-safe.  See Hdr.is_tombstone. *)
        if Hdr.is_tombstone prev then false
        else begin
          n.Hdr.next <- prev;
          if H.cas_ptr head ~expected:snap n then begin
            node := n.Hdr.batch_link;
            after_insert ~slot ~href:(H.href snap);
            (* REF #2#: the displaced predecessor is complete for this
               slot — credit its batch's own Adjs plus the snapshot of
               threads that will dereference it on leave. *)
            if not (Hdr.is_nil prev) then
              add_ref reap prev (prev.Hdr.ref_node.Hdr.adjs + H.href snap);
            true
          end
          else false
        end
      end
    in
    let rec retry head slot b =
      Prims.Backoff.once b;
      if not (attempt head slot) then retry head slot b
    in
    for slot = 0 to k - 1 do
      let head = heads slot in
      if not (attempt head slot) then
        retry head slot (Prims.Backoff.create ())
    done;
    (* REF #3#: all skipped slots' credits in a single adjustment.
       When every slot was empty this is k * Adjs = 0 and the FAA
       observes zero immediately — the batch frees on the spot. *)
    if !do_adj then add_ref reap refnode !empty

  (* We were the last thread out: detach the list, treating the first
     node as a predecessor (Fig. 3 lines 16-17).  Strong CAS: retry
     while the head still reads [{0, curr}] so a spurious SC failure
     (§4.4) cannot leak the list. *)
  let rec detach head curr reap =
    let s = H.read head in
    if H.href s = 0 && H.hptr s == curr then
      if H.cas_ptr head ~expected:s Hdr.nil then
        add_ref reap curr curr.Hdr.ref_node.Hdr.adjs
      else detach head curr reap

  (* One decrement attempt; returns the traversal count, or -1 when
     the CAS lost.  Decomposed from the retry loop so the uncontended
     leave — first CAS lands — allocates nothing end to end: no
     snapshot box (immediate-snap backends), no backoff record, no
     intermediate tuple. *)
  let leave_attempt head ~handle reap =
    let snap = H.read head in
    assert (H.href snap > 0);
    let curr = H.hptr snap in
    (* Reading the successor is safe only while our HRef reference
       pins the first node; the pair-validating CAS below confirms
       nothing moved in between (the reason Fig. 3 reads Next inside
       the CAS loop). *)
    let next = if curr != handle then curr.Hdr.next else Hdr.nil in
    if H.cas_ref head ~expected:snap (H.href snap - 1) then begin
      if H.href snap = 1 && not (Hdr.is_nil curr) then detach head curr reap;
      if curr != handle then traverse reap ~next ~handle else 0
    end
    else -1

  let rec leave_retry head ~handle reap b =
    Prims.Backoff.once b;
    let n = leave_attempt head ~handle reap in
    if n >= 0 then n else leave_retry head ~handle reap b

  let leave_slot head ~handle reap =
    let n = leave_attempt head ~handle reap in
    if n >= 0 then n
    else leave_retry head ~handle reap (Prims.Backoff.create ())

  let trim_slot head ~handle reap =
    let snap = H.read head in
    let curr = H.hptr snap in
    let count =
      if curr != handle then traverse reap ~next:curr.Hdr.next ~handle else 0
    in
    (curr, count)
end
