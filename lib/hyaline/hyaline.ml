open Smr

module Make (H : Head.OPS) : Tracker_ext.S = struct
  module I = Internal.Make (H)

  type t = {
    cfg : Config.t;
    k : int;
    adjs : int;
    batch_size : int;
    heads : H.t array;
    handles : Hdr.t array; (* per tid; owner-written *)
    slots_of : int array; (* slot chosen by the tid's last enter *)
    builders : Batch.t array; (* per tid local batches *)
    reaps : Internal.reap array; (* per tid, reused; drain empties them *)
    stats : Stats.t;
  }

  let name = if H.backend = "dwcas" then "Hyaline" else "Hyaline(" ^ H.backend ^ ")"
  let robust = false
  let transparent = true

  let create cfg =
    Config.validate cfg;
    let k = cfg.slots in
    {
      cfg;
      k;
      adjs = Adjs.of_k k;
      (* Batches need strictly more nodes than slots (§3.2): one per
         slot list plus the dedicated NRef node. *)
      batch_size = max cfg.batch_min (k + 1);
      heads = Array.init k (fun _ -> H.make ());
      handles = Array.make cfg.nthreads Hdr.nil;
      slots_of = Array.make cfg.nthreads 0;
      builders = Array.init cfg.nthreads (fun _ -> Batch.create ());
      reaps = Array.init cfg.nthreads (fun _ -> Internal.new_reap ());
      stats = Stats.create ();
    }

  let slots t = t.k
  let pending t ~tid = Batch.size t.builders.(tid)

  let enter t ~tid =
    let slot = tid land (t.k - 1) in
    let snap = H.enter_faa t.heads.(slot) in
    t.slots_of.(tid) <- slot;
    t.handles.(tid) <- H.hptr snap

  let leave t ~tid =
    let slot = t.slots_of.(tid) in
    let reap = t.reaps.(tid) in
    let _count = I.leave_slot t.heads.(slot) ~handle:t.handles.(tid) reap in
    t.handles.(tid) <- Hdr.nil;
    Internal.drain t.stats ~tid reap

  let trim t ~tid =
    let slot = t.slots_of.(tid) in
    let reap = t.reaps.(tid) in
    let handle, _count = I.trim_slot t.heads.(slot) ~handle:t.handles.(tid) reap in
    t.handles.(tid) <- handle;
    Internal.drain t.stats ~tid reap

  let alloc_hook t ~tid:_ (_ : Hdr.t) = Stats.on_alloc t.stats

  (* Basic Hyaline needs no deref protocol (Fig. 1a: "No deref in
     basic Hyaline") — an unprotected atomic load suffices. *)
  let read t ~tid:_ ~idx:_ a proj =
    let v = Atomic.get a in
    if t.cfg.check_uaf then Hdr.check_not_freed "Hyaline.read" (proj v);
    v

  let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

  let retire_batch t ~tid =
    let refnode = Batch.seal t.builders.(tid) ~adjs:t.adjs in
    let reap = t.reaps.(tid) in
    I.insert_batch
      (fun s -> t.heads.(s))
      ~k:t.k refnode
      ~skip:(fun ~slot:_ -> false)
      ~after_insert:(fun ~slot:_ ~href:_ -> ())
      reap;
    Internal.drain t.stats ~tid reap

  let retire t ~tid hdr =
    Tracker.retire_block t.stats ~tid hdr;
    Batch.add t.builders.(tid) hdr;
    if Batch.size t.builders.(tid) >= t.batch_size then retire_batch t ~tid

  (* Finalize a partial batch by padding with dummy nodes (§2.4: local
     batches "can be immediately finalized by allocating a finite
     number of dummy nodes"), making the thread fully off the hook. *)
  let flush t ~tid =
    let builder = t.builders.(tid) in
    if not (Batch.is_empty builder) then begin
      while Batch.size builder < t.batch_size do
        let dummy = Hdr.create () in
        Tracker.retire_block t.stats ~tid dummy;
        Batch.add builder dummy
      done;
      retire_batch t ~tid
    end

  let stats t = t.stats

  let gauges t =
    let pend_total = ref 0 and pend_max = ref 0 in
    Array.iter
      (fun b ->
        let s = Batch.size b in
        pend_total := !pend_total + s;
        if s > !pend_max then pend_max := s)
      t.builders;
    [
      ("slots", t.k);
      ("batch_pending_total", !pend_total);
      ("batch_pending_max", !pend_max);
    ]
end

include Make (Head.Dwcas)
module Llsc = Make (Llsc_head)
module Packed = Make (Head.Packed)
