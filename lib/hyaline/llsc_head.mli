(** Head backend built from single-width LL/SC (paper Figure 7).

    Implements {!Head.OPS} with the three §4.4 primitives over an
    emulated reservation {!Granule}:

    - [dwFAA] — the enter/leave counter update: LL one word, plain-load
      the other, loop SC until it lands;
    - [dwCAS_Ptr] — retire's pointer swing, weak (spurious failures
      propagate to the caller, which re-reads and retries);
    - [dwCAS_Ref] — leave's counter decrement, same weakness.

    The [HRef = 0] detach case needs a strong CAS; as in the paper it
    is obtained by the {e algorithm} looping (see [Hyaline.Make]'s
    detach), not by this backend. *)

val spurious_every : int ref
(** Injection rate handed to granules created after the assignment;
    exposed so stress tests can crank failure injection up. *)

include Head.OPS with type snap = Snap.t
