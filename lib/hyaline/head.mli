(** Atomic operations on a slot Head — the backend signature.

    Hyaline needs read-modify-write atomicity over the two-word
    [\[HRef, HPtr\]] tuple.  The paper implements it three ways:
    double-width CAS (x86-64 [cmpxchg16b], ARM64), single-width LL/SC
    over a shared reservation granule (PPC/MIPS, §4.4), or
    counter-in-pointer squeezing (SPARC).  The algorithm in
    [Hyaline.Make] is written against this signature so each backend
    is a drop-in module: {!Dwcas} and {!Packed} here, [Llsc_head] for
    the emulated-LL/SC port.

    The snapshot type is abstract per backend — an immutable boxed
    {!Snap.t} for {!Dwcas} (physical-equality CAS) or an immediate
    unboxed int for {!Packed} — and the algorithm reads its fields
    through {!OPS.href}/{!OPS.hptr}, so backends with immediate
    snapshots keep the whole enter/leave bracket allocation-free.

    All operations are atomic with respect to each other.  The [cas_*]
    operations may fail spuriously (returning [false] with the head
    unchanged); callers re-read and retry, which is exactly the
    weak-CAS tolerance the paper's §4.4 relies on. *)

module type OPS = sig
  type t

  type snap
  (** One atomic snapshot of the pair.  Treat as immutable; valid to
      hold across arbitrary delays (the [cas_*] validation catches
      staleness). *)

  val backend : string
  val make : unit -> t

  val read : t -> snap
  (** Atomic load of the pair. *)

  val enter_faa : t -> snap
  (** Atomically increment [href] leaving [hptr] intact; return the
      {e pre-increment} snapshot (whose [hptr] becomes the caller's
      handle).  This is the paper's
      [FAA(&Heads[slot], {.HRef=1, .HPtr=0})]. *)

  val cas_ref : t -> expected:snap -> int -> bool
  (** Replace [href] if the pair still equals [expected]. *)

  val cas_ptr : t -> expected:snap -> Smr.Hdr.t -> bool
  (** Replace [hptr] if the pair still equals [expected]. *)

  val href : snap -> int
  (** The snapshot's reference count.  Never allocates. *)

  val hptr : snap -> Smr.Hdr.t
  (** The snapshot's list head ([Hdr.nil] when empty).  Never
      allocates; {!Packed} decodes through the wait-free
      [Smr.Hdr.of_uid] registry, and on a stale snapshot whose head
      node has since been freed the decode yields the registry's dead
      sentinel — callers that CAS against the snapshot must test
      [Smr.Hdr.is_tombstone] and retry from a fresh read (a value CAS
      can ABA-succeed even on a stale snapshot). *)
end

module Dwcas : OPS with type snap = Snap.t
(** Double-width-CAS backend: the pair lives in one [Atomic.t] as an
    immutable {!Snap.t}; compare-and-set on the box is the double-width
    RMW.  The GC pins a snapshot box while any thread still holds it,
    which is why no ABA tag is needed (the paper gets the same effect
    from handles keeping nodes un-recycled).  Every [enter_faa] and
    successful [cas_*] allocates a fresh box — the cost {!Packed}
    exists to remove. *)

module Packed : sig
  include OPS with type t = int Atomic.t and type snap = int

  val index_bits : int
  (** 40: bits of the [uid + 1] index field (index 0 is [Hdr.nil]). *)

  val href_bits : int
  (** 22: bits of the reference-count field; 62 bits total. *)

  val max_index : int
  val max_href : int

  val unit_href : int
  (** [1 lsl index_bits] — the literal fetch-and-add operand of
      [enter_faa], the paper's [{.HRef=1, .HPtr=0}] constant. *)

  val index_of : Smr.Hdr.t -> int
  (** [uid + 1]; 0 for [Hdr.nil]. *)

  val index : snap -> int
  (** The raw index field (no registry decode). *)

  val pack : href:int -> Smr.Hdr.t -> snap
  (** Checked constructor.
      @raise Invalid_argument if [href] or the header's index exceeds
      its field width. *)

  val pack_raw : href:int -> index:int -> snap
  (** {!pack} on a raw index — for tests probing the width
      boundaries without fabricating headers.
      @raise Invalid_argument outside the field widths. *)

  val with_href : snap -> int -> snap
  (** Unchecked field update (hot path; [cas_ref]'s new word). *)

  val with_hptr : snap -> Smr.Hdr.t -> snap
  (** Unchecked field update (hot path; [cas_ptr]'s new word). *)
end
(** Packed single-word backend: the pair is one immediate int,
    [(href lsl index_bits) lor (uid + 1)], in a single
    [int Atomic.t] — the closest OCaml analogue of the paper's
    Figure 4 word.  [enter_faa] is a genuine wait-free single
    fetch-and-add and no operation allocates; [hptr] resolves the
    index through the wait-free [Smr.Hdr.of_uid] registry.  The CAS
    is value-based like the hardware [cmpxchg16b] it models; uid
    permanence (uids are never reassigned, even across pool
    recycling) gives it the same ABA argument as the paper's, with
    the tombstone-decode window closed by the callers (see {!OPS.hptr}).
    What the 63-bit budget gives up vs [cmpxchg16b]: 22-bit HRef
    (4M simultaneous threads per slot) and 40-bit index space — the
    CAS paths check via [pack]; [enter_faa] cannot be range-checked
    without losing its wait-freedom, so it asserts in checked builds
    instead.  See DESIGN.md §1. *)
