module type OPS = sig
  type t
  type snap

  val backend : string
  val make : unit -> t
  val read : t -> snap
  val enter_faa : t -> snap
  val cas_ref : t -> expected:snap -> int -> bool
  val cas_ptr : t -> expected:snap -> Smr.Hdr.t -> bool
  val href : snap -> int
  val hptr : snap -> Smr.Hdr.t
end

module Dwcas : OPS with type snap = Snap.t = struct
  type t = Snap.t Atomic.t
  type snap = Snap.t

  let backend = "dwcas"
  let make () = Atomic.make Snap.zero
  let read = Atomic.get

  let rec enter_faa t =
    let old = Atomic.get t in
    let next = { old with Snap.href = old.Snap.href + 1 } in
    if Atomic.compare_and_set t old next then old else enter_faa t

  (* [expected] is a box previously obtained from [read]/[enter_faa],
     so physical compare-and-set implements the pair CAS.  A
     semantically-equal-but-distinct box only arises if the head
     changed in between, in which case failing is correct. *)
  let cas_ref t ~expected href =
    Atomic.compare_and_set t expected { expected with Snap.href }

  let cas_ptr t ~expected hptr =
    Atomic.compare_and_set t expected { expected with Snap.hptr }

  let href (s : Snap.t) = s.Snap.href
  let hptr (s : Snap.t) = s.Snap.hptr
end

(* The packed single-word backend: the whole [HRef, HPtr] pair lives
   in one immediate OCaml int, [(href lsl index_bits) lor (uid + 1)],
   inside a single [int Atomic.t].  This is the closest OCaml gets to
   the paper's Figure 4 word: [enter_faa] is a literal wait-free
   fetch-and-add of [1 lsl index_bits] and the [cas_*] operations are
   single-word value CASes — no snapshot box is ever allocated.

   Width budget on 63-bit ints: 40 index bits ([uid + 1]; index 0 is
   the [nil] sentinel) and 22 href bits, using 62 of the 63 available
   bits.  [Hdr.uid_capacity] (2^28) exhausts long before the index
   field can overflow, and 2^22 - 1 simultaneous threads in one slot
   exceeds any plausible deployment, so the checked guards in [pack]
   never fire on the hot paths (which are therefore unchecked).

   Unlike [Dwcas], the CAS here is value-based, exactly like the
   hardware cmpxchg16b the paper assumes — and safe for the paper's
   own reason: a uid denotes the same physical header forever
   (Hdr.of_uid; uids survive pool recycling), so a decoded [hptr] is
   the very node the word denotes even across free/recycle ABA.  The
   one exception is a decode landing inside the freed window, which
   yields the registry's tombstone; the insert paths test
   Hdr.is_tombstone and retry rather than CAS (Internal.insert_batch).
   See DESIGN.md §1 and docs/HEAD_BACKENDS.md for the full argument. *)
module Packed = struct
  type t = int Atomic.t
  type snap = int

  let backend = "packed"
  let index_bits = 40
  let href_bits = 22
  let max_index = (1 lsl index_bits) - 1
  let max_href = (1 lsl href_bits) - 1
  let unit_href = 1 lsl index_bits
  let index_of (h : Smr.Hdr.t) = h.Smr.Hdr.uid + 1

  let pack_raw ~href ~index =
    if href < 0 || href > max_href then
      invalid_arg "Head.Packed.pack: href out of range";
    if index < 0 || index > max_index then
      invalid_arg "Head.Packed.pack: index out of range";
    (href lsl index_bits) lor index

  let pack ~href h = pack_raw ~href ~index:(index_of h)
  let href s = s lsr index_bits
  let index s = s land max_index

  let hptr s =
    let i = s land max_index in
    if i = 0 then Smr.Hdr.nil else Smr.Hdr.of_uid (i - 1)

  let with_href s href = (href lsl index_bits) lor (s land max_index)
  let with_hptr s h = s land lnot max_index lor index_of h
  let make () = Atomic.make 0
  let read = Atomic.get

  (* Range-checking the FAA would destroy its wait-freedom, so the
     release hot path is unchecked; the debug assert makes an href
     overflow (2^22 simultaneous brackets in one slot) fail loudly in
     checked builds — schedcheck/chaos runs — instead of silently
     carrying into the index bits and decoding a wrong uid. *)
  let enter_faa t =
    let s = Atomic.fetch_and_add t unit_href in
    assert (s lsr index_bits < max_href);
    s

  let cas_ref t ~expected href =
    Atomic.compare_and_set t expected (with_href expected href)

  let cas_ptr t ~expected h =
    Atomic.compare_and_set t expected (with_hptr expected h)
end
