type t = Granule.t
type snap = Snap.t

let backend = "llsc"
let spurious_every = ref 0
let make () = Granule.make ~spurious_every:!spurious_every ()

let read t =
  let href, hptr = Granule.peek t in
  { Snap.href; hptr }

(* Figure 7's dwFAA: increment HRef, HPtr intact, loop on SC failure. *)
let rec enter_faa t =
  let tok = Granule.ll t in
  let href = Granule.href tok and hptr = Granule.hptr tok in
  if Granule.sc t tok ~href:(href + 1) ~hptr then { Snap.href; hptr }
  else enter_faa t

let matches tok (expected : Snap.t) =
  Granule.href tok = expected.Snap.href
  && Granule.hptr tok == expected.Snap.hptr

(* Figure 7's dwCAS_Ref: one LL/SC attempt; spurious failure is
   reported as CAS failure, which every caller tolerates. *)
let cas_ref t ~expected href =
  let tok = Granule.ll t in
  if not (matches tok expected) then false
  else Granule.sc t tok ~href ~hptr:(Granule.hptr tok)

(* Figure 7's dwCAS_Ptr. *)
let cas_ptr t ~expected hptr =
  let tok = Granule.ll t in
  if not (matches tok expected) then false
  else Granule.sc t tok ~href:(Granule.href tok) ~hptr

let href (s : Snap.t) = s.Snap.href
let hptr (s : Snap.t) = s.Snap.hptr
