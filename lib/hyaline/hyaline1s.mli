(** Hyaline-1S — robust Hyaline-1 (§4.2).

    Hyaline-1 with the birth-era extension: a per-slot access era
    updated by plain stores (the slot has a single owner, so no
    [touch] CAS is needed) and era-stale slot skipping in [retire].
    No Ack counters either — a stalled owner only poisons its own
    dedicated slot, which new batches skip as soon as its access era
    goes stale, so the scheme is fully robust without adaptive
    resizing (Figure 10a shows it tracking HP/HE/IBR exactly).

    [Config] fields used: [nthreads] (= k), [batch_min], [epoch_freq],
    [check_uaf]. *)

include Tracker_ext.S

module Packed : Tracker_ext.S
(** Hyaline-1S over the packed immediate word
    ([Hyaline1_core.Packed_word]); allocation-free brackets. *)
