(** Shared mechanics of the Hyaline algorithms (paper Figures 3-5).

    The batch reference-count bookkeeping ([adjust]/[traverse] and the
    deferred reaping of §4.1) is identical across Hyaline, Hyaline-S
    and the Hyaline-1 variants; the head manipulation is shared
    between the slot-based variants via the {!Make} functor over the
    {!Head.OPS} backend. *)

type reap
(** Deferred-free accumulator (§4.1): batches whose reference count
    reaches zero during an operation are collected here and freed
    afterwards — outside the traversal, in FIFO retirement order —
    so slow deallocation never extends list traversals. *)

val new_reap : unit -> reap

val add_ref : reap -> Smr.Hdr.t -> int -> unit
(** [add_ref reap node v] adds [v] to the reference counter of
    [node]'s batch (the paper's [adjust]); if the counter lands on
    zero, the batch is queued on [reap]. *)

val traverse : reap -> next:Smr.Hdr.t -> handle:Smr.Hdr.t -> int
(** Fig. 3 [traverse]: walk a retirement sublist from [next] down to
    and {e including} [handle], dereferencing (-1) each node's batch.
    Returns the number of nodes visited (Hyaline-S's Ack counter). *)

val drain : Smr.Stats.t -> tid:int -> reap -> unit
(** Free every queued batch (each node's [free_hook] runs exactly
    once), oldest batch first.  [tid] is the draining thread, passed
    to the free funnel for observability. *)

module Make (H : Head.OPS) : sig
  val insert_batch :
    (int -> H.t) ->
    k:int ->
    Smr.Hdr.t ->
    skip:(slot:int -> bool) ->
    after_insert:(slot:int -> href:int -> unit) ->
    reap ->
    unit
  (** Fig. 3 [retire] lines 29-40: push one sealed batch (by its NRef
      node) onto every slot's retirement list.  Slots with no active
      threads — or for which [skip ~slot] holds (Hyaline-S's stale-era
      test) — are credited as "empty" with the batch's own [Adjs];
      each successful insertion adjusts the displaced predecessor by
      {e its} batch's [Adjs] plus the HRef snapshot, and triggers
      [after_insert] (Hyaline-S's Ack bump). *)

  val leave_slot : H.t -> handle:Smr.Hdr.t -> reap -> int
  (** Fig. 3 [leave], decomposed as in §4.4: decrement HRef validating
      the whole pair (the successor of the first node is read under
      that validation); if this was the last thread, detach the list
      with a strong pointer-CAS and credit the former first node with
      its [Adjs]; finally traverse the sublist down to [handle].
      Returns the traversal count. *)

  val trim_slot : H.t -> handle:Smr.Hdr.t -> reap -> Smr.Hdr.t * int
  (** Fig. 3 [trim]: dereference the current sublist without altering
      Head; returns the new handle (the current first node) and the
      traversal count. *)
end
