include Hyaline1_core.Make
          (struct
            let eras = true
          end)
          (Hyaline1_core.Boxed_word)

module Packed =
  Hyaline1_core.Make
    (struct
      let eras = true
    end)
    (Hyaline1_core.Packed_word)
