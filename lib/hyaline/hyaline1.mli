(** Hyaline-1 — the single-width-CAS specialization (§3.2, Figure 4).

    Every thread owns a dedicated slot, so HRef carries one bit of
    information ("the owner is inside a bracket") and the paper merges
    it into the pointer word, making [enter]/[leave] wait-free
    single-word operations.  Batch accounting simplifies too: instead
    of predecessor adjustments and the Adjs construction, [retire]
    counts the slots it managed to insert into and adds that count to
    the batch's NRef; each slot owner decrements every node of the
    list it detaches on [leave].

    OCaml has no untagged pointer word to squeeze a bit into, so the
    default merged word is modelled as one [Atomic.t] holding an
    immutable [{active; hptr}] pair: [leave]'s detach is a genuinely
    wait-free [Atomic.exchange]; [enter] is a plain publication store
    (nothing races an inactive slot).  The per-thread-slot structure —
    the actual algorithmic content of Hyaline-1 — is exact.  {!Packed}
    instead packs the bit and a [uid + 1] index into one immediate
    int ([Hyaline1_core.Packed_word]), making the whole bracket
    allocation-free.

    Requires [tid]s to be dense in [0 .. Config.nthreads - 1]; "almost"
    transparent in the paper's terms: threads need a unique slot but
    never scan or wait for each other.

    Not robust — see [Hyaline1s].
    [Config] fields used: [nthreads] (= k), [batch_min], [check_uaf]. *)

include Tracker_ext.S

module Packed : Tracker_ext.S
(** Hyaline-1 over the packed immediate word — the Figure 4 fast
    path; see docs/HEAD_BACKENDS.md. *)
