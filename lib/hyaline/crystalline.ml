open Smr

(* Crystalline(-L) (Nikolaev & Ravindran, the Hyaline authors'
   wait-free successor): one reservation word per thread holding
   ⟨era, list⟩ — the thread's published protection era packed with the
   head of the retirement list other threads have handed it.  Era 0 is
   "not in a bracket"; the global era clock starts at 1, so a live
   reservation is never 0.

   The word reuses the Head.Packed bit layout from the Hyaline slots
   (href field ⇒ era, index field ⇒ list head): enter and leave are
   single-word exchanges of constants, retire is a value CAS on the
   pointer half, and deref publication is a value CAS on the era half.

   ISSUE 6 names lib/smr for this file; it lives here instead because
   the implementation is built from the hyaline_core toolbox (Batch,
   Internal, Head.Packed) and smr cannot depend back on it. *)

(* The reservation word: the thread's protection era merged with its
   incoming retirement-list head.  All operations are single-word
   atomics; [exchange] is wait-free. *)
module type WORD = sig
  type t
  type word

  val backend : string

  val max_era : int
  (** Largest publishable era (field width of the packed backend); the
      tracker's clock saturates here. *)

  val make : unit -> t
  val get : t -> word

  val exchange : t -> era:int -> word
  (** Swap in [⟨era, nil⟩]; return the old word.  [~era:0] is leave's
      wait-free detach, a fresh era is enter's/trim's wait-free
      publication. *)

  val cas_era : t -> expected:word -> int -> bool
  (** Replace the era field, keeping the list pointer, if the word
      still equals [expected] (deref's era raise).  Only the owner
      calls this, so the only concurrent mutation is an insert. *)

  val cas_insert : t -> expected:word -> Smr.Hdr.t -> bool
  (** Replace the list pointer, keeping the era, if the word still
      equals [expected] (retire's insertion). *)

  val era : word -> int

  val empty : word -> bool
  (** [empty w] iff [hptr w] is nil, without materializing the pointer
      (the packed backend's empty-bracket fast path). *)

  val hptr : word -> Smr.Hdr.t
end

type boxed = { era : int; hptr : Hdr.t }

module Boxed_word : WORD = struct
  type word = boxed
  type t = word Atomic.t

  let idle = { era = 0; hptr = Hdr.nil }
  let backend = "boxed"
  let max_era = max_int
  let make () = Atomic.make idle
  let get = Atomic.get

  let exchange t ~era =
    Atomic.exchange t (if era = 0 then idle else { era; hptr = Hdr.nil })

  (* Physical equality on the immutable box, as in Head.Dwcas. *)
  let cas_era t ~expected e =
    Atomic.compare_and_set t expected { expected with era = e }

  let cas_insert t ~expected n =
    Atomic.compare_and_set t expected { expected with hptr = n }

  let era w = w.era
  let empty w = Hdr.is_nil w.hptr
  let hptr w = w.hptr
end

(* The packed word proper: Head.Packed's layout verbatim — era in the
   22-bit href field, [uid + 1] in the 40-bit index field, decoded
   through the wait-free [Hdr.of_uid] registry.  Nothing allocates.
   The value CAS is ABA-safe by the same argument as the packed heads
   (uid permanence), with the same single tombstone-decode window the
   retire path re-checks; [cas_era] needs no such check because it
   copies the pointer bits verbatim without decoding them. *)
module Packed_word : WORD = struct
  module P = Head.Packed

  type t = int Atomic.t
  type word = int

  let backend = "packed"
  let max_era = P.max_href
  let make () = Atomic.make 0
  let get = Atomic.get
  let exchange t ~era = Atomic.exchange t (P.with_href 0 era)
  let cas_era t ~expected e = Atomic.compare_and_set t expected (P.with_href expected e)

  let cas_insert t ~expected n =
    Atomic.compare_and_set t expected (P.with_hptr expected n)

  let era = P.href
  let empty w = P.index w = 0
  let hptr = P.hptr
end

module Make (W : WORD) : Tracker_ext.S = struct
  type t = {
    cfg : Config.t;
    k : int; (* = nthreads: one reservation word per thread *)
    batch_size : int;
    rsrv : W.t array;
    era : int Atomic.t;
    alloc_count : int array;
    builders : Batch.t array;
    reaps : Internal.reap array; (* per tid, reused; drain empties them *)
    stats : Stats.t;
  }

  let name =
    "Crystalline" ^ if W.backend = "boxed" then "" else "(" ^ W.backend ^ ")"

  let robust = true
  let transparent = false (* needs a dedicated reservation word per thread *)

  let create cfg =
    Config.validate cfg;
    let k = cfg.nthreads in
    {
      cfg;
      k;
      batch_size = max cfg.batch_min (k + 1);
      rsrv = Array.init k (fun _ -> W.make ());
      era = Atomic.make 1;
      alloc_count = Array.make k 0;
      builders = Array.init k (fun _ -> Batch.create ());
      reaps = Array.init k (fun _ -> Internal.new_reap ());
      stats = Stats.create ();
    }

  let slots t = t.k
  let pending t ~tid = Batch.size t.builders.(tid)

  (* Wait-free: an idle word (era 0) is touched by nobody else — the
     era skip in [retire_batch] covers it — so publication is a plain
     exchange.  A slightly stale era is harmless: deref raises it on
     demand. *)
  let enter t ~tid =
    let old = W.exchange t.rsrv.(tid) ~era:(Atomic.get t.era) in
    assert (W.era old = 0 && W.empty old)

  (* Dereference the whole detached list: every node linked into our
     word stays pinned (its batch's count cannot reach zero before our
     decrement lands — the inserter counted us), so the decode in
     [W.hptr] can never meet a tombstone here. *)
  let drop_detached t ~tid old =
    let reap = t.reaps.(tid) in
    (if not (W.empty old) then
       ignore (Internal.traverse reap ~next:(W.hptr old) ~handle:Hdr.nil));
    Internal.drain t.stats ~tid reap

  (* Wait-free: clear the era and detach the list in one exchange. *)
  let leave t ~tid =
    let old = W.exchange t.rsrv.(tid) ~era:0 in
    assert (W.era old > 0);
    drop_detached t ~tid old

  (* Trim without ending the bracket: republish at the current era and
     release everything batched to us so far.  Unlike Hyaline-1's trim
     this detaches (no handle bookkeeping): the exchange is atomic, so
     a concurrent insert lands either on the old list (we drop it) or
     on the fresh word (we owe it at the next trim/leave). *)
  let trim t ~tid =
    let old = W.exchange t.rsrv.(tid) ~era:(Atomic.get t.era) in
    assert (W.era old > 0);
    drop_detached t ~tid old

  let alloc_hook t ~tid hdr =
    Stats.on_alloc t.stats;
    let c = t.alloc_count.(tid) + 1 in
    t.alloc_count.(tid) <- c;
    if c mod t.cfg.epoch_freq = 0 then begin
      (* CAS, not FAA: the clock must saturate at the packed era-field
         width.  A lost race just means someone else advanced — the
         clock moved either way.  At saturation every live reservation
         equals every birth era, the skip stops firing and the scheme
         degrades to insert-into-every-active-thread: still safe, no
         longer distance-bounded (docs/CRYSTALLINE.md). *)
      let e = Atomic.get t.era in
      if e < W.max_era then ignore (Atomic.compare_and_set t.era e (e + 1))
    end;
    hdr.Hdr.birth <- Atomic.get t.era

  (* Raise our era to [e] keeping the list pointer.  Only inserts race
     with this CAS (the owner is here), so it fails at most once per
     concurrent insert — lock-free, and in practice a couple of
     iterations.  No tombstone concern: the pointer bits are copied
     undecoded, and nodes in our list are pinned (see drop_detached),
     so a value recurrence would denote the same pinned header. *)
  let rec publish w cur e =
    if W.era cur < e then
      if not (W.cas_era w ~expected:cur e) then publish w (W.get w) e

  let read t ~tid ~idx:_ a proj =
    let w = t.rsrv.(tid) in
    let rec loop () =
      let v = Atomic.get a in
      let alloc = Atomic.get t.era in
      if W.era (W.get w) >= alloc then begin
        if t.cfg.check_uaf then Hdr.check_not_freed "Crystalline.read" (proj v);
        v
      end
      else begin
        publish w (W.get w) alloc;
        loop ()
      end
    in
    loop ()

  let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

  (* Wait-free retire (the -L flavour): one bounded pass over the k
     reservation words.  A word is skipped when its era is 0 (idle) or
     older than the batch's minimum birth — a reader's published era
     bounds the birth of anything it can hold (deref raises the era
     before returning), so such a thread references no node of this
     batch.  This skip is what bounds garbage under stalls: a thread
     frozen at era e only ever receives batches containing at least
     one node born at or before e, and there are finitely many. *)
  let retire_batch t ~tid =
    let min_birth = Batch.min_birth t.builders.(tid) in
    let refnode = Batch.seal t.builders.(tid) ~adjs:0 in
    let reap = t.reaps.(tid) in
    let inserts = ref 0 in
    let node = ref refnode.Hdr.batch_link in
    (* The backoff record is created only after a first lost CAS, so
       uncontended retires allocate none. *)
    let attempt word =
      let cur = W.get word in
      let e = W.era cur in
      if e = 0 || e < min_birth then true
      else begin
        let n = !node in
        assert (not (Hdr.is_nil n));
        let prev = W.hptr cur in
        (* Same tombstone window as Internal.insert_batch: a stale
           word whose head node was freed after [get] decodes to the
           shared sentinel, and the packed backend's value CAS could
           still ABA-succeed (the uid survives recycling, the word can
           revisit its old bits).  Fail the attempt and re-read; a
           non-tombstone decode is ABA-safe by uid permanence. *)
        if Hdr.is_tombstone prev then false
        else begin
          n.Hdr.next <- prev;
          if W.cas_insert word ~expected:cur n then begin
            node := n.Hdr.batch_link;
            incr inserts;
            true
          end
          else false
        end
      end
    in
    let rec retry word b =
      Prims.Backoff.once b;
      if not (attempt word) then retry word b
    in
    for slot = 0 to t.k - 1 do
      let word = t.rsrv.(slot) in
      if not (attempt word) then retry word (Prims.Backoff.create ())
    done;
    (* Final adjustment: each of the [inserts] recipients owes one
       decrement at its next trim/leave; the count reads zero exactly
       once all have landed (immediately if nobody was reachable). *)
    Internal.add_ref reap refnode !inserts;
    Internal.drain t.stats ~tid reap

  let retire t ~tid hdr =
    Tracker.retire_block t.stats ~tid hdr;
    Batch.add t.builders.(tid) hdr;
    if Batch.size t.builders.(tid) >= t.batch_size then retire_batch t ~tid

  let flush t ~tid =
    let builder = t.builders.(tid) in
    if not (Batch.is_empty builder) then begin
      while Batch.size builder < t.batch_size do
        let dummy = Hdr.create () in
        dummy.Hdr.birth <- Atomic.get t.era;
        Tracker.retire_block t.stats ~tid dummy;
        Batch.add builder dummy
      done;
      retire_batch t ~tid
    end

  let stats t = t.stats

  let gauges t =
    let pend_total = ref 0 and pend_max = ref 0 in
    Array.iter
      (fun b ->
        let s = Batch.size b in
        pend_total := !pend_total + s;
        if s > !pend_max then pend_max := s)
      t.builders;
    [
      ("slots", t.k);
      ("era", Atomic.get t.era);
      ("batch_pending_total", !pend_total);
      ("batch_pending_max", !pend_max);
    ]
end

include Make (Boxed_word)
module Packed = Make (Packed_word)
