(** Crystalline(-L): the Hyaline authors' wait-free successor
    (Nikolaev & Ravindran, PAPERS.md), built from this repo's Hyaline
    toolbox.

    One reservation word per thread packs the thread's protection era
    with the head of the retirement list other threads have handed it
    — the Fig. 4 single-word shape with the presence bit widened to an
    era.  Enter/leave/trim are single-word exchanges of constants
    (wait-free); deref raises the era in place ([cas_era]); retire is
    one bounded pass over the k words, skipping any whose era predates
    the batch's minimum birth — which is both the wait-freedom of the
    pass (an idle or stale word costs one read) and the robustness
    bound (a stalled reader only ever accumulates batches containing a
    node born before its frozen era).  See docs/CRYSTALLINE.md.

    [Tracker.S] notes: [robust = true]; [transparent = false] (a
    dedicated word per thread).  This implements the -L (lock-free
    insertion, wait-free era skip) flavour; -W's wide-CAS helping is
    out of scope. *)

(** The reservation word — era merged with the incoming list head.
    [exchange] is wait-free; the CASes may fail only under a
    concurrent insert. *)
module type WORD = sig
  type t
  type word

  val backend : string

  val max_era : int
  (** Largest publishable era; the tracker's clock saturates here. *)

  val make : unit -> t
  val get : t -> word

  val exchange : t -> era:int -> word
  (** Swap in [⟨era, nil⟩]; return the old word ([~era:0] = leave). *)

  val cas_era : t -> expected:word -> int -> bool
  (** Replace the era, keeping the list pointer (deref's raise). *)

  val cas_insert : t -> expected:word -> Smr.Hdr.t -> bool
  (** Replace the list pointer, keeping the era (retire's insert). *)

  val era : word -> int

  val empty : word -> bool
  (** [empty w] iff [hptr w] is nil, without materializing the
      pointer. *)

  val hptr : word -> Smr.Hdr.t
end

module Boxed_word : WORD
(** An immutable [{era; hptr}] pair in one [Atomic.t],
    compare-and-set on the box (GC-pinned, so no ABA tag). *)

module Packed_word : WORD
(** [Head.Packed]'s layout verbatim: era in the 22-bit href field,
    [uid + 1] in the 40-bit index field, decoded through the wait-free
    [Smr.Hdr.of_uid] registry.  Nothing allocates; the value CAS is
    ABA-safe by uid permanence, with the tombstone-decode window
    closed in the retire path (see DESIGN.md §1). *)

module Make (_ : WORD) : Tracker_ext.S

include Tracker_ext.S
(** Over {!Boxed_word} — the family's default backend. *)

module Packed : Tracker_ext.S
(** Over {!Packed_word}: allocation-free brackets. *)
