open Smr

(* The merged single word of Fig. 4: the owner's presence bit packed
   with the list head.  Two representations implement {!WORD}:
   immutable pairs in one Atomic ({!Boxed_word}, the historical
   default) and a genuinely packed immediate int ({!Packed_word});
   see Hyaline1's interface comment. *)
type word = { active : bool; hptr : Hdr.t }

let idle = { active = false; hptr = Hdr.nil }
let active_empty = { active = true; hptr = Hdr.nil }

module type WORD = sig
  type t
  type word

  val backend : string
  val make : unit -> t
  val get : t -> word

  val exchange_active : t -> word
  (** Swap in [{active = true; hptr = nil}]; return the old word
      (enter's wait-free publication). *)

  val exchange_idle : t -> word
  (** Swap in [{active = false; hptr = nil}]; return the old word
      (leave's wait-free detach). *)

  val cas_insert : t -> expected:word -> Hdr.t -> bool
  (** Replace the pointer field, keeping the bit, if the word still
      equals [expected] (retire's insertion). *)

  val active : word -> bool

  val empty : word -> bool
  (** [empty w] iff [hptr w] is nil — but without materializing the
      pointer, so the packed backend's empty-bracket hot path stays a
      single int comparison (no registry decode, no nil load). *)

  val hptr : word -> Hdr.t
end

module Boxed_word : WORD = struct
  type nonrec word = word
  type t = word Atomic.t

  let backend = "boxed"
  let make () = Atomic.make idle
  let get = Atomic.get
  let exchange_active t = Atomic.exchange t active_empty
  let exchange_idle t = Atomic.exchange t idle

  (* Physical equality on the immutable box, as in Head.Dwcas. *)
  let cas_insert t ~expected n =
    Atomic.compare_and_set t expected { expected with hptr = n }

  let active w = w.active
  let empty w = Hdr.is_nil w.hptr
  let hptr w = w.hptr
end

(* Fig. 4's word for real: bit 0 is the presence bit, the upper bits
   hold [uid + 1] (0 = nil), decoded through the wait-free
   [Hdr.of_uid] registry.  Enter/leave are single-word exchanges of
   constants and nothing allocates.  The CAS is value-based; safe
   because uids permanently denote one physical header and the
   credit arithmetic only depends on the word's value (the paper's
   own hardware-CAS argument — see DESIGN.md §1), modulo the one
   tombstone window the retire path re-checks (see [Make]'s attempt
   and Hdr.is_tombstone). *)
module Packed_word : WORD = struct
  type t = int Atomic.t
  type word = int

  let backend = "packed"
  let make () = Atomic.make 0
  let get = Atomic.get
  let exchange_active t = Atomic.exchange t 1
  let exchange_idle t = Atomic.exchange t 0
  let index_of (h : Hdr.t) = h.Hdr.uid + 1

  let cas_insert t ~expected n =
    Atomic.compare_and_set t expected ((index_of n lsl 1) lor (expected land 1))

  let active w = w land 1 = 1
  let empty w = w lsr 1 = 0

  let hptr w =
    let i = w lsr 1 in
    if i = 0 then Hdr.nil else Hdr.of_uid (i - 1)
end

module Make
    (E : sig
      val eras : bool
    end)
    (W : WORD) : Tracker_ext.S = struct
  type t = {
    cfg : Config.t;
    k : int; (* = nthreads: one slot per thread *)
    batch_size : int;
    heads : W.t array;
    accesses : int Atomic.t array; (* 1S: per-slot access eras *)
    era : int Atomic.t;
    alloc_count : int array;
    handles : Hdr.t array;
    builders : Batch.t array;
    reaps : Internal.reap array; (* per tid, reused; drain empties them *)
    stats : Stats.t;
  }

  let name =
    (if E.eras then "Hyaline-1S" else "Hyaline-1")
    ^ if W.backend = "boxed" then "" else "(" ^ W.backend ^ ")"

  let robust = E.eras
  let transparent = false (* "almost": needs a dedicated slot per thread *)

  let create cfg =
    Config.validate cfg;
    let k = cfg.nthreads in
    {
      cfg;
      k;
      batch_size = max cfg.batch_min (k + 1);
      heads = Array.init k (fun _ -> W.make ());
      accesses = Array.init k (fun _ -> Atomic.make 0);
      era = Atomic.make 1;
      alloc_count = Array.make k 0;
      handles = Array.make k Hdr.nil;
      builders = Array.init k (fun _ -> Batch.create ());
      reaps = Array.init k (fun _ -> Internal.new_reap ());
      stats = Stats.create ();
    }

  let slots t = t.k
  let pending t ~tid = Batch.size t.builders.(tid)

  (* Wait-free: an inactive slot is touched by nobody else (retire
     skips it), so publication is a plain exchange of a constant. *)
  let enter t ~tid =
    let old = W.exchange_active t.heads.(tid) in
    assert ((not (W.active old)) && W.empty old);
    t.handles.(tid) <- Hdr.nil

  (* Wait-free: detach the whole list and drop the bit in one
     exchange; the owner then dereferences every node it detached, down
     to and including the trim handle (whose decrement it still owes —
     the handle node is deliberately kept referenced by trim so a
     recycled node can never masquerade as the traversal boundary). *)
  let leave t ~tid =
    let old = W.exchange_idle t.heads.(tid) in
    assert (W.active old);
    let reap = t.reaps.(tid) in
    (* [empty] keeps the uncontended bracket free of the pointer
       decode: the packed registry lookup only happens when there is
       a detached list to traverse. *)
    (if not (W.empty old) then
       ignore (Internal.traverse reap ~next:(W.hptr old) ~handle:t.handles.(tid)));
    t.handles.(tid) <- Hdr.nil;
    Internal.drain t.stats ~tid reap

  (* Fig. 3-style trim: dereference everything below the current first
     node without touching the bit; the first node itself stays
     undecremented and becomes the new handle, exactly like the
     multi-slot trim. *)
  let trim t ~tid =
    let cur = W.hptr (W.get t.heads.(tid)) in
    let reap = t.reaps.(tid) in
    (if cur != t.handles.(tid) then
       ignore
         (Internal.traverse reap ~next:cur.Hdr.next ~handle:t.handles.(tid)));
    t.handles.(tid) <- cur;
    Internal.drain t.stats ~tid reap

  let alloc_hook t ~tid hdr =
    Stats.on_alloc t.stats;
    if E.eras then begin
      let c = t.alloc_count.(tid) + 1 in
      t.alloc_count.(tid) <- c;
      if c mod t.cfg.epoch_freq = 0 then ignore (Atomic.fetch_and_add t.era 1);
      hdr.Hdr.birth <- Atomic.get t.era
    end

  let read t ~tid ~idx:_ a proj =
    if not E.eras then begin
      let v = Atomic.get a in
      if t.cfg.check_uaf then Hdr.check_not_freed "Hyaline1.read" (proj v);
      v
    end
    else
      (* Fig. 5 deref; with a 1:1 thread-slot mapping touch is an
         ordinary store (only the owner ever writes its access era). *)
      let access = t.accesses.(tid) in
      let rec loop () =
        let v = Atomic.get a in
        let alloc = Atomic.get t.era in
        if Atomic.get access >= alloc then begin
          if t.cfg.check_uaf then
            Hdr.check_not_freed "Hyaline1s.read" (proj v);
          v
        end
        else begin
          Atomic.set access alloc;
          loop ()
        end
      in
      loop ()

  let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

  let retire_batch t ~tid =
    let min_birth = Batch.min_birth t.builders.(tid) in
    (* No Adjs arithmetic in Hyaline-1: the batch's count is simply
       the number of slots it reaches (Fig. 4). *)
    let refnode = Batch.seal t.builders.(tid) ~adjs:0 in
    let reap = t.reaps.(tid) in
    let inserts = ref 0 in
    let node = ref refnode.Hdr.batch_link in
    (* As in Internal.insert_batch, the backoff record is created only
       after a first lost CAS, so uncontended retires allocate none. *)
    let attempt head slot =
      let cur = W.get head in
      let skip =
        (not (W.active cur))
        || (E.eras && Atomic.get t.accesses.(slot) < min_birth)
      in
      if skip then true
      else begin
        let n = !node in
        assert (not (Hdr.is_nil n));
        let prev = W.hptr cur in
        (* Same tombstone window as Internal.insert_batch: a stale
           word whose head node was freed after [get] decodes to the
           shared sentinel, and the packed backend's value CAS could
           still ABA-succeed (the uid survives recycling, the word can
           revisit its old bits).  Fail the attempt and re-read; a
           non-tombstone decode is ABA-safe by uid permanence. *)
        if Hdr.is_tombstone prev then false
        else begin
          n.Hdr.next <- prev;
          if W.cas_insert head ~expected:cur n then begin
            node := n.Hdr.batch_link;
            incr inserts;
            true
          end
          else false
        end
      end
    in
    let rec retry head slot b =
      Prims.Backoff.once b;
      if not (attempt head slot) then retry head slot b
    in
    for slot = 0 to t.k - 1 do
      let head = t.heads.(slot) in
      if not (attempt head slot) then
        retry head slot (Prims.Backoff.create ())
    done;
    (* Final adjustment: the owners of the [inserts] slots each hold
       one reference; when all have traversed, the count returns to
       zero (immediately so if no slot was active). *)
    Internal.add_ref reap refnode !inserts;
    Internal.drain t.stats ~tid reap

  let retire t ~tid hdr =
    Tracker.retire_block t.stats ~tid hdr;
    Batch.add t.builders.(tid) hdr;
    if Batch.size t.builders.(tid) >= t.batch_size then retire_batch t ~tid

  let flush t ~tid =
    let builder = t.builders.(tid) in
    if not (Batch.is_empty builder) then begin
      while Batch.size builder < t.batch_size do
        let dummy = Hdr.create () in
        if E.eras then dummy.Hdr.birth <- Atomic.get t.era;
        Tracker.retire_block t.stats ~tid dummy;
        Batch.add builder dummy
      done;
      retire_batch t ~tid
    end

  let stats t = t.stats

  let gauges t =
    let pend_total = ref 0 and pend_max = ref 0 in
    Array.iter
      (fun b ->
        let s = Batch.size b in
        pend_total := !pend_total + s;
        if s > !pend_max then pend_max := s)
      t.builders;
    [
      ("slots", t.k);
      ("batch_pending_total", !pend_total);
      ("batch_pending_max", !pend_max);
    ]
end
