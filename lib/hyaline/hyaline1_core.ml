open Smr

(* The merged single word of Fig. 4: the owner's presence bit packed
   with the list head.  Immutable pairs in one Atomic model the
   paper's (ptr | bit) word; see Hyaline1's interface comment. *)
type word = { active : bool; hptr : Hdr.t }

let idle = { active = false; hptr = Hdr.nil }

module Make (E : sig
  val eras : bool
end) : Tracker_ext.S = struct
  type t = {
    cfg : Config.t;
    k : int; (* = nthreads: one slot per thread *)
    batch_size : int;
    heads : word Atomic.t array;
    accesses : int Atomic.t array; (* 1S: per-slot access eras *)
    era : int Atomic.t;
    alloc_count : int array;
    handles : Hdr.t array;
    builders : Batch.t array;
    stats : Stats.t;
  }

  let name = if E.eras then "Hyaline-1S" else "Hyaline-1"
  let robust = E.eras
  let transparent = false (* "almost": needs a dedicated slot per thread *)

  let create cfg =
    Config.validate cfg;
    let k = cfg.nthreads in
    {
      cfg;
      k;
      batch_size = max cfg.batch_min (k + 1);
      heads = Array.init k (fun _ -> Atomic.make idle);
      accesses = Array.init k (fun _ -> Atomic.make 0);
      era = Atomic.make 1;
      alloc_count = Array.make k 0;
      handles = Array.make k Hdr.nil;
      builders = Array.init k (fun _ -> Batch.create ());
      stats = Stats.create ();
    }

  let slots t = t.k
  let pending t ~tid = Batch.size t.builders.(tid)

  (* Wait-free: an inactive slot is touched by nobody else (retire
     skips it), so publication is a plain store. *)
  let enter t ~tid =
    let old = Atomic.exchange t.heads.(tid) { active = true; hptr = Hdr.nil } in
    assert ((not old.active) && Hdr.is_nil old.hptr);
    t.handles.(tid) <- Hdr.nil

  (* Wait-free: detach the whole list and drop the bit in one
     exchange; the owner then dereferences every node it detached, down
     to and including the trim handle (whose decrement it still owes —
     the handle node is deliberately kept referenced by trim so a
     recycled node can never masquerade as the traversal boundary). *)
  let leave t ~tid =
    let old = Atomic.exchange t.heads.(tid) idle in
    assert old.active;
    let reap = Internal.new_reap () in
    (if not (Hdr.is_nil old.hptr) then
       ignore (Internal.traverse reap ~next:old.hptr ~handle:t.handles.(tid)));
    t.handles.(tid) <- Hdr.nil;
    Internal.drain t.stats ~tid reap

  (* Fig. 3-style trim: dereference everything below the current first
     node without touching the bit; the first node itself stays
     undecremented and becomes the new handle, exactly like the
     multi-slot trim. *)
  let trim t ~tid =
    let cur = Atomic.get t.heads.(tid) in
    let reap = Internal.new_reap () in
    (if cur.hptr != t.handles.(tid) then
       ignore
         (Internal.traverse reap ~next:cur.hptr.Hdr.next
            ~handle:t.handles.(tid)));
    t.handles.(tid) <- cur.hptr;
    Internal.drain t.stats ~tid reap

  let alloc_hook t ~tid hdr =
    Stats.on_alloc t.stats;
    if E.eras then begin
      let c = t.alloc_count.(tid) + 1 in
      t.alloc_count.(tid) <- c;
      if c mod t.cfg.epoch_freq = 0 then ignore (Atomic.fetch_and_add t.era 1);
      hdr.Hdr.birth <- Atomic.get t.era
    end

  let read t ~tid ~idx:_ a proj =
    if not E.eras then begin
      let v = Atomic.get a in
      if t.cfg.check_uaf then Hdr.check_not_freed "Hyaline1.read" (proj v);
      v
    end
    else
      (* Fig. 5 deref; with a 1:1 thread-slot mapping touch is an
         ordinary store (only the owner ever writes its access era). *)
      let access = t.accesses.(tid) in
      let rec loop () =
        let v = Atomic.get a in
        let alloc = Atomic.get t.era in
        if Atomic.get access >= alloc then begin
          if t.cfg.check_uaf then
            Hdr.check_not_freed "Hyaline1s.read" (proj v);
          v
        end
        else begin
          Atomic.set access alloc;
          loop ()
        end
      in
      loop ()

  let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

  let retire_batch t ~tid =
    let min_birth = Batch.min_birth t.builders.(tid) in
    (* No Adjs arithmetic in Hyaline-1: the batch's count is simply
       the number of slots it reaches (Fig. 4). *)
    let refnode = Batch.seal t.builders.(tid) ~adjs:0 in
    let reap = Internal.new_reap () in
    let inserts = ref 0 in
    let node = ref refnode.Hdr.batch_link in
    for slot = 0 to t.k - 1 do
      let head = t.heads.(slot) in
      let b = Prims.Backoff.create () in
      let rec attempt () =
        let cur = Atomic.get head in
        let skip =
          (not cur.active)
          || (E.eras && Atomic.get t.accesses.(slot) < min_birth)
        in
        if not skip then begin
          let n = !node in
          assert (not (Hdr.is_nil n));
          n.Hdr.next <- cur.hptr;
          if Atomic.compare_and_set head cur { cur with hptr = n } then begin
            node := n.Hdr.batch_link;
            incr inserts
          end
          else begin
            Prims.Backoff.once b;
            attempt ()
          end
        end
      in
      attempt ()
    done;
    (* Final adjustment: the owners of the [inserts] slots each hold
       one reference; when all have traversed, the count returns to
       zero (immediately so if no slot was active). *)
    Internal.add_ref reap refnode !inserts;
    Internal.drain t.stats ~tid reap

  let retire t ~tid hdr =
    Tracker.retire_block t.stats ~tid hdr;
    Batch.add t.builders.(tid) hdr;
    if Batch.size t.builders.(tid) >= t.batch_size then retire_batch t ~tid

  let flush t ~tid =
    let builder = t.builders.(tid) in
    if not (Batch.is_empty builder) then begin
      while Batch.size builder < t.batch_size do
        let dummy = Hdr.create () in
        if E.eras then dummy.Hdr.birth <- Atomic.get t.era;
        Tracker.retire_block t.stats ~tid dummy;
        Batch.add builder dummy
      done;
      retire_batch t ~tid
    end

  let stats t = t.stats

  let gauges t =
    let pend_total = ref 0 and pend_max = ref 0 in
    Array.iter
      (fun b ->
        let s = Batch.size b in
        pend_total := !pend_total + s;
        if s > !pend_max then pend_max := s)
      t.builders;
    [
      ("slots", t.k);
      ("batch_pending_total", !pend_total);
      ("batch_pending_max", !pend_max);
    ]
end
