include Hyaline1_core.Make
          (struct
            let eras = false
          end)
          (Hyaline1_core.Boxed_word)

module Packed =
  Hyaline1_core.Make
    (struct
      let eras = false
    end)
    (Hyaline1_core.Packed_word)
