(** Hyaline — the multi-slot algorithm of §3.2/§4.1 (Figure 3).

    The paper's primary contribution: fully transparent lock-free
    reclamation with ≈O(1) cost.  [k] slots (a small power of two,
    independent of the thread count) each hold a Head tuple; [enter]
    increments one slot's HRef with a single atomic RMW and records a
    handle; retired nodes are batched and each sealed batch is pushed
    onto {e every} slot with active threads; [leave] decrements HRef
    and dereferences exactly the sublist retired during the bracket.
    The thread holding a batch's last reference frees it — asynchronous
    tracking, no periodic checks of other threads, and threads are
    completely off the hook after [leave].

    Not robust: a stalled thread inside a bracket pins every batch
    retired after its handle in its slot (use [Hyaline_s] when that
    matters).

    [Config] fields used: [slots] (k), [batch_min], [check_uaf].
    Setting [slots = 1] gives exactly the simplified single-list
    version of §3.1. *)

module Make (H : Head.OPS) : Tracker_ext.S
(** Build Hyaline over a Head backend ({!Head.Dwcas}, {!Head.Packed}
    or {!Llsc_head}). *)

include Tracker_ext.S
(** Hyaline over double-width CAS — the paper's default. *)

module Llsc : Tracker_ext.S
(** Hyaline over emulated single-width LL/SC (§4.4) — the PPC/MIPS
    port used for the Appendix-A figures. *)

module Packed : Tracker_ext.S
(** Hyaline over the packed single-word head ({!Head.Packed}): a true
    wait-free fetch-and-add [enter] and an allocation-free uncontended
    bracket — the Figure 4 fast path.  See docs/HEAD_BACKENDS.md for
    choosing a backend. *)
