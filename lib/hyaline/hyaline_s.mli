(** Hyaline-S — the robust extension (§4.2, Figure 5).

    Basic Hyaline, like EBR, lets one stalled thread pin every batch
    retired into its slot.  Hyaline-S borrows {e birth eras} from
    HE/IBR (but no retire eras, and no per-thread reservation
    intervals): a global era clock advances every [Config.epoch_freq]
    allocations, every tracked dereference raises the reader's
    {e per-slot} access era to the clock ([touch] — a CAS because
    slots are shared between threads), and [retire] simply skips slots
    whose access era predates the batch's oldest birth: threads there
    can hold no reference into the batch.

    Stalled threads are driven out of the way by {e Acks}: each
    insertion bumps the slot's Ack by the HRef snapshot and each
    traversal decrements it by the nodes visited, so an Ack that grows
    past [Config.ack_threshold] marks a slot whose occupants have
    stopped traversing; [enter] walks past such slots.  With
    [Config.adaptive = true] the slot space doubles (§4.3 directory)
    whenever every slot is marked, making the scheme fully robust; with
    the cap, robustness holds until stalled threads outnumber slots
    (both behaviours appear in Figure 10a).

    [Config] fields used: [slots] (Kmin), [batch_min], [epoch_freq],
    [ack_threshold], [adaptive], [check_uaf]. *)

module Make (H : Head.OPS) : Tracker_ext.S

include Tracker_ext.S
(** Hyaline-S over double-width CAS. *)

module Llsc : Tracker_ext.S
(** Hyaline-S over emulated single-width LL/SC (§4.4). *)

module Packed : Tracker_ext.S
(** Hyaline-S over the packed single-word head ({!Head.Packed}):
    wait-free fetch-and-add [enter] and an allocation-free uncontended
    bracket. *)
