(* Wall-clock nanoseconds.  [Unix.gettimeofday] is the only clock the
   baked-in platform exposes; it can step backwards under NTP, so lag
   computations must clamp differences at zero (Hist.add does). *)

let default_source () = int_of_float (Unix.gettimeofday () *. 1e9)
let source = ref default_source
let now_ns () = !source ()

let set_source = function
  | None -> source := default_source
  | Some f -> source := f

let ns_to_us ns = float_of_int ns /. 1e3
let ns_to_ms ns = float_of_int ns /. 1e6
