(** Per-domain reclamation event ring.

    A fixed-size circular buffer of [(timestamp, kind, info)] records
    backed by one flat int array: recording an event is three int
    stores and a cursor bump — {e no allocation on the hot path}.

    Ownership discipline: {e single writer} (the domain whose events it
    records), snapshot readers.  [snapshot] taken while the writer is
    active is a racy-but-memory-safe sample — at most the oldest few
    records may be mid-overwrite; quiescent snapshots (after the run)
    are exact.  This mirrors how the workload harness uses rings: hot
    recording during the window, exact decoding afterwards. *)

type kind = Alloc | Retire | Free | Enter | Leave | Trim

val kind_to_int : kind -> int
val kind_of_int : int -> kind
val kind_name : kind -> string

val n_kinds : int

type t

type event = { at : int;  (** Clock.now_ns timestamp *)
               kind : kind;
               info : int  (** kind-specific payload: tid, or lag for frees *) }

val create : capacity:int -> t
(** Ring holding the most recent [capacity] events.
    @raise Invalid_argument if [capacity <= 0]. *)

val record : t -> at:int -> kind:kind -> info:int -> unit
(** Append one event, overwriting the oldest once full.  Writer-only. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (monotonic, not capped). *)

val length : t -> int
(** Events currently held: [min total capacity]. *)

val dropped : t -> int
(** Events lost to wraparound: [total - length]. *)

val snapshot : t -> event array
(** Held events, oldest first. *)

val counts_by_kind : t -> int array
(** Histogram of held events, indexed by {!kind_to_int}. *)
