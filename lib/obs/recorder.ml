type gauge = { g_name : string; value : int Atomic.t }

type t = {
  rings : Ring.t array;
  lag : Hist.t;
  totals : int Atomic.t array; (* per Ring.kind, never wraps *)
  mutable gauges : gauge list; (* registration order, appended under lock *)
  mutable hists : (string * Hist.t) list; (* named histograms, same order *)
  lock : Mutex.t;
}

let create ?(ring_capacity = 4096) ~nthreads () =
  if nthreads <= 0 then invalid_arg "Recorder.create: nthreads <= 0";
  {
    rings = Array.init nthreads (fun _ -> Ring.create ~capacity:ring_capacity);
    lag = Hist.create ();
    totals = Array.init Ring.n_kinds (fun _ -> Atomic.make 0);
    gauges = [];
    hists = [];
    lock = Mutex.create ();
  }

let lag_hist t = t.lag
let rings t = t.rings

let events_total t kind = Atomic.get t.totals.(Ring.kind_to_int kind)

let count t kind = ignore (Atomic.fetch_and_add t.totals.(Ring.kind_to_int kind) 1)

let in_range t tid = tid >= 0 && tid < Array.length t.rings

let probe t : Probe.t =
  let record ~tid kind info =
    count t kind;
    if in_range t tid then
      Ring.record t.rings.(tid) ~at:(Clock.now_ns ()) ~kind ~info
  in
  {
    Probe.alloc = (fun ~tid -> record ~tid Ring.Alloc tid);
    retire = (fun ~tid -> record ~tid Ring.Retire tid);
    free =
      (fun ~tid ~lag_ns ->
        Hist.add t.lag lag_ns;
        record ~tid Ring.Free lag_ns);
    enter = (fun ~tid -> record ~tid Ring.Enter tid);
    leave = (fun ~tid -> record ~tid Ring.Leave tid);
    trim = (fun ~tid -> record ~tid Ring.Trim tid);
  }

let set_gauge t ~name v =
  Mutex.lock t.lock;
  (match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> Atomic.set g.value v
  | None -> t.gauges <- t.gauges @ [ { g_name = name; value = Atomic.make v } ]);
  Mutex.unlock t.lock

let gauge t ~name =
  Mutex.lock t.lock;
  let r = List.find_opt (fun g -> g.g_name = name) t.gauges in
  Mutex.unlock t.lock;
  Option.map (fun g -> Atomic.get g.value) r

let gauges t =
  Mutex.lock t.lock;
  let r = List.map (fun g -> (g.g_name, Atomic.get g.value)) t.gauges in
  Mutex.unlock t.lock;
  r

(* Named histograms: create-or-get under the lock, then the returned
   Hist is lock-free to add to (callers keep the handle on hot
   paths).  Used by the service layer for request-latency and
   batch-size distributions next to the built-in lag histogram. *)
let hist t ~name =
  Mutex.lock t.lock;
  let h =
    match List.assoc_opt name t.hists with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        t.hists <- t.hists @ [ (name, h) ];
        h
  in
  Mutex.unlock t.lock;
  h

let hists t =
  Mutex.lock t.lock;
  let r = t.hists in
  Mutex.unlock t.lock;
  r

(* Prometheus metric names admit [a-zA-Z0-9_:]; gauge names arriving
   from component gauges use [.] and [] freely. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# TYPE smr_events_total counter";
  Array.iteri
    (fun k total ->
      line "smr_events_total{kind=%S} %d"
        (Ring.kind_name (Ring.kind_of_int k))
        (Atomic.get total))
    t.totals;
  let emit_hist name h =
    let name = sanitize name in
    line "# TYPE %s histogram" name;
    let cumulative = ref 0 in
    List.iter
      (fun (_, hi, c) ->
        cumulative := !cumulative + c;
        line "%s_bucket{le=\"%d\"} %d" name hi !cumulative)
      (Hist.buckets h);
    line "%s_bucket{le=\"+Inf\"} %d" name (Hist.count h);
    line "%s_sum %d" name (Hist.sum h);
    line "%s_count %d" name (Hist.count h)
  in
  emit_hist "smr_reclamation_lag_ns" t.lag;
  List.iter (fun (name, h) -> emit_hist name h) (hists t);
  let ring_events = Array.fold_left (fun a r -> a + Ring.length r) 0 t.rings in
  let ring_dropped = Array.fold_left (fun a r -> a + Ring.dropped r) 0 t.rings in
  line "# TYPE smr_ring_events gauge";
  line "smr_ring_events %d" ring_events;
  line "# TYPE smr_ring_dropped_total counter";
  line "smr_ring_dropped_total %d" ring_dropped;
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      line "# TYPE %s gauge" name;
      line "%s %d" name v)
    (gauges t);
  Buffer.contents buf

let pp_lag ppf t = Hist.pp ppf t.lag
