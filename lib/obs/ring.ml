type kind = Alloc | Retire | Free | Enter | Leave | Trim

let kind_to_int = function
  | Alloc -> 0
  | Retire -> 1
  | Free -> 2
  | Enter -> 3
  | Leave -> 4
  | Trim -> 5

let kind_of_int = function
  | 0 -> Alloc
  | 1 -> Retire
  | 2 -> Free
  | 3 -> Enter
  | 4 -> Leave
  | 5 -> Trim
  | n -> invalid_arg (Printf.sprintf "Ring.kind_of_int: %d" n)

let kind_name = function
  | Alloc -> "alloc"
  | Retire -> "retire"
  | Free -> "free"
  | Enter -> "enter"
  | Leave -> "leave"
  | Trim -> "trim"

let n_kinds = 6

(* Fixed-size single-writer ring.  Each record is [stride] consecutive
   ints in a flat preallocated array, so recording is three plain int
   stores and a cursor bump — no allocation, no atomics.  Readers take
   racy snapshots; a snapshot concurrent with the writer may contain a
   record being overwritten, which is acceptable for an observability
   sample (documented in the interface). *)

let stride = 3 (* at, kind, info *)

type t = {
  capacity : int;
  buf : int array;
  mutable total : int; (* records ever written *)
}

type event = { at : int; kind : kind; info : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity <= 0";
  { capacity; buf = Array.make (capacity * stride) 0; total = 0 }

let record t ~at ~kind ~info =
  let base = t.total mod t.capacity * stride in
  t.buf.(base) <- at;
  t.buf.(base + 1) <- kind_to_int kind;
  t.buf.(base + 2) <- info;
  t.total <- t.total + 1

let capacity t = t.capacity
let total t = t.total
let length t = min t.total t.capacity
let dropped t = t.total - length t

let snapshot t =
  let n = length t in
  let first = t.total - n in
  Array.init n (fun i ->
      let base = (first + i) mod t.capacity * stride in
      {
        at = t.buf.(base);
        kind = kind_of_int t.buf.(base + 1);
        info = t.buf.(base + 2);
      })

let counts_by_kind t =
  let counts = Array.make n_kinds 0 in
  Array.iter
    (fun e ->
      let k = kind_to_int e.kind in
      counts.(k) <- counts.(k) + 1)
    (snapshot t);
  counts
