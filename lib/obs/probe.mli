(** Tracker instrumentation hook.

    One record of callbacks, invoked by the SMR layer at each
    reclamation lifecycle transition.  The default is {!noop}; code on
    hot paths guards with {!is_noop} (a physical-equality test) before
    doing any timestamp work, so an uninstrumented tracker — the
    [bench/] configuration — pays one pointer comparison per
    retire/free and nothing else.

    [free] carries the block's retire→free lag in nanoseconds, measured
    by the shared free funnel ({!Smr.Tracker.free_block}); [tid] on
    [free] is the domain that ran the reclamation, which for Hyaline is
    generally {e not} the domain that retired the block. *)

type t = {
  alloc : tid:int -> unit;
  retire : tid:int -> unit;
  free : tid:int -> lag_ns:int -> unit;
  enter : tid:int -> unit;
  leave : tid:int -> unit;
  trim : tid:int -> unit;
}

val noop : t
(** The do-nothing probe.  Physically unique: build instrumented
    probes with a record literal, never by mutating this one. *)

val is_noop : t -> bool
(** Physical equality with {!noop} — the zero-cost guard. *)
