type t = {
  alloc : tid:int -> unit;
  retire : tid:int -> unit;
  free : tid:int -> lag_ns:int -> unit;
  enter : tid:int -> unit;
  leave : tid:int -> unit;
  trim : tid:int -> unit;
}

let noop =
  {
    alloc = (fun ~tid:_ -> ());
    retire = (fun ~tid:_ -> ());
    free = (fun ~tid:_ ~lag_ns:_ -> ());
    enter = (fun ~tid:_ -> ());
    leave = (fun ~tid:_ -> ());
    trim = (fun ~tid:_ -> ());
  }

let is_noop p = p == noop
