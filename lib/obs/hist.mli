(** Log-scaled latency histogram.

    Reclamation lag (retire→free) spans six orders of magnitude in one
    run — from a same-operation free under Hyaline to a whole-window
    pin under a stalled EBR reader — so buckets grow geometrically:
    bucket 0 holds values in [{0, 1}], bucket [b >= 1] holds
    [[2^b, 2^(b+1))].  63 buckets cover every non-negative OCaml int.

    All mutations are atomic; any number of domains may [add]
    concurrently while others read percentiles (reads are racy
    snapshots, exact at quiescence). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample.  Negative values clamp to 0 (a lag computed
    from a stepping wall clock can be transiently negative). *)

val count : t -> int
val max_value : t -> int
(** Exact largest sample (not a bucket bound). *)

val mean : t -> float
val sum : t -> int

val percentile : t -> float -> int
(** [percentile t q] for [q] in [[0, 1]]: an upper bound on the
    q-quantile — the containing bucket's upper edge, clamped by the
    exact max — so a reported p99 never understates the true p99.
    0 when empty.  @raise Invalid_argument if [q] outside [[0, 1]]. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val bucket_of_value : int -> int
val bucket_lo : int -> int
val bucket_hi : int -> int
val n_buckets : int

val merge : into:t -> t -> unit
(** Add [src]'s counts into [into] (for cross-run aggregation). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line [n/p50/p90/p99/max] summary. *)
