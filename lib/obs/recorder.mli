(** The assembled observability surface for one instrumented run.

    A recorder owns one {!Ring} per thread id (single-writer: only
    events probed with that [tid] land in it), the retire→free lag
    {!Hist}, per-event-kind totals, and a set of named gauges the
    harness refreshes while sampling (mpool occupancy, shared-freelist
    length, Hyaline batch depth, ...).

    {!probe} adapts a recorder into the {!Probe.t} the SMR layer
    consumes; everything else is read-side: percentile queries, the
    Prometheus text exposition, CSV rows assembled by the caller. *)

type t

val create : ?ring_capacity:int -> nthreads:int -> unit -> t
(** One ring of [ring_capacity] (default 4096) events per thread id in
    [0 .. nthreads-1].  @raise Invalid_argument if [nthreads <= 0]. *)

val probe : t -> Probe.t
(** The recording probe.  Events probed with out-of-range [tid]s are
    counted (and, for frees, added to the lag histogram) but not
    written to any ring. *)

val lag_hist : t -> Hist.t
(** Retire→free lag in nanoseconds, one sample per freed block. *)

val rings : t -> Ring.t array

val events_total : t -> Ring.kind -> int
(** Events of that kind ever probed (not capped by ring capacity). *)

val set_gauge : t -> name:string -> int -> unit
(** Create-or-update a named gauge (last-write-wins). *)

val gauge : t -> name:string -> int option
val gauges : t -> (string * int) list
(** All gauges in first-registration order. *)

val hist : t -> name:string -> Hist.t
(** Create-or-get a named histogram (e.g. request latency, batch
    sizes).  The handle is stable — callers keep it and [Hist.add]
    lock-free on hot paths; only registration takes the lock. *)

val hists : t -> (string * Hist.t) list
(** All named histograms in first-registration order. *)

val prometheus : t -> string
(** Prometheus text exposition: [smr_events_total{kind=...}] counters,
    the [smr_reclamation_lag_ns] cumulative histogram, every named
    histogram, ring occupancy, and every gauge (names sanitized to the
    Prometheus charset). *)

val pp_lag : Format.formatter -> t -> unit
