(* Log2-bucketed histogram with atomic counters: bucket 0 holds values
   in {0, 1}; bucket b >= 1 holds [2^b, 2^(b+1)).  63 buckets cover
   the whole non-negative OCaml int range, so [add] never branches on
   overflow.  Multi-writer safe: every mutation is one fetch-and-add
   (plus a CAS loop for the exact max). *)

let n_buckets = 63

type t = {
  counts : int Atomic.t array;
  total : int Atomic.t;
  sum : int Atomic.t;
  max_v : int Atomic.t;
}

let create () =
  {
    counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
    max_v = Atomic.make 0;
  }

let bucket_of_value v =
  if v <= 1 then 0
  else begin
    (* floor(log2 v) by binary reduction; v fits in 62 value bits. *)
    let b = ref 0 and v = ref v in
    if !v >= 1 lsl 32 then begin b := !b + 32; v := !v lsr 32 end;
    if !v >= 1 lsl 16 then begin b := !b + 16; v := !v lsr 16 end;
    if !v >= 1 lsl 8 then begin b := !b + 8; v := !v lsr 8 end;
    if !v >= 1 lsl 4 then begin b := !b + 4; v := !v lsr 4 end;
    if !v >= 1 lsl 2 then begin b := !b + 2; v := !v lsr 2 end;
    if !v >= 1 lsl 1 then b := !b + 1;
    !b
  end

let bucket_lo b = if b = 0 then 0 else 1 lsl b
let bucket_hi b = (1 lsl (b + 1)) - 1

let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

let add t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.counts.(bucket_of_value v) 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sum v);
  store_max t.max_v v

let count t = Atomic.get t.total
let max_value t = Atomic.get t.max_v

let sum t = Atomic.get t.sum

let mean t =
  let n = Atomic.get t.total in
  if n = 0 then 0.0 else float_of_int (Atomic.get t.sum) /. float_of_int n

(* Conservative percentile: the upper bound of the bucket containing
   the rank-th smallest sample (clamped by the exact max), so a
   reported p99 is never below the true p99. *)
let percentile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.percentile: q outside [0,1]";
  let n = Atomic.get t.total in
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let rec walk b seen =
      let seen = seen + Atomic.get t.counts.(b) in
      if seen >= rank then min (bucket_hi b) (max_value t)
      else if b + 1 >= n_buckets then max_value t
      else walk (b + 1) seen
    in
    walk 0 0
  end

let buckets t =
  let rec go b acc =
    if b < 0 then acc
    else
      let c = Atomic.get t.counts.(b) in
      go (b - 1) (if c = 0 then acc else (bucket_lo b, bucket_hi b, c) :: acc)
  in
  go (n_buckets - 1) []

let merge ~into src =
  for b = 0 to n_buckets - 1 do
    let c = Atomic.get src.counts.(b) in
    if c > 0 then ignore (Atomic.fetch_and_add into.counts.(b) c)
  done;
  ignore (Atomic.fetch_and_add into.total (Atomic.get src.total));
  ignore (Atomic.fetch_and_add into.sum (Atomic.get src.sum));
  store_max into.max_v (Atomic.get src.max_v)

let clear t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum 0;
  Atomic.set t.max_v 0

let pp ppf t =
  Format.fprintf ppf "n=%d p50=%d p90=%d p99=%d max=%d" (count t)
    (percentile t 0.50) (percentile t 0.90) (percentile t 0.99) (max_value t)
