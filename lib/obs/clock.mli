(** Timestamp source for the observability layer.

    Timestamps are integer nanoseconds, so the event ring and lag
    histograms never box a float on the hot path.  The default source
    is [Unix.gettimeofday]; tests substitute a deterministic counter
    via {!set_source}. *)

val now_ns : unit -> int
(** Current time in nanoseconds from the active source. *)

val set_source : (unit -> int) option -> unit
(** [set_source (Some f)] routes {!now_ns} through [f] (deterministic
    tests); [set_source None] restores the wall clock. *)

val ns_to_us : int -> float
val ns_to_ms : int -> float
