(** The Bonsai-tree benchmark (Clements et al. [13] variant; paper §6,
    Figures 8b/9b/11b/12b).

    A persistent weight-balanced binary tree: writers path-copy from
    the root, rebalancing with size-based (Adams-style) rotations, and
    publish with a single CAS on the root pointer; every original node
    displaced by the copy is retired on success, and every
    speculatively built node is discarded on failure.  Readers
    traverse the snapshot they obtained from the root.  Each update
    retires a whole path, so this structure produces far more
    retirements per operation than the list or hash map — the paper's
    heaviest reclamation workload and the one where Hyaline's ~10%
    steady gain over EBR shows.

    As in the paper's framework, HP and HE are not run on this
    structure (per-pointer protection cannot cover a whole snapshot
    traversal through rotated subtrees); the bench harness skips them.

    Children are atomics read through the tracker so the era-based
    robust schemes (IBR, Hyaline-S) pay their per-dereference cost —
    the effect the paper cites for the robust variants' gap on this
    benchmark. *)

open Smr

(* Adams' balance parameters (as in Haskell's Data.Map). *)
let delta = 3
let ratio = 2

module Make (T : Tracker.S) : Map_intf.S = struct
  type node = {
    hdr : Hdr.t;
    pool_index : int;
    mutable key : int;
    mutable value : int;
    mutable weight : int; (* subtree node count *)
    left : node option Atomic.t;
    right : node option Atomic.t;
  }

  module Pool = Mpool.Make (struct
    type t = node

    let create ~index =
      {
        hdr = Hdr.create ();
        pool_index = index;
        key = 0;
        value = 0;
        weight = 1;
        left = Atomic.make None;
        right = Atomic.make None;
      }

    let index n = n.pool_index
    let on_alloc n = Hdr.set_live n.hdr
    let on_free _ = ()
  end)

  type t = { cfg : Config.t; tracker : T.t; pool : Pool.t; root : node option Atomic.t }

  let name = "bonsai"

  let create ?seed:_ ~cfg () =
    { cfg; tracker = T.create cfg; pool = Pool.create (); root = Atomic.make None }

  let enter t ~tid = T.enter t.tracker ~tid
  let leave t ~tid = T.leave t.tracker ~tid
  let trim t ~tid = T.trim t.tracker ~tid
  let flush t ~tid = T.flush t.tracker ~tid
  let stats t = T.stats t.tracker
  let gauges t = T.gauges t.tracker @ Pool.gauges t.pool
  let inject_alloc_failures t ~n = Pool.inject_failures t.pool ~n

  let proj = function Some n -> n.hdr | None -> Hdr.nil
  let weight = function None -> 0 | Some n -> n.weight

  (* Per-operation rebuild context: every node constructed during the
     speculative copy and every original it displaces. *)
  type ctx = { mutable created : node list; mutable replaced : node list }

  let mk t ctx ~tid key value l r =
    let n = Pool.alloc t.pool in
    n.key <- key;
    n.value <- value;
    n.weight <- 1 + weight l + weight r;
    Atomic.set n.left l;
    Atomic.set n.right r;
    n.hdr.Hdr.free_hook <- (fun () -> Pool.free t.pool n);
    T.alloc_hook t.tracker ~tid n.hdr;
    ctx.created <- n :: ctx.created;
    n

  let displace ctx n = ctx.replaced <- n :: ctx.replaced

  (* Protected child reads; the snapshot is immutable but the blocks
     are reclaimable, so every pointer chase goes through the
     tracker. *)
  let rd t ~tid cell = T.read t.tracker ~tid ~idx:0 cell proj

  (* --- persistent weight-balanced tree, Adams-style --------------- *)

  let single_left t ctx ~tid k v l r =
    (* r becomes the new root of this subtree *)
    displace ctx r;
    let rl = rd t ~tid r.left and rr = rd t ~tid r.right in
    Some (mk t ctx ~tid r.key r.value (Some (mk t ctx ~tid k v l rl)) rr)

  let double_left t ctx ~tid k v l r =
    displace ctx r;
    let rl_opt = rd t ~tid r.left in
    let rl = Option.get rl_opt in
    displace ctx rl;
    let rll = rd t ~tid rl.left and rlr = rd t ~tid rl.right in
    let rr = rd t ~tid r.right in
    Some
      (mk t ctx ~tid rl.key rl.value
         (Some (mk t ctx ~tid k v l rll))
         (Some (mk t ctx ~tid r.key r.value rlr rr)))

  let single_right t ctx ~tid k v l r =
    displace ctx l;
    let ll = rd t ~tid l.left and lr = rd t ~tid l.right in
    Some (mk t ctx ~tid l.key l.value ll (Some (mk t ctx ~tid k v lr r)))

  let double_right t ctx ~tid k v l r =
    displace ctx l;
    let lr_opt = rd t ~tid l.right in
    let lr = Option.get lr_opt in
    displace ctx lr;
    let lrl = rd t ~tid lr.left and lrr = rd t ~tid lr.right in
    let ll = rd t ~tid l.left in
    Some
      (mk t ctx ~tid lr.key lr.value
         (Some (mk t ctx ~tid l.key l.value ll lrl))
         (Some (mk t ctx ~tid k v lrr r)))

  (* Rebuild a node [key/value] over subtrees [l]/[r] whose weights may
     differ by one insertion/deletion, restoring the BB[delta]
     invariant. *)
  let balance t ctx ~tid key value l r =
    let wl = weight l and wr = weight r in
    if wl + wr <= 1 then Some (mk t ctx ~tid key value l r)
    else if wr > (delta * wl) + 1 then begin
      let rn = Option.get r in
      let rlw = weight (rd t ~tid rn.left)
      and rrw = weight (rd t ~tid rn.right) in
      if rlw < ratio * rrw then single_left t ctx ~tid key value l rn
      else double_left t ctx ~tid key value l rn
    end
    else if wl > (delta * wr) + 1 then begin
      let ln = Option.get l in
      let llw = weight (rd t ~tid ln.left)
      and lrw = weight (rd t ~tid ln.right) in
      if lrw < ratio * llw then single_right t ctx ~tid key value ln r
      else double_right t ctx ~tid key value ln r
    end
    else Some (mk t ctx ~tid key value l r)

  exception Key_present
  exception Key_absent

  (* Path-copying insert; raises Key_present without building further
     if the key exists (the caller discards what was built). *)
  let rec ins t ctx ~tid key value = function
    | None -> Some (mk t ctx ~tid key value None None)
    | Some n ->
        if key = n.key then raise Key_present
        else begin
          displace ctx n;
          if key < n.key then
            let l' = ins t ctx ~tid key value (rd t ~tid n.left) in
            balance t ctx ~tid n.key n.value l' (rd t ~tid n.right)
          else
            let r' = ins t ctx ~tid key value (rd t ~tid n.right) in
            balance t ctx ~tid n.key n.value (rd t ~tid n.left) r'
        end

  (* Extract the minimum binding of a (non-empty) subtree, returning
     (key, value, remainder).  Every node on the min path — including
     the extracted minimum itself — is displaced. *)
  let rec take_min t ctx ~tid n =
    displace ctx n;
    match rd t ~tid n.left with
    | None -> (n.key, n.value, rd t ~tid n.right)
    | Some l ->
        let mk', mv', l' = take_min t ctx ~tid l in
        (mk', mv', balance t ctx ~tid n.key n.value l' (rd t ~tid n.right))

  let rec del t ctx ~tid key = function
    | None -> raise Key_absent
    | Some n ->
        displace ctx n;
        if key < n.key then
          let l' = del t ctx ~tid key (rd t ~tid n.left) in
          balance t ctx ~tid n.key n.value l' (rd t ~tid n.right)
        else if key > n.key then
          let r' = del t ctx ~tid key (rd t ~tid n.right) in
          balance t ctx ~tid n.key n.value (rd t ~tid n.left) r'
        else
          (* n is the victim *)
          match (rd t ~tid n.left, rd t ~tid n.right) with
          | None, r -> r
          | l, None -> l
          | l, Some r ->
              let sk, sv, r' = take_min t ctx ~tid r in
              balance t ctx ~tid sk sv l r'

  (* Never-published speculative nodes go straight back to the pool. *)
  let discard_created ctx =
    List.iter
      (fun n ->
        Hdr.set_freed n.hdr;
        n.hdr.Hdr.free_hook ())
      ctx.created;
    ctx.created <- []

  (* Run one speculative update against the current root; retry on CAS
     failure.  [present] is returned when the update aborts because
     the key was (insert) or was not (delete) there. *)
  let rec update t ~tid ~f ~on_abort =
    let ctx = { created = []; replaced = [] } in
    let old_root = rd t ~tid t.root in
    match f ctx old_root with
    | exception Key_present | exception Key_absent ->
        discard_created ctx;
        on_abort
    | new_root ->
        if Atomic.compare_and_set t.root old_root new_root then begin
          List.iter (fun n -> T.retire t.tracker ~tid n.hdr) ctx.replaced;
          not on_abort
        end
        else begin
          discard_created ctx;
          update t ~tid ~f ~on_abort
        end

  let insert t ~tid k v =
    update t ~tid ~f:(fun ctx root -> ins t ctx ~tid k v root) ~on_abort:false

  let remove t ~tid k =
    update t ~tid ~f:(fun ctx root -> del t ctx ~tid k root) ~on_abort:false

  let get t ~tid k =
    let rec go = function
      | None -> None
      | Some n ->
          if k = n.key then Some n.value
          else if k < n.key then go (rd t ~tid n.left)
          else go (rd t ~tid n.right)
    in
    go (rd t ~tid t.root)

  (* put = insert-or-replace: the replace path copies the path too
     (persistent structure), rewriting the node with the new value. *)
  let put t ~tid k v =
    let rec loop () =
      let ctx = { created = []; replaced = [] } in
      let inserted = ref true in
      let rec upd root =
        match root with
        | None -> Some (mk t ctx ~tid k v None None)
        | Some n ->
            displace ctx n;
            if k = n.key then begin
              inserted := false;
              Some (mk t ctx ~tid k v (rd t ~tid n.left) (rd t ~tid n.right))
            end
            else if k < n.key then
              let l' = upd (rd t ~tid n.left) in
              balance t ctx ~tid n.key n.value l' (rd t ~tid n.right)
            else
              let r' = upd (rd t ~tid n.right) in
              balance t ctx ~tid n.key n.value (rd t ~tid n.left) r'
      in
      let old_root = rd t ~tid t.root in
      let new_root = upd old_root in
      if Atomic.compare_and_set t.root old_root new_root then begin
        List.iter (fun n -> T.retire t.tracker ~tid n.hdr) ctx.replaced;
        !inserted
      end
      else begin
        discard_created ctx;
        loop ()
      end
    in
    loop ()

  (* Live traversal (Map_intf.fold): bonsai is only ever paired with
     bracket-protection schemes (the registry rejects HP/HE on it), so
     the caller's bracket covers the whole walk; [rd] keeps the reads
     going through the tracker like every other traversal. *)
  let fold_live t ~tid f acc =
    let rec go acc = function
      | None -> acc
      | Some n ->
          let acc = go acc (rd t ~tid n.left) in
          let acc = f acc n.key n.value in
          go acc (rd t ~tid n.right)
    in
    go acc (rd t ~tid t.root)

  (* Quiescent helpers *)

  let fold t f acc =
    let rec go acc = function
      | None -> acc
      | Some n ->
          let acc = go acc (Atomic.get n.left) in
          let acc = f acc n in
          go acc (Atomic.get n.right)
    in
    go acc (Atomic.get t.root)

  let size t = fold t (fun n _ -> n + 1) 0
  let to_sorted_list t = List.rev (fold t (fun acc n -> (n.key, n.value) :: acc) [])

  let check t =
    let rec go lo hi = function
      | None -> 0
      | Some n ->
          Hdr.check_not_freed "Bonsai.check: reachable node freed" n.hdr;
          if not (lo < n.key && n.key < hi) then
            failwith "Bonsai.check: order violation";
          let wl = go lo n.key (Atomic.get n.left) in
          let wr = go n.key hi (Atomic.get n.right) in
          if n.weight <> wl + wr + 1 then
            failwith "Bonsai.check: weight corrupted";
          (* The BB invariant (with Adams' +1 slack). *)
          if wl + wr > 1 && (wl > (delta * wr) + 1 || wr > (delta * wl) + 1)
          then failwith "Bonsai.check: balance violated";
          n.weight
    in
    ignore (go min_int max_int (Atomic.get t.root))

  (* The exported Map_intf.fold is the live, bracketed one; the
     quiescent [fold] above stays internal (size/to_sorted_list). *)
  let fold = fold_live
end
