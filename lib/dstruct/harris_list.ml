(** The sorted lock-free linked list benchmark ([20, 26]; paper §6,
    Figures 8a/9a/11a/12a).  A single Harris-Michael list over the
    whole key range — long traversals, low operation rate, heavy
    pressure on the traversal-time costs of each SMR scheme. *)

module Make (T : Smr.Tracker.S) : Map_intf.S = struct
  module C = Hm_core.Make (T)

  type t = { core : C.core; head : C.link Atomic.t }

  let name = "list"

  let create ?seed:_ ~cfg () =
    { core = C.make_core cfg; head = Atomic.make { C.succ = None; marked = false } }

  let enter t ~tid = T.enter t.core.C.tracker ~tid
  let leave t ~tid = T.leave t.core.C.tracker ~tid
  let trim t ~tid = T.trim t.core.C.tracker ~tid
  let flush t ~tid = T.flush t.core.C.tracker ~tid
  let insert t ~tid k v = C.insert_in t.core ~tid ~head:t.head k v
  let remove t ~tid k = C.remove_in t.core ~tid ~head:t.head k
  let get t ~tid k = C.get_in t.core ~tid ~head:t.head k
  let put t ~tid k v = C.put_in t.core ~tid ~head:t.head k v
  let fold t ~tid f acc = C.fold_live_in t.core ~tid ~head:t.head f acc
  let stats t = T.stats t.core.C.tracker
  let gauges t = C.gauges_of t.core
  let inject_alloc_failures t ~n = C.inject_alloc_failures_in t.core ~n
  let size t = C.size_in ~head:t.head
  let to_sorted_list t = C.to_list_in ~head:t.head
  let check t = C.check_in ~head:t.head
end
