open Smr

module Make (T : Tracker.S) = struct
  type node = {
    hdr : Hdr.t;
    pool_index : int;
    mutable value : int;
    next : node option Atomic.t;
  }

  module Pool = Mpool.Make (struct
    type t = node

    let create ~index =
      {
        hdr = Hdr.create ();
        pool_index = index;
        value = 0;
        next = Atomic.make None;
      }

    let index n = n.pool_index
    let on_alloc n = Hdr.set_live n.hdr
    let on_free _ = ()
  end)

  type t = {
    cfg : Config.t;
    tracker : T.t;
    pool : Pool.t;
    head : node Atomic.t; (* current dummy *)
    tail : node Atomic.t;
  }

  let proj_opt = function Some n -> n.hdr | None -> Hdr.nil
  let proj (n : node) = n.hdr

  let alloc t ~tid value =
    let n = Pool.alloc t.pool in
    n.value <- value;
    Atomic.set n.next None;
    n.hdr.Hdr.free_hook <- (fun () -> Pool.free t.pool n);
    T.alloc_hook t.tracker ~tid n.hdr;
    n

  let create ?tracker cfg =
    let dummy =
      {
        hdr = Hdr.create ();
        pool_index = -1;
        value = 0;
        next = Atomic.make None;
      }
    in
    {
      cfg;
      tracker =
        (match tracker with Some t -> t | None -> T.create cfg);
      pool = Pool.create ();
      head = Atomic.make dummy;
      tail = Atomic.make dummy;
    }

  let tracker t = t.tracker

  let enqueue t ~tid value =
    T.enter t.tracker ~tid;
    let n = alloc t ~tid value in
    let rec loop () =
      let tail = T.read t.tracker ~tid ~idx:0 t.tail proj in
      match T.read t.tracker ~tid ~idx:1 tail.next proj_opt with
      | Some next ->
          (* Lagging tail: help it forward and retry. *)
          ignore (Atomic.compare_and_set t.tail tail next);
          loop ()
      | None as nil ->
          if Atomic.compare_and_set tail.next nil (Some n) then
            ignore (Atomic.compare_and_set t.tail tail n)
          else loop ()
    in
    loop ();
    T.leave t.tracker ~tid

  let dequeue t ~tid =
    T.enter t.tracker ~tid;
    let rec loop () =
      let head = T.read t.tracker ~tid ~idx:0 t.head proj in
      let tail = Atomic.get t.tail in
      match T.read t.tracker ~tid ~idx:1 head.next proj_opt with
      | None -> None
      | Some next ->
          if head == tail then begin
            (* Tail lags behind a non-empty queue: help. *)
            ignore (Atomic.compare_and_set t.tail tail next);
            loop ()
          end
          else if Atomic.compare_and_set t.head head next then begin
            (* [next] is protected (idx 1), so reading its value after
               winning the head CAS is safe even though another
               dequeuer may immediately retire it as the new dummy —
               the situation SMR exists for. *)
            let v = next.value in
            (* The initial static dummy has the default no-op free
               hook, so the uniform retire path covers it too. *)
            T.retire t.tracker ~tid head.hdr;
            Some v
          end
          else loop ()
    in
    let r = loop () in
    T.leave t.tracker ~tid;
    r

  let length t =
    let rec go acc n =
      match Atomic.get n.next with None -> acc | Some nx -> go (acc + 1) nx
    in
    go 0 (Atomic.get t.head)

  let flush t ~tid = T.flush t.tracker ~tid
  let stats t = T.stats t.tracker
end
