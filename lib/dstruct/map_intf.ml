(** The common interface of the four benchmark data structures.

    All four structures of the paper's evaluation (§6: Harris-Michael
    sorted linked list, Michael's lock-free hash map, the Bonsai-tree
    variant, and the Natarajan-Mittal BST) implement integer-keyed
    maps behind this signature, functorized over the SMR scheme, so
    every (structure x scheme) pair of the figures is one functor
    application.

    Bracketing is the caller's job, exactly as in the paper's
    programming model (Figure 1a): wrap each operation in
    {!S.enter}/{!S.leave} — or chain operations with {!S.trim} for the
    Figure 10b experiment.  Operations must not be invoked outside a
    bracket. *)

module type S = sig
  type t

  val name : string

  val create : ?seed:int -> cfg:Smr.Config.t -> unit -> t
  (** Fresh empty map with its own tracker instance and node pool.
      [seed] parameterizes any internal randomization. *)

  (** {2 Bracketing} *)

  val enter : t -> tid:int -> unit
  val leave : t -> tid:int -> unit
  val trim : t -> tid:int -> unit
  val flush : t -> tid:int -> unit

  (** {2 Operations (inside a bracket)} *)

  val insert : t -> tid:int -> int -> int -> bool
  (** [insert t ~tid k v] adds the binding; [false] if [k] present. *)

  val remove : t -> tid:int -> int -> bool
  (** [remove t ~tid k] deletes [k]'s binding; [false] if absent. *)

  val get : t -> tid:int -> int -> int option

  val put : t -> tid:int -> int -> int -> bool
  (** Insert-or-update; [true] if a new binding was created. *)

  val fold : t -> tid:int -> ('a -> int -> int -> 'a) -> 'a -> 'a
  (** [fold t ~tid f acc] folds [f acc key value] over the {e live}
      map, inside the caller's bracket, while other threads keep
      operating — the long-running-reader traversal behind the
      replication snapshot.  The result is a {e fuzzy} snapshot:
      concurrent mutations may or may not be reflected (each visited
      binding was live at its visit), so consumers must reconcile via
      an idempotent replay (see lib/replica).  List-shaped structures
      (list, hashmap) protect hand-over-hand through the same rotating
      read slots as their searches, safe under every scheme; tree
      folds keep only a bounded window of the descent protected, so
      under the slot-protected schemes (HP/HE) they are safe only
      quiescently — bracket-protection schemes (EBR, IBR, the Hyaline
      family) cover the whole traversal by the bracket itself. *)

  (** {2 Observation} *)

  val stats : t -> Smr.Stats.t
  (** The underlying tracker's reclamation counters. *)

  val gauges : t -> (string * int) list
  (** Instantaneous occupancy gauges: the tracker's scheme-internal
      figures ({!Smr.Tracker.S.gauges}) followed by the node pool's
      ([mpool_live], [mpool_shared_free], [mpool_created]).  Racy
      point samples, safe to poll concurrently. *)

  val inject_alloc_failures : t -> n:int -> unit
  (** Chaos hook: arm the node pool so its next [n] allocations raise
      [Mpool.Injected_oom] (see {!Mpool.Make.inject_failures}).  An
      affected operation fails {e before} mutating the structure —
      every implementation allocates ahead of its first published
      write — so an injected failure is always a clean rejection. *)

  val size : t -> int
  (** Number of bindings.  Quiescent use only. *)

  val to_sorted_list : t -> (int * int) list
  (** All bindings in key order.  Quiescent use only. *)

  val check : t -> unit
  (** Validate structural invariants (ordering, balance/marks, no
      freed node reachable).  Quiescent use only; raises
      [Failure]/[Hdr.Lifecycle] on violation. *)
end

(** Builder: structure module from a scheme module. *)
module type MAKER = functor (T : Smr.Tracker.S) -> S
