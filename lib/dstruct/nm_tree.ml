(** Natarajan & Mittal's lock-free external binary search tree
    ([29]; paper §6, Figures 8d/9d/11d/12d).

    An external BST: internal nodes route, leaves carry the bindings.
    Deletion is edge-based: the deleter {e flags} the edge from the
    parent to the victim leaf, {e tags} the parent's other (survivor)
    edge to freeze it, and swings the edge from the ancestor (the
    nearest node above reached through an untagged edge) directly to
    the survivor, excising the whole chain of pending-delete parents
    in one CAS.  Both marks travel with the child pointer in a single
    atomic word — modelled as CAS on an immutable [edge] record.

    Whoever wins the excising CAS retires the entire detached chain:
    the internal nodes and their flagged leaves.  Deleters whose leaf
    disappeared under them (someone else's excision covered it) return
    without retiring, so each block is retired exactly once. *)

open Smr

let inf0 = max_int - 2
let inf1 = max_int - 1
let inf2 = max_int

module Make (T : Tracker.S) : Map_intf.S = struct
  type node = {
    hdr : Hdr.t;
    pool_index : int;
    mutable key : int;
    mutable value : int;
    mutable is_leaf : bool;
    left : edge Atomic.t;
    right : edge Atomic.t;
  }

  and edge = { child : node option; flagged : bool; tagged : bool }

  let clean_edge child = { child = Some child; flagged = false; tagged = false }

  module Pool = Mpool.Make (struct
    type t = node

    let create ~index =
      {
        hdr = Hdr.create ();
        pool_index = index;
        key = 0;
        value = 0;
        is_leaf = true;
        left = Atomic.make { child = None; flagged = false; tagged = false };
        right = Atomic.make { child = None; flagged = false; tagged = false };
      }

    let index n = n.pool_index
    let on_alloc n = Hdr.set_live n.hdr
    let on_free _ = ()
  end)

  type t = {
    cfg : Config.t;
    tracker : T.t;
    pool : Pool.t;
    r : node; (* sentinel root, key inf2 *)
    s : node; (* sentinel child, key inf1 *)
  }

  let name = "nmtree"

  let mk_static key is_leaf =
    {
      hdr = Hdr.create ();
      pool_index = -1;
      key;
      value = 0;
      is_leaf;
      left = Atomic.make { child = None; flagged = false; tagged = false };
      right = Atomic.make { child = None; flagged = false; tagged = false };
    }

  let create ?seed:_ ~cfg () =
    let r = mk_static inf2 false in
    let s = mk_static inf1 false in
    Atomic.set r.left (clean_edge s);
    Atomic.set r.right (clean_edge (mk_static inf2 true));
    Atomic.set s.left (clean_edge (mk_static inf0 true));
    Atomic.set s.right (clean_edge (mk_static inf1 true));
    { cfg; tracker = T.create cfg; pool = Pool.create (); r; s }

  let enter t ~tid = T.enter t.tracker ~tid
  let leave t ~tid = T.leave t.tracker ~tid
  let trim t ~tid = T.trim t.tracker ~tid
  let flush t ~tid = T.flush t.tracker ~tid
  let stats t = T.stats t.tracker
  let gauges t = T.gauges t.tracker @ Pool.gauges t.pool
  let inject_alloc_failures t ~n = Pool.inject_failures t.pool ~n

  let proj (e : edge) =
    match e.child with Some n -> n.hdr | None -> Hdr.nil

  let alloc t ~tid ~is_leaf key value =
    let n = Pool.alloc t.pool in
    n.key <- key;
    n.value <- value;
    n.is_leaf <- is_leaf;
    n.hdr.Hdr.free_hook <- (fun () -> Pool.free t.pool n);
    T.alloc_hook t.tracker ~tid n.hdr;
    n

  let discard n =
    Hdr.set_freed n.hdr;
    n.hdr.Hdr.free_hook ()

  (* The child cell of [n] on the side of [key]. *)
  let child_cell n key = if key < n.key then n.left else n.right

  type seek_record = {
    ancestor : node;
    successor_addr : edge Atomic.t; (* ancestor's edge cell toward key *)
    successor_witness : edge; (* its value: {child = successor; clean} *)
    parent : node;
    leaf_addr : edge Atomic.t; (* parent's edge cell toward key *)
    leaf_witness : edge; (* its value: edge to the leaf *)
    leaf : node;
  }

  (* Protection slots: the seek record's nodes can sit arbitrarily far
     above the descent frontier (the ancestor stays put while tagged
     chains are skipped below it), so each record role owns a
     dedicated slot and protections are *transferred* as roles shift —
     a rolling window of recent reads would lose them, which for HP/HE
     means a freed-and-recycled parent and a corrupted tree (the soak
     validator caught exactly that). *)
  let slot_ancestor = 0

  and slot_successor = 1

  and slot_parent = 2

  and slot_current = 3

  and slot_scratch = 4

  and slot_target = 5

  (* Descend from the sentinels, remembering the last edge traversed
     that carried no tag: its endpoints become (ancestor, successor).
     Everything below a tagged edge is part of a pending excision. *)
  exception Restart_seek

  let seek t ~tid key =
    let tr = t.tracker in
    let read idx cell = T.read tr ~tid ~idx cell proj in
    let rec go ~ancestor ~successor_addr ~successor_witness ~parent
        ~leaf_addr ~leaf_witness current =
      if current.is_leaf then
        {
          ancestor;
          successor_addr;
          successor_witness;
          parent;
          leaf_addr;
          leaf_witness;
          leaf = current;
        }
      else begin
        (* Update the record roles FIRST: if the edge into [current]
           is untagged, it — not the previous level's edge — is the
           last untagged edge of the path, and it is the one the
           frozen-edge revalidation below must check.  (Validating the
           pre-update ancestor edge leaves a one-level blind spot: an
           excision can swing the edge into [current] while the older
           edge above stays untouched, and the descent walks into
           freed, recycled territory — found the hard way by the soak
           validator.) *)
        let ancestor, successor_addr, successor_witness =
          if not leaf_witness.tagged then begin
            T.transfer tr ~tid ~from_idx:slot_parent ~to_idx:slot_ancestor;
            T.transfer tr ~tid ~from_idx:slot_current ~to_idx:slot_successor;
            (parent, leaf_addr, leaf_witness)
          end
          else (ancestor, successor_addr, successor_witness)
        in
        (* The next node is protected in the scratch slot while the
           record roles catch up. *)
        let cell = child_cell current key in
        let e = read slot_scratch cell in
        (* A frozen (flagged/tagged) cell never changes again, so the
           protected-read validation is vacuous and its target may
           already be excised, retired and recycled.  The excision
           that could have detached it must have swung the last
           untagged edge of this very path — the (just-updated)
           witnessed ancestor edge — so revalidating that edge proves
           the region is still attached; otherwise start over.  (Clean
           cells don't need this: detaching their target changes the
           cell itself.) *)
        if
          (e.flagged || e.tagged)
          && Atomic.get successor_addr != successor_witness
        then raise Restart_seek;
        T.transfer tr ~tid ~from_idx:slot_current ~to_idx:slot_parent;
        T.transfer tr ~tid ~from_idx:slot_scratch ~to_idx:slot_current;
        match e.child with
        | Some next ->
            go ~ancestor ~successor_addr ~successor_witness ~parent:current
              ~leaf_addr:cell ~leaf_witness:e next
        | None -> failwith "Nm_tree.seek: broken edge"
      end
    in
    (* The sentinels R and S are static (never retired), so the junk
       initially occupying their role slots is harmless. *)
    let rec attempt () =
      let e_rs = read slot_successor t.r.left in
      let cell = child_cell t.s key in
      let e_sl = read slot_current cell in
      match e_sl.child with
      | Some first -> (
          try
            go ~ancestor:t.r ~successor_addr:t.r.left ~successor_witness:e_rs
              ~parent:t.s ~leaf_addr:cell ~leaf_witness:e_sl first
          with Restart_seek -> attempt ())
      | None -> failwith "Nm_tree.seek: broken sentinel"
    in
    attempt ()

  (* Retire the chain excised by a successful ancestor CAS: internals
     from [successor] down to [parent] (following tagged survivor
     edges), each one's flagged leaf, and the target leaf; the
     [survivor] subtree lives on. *)
  let retire_chain t ~tid ~successor ~survivor =
    let retire n = T.retire t.tracker ~tid n.hdr in
    let rec go n =
      if n.is_leaf then retire n
      else begin
        retire n;
        let l = Atomic.get n.left and r = Atomic.get n.right in
        if not ((l.flagged || l.tagged) && (r.flagged || r.tagged)) then
          failwith
            (Printf.sprintf
               "retire_chain: unfrozen internal key=%d idx=%d l=(%b,%b) r=(%b,%b)"
               n.key n.pool_index l.flagged l.tagged r.flagged r.tagged);
        let visit (e : edge) =
          match e.child with
          | Some c when c != survivor -> go c
          | _ -> ()
        in
        visit l;
        visit r
      end
    in
    go successor

  (* Excise the chain above the flagged leaf reachable through
     [s]: tag the survivor edge of [s.parent], then swing the
     ancestor edge.  Returns true iff this caller's CAS did the
     excision. *)
  let cleanup t ~tid key (s : seek_record) =
    let parent = s.parent in
    let child_addr, sibling_addr =
      if key < parent.key then (parent.left, parent.right)
      else (parent.right, parent.left)
    in
    let child_val = Atomic.get child_addr in
    (* If the edge toward our key is not the flagged one, we are
       helping a deletion of the sibling leaf: the survivor is on our
       side. *)
    let sibling_addr = if child_val.flagged then sibling_addr else child_addr in
    (* Freeze the survivor edge (set its tag, preserving child+flag). *)
    let rec tag () =
      let e = Atomic.get sibling_addr in
      if e.tagged then e
      else if Atomic.compare_and_set sibling_addr e { e with tagged = true }
      then { e with tagged = true }
      else tag ()
    in
    let sib = tag () in
    let survivor = Option.get sib.child in
    if
      Atomic.compare_and_set s.successor_addr s.successor_witness
        { child = Some survivor; flagged = sib.flagged; tagged = false }
    then begin
      (match s.successor_witness.child with
      | Some successor -> retire_chain t ~tid ~successor ~survivor
      | None -> ());
      true
    end
    else false

  let get t ~tid key =
    (* Alternate two slots so the node whose edge cell we are about to
       read is still protected by the previous read. *)
    let rec go d n =
      if n.is_leaf then if n.key = key then Some n.value else None
      else
        let e = T.read t.tracker ~tid ~idx:(d land 1) (child_cell n key) proj in
        match e.child with
        | Some c -> go (d + 1) c
        | None -> None
    in
    go 0 t.s

  let insert_leafpair t ~tid key value existing =
    (* New internal routing node over {existing leaf, new leaf}. *)
    let nl = alloc t ~tid ~is_leaf:true key value in
    let ni =
      alloc t ~tid ~is_leaf:false (max key existing.key) 0
    in
    if key < existing.key then begin
      Atomic.set ni.left (clean_edge nl);
      Atomic.set ni.right (clean_edge existing)
    end
    else begin
      Atomic.set ni.left (clean_edge existing);
      Atomic.set ni.right (clean_edge nl)
    end;
    (nl, ni)

  let rec insert t ~tid key value =
    let s = seek t ~tid key in
    if s.leaf.key = key then false
    else if s.leaf_witness.flagged || s.leaf_witness.tagged then begin
      (* Help the pending excision, then retry. *)
      ignore (cleanup t ~tid key s);
      insert t ~tid key value
    end
    else begin
      let nl, ni = insert_leafpair t ~tid key value s.leaf in
      if Atomic.compare_and_set s.leaf_addr s.leaf_witness (clean_edge ni)
      then true
      else begin
        discard nl;
        discard ni;
        insert t ~tid key value
      end
    end

  let remove t ~tid key =
    (* Injection phase: flag the edge to the victim leaf. *)
    let rec inject () =
      let s = seek t ~tid key in
      if s.leaf.key <> key then false
      else if s.leaf_witness.flagged || s.leaf_witness.tagged then begin
        ignore (cleanup t ~tid key s);
        inject ()
      end
      else if
        Atomic.compare_and_set s.leaf_addr s.leaf_witness
          { s.leaf_witness with flagged = true }
      then begin
        (* Cleanup phase: we own the deletion; press until the leaf is
           out of the tree (by our CAS or someone's help).  The target
           must stay protected across the re-seeks of the press loop:
           if it were recycled and re-served as a fresh leaf for the
           same key, the [s.leaf != target] test would be fooled into
           running cleanup against a clean live edge (an ABA the
           per-pointer schemes are exposed to; the soak validator
           caught it). *)
        T.transfer t.tracker ~tid ~from_idx:slot_current
          ~to_idx:slot_target;
        let target = s.leaf in
        if cleanup t ~tid key s then true else press target
      end
      else inject ()
    and press target =
      let s = seek t ~tid key in
      if s.leaf != target then true (* a helper excised (and retired) it *)
      else if cleanup t ~tid key s then true
      else press target
    in
    inject ()

  (* put updates the leaf value in place when the key exists (the
     leaf is protected by the bracket/seek, and a single word write
     linearizes at the write; see Hm_core.put_in for why a
     node-replacing put is not linearizable in general). *)
  let put t ~tid key value =
    let rec loop () =
      let s = seek t ~tid key in
      if s.leaf.key = key then begin
        s.leaf.value <- value;
        false
      end
      else if s.leaf_witness.flagged || s.leaf_witness.tagged then begin
        ignore (cleanup t ~tid key s);
        loop ()
      end
      else begin
        let nl, ni = insert_leafpair t ~tid key value s.leaf in
        if Atomic.compare_and_set s.leaf_addr s.leaf_witness (clean_edge ni)
        then true
        else begin
          discard nl;
          discard ni;
          loop ()
        end
      end
    in
    loop ()

  (* Quiescent helpers: walk everything under S's left edge, skipping
     the sentinels. *)

  let fold t f acc =
    let rec go acc n =
      if n.is_leaf then if n.key >= inf0 then acc else f acc n
      else
        let gol =
          match (Atomic.get n.left).child with
          | Some c -> go acc c
          | None -> acc
        in
        match (Atomic.get n.right).child with
        | Some c -> go gol c
        | None -> gol
    in
    go acc t.s

  let size t = fold t (fun n _ -> n + 1) 0

  let to_sorted_list t =
    List.rev (fold t (fun acc n -> (n.key, n.value) :: acc) [])

  let check t =
    let rec go lo hi n =
      Hdr.check_not_freed "Nm_tree.check: reachable node freed" n.hdr;
      if not (lo <= n.key && n.key <= hi) then
        failwith
          (Printf.sprintf
             "Nm_tree.check: order violation: key=%d leaf=%b idx=%d not in [%d,%d]"
             n.key n.is_leaf n.pool_index lo hi);
      if not n.is_leaf then begin
        let l = Atomic.get n.left and r = Atomic.get n.right in
        if l.flagged || l.tagged || r.flagged || r.tagged then
          failwith "Nm_tree.check: dangling flag/tag at quiescence";
        (match l.child with
        | Some c -> go lo (n.key - 1) c
        | None -> failwith "Nm_tree.check: missing left child");
        match r.child with
        | Some c -> go n.key hi c
        | None -> failwith "Nm_tree.check: missing right child"
      end
    in
    go min_int max_int t.s

  (* Live traversal (Map_intf.fold): in-order walk under S's left
     edge with every edge read going through rotating protected
     slots.  Only a bounded window of the descent is slot-covered, so
     under HP/HE this is quiescent-only (Map_intf caveat); the
     bracket-protection schemes cover the whole walk via the caller's
     bracket. *)
  let fold t ~tid f acc =
    let d = ref 0 in
    let rd cell =
      let e = T.read t.tracker ~tid ~idx:(!d mod 3) cell proj in
      incr d;
      e
    in
    let rec go acc n =
      if n.is_leaf then if n.key >= inf0 then acc else f acc n.key n.value
      else
        let gol =
          match (rd n.left).child with Some c -> go acc c | None -> acc
        in
        match (rd n.right).child with Some c -> go gol c | None -> gol
    in
    go acc t.s
end
