(** Michael-Scott lock-free FIFO queue over the SMR framework.

    Not part of the paper's figure suite, but the canonical
    reclamation client (it is the motivating structure of Michael's
    hazard-pointer paper): every dequeue retires the outgoing dummy
    node whose value a concurrent dequeuer may still be reading —
    useless without SMR, a one-liner with it.  Included as an extra
    demonstration client and test subject. *)

module Make (T : Smr.Tracker.S) : sig
  type t
  (** An int queue (nodes come from a recycling pool). *)

  val create : ?tracker:T.t -> Smr.Config.t -> t
  (** [?tracker] substitutes a caller-owned tracker for the private
      one, so several queues can share one reclamation domain — a
      reservation held while operating on any of them then pins
      retired dummies of all of them (how the service layer's shard
      mailboxes dogfood robustness: one stalled shard consumer
      stresses the whole control plane's scheme). *)

  val tracker : t -> T.t
  (** The tracker protecting this queue (shared or private). *)

  val enqueue : t -> tid:int -> int -> unit
  (** Self-bracketing (performs its own [enter]/[leave]). *)

  val dequeue : t -> tid:int -> int option
  (** Self-bracketing; retires the outgoing dummy node. *)

  val length : t -> int
  (** Quiescent use only. *)

  val flush : t -> tid:int -> unit
  val stats : t -> Smr.Stats.t
end
