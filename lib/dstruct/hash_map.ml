(** Michael's lock-free hash map ([26]; paper §6, Figures 8c/9c/
    11c/12c): a fixed array of bucket heads, each bucket a
    Harris-Michael list.  Operations are very short, which is what
    makes this benchmark the paper's main reclamation stress — and the
    centrepiece of the oversubscription and robustness experiments
    (Figure 10). *)

let default_buckets = 8192

module Make (T : Smr.Tracker.S) : Map_intf.S = struct
  module C = Hm_core.Make (T)

  type t = { core : C.core; buckets : C.link Atomic.t array; mask : int }

  let name = "hashmap"

  let create ?seed:_ ~cfg () =
    let n = default_buckets in
    {
      core = C.make_core cfg;
      buckets = Array.init n (fun _ -> Atomic.make { C.succ = None; marked = false });
      mask = n - 1;
    }

  (* Fibonacci hashing: benchmark keys are small dense ints, so a
     multiplicative mix spreads them across buckets. *)
  let bucket t k =
    t.buckets.((k * 0x2545F4914F6CDD1D) lsr 40 land t.mask)

  let enter t ~tid = T.enter t.core.C.tracker ~tid
  let leave t ~tid = T.leave t.core.C.tracker ~tid
  let trim t ~tid = T.trim t.core.C.tracker ~tid
  let flush t ~tid = T.flush t.core.C.tracker ~tid
  let insert t ~tid k v = C.insert_in t.core ~tid ~head:(bucket t k) k v
  let remove t ~tid k = C.remove_in t.core ~tid ~head:(bucket t k) k
  let get t ~tid k = C.get_in t.core ~tid ~head:(bucket t k) k
  let put t ~tid k v = C.put_in t.core ~tid ~head:(bucket t k) k v
  let fold t ~tid f acc =
    Array.fold_left
      (fun acc head -> C.fold_live_in t.core ~tid ~head f acc)
      acc t.buckets

  let stats t = T.stats t.core.C.tracker
  let gauges t = C.gauges_of t.core
  let inject_alloc_failures t ~n = C.inject_alloc_failures_in t.core ~n

  let size t =
    Array.fold_left (fun acc head -> acc + C.size_in ~head) 0 t.buckets

  let to_sorted_list t =
    Array.fold_left (fun acc head -> List.rev_append (C.to_list_in ~head) acc)
      [] t.buckets
    |> List.sort compare

  let check t = Array.iter (fun head -> C.check_in ~head) t.buckets
end
