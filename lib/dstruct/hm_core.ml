(** Shared machinery of the sorted lock-free linked list (Harris's
    algorithm with Michael's modification that unlinks and retires
    deleted nodes timely — the variant usable by every SMR scheme,
    robust ones included) and of Michael's hash map, whose buckets are
    exactly these lists.

    A node [x] is {e logically deleted} iff the link stored in
    [x.next] carries the mark bit; the mark travels with the successor
    pointer in one atomic word — modelled as a CAS on an immutable
    [link] record.  Traversals unlink (and retire) every marked node
    they pass, so deleted nodes are reclaimed promptly no matter which
    operation encounters them first. *)

open Smr

module Make (T : Tracker.S) = struct
  type node = {
    hdr : Hdr.t;
    pool_index : int;
    mutable key : int;
    mutable value : int;
    next : link Atomic.t;
  }

  and link = { succ : node option; marked : bool }

  module Pool = Mpool.Make (struct
    type t = node

    let create ~index =
      {
        hdr = Hdr.create ();
        pool_index = index;
        key = 0;
        value = 0;
        next = Atomic.make { succ = None; marked = false };
      }

    let index n = n.pool_index
    let on_alloc n = Hdr.set_live n.hdr
    let on_free _ = ()
  end)

  type core = { cfg : Config.t; tracker : T.t; pool : Pool.t }

  let make_core cfg = { cfg; tracker = T.create cfg; pool = Pool.create () }
  let gauges_of core = T.gauges core.tracker @ Pool.gauges core.pool
  let inject_alloc_failures_in core ~n = Pool.inject_failures core.pool ~n

  let proj (l : link) =
    match l.succ with Some n -> n.hdr | None -> Hdr.nil

  let alloc core ~tid key value =
    let n = Pool.alloc core.pool in
    n.key <- key;
    n.value <- value;
    n.hdr.Hdr.free_hook <- (fun () -> Pool.free core.pool n);
    T.alloc_hook core.tracker ~tid n.hdr;
    n

  (* Free a node that was never published (lost insertion race). *)
  let discard n =
    Hdr.set_freed n.hdr;
    n.hdr.Hdr.free_hook ()

  (* Michael's find: returns the predecessor link cell, the exact
     validated value read from it (needed as the CAS witness), and the
     first node with key >= [key] (None = end of list).  Unlinks and
     retires every marked node encountered; restarts from [head] when
     a CAS witness goes stale. *)
  let search core ~tid ~(head : link Atomic.t) key =
    let tracker = core.tracker in
    let rec restart () =
      let d = ref 0 in
      let read_link cell =
        let l = T.read tracker ~tid ~idx:(!d mod 3) cell proj in
        incr d;
        l
      in
      let rec advance (prev : link Atomic.t) (prev_link : link) =
        match prev_link.succ with
        | None -> (prev, prev_link, None)
        | Some c ->
            let c_link = read_link c.next in
            if c_link.marked then
              (* c is logically deleted: unlink it here.  The witness
                 box [prev_link] is unmarked, so the CAS also fails if
                 the predecessor itself got deleted meanwhile. *)
              let repaired = { succ = c_link.succ; marked = false } in
              if Atomic.compare_and_set prev prev_link repaired then begin
                T.retire tracker ~tid c.hdr;
                advance prev repaired
              end
              else restart ()
            else if c.key >= key then (prev, prev_link, Some c)
            else advance c.next c_link
      in
      advance head (read_link head)
    in
    restart ()

  let get_in core ~tid ~head key =
    match search core ~tid ~head key with
    | _, _, Some c when c.key = key -> Some c.value
    | _ -> None

  let insert_in core ~tid ~head key value =
    let fresh = alloc core ~tid key value in
    let rec loop () =
      let prev, prev_link, curr = search core ~tid ~head key in
      match curr with
      | Some c when c.key = key ->
          discard fresh;
          false
      | _ ->
          Atomic.set fresh.next { succ = curr; marked = false };
          if
            Atomic.compare_and_set prev prev_link
              { succ = Some fresh; marked = false }
          then true
          else loop ()
    in
    loop ()

  let remove_in core ~tid ~head key =
    let rec loop () =
      let prev, prev_link, curr = search core ~tid ~head key in
      match curr with
      | Some c when c.key = key -> (
          let c_link = Atomic.get c.next in
          if c_link.marked then loop () (* someone else is deleting c *)
          else if
            Atomic.compare_and_set c.next c_link
              { c_link with marked = true }
          then begin
            (* Logical deletion done; try to unlink physically.  On
               failure a later traversal performs the unlink (and the
               retire) — exactly one unlinker exists because only one
               CAS can ever swing the unique predecessor past c. *)
            if
              Atomic.compare_and_set prev prev_link
                { succ = c_link.succ; marked = false }
            then T.retire core.tracker ~tid c.hdr
            else ignore (search core ~tid ~head key);
            true
          end
          else loop ())
      | _ -> false
    in
    loop ()

  (* put updates the value in place when the key exists.  (A
     node-replacing variant — mark the old node, swing the predecessor
     to a fresh one — was tried and rejected: if the swing CAS fails
     after the mark, the operation has already published a deletion
     and must re-insert, making one put two observable mutations.  The
     linearizability tests caught exactly that.  A single word write
     on the still-protected node is atomic and linearizes at the
     write.) *)
  let put_in core ~tid ~head key value =
    let rec loop () =
      let prev, prev_link, curr = search core ~tid ~head key in
      match curr with
      | Some c when c.key = key ->
          c.value <- value;
          false
      | _ ->
          let fresh = alloc core ~tid key value in
          Atomic.set fresh.next { succ = curr; marked = false };
          if
            Atomic.compare_and_set prev prev_link
              { succ = Some fresh; marked = false }
          then true
          else begin
            discard fresh;
            loop ()
          end
    in
    loop ()

  (* Live traversal for the snapshot path: the same hand-over-hand
     rotating-slot protection as [search] (prev/curr/next always
     covered, so this is safe under every scheme, HP/HE included),
     but strictly read-only — marked nodes are skipped, never
     unlinked, so a snapshot reader on another tid cannot race the
     single-mutator discipline of the serving consumer. *)
  let fold_live_in core ~tid ~head f acc =
    let tracker = core.tracker in
    let d = ref 0 in
    let read_link cell =
      let l = T.read tracker ~tid ~idx:(!d mod 3) cell proj in
      incr d;
      l
    in
    let rec go acc (l : link) =
      match l.succ with
      | None -> acc
      | Some c ->
          let c_link = read_link c.next in
          let acc = if c_link.marked then acc else f acc c.key c.value in
          go acc c_link
    in
    go acc (read_link head)

  (* Quiescent helpers. *)

  let fold_in ~head f acc =
    let rec go acc = function
      | None -> acc
      | Some c ->
          let l = Atomic.get c.next in
          let acc = if l.marked then acc else f acc c in
          go acc l.succ
    in
    go acc (Atomic.get head).succ

  let to_list_in ~head =
    List.rev (fold_in ~head (fun acc c -> (c.key, c.value) :: acc) [])

  let size_in ~head = fold_in ~head (fun n _ -> n + 1) 0

  let check_in ~head =
    let rec go prev_key = function
      | None -> ()
      | Some c ->
          Hdr.check_not_freed "Hm_core.check: reachable node freed" c.hdr;
          if c.key <= prev_key then
            failwith
              (Printf.sprintf "Hm_core.check: order violation %d <= %d" c.key
                 prev_key);
          go c.key (Atomic.get c.next).succ
    in
    go min_int (Atomic.get head).succ
end
