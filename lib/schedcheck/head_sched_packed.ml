module Packed = Hyaline_core.Head.Packed

type t = int Sched.Shared.t
type snap = int

let backend = "packed"
let make () = Sched.Shared.make 0
let read = Sched.Shared.get
(* Mirror of Head.Packed.enter_faa's debug guard: an href overflow
   must fail loudly under the scheduler, not decode a wrong uid. *)
let enter_faa t =
  let s = Sched.Shared.fetch_and_add t Packed.unit_href in
  assert (s lsr Packed.index_bits < Packed.max_href);
  s

let cas_ref t ~expected href =
  Sched.Shared.compare_and_set t expected (Packed.with_href expected href)

let cas_ptr t ~expected h =
  Sched.Shared.compare_and_set t expected (Packed.with_hptr expected h)

let href = Packed.href
let hptr = Packed.hptr
