module Packed = Hyaline_core.Head.Packed

type t = int Sched.Shared.t
type snap = int

let backend = "packed"
let make () = Sched.Shared.make 0
let read = Sched.Shared.get
let enter_faa t = Sched.Shared.fetch_and_add t Packed.unit_href

let cas_ref t ~expected href =
  Sched.Shared.compare_and_set t expected (Packed.with_href expected href)

let cas_ptr t ~expected h =
  Sched.Shared.compare_and_set t expected (Packed.with_hptr expected h)

let href = Packed.href
let hptr = Packed.hptr
