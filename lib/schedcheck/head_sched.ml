module Snap = Hyaline_core.Snap

type t = Snap.t Sched.Shared.t
type snap = Snap.t

let backend = "sched"
let make () = Sched.Shared.make Snap.zero
let read = Sched.Shared.get

let rec enter_faa t =
  let old = Sched.Shared.get t in
  if
    Sched.Shared.compare_and_set t old
      { old with Snap.href = old.Snap.href + 1 }
  then old
  else enter_faa t

let cas_ref t ~expected href =
  Sched.Shared.compare_and_set t expected { expected with Snap.href }

let cas_ptr t ~expected hptr =
  Sched.Shared.compare_and_set t expected { expected with Snap.hptr }

let href (s : Snap.t) = s.Snap.href
let hptr (s : Snap.t) = s.Snap.hptr
