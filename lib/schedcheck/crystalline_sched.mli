(** Crystalline reservation words over {!Sched.Shared} cells: plug
    into [Hyaline_core.Crystalline.Make] to model-check the real
    tracker under the deterministic explorer. *)

module Boxed : Hyaline_core.Crystalline.WORD
(** Immutable pair in a shared cell, physical-equality CAS. *)

module Packed : Hyaline_core.Crystalline.WORD
(** The packed-int word ([Head.Packed] layout) — exercises the
    value-CAS/tombstone surface. *)
