(** {!Head_sched}'s sibling for the packed single-word backend: the
    {e same} immediate-int encoding as [Hyaline_core.Head.Packed]
    (its [with_href]/[with_hptr]/[unit_href] word arithmetic and its
    [Hdr.of_uid] decode are reused verbatim), but the word lives in a
    {!Sched.Shared} cell, so [enter_faa] is one scheduling point — a
    genuine single fetch-and-add, unlike the boxed backend's CAS loop
    — and the value-based CAS semantics of the packed word are what
    the scheduler explores.  Running
    [Hyaline_core.Hyaline.Make (Schedcheck.Head_sched_packed)] model-
    checks the production algorithm over the production encoding. *)

include Hyaline_core.Head.OPS with type snap = int
