(* Crystalline's reservation word over {!Sched.Shared} cells, so the
   real [Crystalline.Make] functor runs under the deterministic
   explorer — both representations, since they have different ABA
   surfaces (physical-equality boxes vs the value CAS + tombstone
   window of the packed int). *)

module Boxed : Hyaline_core.Crystalline.WORD = struct
  type word = { era : int; hptr : Smr.Hdr.t }
  type t = word Sched.Shared.t

  let idle = { era = 0; hptr = Smr.Hdr.nil }
  let backend = "boxed"
  let max_era = max_int
  let make () = Sched.Shared.make idle
  let get = Sched.Shared.get

  let exchange t ~era =
    Sched.Shared.exchange t (if era = 0 then idle else { era; hptr = Smr.Hdr.nil })

  let cas_era t ~expected e =
    Sched.Shared.compare_and_set t expected { expected with era = e }

  let cas_insert t ~expected n =
    Sched.Shared.compare_and_set t expected { expected with hptr = n }

  let era w = w.era
  let empty w = Smr.Hdr.is_nil w.hptr
  let hptr w = w.hptr
end

module Packed : Hyaline_core.Crystalline.WORD = struct
  module P = Hyaline_core.Head.Packed

  type t = int Sched.Shared.t
  type word = int

  let backend = "packed"
  let max_era = P.max_href
  let make () = Sched.Shared.make 0
  let get = Sched.Shared.get
  let exchange t ~era = Sched.Shared.exchange t (P.with_href 0 era)

  let cas_era t ~expected e =
    Sched.Shared.compare_and_set t expected (P.with_href expected e)

  let cas_insert t ~expected n =
    Sched.Shared.compare_and_set t expected (P.with_hptr expected n)

  let era = P.href
  let empty w = P.index w = 0
  let hptr = P.hptr
end
