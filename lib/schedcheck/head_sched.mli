(** A {!Hyaline_core.Head.OPS} backend over {!Sched.Shared} cells —
    the bridge that runs the {e production} Hyaline/Hyaline-S
    implementations inside the deterministic scheduler.

    Every head operation is a scheduling point, so
    [Hyaline_core.Hyaline.Make (Schedcheck.Head_sched)] is the real
    multi-slot algorithm (batches, Adjs wraparound arithmetic,
    predecessor adjustments, detach, traverse) with its head accesses
    interleaved under {!Sched.explore}/{!Sched.sample}.  The
    reference-count FAAs between head operations execute inside one
    atomic step — a sound coarsening: each is a single atomic in the
    real execution too, so every schedule explored here is a possible
    real schedule (the converse does not hold; this under-approximates,
    it never false-alarms).

    Only usable from inside scheduler fibers (plus scenario setup and
    end-of-schedule checks, which run under a pass-through handler). *)

include Hyaline_core.Head.OPS with type snap = Hyaline_core.Snap.t
