(** Explicit memory pool: the "manual heap" substrate.

    OCaml's runtime is garbage-collected, so a naive port of a safe
    memory reclamation (SMR) scheme would have nothing observable to
    reclaim — a use-after-free bug would be silently masked by the GC
    keeping the record alive.  This pool restores manual-reclamation
    semantics: nodes handed out by {!Make.alloc} are recycled through
    free lists, so {!Make.free}-ing a node that another thread still
    dereferences leads to that node being {e reused} under the reader's
    feet, exactly the failure mode SMR exists to prevent.  The
    {!POOLABLE} hooks let node types flag these events (the SMR
    framework's header records alive/retired/freed states and raises on
    violations in checked builds).

    The pool is lock-free on the fast paths (free-list push/pop via CAS
    on an immutable list; index assignment via fetch-and-add) and keeps
    per-domain caches to avoid a single contended free list.

    Every node receives a small, dense, stable integer {e index},
    usable as a single-word encoding of a pointer — this is how the
    repository reproduces Hyaline-1's "pointer with a squeezed-in bit"
    single-width-CAS representation on a runtime without raw pointers. *)

exception Injected_oom
(** Raised by {!Make.alloc} while an {!Make.inject_failures} budget is
    armed — the chaos subsystem's allocation-failure fault.  Shared by
    every pool instantiation so fault-handling code can match on it
    without knowing the node type. *)

module type POOLABLE = sig
  type t
  (** The pooled node type. *)

  val create : index:int -> t
  (** [create ~index] allocates a brand-new node carrying the stable
      pool index [index]. *)

  val index : t -> int
  (** [index n] returns the index passed to [create]. *)

  val on_alloc : t -> unit
  (** Called every time the node is handed out (both fresh and
      recycled).  Node types reset their reusable state here and mark
      themselves live. *)

  val on_free : t -> unit
  (** Called when the node is returned to the pool.  Node types mark
      themselves dead here and may raise to signal a double free. *)
end

type stats = {
  created : int;  (** nodes constructed fresh (high-water of distinct nodes) *)
  allocs : int;   (** total [alloc] calls *)
  frees : int;    (** total [free] calls *)
}
(** Snapshot of pool counters; [allocs - frees] is the live count. *)

val pp_stats : Format.formatter -> stats -> unit

module Make (P : POOLABLE) : sig
  type t
  (** A pool of [P.t] nodes, shared between domains. *)

  val create : ?local_cache:int -> unit -> t
  (** [create ()] returns an empty pool.  [local_cache] bounds the
      per-domain private free cache (default [64]; [0] disables
      caching, making every free/alloc hit the shared list — useful in
      deterministic tests). *)

  val alloc : t -> P.t
  (** [alloc t] returns a node, recycling a freed one when available.
      Runs [P.on_alloc] before returning.  On a local-cache miss the
      whole shared free list is taken in one atomic exchange and up to
      [local_cache] nodes are kept locally (surplus is spliced back),
      so a burst of misses pays one shared-list RMW per [local_cache]
      allocations rather than one per node.  Between the exchange and
      the splice-back, other domains observe an empty shared list and
      may construct fresh nodes despite free ones existing — a
      deliberate trade of occasional extra [created] nodes for a
      refill that cannot livelock against concurrent pushers (node
      reuse is a performance property here, never a correctness one).
      @raise Injected_oom while a fault-injection budget is armed (the
      failed call consumes one budget unit and does not count as an
      alloc, so [live] stays exact). *)

  val inject_failures : t -> n:int -> unit
  (** Arm the allocation fault-injection hook: the next [n] calls to
      {!alloc} (pool-wide, any domain) raise {!Injected_oom}.
      Cumulative with any budget still pending.  The disabled hook
      costs a single uncontended atomic load per [alloc].
      @raise Invalid_argument if [n < 0]. *)

  val injected_failures_pending : t -> int
  (** Remaining armed failure budget (0 = hook disabled). *)

  val free : t -> P.t -> unit
  (** [free t n] returns [n] to the pool for reuse.  Runs [P.on_free].
      The caller must guarantee [n] came from [t] and is not freed
      twice (the node's own hooks are expected to check). *)

  val lookup : t -> int -> P.t
  (** [lookup t i] returns the node with stable index [i].  If the
      index has been reserved by a concurrent in-flight creation but
      the node is not yet installed, [lookup] waits on that cell until
      the publisher's store lands (a bounded number of instructions
      away) — it never observes a placeholder for a different index.
      @raise Invalid_argument if [i] is negative or was never handed
      out by this pool. *)

  val stats : t -> stats
  (** Racy-but-consistent-enough snapshot of the counters. *)

  val live : t -> int
  (** [live t] is [allocs - frees] at the moment of the call, clamped
      at 0 (the counters are read free-side first so a racing
      alloc/free pair cannot drive the difference negative). *)

  val shared_free_length : t -> int
  (** Current length of the shared free list (excludes per-domain
      caches).  Maintained incrementally; racy but never negative.
      While a refill's splice-back is in flight the gauge transiently
      {e over}counts (the exchange empties the list before the length
      is adjusted), so invariant checks — e.g. the chaos oracles —
      should treat it as an upper bound, not an exact census. *)

  val gauges : t -> (string * int) list
  (** Occupancy gauges for the observability layer:
      [mpool_live], [mpool_shared_free], [mpool_created]. *)
end
