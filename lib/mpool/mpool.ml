module type POOLABLE = sig
  type t

  val create : index:int -> t
  val index : t -> int
  val on_alloc : t -> unit
  val on_free : t -> unit
end

exception Injected_oom

type stats = { created : int; allocs : int; frees : int }

let pp_stats ppf { created; allocs; frees } =
  Format.fprintf ppf "created=%d allocs=%d frees=%d live=%d" created allocs
    frees (allocs - frees)

(* Registry chunking: [lookup] must be wait-free while creation grows
   the index space, so nodes live in fixed-size chunks hung off a
   fixed directory, never moved after publication. *)
let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 16

module Make (P : POOLABLE) = struct
  (* Per-domain free cache.  [count] is maintained incrementally so
     [free] never walks the list (spilling used to be O(cache) per
     free). *)
  type cache = { mutable count : int; mutable nodes : P.t list }

  type t = {
    next_index : int Atomic.t;
    chunks : P.t option Atomic.t array option Atomic.t array;
    shared_free : P.t list Atomic.t;
    shared_len : int Atomic.t;
    local_cache : int;
    cache_key : cache Domain.DLS.key;
    created : int Atomic.t;
    allocs : int Atomic.t;
    frees : int Atomic.t;
    (* Fault-injection budget: while positive, each [alloc] consumes
       one unit and raises [Injected_oom] instead of handing out a
       node.  Disabled (0) costs one relaxed load on the alloc path —
       see the bench/main.ml hook-overhead group. *)
    oom_budget : int Atomic.t;
  }

  let create ?(local_cache = 64) () =
    if local_cache < 0 then invalid_arg "Mpool.create: local_cache < 0";
    {
      next_index = Atomic.make 0;
      chunks = Array.init max_chunks (fun _ -> Atomic.make None);
      shared_free = Atomic.make [];
      shared_len = Atomic.make 0;
      local_cache;
      cache_key = Domain.DLS.new_key (fun () -> { count = 0; nodes = [] });
      created = Atomic.make 0;
      allocs = Atomic.make 0;
      frees = Atomic.make 0;
      oom_budget = Atomic.make 0;
    }

  let inject_failures t ~n =
    if n < 0 then invalid_arg "Mpool.inject_failures: n < 0";
    ignore (Atomic.fetch_and_add t.oom_budget n)

  let injected_failures_pending t = max 0 (Atomic.get t.oom_budget)

  (* Claim one unit of the armed budget; the CAS loop resolves races
     between concurrent allocators so exactly [n] allocations fail. *)
  let rec take_oom t =
    let n = Atomic.get t.oom_budget in
    if n <= 0 then false
    else if Atomic.compare_and_set t.oom_budget n (n - 1) then true
    else take_oom t

  let rec push_shared t node =
    let old = Atomic.get t.shared_free in
    if Atomic.compare_and_set t.shared_free old (node :: old) then
      Atomic.incr t.shared_len
    else push_shared t node

  (* Spill a whole cache with a single successful CAS: splice the
     spilled list in front of the shared list.  The splice is rebuilt
     on a CAS failure, but each retry is O(spill) with spill bounded by
     [local_cache] — versus the old one-CAS-per-node loop. *)
  let rec splice_shared t spilled n =
    let old = Atomic.get t.shared_free in
    if Atomic.compare_and_set t.shared_free old (List.rev_append spilled old)
    then ignore (Atomic.fetch_and_add t.shared_len n)
    else splice_shared t spilled n

  let rec pop_shared t =
    match Atomic.get t.shared_free with
    | [] -> None
    | node :: rest as old ->
        if Atomic.compare_and_set t.shared_free old rest then begin
          Atomic.decr t.shared_len;
          Some node
        end
        else pop_shared t

  (* Cache-miss path: grab the whole shared list in one [exchange] —
     no CAS loop, so a refill cannot livelock against concurrent
     pushers — keep up to [local_cache] nodes for this domain's cache,
     and splice the surplus back.  A miss used to pay one CAS per
     node popped; now a burst of misses on one domain pays one RMW
     per [local_cache] allocations.  The cheap empty-check load comes
     first so idle domains don't bounce the line with useless RMWs.
     Deliberate transient: between the exchange and the splice-back,
     other domains see an empty list and fall through to [fresh], and
     [shared_len] overcounts until the deferred adjustment lands —
     both are benign (extra created nodes / a gauge upper bound; see
     the .mli) and the price of the livelock-free exchange. *)
  let refill t cache =
    if Atomic.get t.shared_free == [] then None
    else
      match Atomic.exchange t.shared_free [] with
      | [] -> None
      | node :: rest ->
          let rec keep acc n = function
            | x :: xs when n < t.local_cache -> keep (x :: acc) (n + 1) xs
            | surplus -> (acc, n, surplus)
          in
          let kept, n_kept, surplus = keep [] 0 rest in
          cache.nodes <- kept;
          cache.count <- n_kept;
          (match surplus with
          | [] -> ignore (Atomic.fetch_and_add t.shared_len (-(1 + n_kept)))
          | _ ->
              (* The exchange removed the whole list but [shared_len]
                 still counts it, so after splicing the surplus back
                 only what this domain took needs deducting.  The list
                 is a free list: order is irrelevant, [rev_append] is
                 fine. *)
              let rec put back =
                let old = Atomic.get t.shared_free in
                if
                  Atomic.compare_and_set t.shared_free old
                    (List.rev_append back old)
                then ignore (Atomic.fetch_and_add t.shared_len (-(1 + n_kept)))
                else put back
              in
              put surplus);
          Some node

  (* Install [node] into its registry cell.  Cells are [None] until
     their node is published, so a concurrent [lookup] can never
     observe another index's node through a pre-filled placeholder; it
     waits on the specific cell instead (see [lookup]). *)
  let publish t node =
    let i = P.index node in
    let c = i lsr chunk_bits in
    if c >= max_chunks then failwith "Mpool: index space exhausted";
    let slot = t.chunks.(c) in
    (match Atomic.get slot with
    | Some _ -> ()
    | None ->
        (* Only one thread wins the install; losers just use the
           winner's chunk. *)
        let arr = Array.init chunk_size (fun _ -> Atomic.make None) in
        ignore (Atomic.compare_and_set slot None (Some arr)));
    match Atomic.get slot with
    | Some arr -> Atomic.set arr.(i land (chunk_size - 1)) (Some node)
    | None -> assert false

  let fresh t =
    let i = Atomic.fetch_and_add t.next_index 1 in
    let node = P.create ~index:i in
    publish t node;
    Atomic.incr t.created;
    node

  let alloc t =
    if Atomic.get t.oom_budget > 0 && take_oom t then raise Injected_oom;
    Atomic.incr t.allocs;
    let node =
      if t.local_cache = 0 then
        match pop_shared t with Some n -> n | None -> fresh t
      else
        let cache = Domain.DLS.get t.cache_key in
        match cache.nodes with
        | n :: rest ->
            cache.nodes <- rest;
            cache.count <- cache.count - 1;
            n
        | [] -> ( match refill t cache with Some n -> n | None -> fresh t)
    in
    P.on_alloc node;
    node

  let free t node =
    P.on_free node;
    Atomic.incr t.frees;
    if t.local_cache = 0 then push_shared t node
    else begin
      let cache = Domain.DLS.get t.cache_key in
      cache.nodes <- node :: cache.nodes;
      cache.count <- cache.count + 1;
      if cache.count > t.local_cache then begin
        splice_shared t cache.nodes cache.count;
        cache.nodes <- [];
        cache.count <- 0
      end
    end

  (* [fresh] reserves the index (the fetch-and-add on [next_index])
     before [publish] installs the node, so an index below
     [next_index] may designate a cell that is not yet — but is about
     to be — filled.  Wait on that cell rather than racing it: the
     publisher is a bounded number of instructions away from the
     store. *)
  let lookup t i =
    if i < 0 || i >= Atomic.get t.next_index then
      invalid_arg "Mpool.lookup: index out of range";
    let c = i lsr chunk_bits in
    let rec cell () =
      match Atomic.get t.chunks.(c) with
      | Some arr -> arr.(i land (chunk_size - 1))
      | None ->
          (* Chunk install in flight on the publishing domain. *)
          Domain.cpu_relax ();
          cell ()
    in
    let cell = cell () in
    let rec node () =
      match Atomic.get cell with
      | Some n -> n
      | None ->
          Domain.cpu_relax ();
          node ()
    in
    node ()

  let stats t =
    {
      created = Atomic.get t.created;
      allocs = Atomic.get t.allocs;
      frees = Atomic.get t.frees;
    }

  (* Read [frees] first: frees never outpace allocs, so this order
     keeps the difference non-negative under concurrent updates. *)
  let live t =
    let f = Atomic.get t.frees in
    let a = Atomic.get t.allocs in
    max 0 (a - f)

  (* Clamped: a pop's decrement can land before the matching push's
     increment, leaving the counter transiently negative. *)
  let shared_free_length t = max 0 (Atomic.get t.shared_len)

  let gauges t =
    [
      ("mpool_live", live t);
      ("mpool_shared_free", shared_free_length t);
      ("mpool_created", Atomic.get t.created);
    ]
end
