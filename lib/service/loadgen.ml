type mix = { get_pct : int; put_pct : int; del_pct : int; cas_pct : int }

let read_mostly = { get_pct = 90; put_pct = 5; del_pct = 3; cas_pct = 2 }
let write_heavy = { get_pct = 40; put_pct = 30; del_pct = 20; cas_pct = 10 }

let check_mix m =
  if m.get_pct + m.put_pct + m.del_pct + m.cas_pct <> 100 then
    invalid_arg "Loadgen: mix percentages must sum to 100";
  if m.get_pct < 0 || m.put_pct < 0 || m.del_pct < 0 || m.cas_pct < 0 then
    invalid_arg "Loadgen: negative mix percentage"

type mode = Closed | Open of float

type result = {
  submitted : int;
  ops : int;
  sheds : int;
  errors : int;
  wall : float;
  throughput : float;
}

(* Same salt discipline as Driver's workers: independent streams per
   tid, reproducible across runs. *)
let client_seed ~seed ~tid = seed + (7919 * (tid + 1))

let gen_request rng ~dist ~mix =
  let k = Workload.Keydist.draw dist rng in
  let pct = Prims.Rng.below rng 100 in
  if pct < mix.get_pct then Codec.Get k
  else if pct < mix.get_pct + mix.put_pct then
    Codec.Put { key = k; value = Prims.Rng.below rng 1_000_000 }
  else if pct < mix.get_pct + mix.put_pct + mix.del_pct then Codec.Del k
  else
    Codec.Cas
      {
        key = k;
        expected = Prims.Rng.below rng 1_000_000;
        desired = Prims.Rng.below rng 1_000_000;
      }

let request_stream ~seed ~tid ~dist ~mix ~n =
  check_mix mix;
  let rng = Prims.Rng.create ~seed:(client_seed ~seed ~tid) in
  List.init n (fun _ -> gen_request rng ~dist ~mix)

let now () = Unix.gettimeofday ()

let run (svc : Shard.t) ~mode ~clients ~duration ~dist ~mix ?churn_ops ~seed
    () =
  check_mix mix;
  if clients <= 0 then invalid_arg "Loadgen.run: clients <= 0";
  if clients > svc.Shard.clients then
    invalid_arg "Loadgen.run: more clients than service client slots";
  (match churn_ops with
  | Some n when n <= 0 -> invalid_arg "Loadgen.run: churn_ops <= 0"
  | _ -> ());
  (match mode with
  | Open r when r <= 0.0 -> invalid_arg "Loadgen.run: open-loop rate <= 0"
  | _ -> ());
  let submitted = Atomic.make 0 in
  let ok = Atomic.make 0 in
  let sheds = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let count_reply = function
    | Codec.Shed -> Atomic.incr sheds
    | Codec.Error _ -> Atomic.incr errors
    | _ -> Atomic.incr ok
  in
  let deadline = ref infinity in
  (* One client life: up to [max_ops] requests or the deadline,
     whichever first.  The rng travels with the tid slot, not the
     domain, so churn does not perturb the request stream. *)
  let life_closed tid rng max_ops () =
    let n = ref 0 in
    while now () < !deadline && !n < max_ops do
      let req = gen_request rng ~dist ~mix in
      Atomic.incr submitted;
      count_reply (Shard.call svc ~tid req);
      incr n
    done
  in
  let life_open tid rng max_ops interval next () =
    let n = ref 0 in
    while now () < !deadline && !n < max_ops do
      let t = now () in
      if t < !next then Unix.sleepf (Float.min (!next -. t) 0.001)
      else begin
        let req = gen_request rng ~dist ~mix in
        Atomic.incr submitted;
        svc.Shard.submit ~tid req count_reply;
        next := !next +. interval;
        incr n
      end
    done
  in
  let supervisor tid () =
    let rng = Prims.Rng.create ~seed:(client_seed ~seed ~tid) in
    let life max_ops =
      match mode with
      | Closed -> life_closed tid rng max_ops
      | Open rate ->
          (* Pool-wide rate split evenly; each client keeps its own
             schedule so a slow reply cannot slow arrivals. *)
          let interval = float_of_int clients /. rate in
          life_open tid rng max_ops interval (ref (now ()))
    in
    match churn_ops with
    | None -> life max_int ()
    | Some n ->
        (* Worker churn: a fresh domain per slice of the stream.
           Nothing attaches or detaches from any tracker — the tid
           slot is the only identity (transparency on the serving
           path). *)
        while now () < !deadline do
          Domain.join (Domain.spawn (life n))
        done
  in
  let t0 = now () in
  deadline := t0 +. duration;
  let domains = List.init clients (fun tid -> Domain.spawn (supervisor tid)) in
  List.iter Domain.join domains;
  let t1 = now () in
  (* Open loop: let in-flight submissions complete (consumers are
     still running); bounded grace so a stalled shard cannot hang the
     harness. *)
  let grace = now () +. 1.0 in
  let counted () = Atomic.get ok + Atomic.get sheds + Atomic.get errors in
  while counted () < Atomic.get submitted && now () < grace do
    Unix.sleepf 0.001
  done;
  let wall = t1 -. t0 in
  {
    submitted = Atomic.get submitted;
    ops = Atomic.get ok;
    sheds = Atomic.get sheds;
    errors = Atomic.get errors;
    wall;
    throughput = (if wall > 0.0 then float_of_int (Atomic.get ok) /. wall else 0.0);
  }
