(** Readiness polling for the event-loop transport backend.

    A thin level-triggered readiness API with two implementations
    behind one interface: Linux [epoll] through the C stubs in
    [poller_stubs.c] (no allocation on the wait path; results land in
    a pre-allocated off-heap buffer so the OCaml runtime lock can be
    released around [epoll_wait]), and a portable [Unix.select]
    fallback (bounded by [FD_SETSIZE], typically 1024 descriptors).
    [`Auto] picks epoll where available.

    Not thread-safe: a poller belongs to the single pump domain of its
    event loop ({!Conn.serve_unix} with the [`Evloop] backend). *)

type backend = [ `Auto | `Epoll | `Select ]

val available : unit -> bool
(** Whether the epoll stubs are live on this platform. *)

type t

val create : backend -> t
(** @raise Failure if [`Epoll] is requested where unavailable. *)

val name : t -> string
(** ["epoll"] or ["select"] — for logs and CSV columns. *)

val accepts : t -> Unix.file_descr -> bool
(** Whether this backend can watch the descriptor at all.  Epoll
    always can; select refuses fd {e values} >= FD_SETSIZE (1024) —
    [Unix.select] would fail with EINVAL for them, regardless of how
    few descriptors are watched.  Servers check this before {!add} and
    shed the connection instead of poisoning the pump. *)

val max_fds : t -> int
(** Advisory cap on concurrently-watched descriptors: unbounded for
    epoll, comfortably below FD_SETSIZE for select (headroom for the
    process's other descriptors — WAL segments, listeners, pipes).
    Event-loop servers clamp their [max_conns] with this. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor with the given interest set.
    @raise Invalid_argument on the select backend for an fd value
    >= FD_SETSIZE (gate with {!accepts} first). *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change interest; a no-op when the set is unchanged.
    @raise Invalid_argument if the fd is not registered. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister (idempotent; tolerates an already-closed fd). *)

val wait :
  t ->
  timeout_ms:int ->
  (Unix.file_descr -> readable:bool -> writable:bool -> unit) ->
  int
(** Block up to [timeout_ms] (-1 = indefinitely) and invoke the
    callback once per ready descriptor; returns the ready count.
    [EINTR] returns 0 — the caller's loop comes around again.
    Error/hang-up conditions surface as readable (and writable, for
    epoll), so owners observe them on the next read/write.  A
    callback may {!remove} descriptors, including ones later in the
    same batch (they are skipped). *)

val close : t -> unit

val fd_int : Unix.file_descr -> int
(** The raw descriptor number (identity on Unix ports) — the event
    loop's stable table key for a descriptor. *)
