(** Transports for the {!Codec} wire protocol.

    Two transports, one byte format:

    - {!Loopback}: in-process, deterministic — each call runs the
      request through the {e full} encode→decode→execute→encode→decode
      path, so tests exercise the exact bytes a remote peer would see,
      without sockets or nondeterministic interleaving in the
      transport itself.
    - Unix-domain sockets ({!serve_unix}/{!connect_unix}): the real
      daemon path used by [bin/kvd.exe], one handler domain per
      connection, producer tids leased from the service's client-slot
      pool (connection churn exercises transparent attach/detach). *)

exception Closed
(** Peer hung up mid-frame. *)

val read_frame : Unix.file_descr -> bytes option
(** One payload (length prefix stripped); [None] on clean EOF at a
    frame boundary.  @raise Closed on mid-frame EOF,
    [Codec.Malformed] on an insane length prefix. *)

val write_frame : Unix.file_descr -> Buffer.t -> unit
(** Write the buffer (already framed by a [Codec.encode_*]) fully,
    then clear it. *)

val serve_conn : Shard.t -> tid:int -> Unix.file_descr -> unit
(** Request/reply loop on an accepted connection until EOF; malformed
    frames get an [Error] reply, then the connection closes.  Closes
    the descriptor.  Never raises. *)

type server

val serve_unix :
  Shard.t -> path:string -> ?backlog:int -> unit -> server
(** Bind+listen on a unix-domain socket (unlinking any stale file) and
    accept in a background domain; each connection gets a handler
    domain holding a leased client tid.  When all [Shard.t.clients]
    tids are in use, new connections are immediately answered with one
    [Shed] reply and closed (connection-level backpressure). *)

val shutdown : server -> unit
(** Stop accepting, wake the accept loop, join handler domains,
    unlink the socket path.  Idempotent.  Does NOT stop the service. *)

val connect_unix : path:string -> Unix.file_descr

val call_fd : Unix.file_descr -> Codec.request -> Codec.reply
(** Blocking client call over any connected descriptor.
    @raise Closed if the server hung up. *)

module Loopback : sig
  type client

  val connect : Shard.t -> tid:int -> client
  (** [tid] must be an unused client slot in [[0, clients)]. *)

  val call : client -> Codec.request -> Codec.reply
  (** Full wire round-trip in memory; blocking. *)
end
