(** Transports for the {!Codec} wire protocol.

    One byte format, several transports:

    - {!Loopback}: in-process, deterministic — each call runs the
      request through the {e full} encode→decode→execute→encode→decode
      path, so tests exercise the exact bytes a remote peer would see,
      without sockets or nondeterministic interleaving in the
      transport itself.
    - Unix-domain sockets ({!serve_unix}/{!connect_unix}): the real
      daemon path used by [bin/kvd.exe], one handler domain per
      connection, producer tids leased from the service's client-slot
      pool (connection churn exercises transparent attach/detach).
    - Shared memory ([Shm_conn], its own module — same frames, over
      mmap'd SPSC rings with no syscall per op on the hot path).
    - {!Zerocopy}: in-process GETs that skip the codec entirely and
      read the live maps inside a bracket — the SMR scheme as the
      client/daemon isolation boundary. *)

exception Closed
(** Peer hung up mid-frame. *)

val ignore_sigpipe : unit -> unit
(** Ignore [SIGPIPE] process-wide so a peer vanishing mid-reply
    surfaces as an [EPIPE] write error on that connection instead of
    killing the daemon.  Called by {!serve_unix}; daemons should also
    call it at startup.  Idempotent; no-op where unsupported.
    Reads and writes additionally retry [EINTR], so signal delivery
    never masquerades as a connection error. *)

module Faults : sig
  (** Chaos injection points on the server side of the transport.
      The disabled state is the distinguished {!none} instance,
      recognized by physical equality before any counter is read —
      the hook costs nothing when chaos is off (same discipline as
      [Obs.Probe.is_noop]; measured in bench/main.ml). *)

  type t

  val create : ?delay_s:float -> unit -> t
  (** Fresh fault block, nothing armed.  [delay_s] (default 2ms) is
      the pause used by delayed reads. *)

  val none : t
  (** The permanently-disabled instance every server starts with. *)

  val is_none : t -> bool

  val arm_truncate_reply : t -> int -> unit
  (** The next [n] replies (across all connections) are cut halfway
      through the payload, then the connection closes: the client
      observes a mid-frame EOF ({!Closed}). *)

  val arm_close_mid_frame : t -> int -> unit
  (** The next [n] replies are cut right after the 4-byte length
      prefix, then the connection closes. *)

  val arm_delayed_read : t -> int -> unit
  (** The next [n] request reads are preceded by a [delay_s] pause
      (a slow peer; the reply itself stays intact). *)

  (** Claiming accessors for other transports ([Shm_conn] maps the
      armed counts onto ring-level damage with the same client-visible
      outcome): atomically consume one armed unit, [false] if none. *)

  val take_truncate_reply : t -> bool
  val take_close_mid_frame : t -> bool
  val take_delayed_read : t -> bool
  val delay_s : t -> float
end

val reader_of_fd : Unix.file_descr -> Codec.reader
(** Persistent frame decoder with the descriptor as the pull source
    (EINTR-retrying) — the shared length-prefix scan WAL replay and
    the shm ring path also use. *)

val read_next : Codec.reader -> bytes option
(** One payload (length prefix stripped); [None] on clean EOF at a
    frame boundary.  @raise Closed on mid-frame EOF,
    [Codec.Malformed] on an insane length prefix. *)

val read_frame : Unix.file_descr -> bytes option
(** One-shot {!read_next} over a throwaway {!reader_of_fd} (client
    call paths; servers keep a persistent reader per connection). *)

val write_frame : Unix.file_descr -> Buffer.t -> unit
(** Write the buffer (already framed by a [Codec.encode_*]) fully.
    The buffer is cleared on {e every} exit, including a raising one
    ([Closed] on a zero-length write, [Unix_error] from a vanished
    peer): it is snapshotted and cleared before the first byte goes
    out, so a reused per-connection buffer can never prepend a stale
    reply to the next one. *)

val write_reply : faults:Faults.t -> Unix.file_descr -> Buffer.t -> unit
(** {!write_frame} under the armed fault, if any: truncate-reply and
    close-mid-frame write a deliberately incomplete frame and raise
    {!Closed} — with the same clear-on-every-exit buffer contract as
    {!write_frame}.  With {!Faults.none} this is one
    physical-equality check on top of {!write_frame} (benchmarked in
    bench/main.ml). *)

val serve_conn :
  ?faults:Faults.t ->
  ?ext:(Codec.request -> Codec.reply option) ->
  Shard.t ->
  tid:int ->
  Unix.file_descr ->
  unit
(** Request/reply loop on an accepted connection until EOF; malformed
    frames get an [Error] reply, then the connection closes.  Closes
    the descriptor.  Never raises.  [faults] (default {!Faults.none})
    injects server-side transport faults.  [ext] is consulted before
    shard routing — a [Some] reply answers the request directly (the
    replication and cluster-control opcodes are served this way, off
    the data path); [None] falls through to [Shard.call]. *)

val serve_conn_fn :
  ?faults:Faults.t ->
  exec:(Codec.request -> Codec.reply) ->
  Unix.file_descr ->
  unit
(** {!serve_conn} generalized over the request executor — the
    blocking per-connection loop under any handler (the cluster proxy
    serves its router through this). *)

type server

exception Addr_in_use of string
(** {!serve_unix}: the socket path is owned by a {e live} daemon (a
    connect probe succeeded) — refusing to clobber it. *)

type backend = [ `Threaded | `Evloop of Poller.backend ]
(** How the unix-socket server holds its connections:

    - [`Threaded]: one handler domain per connection, each leasing a
      producer tid for its life; all [Shard.t.clients] tids in use ⇒
      new connections get one [Shed] reply and close.  Fan-in is
      bounded by the tid pool and the runtime's domain count.
    - [`Evloop p]: a single pump domain drives every connection
      through a readiness poller [p] ({!Poller.backend}) —
      nonblocking fds, per-connection {!Codec.frame_reader} state
      machines, batched submits under {e one} leased tid, ordered
      nonblocking reply writes with short-write resume and
      per-connection error containment.  Fan-in is bounded by
      [max_conns] and fd limits only; beyond [max_conns] new
      connections get one [Shed] reply and close. *)

val serve_unix :
  Shard.t ->
  path:string ->
  ?backlog:int ->
  ?faults:Faults.t ->
  ?ext:(Codec.request -> Codec.reply option) ->
  ?ext_defer:(Codec.request -> bool) ->
  ?backend:backend ->
  ?max_conns:int ->
  ?evloop_tid:int ->
  unit ->
  server
(** Bind+listen on a unix-domain socket and serve it with [backend]
    (default [`Threaded]).  An existing socket file is connect-probed
    first: stale (crashed daemon) → unlinked and claimed; live →
    {!Addr_in_use}, the incumbent keeps it.  [ext] is consulted
    before shard routing on every connection.  [max_conns] (default
    1024, clamped below FD_SETSIZE on the select poller) and
    [evloop_tid] (the pump's producer tid, default 0 — reserve it for
    the server) apply to the [`Evloop] backend.

    [`Evloop] contracts on [ext]:

    - {b Purity on declined requests}: the handler may be consulted
      more than once for a request it answers [None] — once at
      dispatch, and again when the request is popped from the
      backpressure queue, so a verdict that changed while the request
      was parked (a cluster slot frozen mid-migration) is applied at
      submission, not at arrival.  Handlers must therefore be
      effect-free on the [None] path.
    - {b Bounded work}, unless deferred: the handler runs inline on
      the single pump domain.  [ext_defer] classifies requests whose
      handling is {e not} bounded (migration ingest that waits on
      group commits, full-shard snapshot traversals, anything taking
      the node's control lock): they execute on a dedicated worker
      domain, in arrival order, completing through the same
      completion stack as the shard consumers — the pump never
      blocks on them.  [ext_defer] is ignored by the [`Threaded]
      backend (each connection's domain may block freely).
    - An ext handler that raises costs that request an [Error] reply,
      never the pump. *)

val serve_unix_fn :
  handler:(Codec.request -> Codec.reply) ->
  path:string ->
  ?backlog:int ->
  ?faults:Faults.t ->
  ?max_conns:int ->
  unit ->
  server
(** A unix-socket server over a plain handler function instead of a
    {!Shard.t} — thread per connection (the handler may block on
    upstream daemons), at most [max_conns] (default 64) concurrent;
    beyond that, connections get one [Shed] reply and close.  The
    cluster proxy serves dumb clients through this. *)

val shutdown : server -> unit
(** Stop accepting, wake the accept loop / pump, join server domains,
    unlink the socket path.  Idempotent.  Does NOT stop the service. *)

val faults : server -> Faults.t
(** The server's fault block (arm counters on it mid-run). *)

val connect_unix : path:string -> Unix.file_descr

val call_fd : Unix.file_descr -> Codec.request -> Codec.reply
(** Blocking client call over any connected descriptor.
    @raise Closed if the server hung up. *)

module Zerocopy : sig
  (** In-process zero-copy reads.

      The client leases a {!Shard} zero-copy slot and reads the live
      maps from its own domain inside an enter/leave bracket: GET
      never crosses a mailbox, is never encoded into a reply frame,
      and costs no syscall.  The SMR scheme is the isolation — a
      transparent scheme (Hyaline*/Crystalline) licenses the read
      with the bracket alone, and a client that stalls inside its
      bracket can only pin what a robust scheme bounds (the chaos
      stalled-client check).  Writes go through the ordinary routed
      {!call} — the shard consumer remains each map's only mutator.

      Contract: [enter → get* → leave], brackets short and reads only
      inside them.  {!get} outside a bracket raises. *)

  type client

  val connect : Shard.t -> tid:int -> client option
  (** Lease a zero-copy slot ([None] = all [zc_readers] slots taken).
      [tid] is the producer slot used by {!call} for writes. *)

  val enter : client -> unit
  val get : client -> int -> int option
  val leave : client -> unit
  val with_bracket : client -> (unit -> 'a) -> 'a
  val call : client -> Codec.request -> Codec.reply
  (** The non-read path (PUT/DEL/CAS/…): an ordinary routed call. *)

  val close : client -> unit
  (** Leave any open bracket and return the slot to the pool. *)

  val slot : client -> int
end

module Loopback : sig
  type client

  val connect : Shard.t -> tid:int -> client
  (** [tid] must be an unused client slot in [[0, clients)]. *)

  val call : client -> Codec.request -> Codec.reply
  (** Full wire round-trip in memory; blocking. *)
end
