module Make (T : Smr.Tracker.S) = struct
  module Q = Dstruct.Ms_queue.Make (T)

  type 'a t = {
    slots : 'a option Atomic.t array;
    (* Free slot indices as an immutable list under one Atomic: a
       Treiber stack of boxed cons cells.  No ABA — the GC keeps a
       popped cell alive while any CAS still holds it — and popping
       empty is the O(1) "mailbox full" verdict. *)
    free : int list Atomic.t;
    queue : Q.t;
    depth : int Atomic.t;
    sent : int Atomic.t;
    rejected : int Atomic.t;
  }

  let create ?tracker ~cfg ~capacity () =
    if capacity <= 0 then invalid_arg "Mailbox.create: capacity <= 0";
    {
      slots = Array.init capacity (fun _ -> Atomic.make None);
      free = Atomic.make (List.init capacity Fun.id);
      queue = Q.create ?tracker cfg;
      depth = Atomic.make 0;
      sent = Atomic.make 0;
      rejected = Atomic.make 0;
    }

  let rec pop_free t =
    match Atomic.get t.free with
    | [] -> None
    | i :: rest as old ->
        if Atomic.compare_and_set t.free old rest then Some i
        else begin
          Domain.cpu_relax ();
          pop_free t
        end

  let rec push_free t i =
    let old = Atomic.get t.free in
    if not (Atomic.compare_and_set t.free old (i :: old)) then begin
      Domain.cpu_relax ();
      push_free t i
    end

  let try_send t ~tid v =
    match pop_free t with
    | None ->
        Atomic.incr t.rejected;
        false
    | Some i ->
        Atomic.set t.slots.(i) (Some v);
        (* The slot write is an Atomic.set, so the consumer's read
           after dequeuing [i] is ordered after it. *)
        Q.enqueue t.queue ~tid i;
        Atomic.incr t.depth;
        Atomic.incr t.sent;
        true

  let drain t ~tid ~max =
    let rec go n acc =
      if n >= max then List.rev acc
      else
        match Q.dequeue t.queue ~tid with
        | None -> List.rev acc
        | Some i ->
            let v =
              match Atomic.exchange t.slots.(i) None with
              | Some v -> v
              | None -> assert false (* single consumer *)
            in
            Atomic.decr t.depth;
            push_free t i;
            go (n + 1) (v :: acc)
    in
    go 0 []

  let depth t = Atomic.get t.depth
  let capacity t = Array.length t.slots
  let sent t = Atomic.get t.sent
  let rejected t = Atomic.get t.rejected
  let tracker t = Q.tracker t.queue
  let stats t = Q.stats t.queue
  let flush t ~tid = Q.flush t.queue ~tid
end
