(* The shared-memory transport: same Codec frames as the socket path,
   carried over mmap'd SPSC rings with no syscall per operation on the
   hot path.

   Topology.  The daemon owns a listen FIFO (the rendezvous name, what
   the socket path is to the unix transport).  A client creates its
   own segment file next to it — two rings plus doorbells, see
   [Shm.Seg] — and announces "<segpath> <generation>\n" over the
   listen FIFO.  The generation is echoed out-of-band so the daemon's
   attach validates it against the segment header: a leftover file
   from a dead peer (or a re-used name) fails [Bad_segment] and is
   swept, never conversed with.

   The daemon runs ONE multiplexer domain for every connection —
   where the unix transport spawns a handler domain per client that
   makes ~6 syscalls per op (read, write, and the poll-sleeps inside
   the synchronous Shard.call).  The multiplexer pumps each
   connection's request ring, submits asynchronously to the shard
   service, and emits replies in request order from a per-connection
   reorder window, so one domain stays work-conserving across every
   client: under load it never sleeps and never syscalls — requests
   and replies move purely through shared memory.

   Sleep/wake is the doorbell protocol at both ends, nested so no
   wakeup is lost: each sleeper publishes a waiting flag (in the
   segment header for ring traffic; a process-local atomic for the
   shard consumers' completion callbacks), re-checks its ready
   condition, then blocks in [select] with a bounded timeout; each
   waker publishes its data first and rings only if it then observes
   the flag.  Shard completions wake the multiplexer through a
   self-pipe, clients through their segment's doorbell FIFO. *)

exception Unavailable of string

let window_cap = 64

(* The daemon's value arena lives beside the listen FIFO under this
   suffix; clients learn the generation over the wire ([A_info]) and
   attach the same file to materialize [Val_ref] replies locally. *)
let arena_suffix = ".arena"

(* ------------------------------------------------------------------ *)
(* Client. *)

(* Zero-copy state, present once [enable_zc] negotiated an arena.
   [z_slot] is the daemon-assigned reservation slot (the connection's
   leased tid); [z_held] pins the reservation bracket open across
   calls — the stalled-remote-reader experiments' park switch. *)
type zc_state = {
  za : Shmalloc.Arena.t;
  z_slot : int;
  mutable z_held : bool;
}

type client = {
  c_path : string;  (* the daemon's listen path *)
  seg : Shm.Seg.t;
  tx : Shm.Ring.t;  (* c2s: client writes *)
  rx : Shm.Ring.t;  (* s2c: client reads *)
  rx_reader : Codec.reader;
  bell : Shm.Doorbell.t;  (* client sleeps here; daemon rings *)
  srv_bell : Shm.Doorbell.t;  (* daemon sleeps there; client rings *)
  buf : Buffer.t;
  mutable closed : bool;
  mutable zc : zc_state option;
}

let conn_counter = Atomic.make 0

let announce_client ~path ~seg =
  (* O_NONBLOCK open of the FIFO's write end: ENXIO means nobody is
     reading — no daemon. *)
  let fd =
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ENXIO | Unix.ENOENT), _, _) ->
        raise (Unavailable (path ^ ": no daemon is listening"))
  in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let line =
    Printf.sprintf "%s %d\n" (Shm.Seg.path seg) (Shm.Seg.generation seg)
  in
  let b = Bytes.of_string line in
  (* The line is comfortably under PIPE_BUF, so the nonblocking write
     is atomic even with concurrent connectors: all-or-EAGAIN on the
     fast path.  EAGAIN means the listen FIFO is full under a connect
     storm — retry briefly rather than surfacing a raw Unix_error.
     The short-write loop is belt-and-braces (it cannot trigger for a
     sub-PIPE_BUF line, but once any byte is out the line must be
     completed or abandoned to a dead daemon). *)
  let rec write_from off attempts =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> write_from (off + n) attempts
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          write_from off attempts
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
          raise (Unavailable (path ^ ": daemon went away during connect"))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          if attempts >= 1000 then
            raise (Unavailable (path ^ ": daemon announce queue is full"))
          else begin
            Unix.sleepf 0.001;
            write_from off (attempts + 1)
          end
  in
  write_from 0 0

let connect ~path =
  let seg_path =
    Printf.sprintf "%s.seg.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add conn_counter 1)
  in
  let seg = Shm.Seg.create ~path:seg_path () in
  match announce_client ~path ~seg with
  | () ->
      let rx = Shm.Seg.s2c_ring seg in
      {
        c_path = path;
        seg;
        tx = Shm.Seg.c2s_ring seg;
        rx;
        rx_reader = Codec.frame_reader (Shm.Ring.source rx);
        bell = Shm.Doorbell.attach ~path:(Shm.Seg.cli_bell seg);
        srv_bell = Shm.Doorbell.attach ~path:(Shm.Seg.srv_bell seg);
        buf = Buffer.create 64;
        closed = false;
        zc = None;
      }
  | exception e ->
      Shm.Seg.mark_closed seg;
      Shm.Seg.detach seg;
      Shm.Seg.unlink seg;
      raise e

let drop_zc c =
  match c.zc with
  | None -> ()
  | Some z ->
      c.zc <- None;
      (* [leave] on an empty reservation word is a no-op exchange, so
         this is safe whether or not a hold (or an interrupted call's
         bracket) is open. *)
      (try Shmalloc.Arena.leave z.za ~slot:z.z_slot
       with Shmalloc.Arena.Bad_arena _ -> ());
      (try Shmalloc.Arena.detach z.za with Shmalloc.Arena.Bad_arena _ -> ())

let client_dead c =
  if not c.closed then begin
    c.closed <- true;
    drop_zc c;
    Shm.Seg.mark_closed c.seg;
    Shm.Doorbell.close c.bell;
    Shm.Doorbell.close c.srv_bell;
    Shm.Seg.detach c.seg
  end

(* Ring the daemon only if it published its waiting flag — the
   zero-syscall fast path when the multiplexer is busy. *)
let nudge_server c =
  if Shm.Seg.server_waiting c.seg then Shm.Doorbell.ring c.srv_bell

(* How long a blocked client spins before sleeping on its doorbell.
   With spare cores, spinning rides out the daemon's reply latency
   without a sleep/wake round trip.  On a box with no spare core the
   spin is actively harmful — a spinning client burns the very
   timeslice the multiplexer and shard consumers need to produce the
   reply, so the client must yield almost immediately (the FIFO wakeup
   is directed, a few microseconds). *)
let client_spin =
  if Domain.recommended_domain_count () > 4 then Shm.Doorbell.default_spin
  else 4

let client_wait c ~ready =
  Shm.Doorbell.wait c.bell ~spin:client_spin
    ~announce:(fun b -> Shm.Seg.set_client_waiting c.seg b)
    ~ready

let send_bytes c b =
  let len = Bytes.length b in
  let sent = ref (Shm.Ring.try_send c.tx b ~pos:0 ~len) in
  if !sent then nudge_server c
  else
    while not !sent do
      if not (Shm.Seg.is_open c.seg) then (client_dead c; raise Conn.Closed);
      (* Full ring: the daemon must drain.  Make sure it is awake,
         then wait for space on our doorbell (the daemon rings it
         after consuming requests as well as after writing replies). *)
      nudge_server c;
      client_wait c ~ready:(fun () ->
          Shm.Ring.send_space c.tx >= len + 4
          || not (Shm.Seg.is_open c.seg));
      if Shm.Ring.try_send c.tx b ~pos:0 ~len then begin
        sent := true;
        nudge_server c
      end
    done

let rec recv_reply c =
  match Shm.Ring.pending c.rx with
  | `Torn _ ->
      client_dead c;
      raise Conn.Closed
  | `Msg plen when plen > Codec.max_frame ->
      (* Stamped consistently but over the codec limit: corruption (or
         a hostile writer).  Same fate as [`Torn] — never decoded. *)
      client_dead c;
      raise Conn.Closed
  | `Msg _ -> (
      match Codec.next_frame c.rx_reader with
      | Codec.Frame payload ->
          Shm.Ring.finish_msg c.rx;
          payload
      | Codec.Eof | Codec.Torn _ ->
          (* [pending] guaranteed a complete message; only header/ring
             corruption can land here. *)
          client_dead c;
          raise Conn.Closed
      | exception Codec.Malformed _ ->
          client_dead c;
          raise Conn.Closed)
  | `Empty ->
      if not (Shm.Seg.is_open c.seg) then (client_dead c; raise Conn.Closed);
      client_wait c ~ready:(fun () ->
          (match Shm.Ring.pending c.rx with `Empty -> false | _ -> true)
          || not (Shm.Seg.is_open c.seg));
      recv_reply c

let raw_call c req =
  if c.closed then raise Conn.Closed;
  Buffer.clear c.buf;
  Codec.encode_request c.buf req;
  let b = Buffer.to_bytes c.buf in
  Buffer.clear c.buf;
  send_bytes c b;
  let payload = recv_reply c in
  Codec.reply_of_payload payload

(* Materialize a by-reference GET reply from the client's own mapping.
   A failed generation check ([read_ref] = None) means the block was
   retired under us between mint and copy-out — never decoded, retried
   through the daemon-side copy path ([Getc]). *)
let materialize c z ~key = function
  | Codec.Val_ref { cls; off; len; gen } -> (
      match Shmalloc.Arena.read_ref z.za ~cls ~off ~len ~gen () with
      | Some payload -> Codec.reply_of_arena_payload payload
      | None -> raw_call c (Codec.Getc key))
  | r -> r

let call c req =
  match (req, c.zc) with
  | Codec.Get key, Some z ->
      Shmalloc.Arena.heartbeat z.za ~slot:z.z_slot;
      if z.z_held then
        (* A hold keeps the bracket (and its pinned era) open across
           calls — don't refresh, that is the point of the park. *)
        materialize c z ~key (raw_call c req)
      else begin
        Shmalloc.Arena.enter z.za ~slot:z.z_slot;
        Fun.protect
          ~finally:(fun () -> Shmalloc.Arena.leave z.za ~slot:z.z_slot)
        @@ fun () -> materialize c z ~key (raw_call c req)
      end
  | _ -> raw_call c req

let enable_zc c =
  match c.zc with
  | Some _ -> true
  | None -> (
      match raw_call c Codec.A_info with
      | Codec.Arena_info { slot; gen; size = _ } when slot >= 0 -> (
          match
            Shmalloc.Arena.attach ~path:(c.c_path ^ arena_suffix)
              ~expect_gen:gen ()
          with
          | a ->
              Shmalloc.Arena.announce a ~slot ~pid:(Unix.getpid ());
              c.zc <- Some { za = a; z_slot = slot; z_held = false };
              true
          | exception Shmalloc.Arena.Bad_arena _ -> false
          | exception Unix.Unix_error _ -> false)
      | _ -> false)

let zc_active c = c.zc <> None
let zc_slot c = match c.zc with Some z -> Some z.z_slot | None -> None

let zc_hold c =
  match c.zc with
  | Some z when not z.z_held ->
      Shmalloc.Arena.enter z.za ~slot:z.z_slot;
      z.z_held <- true
  | _ -> ()

let zc_release c =
  match c.zc with
  | Some z when z.z_held ->
      z.z_held <- false;
      Shmalloc.Arena.leave z.za ~slot:z.z_slot
  | _ -> ()

let close c =
  if not c.closed then begin
    client_dead c;
    (* Wake a daemon that may be asleep so it notices the close and
       sweeps the segment. *)
    Shm.Doorbell.ring c.srv_bell;
    Shm.Doorbell.close c.srv_bell
  end

(* ------------------------------------------------------------------ *)
(* Server. *)

type sconn = {
  sc_seg : Shm.Seg.t;
  sc_rx : Shm.Ring.t;  (* c2s: daemon reads *)
  sc_tx : Shm.Ring.t;  (* s2c: daemon writes *)
  sc_reader : Codec.reader;
  sc_bell : Shm.Doorbell.t;  (* daemon sleeps here; client rings *)
  sc_cli_bell : Shm.Doorbell.t;  (* client sleeps there; daemon rings *)
  sc_tid : int;
  (* Replies leave in request order: submissions enqueue one slot
     each, shard consumers fill them from their own domains, and only
     the head-of-queue slot may be emitted. *)
  sc_window : Codec.reply option Atomic.t Queue.t;
  sc_out : Buffer.t;
  mutable sc_pending_out : bytes option;
  mutable sc_dying : bool;
  (* Set when the client negotiated by-reference replies over [A_info]
     — only then may a GET be answered with a raw [Val_ref].  A client
     that never negotiated gets values materialized daemon-side, so
     arena references never leak to a peer with no mapping. *)
  mutable sc_zc : bool;
}

type server = {
  svc : Shard.t;
  path : string;
  listen_rd : Unix.file_descr;
  (* Holding our own write end keeps the FIFO's writer count nonzero,
     so a reader with no connecting clients sees EAGAIN (blockable in
     select) instead of a permanently-readable EOF. *)
  listen_wr : Unix.file_descr;
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  running : bool Atomic.t;
  (* True while the multiplexer is inside its announced sleep window;
     completion callbacks write the self-pipe only when set. *)
  mux_waiting : bool Atomic.t;
  completions : int Atomic.t;
  faults : Conn.Faults.t;
  ext : (Codec.request -> Codec.reply option) option;
  (* A zero-copy reader slot leased at serve time (None when the
     service was built with [zc_readers = 0]).  The multiplexer is one
     domain, so it can answer a GET inline — enter bracket, read the
     live map, leave — without the mailbox round trip, whenever the
     connection's reorder window is empty (all earlier operations
     already executed and answered, so per-client program order is
     preserved; cross-client consistency is the same bracket-licensed
     read the [Conn.Zerocopy] client path already provides). *)
  zc_slot : int option;
  mutable conns : sconn list;  (* multiplexer-owned *)
  acc_buf : Buffer.t;  (* partial announce lines *)
  mutable mux : unit Domain.t option;
  stopped : bool Atomic.t;
  (* Free producer-tid slots, leased per connection as on the socket
     path (transparent attach/detach). *)
  tids : int list Atomic.t;
}

let rec pop_tid srv =
  match Atomic.get srv.tids with
  | [] -> None
  | t :: rest as old ->
      if Atomic.compare_and_set srv.tids old rest then Some t else pop_tid srv

let rec push_tid srv t =
  let old = Atomic.get srv.tids in
  if not (Atomic.compare_and_set srv.tids old (t :: old)) then push_tid srv t

let sweep_stale_segments path =
  let dir = Filename.dirname path in
  let base = Filename.basename path ^ ".seg." in
  (* The previous daemon's arena file (SIGKILL leaves it behind, like
     the segments) is scoped the same way and swept with them. *)
  let arena_base = Filename.basename path ^ arena_suffix in
  let has_prefix p e =
    String.length e >= String.length p
    && String.sub e 0 (String.length p) = p
  in
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun e ->
          if
            (has_prefix base e && String.length e > String.length base)
            || has_prefix arena_base e
          then
            (* Bell FIFOs are unlinked via their owning segment name;
               hitting them directly too is harmless. *)
            try Unix.unlink (Filename.concat dir e)
            with Unix.Unix_error _ -> ())
        entries
  | exception Sys_error _ -> ()

(* Same probe discipline as [Conn.claim_socket_path]: a FIFO whose
   write end opens (someone is reading) belongs to a live daemon;
   ENXIO means stale — sweep it and any leftover segments. *)
let claim_listen_path path =
  if Sys.file_exists path then begin
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 with
    | fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise (Conn.Addr_in_use path)
    | exception Unix.Unix_error (Unix.ENXIO, _, _) ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        sweep_stale_segments path
    | exception Unix.Unix_error _ ->
        (* Not a FIFO (or unreadable): treat as stale. *)
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        sweep_stale_segments path
  end

let wake_mux srv =
  if Atomic.get srv.mux_waiting then
    try ignore (Unix.write srv.pipe_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
    -> ()

let drain_fd fd =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read fd b 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let kill_conn srv sc =
  if not sc.sc_dying then sc.sc_dying <- true;
  (* The connection's tid doubled as its arena reservation slot; a
     client that died inside its bracket (or mid-hold) leaves an era
     and possibly a handed batch list pinned there.  Force-clear it on
     the dead client's behalf before the slot is leased again. *)
  (match srv.svc.Shard.arena with
  | Some a -> (
      try Shmalloc.Arena.sweep_slot a ~slot:sc.sc_tid
      with Shmalloc.Arena.Bad_arena _ -> ())
  | None -> ());
  Shm.Seg.mark_closed sc.sc_seg;
  (* Wake a client blocked on its doorbell so it observes the close. *)
  Shm.Doorbell.ring sc.sc_cli_bell;
  Shm.Doorbell.close sc.sc_cli_bell;
  Shm.Doorbell.close sc.sc_bell;
  Shm.Seg.detach sc.sc_seg;
  Shm.Seg.unlink sc.sc_seg;
  (* Producer-side use of the tid happens only inside [pump] calls on
     this (the multiplexer) domain, so the slot is immediately safe to
     reuse — transparent detach, as on the socket path. *)
  push_tid srv sc.sc_tid

(* Emit as many in-order replies as the ring accepts.  Returns true on
   any progress. *)
let pump_out srv sc =
  let progress = ref false in
  let try_send_bytes b =
    let armed_truncate =
      (not (Conn.Faults.is_none srv.faults))
      && Conn.Faults.take_truncate_reply srv.faults
    in
    let armed_torn =
      (not armed_truncate)
      && (not (Conn.Faults.is_none srv.faults))
      && Conn.Faults.take_close_mid_frame srv.faults
    in
    if armed_truncate then Shm.Ring.arm_truncate sc.sc_tx 1;
    if armed_torn then Shm.Ring.arm_torn_stamp sc.sc_tx 1;
    let ok = Shm.Ring.try_send sc.sc_tx b ~pos:0 ~len:(Bytes.length b) in
    if ok && (armed_truncate || armed_torn) then
      (* Parity with the socket faults: a damaged reply costs the
         connection. *)
      sc.sc_dying <- true;
    ok
  in
  (match sc.sc_pending_out with
  | Some b ->
      if try_send_bytes b then begin
        sc.sc_pending_out <- None;
        progress := true
      end
  | None -> ());
  let continue = ref (sc.sc_pending_out = None) in
  while !continue do
    match Queue.peek_opt sc.sc_window with
    | None -> continue := false
    | Some slot -> (
        match Atomic.get slot with
        | None -> continue := false
        | Some reply ->
            Buffer.clear sc.sc_out;
            Codec.encode_reply sc.sc_out reply;
            let b = Buffer.to_bytes sc.sc_out in
            Buffer.clear sc.sc_out;
            ignore (Queue.pop sc.sc_window);
            if try_send_bytes b then progress := true
            else begin
              (* Ring full: park the encoded reply; order is preserved
                 because pending_out always flushes first. *)
              sc.sc_pending_out <- Some b;
              continue := false
            end)
  done;
  !progress

let handle_request srv sc payload =
  match Codec.request_of_payload payload with
  | exception Codec.Malformed m ->
      (* Answer, then drop the connection: the stream position cannot
         be trusted any more (same posture as the socket path). *)
      Queue.push (Atomic.make (Some (Codec.Error ("malformed: " ^ m)))) sc.sc_window;
      sc.sc_dying <- true
  | req -> (
      (* The extension handler (replication opcodes) answers before
         shard routing; [None] falls through to the data path. *)
      match (match srv.ext with Some h -> h req | None -> None) with
      | Some r -> Queue.push (Atomic.make (Some r)) sc.sc_window
      | None -> (
          (* On an arena-backed store, a GET may only be answered
             inline once the client has negotiated by-reference
             replies: the inline read returns the packed reference,
             and materializing it daemon-side belongs to the shard
             consumer (the mailbox path), not the multiplexer. *)
          let inline_ok =
            match srv.svc.Shard.arena with
            | None -> true
            | Some _ -> sc.sc_zc
          in
          match (req, srv.zc_slot) with
          | Codec.A_info, _ when srv.svc.Shard.arena <> None ->
              (* Transport-level interception: the shard's own answer
                 carries slot -1 (disclosure only); here we assign the
                 connection's tid as its reservation slot and flip the
                 connection into by-reference GET replies. *)
              let a = Option.get srv.svc.Shard.arena in
              sc.sc_zc <- true;
              let reply =
                Codec.Arena_info
                  {
                    slot = sc.sc_tid;
                    gen = Shmalloc.Arena.generation a;
                    size = Shmalloc.Arena.size_bytes a;
                  }
              in
              Queue.push (Atomic.make (Some reply)) sc.sc_window
          | Codec.Get key, Some zc
            when Queue.is_empty sc.sc_window && inline_ok ->
              (* The shm hot path: a bracketed read of the live map
                 from the multiplexer's own domain.  No mailbox, no
                 consumer wakeup, no syscall. *)
              srv.svc.Shard.zc_enter ~slot:zc;
              let v = srv.svc.Shard.zc_get ~slot:zc key in
              srv.svc.Shard.zc_leave ~slot:zc;
              let reply =
                match (v, srv.svc.Shard.arena) with
                | None, _ -> Codec.Not_found
                | Some r, Some a ->
                    (* The stored int IS the packed reference —
                       offset, length and generation stamp were read
                       in one atomic map load, so the frame can never
                       pair a fresh stamp with a stale block. *)
                    Codec.Val_ref
                      {
                        cls = Shmalloc.Arena.Ref.cls r;
                        off = Shmalloc.Arena.off_of_ref a r;
                        len = Shmalloc.Arena.Ref.len r;
                        gen = Shmalloc.Arena.Ref.gen r;
                      }
                | Some v, None -> Codec.Value v
              in
              Queue.push (Atomic.make (Some reply)) sc.sc_window
          | _ ->
              let slot = Atomic.make None in
              Queue.push slot sc.sc_window;
              srv.svc.Shard.submit ~tid:sc.sc_tid req (fun r ->
                  Atomic.set slot (Some r);
                  Atomic.incr srv.completions;
                  wake_mux srv)))

(* Drain request frames while the reorder window has room.  Returns
   true on any progress. *)
let pump_in srv sc =
  let progress = ref false in
  let continue = ref true in
  while !continue do
    if sc.sc_dying || Queue.length sc.sc_window >= window_cap then
      continue := false
    else
      match Shm.Ring.pending sc.sc_rx with
      | `Empty -> continue := false
      | `Torn _ ->
          (* The reader reports, never decodes damage: the connection
             dies, the client observes the closed segment. *)
          sc.sc_dying <- true;
          continue := false
      | `Msg plen when plen > Codec.max_frame ->
          (* A correctly-stamped frame over the codec limit is within
             the ring's [max_payload] but can never be a legal request
             — any same-uid ring writer can craft one (the stamp is a
             pure function of seq/len), so damage must cost the
             connection, not the multiplexer domain. *)
          sc.sc_dying <- true;
          continue := false
      | `Msg _ -> (
          if
            (not (Conn.Faults.is_none srv.faults))
            && Conn.Faults.take_delayed_read srv.faults
          then Unix.sleepf (Conn.Faults.delay_s srv.faults);
          match Codec.next_frame sc.sc_reader with
          | Codec.Frame payload ->
              Shm.Ring.finish_msg sc.sc_rx;
              progress := true;
              handle_request srv sc payload
          | Codec.Eof | Codec.Torn _ ->
              sc.sc_dying <- true;
              continue := false
          | exception Codec.Malformed _ ->
              sc.sc_dying <- true;
              continue := false)
  done;
  !progress

(* Only names our own connecting clients generate — the listen path
   plus the ".seg." infix and a slash-free suffix (the same predicate
   [sweep_stale_segments] uses).  Anything else in an announce line is
   ignored outright: the FIFO is same-uid writable, and acting on an
   arbitrary path would let any local writer direct the daemon to mmap
   or unlink files it has no business touching. *)
let valid_seg_path srv seg_path =
  let prefix = srv.path ^ ".seg." in
  let plen = String.length prefix in
  String.length seg_path > plen
  && String.sub seg_path 0 plen = prefix
  && not
       (String.contains
          (String.sub seg_path plen (String.length seg_path - plen))
          '/')

let attach_announced srv line =
  match String.split_on_char ' ' (String.trim line) with
  | [ seg_path; gen_s ] when valid_seg_path srv seg_path -> (
      match int_of_string_opt gen_s with
      | None -> Shm.Seg.unlink_path seg_path
      | Some gen -> (
          match Shm.Seg.attach ~path:seg_path ~expect_gen:gen () with
          | exception Shm.Seg.Bad_segment _ -> Shm.Seg.unlink_path seg_path
          | exception Unix.Unix_error _ -> Shm.Seg.unlink_path seg_path
          | seg -> (
              let tx = Shm.Seg.s2c_ring seg in
              let rx = Shm.Seg.c2s_ring seg in
              let cli_bell = Shm.Doorbell.attach ~path:(Shm.Seg.cli_bell seg) in
              let bell = Shm.Doorbell.attach ~path:(Shm.Seg.srv_bell seg) in
              match pop_tid srv with
              | None ->
                  (* Every client slot is leased: answer one Shed and
                     close — connection-level backpressure, as on the
                     socket path. *)
                  let out = Buffer.create 8 in
                  Codec.encode_reply out Codec.Shed;
                  let b = Buffer.to_bytes out in
                  ignore (Shm.Ring.try_send tx b ~pos:0 ~len:(Bytes.length b));
                  Shm.Doorbell.ring cli_bell;
                  Shm.Seg.mark_closed seg;
                  Shm.Doorbell.close cli_bell;
                  Shm.Doorbell.close bell;
                  Shm.Seg.detach seg;
                  Shm.Seg.unlink seg
              | Some tid ->
                  let sc =
                    {
                      sc_seg = seg;
                      sc_rx = rx;
                      sc_tx = tx;
                      sc_reader = Codec.frame_reader (Shm.Ring.source rx);
                      sc_bell = bell;
                      sc_cli_bell = cli_bell;
                      sc_tid = tid;
                      sc_window = Queue.create ();
                      sc_out = Buffer.create 64;
                      sc_pending_out = None;
                      sc_dying = false;
                      sc_zc = false;
                    }
                  in
                  srv.conns <- sc :: srv.conns)))
  | _ -> ()

let pump_listen srv =
  let b = Bytes.create 512 in
  let progress = ref false in
  let rec go () =
    match Unix.read srv.listen_rd b 0 512 with
    | 0 -> ()
    | n ->
        progress := true;
        Buffer.add_subbytes srv.acc_buf b 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  (* Split complete lines out of the accumulator. *)
  let s = Buffer.contents srv.acc_buf in
  (match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
      Buffer.clear srv.acc_buf;
      Buffer.add_string srv.acc_buf
        (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.iter (fun line -> if line <> "" then attach_announced srv line));
  !progress

let mux_iter srv spin =
  (* Baseline for the idle check below, taken BEFORE this pass's
     pumping: a completion that lands mid-pass (after its connection's
     pump_out, before we announce the sleep) must fail [still_idle],
     because its [wake_mux] may have seen [mux_waiting] still false
     and skipped the self-pipe. *)
  let completions_before = Atomic.get srv.completions in
  let progress = ref false in
  if pump_listen srv then progress := true;
    let live, dead =
      List.partition
        (fun sc ->
          let p_in = pump_in srv sc in
          let p_out = pump_out srv sc in
          if p_in || p_out then begin
            progress := true;
            (* Freed request-ring space and fresh replies both matter
               to a waiting client. *)
            if Shm.Seg.client_waiting sc.sc_seg then
              Shm.Doorbell.ring sc.sc_cli_bell
          end;
          let closed_by_peer = not (Shm.Seg.is_open sc.sc_seg) in
          let drained =
            sc.sc_dying && Queue.is_empty sc.sc_window
            && sc.sc_pending_out = None
          in
          not (closed_by_peer || drained))
        srv.conns
    in
    srv.conns <- live;
    List.iter (fun sc -> kill_conn srv sc) dead;
    if !progress then spin := 0
    else begin
      incr spin;
      if !spin < 50 then Domain.cpu_relax ()
      else begin
        (* Announce sleep on every channel, re-check, then block. *)
        spin := 0;
        List.iter (fun sc -> Shm.Seg.set_server_waiting sc.sc_seg true) srv.conns;
        Atomic.set srv.mux_waiting true;
        let still_idle =
          (not (pump_listen srv))
          && List.for_all
               (fun sc ->
                 (match Shm.Ring.pending sc.sc_rx with
                 | `Empty -> true
                 | _ -> false)
                 && Shm.Seg.is_open sc.sc_seg)
               srv.conns
          && Atomic.get srv.completions = completions_before
        in
        if still_idle && Atomic.get srv.running then begin
          let fds =
            srv.pipe_rd :: srv.listen_rd
            :: List.map (fun sc -> Shm.Doorbell.fd_rd sc.sc_bell) srv.conns
          in
          match Unix.select fds [] [] 0.05 with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end;
        Atomic.set srv.mux_waiting false;
        List.iter
          (fun sc ->
            Shm.Seg.set_server_waiting sc.sc_seg false;
            Shm.Doorbell.drain sc.sc_bell)
          srv.conns;
        drain_fd srv.pipe_rd;
        (* Idle housekeeping: clear reservation slots whose announced
           pid no longer exists — a SIGKILLed zero-copy client never
           runs its own [leave], and without this its pinned era would
           gate handoff batches forever. *)
        match srv.svc.Shard.arena with
        | Some a -> ignore (Shmalloc.Arena.sweep_dead a)
        | None -> ()
      end
    end

let mux_loop srv () =
  let spin = ref 0 in
  let strikes = ref 0 in
  while Atomic.get srv.running do
    (* Nothing may kill the multiplexer domain: every connection hangs
       off it, and a stored exception would otherwise hide until the
       Domain.join in shutdown.  Per-connection damage is already
       absorbed inside the pumps; anything that still escapes is a
       daemon-level fault — report it, and give up serving only if it
       repeats without a single clean pass in between. *)
    match mux_iter srv spin with
    | () -> strikes := 0
    | exception e ->
        incr strikes;
        Printf.eprintf "shm mux: unexpected %s\n%!" (Printexc.to_string e);
        if !strikes >= 100 then Atomic.set srv.running false
  done;
  (* Teardown (on the multiplexer domain, so connection state has a
     single owner to the end): stamp every segment closed, wake and
     drop every client, release their tids. *)
  List.iter (fun sc -> kill_conn srv sc) srv.conns;
  srv.conns <- []

let serve svc ~path ?(faults = Conn.Faults.none) ?ext () =
  Conn.ignore_sigpipe ();
  claim_listen_path path;
  Unix.mkfifo path 0o600;
  let listen_rd = Unix.openfile path [ Unix.O_RDONLY; Unix.O_NONBLOCK ] 0 in
  let listen_wr = Unix.openfile path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 in
  let pipe_rd, pipe_wr = Unix.pipe () in
  Unix.set_nonblock pipe_rd;
  Unix.set_nonblock pipe_wr;
  let srv =
    {
      svc;
      path;
      listen_rd;
      listen_wr;
      pipe_rd;
      pipe_wr;
      running = Atomic.make true;
      mux_waiting = Atomic.make false;
      completions = Atomic.make 0;
      faults;
      ext;
      zc_slot = svc.Shard.zc_lease ();
      conns = [];
      acc_buf = Buffer.create 256;
      mux = None;
      stopped = Atomic.make false;
      tids = Atomic.make (List.init svc.Shard.clients Fun.id);
    }
  in
  srv.mux <- Some (Domain.spawn (mux_loop srv));
  srv

let shutdown srv =
  if Atomic.compare_and_set srv.stopped false true then begin
    Atomic.set srv.running false;
    (try ignore (Unix.write srv.pipe_wr (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    (match srv.mux with
    | Some d ->
        Domain.join d;
        srv.mux <- None
    | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ srv.listen_rd; srv.listen_wr; srv.pipe_rd; srv.pipe_wr ];
    (match srv.zc_slot with
    | Some s -> srv.svc.Shard.zc_release s
    | None -> ());
    try Unix.unlink srv.path with Unix.Unix_error _ -> ()
  end

let faults srv = srv.faults
