(** Open- and closed-loop client pools for the KV service.

    Request streams are deterministic: client [tid] of a run seeded
    [s] draws from [Prims.Rng.create ~seed:(client_seed ~seed:s ~tid)]
    through {!gen_request}, so the n-th request of each client is a
    pure function of [(seed, tid, n)] — {!request_stream} reproduces
    it without running anything (the fixed-seed determinism test).

    Worker churn exercises the paper's transparency claim on the
    serving path: with [~churn_ops:n], each client slot runs its
    stream as a {e succession of short-lived domains} (a fresh OS
    thread every [n] requests, joined before the next starts), and no
    one registers or unregisters anything with the trackers — the tid
    slot is the only identity, reused the instant its previous owner
    is gone.

    Closed loop measures capacity (each client waits for its reply);
    open loop fixes the arrival rate regardless of replies, which is
    what pushes a backlogged shard into sustained shedding — the
    regime the SLO histogram and backpressure exist for. *)

type mix = { get_pct : int; put_pct : int; del_pct : int; cas_pct : int }
(** Percentages, must sum to 100. *)

val read_mostly : mix
(** 90 GET / 5 PUT / 3 DEL / 2 CAS — the service-shaped analogue of
    the paper's 90/10 mix. *)

val write_heavy : mix
(** 40 GET / 30 PUT / 20 DEL / 10 CAS. *)

type mode =
  | Closed  (** each client: submit, wait, repeat *)
  | Open of float  (** total arrival rate, requests/second, pool-wide *)

type result = {
  submitted : int;
  ops : int;  (** completed with a non-shed, non-error reply *)
  sheds : int;
  errors : int;
  wall : float;  (** measured window, seconds *)
  throughput : float;  (** completed ops per second *)
}

val client_seed : seed:int -> tid:int -> int

val gen_request : Prims.Rng.t -> dist:Workload.Keydist.t -> mix:mix -> Codec.request

val request_stream :
  seed:int -> tid:int -> dist:Workload.Keydist.t -> mix:mix -> n:int ->
  Codec.request list
(** The first [n] requests client [tid] of a [seed]ed run will issue —
    pure, no service needed. *)

val run :
  Shard.t ->
  mode:mode ->
  clients:int ->
  duration:float ->
  dist:Workload.Keydist.t ->
  mix:mix ->
  ?churn_ops:int ->
  seed:int ->
  unit ->
  result
(** Drive the service for [duration] seconds with [clients] worker
    slots (must be <= the service's client-slot count).  Latency lands
    in the service's own {!Slo}; this result carries the count/shed
    side.  @raise Invalid_argument on bad [clients]/[mix]/rate. *)
