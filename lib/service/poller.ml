type backend = [ `Auto | `Epoll | `Select ]

external epoll_available : unit -> bool = "kv_epoll_available" [@@noalloc]
external epoll_create : unit -> int = "kv_epoll_create"

external epoll_ctl_raw : int -> int -> Unix.file_descr -> int -> unit
  = "kv_epoll_ctl"

type events =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external epoll_wait_raw : int -> int -> events -> int = "kv_epoll_wait"
external epoll_close : int -> unit = "kv_epoll_close"
external fd_int : Unix.file_descr -> int = "kv_fd_int" [@@noalloc]

let available = epoll_available

type entry = {
  e_fd : Unix.file_descr;
  mutable e_read : bool;
  mutable e_write : bool;
}

type t =
  | Epoll of {
      ep : int;
      buf : events;
      (* raw fd -> registered interest; epoll results carry raw ints
         that must map back to the registered descriptor. *)
      tbl : (int, entry) Hashtbl.t;
    }
  | Select of { tbl : (int, entry) Hashtbl.t }

let interest_bits e = (if e.e_read then 1 else 0) lor if e.e_write then 2 else 0

let create (b : backend) =
  match b with
  | `Epoll ->
      if not (epoll_available ()) then
        failwith "Poller.create: epoll unavailable on this platform";
      Epoll
        {
          ep = epoll_create ();
          buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 512;
          tbl = Hashtbl.create 64;
        }
  | `Select -> Select { tbl = Hashtbl.create 64 }
  | `Auto ->
      if epoll_available () then
        Epoll
          {
            ep = epoll_create ();
            buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 512;
            tbl = Hashtbl.create 64;
          }
      else Select { tbl = Hashtbl.create 64 }

let name = function Epoll _ -> "epoll" | Select _ -> "select"

(* [Unix.select] fails with EINVAL for any descriptor whose {e value}
   is >= FD_SETSIZE (1024 on Linux/glibc) — a bound on fd numbers, not
   on how many are watched.  The select backend therefore refuses such
   fds at registration ([accepts] lets servers shed the connection
   instead of dying in the pump), and [max_fds] lets them clamp their
   accept limit below the wall with headroom for the process's other
   descriptors (WAL segments, listeners, pipes). *)
let fd_setsize = 1024

let accepts t fd =
  match t with Epoll _ -> true | Select _ -> fd_int fd < fd_setsize

let max_fds = function Epoll _ -> max_int | Select _ -> fd_setsize - 64

let add t fd ~read ~write =
  let e = { e_fd = fd; e_read = read; e_write = write } in
  match t with
  | Epoll { ep; tbl; _ } ->
      Hashtbl.replace tbl (fd_int fd) e;
      epoll_ctl_raw ep 0 fd (interest_bits e)
  | Select { tbl } ->
      if fd_int fd >= fd_setsize then
        invalid_arg "Poller.add: fd >= FD_SETSIZE on the select backend";
      Hashtbl.replace tbl (fd_int fd) e

let modify t fd ~read ~write =
  let key = fd_int fd in
  let tbl = match t with Epoll { tbl; _ } -> tbl | Select { tbl } -> tbl in
  match Hashtbl.find_opt tbl key with
  | None -> invalid_arg "Poller.modify: fd not registered"
  | Some e ->
      if e.e_read <> read || e.e_write <> write then begin
        e.e_read <- read;
        e.e_write <- write;
        match t with
        | Epoll { ep; _ } -> epoll_ctl_raw ep 1 fd (interest_bits e)
        | Select _ -> ()
      end

let remove t fd =
  let key = fd_int fd in
  match t with
  | Epoll { ep; tbl; _ } ->
      if Hashtbl.mem tbl key then begin
        Hashtbl.remove tbl key;
        (* The fd may already be closed (peer reset raced the close
           path); deregistration of a dead fd is not an error. *)
        try epoll_ctl_raw ep 2 fd 0 with Failure _ -> ()
      end
  | Select { tbl } -> Hashtbl.remove tbl key

let wait t ~timeout_ms f =
  match t with
  | Epoll { ep; buf; tbl } -> (
      match epoll_wait_raw ep timeout_ms buf with
      | -1 -> 0 (* EINTR: the caller's loop just comes around again *)
      | n ->
          for i = 0 to n - 1 do
            let packed = buf.{i} in
            let raw = packed lsr 2 in
            (* The entry may have been removed by an earlier callback
               in this same batch (one connection's error handling
               closing another); skip silently. *)
            match Hashtbl.find_opt tbl raw with
            | None -> ()
            | Some e ->
                f e.e_fd ~readable:(packed land 1 <> 0)
                  ~writable:(packed land 2 <> 0)
          done;
          n)
  | Select { tbl } -> (
      let rd = ref [] and wr = ref [] in
      Hashtbl.iter
        (fun _ e ->
          if e.e_read then rd := e.e_fd :: !rd;
          if e.e_write then wr := e.e_fd :: !wr)
        tbl;
      let timeout =
        if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0
      in
      match Unix.select !rd !wr [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* EBADF: a peer-closed fd raced deregistration; the owner
             notices on its next read.  EINVAL: an fd value crossed
             FD_SETSIZE despite the [add]-time gate (belt and braces —
             never fatal to the calling pump).  Report nothing this
             round. *)
          0
      | rds, wrs, _ ->
          let wrset = Hashtbl.create (List.length wrs) in
          List.iter (fun fd -> Hashtbl.replace wrset (fd_int fd) ()) wrs;
          let visited = Hashtbl.create 16 in
          List.iter
            (fun fd ->
              Hashtbl.replace visited (fd_int fd) ();
              f fd ~readable:true ~writable:(Hashtbl.mem wrset (fd_int fd)))
            rds;
          List.iter
            (fun fd ->
              if not (Hashtbl.mem visited (fd_int fd)) then
                f fd ~readable:false ~writable:true)
            wrs;
          List.length rds + List.length wrs)

let close t =
  match t with
  | Epoll { ep; tbl; _ } ->
      Hashtbl.reset tbl;
      epoll_close ep
  | Select { tbl } -> Hashtbl.reset tbl
