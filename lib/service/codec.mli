(** Wire protocol of the KV service: length-prefixed binary frames.

    A frame is a 4-byte big-endian payload length followed by the
    payload; a payload is a 1-byte opcode followed by fixed-width
    operands (8-byte big-endian two's-complement ints) — except
    {!reply-Error}, whose operand is the remaining payload as UTF-8.
    Requests and replies share the framing, so one decoder loop serves
    both directions; opcodes of replies have the high bit set.

    Everything here is pure bytes-in/bytes-out — the unix-socket and
    in-process loopback transports ({!Conn}) both go through these
    functions, so a loopback test exercises the exact bytes a remote
    client would put on the wire. *)

type mutation = Set of { key : int; value : int } | Unset of int
(** An {e applied} state change — what the WAL records and the
    replication stream carries.  Mutations are absolute (no CAS, no
    conditionals: a successful CAS logs as the [Set] it performed), so
    replay is idempotent — replaying a suffix of the log over a fuzzy
    snapshot converges to the primary's state. *)

type request =
  | Get of int
  | Put of { key : int; value : int }
  | Del of int
  | Cas of { key : int; expected : int; desired : int }
      (** Compare-and-set: replace [key]'s value with [desired] iff it
          is currently bound to [expected]. *)
  | Rep_info  (** Replication: ask for per-shard last committed seqs. *)
  | Rep_pull of { shard : int; from : int; max : int }
      (** Replication: committed records of [shard] with seq > [from],
          at most [min max rep_batch_max] of them. *)
  | Cl_info  (** Cluster: ask for the node's slot-ownership table. *)
  | Cl_grant of { slot : int; version : int; token : int }
      (** Cluster: the node becomes [slot]'s owner at table [version]
          (migration cutover, target side).  Persisted before the
          [Cl_ok] ack.  [token] is the source's handoff token for the
          slot (0 = none): the grantee remembers it and starts dirty
          tracking, so a later migration {e back} can ship only the
          keys mutated since this cutover. *)
  | Cl_freeze of { slot : int; target : int }
      (** Cluster: the node stops serving [slot] and redirects its
          data requests to [target] with {!reply-Moved} (migration
          cutover, source side).  Persisted before the ack — this
          write is the atomic cutover record. *)
  | Cl_release of { slot : int }
      (** Cluster: the source forgets a migrated slot (drops its
          snapshot cache; the redirect entry stays). *)
  | Cl_snap of { slot : int; shard : int; cursor : int; max : int; base : int }
      (** Cluster: one page of a bracket-protected live snapshot of
          the node's local [shard], restricted to keys of [slot].
          [cursor = 0] starts a fresh traversal (stamped with the
          shard's committed WAL seq {e before} traversing); later
          cursors page the cached result.  [base] (0 = none) is the
          handoff token the {e destination} holds for the slot: when
          it matches the token this node acquired the slot under — and
          dirty tracking has not overflowed — the node serves a {e
          delta}: only keys mutated since that cutover, deletions as
          tombstones ({!reply-Cl_snap_batch}[.delta] is then true). *)
  | Cl_apply of { records : (int * mutation) list }
      (** Cluster: apply absolute mutations through the node's normal
          submit path regardless of slot ownership — the migration
          ingest op (snapshot bootstrap and WAL catch-up both ship
          through it).  Acked with {!reply-Cl_ok} only once every
          record is applied {e and} WAL-durable. *)
  | Cl_base of { slot : int }
      (** Cluster: ask for the node's handoff token for [slot]
          (answered with {!reply-Cl_token}; 0 = the node never handed
          the slot off, or forgot across a reboot).  The migration
          driver asks the {e destination} before shipping, to learn
          whether a delta ship is possible, and the {e source} after a
          freeze, to learn the token to thread into [Cl_grant]. *)
  | Cl_purge of { slot : int }
      (** Cluster: delete every local binding of [slot], through the
          normal WAL-durable apply path.  The driver fires this at the
          destination before a {e full} ship so stale residue from a
          previous ownership tenure cannot survive as resurrected
          keys (a full ship only overwrites keys the source still
          has). *)
  | Putb of { key : int; value : string }
      (** Bind [key] to raw bytes (at most {!blob_max}).  Requires an
          arena-backed store; heap-backed daemons answer [Error].
          Not WAL-composable — {!mutation_of_exec} returns [None]. *)
  | Getc of int
      (** Copy-forced GET: always answered through the value-copy
          path ([Value]/[Value_blob]), never by reference.  Zero-copy
          clients retry through this op when a {!reply-Val_ref}
          fails its generation check. *)
  | A_info
      (** Arena handshake: ask whether the daemon serves values from
          a shared arena (answered with {!reply-Arena_info}).  On the
          shm transport a non-negative slot also opts this connection
          into by-reference GET replies. *)

type reply =
  | Value of int  (** GET hit *)
  | Value_blob of string  (** GET hit on a byte-valued binding *)
  | Val_ref of { cls : int; off : int; len : int; gen : int }
      (** Zero-copy GET hit: the value lives in the shared arena at
          byte offset [off] of size class [cls], [len] payload bytes,
          minted while generation stamp [gen] (22 bits) was current.
          The client copies the bytes out of its own mapping and
          re-validates the stamp; on mismatch it retries with
          {!request-Getc}.  Only sent to connections that negotiated
          an arena slot via {!request-A_info}. *)
  | Arena_info of { slot : int; gen : int; size : int }
      (** [A_info] answer: the connection's reservation slot in the
          arena header ([-1] = no arena / not shm), the arena file's
          generation stamp to validate attach against, and its size
          in bytes. *)
  | Not_found  (** GET/DEL miss, or CAS on an unbound key *)
  | Created  (** PUT bound a fresh key *)
  | Updated  (** PUT replaced an existing binding *)
  | Deleted  (** DEL removed the binding *)
  | Cas_ok
  | Cas_fail  (** bound, but not to [expected] *)
  | Shed
      (** Load-shed: the target shard's mailbox was full; the request
          was {e not} executed.  Clients should back off and retry. *)
  | Error of string  (** malformed request, server-side failure *)
  | Rep_state of int array  (** per-shard last committed seq *)
  | Rep_batch of { last : int; records : (int * mutation) list }
      (** [records] are [(seq, mutation)] in seq order; [last] is the
          shard's last committed seq at answer time, so
          [last - applied] is the follower's lag in frames. *)
  | Moved of { slot : int; node : int }
      (** Cluster redirect: the key's [slot] is served by [node] —
          retry there.  The request was {e not} executed. *)
  | Cl_state of { version : int; node : int; owners : int array }
      (** [Cl_info] answer: [owners.(slot)] is the node id responsible
          for [slot], as this [node] currently believes at table
          [version]. *)
  | Cl_snap_batch of {
      seq : int;
      next : int;
      kvs : (int * int) list;
      tombs : int list;
      delta : bool;
    }
      (** One [Cl_snap] page: [seq] is the WAL seq the traversal was
          stamped with (catch-up pulls resume after it), [next] the
          cursor for the following page ([-1] = done).  [delta] marks
          a delta-mode traversal; [tombs] are keys deleted since the
          delta's base cutover (always empty in full mode). *)
  | Cl_ok  (** Cluster control op acknowledged. *)
  | Cl_token of { token : int }  (** [Cl_base] answer (0 = no token). *)

exception Malformed of string
(** Raised by the decoders on truncated/unknown payloads. *)

val max_frame : int
(** Upper bound on accepted payload length (sanity limit; a length
    prefix beyond it is treated as a framing error). *)

val encode_request : Buffer.t -> request -> unit
(** Append one framed request (length prefix included). *)

val encode_reply : Buffer.t -> reply -> unit

val request_of_payload : bytes -> request
(** Decode a frame payload (no length prefix).  @raise Malformed *)

val reply_of_payload : bytes -> reply
(** @raise Malformed *)

val request_to_string : request -> string
(** ["GET 7"], ["CAS 7 1->2"], ... for logs and error messages. *)

val reply_to_string : reply -> string

val key_of_request : request -> int
(** The key the request addresses — what the shard router hashes.
    Replication requests return 0; they are answered before routing
    (the transport's [ext] handler) and rejected by the shard
    executor if they slip past it. *)

val mutation_of_exec : request -> reply -> mutation option
(** The applied state change witnessed by an executed (request, reply)
    pair — what the durability hook appends to the WAL.  [None] for
    reads, misses, failed CASes, sheds and errors. *)

val mutation_to_string : mutation -> string

val rep_batch_max : int
(** Hard cap on records per {!reply-Rep_batch} so the reply fits
    {!max_frame}. *)

val cl_apply_max : int
(** Hard cap on records per {!request-Cl_apply} (equals
    {!rep_batch_max}, so a pulled batch re-ships as one frame). *)

val cl_snap_max : int
(** Hard cap on bindings per {!reply-Cl_snap_batch}. *)

val blob_max : int
(** Hard cap on the byte length of a {!request-Putb} value /
    {!reply-Value_blob} so the frame stays inside {!max_frame}. *)

(** {2 Arena payload convention}

    An arena-backed store keeps every value as raw bytes in the
    shared mapping; byte 0 tags the kind (0 = int in 8-byte
    big-endian, 1 = blob).  Int traffic therefore stays
    reply-identical between heap-backed and arena-backed daemons,
    and a zero-copy client materializing a {!reply-Val_ref} decodes
    exactly what the daemon's copy path would have sent. *)

val arena_payload_int : int -> string
val arena_payload_blob : string -> string

val arena_payload_int_value : string -> int option
(** The int behind an int-kind payload, [None] for blobs or
    malformed bytes (CAS compares only int values). *)

val reply_of_arena_payload : string -> reply
(** [Value]/[Value_blob] for well-formed payloads, [Error]
    otherwise. *)

(** {2 Checksummed durable records}

    WAL records and snapshot frames use the same 4-byte length framing
    as the wire, with a trailing CRC32 over the payload body so torn
    or bit-rotted bytes are detectable on replay. *)

val crc32 : string -> pos:int -> len:int -> int
(** IEEE-802.3 (zlib) CRC32 of the byte range, in [[0, 2^32)]. *)

val encode_wal_record : Buffer.t -> seq:int -> mutation -> unit
(** One framed log record: [kind, seq, key(, value), CRC32]. *)

val decode_wal_record : bytes -> int * mutation
(** Decode and CRC-check one record payload.  @raise Malformed on any
    damage — the message includes the record's seq field (read
    best-effort) so recovery errors name the damaged record. *)

val encode_snap_head : Buffer.t -> seq:int -> count:int -> unit
(** Snapshot header frame: the WAL seq the snapshot is stamped with
    (replay resumes at [seq + 1]) and the number of binding frames
    that follow. *)

val decode_snap_head : bytes -> int * int
(** [(seq, count)].  @raise Malformed *)

val encode_snap_kv : Buffer.t -> key:int -> value:int -> unit
val decode_snap_kv : bytes -> int * int

val encode_snap_delta_head :
  Buffer.t -> from:int -> seq:int -> sets:int -> tombs:int -> unit
(** Delta snapshot header frame: [from] is the stamp of the chain
    entry this delta extends (strictly checked by the loader), [seq]
    the new chain tip, then the number of binding and tombstone frames
    that follow. *)

val decode_snap_delta_head : bytes -> int * int * int * int
(** [(from, seq, sets, tombs)].  @raise Malformed *)

val encode_snap_tomb : Buffer.t -> key:int -> unit
(** Delta tombstone frame: [key] was deleted since the delta's
    [from] stamp. *)

val decode_snap_tomb : bytes -> int
(** @raise Malformed *)

(** {2 Streaming frame reading}

    The one frame loop shared by the socket transport ({!Conn}) and
    WAL/snapshot replay, over any pull source. *)

type source = bytes -> int -> int -> int
(** [read buf off len] fills up to [len] bytes at [off] and returns
    the count; 0 means end of stream (the [Unix.read] shape). *)

type frame =
  | Frame of bytes  (** one complete payload, length prefix stripped *)
  | Eof  (** source ended exactly at a frame boundary *)
  | Torn of { got : int }
      (** source ended {e inside} a frame with [got] of its bytes
          (prefix included) present — a torn final record on disk, a
          peer hanging up mid-frame on a socket *)

type reader
(** A persistent frame decoder over one source: the length-prefix
    scan, shared by the socket transport, the shared-memory ring
    (whose source may deliver a frame in two chunks around the ring
    boundary), and WAL/snapshot replay.  Holds a reusable header
    scratch so steady-state decoding costs one payload allocation per
    frame and no staging copies. *)

val frame_reader : ?max_frame:int -> source -> reader

val next_frame : reader -> frame
(** Decode the next frame.  @raise Malformed on an out-of-bounds
    length prefix. *)

val read_frame_from : ?max_frame:int -> source -> frame
(** One-shot {!next_frame} over a throwaway reader.  @raise Malformed
    on an out-of-bounds length prefix. *)

val fold_frames : ?max_frame:int -> source -> ('a -> bytes -> 'a) -> 'a -> 'a * int option
(** Fold [f] over every complete frame payload.  The second component
    signals the tail explicitly: [None] = the source ended cleanly at
    a frame boundary; [Some got] = it ended inside a final frame with
    [got] bytes of it present (torn tail — WAL recovery truncates
    exactly these bytes).  @raise Malformed as {!read_frame_from}. *)

val string_source : string -> source
(** Source over an in-memory byte string (WAL/snapshot replay). *)
