(** Wire protocol of the KV service: length-prefixed binary frames.

    A frame is a 4-byte big-endian payload length followed by the
    payload; a payload is a 1-byte opcode followed by fixed-width
    operands (8-byte big-endian two's-complement ints) — except
    {!reply-Error}, whose operand is the remaining payload as UTF-8.
    Requests and replies share the framing, so one decoder loop serves
    both directions; opcodes of replies have the high bit set.

    Everything here is pure bytes-in/bytes-out — the unix-socket and
    in-process loopback transports ({!Conn}) both go through these
    functions, so a loopback test exercises the exact bytes a remote
    client would put on the wire. *)

type request =
  | Get of int
  | Put of { key : int; value : int }
  | Del of int
  | Cas of { key : int; expected : int; desired : int }
      (** Compare-and-set: replace [key]'s value with [desired] iff it
          is currently bound to [expected]. *)

type reply =
  | Value of int  (** GET hit *)
  | Not_found  (** GET/DEL miss, or CAS on an unbound key *)
  | Created  (** PUT bound a fresh key *)
  | Updated  (** PUT replaced an existing binding *)
  | Deleted  (** DEL removed the binding *)
  | Cas_ok
  | Cas_fail  (** bound, but not to [expected] *)
  | Shed
      (** Load-shed: the target shard's mailbox was full; the request
          was {e not} executed.  Clients should back off and retry. *)
  | Error of string  (** malformed request, server-side failure *)

exception Malformed of string
(** Raised by the decoders on truncated/unknown payloads. *)

val max_frame : int
(** Upper bound on accepted payload length (sanity limit; a length
    prefix beyond it is treated as a framing error). *)

val encode_request : Buffer.t -> request -> unit
(** Append one framed request (length prefix included). *)

val encode_reply : Buffer.t -> reply -> unit

val request_of_payload : bytes -> request
(** Decode a frame payload (no length prefix).  @raise Malformed *)

val reply_of_payload : bytes -> reply
(** @raise Malformed *)

val request_to_string : request -> string
(** ["GET 7"], ["CAS 7 1->2"], ... for logs and error messages. *)

val reply_to_string : reply -> string

val key_of_request : request -> int
(** The key the request addresses — what the shard router hashes. *)
