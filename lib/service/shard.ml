(* Durability tap on the consumer's execution path.  The disabled
   state is the distinguished [no_hook] instance, recognized by
   physical equality before anything else — the same
   zero-cost-when-off discipline as [Conn.Faults.none] /
   [Obs.Probe.is_noop] (measured in bench/main.ml, replica rows). *)
type ack_hook = {
  h_mutation : shard:int -> Codec.mutation -> unit;
  h_commit : shard:int -> unit;
}

let no_hook = { h_mutation = (fun ~shard:_ _ -> ()); h_commit = (fun ~shard:_ -> ()) }

(* Execution-time admission filter, same zero-cost-when-off shape.
   Unlike a transport-side check, this one runs on the consumer — in
   the same serial stream as the requests it judges — so a verdict
   cannot be stale by the time the request executes (the cluster's
   cutover-atomicity hinge: an ownership freeze that reaches the
   consumer before a request is executed is always seen by that
   request's check). *)
type admit = tid:int -> Codec.request -> Codec.reply option

let admit_all : admit = fun ~tid:_ _ -> None

type config = {
  shards : int;
  clients : int;
  mailbox_capacity : int;
  batch : int;
  trim_every : int;
  smr : Smr.Config.t;
  objectives : Slo.objective list;
  seed : int;
  hook : ack_hook;
  zc_readers : int;
  (* When set, values live as blocks in this shared arena and the map
     stores packed references ([Shmalloc.Arena.Ref]) instead of
     values; the shm mux may then answer remote GETs by reference.
     The arena is owned by the caller (created beside the listen
     path, torn down after [stop]). *)
  arena : Shmalloc.Arena.t option;
}

let default_config =
  {
    shards = 4;
    clients = 8;
    mailbox_capacity = 256;
    batch = 64;
    trim_every = 16;
    smr = Smr.Config.default;
    objectives = [];
    seed = 2024;
    hook = no_hook;
    zc_readers = 0;
    arena = None;
  }

type t = {
  submit : tid:int -> Codec.request -> (Codec.reply -> unit) -> unit;
  nshards : int;
  clients : int;
  shard_of_key : int -> int;
  shard_depth : int -> int;
  sheds : unit -> int;
  processed : unit -> int;
  slo : Slo.t;
  batch_hist : Obs.Hist.t;
  gauges : unit -> (string * int) list;
  control_stats : unit -> Smr.Stats.t;
  data_stats : unit -> Smr.Stats.t list;
  set_stalled : shard:int -> bool -> unit;
  is_stalled : int -> bool;
  is_parked : int -> bool;
  crash : shard:int -> unit;
  recover : shard:int -> unit;
  consumer_alive : int -> bool;
  heartbeat : int -> int;
  inject_oom : shard:int -> n:int -> unit;
  snapshot : shard:int -> gate:(int -> unit) -> (int * int) list;
  snapshot_keys :
    shard:int -> keys:int list -> gate:(int -> unit) -> (int * int option) list;
  zc_readers : int;
  zc_lease : unit -> int option;
  zc_release : int -> unit;
  zc_enter : slot:int -> unit;
  zc_leave : slot:int -> unit;
  zc_get : slot:int -> int -> int option;
  arena : Shmalloc.Arena.t option;
  set_admit : admit -> unit;
  stop : unit -> unit;
  scheme_name : string;
  structure_name : string;
}

type env = {
  req : Codec.request;
  tid : int;  (* producing tid, for the admission filter's exemptions *)
  born_ns : int;
  reply : Codec.reply -> unit;
}

(* SplitMix-style finalizer (truncated to OCaml's 63-bit ints):
   adjacent hot keys (Zipf ranks 0,1,2…) must not land on one shard. *)
let mix_key k =
  let h = k * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 32)) land max_int

module Core (T : Smr.Tracker.S) (Mk : Dstruct.Map_intf.MAKER) = struct
  module Map = Mk (T)
  module MB = Mailbox.Make (T)

  type shard = {
    idx : int;
    map : Map.t;
    mailbox : env MB.t;
    stall_flag : bool Atomic.t;
    (* Set by the consumer while it is spinning inside its stall
       bracket: lets a fault injector wait for the park to be
       effective (mailbox guaranteed undrained from here on). *)
    parked : bool Atomic.t;
    (* Chaos: when set, the consumer takes a control-plane reservation
       and terminates without leaving it — the paper's §2.3 dead
       thread.  [dead] records that the bracket is abandoned until
       [recover] force-exits it. *)
    crash_flag : bool Atomic.t;
    dead : bool Atomic.t;
    (* Bumped once per consumer loop iteration; freezes exactly when
       the consumer stalls or dies (the reaper's detection signal). *)
    heartbeat : int Atomic.t;
    shard_processed : int Atomic.t;
    (* At most one snapshot reader holds the map's tid-1 bracket. *)
    snap_busy : bool Atomic.t;
    mutable consumer : unit Domain.t option;
  }

  (* Arena-backed execution: the map stores packed references, the
     bytes live in the shared mapping.  The consumer is each block's
     only retirer (it is the map's only mutator), which is what makes
     [read_own] safe without a stamp check and the retire-time
     generation bump a plain store. *)
  let arena_exec a ~idx map (req : Codec.request) : Codec.reply =
    let tid = 0 in
    let module Arena = Shmalloc.Arena in
    let put_payload key payload =
      match Arena.alloc_put a payload with
      | None -> Codec.Error "arena full"
      | Some r -> (
          let old = Map.get map ~tid key in
          ignore (Map.put map ~tid key r);
          match old with
          | Some old_r ->
              Arena.retire a ~tid:idx old_r;
              Codec.Updated
          | None -> Codec.Created)
    in
    match req with
    | Codec.Get k | Codec.Getc k -> (
        match Map.get map ~tid k with
        | Some r -> Codec.reply_of_arena_payload (Arena.read_own a r)
        | None -> Codec.Not_found)
    | Codec.Put { key; value } -> put_payload key (Codec.arena_payload_int value)
    | Codec.Putb { key; value } ->
        if String.length value > Codec.blob_max then
          Codec.Error "value too large"
        else put_payload key (Codec.arena_payload_blob value)
    | Codec.Del k -> (
        match Map.get map ~tid k with
        | None -> Codec.Not_found
        | Some r ->
            ignore (Map.remove map ~tid k);
            Arena.retire a ~tid:idx r;
            Codec.Deleted)
    | Codec.Cas { key; expected; desired } -> (
        match Map.get map ~tid key with
        | None -> Codec.Not_found
        | Some r -> (
            match Codec.arena_payload_int_value (Arena.read_own a r) with
            | Some v when v = expected -> (
                match Arena.alloc_put a (Codec.arena_payload_int desired) with
                | None -> Codec.Error "arena full"
                | Some nr ->
                    ignore (Map.put map ~tid key nr);
                    Arena.retire a ~tid:idx r;
                    Codec.Cas_ok)
            | _ -> Codec.Cas_fail))
    | Codec.A_info ->
        (* Slot assignment is transport business (the shm mux answers
           this before routing); through any other path the daemon
           only discloses that an arena exists. *)
        Codec.Arena_info
          { slot = -1; gen = Arena.generation a; size = Arena.size_bytes a }
    | Codec.Rep_info | Codec.Rep_pull _ ->
        Codec.Error "replication not enabled on this server"
    | Codec.Cl_info | Codec.Cl_grant _ | Codec.Cl_freeze _ | Codec.Cl_release _
    | Codec.Cl_snap _ | Codec.Cl_apply _ | Codec.Cl_base _ | Codec.Cl_purge _
      ->
        Codec.Error "clustering not enabled on this server"

  let exec ~arena ~idx map (req : Codec.request) : Codec.reply =
    match arena with
    | Some a -> arena_exec a ~idx map req
    | None -> (
        let tid = 0 in
        match req with
        | Codec.Get k | Codec.Getc k -> (
            match Map.get map ~tid k with
            | Some v -> Codec.Value v
            | None -> Codec.Not_found)
        | Codec.Put { key; value } ->
            if Map.put map ~tid key value then Codec.Created else Codec.Updated
        | Codec.Del k ->
            if Map.remove map ~tid k then Codec.Deleted else Codec.Not_found
        | Codec.Cas { key; expected; desired } -> (
            (* The consumer is this map's only mutator, so the
               read-test-write below is atomic by construction. *)
            match Map.get map ~tid key with
            | None -> Codec.Not_found
            | Some v when v <> expected -> Codec.Cas_fail
            | Some _ ->
                ignore (Map.put map ~tid key desired);
                Codec.Cas_ok)
        | Codec.Putb _ -> Codec.Error "arena not enabled on this server"
        | Codec.A_info -> Codec.Arena_info { slot = -1; gen = 0; size = 0 }
        | Codec.Rep_info | Codec.Rep_pull _ ->
            (* Replication opcodes are answered by the transport's [ext]
               handler (Conn) before shard routing; reaching the data path
               means the daemon has no replication enabled. *)
            Codec.Error "replication not enabled on this server"
        | Codec.Cl_info | Codec.Cl_grant _ | Codec.Cl_freeze _
        | Codec.Cl_release _ | Codec.Cl_snap _ | Codec.Cl_apply _
        | Codec.Cl_base _ | Codec.Cl_purge _ ->
            (* Likewise for the cluster-control opcodes (Cluster.Node's
               [ext] handler). *)
            Codec.Error "clustering not enabled on this server")

  let make ~scheme_name ~structure_name (c : config) : t =
    if c.shards <= 0 then invalid_arg "Shard.create: shards <= 0";
    if c.clients <= 0 then invalid_arg "Shard.create: clients <= 0";
    if c.batch <= 0 then invalid_arg "Shard.create: batch <= 0";
    if c.trim_every <= 0 then invalid_arg "Shard.create: trim_every <= 0";
    if c.zc_readers < 0 then invalid_arg "Shard.create: zc_readers < 0";
    let ctl_cfg = { c.smr with Smr.Config.nthreads = c.clients + c.shards } in
    let ctl_tracker = T.create ctl_cfg in
    (* Each map's operating threads: its consumer (tid 0, the only
       mutator), at most one snapshot reader (tid 1, a read-only
       bracket-held traversal), and [zc_readers] zero-copy client
       slots (tids 2..) that read the live map from {e outside} the
       consumer, each inside its own enter/leave bracket. *)
    let map_cfg = { c.smr with Smr.Config.nthreads = 2 + c.zc_readers } in
    let running = Atomic.make true in
    let stopped = Atomic.make false in
    let sheds = Atomic.make 0 in
    let slo = Slo.create ~objectives:c.objectives () in
    let batch_hist = Obs.Hist.create () in
    let shards =
      Array.init c.shards (fun idx ->
          {
            idx;
            map = Map.create ~seed:(c.seed + idx) ~cfg:map_cfg ();
            mailbox =
              MB.create ~tracker:ctl_tracker ~cfg:ctl_cfg
                ~capacity:c.mailbox_capacity ();
            stall_flag = Atomic.make false;
            parked = Atomic.make false;
            crash_flag = Atomic.make false;
            dead = Atomic.make false;
            heartbeat = Atomic.make 0;
            shard_processed = Atomic.make 0;
            snap_busy = Atomic.make false;
            consumer = None;
          })
    in
    let shard_of_key k = mix_key k mod c.shards in
    let admit_cell = Atomic.make admit_all in
    let run_batch sh batch =
      (* One filter read per drained run: the filter is installed once
         at wiring time (before traffic), never swapped under load. *)
      let adm = Atomic.get admit_cell in
      let exec_env env =
        if adm == admit_all then exec ~arena:c.arena ~idx:sh.idx sh.map env.req
        else
          match adm ~tid:env.tid env.req with
          | Some r -> r
          | None -> exec ~arena:c.arena ~idx:sh.idx sh.map env.req
      in
      Obs.Hist.add batch_hist (List.length batch);
      (* One bracket per drained run — enter/leave amortized across
         the batch, reservation refreshed with the cheaper trim
         (Figure 10b's discipline) so a long run does not pin its own
         early retirements for the whole bracket. *)
      Map.enter sh.map ~tid:0;
      if c.hook == no_hook then begin
        (* No durability tap: reply inline, as ever. *)
        let i = ref 0 in
        List.iter
          (fun env ->
            incr i;
            if !i mod c.trim_every = 0 then Map.trim sh.map ~tid:0;
            let reply =
              try exec_env env
              with e -> Codec.Error (Printexc.to_string e)
            in
            Atomic.incr sh.shard_processed;
            Slo.record slo ~ns:(Obs.Clock.now_ns () - env.born_ns);
            env.reply reply)
          batch;
        Map.leave sh.map ~tid:0
      end
      else begin
        (* Group commit: execute the whole drained run, feeding every
           applied mutation to the hook, then make the run durable
           with ONE h_commit — the same amortization the bracket buys
           for reservations, applied to the fsync — and only then fire
           the acks.  An ack therefore always implies durability.  If
           h_commit (or the tap) raises, nothing of this run is acked
           and the exception propagates: the consumer dies as a
           crashed primary, never acking what is not on disk. *)
        let acked = ref [] in
        (try
           let i = ref 0 in
           List.iter
             (fun env ->
               incr i;
               if !i mod c.trim_every = 0 then Map.trim sh.map ~tid:0;
               let reply =
                 try exec_env env
                 with e -> Codec.Error (Printexc.to_string e)
               in
               (match Codec.mutation_of_exec env.req reply with
               | Some m -> c.hook.h_mutation ~shard:sh.idx m
               | None -> ());
               Atomic.incr sh.shard_processed;
               acked := (env, reply) :: !acked)
             batch
         with e ->
           Map.leave sh.map ~tid:0;
           raise e);
        Map.leave sh.map ~tid:0;
        c.hook.h_commit ~shard:sh.idx;
        List.iter
          (fun (env, reply) ->
            Slo.record slo ~ns:(Obs.Clock.now_ns () - env.born_ns);
            env.reply reply)
          (List.rev !acked)
      end
    in
    let consumer sh () =
      let qtid = c.clients + sh.idx in
      let idle = ref 0 in
      let crashed = ref false in
      while Atomic.get running && not !crashed do
        Atomic.incr sh.heartbeat;
        if Atomic.get sh.crash_flag then begin
          (* Die mid-bracket: take a control-plane reservation and
             terminate without leaving it.  The heartbeat freezes
             here; queued requests stay queued; the reservation pins
             everything retired after it until [recover] force-exits
             the bracket — the paper's §2.3 dead-thread adversary. *)
          T.enter ctl_tracker ~tid:qtid;
          crashed := true
        end
        else begin
          if Atomic.get sh.stall_flag then begin
            (* Park inside a control-plane bracket: a reservation that
               never advances while the other shards keep mailing —
               the paper's stalled adversary, aimed at our own
               plumbing. *)
            T.enter ctl_tracker ~tid:qtid;
            Atomic.set sh.parked true;
            while
              Atomic.get sh.stall_flag
              && Atomic.get running
              && not (Atomic.get sh.crash_flag)
            do
              Domain.cpu_relax ()
            done;
            Atomic.set sh.parked false;
            T.leave ctl_tracker ~tid:qtid
          end;
          match MB.drain sh.mailbox ~tid:qtid ~max:c.batch with
          | [] ->
              incr idle;
              (* Briefly spin, then sleep: on an oversubscribed core a
                 hot empty-poll loop would starve the producers that
                 would fill this mailbox. *)
              if !idle > 64 then begin
                Unix.sleepf 0.0002;
                idle := 0
              end
              else Domain.cpu_relax ()
          | batch -> (
              idle := 0;
              try run_batch sh batch
              with _ ->
                (* The durability hook died mid-commit (torn write,
                   full disk, injected crash): the run's acks are
                   forfeit — they were never durable — and this
                   consumer becomes a dead primary shard.  Same
                   posture as [crash_flag]: take a control-plane
                   reservation, freeze the heartbeat, terminate.
                   Queued and un-acked requests stay unanswered until
                   [recover]/[stop], exactly like a process kill. *)
                T.enter ctl_tracker ~tid:qtid;
                Atomic.set sh.crash_flag true;
                Atomic.set sh.dead true;
                crashed := true)
        end
      done;
      if not !crashed then begin
        (* Fail whatever is still queued so no submitter waits
           forever. *)
        List.iter
          (fun env -> env.reply (Codec.Error "service stopped"))
          (MB.drain sh.mailbox ~tid:qtid ~max:max_int);
        MB.flush sh.mailbox ~tid:qtid
      end
    in
    Array.iter (fun sh -> sh.consumer <- Some (Domain.spawn (consumer sh))) shards;
    let submit ~tid req reply =
      if not (Atomic.get running) then reply (Codec.Error "service stopped")
      else begin
        let sh = shards.(shard_of_key (Codec.key_of_request req)) in
        let env = { req; tid; born_ns = Obs.Clock.now_ns (); reply } in
        if not (MB.try_send sh.mailbox ~tid env) then begin
          Atomic.incr sheds;
          reply Codec.Shed
        end
      end
    in
    let processed () =
      Array.fold_left (fun a sh -> a + Atomic.get sh.shard_processed) 0 shards
    in
    let crash ~shard =
      let sh = shards.(shard) in
      if Atomic.get sh.dead then
        invalid_arg "Shard.crash: consumer already crashed";
      Atomic.set sh.crash_flag true;
      (* Join so death is synchronous: when [crash] returns, the
         consumer domain is gone and its control-plane bracket is
         provably abandoned — a deterministic starting point for
         whatever the caller injects next. *)
      (match sh.consumer with
      | Some d ->
          Domain.join d;
          sh.consumer <- None
      | None -> ());
      Atomic.set sh.dead true
    in
    let recover ~shard =
      let sh = shards.(shard) in
      if not (Atomic.get sh.dead) then
        invalid_arg "Shard.recover: consumer is not crashed";
      let qtid = c.clients + sh.idx in
      (* A consumer that died from a durability-hook failure (rather
         than [crash]) terminated on its own: join it here so nothing
         races on the tid's scheme state below. *)
      (match sh.consumer with
      | Some d ->
          Domain.join d;
          sh.consumer <- None
      | None -> ());
      (* Force-exit the abandoned bracket on behalf of the dead
         domain.  Safe: the owner is joined, so nothing races on the
         tid's scheme state, and [tid] is only an index — the slot is
         transparently reusable afterwards (paper §2.4). *)
      T.leave ctl_tracker ~tid:qtid;
      Atomic.set sh.crash_flag false;
      Atomic.set sh.dead false;
      (* Respawn; the new consumer drains the backlog naturally. *)
      sh.consumer <- Some (Domain.spawn (consumer sh))
    in
    let snapshot ~shard ~gate =
      let sh = shards.(shard) in
      if not (Atomic.compare_and_set sh.snap_busy false true) then
        invalid_arg "Shard.snapshot: a snapshot of this shard is in progress";
      Fun.protect ~finally:(fun () -> Atomic.set sh.snap_busy false)
      @@ fun () ->
      (* The long-running-reader adversary, on purpose: the whole
         traversal runs inside ONE tid-1 bracket while the consumer
         keeps mutating and retiring under tid 0.  Robust schemes
         (Hyaline-S/1S) keep the shard's unreclaimed backlog bounded
         for the duration; EBR's grows with the consumer's retirement
         traffic (the `experiments replicate` snap column).  [gate] is
         called with 0 after entering the bracket and with i before
         binding i+1 — chaos hangs in it to stretch the bracket
         deterministically. *)
      Map.enter sh.map ~tid:1;
      let bindings =
        Fun.protect ~finally:(fun () -> Map.leave sh.map ~tid:1)
        @@ fun () ->
        gate 0;
        let i = ref 0 in
        Map.fold sh.map ~tid:1
          (fun acc k v ->
            incr i;
            gate !i;
            (k, v) :: acc)
          []
      in
      (* Key order: the on-disk snapshot is deterministic for a given
         state regardless of structure/bucket iteration order. *)
      List.sort compare bindings
    in
    (* The delta-snapshot traversal: same tid-1 bracket, same snap_busy
       exclusivity, same gate cadence as the full fold — but it visits
       only [keys] (a dirty set's contents), so its cost scales with
       the write rate, not the map size.  [None] per key = deleted
       since it was dirtied: the caller ships it as a tombstone. *)
    let snapshot_keys ~shard ~keys ~gate =
      let sh = shards.(shard) in
      if not (Atomic.compare_and_set sh.snap_busy false true) then
        invalid_arg "Shard.snapshot: a snapshot of this shard is in progress";
      Fun.protect ~finally:(fun () -> Atomic.set sh.snap_busy false)
      @@ fun () ->
      Map.enter sh.map ~tid:1;
      let entries =
        Fun.protect ~finally:(fun () -> Map.leave sh.map ~tid:1)
        @@ fun () ->
        gate 0;
        let i = ref 0 in
        List.rev_map
          (fun k ->
            incr i;
            gate !i;
            (k, Map.get sh.map ~tid:1 k))
          keys
      in
      List.sort compare entries
    in
    (* Zero-copy reader slots.  A leased slot owns map tid [2 + slot]
       on EVERY shard map; [zc_enter] opens a bracket on each (the
       reader does not know which shard its keys live on), after which
       [zc_get] reads the live structure directly from the client's
       own domain — no mailbox hop, no consumer mediation, no reply
       copy.  Transparent schemes (Hyaline*/Crystalline) need nothing
       per read — the bracket is the whole protocol; slot-protected
       ones (HP/HE/IBR) take their per-dereference guards inside
       [Map.get] under the slot's tid, so the same client code is
       correct for every scheme in the registry.  A reader that stalls
       inside its bracket is exactly the paper's §2.3 adversary: the
       chaos check asserts robust schemes bound what it can pin. *)
    let zc_slots = Atomic.make (List.init c.zc_readers Fun.id) in
    let rec zc_lease () =
      match Atomic.get zc_slots with
      | [] -> None
      | s :: rest as old ->
          if Atomic.compare_and_set zc_slots old rest then Some s
          else zc_lease ()
    in
    let rec zc_release s =
      if s < 0 || s >= c.zc_readers then
        invalid_arg "Shard.zc_release: slot out of range";
      let old = Atomic.get zc_slots in
      if not (Atomic.compare_and_set zc_slots old (s :: old)) then zc_release s
    in
    let zc_check slot =
      if slot < 0 || slot >= c.zc_readers then
        invalid_arg "Shard.zc: slot out of range"
    in
    let zc_enter ~slot =
      zc_check slot;
      Array.iter (fun sh -> Map.enter sh.map ~tid:(2 + slot)) shards
    in
    let zc_leave ~slot =
      zc_check slot;
      Array.iter (fun sh -> Map.leave sh.map ~tid:(2 + slot)) shards
    in
    let zc_get ~slot k =
      zc_check slot;
      let sh = shards.(shard_of_key k) in
      Map.get sh.map ~tid:(2 + slot) k
    in
    let gauges () =
      let per_shard =
        Array.to_list shards
        |> List.concat_map (fun sh ->
               [
                 (Printf.sprintf "kv_shard%d_depth" sh.idx, MB.depth sh.mailbox);
                 ( Printf.sprintf "kv_shard%d_processed" sh.idx,
                   Atomic.get sh.shard_processed );
                 ( Printf.sprintf "kv_shard%d_stalled" sh.idx,
                   if Atomic.get sh.stall_flag then 1 else 0 );
                 ( Printf.sprintf "kv_shard%d_heartbeat" sh.idx,
                   Atomic.get sh.heartbeat );
                 ( Printf.sprintf "kv_shard%d_dead" sh.idx,
                   if Atomic.get sh.dead then 1 else 0 );
               ])
      in
      per_shard
      @ [
          ("kv_shed_total", Atomic.get sheds);
          ("kv_processed_total", processed ());
          ( "kv_ctl_unreclaimed",
            Smr.Stats.unreclaimed_of (Smr.Stats.snapshot (T.stats ctl_tracker))
          );
        ]
      @ List.map (fun (n, v) -> ("kv_ctl_" ^ n, v)) (T.gauges ctl_tracker)
    in
    let stop () =
      if Atomic.compare_and_set stopped false true then begin
        Atomic.set running false;
        Array.iter
          (fun sh ->
            match sh.consumer with
            | Some d ->
                Domain.join d;
                sh.consumer <- None
            | None -> ())
          shards;
        (* Crashed-and-never-recovered shards: their dead consumer
           could not run the shutdown path above — exit the abandoned
           bracket, fail the backlog, and flush in its stead. *)
        Array.iter
          (fun sh ->
            if Atomic.get sh.dead then begin
              let qtid = c.clients + sh.idx in
              T.leave ctl_tracker ~tid:qtid;
              List.iter
                (fun env -> env.reply (Codec.Error "service stopped"))
                (MB.drain sh.mailbox ~tid:qtid ~max:max_int);
              MB.flush sh.mailbox ~tid:qtid;
              Atomic.set sh.dead false;
              Atomic.set sh.crash_flag false
            end)
          shards;
        Array.iter
          (fun sh ->
            (* tids 1.. (snapshot and zero-copy readers) never retire,
               so their flushes are no-ops for Hyaline and limbo scans
               for baselines — safe outside a bracket either way. *)
            for tid = 0 to map_cfg.Smr.Config.nthreads - 1 do
              Map.flush sh.map ~tid
            done)
          shards;
        for tid = 0 to ctl_cfg.Smr.Config.nthreads - 1 do
          T.flush ctl_tracker ~tid
        done
      end
    in
    {
      submit;
      nshards = c.shards;
      clients = c.clients;
      shard_of_key;
      shard_depth = (fun i -> MB.depth shards.(i).mailbox);
      sheds = (fun () -> Atomic.get sheds);
      processed;
      slo;
      batch_hist;
      gauges;
      control_stats = (fun () -> T.stats ctl_tracker);
      data_stats =
        (fun () -> Array.to_list shards |> List.map (fun sh -> Map.stats sh.map));
      set_stalled =
        (fun ~shard v -> Atomic.set shards.(shard).stall_flag v);
      is_stalled = (fun i -> Atomic.get shards.(i).stall_flag);
      is_parked = (fun i -> Atomic.get shards.(i).parked);
      crash;
      recover;
      consumer_alive = (fun i -> not (Atomic.get shards.(i).dead));
      heartbeat = (fun i -> Atomic.get shards.(i).heartbeat);
      inject_oom =
        (fun ~shard ~n -> Map.inject_alloc_failures shards.(shard).map ~n);
      snapshot;
      snapshot_keys;
      zc_readers = c.zc_readers;
      zc_lease;
      zc_release;
      zc_enter;
      zc_leave;
      zc_get;
      arena = c.arena;
      set_admit = (fun a -> Atomic.set admit_cell a);
      stop;
      scheme_name;
      structure_name;
    }
end

let create ~(structure : Workload.Registry.structure)
    ~(scheme : Workload.Registry.scheme) (c : config) : t =
  if not (Workload.Registry.compatible ~structure ~scheme) then
    invalid_arg
      (Printf.sprintf "Shard.create: %s is not run on %s"
         scheme.Workload.Registry.s_name structure.Workload.Registry.d_name);
  let module T = (val scheme.Workload.Registry.s_mod : Smr.Tracker.S) in
  let module Mk = (val structure.Workload.Registry.d_mod : Dstruct.Map_intf.MAKER)
  in
  let module C = Core (T) (Mk) in
  C.make ~scheme_name:scheme.Workload.Registry.s_name
    ~structure_name:structure.Workload.Registry.d_name c

let call t ~tid req =
  let cell = Atomic.make None in
  t.submit ~tid req (fun r -> Atomic.set cell (Some r));
  let spins = ref 0 in
  let rec wait () =
    match Atomic.get cell with
    | Some r -> r
    | None ->
        incr spins;
        (* Spin briefly, then yield the core: with more domains than
           cores a pure spin-wait would steal the consumer's whole
           quantum. *)
        if !spins land 255 = 0 then Unix.sleepf 0.0001
        else Domain.cpu_relax ();
        wait ()
  in
  wait ()

let pipeline t ~tid ?(window = 128) ~n gen =
  let outstanding = Atomic.make 0 in
  let retry = Atomic.make [] in
  let rec push_retry i =
    let old = Atomic.get retry in
    if not (Atomic.compare_and_set retry old (i :: old)) then push_retry i
  in
  let submit1 i =
    Atomic.incr outstanding;
    t.submit ~tid (gen i) (fun reply ->
        (* A shed request goes back in the queue; a post-stop [Error]
           must not (it would retry forever). *)
        (match reply with Codec.Shed -> push_retry i | _ -> ());
        ignore (Atomic.fetch_and_add outstanding (-1)))
  in
  let wait limit =
    let spins = ref 0 in
    while Atomic.get outstanding > limit do
      incr spins;
      if !spins land 255 = 0 then Unix.sleepf 0.0001 else Domain.cpu_relax ()
    done
  in
  for i = 0 to n - 1 do
    wait (window - 1);
    submit1 i
  done;
  let rec drain () =
    wait 0;
    match Atomic.exchange retry [] with
    | [] -> ()
    | is ->
        List.iter
          (fun i ->
            wait (window - 1);
            submit1 i)
          is;
        drain ()
  in
  drain ()
