type objective = { quantile : float; limit_ns : int }
type t = { hist : Obs.Hist.t; objectives : objective list }

let create ?(objectives = []) () =
  List.iter
    (fun o ->
      if o.quantile < 0.0 || o.quantile > 1.0 then
        invalid_arg "Slo.create: quantile outside [0, 1]")
    objectives;
  { hist = Obs.Hist.create (); objectives }

let record t ~ns = Obs.Hist.add t.hist ns
let hist t = t.hist
let count t = Obs.Hist.count t.hist
let p50 t = Obs.Hist.percentile t.hist 0.50
let p99 t = Obs.Hist.percentile t.hist 0.99
let p999 t = Obs.Hist.percentile t.hist 0.999

let check t =
  List.map
    (fun o ->
      let measured = Obs.Hist.percentile t.hist o.quantile in
      (o, measured, measured <= o.limit_ns))
    t.objectives

let violated t = List.exists (fun (_, _, ok) -> not ok) (check t)

let report t =
  let base =
    Printf.sprintf "n=%d p50=%s p99=%s p99.9=%s max=%s"
      (Obs.Hist.count t.hist)
      (Workload.Plot.fmt_ns (p50 t))
      (Workload.Plot.fmt_ns (p99 t))
      (Workload.Plot.fmt_ns (p999 t))
      (Workload.Plot.fmt_ns (Obs.Hist.max_value t.hist))
  in
  match t.objectives with
  | [] -> base
  | _ ->
      let bad =
        check t
        |> List.filter_map (fun (o, measured, ok) ->
               if ok then None
               else
                 Some
                   (Printf.sprintf "p%g=%s>%s" (o.quantile *. 100.0)
                      (Workload.Plot.fmt_ns measured)
                      (Workload.Plot.fmt_ns o.limit_ns)))
      in
      if bad = [] then base ^ " SLO:ok"
      else base ^ " SLO:VIOLATED(" ^ String.concat "," bad ^ ")"
