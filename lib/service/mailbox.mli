(** Bounded lock-free MPSC request mailbox.

    The FIFO spine is {!Dstruct.Ms_queue} — the canonical SMR client —
    carrying indices into a fixed slot table; the slot free-list bounds
    depth, so a full mailbox rejects sends in O(1) without touching
    the queue (that rejection is the service's load-shedding reply).
    The queue is protected by the functor's [T], and several mailboxes
    can share one tracker (see [?tracker]): the service's own control
    plane runs on the reclamation scheme under test.

    Any number of producers may [try_send] concurrently; [drain] is
    single-consumer (one shard worker owns each mailbox). *)

module Make (T : Smr.Tracker.S) : sig
  type 'a t

  val create : ?tracker:T.t -> cfg:Smr.Config.t -> capacity:int -> unit -> 'a t
  (** [capacity] bounds the number of in-flight payloads.  [?tracker]
      shares a caller-owned tracker across mailboxes (its config must
      cover every producing/consuming [tid]).
      @raise Invalid_argument if [capacity <= 0]. *)

  val try_send : 'a t -> tid:int -> 'a -> bool
  (** Enqueue, or return [false] immediately if the mailbox is at
      capacity (backpressure — the caller sheds).  Lock-free. *)

  val drain : 'a t -> tid:int -> max:int -> 'a list
  (** Dequeue up to [max] payloads in FIFO order (possibly fewer, [[]]
      if empty).  Single consumer only. *)

  val depth : 'a t -> int
  (** Instantaneous occupancy (racy gauge, in [[0, capacity]]). *)

  val capacity : 'a t -> int

  val sent : 'a t -> int
  (** Payloads accepted by {!try_send} so far (monotonic). *)

  val rejected : 'a t -> int
  (** {!try_send} calls bounced at capacity (monotonic). *)

  val tracker : 'a t -> T.t
  val stats : 'a t -> Smr.Stats.t
  (** Reclamation counters of the spine queue's tracker. *)

  val flush : 'a t -> tid:int -> unit
end
