/* epoll bindings for Service.Poller.
 *
 * Deliberately tiny: three calls, no allocation on the wait path.
 * Readiness results are written into a caller-supplied Bigarray of
 * OCaml ints (its data lives outside the OCaml heap, so it cannot
 * move while the runtime lock is released around epoll_wait).  Each
 * entry packs (fd << 2) | writable<<1 | readable.  Errors raise
 * Failure rather than Unix_error to avoid a dependency on
 * unixsupport.h; the OCaml side treats any failure as fatal for the
 * poller instance.  On non-Linux builds every function reports
 * unavailability and the OCaml side falls back to select. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>
#include <errno.h>
#include <string.h>

CAMLprim value kv_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value kv_epoll_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) caml_failwith("epoll_create1 failed");
  return Val_int(fd);
}

/* op: 0 = add, 1 = mod, 2 = del.  interest: bit0 read, bit1 write.
 * fd arguments are Unix.file_descr values, which are ints on Unix. */
CAMLprim value kv_epoll_ctl(value vep, value vop, value vfd, value vinterest)
{
  struct epoll_event ev;
  int sysop;
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (Int_val(vinterest) & 1) ev.events |= EPOLLIN;
  if (Int_val(vinterest) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: sysop = EPOLL_CTL_ADD; break;
  case 1: sysop = EPOLL_CTL_MOD; break;
  default: sysop = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), sysop, Int_val(vfd), &ev) < 0)
    caml_failwith("epoll_ctl failed");
  return Val_unit;
}

/* Returns the number of ready entries written into [vba], or -1 on
 * EINTR (the caller just retries).  HUP/ERR surface as both readable
 * and writable so the event loop visits the fd and takes the error
 * on the resulting read/write. */
CAMLprim value kv_epoll_wait(value vep, value vtimeout_ms, value vba)
{
  struct epoll_event evs[512];
  long *out = (long *)Caml_ba_data_val(vba);
  intnat cap = Caml_ba_array_val(vba)->dim[0];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int n, i;
  if (cap > 512) cap = 512;
  caml_release_runtime_system();
  n = epoll_wait(ep, evs, (int)cap, timeout);
  caml_acquire_runtime_system();
  if (n < 0) {
    if (errno == EINTR) return Val_int(-1);
    caml_failwith("epoll_wait failed");
  }
  for (i = 0; i < n; i++) {
    long flags = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP))
      flags |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR))
      flags |= 2;
    out[i] = (((long)evs[i].data.fd) << 2) | flags;
  }
  return Val_int(n);
}

CAMLprim value kv_epoll_close(value vep)
{
  close(Int_val(vep));
  return Val_unit;
}

#else /* !__linux__ */

CAMLprim value kv_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value kv_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll unavailable on this platform");
}

CAMLprim value kv_epoll_ctl(value vep, value vop, value vfd, value vinterest)
{
  (void)vep; (void)vop; (void)vfd; (void)vinterest;
  caml_failwith("epoll unavailable on this platform");
}

CAMLprim value kv_epoll_wait(value vep, value vtimeout_ms, value vba)
{
  (void)vep; (void)vtimeout_ms; (void)vba;
  caml_failwith("epoll unavailable on this platform");
}

CAMLprim value kv_epoll_close(value vep)
{
  (void)vep;
  return Val_unit;
}

#endif

/* Unix.file_descr is represented as an int on every Unix OCaml port;
 * this identity witness keeps that assumption in one audited place
 * (the poller needs the raw int as a table key and to round-trip
 * through the packed epoll result words). */
CAMLprim value kv_fd_int(value fd)
{
  return fd;
}
