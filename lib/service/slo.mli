(** Request-latency SLO tracking on top of {!Obs.Hist}.

    One histogram of end-to-end request latency (submit → reply,
    nanoseconds; queueing included) plus optional latency objectives
    checked against its conservative percentiles.  Because
    {!Obs.Hist.percentile} reports a bucket upper bound, an objective
    reported as met is really met — the check errs toward violation,
    never toward false health. *)

type objective = { quantile : float; limit_ns : int }
(** E.g. [{ quantile = 0.99; limit_ns = 5_000_000 }]: p99 <= 5 ms. *)

type t

val create : ?objectives:objective list -> unit -> t
(** @raise Invalid_argument on a quantile outside [[0, 1]]. *)

val record : t -> ns:int -> unit
(** Thread-safe; called by shard consumers on every completed reply. *)

val hist : t -> Obs.Hist.t
val count : t -> int

val p50 : t -> int
val p99 : t -> int
val p999 : t -> int
(** Conservative percentile bounds in nanoseconds (0 when empty). *)

val check : t -> (objective * int * bool) list
(** Each objective with the measured bound and whether it holds. *)

val violated : t -> bool
(** [true] iff any objective fails (always [false] with none set). *)

val report : t -> string
(** One line: ["n=... p50=... p99=... p99.9=... max=..."], with a
    [" SLO:ok"]/[" SLO:VIOLATED(...)"] suffix when objectives are
    set. *)
