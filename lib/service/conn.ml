exception Closed

(* A signal landing mid-syscall must not surface as a connection
   error: retry the call.  (The daemon installs handlers for
   SIGINT/SIGTERM, and chaos runs deliver churn while signals fly.) *)
let rec read_retry fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

let rec write_retry fd buf off len =
  try Unix.write fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd buf off len

(* A client vanishing mid-reply must cost its connection, never the
   daemon: with SIGPIPE ignored, writes to a hung-up peer fail with
   EPIPE, which the per-connection handler already treats as a
   disconnect.  Idempotent; no-op where SIGPIPE does not exist. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* All frame reading goes through the one streaming decoder in Codec —
   the same loop that replays WAL segments and drains shm rings — with
   the descriptor as the pull source.  A torn frame here is a peer
   hanging up mid-frame. *)
let read_next rd =
  match Codec.next_frame rd with
  | Codec.Frame payload -> Some payload
  | Codec.Eof -> None
  | Codec.Torn _ -> raise Closed

let reader_of_fd fd = Codec.frame_reader (read_retry fd)
let read_frame fd = read_next (reader_of_fd fd)

(* The buffer is snapshotted and cleared {e before} the first write,
   not after the last: the caller's reply buffer must be clean on
   every exit — return, [Closed] on a zero-length write, EPIPE from a
   vanished peer, an injected fault — or the next [Codec.encode_reply]
   on that buffer would prepend the stale reply bytes.  Today every
   failing write also kills its connection (serve_conn's handler exits
   its loop), so a dirty buffer would be latent rather than live;
   clearing eagerly makes the invariant structural instead of
   accidental.  The buffer is per-connection (created in [serve_conn]
   / per call elsewhere), never shared across domains. *)
let write_frame fd buf =
  let b = Buffer.to_bytes buf in
  Buffer.clear buf;
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = write_retry fd b !off (len - !off) in
    if n = 0 then raise Closed;
    off := !off + n
  done

(* ------------------------------------------------------------------ *)
(* Chaos injection points on the server's reply/read paths.  The
   disabled state is the distinguished [Faults.none] instance, checked
   by physical equality before anything else — the same
   zero-cost-when-off discipline as [Obs.Probe.is_noop] /
   [Smr.Instrument.wrap] (benchmarked in bench/main.ml). *)

module Faults = struct
  type t = {
    truncate_replies : int Atomic.t;
    close_mid_frame : int Atomic.t;
    delayed_reads : int Atomic.t;
    delay_s : float;
  }

  let create ?(delay_s = 0.002) () =
    {
      truncate_replies = Atomic.make 0;
      close_mid_frame = Atomic.make 0;
      delayed_reads = Atomic.make 0;
      delay_s;
    }

  let none = create ()
  let is_none t = t == none

  let arm counter n =
    if n < 0 then invalid_arg "Conn.Faults.arm: n < 0";
    ignore (Atomic.fetch_and_add counter n)

  let arm_truncate_reply t n = arm t.truncate_replies n
  let arm_close_mid_frame t n = arm t.close_mid_frame n
  let arm_delayed_read t n = arm t.delayed_reads n

  (* Claim one armed unit, resolving races between handler domains. *)
  let rec take counter =
    let n = Atomic.get counter in
    if n <= 0 then false
    else if Atomic.compare_and_set counter n (n - 1) then true
    else take counter

  (* Claiming accessors for transports outside this module (the shm
     multiplexer maps these onto ring-level damage). *)
  let take_truncate_reply t = take t.truncate_replies
  let take_close_mid_frame t = take t.close_mid_frame
  let take_delayed_read t = take t.delayed_reads
  let delay_s t = t.delay_s
end

(* Deliver the reply under the armed fault, if any.  Both faults write
   a deliberately incomplete frame and hang up, so the client observes
   a mid-frame EOF — [close_mid_frame] cuts after the length prefix,
   [truncate_reply] halfway through the payload. *)
let write_reply ~faults fd out =
  if Faults.is_none faults then write_frame fd out
  else if Faults.take faults.Faults.close_mid_frame then begin
    (* Clear before the partial write, as in [write_frame]: the write
       itself can raise (EPIPE races the injected hang-up) and the
       buffer must not keep the truncated reply either way. *)
    let b = Buffer.to_bytes out in
    Buffer.clear out;
    ignore (write_retry fd b 0 (min 4 (Bytes.length b)));
    raise Closed
  end
  else if Faults.take faults.Faults.truncate_replies then begin
    let b = Buffer.to_bytes out in
    Buffer.clear out;
    let cut = min (Bytes.length b) (4 + ((Bytes.length b - 4) / 2)) in
    ignore (write_retry fd b 0 cut);
    raise Closed
  end
  else write_frame fd out

let serve_conn ?(faults = Faults.none) ?ext svc ~tid fd =
  let out = Buffer.create 64 in
  (* One persistent decoder per connection: the header scratch lives
     for the connection, not per frame. *)
  let rd = reader_of_fd fd in
  (try
     let rec loop () =
       if
         (not (Faults.is_none faults))
         && Faults.take faults.Faults.delayed_reads
       then Unix.sleepf faults.Faults.delay_s;
       match read_next rd with
       | None -> ()
       | Some payload -> (
           match Codec.request_of_payload payload with
           | req ->
               (* The extension handler (replication opcodes) answers
                  before shard routing; [None] falls through to the
                  data path. *)
               let reply =
                 match ext with
                 | Some h -> (
                     match h req with
                     | Some r -> r
                     | None -> Shard.call svc ~tid req)
                 | None -> Shard.call svc ~tid req
               in
               Codec.encode_reply out reply;
               write_reply ~faults fd out;
               loop ()
           | exception Codec.Malformed m ->
               (* Framing survived but the payload is garbage: answer,
                  then drop the connection — we cannot trust the
                  stream position any more. *)
               Codec.encode_reply out (Codec.Error ("malformed: " ^ m));
               write_reply ~faults fd out)
     in
     loop ()
   with Closed | Codec.Malformed _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

type conn = { c_fd : Unix.file_descr; mutable c_domain : unit Domain.t option }

type server = {
  svc : Shard.t;
  listen_fd : Unix.file_descr;
  path : string;
  accepting : bool Atomic.t;
  (* Free producer-tid slots; a connection leases one for its life —
     transparent attach/detach, a slot reused as soon as its previous
     connection is gone. *)
  tids : int list Atomic.t;
  conns : conn list ref;
  lock : Mutex.t;
  mutable acceptor : unit Domain.t option;
  stopped : bool Atomic.t;
  faults : Faults.t;
  ext : (Codec.request -> Codec.reply option) option;
}

let faults srv = srv.faults

let rec pop_tid srv =
  match Atomic.get srv.tids with
  | [] -> None
  | t :: rest as old ->
      if Atomic.compare_and_set srv.tids old rest then Some t
      else pop_tid srv

let rec push_tid srv t =
  let old = Atomic.get srv.tids in
  if not (Atomic.compare_and_set srv.tids old (t :: old)) then push_tid srv t

let shed_and_close fd =
  let out = Buffer.create 8 in
  Codec.encode_reply out Codec.Shed;
  (try write_frame fd out with Closed | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop srv () =
  while Atomic.get srv.accepting do
    match Unix.accept srv.listen_fd with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if not (Atomic.get srv.accepting) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          match pop_tid srv with
          | None ->
              (* Every client slot is leased: connection-level
                 backpressure, same contract as a full mailbox. *)
              shed_and_close fd
          | Some tid ->
              let conn = { c_fd = fd; c_domain = None } in
              Mutex.lock srv.lock;
              srv.conns := conn :: !(srv.conns);
              Mutex.unlock srv.lock;
              conn.c_domain <-
                Some
                  (Domain.spawn (fun () ->
                       serve_conn ~faults:srv.faults ?ext:srv.ext srv.svc ~tid
                         fd;
                       push_tid srv tid))
        end
  done

exception Addr_in_use of string

(* A crashed daemon leaves its socket file behind; a live one leaves
   the same file.  Probe before touching it: a successful connect
   means someone is serving — refuse to clobber them — while a
   connection-refused (or any other failure) on an existing file
   means the path is stale and safe to unlink. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then raise (Addr_in_use path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let serve_unix svc ~path ?(backlog = 16) ?(faults = Faults.none) ?ext () =
  ignore_sigpipe ();
  claim_socket_path path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd backlog;
  let srv =
    {
      svc;
      listen_fd;
      path;
      accepting = Atomic.make true;
      tids = Atomic.make (List.init svc.Shard.clients Fun.id);
      conns = ref [];
      lock = Mutex.create ();
      acceptor = None;
      stopped = Atomic.make false;
      faults;
      ext;
    }
  in
  srv.acceptor <- Some (Domain.spawn (accept_loop srv));
  srv

let connect_unix ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let shutdown srv =
  if Atomic.compare_and_set srv.stopped false true then begin
    Atomic.set srv.accepting false;
    (* Wake a blocked accept: shutdown the listener, and self-connect
       in case the platform's accept does not notice the shutdown. *)
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (connect_unix ~path:srv.path) with
    | Unix.Unix_error _ -> ());
    (match srv.acceptor with
    | Some d ->
        Domain.join d;
        srv.acceptor <- None
    | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* The acceptor is joined, so the connection list is final and
       every c_domain is set. *)
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      !(srv.conns);
    List.iter
      (fun c -> match c.c_domain with Some d -> Domain.join d | None -> ())
      !(srv.conns);
    srv.conns := [];
    try Unix.unlink srv.path with Unix.Unix_error _ -> ()
  end

let call_fd fd req =
  let out = Buffer.create 32 in
  Codec.encode_request out req;
  write_frame fd out;
  match read_frame fd with
  | Some payload -> Codec.reply_of_payload payload
  | None -> raise Closed

(* ------------------------------------------------------------------ *)

(* In-process zero-copy reads: the client leases a Shard zero-copy
   slot and reads the live maps from its own domain inside an
   enter/leave bracket — GET never crosses the mailbox, is never
   copied into a reply frame, and costs no syscall.  The SMR scheme
   is the sender/receiver isolation: a transparent scheme needs no
   per-read protection (the bracket alone licenses the read), and a
   client that stalls inside its bracket can only pin what a robust
   scheme bounds.  Writes still go through the ordinary submit path —
   the consumer stays each map's only mutator. *)
module Zerocopy = struct
  type client = {
    svc : Shard.t;
    slot : int;
    tid : int;
    mutable in_bracket : bool;
    mutable closed : bool;
  }

  let connect svc ~tid =
    if tid < 0 || tid >= svc.Shard.clients then
      invalid_arg "Zerocopy.connect: tid outside the client range";
    match svc.Shard.zc_lease () with
    | None -> None
    | Some slot -> Some { svc; slot; tid; in_bracket = false; closed = false }

  let check c =
    if c.closed then invalid_arg "Zerocopy: client is closed"

  let enter c =
    check c;
    if c.in_bracket then invalid_arg "Zerocopy.enter: bracket already open";
    c.in_bracket <- true;
    c.svc.Shard.zc_enter ~slot:c.slot

  let leave c =
    check c;
    if not c.in_bracket then invalid_arg "Zerocopy.leave: no open bracket";
    c.svc.Shard.zc_leave ~slot:c.slot;
    c.in_bracket <- false

  let get c k =
    check c;
    if not c.in_bracket then
      invalid_arg "Zerocopy.get: read outside the bracket";
    c.svc.Shard.zc_get ~slot:c.slot k

  let with_bracket c f =
    enter c;
    Fun.protect ~finally:(fun () -> if c.in_bracket then leave c) f

  (* The write path (and any non-GET request): the ordinary routed
     call under the client's producer tid. *)
  let call c req =
    check c;
    Shard.call c.svc ~tid:c.tid req

  let close c =
    if not c.closed then begin
      if c.in_bracket then leave c;
      c.closed <- true;
      c.svc.Shard.zc_release c.slot
    end

  let slot c = c.slot
end

module Loopback = struct
  type client = { svc : Shard.t; tid : int; buf : Buffer.t }

  let connect svc ~tid =
    if tid < 0 || tid >= svc.Shard.clients then
      invalid_arg "Loopback.connect: tid outside the client range";
    { svc; tid; buf = Buffer.create 64 }

  let strip_frame b = Bytes.sub b 4 (Bytes.length b - 4)

  let call c req =
    (* The full wire path, in memory: encode the request, decode it as
       the server would, execute, encode the reply, decode it as the
       client would.  A codec regression fails here exactly as it
       would over a socket. *)
    Buffer.clear c.buf;
    Codec.encode_request c.buf req;
    let req = Codec.request_of_payload (strip_frame (Buffer.to_bytes c.buf)) in
    let reply = Shard.call c.svc ~tid:c.tid req in
    Buffer.clear c.buf;
    Codec.encode_reply c.buf reply;
    Codec.reply_of_payload (strip_frame (Buffer.to_bytes c.buf))
end
