exception Closed

(* A signal landing mid-syscall must not surface as a connection
   error: retry the call.  (The daemon installs handlers for
   SIGINT/SIGTERM, and chaos runs deliver churn while signals fly.) *)
let rec read_retry fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

let rec write_retry fd buf off len =
  try Unix.write fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd buf off len

(* A client vanishing mid-reply must cost its connection, never the
   daemon: with SIGPIPE ignored, writes to a hung-up peer fail with
   EPIPE, which the per-connection handler already treats as a
   disconnect.  Idempotent; no-op where SIGPIPE does not exist. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* All frame reading goes through the one streaming decoder in Codec —
   the same loop that replays WAL segments and drains shm rings — with
   the descriptor as the pull source.  A torn frame here is a peer
   hanging up mid-frame. *)
let read_next rd =
  match Codec.next_frame rd with
  | Codec.Frame payload -> Some payload
  | Codec.Eof -> None
  | Codec.Torn _ -> raise Closed

let reader_of_fd fd = Codec.frame_reader (read_retry fd)
let read_frame fd = read_next (reader_of_fd fd)

(* The buffer is snapshotted and cleared {e before} the first write,
   not after the last: the caller's reply buffer must be clean on
   every exit — return, [Closed] on a zero-length write, EPIPE from a
   vanished peer, an injected fault — or the next [Codec.encode_reply]
   on that buffer would prepend the stale reply bytes.  Today every
   failing write also kills its connection (serve_conn's handler exits
   its loop), so a dirty buffer would be latent rather than live;
   clearing eagerly makes the invariant structural instead of
   accidental.  The buffer is per-connection (created in [serve_conn]
   / per call elsewhere), never shared across domains. *)
let write_frame fd buf =
  let b = Buffer.to_bytes buf in
  Buffer.clear buf;
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = write_retry fd b !off (len - !off) in
    if n = 0 then raise Closed;
    off := !off + n
  done

(* ------------------------------------------------------------------ *)
(* Chaos injection points on the server's reply/read paths.  The
   disabled state is the distinguished [Faults.none] instance, checked
   by physical equality before anything else — the same
   zero-cost-when-off discipline as [Obs.Probe.is_noop] /
   [Smr.Instrument.wrap] (benchmarked in bench/main.ml). *)

module Faults = struct
  type t = {
    truncate_replies : int Atomic.t;
    close_mid_frame : int Atomic.t;
    delayed_reads : int Atomic.t;
    delay_s : float;
  }

  let create ?(delay_s = 0.002) () =
    {
      truncate_replies = Atomic.make 0;
      close_mid_frame = Atomic.make 0;
      delayed_reads = Atomic.make 0;
      delay_s;
    }

  let none = create ()
  let is_none t = t == none

  let arm counter n =
    if n < 0 then invalid_arg "Conn.Faults.arm: n < 0";
    ignore (Atomic.fetch_and_add counter n)

  let arm_truncate_reply t n = arm t.truncate_replies n
  let arm_close_mid_frame t n = arm t.close_mid_frame n
  let arm_delayed_read t n = arm t.delayed_reads n

  (* Claim one armed unit, resolving races between handler domains. *)
  let rec take counter =
    let n = Atomic.get counter in
    if n <= 0 then false
    else if Atomic.compare_and_set counter n (n - 1) then true
    else take counter

  (* Claiming accessors for transports outside this module (the shm
     multiplexer maps these onto ring-level damage). *)
  let take_truncate_reply t = take t.truncate_replies
  let take_close_mid_frame t = take t.close_mid_frame
  let take_delayed_read t = take t.delayed_reads
  let delay_s t = t.delay_s
end

(* Deliver the reply under the armed fault, if any.  Both faults write
   a deliberately incomplete frame and hang up, so the client observes
   a mid-frame EOF — [close_mid_frame] cuts after the length prefix,
   [truncate_reply] halfway through the payload. *)
let write_reply ~faults fd out =
  if Faults.is_none faults then write_frame fd out
  else if Faults.take faults.Faults.close_mid_frame then begin
    (* Clear before the partial write, as in [write_frame]: the write
       itself can raise (EPIPE races the injected hang-up) and the
       buffer must not keep the truncated reply either way. *)
    let b = Buffer.to_bytes out in
    Buffer.clear out;
    ignore (write_retry fd b 0 (min 4 (Bytes.length b)));
    raise Closed
  end
  else if Faults.take faults.Faults.truncate_replies then begin
    let b = Buffer.to_bytes out in
    Buffer.clear out;
    let cut = min (Bytes.length b) (4 + ((Bytes.length b - 4) / 2)) in
    ignore (write_retry fd b 0 cut);
    raise Closed
  end
  else write_frame fd out

(* The request→reply step shared by both server backends: the
   extension handler (replication / cluster-control opcodes) answers
   before shard routing; [None] falls through to the data path. *)
let exec_of ?ext svc ~tid =
  match ext with
  | Some h -> (
      fun req ->
        match h req with Some r -> r | None -> Shard.call svc ~tid req)
  | None -> fun req -> Shard.call svc ~tid req

let serve_conn_fn ?(faults = Faults.none) ~exec fd =
  let out = Buffer.create 64 in
  (* One persistent decoder per connection: the header scratch lives
     for the connection, not per frame. *)
  let rd = reader_of_fd fd in
  (try
     let rec loop () =
       if
         (not (Faults.is_none faults))
         && Faults.take faults.Faults.delayed_reads
       then Unix.sleepf faults.Faults.delay_s;
       match read_next rd with
       | None -> ()
       | Some payload -> (
           match Codec.request_of_payload payload with
           | req ->
               Codec.encode_reply out (exec req);
               write_reply ~faults fd out;
               loop ()
           | exception Codec.Malformed m ->
               (* Framing survived but the payload is garbage: answer,
                  then drop the connection — we cannot trust the
                  stream position any more. *)
               Codec.encode_reply out (Codec.Error ("malformed: " ^ m));
               write_reply ~faults fd out)
     in
     loop ()
   with Closed | Codec.Malformed _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_conn ?(faults = Faults.none) ?ext svc ~tid fd =
  serve_conn_fn ~faults ~exec:(exec_of ?ext svc ~tid) fd

(* ------------------------------------------------------------------ *)

type conn = { c_fd : Unix.file_descr; mutable c_domain : unit Domain.t option }

(* Threaded backend: one handler domain per accepted connection, each
   leasing an execution context — a producer tid for service-backed
   servers, a concurrency token for handler-function servers — for the
   connection's life. *)
type tserver = {
  t_listen_fd : Unix.file_descr;
  t_path : string;
  t_accepting : bool Atomic.t;
  t_lease : unit -> ((Codec.request -> Codec.reply) * (unit -> unit)) option;
  t_conns : conn list ref;
  t_lock : Mutex.t;
  mutable t_acceptor : unit Domain.t option;
  t_stopped : bool Atomic.t;
  t_faults : Faults.t;
}

let rec pop_slot slots =
  match Atomic.get slots with
  | [] -> None
  | t :: rest as old ->
      if Atomic.compare_and_set slots old rest then Some t else pop_slot slots

let rec push_slot slots t =
  let old = Atomic.get slots in
  if not (Atomic.compare_and_set slots old (t :: old)) then push_slot slots t

let shed_and_close fd =
  let out = Buffer.create 8 in
  Codec.encode_reply out Codec.Shed;
  (try write_frame fd out with Closed | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop srv () =
  while Atomic.get srv.t_accepting do
    match Unix.accept srv.t_listen_fd with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if not (Atomic.get srv.t_accepting) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          match srv.t_lease () with
          | None ->
              (* Every client slot is leased: connection-level
                 backpressure, same contract as a full mailbox. *)
              shed_and_close fd
          | Some (exec, release) ->
              let conn = { c_fd = fd; c_domain = None } in
              Mutex.lock srv.t_lock;
              srv.t_conns := conn :: !(srv.t_conns);
              Mutex.unlock srv.t_lock;
              conn.c_domain <-
                Some
                  (Domain.spawn (fun () ->
                       serve_conn_fn ~faults:srv.t_faults ~exec fd;
                       release ()))
        end
  done

exception Addr_in_use of string

(* A crashed daemon leaves its socket file behind; a live one leaves
   the same file.  Probe before touching it: a successful connect
   means someone is serving — refuse to clobber them — while a
   connection-refused (or any other failure) on an existing file
   means the path is stale and safe to unlink. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then raise (Addr_in_use path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let bind_listen ~path ~backlog =
  ignore_sigpipe ();
  claim_socket_path path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd backlog;
  listen_fd

let serve_threaded ~path ~backlog ~faults ~lease =
  let listen_fd = bind_listen ~path ~backlog in
  let srv =
    {
      t_listen_fd = listen_fd;
      t_path = path;
      t_accepting = Atomic.make true;
      t_lease = lease;
      t_conns = ref [];
      t_lock = Mutex.create ();
      t_acceptor = None;
      t_stopped = Atomic.make false;
      t_faults = faults;
    }
  in
  srv.t_acceptor <- Some (Domain.spawn (accept_loop srv));
  srv

let connect_unix ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let shutdown_threaded srv =
  if Atomic.compare_and_set srv.t_stopped false true then begin
    Atomic.set srv.t_accepting false;
    (* Wake a blocked accept: shutdown the listener, and self-connect
       in case the platform's accept does not notice the shutdown. *)
    (try Unix.shutdown srv.t_listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (connect_unix ~path:srv.t_path) with
    | Unix.Unix_error _ -> ());
    (match srv.t_acceptor with
    | Some d ->
        Domain.join d;
        srv.t_acceptor <- None
    | None -> ());
    (try Unix.close srv.t_listen_fd with Unix.Unix_error _ -> ());
    (* The acceptor is joined, so the connection list is final and
       every c_domain is set. *)
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      !(srv.t_conns);
    List.iter
      (fun c -> match c.c_domain with Some d -> Domain.join d | None -> ())
      !(srv.t_conns);
    srv.t_conns := [];
    try Unix.unlink srv.t_path with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Event-loop backend: one pump domain owns every connection — accept,
   nonblocking reads into per-connection buffers, the shared
   [Codec.frame_reader] state machine over those buffers, submission
   to the shard mailboxes under a single leased producer tid, and
   nonblocking ordered reply writes with short-write resume.  Shard
   consumers hand completions back through a lock-free stack plus a
   wake pipe, so the pump never blocks while work is pending.

   Fan-in economics: the threaded backend costs a domain and a leased
   tid per connection, capping daemons at tens of clients; here the
   whole loop is one domain and one tid (the pump is one submitter —
   transparent schemes need nothing more), so the connection count is
   bounded by [max_conns] and fd limits, not by [Shard.t.clients] or
   the runtime's domain cap. *)

type econn = {
  ec_fd : Unix.file_descr;
  mutable ec_buf : bytes;  (* request bytes accumulated, [ec_pos, ec_len) *)
  mutable ec_len : int;
  mutable ec_pos : int;
  mutable ec_rd : Codec.reader;  (* frame decoder over the window above *)
  mutable ec_obuf : bytes;  (* encoded replies not yet on the wire *)
  mutable ec_obeg : int;
  mutable ec_oend : int;
  mutable ec_next_seq : int;  (* request seqs assigned on this connection *)
  mutable ec_flush_seq : int;  (* next seq whose reply goes on the wire *)
  ec_done : (int, Codec.reply) Hashtbl.t;  (* completed out of order *)
  ec_pending : (int * Codec.request) Queue.t;
      (* parsed but not yet accepted by a shard mailbox (mailbox-full
         backpressure); head-first retry preserves request order *)
  mutable ec_eof : bool;  (* peer finished sending; flush then close *)
  mutable ec_dead : bool;
  mutable ec_want_write : bool;
  mutable ec_reading : bool;  (* read interest currently registered *)
  mutable ec_hard_close : bool;  (* injected fault: close after flush *)
  mutable ec_delay_until : float;  (* injected fault: slow peer *)
}

type eserver = {
  e_svc : Shard.t;
  e_listen : Unix.file_descr;
  e_path : string;
  e_poll : Poller.t;
  e_conns : (int, econn) Hashtbl.t;  (* raw fd -> conn; pump domain only *)
  e_tid : int;
  e_exec : Codec.request -> Codec.reply option;
      (* the ext fast path; [None] falls through to an async submit *)
  e_completions : (econn * int * Codec.reply) list Atomic.t;
  e_wake_r : Unix.file_descr;
  e_wake_w : Unix.file_descr;
  e_wake_armed : bool Atomic.t;
  e_stop : bool Atomic.t;
  mutable e_pump : unit Domain.t option;
  e_faults : Faults.t;
  e_max_conns : int;
  e_stopped : bool Atomic.t;
  e_scratch : Buffer.t;  (* reply encode staging; pump domain only *)
  mutable e_has_pending : bool;
      (* some connection holds mailbox-refused requests; pump only *)
  e_defer : Codec.request -> bool;
      (* ext requests classified here run on the deferred-ext worker
         domain, not inline on the pump: unbounded-work control ops
         (cluster migration ingest, full-shard snapshot traversals)
         must never stall every connection's reads and accepts *)
  e_work : (econn * int * Codec.request) Queue.t;
  e_work_lock : Mutex.t;
  e_work_cond : Condition.t;
  mutable e_worker : unit Domain.t option;
}

(* Out-buffer watermarks: a peer that pipelines requests without
   reading replies grows [ec_obuf]; past [ec_high] the pump stops
   reading from it (its kernel buffer backpressures the peer) and
   resumes below [ec_low].  One misbehaving connection degrades only
   itself. *)
let ec_high = 256 * 1024
let ec_low = 64 * 1024

(* Pending-queue watermarks: a connection pipelining faster than its
   shards drain accumulates parsed-but-unsubmitted requests.  All
   connections share one producer tid here, so a full mailbox is the
   norm under pipelining, not an overload signal the way it is for
   threaded connections (one in-flight request per tid each) — the
   pump therefore holds refused requests and retries in arrival order
   rather than answering [Shed].  Past [ec_pending_high] it also
   stops reading from the connection until the queue drains below
   [ec_pending_low], so the backpressure reaches the peer's socket. *)
let ec_pending_high = 1024
let ec_pending_low = 256

let enqueue_completion srv c seq reply =
  let rec push () =
    let old = Atomic.get srv.e_completions in
    if not (Atomic.compare_and_set srv.e_completions old ((c, seq, reply) :: old))
    then push ()
  in
  push ();
  (* Wake the pump iff it is (or is about to go) blocking: [exchange]
     claims the armed flag so concurrent completers write one byte,
     not one each. *)
  if Atomic.exchange srv.e_wake_armed false then
    try ignore (Unix.write srv.e_wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let ec_close srv c =
  if not c.ec_dead then begin
    c.ec_dead <- true;
    Poller.remove srv.e_poll c.ec_fd;
    Hashtbl.remove srv.e_conns (Poller.fd_int c.ec_fd);
    try Unix.close c.ec_fd with Unix.Unix_error _ -> ()
  end

let ec_update_interest srv c =
  if not c.ec_dead then begin
    let backlog = c.ec_oend - c.ec_obeg in
    let pend = Queue.length c.ec_pending in
    let want_read =
      if c.ec_eof then false
      else if c.ec_reading then
        backlog <= ec_high && pend <= ec_pending_high  (* pause above high *)
      else backlog < ec_low && pend < ec_pending_low
      (* resume below low: hysteresis *)
    in
    c.ec_reading <- want_read;
    Poller.modify srv.e_poll c.ec_fd ~read:want_read ~write:c.ec_want_write
  end

(* Flush as much of [ec_obuf] as the socket accepts right now; EAGAIN
   registers write interest and returns.  Any hard error costs exactly
   this connection. *)
let rec ec_flush srv c =
  if (not c.ec_dead) && c.ec_oend > c.ec_obeg then begin
    match Unix.write c.ec_fd c.ec_obuf c.ec_obeg (c.ec_oend - c.ec_obeg) with
    | 0 -> ec_close srv c
    | n ->
        c.ec_obeg <- c.ec_obeg + n;
        if c.ec_obeg = c.ec_oend then begin
          c.ec_obeg <- 0;
          c.ec_oend <- 0;
          c.ec_want_write <- false;
          ec_update_interest srv c;
          if c.ec_hard_close then ec_close srv c
          else if
            c.ec_eof
            && c.ec_next_seq = c.ec_flush_seq
            && Hashtbl.length c.ec_done = 0
          then ec_close srv c
        end
        else ec_flush srv c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if not c.ec_want_write then begin
          c.ec_want_write <- true;
          ec_update_interest srv c
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ec_flush srv c
    | exception Unix.Unix_error _ -> ec_close srv c
  end
  else if
    (not c.ec_dead) && c.ec_oend = c.ec_obeg
    && (c.ec_hard_close
       || c.ec_eof
          && c.ec_next_seq = c.ec_flush_seq
          && Hashtbl.length c.ec_done = 0)
  then ec_close srv c

let ec_append_out c b off len =
  let need = c.ec_oend - c.ec_obeg + len in
  let cap = Bytes.length c.ec_obuf in
  if c.ec_oend + len > cap then
    if need <= cap then begin
      (* compact in place *)
      Bytes.blit c.ec_obuf c.ec_obeg c.ec_obuf 0 (c.ec_oend - c.ec_obeg);
      c.ec_oend <- c.ec_oend - c.ec_obeg;
      c.ec_obeg <- 0
    end
    else begin
      let ncap = max (cap * 2) (need + 4096) in
      let nb = Bytes.create ncap in
      Bytes.blit c.ec_obuf c.ec_obeg nb 0 (c.ec_oend - c.ec_obeg);
      c.ec_obuf <- nb;
      c.ec_oend <- c.ec_oend - c.ec_obeg;
      c.ec_obeg <- 0
    end;
  Bytes.blit b off c.ec_obuf c.ec_oend len;
  c.ec_oend <- c.ec_oend + len

(* Stage [reply] for [seq] and move every now-contiguous reply from
   the reorder window onto the out buffer, in request order — the
   byte-trace contract with the threaded backend.  Injected reply
   faults cut the frame exactly as the threaded [write_reply] does,
   then close after the cut bytes drain. *)
let ec_complete srv c seq reply =
  if not c.ec_dead then begin
    Hashtbl.replace c.ec_done seq reply;
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt c.ec_done c.ec_flush_seq with
      | None -> continue := false
      | Some r ->
          Hashtbl.remove c.ec_done c.ec_flush_seq;
          c.ec_flush_seq <- c.ec_flush_seq + 1;
          progressed := true;
          let faults = srv.e_faults in
          Buffer.clear srv.e_scratch;
          Codec.encode_reply srv.e_scratch r;
          let b = Buffer.to_bytes srv.e_scratch in
          Buffer.clear srv.e_scratch;
          if
            (not (Faults.is_none faults))
            && Faults.take faults.Faults.close_mid_frame
          then begin
            ec_append_out c b 0 (min 4 (Bytes.length b));
            c.ec_hard_close <- true;
            continue := false
          end
          else if
            (not (Faults.is_none faults))
            && Faults.take faults.Faults.truncate_replies
          then begin
            let cut = min (Bytes.length b) (4 + ((Bytes.length b - 4) / 2)) in
            ec_append_out c b 0 cut;
            c.ec_hard_close <- true;
            continue := false
          end
          else ec_append_out c b 0 (Bytes.length b)
    done;
    if !progressed then begin
      ec_flush srv c;
      (* A still-growing backlog may cross the high watermark. *)
      ec_update_interest srv c
    end
  end

(* Run the ext handler, never letting its exception reach the pump:
   an ext that raises costs its request an [Error] reply, not the
   event loop (parity with the threaded backend, where it would cost
   at most its own connection's domain). *)
let ec_exec_ext srv req =
  match srv.e_exec req with
  | r -> r
  | exception e -> Some (Codec.Error ("ext: " ^ Printexc.to_string e))

(* Feed the connection's pending queue into the shard mailboxes,
   oldest first, stopping at the first refusal.  [Shard.submit]
   invokes its callback with [Shed] only {e synchronously} (consumers
   never produce it), so reading the flag after the call is race-free
   on the pump; every other reply — including the synchronous
   service-stopped error — flows through the completion stack like an
   ordinary consumer-side reply.

   The ext handler is re-consulted for every request popped here: a
   request can park in [ec_pending] for an unbounded time under
   mailbox backpressure, and the verdict that let it fall through at
   dispatch may have flipped meanwhile (a cluster slot frozen by a
   migration cutover must answer [Moved], not commit at the old
   owner).  The re-check narrows that window to the submit itself;
   the flip can still race it (ownership changes run on the deferred
   worker), which is why the {e authoritative} gate is the service's
   execution-time admission filter ([Shard.admit]) — the cutover's
   quiesce barrier certifies anything that slips past this check.
   The ext contract makes the double call safe: handlers must be
   effect-free on requests they decline. *)
let ec_submit_pending srv c =
  let continue = ref true in
  while !continue && (not c.ec_dead) && not (Queue.is_empty c.ec_pending) do
    let seq, req = Queue.peek c.ec_pending in
    match ec_exec_ext srv req with
    | Some r ->
        ignore (Queue.pop c.ec_pending);
        ec_complete srv c seq r
    | None ->
        let shed = ref false in
        srv.e_svc.Shard.submit ~tid:srv.e_tid req (fun reply ->
            match reply with
            | Codec.Shed -> shed := true
            | r -> enqueue_completion srv c seq r);
        if !shed then begin
          srv.e_has_pending <- true;
          continue := false
        end
        else ignore (Queue.pop c.ec_pending)
  done

(* Dispatch one decoded request.  Deferred-classified ext requests
   (unbounded work: migration ingest, snapshot traversals) go to the
   worker domain and complete through the completion stack; the rest
   of the ext handler answers inline on the pump (redirect checks,
   table reads — bounded work); data requests go through the async
   submit under the pump's single tid, completing from the shard
   consumer's domain. *)
let ec_dispatch srv c payload =
  let seq = c.ec_next_seq in
  c.ec_next_seq <- seq + 1;
  match Codec.request_of_payload payload with
  | exception Codec.Malformed m ->
      (* Same contract as the threaded path: answer, then drop the
         connection — the stream position cannot be trusted. *)
      c.ec_eof <- true;
      ec_update_interest srv c;
      ec_complete srv c seq (Codec.Error ("malformed: " ^ m))
  | req ->
      if srv.e_defer req then begin
        Mutex.lock srv.e_work_lock;
        Queue.push (c, seq, req) srv.e_work;
        Condition.signal srv.e_work_cond;
        Mutex.unlock srv.e_work_lock
      end
      else (
        match ec_exec_ext srv req with
        | Some r -> ec_complete srv c seq r
        | None ->
            Queue.push (seq, req) c.ec_pending;
            ec_submit_pending srv c)

(* The deferred-ext worker: one domain draining [e_work] in order
   (FIFO keeps one client's control ops serialized), completing
   through the same stack as the shard consumers.  Replies for
   since-dead connections are dropped by [ec_complete]. *)
let ec_ext_worker srv () =
  let rec next () =
    Mutex.lock srv.e_work_lock;
    let rec take () =
      if Atomic.get srv.e_stop then None
      else if Queue.is_empty srv.e_work then begin
        Condition.wait srv.e_work_cond srv.e_work_lock;
        take ()
      end
      else Some (Queue.pop srv.e_work)
    in
    let item = take () in
    Mutex.unlock srv.e_work_lock;
    match item with
    | None -> ()
    | Some (c, seq, req) ->
        let reply =
          match ec_exec_ext srv req with
          | Some r -> r
          | None -> Codec.Error "ext: deferred request not handled"
        in
        enqueue_completion srv c seq reply;
        next ()
  in
  next ()

(* Drain every complete frame currently buffered.  [next_frame] is
   only entered when the 4-byte prefix and the full payload are
   already in [ec_buf], so the pull source never starves mid-frame —
   the same decoder instance a blocking transport would use. *)
let ec_parse srv c =
  let continue = ref true in
  while !continue && not c.ec_dead do
    let avail = c.ec_len - c.ec_pos in
    if avail < 4 then continue := false
    else
      let len = Int32.to_int (Bytes.get_int32_be c.ec_buf c.ec_pos) in
      if len < 0 || len > Codec.max_frame then begin
        (* Framing is gone; nothing can be answered safely. *)
        c.ec_eof <- true;
        if c.ec_next_seq = c.ec_flush_seq then ec_close srv c
        else ec_update_interest srv c;
        continue := false
      end
      else if avail < 4 + len then continue := false
      else begin
        (match Codec.next_frame c.ec_rd with
        | Codec.Frame payload -> ec_dispatch srv c payload
        | Codec.Eof | Codec.Torn _ ->
            (* Unreachable: the full frame is buffered. *)
            ec_close srv c
        | exception Codec.Malformed _ -> ec_close srv c);
        if c.ec_eof then continue := false
      end
  done

let ec_read srv c =
  if not c.ec_dead then begin
    (* Compact: parsed bytes make room before the next read. *)
    if c.ec_pos > 0 then begin
      if c.ec_len > c.ec_pos then
        Bytes.blit c.ec_buf c.ec_pos c.ec_buf 0 (c.ec_len - c.ec_pos);
      c.ec_len <- c.ec_len - c.ec_pos;
      c.ec_pos <- 0
    end;
    if c.ec_len = Bytes.length c.ec_buf then begin
      (* A frame larger than the buffer: grow to the framing bound. *)
      let ncap = min (2 * Bytes.length c.ec_buf) (4 + Codec.max_frame) in
      if ncap > Bytes.length c.ec_buf then begin
        let nb = Bytes.create ncap in
        Bytes.blit c.ec_buf 0 nb 0 c.ec_len;
        c.ec_buf <- nb
      end
    end;
    let space = Bytes.length c.ec_buf - c.ec_len in
    if space > 0 then begin
      match Unix.read c.ec_fd c.ec_buf c.ec_len space with
      | 0 ->
          c.ec_eof <- true;
          ec_update_interest srv c;
          (* Whatever is buffered still gets parsed and answered. *)
          ec_parse srv c;
          ec_flush srv c
      | n ->
          c.ec_len <- c.ec_len + n;
          ec_parse srv c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ec_parse srv c
      | exception Unix.Unix_error _ -> ec_close srv c
    end
  end

let ec_handle_read srv c =
  let faults = srv.e_faults in
  if
    (not (Faults.is_none faults))
    && c.ec_delay_until <= Unix.gettimeofday ()
    && Faults.take faults.Faults.delayed_reads
  then c.ec_delay_until <- Unix.gettimeofday () +. Faults.delay_s faults;
  (* A delayed connection leaves its bytes in the kernel buffer;
     level-triggered polling revisits it once the pause elapses. *)
  if c.ec_delay_until <= Unix.gettimeofday () then ec_read srv c

let ec_accept_burst srv =
  let continue = ref true in
  while !continue do
    match Unix.accept srv.e_listen with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
        if
          Atomic.get srv.e_stop
          || Hashtbl.length srv.e_conns >= srv.e_max_conns
          || not (Poller.accepts srv.e_poll fd)
          (* select backend: an fd value past FD_SETSIZE would fail
             EINVAL inside the poller — shed it, don't register it *)
        then shed_and_close fd
        else begin
          Unix.set_nonblock fd;
          let c =
            {
              ec_fd = fd;
              ec_buf = Bytes.create 4096;
              ec_len = 0;
              ec_pos = 0;
              ec_rd = Codec.frame_reader (fun _ _ _ -> 0);
              ec_obuf = Bytes.create 4096;
              ec_obeg = 0;
              ec_oend = 0;
              ec_next_seq = 0;
              ec_flush_seq = 0;
              ec_done = Hashtbl.create 8;
              ec_pending = Queue.create ();
              ec_eof = false;
              ec_dead = false;
              ec_want_write = false;
              ec_reading = true;
              ec_hard_close = false;
              ec_delay_until = 0.0;
            }
          in
          (* The decoder's pull source is the connection's own buffer
             window; [ec_parse] guarantees it is only pulled when a
             whole frame is present. *)
          c.ec_rd <-
            Codec.frame_reader (fun b off len ->
                let n = min len (c.ec_len - c.ec_pos) in
                Bytes.blit c.ec_buf c.ec_pos b off n;
                c.ec_pos <- c.ec_pos + n;
                n);
          Hashtbl.replace srv.e_conns (Poller.fd_int fd) c;
          Poller.add srv.e_poll fd ~read:true ~write:false
        end
  done

let ec_drain_completions srv =
  let rec take () =
    let old = Atomic.get srv.e_completions in
    if old == [] then []
    else if Atomic.compare_and_set srv.e_completions old [] then old
    else take ()
  in
  match take () with
  | [] -> ()
  | batch ->
      (* The stack yields newest-first; completions for one connection
         reorder through the seq window anyway, so order here only
         affects fairness, not correctness. *)
      List.iter (fun (c, seq, reply) -> ec_complete srv c seq reply) batch

let rec ec_pump srv () =
  let drain = Bytes.create 64 in
  (* Exception barrier: no single pass may kill the pump silently —
     the daemon would accept nothing while looking alive, with the
     exception resurfacing only at [Domain.join] during shutdown.
     A faulting pass is reported and the loop continues (per-
     connection damage was already contained by the per-conn error
     paths); only a persistent fault — every pass failing — stops the
     server, loudly (the shm multiplexer's discipline). *)
  let faulting = ref 0 in
  while not (Atomic.get srv.e_stop) do
    match
      ec_pump_pass srv drain
    with
    | () -> faulting := 0
    | exception e ->
        incr faulting;
        Printf.eprintf "kv evloop: pump pass failed: %s\n%!"
          (Printexc.to_string e);
        if !faulting >= 100 then begin
          Printf.eprintf
            "kv evloop: %d consecutive failing passes; stopping the server\n%!"
            !faulting;
          Atomic.set srv.e_stop true
        end
  done;
  (* Teardown on the pump: it owns every fd. *)
  Hashtbl.iter (fun _ c -> ec_close srv c) (Hashtbl.copy srv.e_conns);
  Poller.close srv.e_poll;
  (try Unix.close srv.e_listen with Unix.Unix_error _ -> ());
  (try Unix.close srv.e_wake_r with Unix.Unix_error _ -> ());
  try Unix.close srv.e_wake_w with Unix.Unix_error _ -> ()

and ec_pump_pass srv drain =
  begin
    ec_drain_completions srv;
    (* A drained completion means the consumer took envelopes off a
       mailbox — the moment refused requests are worth retrying. *)
    if srv.e_has_pending then begin
      srv.e_has_pending <- false;
      Hashtbl.iter
        (fun _ c ->
          if not (Queue.is_empty c.ec_pending) then begin
            ec_submit_pending srv c;
            ec_update_interest srv c
          end)
        srv.e_conns
    end;
    (* Sleep only with the wake armed, and only after a last look at
       the completion stack — a completer that pushed before seeing
       the armed flag is caught by the re-check, one that pushed after
       writes the wake byte (the shm mux idle-race discipline). *)
    Atomic.set srv.e_wake_armed true;
    let timeout_ms =
      if Atomic.get srv.e_completions != [] then 0
      else if srv.e_has_pending then 1
      else if not (Faults.is_none srv.e_faults) then 2
      else 50
    in
    let listen_raw = Poller.fd_int srv.e_listen in
    let wake_raw = Poller.fd_int srv.e_wake_r in
    ignore
      (Poller.wait srv.e_poll ~timeout_ms (fun fd ~readable ~writable ->
           if Poller.fd_int fd = listen_raw then ec_accept_burst srv
           else if Poller.fd_int fd = wake_raw then (
             try ignore (Unix.read srv.e_wake_r drain 0 (Bytes.length drain))
             with Unix.Unix_error _ -> ())
           else
             match Hashtbl.find_opt srv.e_conns (Poller.fd_int fd) with
             | None -> ()
             | Some c ->
                 if writable then ec_flush srv c;
                 if readable && not c.ec_dead then ec_handle_read srv c));
    Atomic.set srv.e_wake_armed false;
    (* Completions may have landed while handling events; faulted
       delayed connections are revisited by the shortened timeout. *)
    if not (Faults.is_none srv.e_faults) then
      Hashtbl.iter
        (fun _ c ->
          if
            c.ec_delay_until > 0.0
            && c.ec_delay_until <= Unix.gettimeofday ()
            && not c.ec_dead
          then begin
            c.ec_delay_until <- 0.0;
            ec_read srv c
          end)
        (Hashtbl.copy srv.e_conns)
  end

let serve_evloop svc ~path ~backlog ~faults ?ext ?ext_defer ~poller ~max_conns
    ~tid () =
  if tid < 0 || tid >= svc.Shard.clients then
    invalid_arg "Conn.serve_unix: evloop tid outside the client range";
  let listen_fd = bind_listen ~path ~backlog in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let poll = Poller.create poller in
  (* The select fallback cannot watch fd values past FD_SETSIZE:
     clamp the connection cap below the wall (accept re-checks the
     actual fd value and sheds strays). *)
  let max_conns = min max_conns (Poller.max_fds poll) in
  let exec =
    match ext with Some h -> h | None -> fun _ -> None
  in
  let srv =
    {
      e_svc = svc;
      e_listen = listen_fd;
      e_path = path;
      e_poll = poll;
      e_conns = Hashtbl.create 64;
      e_tid = tid;
      e_exec = exec;
      e_completions = Atomic.make [];
      e_wake_r = wake_r;
      e_wake_w = wake_w;
      e_wake_armed = Atomic.make false;
      e_stop = Atomic.make false;
      e_pump = None;
      e_faults = faults;
      e_max_conns = max_conns;
      e_stopped = Atomic.make false;
      e_scratch = Buffer.create 64;
      e_has_pending = false;
      e_defer = (match ext_defer with Some f -> f | None -> fun _ -> false);
      e_work = Queue.create ();
      e_work_lock = Mutex.create ();
      e_work_cond = Condition.create ();
      e_worker = None;
    }
  in
  Poller.add poll listen_fd ~read:true ~write:false;
  Poller.add poll wake_r ~read:true ~write:false;
  srv.e_pump <- Some (Domain.spawn (ec_pump srv));
  (match ext_defer with
  | Some _ -> srv.e_worker <- Some (Domain.spawn (ec_ext_worker srv))
  | None -> ());
  srv

let shutdown_evloop srv =
  if Atomic.compare_and_set srv.e_stopped false true then begin
    Atomic.set srv.e_stop true;
    (try ignore (Unix.write srv.e_wake_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    (* Wake the deferred-ext worker under its lock, so the stop flag
       is seen by the wait it interrupts. *)
    Mutex.lock srv.e_work_lock;
    Condition.broadcast srv.e_work_cond;
    Mutex.unlock srv.e_work_lock;
    (match srv.e_pump with
    | Some d ->
        Domain.join d;
        srv.e_pump <- None
    | None -> ());
    (match srv.e_worker with
    | Some d ->
        Domain.join d;
        srv.e_worker <- None
    | None -> ());
    try Unix.unlink srv.e_path with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)

type server =
  | Threaded of tserver * Faults.t
  | Evloop of eserver

type backend = [ `Threaded | `Evloop of Poller.backend ]

let serve_unix svc ~path ?(backlog = 16) ?(faults = Faults.none) ?ext
    ?ext_defer ?(backend = `Threaded) ?(max_conns = 1024) ?(evloop_tid = 0) ()
    =
  match backend with
  | `Threaded ->
      (* [ext_defer] is evloop-only: a threaded connection's handler
         domain may block in the ext handler without stalling anyone
         else. *)
      ignore ext_defer;
      let tids = Atomic.make (List.init svc.Shard.clients Fun.id) in
      let lease () =
        match pop_slot tids with
        | None -> None
        | Some tid ->
            Some (exec_of ?ext svc ~tid, fun () -> push_slot tids tid)
      in
      Threaded (serve_threaded ~path ~backlog ~faults ~lease, faults)
  | `Evloop poller ->
      Evloop
        (serve_evloop svc ~path ~backlog ~faults ?ext ?ext_defer ~poller
           ~max_conns ~tid:evloop_tid ())

let serve_unix_fn ~handler ~path ?(backlog = 16) ?(faults = Faults.none)
    ?(max_conns = 64) () =
  (* Handler-function server (the cluster proxy): thread per
     connection — the handler may block on upstream daemons — with a
     token pool instead of tid leases. *)
  let tokens = Atomic.make (List.init max_conns Fun.id) in
  let lease () =
    match pop_slot tokens with
    | None -> None
    | Some tok -> Some (handler, fun () -> push_slot tokens tok)
  in
  Threaded (serve_threaded ~path ~backlog ~faults ~lease, faults)

let shutdown = function
  | Threaded (t, _) -> shutdown_threaded t
  | Evloop e -> shutdown_evloop e

let faults = function Threaded (_, f) -> f | Evloop e -> e.e_faults

let call_fd fd req =
  let out = Buffer.create 32 in
  Codec.encode_request out req;
  write_frame fd out;
  match read_frame fd with
  | Some payload -> Codec.reply_of_payload payload
  | None -> raise Closed

(* ------------------------------------------------------------------ *)

(* In-process zero-copy reads: the client leases a Shard zero-copy
   slot and reads the live maps from its own domain inside an
   enter/leave bracket — GET never crosses the mailbox, is never
   copied into a reply frame, and costs no syscall.  The SMR scheme
   is the sender/receiver isolation: a transparent scheme needs no
   per-read protection (the bracket alone licenses the read), and a
   client that stalls inside its bracket can only pin what a robust
   scheme bounds.  Writes still go through the ordinary submit path —
   the consumer stays each map's only mutator. *)
module Zerocopy = struct
  type client = {
    svc : Shard.t;
    slot : int;
    tid : int;
    mutable in_bracket : bool;
    mutable closed : bool;
  }

  let connect svc ~tid =
    if tid < 0 || tid >= svc.Shard.clients then
      invalid_arg "Zerocopy.connect: tid outside the client range";
    match svc.Shard.zc_lease () with
    | None -> None
    | Some slot -> Some { svc; slot; tid; in_bracket = false; closed = false }

  let check c =
    if c.closed then invalid_arg "Zerocopy: client is closed"

  let enter c =
    check c;
    if c.in_bracket then invalid_arg "Zerocopy.enter: bracket already open";
    c.in_bracket <- true;
    c.svc.Shard.zc_enter ~slot:c.slot

  let leave c =
    check c;
    if not c.in_bracket then invalid_arg "Zerocopy.leave: no open bracket";
    c.svc.Shard.zc_leave ~slot:c.slot;
    c.in_bracket <- false

  let get c k =
    check c;
    if not c.in_bracket then
      invalid_arg "Zerocopy.get: read outside the bracket";
    c.svc.Shard.zc_get ~slot:c.slot k

  let with_bracket c f =
    enter c;
    Fun.protect ~finally:(fun () -> if c.in_bracket then leave c) f

  (* The write path (and any non-GET request): the ordinary routed
     call under the client's producer tid. *)
  let call c req =
    check c;
    Shard.call c.svc ~tid:c.tid req

  let close c =
    if not c.closed then begin
      if c.in_bracket then leave c;
      c.closed <- true;
      c.svc.Shard.zc_release c.slot
    end

  let slot c = c.slot
end

module Loopback = struct
  type client = { svc : Shard.t; tid : int; buf : Buffer.t }

  let connect svc ~tid =
    if tid < 0 || tid >= svc.Shard.clients then
      invalid_arg "Loopback.connect: tid outside the client range";
    { svc; tid; buf = Buffer.create 64 }

  let strip_frame b = Bytes.sub b 4 (Bytes.length b - 4)

  let call c req =
    (* The full wire path, in memory: encode the request, decode it as
       the server would, execute, encode the reply, decode it as the
       client would.  A codec regression fails here exactly as it
       would over a socket. *)
    Buffer.clear c.buf;
    Codec.encode_request c.buf req;
    let req = Codec.request_of_payload (strip_frame (Buffer.to_bytes c.buf)) in
    let reply = Shard.call c.svc ~tid:c.tid req in
    Buffer.clear c.buf;
    Codec.encode_reply c.buf reply;
    Codec.reply_of_payload (strip_frame (Buffer.to_bytes c.buf))
end
