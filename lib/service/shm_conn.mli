(** Shared-memory transport: {!Codec} frames over mmap'd SPSC rings.

    The third [Conn] backend.  The daemon owns a listen FIFO (the
    rendezvous name, what the socket path is to the unix transport);
    a client creates its own segment file beside it — two rings plus
    doorbell FIFOs, see [Shm.Seg] — and announces
    ["<segpath> <generation>\n"] over the listen FIFO.  The daemon
    validates the announced generation against the segment header on
    attach, so a dead peer's leftover file is swept, not conversed
    with.

    One multiplexer domain serves every connection: it pumps request
    rings, submits asynchronously to the shard service, and emits
    replies in request order from a per-connection reorder window.
    Under load neither side makes a syscall per operation — requests
    and replies move purely through shared memory, and the doorbell
    protocol (spin, publish a waiting flag, re-check, then a bounded
    [select]) only reaches the kernel when a side actually sleeps. *)

exception Unavailable of string
(** Connect failed: no daemon on the listen FIFO (or it vanished
    mid-handshake). *)

(** {1 Client} *)

type client

val connect : path:string -> client
(** Create a fresh segment, announce it to the daemon at [path].
    @raise Unavailable if no daemon is listening.
    Raises [Unix_error]/[Shm.Seg.Bad_segment] on filesystem trouble. *)

val call : client -> Codec.request -> Codec.reply
(** Blocking round trip over the rings.  @raise Conn.Closed once the
    daemon stamped the segment closed (shutdown, shed, or a damaged
    frame detected by either side's torn-write check). *)

val close : client -> unit
(** Stamp the segment closed and wake the daemon so it sweeps the
    connection.  Idempotent. *)

(** {2 Cross-process zero-copy}

    When the daemon's store is arena-backed ([Shard.config.arena]),
    a client may negotiate {e by-reference} GET replies: the daemon
    answers [Val_ref ⟨class, offset, len, gen⟩] frames and the client
    copies the payload straight out of its own mapping of the arena
    file, validating the generation stamp after the copy — a changed
    stamp (the block was retired under the reader) falls back to the
    daemon-side copy path ([Getc]).  Around each such GET the client
    publishes its era in the reservation slot the daemon assigned it,
    so retired batches are handed to it rather than freed under it —
    the Hyaline-S discipline stretched across the process boundary. *)

val enable_zc : client -> bool
(** Negotiate by-reference replies: send [A_info], attach the arena
    file beside the listen path under the returned generation, and
    announce our pid in the assigned reservation slot.  [false] if
    the daemon has no arena or the attach failed — calls simply keep
    taking the materialized path.  Idempotent. *)

val zc_active : client -> bool
val zc_slot : client -> int option

val zc_hold : client -> unit
(** Park the reservation bracket open (era pinned at entry) across
    subsequent calls — the stalled-remote-reader adversary switch.
    Reads stay correct throughout (the generation check is
    unconditional); what the hold changes is how much retired-but-
    unfreed garbage the daemon's policy lets this reader pin. *)

val zc_release : client -> unit
(** End a {!zc_hold}: detach the handed batch list and release it. *)

(** {1 Server} *)

val claim_listen_path : string -> unit
(** Probe-and-sweep the rendezvous path without serving: raise
    [Conn.Addr_in_use] if a live daemon reads the FIFO, otherwise
    unlink it along with every leftover segment, doorbell and arena
    file it scopes.  [serve] runs this itself; a daemon that creates
    its arena file (O_EXCL) {e before} serving calls it first so the
    stale sweep cannot eat the fresh arena. *)

type server

val serve :
  Shard.t ->
  path:string ->
  ?faults:Conn.Faults.t ->
  ?ext:(Codec.request -> Codec.reply option) ->
  unit ->
  server
(** Claim [path] (same probe discipline as the unix transport: a FIFO
    some live daemon reads raises [Conn.Addr_in_use]; a stale one is
    swept along with leftover segments), create the listen FIFO, and
    start the multiplexer domain.  Producer tids are leased per
    connection from the service's client-slot pool; when all are
    taken a new connection is answered with one [Shed] reply and
    closed.  [faults] maps the [Conn.Faults] reply damage onto
    ring-level torn writes — the client observes [Conn.Closed], as on
    the socket path.  [ext] is consulted before shard routing.

    If the service was built with [zc_readers >= 1], the server leases
    one zero-copy slot and answers GETs inline from the multiplexer
    domain — a bracketed read of the live map, skipping the mailbox
    round trip — whenever the connection's reorder window is empty
    (all earlier operations already answered, preserving per-client
    program order).  Writes always take the routed path: the shard
    consumer stays each map's only mutator.

    On an arena-backed store the inline answer for a connection that
    negotiated via [A_info] is the [Val_ref] minted from the packed
    reference the map holds; connections that never negotiated have
    their GETs routed to the shard consumer, which materializes the
    value — raw references never reach a peer without a mapping.  The
    multiplexer also sweeps arena reservation slots: a connection's
    slot is force-cleared when the connection dies, and idle passes
    clear slots whose announced pid no longer exists. *)

val shutdown : server -> unit
(** Stop the multiplexer, stamp every connection's segment closed
    (waking blocked clients), unlink all segment files and FIFOs,
    including the listen FIFO.  Idempotent.  Does NOT stop the
    service. *)

val faults : server -> Conn.Faults.t
