(** Shared-memory transport: {!Codec} frames over mmap'd SPSC rings.

    The third [Conn] backend.  The daemon owns a listen FIFO (the
    rendezvous name, what the socket path is to the unix transport);
    a client creates its own segment file beside it — two rings plus
    doorbell FIFOs, see [Shm.Seg] — and announces
    ["<segpath> <generation>\n"] over the listen FIFO.  The daemon
    validates the announced generation against the segment header on
    attach, so a dead peer's leftover file is swept, not conversed
    with.

    One multiplexer domain serves every connection: it pumps request
    rings, submits asynchronously to the shard service, and emits
    replies in request order from a per-connection reorder window.
    Under load neither side makes a syscall per operation — requests
    and replies move purely through shared memory, and the doorbell
    protocol (spin, publish a waiting flag, re-check, then a bounded
    [select]) only reaches the kernel when a side actually sleeps. *)

exception Unavailable of string
(** Connect failed: no daemon on the listen FIFO (or it vanished
    mid-handshake). *)

(** {1 Client} *)

type client

val connect : path:string -> client
(** Create a fresh segment, announce it to the daemon at [path].
    @raise Unavailable if no daemon is listening.
    Raises [Unix_error]/[Shm.Seg.Bad_segment] on filesystem trouble. *)

val call : client -> Codec.request -> Codec.reply
(** Blocking round trip over the rings.  @raise Conn.Closed once the
    daemon stamped the segment closed (shutdown, shed, or a damaged
    frame detected by either side's torn-write check). *)

val close : client -> unit
(** Stamp the segment closed and wake the daemon so it sweeps the
    connection.  Idempotent. *)

(** {1 Server} *)

type server

val serve :
  Shard.t ->
  path:string ->
  ?faults:Conn.Faults.t ->
  ?ext:(Codec.request -> Codec.reply option) ->
  unit ->
  server
(** Claim [path] (same probe discipline as the unix transport: a FIFO
    some live daemon reads raises [Conn.Addr_in_use]; a stale one is
    swept along with leftover segments), create the listen FIFO, and
    start the multiplexer domain.  Producer tids are leased per
    connection from the service's client-slot pool; when all are
    taken a new connection is answered with one [Shed] reply and
    closed.  [faults] maps the [Conn.Faults] reply damage onto
    ring-level torn writes — the client observes [Conn.Closed], as on
    the socket path.  [ext] is consulted before shard routing.

    If the service was built with [zc_readers >= 1], the server leases
    one zero-copy slot and answers GETs inline from the multiplexer
    domain — a bracketed read of the live map, skipping the mailbox
    round trip — whenever the connection's reorder window is empty
    (all earlier operations already answered, preserving per-client
    program order).  Writes always take the routed path: the shard
    consumer stays each map's only mutator. *)

val shutdown : server -> unit
(** Stop the multiplexer, stamp every connection's segment closed
    (waking blocked clients), unlink all segment files and FIFOs,
    including the listen FIFO.  Idempotent.  Does NOT stop the
    service. *)

val faults : server -> Conn.Faults.t
