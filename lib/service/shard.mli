(** The sharded, batched KV service core.

    A hash-partitioned router over N {!Dstruct.Map_intf.S} instances.
    Each shard owns one map plus a bounded {!Mailbox}; producers
    ({!val-submit}) hash the request key to a shard and try to mail it,
    shedding with an immediate {!Codec.Shed} reply when the mailbox is
    at capacity — overload degrades to explicit rejections, never to
    an unbounded queue.  One consumer domain per shard drains its
    mailbox in runs and executes the run under a {e single}
    [enter]/[leave] bracket with [trim] chained inside — the paper's
    batching insight (amortize reservation traffic) applied to the
    serving path, at the Figure-10b trimming discipline.

    All shard mailboxes share one control-plane tracker of the same
    scheme as the data plane, so the service's own plumbing dogfoods
    reclamation: {!set_stalled} parks a shard consumer {e inside} a
    control-plane bracket, turning it into the paper's §2.3 stalled
    adversary against the service itself.  Robust schemes bound the
    resulting [control_stats] backlog; non-robust ones let it grow
    with the surviving shards' traffic.

    Because a shard's map has exactly one mutator (its consumer), a
    multi-operation request like {!Codec.Cas} is trivially atomic —
    sharding buys linearizable read-modify-write without adding a CAS
    primitive to the maps. *)

type ack_hook = {
  h_mutation : shard:int -> Codec.mutation -> unit;
      (** Called from the consumer, inside the run's bracket, for each
          {e applied} mutation in execution order (reads, misses and
          failed CASes produce none) — the WAL append tap. *)
  h_commit : shard:int -> unit;
      (** Called once per drained run, after the bracket closes and
          {e before} any of the run's acks fire — the group-commit
          fsync point.  If it raises, none of the run's replies are
          delivered and the consumer dies as a crashed shard
          (un-acked work is never durable, durable-but-unacked work is
          re-derived from the log): see {!t.recover}. *)
}
(** Durability tap on the consumer path ([lib/replica]'s WAL wiring).
    With the distinguished {!no_hook} instance the serving path is
    byte-identical to the hookless one — a single physical-equality
    check per drained run (measured in bench/main.ml, replica rows);
    replies then fire inline instead of being deferred to commit. *)

val no_hook : ack_hook
(** The permanently-disabled instance; recognized by [==]. *)

type admit = tid:int -> Codec.request -> Codec.reply option
(** Execution-time admission filter.  Consulted by the shard consumer
    for every data request {e at execution}, in the same serial stream
    as the mutations it gates: [Some r] answers the request with [r]
    without touching the map (no mutation, no WAL record — the reply
    rides the run's ordinary ack path, deferred past the group commit
    like any other); [None] admits it.  [tid] is the producer slot the
    request was submitted under, so a filter can exempt privileged
    producers (the cluster's migration-ingest tid).

    This is the only ownership check that cannot go stale between
    check and execution: a transport-side check runs at dispatch, and
    the request can then sit in a backpressure queue or a mailbox for
    an unbounded time while ownership moves.  [Cluster.Node] installs
    its slot-ownership check here so a frozen slot's parked writes
    answer [Moved] instead of committing at the old owner. *)

val admit_all : admit
(** The permanently-open instance every service starts with;
    recognized by [==] — one physical-equality check per drained run
    when no filter is installed. *)

type config = {
  shards : int;  (** number of partitions / consumer domains *)
  clients : int;
      (** producer tid slots: every concurrent submitter needs its own
          [tid] in [[0, clients)] (transparent attach/detach — a tid
          may be reused as soon as its previous owner is gone) *)
  mailbox_capacity : int;  (** per-shard bound; full = shed *)
  batch : int;  (** max requests drained per bracket *)
  trim_every : int;  (** [trim] chained every this many requests *)
  smr : Smr.Config.t;
      (** scheme knobs; [nthreads] is overridden internally *)
  objectives : Slo.objective list;
  seed : int;
  hook : ack_hook;  (** durability tap; {!no_hook} = disabled *)
  zc_readers : int;
      (** zero-copy reader slots: in-process clients that read the
          live maps directly from their own domains, each owning map
          tid [2 + slot] on every shard (0 = feature off) *)
  arena : Shmalloc.Arena.t option;
      (** when set, values live as blocks in this shared arena and
          the maps store packed references; remote GETs over the shm
          transport may then be answered by reference.  The arena is
          owned by the caller (create it with [tids >= shards] so
          every consumer has a retire builder; tear it down after
          {!t.stop}).  Not composable with the WAL hook: arena blobs
          do not fit the int-valued mutation format. *)
}

val default_config : config
(** 4 shards, 8 clients, capacity 256, batch 64, trim every 16,
    {!no_hook}, no zero-copy readers, no arena. *)

type t = {
  submit : tid:int -> Codec.request -> (Codec.reply -> unit) -> unit;
      (** Route and mail the request; the callback fires exactly once
          — from the shard consumer on completion, or synchronously
          with {!Codec.Shed} ([Error] after {!val-stop}).  [tid] is the
          producer's control-plane slot. *)
  nshards : int;
  clients : int;
  shard_of_key : int -> int;
  shard_depth : int -> int;  (** mailbox occupancy gauge *)
  sheds : unit -> int;  (** total shed replies *)
  processed : unit -> int;  (** total executed requests *)
  slo : Slo.t;  (** submit→reply latency, queueing included *)
  batch_hist : Obs.Hist.t;  (** drained-run lengths *)
  gauges : unit -> (string * int) list;
      (** [kv_shard<i>_depth]/[_processed]/[_stalled], totals, and the
          control-plane tracker's scheme gauges ([kv_ctl_*]). *)
  control_stats : unit -> Smr.Stats.t;
      (** Shared mailbox tracker's reclamation counters. *)
  data_stats : unit -> Smr.Stats.t list;  (** one per shard map *)
  set_stalled : shard:int -> bool -> unit;
      (** Park/unpark a shard consumer inside a control-plane bracket
          (robustness scenario).  Its mailbox keeps accepting until
          full, then sheds; other shards are unaffected. *)
  is_stalled : int -> bool;
  is_parked : int -> bool;
      (** [true] once a stalled consumer is actually spinning inside
          its stall bracket — from this point the mailbox is
          guaranteed undrained until unstall.  Fault injectors wait on
          this for deterministic shed accounting. *)
  crash : shard:int -> unit;
      (** Chaos fault: the consumer takes a control-plane reservation
          and its domain terminates {e without leaving it} — the
          paper's §2.3 dead thread, aimed at the service's own
          control plane.  Joins the domain, so on return the death is
          complete: the heartbeat is frozen, queued requests stay
          queued (new ones accepted until the mailbox sheds), and the
          abandoned bracket pins retirements until {!t.recover}.
          @raise Invalid_argument if already crashed. *)
  recover : shard:int -> unit;
      (** Crash recovery (the reaper's action): force-exit the dead
          consumer's abandoned control-plane bracket — its tid slot is
          reclaimed and transparently reused — then respawn the
          consumer, which drains the backlog.
          @raise Invalid_argument if the shard is not crashed. *)
  consumer_alive : int -> bool;
      (** [false] iff crashed and not yet recovered. *)
  heartbeat : int -> int;
      (** Monotonic per-shard consumer liveness counter (bumped every
          loop iteration); freezes on crash or stall — the reaper's
          detection gauge, also exported as [kv_shard<i>_heartbeat]. *)
  inject_oom : shard:int -> n:int -> unit;
      (** Chaos fault: the next [n] node allocations of this shard's
          map raise [Mpool.Injected_oom]; the affected requests get a
          clean [Error] reply with no state mutation (maps allocate
          before their first published write). *)
  snapshot : shard:int -> gate:(int -> unit) -> (int * int) list;
      (** Traverse the shard's {e live} map inside ONE tid-1
          enter/leave bracket while the consumer keeps serving — the
          paper's long-running-reader adversary, run on purpose.
          Returns the bindings sorted by key.  The traversal is a
          fuzzy snapshot: concurrent mutations may or may not be
          reflected, which is sound because WAL replay from the
          snapshot's seq re-applies them as absolute writes.  [gate]
          is called with 0 right after entering the bracket and with
          [i] before visiting binding [i+1]; hanging in it stretches
          the bracket deterministically (chaos uses this to pin a
          reservation while churn retires nodes).  At most one
          snapshot per shard at a time.
          @raise Invalid_argument if one is already running. *)
  snapshot_keys :
    shard:int -> keys:int list -> gate:(int -> unit) -> (int * int option) list;
      (** The delta-snapshot read: like {!t.snapshot} (same tid-1
          bracket, same one-at-a-time exclusivity, same [gate]
          cadence) but visits only [keys] — a dirty set's contents —
          so the traversal cost scales with the write rate, not the
          map size.  Returns [(key, value option)] sorted by key;
          [None] means the key is deleted (shipped as a tombstone).
          Reads are as fuzzy as the full fold's and sound for the same
          reason: WAL replay from the stamp re-applies absolute
          mutations.
          @raise Invalid_argument if a snapshot is already running. *)
  zc_readers : int;  (** configured zero-copy slot count *)
  zc_lease : unit -> int option;
      (** Lease a free zero-copy slot ([None] = all taken).  Slots are
          transparently reusable: release returns the slot to the pool
          with no quiescence step (paper §2.4). *)
  zc_release : int -> unit;
  zc_enter : slot:int -> unit;
      (** Open the slot's bracket on {e every} shard map.  From here
          until {!t.zc_leave}, values read via {!t.zc_get} are
          guaranteed not to be reclaimed under the reader — for
          transparent schemes (Hyaline*/Crystalline) the bracket is
          the entire protocol, no per-read work; slot-protected
          schemes take their per-dereference guards inside the read.
          A stalled holder is the paper's §2.3 adversary: robust
          schemes bound what it pins, EBR does not. *)
  zc_leave : slot:int -> unit;
  zc_get : slot:int -> int -> int option;
      (** Read the live map in place from the calling domain — no
          mailbox hop, no consumer mediation, no reply copy.  Must be
          called between {!t.zc_enter} and {!t.zc_leave}.  Linearizes
          with the consumer's writes at the node read (a concurrent
          PUT may or may not be visible, as over any transport).
          On an arena-backed store the returned int is the {e packed
          arena reference} — exactly what a [Val_ref] is minted from
          (generation stamp included, read atomically with the
          offset). *)
  arena : Shmalloc.Arena.t option;
      (** the backing arena, when the store is arena-backed — the shm
          mux uses it to answer [A_info] and mint [Val_ref]s. *)
  set_admit : admit -> unit;
      (** Install the execution-time admission filter (see {!admit}).
          Install once, at wiring time, before traffic: consumers read
          the filter once per drained run, so a swap under load takes
          effect on a run boundary.  Note that {!t.zc_get} reads do
          not pass through the filter (they never produce acks). *)
  stop : unit -> unit;
      (** Stop consumers, fail queued requests with [Error], join
          domains, flush every tracker.  Idempotent. *)
  scheme_name : string;
  structure_name : string;
}

val create :
  structure:Workload.Registry.structure ->
  scheme:Workload.Registry.scheme ->
  config ->
  t
(** Instantiate maps and mailboxes for the (structure, scheme) pair
    and start one consumer domain per shard.
    @raise Invalid_argument on a non-positive config field or an
    incompatible pair (pointer-grained scheme on bonsai). *)

val call : t -> tid:int -> Codec.request -> Codec.reply
(** Synchronous {!t.submit}: block (spin, then politely sleep) until
    the reply lands.  The closed-loop client primitive. *)

val pipeline : t -> tid:int -> ?window:int -> n:int -> (int -> Codec.request) -> unit
(** Windowed bulk submit: requests [gen 0 .. gen (n-1)] with up to
    [window] (default 128) in flight, shed requests resubmitted,
    returning once every request has a non-shed reply.  The bulk-load
    primitive: {!val-call}'s one-at-a-time handshake pays a producer/
    consumer wakeup per request when domains outnumber cores;
    windowing amortizes it across the mailbox.  Single producer — all
    submissions ride the one [tid] slot. *)
