type mutation = Set of { key : int; value : int } | Unset of int

type request =
  | Get of int
  | Put of { key : int; value : int }
  | Del of int
  | Cas of { key : int; expected : int; desired : int }
  | Rep_info
  | Rep_pull of { shard : int; from : int; max : int }
  | Cl_info
  | Cl_grant of { slot : int; version : int; token : int }
  | Cl_freeze of { slot : int; target : int }
  | Cl_release of { slot : int }
  | Cl_snap of { slot : int; shard : int; cursor : int; max : int; base : int }
  | Cl_apply of { records : (int * mutation) list }
  | Cl_base of { slot : int }
  | Cl_purge of { slot : int }
  | Putb of { key : int; value : string }
  | Getc of int
  | A_info

type reply =
  | Value of int
  | Value_blob of string
  | Val_ref of { cls : int; off : int; len : int; gen : int }
  | Arena_info of { slot : int; gen : int; size : int }
  | Not_found
  | Created
  | Updated
  | Deleted
  | Cas_ok
  | Cas_fail
  | Shed
  | Error of string
  | Rep_state of int array
  | Rep_batch of { last : int; records : (int * mutation) list }
  | Moved of { slot : int; node : int }
  | Cl_state of { version : int; node : int; owners : int array }
  | Cl_snap_batch of {
      seq : int;
      next : int;
      kvs : (int * int) list;
      tombs : int list;
      delta : bool;
    }
  | Cl_ok
  | Cl_token of { token : int }

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Generous: the largest legitimate payload is CAS (1 + 3*8 bytes);
   Error replies carry a message we cap well below this. *)
let max_frame = 4096

(* Opcodes.  Requests in 0x01..0x7f, replies with the high bit set, so
   a stray reply fed to the request decoder fails loudly. *)
let op_get = 0x01
let op_put = 0x02
let op_del = 0x03
let op_cas = 0x04
let op_rep_info = 0x05
let op_rep_pull = 0x06
let op_cl_info = 0x07
let op_cl_grant = 0x08
let op_cl_freeze = 0x09
let op_cl_release = 0x0a
let op_cl_snap = 0x0b
let op_cl_apply = 0x0c
let op_cl_base = 0x0d
let op_cl_purge = 0x0e
let op_putb = 0x0f
let op_getc = 0x10
let op_a_info = 0x11
let op_value = 0x81
let op_not_found = 0x82
let op_created = 0x83
let op_updated = 0x84
let op_deleted = 0x85
let op_cas_ok = 0x86
let op_cas_fail = 0x87
let op_shed = 0x88
let op_error = 0x89
let op_rep_state = 0x8a
let op_rep_batch = 0x8b
let op_moved = 0x8c
let op_cl_state = 0x8d
let op_cl_snap_batch = 0x8e
let op_cl_ok = 0x8f
let op_cl_token = 0x90
let op_value_blob = 0x91
let op_val_ref = 0x92
let op_arena_info = 0x93

(* Snapshot frame opcodes: disjoint from both wire opcode ranges so a
   snapshot frame fed to a wire decoder (or vice versa) fails loudly.
   WAL record payloads start with the mutation kind byte (0/1), also
   outside both wire ranges. *)
let op_snap_head = 0x13
let op_snap_kv = 0x14
let op_snap_delta_head = 0x15
let op_snap_tomb = 0x16

(* Mutation records inside Rep_batch payloads and WAL frames:
   [kind(1)][seq(8)][key(8)] plus [value(8)] for Set. *)
let mutation_len = function Set _ -> 25 | Unset _ -> 17

(* The largest number of records a Rep_batch can carry inside
   max_frame: 1 (op) + 8 (last) + 2 (count) + n*25 <= 4096. *)
let rep_batch_max = 150

(* Cl_apply shares the mutation record format: 1 + 2 + n*25 <= 4096
   allows 163; capped at the Rep_batch figure so one pulled batch
   always re-ships as one apply frame. *)
let cl_apply_max = 150

(* Byte-valued payloads: a Putb carries [op][key(8)][len(2)][bytes],
   a Value_blob just [op][bytes] — both capped so the frame plus its
   4-byte length prefix stays well inside max_frame. *)
let blob_max = max_frame - 16

(* Cl_snap_batch bindings are 16 bytes each (tombstones 8): the
   22-byte header plus 200 bindings is 3222 <= 4096, leaving slack for
   a page's tombstones.  Pagers cap a page's binding+tombstone count
   at this figure, so the worst all-bindings page still fits. *)
let cl_snap_max = 200

(* OCaml ints are 63-bit; the wire carries 64-bit two's complement, so
   every OCaml int round-trips exactly. *)
let put_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)

let get_i64 payload off =
  if Bytes.length payload < off + 8 then
    malformed "truncated operand at offset %d" off;
  Int64.to_int (Bytes.get_int64_be payload off)

let expect_len payload n op =
  if Bytes.length payload <> n then
    malformed "opcode 0x%02x: payload %d bytes, expected %d" op
      (Bytes.length payload) n

let frame buf payload_len fill =
  Buffer.add_int32_be buf (Int32.of_int payload_len);
  let before = Buffer.length buf in
  fill ();
  assert (Buffer.length buf - before = payload_len)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3 reflected polynomial, the zlib one) for WAL and
   snapshot records.  Table-driven; OCaml's 63-bit ints hold the
   32-bit state without boxing. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32: range out of bounds";
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* A checksummed frame: ordinary frame whose payload ends in the CRC32
   of everything before it.  [fill] writes the body; the CRC is
   appended here so encoders cannot forget it. *)
let checked_frame buf body_len fill =
  frame buf (body_len + 4) (fun () ->
      let start = Buffer.length buf in
      fill ();
      assert (Buffer.length buf - start = body_len);
      let body = Buffer.sub buf start body_len in
      Buffer.add_int32_be buf (Int32.of_int (crc32 body ~pos:0 ~len:body_len)))

(* Validate a checksummed payload; returns the body length.  The
   [what] tag names the record kind in the failure message. *)
let check_crc what payload =
  let len = Bytes.length payload in
  if len < 5 then malformed "%s: payload %d bytes, too short for a CRC" what len;
  let body_len = len - 4 in
  let stored = Int32.to_int (Bytes.get_int32_be payload body_len) land 0xFFFFFFFF in
  let actual = crc32 (Bytes.unsafe_to_string payload) ~pos:0 ~len:body_len in
  if stored <> actual then
    malformed "%s: CRC mismatch (stored 0x%08x, computed 0x%08x)" what stored
      actual;
  body_len

let put_mutation buf seq (m : mutation) =
  match m with
  | Set { key; value } ->
      Buffer.add_uint8 buf 1;
      put_i64 buf seq;
      put_i64 buf key;
      put_i64 buf value
  | Unset k ->
      Buffer.add_uint8 buf 0;
      put_i64 buf seq;
      put_i64 buf k

let get_mutation payload off =
  if Bytes.length payload < off + 17 then
    malformed "truncated mutation at offset %d" off;
  let kind = Bytes.get_uint8 payload off in
  let seq = get_i64 payload (off + 1) in
  match kind with
  | 0 -> ((seq, Unset (get_i64 payload (off + 9))), off + 17)
  | 1 ->
      if Bytes.length payload < off + 25 then
        malformed "truncated Set mutation at offset %d" off;
      ( (seq, Set { key = get_i64 payload (off + 9); value = get_i64 payload (off + 17) }),
        off + 25 )
  | k -> malformed "unknown mutation kind %d at offset %d" k off

let get_mutations payload ~off ~count =
  let o = ref off in
  let records =
    List.init count (fun _ ->
        let r, next = get_mutation payload !o in
        o := next;
        r)
  in
  if !o <> Bytes.length payload then
    malformed "mutation batch: %d trailing bytes" (Bytes.length payload - !o);
  records

let encode_request buf = function
  | Get k ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_get;
          put_i64 buf k)
  | Put { key; value } ->
      frame buf 17 (fun () ->
          Buffer.add_uint8 buf op_put;
          put_i64 buf key;
          put_i64 buf value)
  | Del k ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_del;
          put_i64 buf k)
  | Cas { key; expected; desired } ->
      frame buf 25 (fun () ->
          Buffer.add_uint8 buf op_cas;
          put_i64 buf key;
          put_i64 buf expected;
          put_i64 buf desired)
  | Rep_info -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_rep_info)
  | Rep_pull { shard; from; max } ->
      frame buf 25 (fun () ->
          Buffer.add_uint8 buf op_rep_pull;
          put_i64 buf shard;
          put_i64 buf from;
          put_i64 buf max)
  | Cl_info -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cl_info)
  | Cl_grant { slot; version; token } ->
      frame buf 25 (fun () ->
          Buffer.add_uint8 buf op_cl_grant;
          put_i64 buf slot;
          put_i64 buf version;
          put_i64 buf token)
  | Cl_freeze { slot; target } ->
      frame buf 17 (fun () ->
          Buffer.add_uint8 buf op_cl_freeze;
          put_i64 buf slot;
          put_i64 buf target)
  | Cl_release { slot } ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_cl_release;
          put_i64 buf slot)
  | Cl_snap { slot; shard; cursor; max; base } ->
      frame buf 41 (fun () ->
          Buffer.add_uint8 buf op_cl_snap;
          put_i64 buf slot;
          put_i64 buf shard;
          put_i64 buf cursor;
          put_i64 buf max;
          put_i64 buf base)
  | Cl_base { slot } ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_cl_base;
          put_i64 buf slot)
  | Cl_purge { slot } ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_cl_purge;
          put_i64 buf slot)
  | Putb { key; value } ->
      let n = String.length value in
      if n > blob_max then
        invalid_arg "Codec.encode_request: Putb value over blob_max";
      frame buf
        (1 + 8 + 2 + n)
        (fun () ->
          Buffer.add_uint8 buf op_putb;
          put_i64 buf key;
          Buffer.add_uint16_be buf n;
          Buffer.add_string buf value)
  | Getc k ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_getc;
          put_i64 buf k)
  | A_info -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_a_info)
  | Cl_apply { records } ->
      if List.length records > cl_apply_max then
        invalid_arg "Codec.encode_request: Cl_apply record count over cap";
      let body =
        List.fold_left (fun a (_, m) -> a + mutation_len m) 0 records
      in
      frame buf (1 + 2 + body) (fun () ->
          Buffer.add_uint8 buf op_cl_apply;
          Buffer.add_uint16_be buf (List.length records);
          List.iter (fun (seq, m) -> put_mutation buf seq m) records)

let encode_reply buf = function
  | Value v ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_value;
          put_i64 buf v)
  | Value_blob s ->
      let n = String.length s in
      if n > blob_max then
        invalid_arg "Codec.encode_reply: Value_blob over blob_max";
      frame buf (1 + n) (fun () ->
          Buffer.add_uint8 buf op_value_blob;
          Buffer.add_string buf s)
  | Val_ref { cls; off; len; gen } ->
      frame buf 33 (fun () ->
          Buffer.add_uint8 buf op_val_ref;
          put_i64 buf cls;
          put_i64 buf off;
          put_i64 buf len;
          put_i64 buf gen)
  | Arena_info { slot; gen; size } ->
      frame buf 25 (fun () ->
          Buffer.add_uint8 buf op_arena_info;
          put_i64 buf slot;
          put_i64 buf gen;
          put_i64 buf size)
  | Not_found -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_not_found)
  | Created -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_created)
  | Updated -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_updated)
  | Deleted -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_deleted)
  | Cas_ok -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cas_ok)
  | Cas_fail -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cas_fail)
  | Shed -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_shed)
  | Error msg ->
      let msg =
        if String.length msg > max_frame - 64 then
          String.sub msg 0 (max_frame - 64)
        else msg
      in
      frame buf
        (1 + String.length msg)
        (fun () ->
          Buffer.add_uint8 buf op_error;
          Buffer.add_string buf msg)
  | Rep_state seqs ->
      let n = Array.length seqs in
      if 1 + (8 * n) > max_frame then
        invalid_arg "Codec.encode_reply: Rep_state exceeds max_frame";
      frame buf
        (1 + (8 * n))
        (fun () ->
          Buffer.add_uint8 buf op_rep_state;
          Array.iter (fun s -> put_i64 buf s) seqs)
  | Rep_batch { last; records } ->
      if List.length records > rep_batch_max then
        invalid_arg "Codec.encode_reply: Rep_batch record count over cap";
      let body =
        List.fold_left (fun a (_, m) -> a + mutation_len m) 0 records
      in
      frame buf
        (1 + 8 + 2 + body)
        (fun () ->
          Buffer.add_uint8 buf op_rep_batch;
          put_i64 buf last;
          Buffer.add_uint16_be buf (List.length records);
          List.iter (fun (seq, m) -> put_mutation buf seq m) records)
  | Moved { slot; node } ->
      frame buf 17 (fun () ->
          Buffer.add_uint8 buf op_moved;
          put_i64 buf slot;
          put_i64 buf node)
  | Cl_state { version; node; owners } ->
      let n = Array.length owners in
      if 17 + (8 * n) > max_frame then
        invalid_arg "Codec.encode_reply: Cl_state exceeds max_frame";
      frame buf
        (17 + (8 * n))
        (fun () ->
          Buffer.add_uint8 buf op_cl_state;
          put_i64 buf version;
          put_i64 buf node;
          Array.iter (fun o -> put_i64 buf o) owners)
  | Cl_snap_batch { seq; next; kvs; tombs; delta } ->
      if List.length kvs + List.length tombs > cl_snap_max then
        invalid_arg "Codec.encode_reply: Cl_snap_batch entry count over cap";
      frame buf
        (1 + 8 + 8 + 1 + 2 + 2 + (16 * List.length kvs)
        + (8 * List.length tombs))
        (fun () ->
          Buffer.add_uint8 buf op_cl_snap_batch;
          put_i64 buf seq;
          put_i64 buf next;
          Buffer.add_uint8 buf (if delta then 1 else 0);
          Buffer.add_uint16_be buf (List.length kvs);
          Buffer.add_uint16_be buf (List.length tombs);
          List.iter
            (fun (k, v) ->
              put_i64 buf k;
              put_i64 buf v)
            kvs;
          List.iter (fun k -> put_i64 buf k) tombs)
  | Cl_ok -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cl_ok)
  | Cl_token { token } ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_cl_token;
          put_i64 buf token)

let request_of_payload payload =
  if Bytes.length payload < 1 then malformed "empty payload";
  let op = Bytes.get_uint8 payload 0 in
  if op = op_get then begin
    expect_len payload 9 op;
    Get (get_i64 payload 1)
  end
  else if op = op_put then begin
    expect_len payload 17 op;
    Put { key = get_i64 payload 1; value = get_i64 payload 9 }
  end
  else if op = op_del then begin
    expect_len payload 9 op;
    Del (get_i64 payload 1)
  end
  else if op = op_cas then begin
    expect_len payload 25 op;
    Cas
      {
        key = get_i64 payload 1;
        expected = get_i64 payload 9;
        desired = get_i64 payload 17;
      }
  end
  else if op = op_rep_info then begin
    expect_len payload 1 op;
    Rep_info
  end
  else if op = op_rep_pull then begin
    expect_len payload 25 op;
    Rep_pull
      {
        shard = get_i64 payload 1;
        from = get_i64 payload 9;
        max = get_i64 payload 17;
      }
  end
  else if op = op_cl_info then begin
    expect_len payload 1 op;
    Cl_info
  end
  else if op = op_cl_grant then begin
    expect_len payload 25 op;
    Cl_grant
      {
        slot = get_i64 payload 1;
        version = get_i64 payload 9;
        token = get_i64 payload 17;
      }
  end
  else if op = op_cl_freeze then begin
    expect_len payload 17 op;
    Cl_freeze { slot = get_i64 payload 1; target = get_i64 payload 9 }
  end
  else if op = op_cl_release then begin
    expect_len payload 9 op;
    Cl_release { slot = get_i64 payload 1 }
  end
  else if op = op_cl_snap then begin
    expect_len payload 41 op;
    Cl_snap
      {
        slot = get_i64 payload 1;
        shard = get_i64 payload 9;
        cursor = get_i64 payload 17;
        max = get_i64 payload 25;
        base = get_i64 payload 33;
      }
  end
  else if op = op_cl_base then begin
    expect_len payload 9 op;
    Cl_base { slot = get_i64 payload 1 }
  end
  else if op = op_cl_purge then begin
    expect_len payload 9 op;
    Cl_purge { slot = get_i64 payload 1 }
  end
  else if op = op_putb then begin
    if Bytes.length payload < 11 then
      malformed "Putb: payload %d bytes, expected >= 11" (Bytes.length payload);
    let n = Bytes.get_uint16_be payload 9 in
    if Bytes.length payload <> 11 + n then
      malformed "Putb: declared %d value bytes but %d payload bytes" n
        (Bytes.length payload);
    Putb { key = get_i64 payload 1; value = Bytes.sub_string payload 11 n }
  end
  else if op = op_getc then begin
    expect_len payload 9 op;
    Getc (get_i64 payload 1)
  end
  else if op = op_a_info then begin
    expect_len payload 1 op;
    A_info
  end
  else if op = op_cl_apply then begin
    if Bytes.length payload < 3 then
      malformed "Cl_apply: payload %d bytes, expected >= 3"
        (Bytes.length payload);
    let count = Bytes.get_uint16_be payload 1 in
    Cl_apply { records = get_mutations payload ~off:3 ~count }
  end
  else malformed "unknown request opcode 0x%02x" op

let reply_of_payload payload =
  if Bytes.length payload < 1 then malformed "empty payload";
  let op = Bytes.get_uint8 payload 0 in
  if op = op_value then begin
    expect_len payload 9 op;
    Value (get_i64 payload 1)
  end
  else if op = op_error then
    Error (Bytes.sub_string payload 1 (Bytes.length payload - 1))
  else if op = op_value_blob then
    Value_blob (Bytes.sub_string payload 1 (Bytes.length payload - 1))
  else if op = op_val_ref then begin
    expect_len payload 33 op;
    Val_ref
      {
        cls = get_i64 payload 1;
        off = get_i64 payload 9;
        len = get_i64 payload 17;
        gen = get_i64 payload 25;
      }
  end
  else if op = op_arena_info then begin
    expect_len payload 25 op;
    Arena_info
      {
        slot = get_i64 payload 1;
        gen = get_i64 payload 9;
        size = get_i64 payload 17;
      }
  end
  else if op = op_rep_state then begin
    let body = Bytes.length payload - 1 in
    if body mod 8 <> 0 then
      malformed "Rep_state: body %d bytes not a multiple of 8" body;
    Rep_state (Array.init (body / 8) (fun i -> get_i64 payload (1 + (8 * i))))
  end
  else if op = op_rep_batch then begin
    if Bytes.length payload < 11 then
      malformed "Rep_batch: payload %d bytes, expected >= 11"
        (Bytes.length payload);
    let last = get_i64 payload 1 in
    let count = Bytes.get_uint16_be payload 9 in
    Rep_batch { last; records = get_mutations payload ~off:11 ~count }
  end
  else if op = op_moved then begin
    expect_len payload 17 op;
    Moved { slot = get_i64 payload 1; node = get_i64 payload 9 }
  end
  else if op = op_cl_token then begin
    expect_len payload 9 op;
    Cl_token { token = get_i64 payload 1 }
  end
  else if op = op_cl_state then begin
    let body = Bytes.length payload - 17 in
    if body < 0 || body mod 8 <> 0 then
      malformed "Cl_state: bad payload length %d" (Bytes.length payload);
    Cl_state
      {
        version = get_i64 payload 1;
        node = get_i64 payload 9;
        owners = Array.init (body / 8) (fun i -> get_i64 payload (17 + (8 * i)));
      }
  end
  else if op = op_cl_snap_batch then begin
    if Bytes.length payload < 22 then
      malformed "Cl_snap_batch: payload %d bytes, expected >= 22"
        (Bytes.length payload);
    let delta =
      match Bytes.get_uint8 payload 17 with
      | 0 -> false
      | 1 -> true
      | b -> malformed "Cl_snap_batch: bad delta flag %d" b
    in
    let count = Bytes.get_uint16_be payload 18 in
    let tcount = Bytes.get_uint16_be payload 20 in
    if Bytes.length payload <> 22 + (16 * count) + (8 * tcount) then
      malformed "Cl_snap_batch: %d bindings + %d tombstones but %d payload bytes"
        count tcount (Bytes.length payload);
    let toff = 22 + (16 * count) in
    Cl_snap_batch
      {
        seq = get_i64 payload 1;
        next = get_i64 payload 9;
        kvs =
          List.init count (fun i ->
              (get_i64 payload (22 + (16 * i)), get_i64 payload (30 + (16 * i))));
        tombs = List.init tcount (fun i -> get_i64 payload (toff + (8 * i)));
        delta;
      }
  end
  else begin
    expect_len payload 1 op;
    if op = op_not_found then Not_found
    else if op = op_created then Created
    else if op = op_updated then Updated
    else if op = op_deleted then Deleted
    else if op = op_cas_ok then Cas_ok
    else if op = op_cas_fail then Cas_fail
    else if op = op_shed then Shed
    else if op = op_cl_ok then Cl_ok
    else malformed "unknown reply opcode 0x%02x" op
  end

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let request_to_string = function
  | Get k -> Printf.sprintf "GET %d" k
  | Put { key; value } -> Printf.sprintf "PUT %d=%d" key value
  | Putb { key; value } -> Printf.sprintf "PUTB %d=%s" key (hex value)
  | Getc k -> Printf.sprintf "GETC %d" k
  | A_info -> "A_INFO"
  | Del k -> Printf.sprintf "DEL %d" k
  | Cas { key; expected; desired } ->
      Printf.sprintf "CAS %d %d->%d" key expected desired
  | Rep_info -> "REP_INFO"
  | Rep_pull { shard; from; max } ->
      Printf.sprintf "REP_PULL shard=%d from=%d max=%d" shard from max
  | Cl_info -> "CL_INFO"
  | Cl_grant { slot; version; token } ->
      Printf.sprintf "CL_GRANT slot=%d v=%d token=%d" slot version token
  | Cl_freeze { slot; target } ->
      Printf.sprintf "CL_FREEZE slot=%d target=%d" slot target
  | Cl_release { slot } -> Printf.sprintf "CL_RELEASE slot=%d" slot
  | Cl_snap { slot; shard; cursor; max; base } ->
      Printf.sprintf "CL_SNAP slot=%d shard=%d cursor=%d max=%d base=%d" slot
        shard cursor max base
  | Cl_base { slot } -> Printf.sprintf "CL_BASE slot=%d" slot
  | Cl_purge { slot } -> Printf.sprintf "CL_PURGE slot=%d" slot
  | Cl_apply { records } ->
      Printf.sprintf "CL_APPLY n=%d" (List.length records)

let reply_to_string = function
  | Value v -> Printf.sprintf "VALUE %d" v
  (* Full hex, not a digest: the transport-identity smoke compares
     these strings byte for byte. *)
  | Value_blob s -> Printf.sprintf "BLOB %s" (hex s)
  | Val_ref { cls; off; len; gen } ->
      Printf.sprintf "VAL_REF cls=%d off=%d len=%d gen=%d" cls off len gen
  | Arena_info { slot; gen; size } ->
      Printf.sprintf "ARENA_INFO slot=%d gen=%d size=%d" slot gen size
  | Not_found -> "NOT_FOUND"
  | Created -> "CREATED"
  | Updated -> "UPDATED"
  | Deleted -> "DELETED"
  | Cas_ok -> "CAS_OK"
  | Cas_fail -> "CAS_FAIL"
  | Shed -> "SHED"
  | Error m -> "ERROR " ^ m
  | Rep_state seqs ->
      Printf.sprintf "REP_STATE [%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int seqs)))
  | Rep_batch { last; records } ->
      Printf.sprintf "REP_BATCH last=%d n=%d" last (List.length records)
  | Moved { slot; node } -> Printf.sprintf "MOVED slot=%d node=%d" slot node
  | Cl_state { version; node; owners } ->
      Printf.sprintf "CL_STATE v=%d node=%d slots=%d" version node
        (Array.length owners)
  | Cl_snap_batch { seq; next; kvs; tombs; delta } ->
      Printf.sprintf "CL_SNAP_BATCH seq=%d next=%d n=%d tombs=%d%s" seq next
        (List.length kvs) (List.length tombs)
        (if delta then " delta" else "")
  | Cl_ok -> "CL_OK"
  | Cl_token { token } -> Printf.sprintf "CL_TOKEN %d" token

let key_of_request = function
  | Get k | Del k | Getc k -> k
  | Put { key; _ } | Cas { key; _ } | Putb { key; _ } -> key
  (* Replication and cluster-control requests are not routed by key;
     they are answered by the replication/cluster handler before shard
     routing (Conn [ext]) and rejected by [Shard.exec] if they slip
     past it. *)
  | Rep_info | Rep_pull _ | Cl_info | Cl_grant _ | Cl_freeze _ | Cl_release _
  | Cl_snap _ | Cl_apply _ | Cl_base _ | Cl_purge _ | A_info ->
      0

let mutation_of_exec req reply =
  match (req, reply) with
  | Put { key; value }, (Created | Updated) -> Some (Set { key; value })
  | Del k, Deleted -> Some (Unset k)
  (* A successful CAS logs as an absolute Set: replay must be
     idempotent over a fuzzy snapshot, so conditionals never reach the
     log — only their witnessed effect does. *)
  | Cas { key; desired; _ }, Cas_ok -> Some (Set { key; value = desired })
  (* Putb stores arena bytes, which the int-valued WAL/replication
     mutation format cannot carry — arena-backed stores are not
     WAL-composed (kvd rejects --arena with --wal). *)
  | Putb _, _ -> None
  | _ -> None

let mutation_to_string = function
  | Set { key; value } -> Printf.sprintf "SET %d=%d" key value
  | Unset k -> Printf.sprintf "UNSET %d" k

(* ------------------------------------------------------------------ *)
(* Arena payload convention.  An arena-backed store keeps every value
   as raw bytes in the shared mapping; byte 0 tags the kind (0 = int
   in 8-byte big-endian, 1 = blob) so int traffic stays
   reply-identical between heap-backed and arena-backed daemons, and
   a zero-copy client decodes exactly what the daemon's copy path
   would have sent. *)

let arena_payload_int v =
  let b = Bytes.create 9 in
  Bytes.set_uint8 b 0 0;
  Bytes.set_int64_be b 1 (Int64.of_int v);
  Bytes.unsafe_to_string b

let arena_payload_blob s =
  if String.length s > blob_max then
    invalid_arg "Codec.arena_payload_blob: over blob_max";
  "\x01" ^ s

let arena_payload_int_value s =
  if String.length s = 9 && s.[0] = '\x00' then
    Some (Int64.to_int (String.get_int64_be s 1))
  else None

let reply_of_arena_payload s =
  if String.length s = 0 then Error "empty arena payload"
  else
    match s.[0] with
    | '\x00' -> (
        match arena_payload_int_value s with
        | Some v -> Value v
        | None -> Error "malformed arena int payload")
    | '\x01' -> Value_blob (String.sub s 1 (String.length s - 1))
    | _ -> Error "unknown arena payload kind"

(* ------------------------------------------------------------------ *)
(* Durable record formats: WAL records and snapshot frames.  Same
   4-byte length framing as the wire, with a trailing CRC32 so torn or
   bit-rotted log tails are detectable. *)

let encode_wal_record buf ~seq (m : mutation) =
  checked_frame buf (mutation_len m) (fun () -> put_mutation buf seq m)

let decode_wal_record payload =
  let len = Bytes.length payload in
  if len < 17 + 4 then malformed "wal record: payload %d bytes, too short" len;
  let body_len = len - 4 in
  let stored = Int32.to_int (Bytes.get_int32_be payload body_len) land 0xFFFFFFFF in
  let actual = crc32 (Bytes.unsafe_to_string payload) ~pos:0 ~len:body_len in
  (* The seq field is reported best-effort even when the CRC fails:
     recovery error messages must name the damaged record. *)
  let seq_field = get_i64 payload 1 in
  if stored <> actual then
    malformed "wal record seq=%d: CRC mismatch (stored 0x%08x, computed 0x%08x)"
      seq_field stored actual;
  let (seq, m), next = get_mutation payload 0 in
  if next <> body_len then
    malformed "wal record seq=%d: %d trailing bytes" seq (body_len - next);
  (seq, m)

let encode_snap_head buf ~seq ~count =
  checked_frame buf 17 (fun () ->
      Buffer.add_uint8 buf op_snap_head;
      put_i64 buf seq;
      put_i64 buf count)

let decode_snap_head payload =
  let body_len = check_crc "snapshot header" payload in
  if body_len <> 17 || Bytes.get_uint8 payload 0 <> op_snap_head then
    malformed "snapshot header: bad opcode or length";
  (get_i64 payload 1, get_i64 payload 9)

let encode_snap_kv buf ~key ~value =
  checked_frame buf 17 (fun () ->
      Buffer.add_uint8 buf op_snap_kv;
      put_i64 buf key;
      put_i64 buf value)

let decode_snap_kv payload =
  let body_len = check_crc "snapshot binding" payload in
  if body_len <> 17 || Bytes.get_uint8 payload 0 <> op_snap_kv then
    malformed "snapshot binding: bad opcode or length";
  (get_i64 payload 1, get_i64 payload 9)

(* Delta snapshot frames: a header carrying the chain link ([from] =
   the stamp of the snapshot this delta extends, [seq] = the new chain
   tip) plus binding and tombstone counts; then exactly that many
   {!op_snap_kv} and {!op_snap_tomb} frames. *)

let encode_snap_delta_head buf ~from ~seq ~sets ~tombs =
  checked_frame buf 33 (fun () ->
      Buffer.add_uint8 buf op_snap_delta_head;
      put_i64 buf from;
      put_i64 buf seq;
      put_i64 buf sets;
      put_i64 buf tombs)

let decode_snap_delta_head payload =
  let body_len = check_crc "delta snapshot header" payload in
  if body_len <> 33 || Bytes.get_uint8 payload 0 <> op_snap_delta_head then
    malformed "delta snapshot header: bad opcode or length";
  (get_i64 payload 1, get_i64 payload 9, get_i64 payload 17, get_i64 payload 25)

let encode_snap_tomb buf ~key =
  checked_frame buf 9 (fun () ->
      Buffer.add_uint8 buf op_snap_tomb;
      put_i64 buf key)

let decode_snap_tomb payload =
  let body_len = check_crc "snapshot tombstone" payload in
  if body_len <> 9 || Bytes.get_uint8 payload 0 <> op_snap_tomb then
    malformed "snapshot tombstone: bad opcode or length";
  get_i64 payload 1

(* ------------------------------------------------------------------ *)
(* Streaming frame reading over any pull source — the one frame loop
   shared by the socket transport ([Conn]) and WAL/snapshot replay.
   A source has the [Unix.read] shape: fill up to [len] bytes at
   [off], return the count, 0 meaning end of stream. *)

type source = bytes -> int -> int -> int
type frame = Frame of bytes | Eof | Torn of { got : int }

let read_full read buf off len =
  let rec go got =
    if got = len then got
    else
      let n = read buf (off + got) (len - got) in
      if n = 0 then got else go (got + n)
  in
  go 0

(* A persistent frame decoder over one source.  The length-prefix
   scan lives here once, shared by every transport: the socket path
   (a [Unix.read]-shaped source), the shared-memory ring path (whose
   source may deliver a frame in two chunks when it wraps the ring
   boundary), and WAL/snapshot replay.  Keeping the 4-byte header
   scratch in the reader — rather than allocating it per frame, as
   the original contiguous-buffer reader did — makes the per-frame
   cost one payload allocation, with no staging copies on any path. *)
type reader = { src : source; limit : int; hdr : bytes }

let frame_reader ?(max_frame = max_frame) src =
  { src; limit = max_frame; hdr = Bytes.create 4 }

let next_frame r =
  match read_full r.src r.hdr 0 4 with
  | 0 -> Eof
  | n when n < 4 -> Torn { got = n }
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_be r.hdr 0) in
      if len < 0 || len > r.limit then
        malformed "frame length %d out of bounds" len;
      let payload = Bytes.create len in
      let got = read_full r.src payload 0 len in
      if got < len then Torn { got = 4 + got } else Frame payload

let read_frame_from ?max_frame read = next_frame (frame_reader ?max_frame read)

let fold_frames ?max_frame read f acc =
  let r = frame_reader ?max_frame read in
  let rec go acc =
    match next_frame r with
    | Eof -> (acc, None)
    | Torn { got } -> (acc, Some got)
    | Frame p -> go (f acc p)
  in
  go acc

let string_source s =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n
