type request =
  | Get of int
  | Put of { key : int; value : int }
  | Del of int
  | Cas of { key : int; expected : int; desired : int }

type reply =
  | Value of int
  | Not_found
  | Created
  | Updated
  | Deleted
  | Cas_ok
  | Cas_fail
  | Shed
  | Error of string

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Generous: the largest legitimate payload is CAS (1 + 3*8 bytes);
   Error replies carry a message we cap well below this. *)
let max_frame = 4096

(* Opcodes.  Requests in 0x01..0x7f, replies with the high bit set, so
   a stray reply fed to the request decoder fails loudly. *)
let op_get = 0x01
let op_put = 0x02
let op_del = 0x03
let op_cas = 0x04
let op_value = 0x81
let op_not_found = 0x82
let op_created = 0x83
let op_updated = 0x84
let op_deleted = 0x85
let op_cas_ok = 0x86
let op_cas_fail = 0x87
let op_shed = 0x88
let op_error = 0x89

(* OCaml ints are 63-bit; the wire carries 64-bit two's complement, so
   every OCaml int round-trips exactly. *)
let put_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)

let frame buf payload_len fill =
  Buffer.add_int32_be buf (Int32.of_int payload_len);
  let before = Buffer.length buf in
  fill ();
  assert (Buffer.length buf - before = payload_len)

let encode_request buf = function
  | Get k ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_get;
          put_i64 buf k)
  | Put { key; value } ->
      frame buf 17 (fun () ->
          Buffer.add_uint8 buf op_put;
          put_i64 buf key;
          put_i64 buf value)
  | Del k ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_del;
          put_i64 buf k)
  | Cas { key; expected; desired } ->
      frame buf 25 (fun () ->
          Buffer.add_uint8 buf op_cas;
          put_i64 buf key;
          put_i64 buf expected;
          put_i64 buf desired)

let encode_reply buf = function
  | Value v ->
      frame buf 9 (fun () ->
          Buffer.add_uint8 buf op_value;
          put_i64 buf v)
  | Not_found -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_not_found)
  | Created -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_created)
  | Updated -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_updated)
  | Deleted -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_deleted)
  | Cas_ok -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cas_ok)
  | Cas_fail -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_cas_fail)
  | Shed -> frame buf 1 (fun () -> Buffer.add_uint8 buf op_shed)
  | Error msg ->
      let msg =
        if String.length msg > max_frame - 64 then
          String.sub msg 0 (max_frame - 64)
        else msg
      in
      frame buf
        (1 + String.length msg)
        (fun () ->
          Buffer.add_uint8 buf op_error;
          Buffer.add_string buf msg)

let get_i64 payload off =
  if Bytes.length payload < off + 8 then
    malformed "truncated operand at offset %d" off;
  Int64.to_int (Bytes.get_int64_be payload off)

let expect_len payload n op =
  if Bytes.length payload <> n then
    malformed "opcode 0x%02x: payload %d bytes, expected %d" op
      (Bytes.length payload) n

let request_of_payload payload =
  if Bytes.length payload < 1 then malformed "empty payload";
  let op = Bytes.get_uint8 payload 0 in
  if op = op_get then begin
    expect_len payload 9 op;
    Get (get_i64 payload 1)
  end
  else if op = op_put then begin
    expect_len payload 17 op;
    Put { key = get_i64 payload 1; value = get_i64 payload 9 }
  end
  else if op = op_del then begin
    expect_len payload 9 op;
    Del (get_i64 payload 1)
  end
  else if op = op_cas then begin
    expect_len payload 25 op;
    Cas
      {
        key = get_i64 payload 1;
        expected = get_i64 payload 9;
        desired = get_i64 payload 17;
      }
  end
  else malformed "unknown request opcode 0x%02x" op

let reply_of_payload payload =
  if Bytes.length payload < 1 then malformed "empty payload";
  let op = Bytes.get_uint8 payload 0 in
  if op = op_value then begin
    expect_len payload 9 op;
    Value (get_i64 payload 1)
  end
  else if op = op_error then
    Error (Bytes.sub_string payload 1 (Bytes.length payload - 1))
  else begin
    expect_len payload 1 op;
    if op = op_not_found then Not_found
    else if op = op_created then Created
    else if op = op_updated then Updated
    else if op = op_deleted then Deleted
    else if op = op_cas_ok then Cas_ok
    else if op = op_cas_fail then Cas_fail
    else if op = op_shed then Shed
    else malformed "unknown reply opcode 0x%02x" op
  end

let request_to_string = function
  | Get k -> Printf.sprintf "GET %d" k
  | Put { key; value } -> Printf.sprintf "PUT %d=%d" key value
  | Del k -> Printf.sprintf "DEL %d" k
  | Cas { key; expected; desired } ->
      Printf.sprintf "CAS %d %d->%d" key expected desired

let reply_to_string = function
  | Value v -> Printf.sprintf "VALUE %d" v
  | Not_found -> "NOT_FOUND"
  | Created -> "CREATED"
  | Updated -> "UPDATED"
  | Deleted -> "DELETED"
  | Cas_ok -> "CAS_OK"
  | Cas_fail -> "CAS_FAIL"
  | Shed -> "SHED"
  | Error m -> "ERROR " ^ m

let key_of_request = function
  | Get k | Del k -> k
  | Put { key; _ } | Cas { key; _ } -> key
