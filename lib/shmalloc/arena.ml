(* A lock-free, size-classed value arena inside a shared mapping.

   The arena is a regular file, mmap'd by the daemon (Owner) and by
   every zero-copy client (Reader):

     page 0 (4096 B of aligned words — control):
       [0] magic   [1] version   [2] generation   [3] state
       [4] nclasses  [5] nslots  [6] era clock
       [8+4c .. 11+4c]   class c: region base, block bytes,
                         payload bytes, block count
       [64+8c]  class c free-list head  ⟨tag | offset⟩, a line apart
       [128+8c] class c bump watermark (next virgin block index)
       [192+c] / [200+c]  class c alloc / free counters
       [216] blocks retired   [217] retired blocks freed
     page 1 (4096 B — reservation slots, 8 words per slot):
       [512+8s] slot s reservation word  ⟨era | list head⟩
       [513+8s] slot s owner pid         [514+8s] slot s heartbeat
     bytes 8192 …  class regions, back to back

   Every shared word is an aligned 8-byte cell accessed through the C
   atomic stubs; free lists and reservation lists link blocks by byte
   offset (0 = nil) so the structure is position-independent across
   the two processes' different map addresses.

   Blocks carry a 5-word header:

     w0 gen    full-width generation, bumped when the block is RETIRED
     w1 birth  era clock value at allocation (Hyaline birth era)
     w2 next   free-list / reservation-list link
     w3 link   batch chain (stays intact while nodes sit in lists)
     w4 refs   for the batch's first block (the REFS node): the nref
               counter; for every other node: the REFS block's offset

   Reservation words use the Head.Packed layout (era in the high
   bits, a 40-bit offset in the low bits), making the slot page a
   cross-process continuation of the in-process reservation array.

   Reclamation (policy Handoff — Hyaline-S/Crystalline shape):
   retired blocks accumulate per-tid into a batch; once the batch has
   nslots+1 blocks it is flushed — one node CAS-pushed onto each
   active slot whose era is ≥ the batch's minimum birth era (slots
   whose era predates every possible reference are skipped, which is
   what bounds the garbage a stalled reader pins: blocks born after
   its published era are never handed to it).  The REFS node's
   counter takes the insert count in one fetch_add; each reader's
   leave detaches its list wholesale and decrements per node; whoever
   brings the counter to zero with the add landed frees the whole
   chain back to the class free lists.  Policy Epoch is the EBR
   baseline the CI gate contrasts against: a limbo list freed only
   when every active slot's era has passed the retire era, so one
   stalled reader pins every later retirement.

   Safety does NOT rest on the reservations alone: a reader
   materializing a Val_ref copies the bytes out, fences, and re-reads
   the generation stamp.  Since the generation is bumped at retire
   and a block is only rewritten after retire+free+realloc, an
   unchanged stamp proves the copied bytes are the referenced value;
   a changed stamp sends the reader down the copy path.  The
   reservation discipline is the fast path and the robustness bound,
   the stamp is the correctness argument. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type chars =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external a_load : ints -> int -> int = "ml_shma_load" [@@noalloc]
external a_store : ints -> int -> int -> unit = "ml_shma_store" [@@noalloc]
external a_cas : ints -> int -> int -> int -> bool = "ml_shma_cas" [@@noalloc]
external a_faa : ints -> int -> int -> int = "ml_shma_faa" [@@noalloc]
external a_exchange : ints -> int -> int -> int = "ml_shma_exchange" [@@noalloc]
external a_fence : unit -> unit = "ml_shma_fence" [@@noalloc]

external blit_to : string -> int -> chars -> int -> int -> unit
  = "ml_shma_blit_to"
[@@noalloc]

external blit_from : chars -> int -> bytes -> int -> int -> unit
  = "ml_shma_blit_from"
[@@noalloc]

exception Bad_arena of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_arena s)) fmt

(* 6 bytes of ASCII "KVARN1", same 63-bit-safe shape as Seg's magic. *)
let magic = 0x4B5641524E31
let version = 1
let header_bytes = 8192
let state_init = 0
let state_open = 1
let state_closed = 2
let max_classes = 8
let max_slots = 64
let hdr_words = 5
let hdr_bytes = hdr_words * 8

(* Control cells. *)
let c_magic = 0
let c_version = 1
let c_generation = 2
let c_state = 3
let c_nclasses = 4
let c_nslots = 5
let c_era = 6
let c_cls_base c = 8 + (4 * c)
let c_cls_block c = 9 + (4 * c)
let c_cls_payload c = 10 + (4 * c)
let c_cls_nblocks c = 11 + (4 * c)
let c_free c = 64 + (8 * c)
let c_bump c = 128 + (8 * c)
let c_allocs c = 192 + c
let c_frees c = 200 + c
let c_retired = 216
let c_freed = 217
let c_slot_word s = 512 + (8 * s)
let c_slot_pid s = 513 + (8 * s)
let c_slot_hb s = 514 + (8 * s)

(* ⟨era | head⟩ packing, the Head.Packed layout: 40 bits of byte
   offset below, the (22-bit) era — or free-list ABA tag — above. *)
let offset_bits = 40
let offset_mask = (1 lsl offset_bits) - 1
let era_mask = (1 lsl 22) - 1
let pack_word ~era ~head = (era lsl offset_bits) lor head
let word_era w = w lsr offset_bits
let word_head w = w land offset_mask

(* Block header word cells, given a block's byte offset. *)
let w_gen off = off / 8
let w_birth off = (off / 8) + 1
let w_next off = (off / 8) + 2
let w_link off = (off / 8) + 3
let w_refs off = (off / 8) + 4

module Ref = struct
  (* [ gen:22 | cls:3 | len:13 | idx:25 ] — 63 bits.  The whole
     reference, generation included, is one int so the mux can mint a
     Val_ref from a single atomic map read: reading the offset and
     the stamp separately would let a retire+realloc slip between the
     two reads and mint a stamp that validates the wrong value. *)
  let idx_bits = 25
  let len_bits = 13
  let cls_bits = 3
  let max_len = (1 lsl len_bits) - 1
  let max_idx = (1 lsl idx_bits) - 1

  let pack ~gen ~cls ~len ~idx =
    ((gen land era_mask) lsl (idx_bits + len_bits + cls_bits))
    lor (cls lsl (idx_bits + len_bits))
    lor (len lsl idx_bits)
    lor idx

  let gen r = (r lsr (idx_bits + len_bits + cls_bits)) land era_mask
  let cls r = (r lsr (idx_bits + len_bits)) land ((1 lsl cls_bits) - 1)
  let len r = (r lsr idx_bits) land max_len
  let idx r = r land max_idx
end

type policy = Handoff | Epoch

let policy_name = function Handoff -> "handoff" | Epoch -> "epoch"

let policy_of_string = function
  | "handoff" -> Some Handoff
  | "epoch" -> Some Epoch
  | _ -> None

type role = Owner | Reader

(* Owner-side, per-tid retirement state.  Handoff accumulates a
   batch chained through w_link; Epoch keeps a limbo list. *)
type builder = {
  mutable b_head : int; (* REFS node offset, 0 = empty batch *)
  mutable b_tail : int;
  mutable b_n : int;
  mutable b_min_birth : int;
  mutable b_limbo : (int * int) list; (* (offset, retire era) *)
  mutable b_limbo_n : int;
}

let fresh_builder () =
  {
    b_head = 0;
    b_tail = 0;
    b_n = 0;
    b_min_birth = max_int;
    b_limbo = [];
    b_limbo_n = 0;
  }

type t = {
  path : string;
  role : role;
  fd : Unix.file_descr;
  ints : ints;
  chars : chars;
  generation : int;
  policy : policy;
  nclasses : int;
  nslots : int;
  size : int;
  builders : builder array;
  alloc_tick : int Atomic.t;
}

let era_freq = 64
let epoch_scan_every = 32

let default_payloads = [| 16; 128; 1024; 4104 |]
let default_blocks = [| 4096; 2048; 1024; 512 |]

(* Same fresh-stamp shape as Seg.fresh_generation: pid high, time and
   a counter folded below, never zero. *)
let gen_counter = Atomic.make 0

let fresh_generation () =
  let t_us = int_of_float (Unix.gettimeofday () *. 1e6) in
  let g =
    (Unix.getpid () lsl 44)
    lxor (t_us land 0xFFF_FFFF_FFFF)
    lxor (Atomic.fetch_and_add gen_counter 1 lsl 20)
  in
  let g = g land max_int in
  if g = 0 then 1 else g

let map_views fd ~size =
  let ints =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| size / 8 |])
  in
  let chars =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| size |])
  in
  (ints, chars)

let round8 n = (n + 7) land lnot 7

let create ~path ~slots ?(policy = Handoff) ?(tids = 8)
    ?(payloads = default_payloads) ?(blocks = default_blocks) () =
  let nclasses = Array.length payloads in
  if nclasses = 0 || nclasses > max_classes then
    invalid_arg "Arena.create: 1..8 size classes";
  if Array.length blocks <> nclasses then
    invalid_arg "Arena.create: blocks and payloads must pair up";
  if slots <= 0 || slots > max_slots then
    invalid_arg "Arena.create: 1..64 reservation slots";
  if tids <= 0 then invalid_arg "Arena.create: tids must be positive";
  Array.iteri
    (fun i p ->
      if p <= 0 || p > Ref.max_len then
        invalid_arg "Arena.create: class payload out of range";
      if i > 0 && p <= payloads.(i - 1) then
        invalid_arg "Arena.create: class payloads must ascend")
    payloads;
  Array.iter
    (fun n ->
      if n <= 0 || n > Ref.max_idx then
        invalid_arg "Arena.create: class block count out of range")
    blocks;
  let size = ref header_bytes in
  let bases = Array.make nclasses 0 in
  let bsizes = Array.make nclasses 0 in
  Array.iteri
    (fun c p ->
      let bs = hdr_bytes + round8 p in
      bases.(c) <- !size;
      bsizes.(c) <- bs;
      size := !size + (bs * blocks.(c)))
    payloads;
  let size = !size in
  if size > offset_mask then invalid_arg "Arena.create: arena too large";
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600
  in
  match
    Unix.ftruncate fd size;
    map_views fd ~size
  with
  | ints, chars ->
      let generation = fresh_generation () in
      Bigarray.Array1.set ints c_magic magic;
      Bigarray.Array1.set ints c_version version;
      Bigarray.Array1.set ints c_generation generation;
      Bigarray.Array1.set ints c_state state_init;
      Bigarray.Array1.set ints c_nclasses nclasses;
      Bigarray.Array1.set ints c_nslots slots;
      Bigarray.Array1.set ints c_era 1;
      for c = 0 to nclasses - 1 do
        Bigarray.Array1.set ints (c_cls_base c) bases.(c);
        Bigarray.Array1.set ints (c_cls_block c) bsizes.(c);
        Bigarray.Array1.set ints (c_cls_payload c) payloads.(c);
        Bigarray.Array1.set ints (c_cls_nblocks c) blocks.(c)
      done;
      a_fence ();
      Bigarray.Array1.set ints c_state state_open;
      {
        path;
        role = Owner;
        fd;
        ints;
        chars;
        generation;
        policy;
        nclasses;
        nslots = slots;
        size;
        builders = Array.init tids (fun _ -> fresh_builder ());
        alloc_tick = Atomic.make 0;
      }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      raise e

let attach ~path ?expect_gen () =
  let fd =
    match Unix.openfile path [ Unix.O_RDWR ] 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        bad "cannot open %s: %s" path (Unix.error_message e)
  in
  match
    let size = (Unix.fstat fd).Unix.st_size in
    if size < header_bytes then bad "%s: too small for an arena header" path;
    let hdr =
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.int Bigarray.c_layout true
           [| header_bytes / 8 |])
    in
    if Bigarray.Array1.get hdr c_magic <> magic then
      bad "%s: bad magic (not a kvd value arena)" path;
    if Bigarray.Array1.get hdr c_version <> version then
      bad "%s: arena version %d, expected %d" path
        (Bigarray.Array1.get hdr c_version)
        version;
    (match Bigarray.Array1.get hdr c_state with
    | s when s = state_open -> ()
    | s when s = state_closed -> bad "%s: arena already closed" path
    | _ -> bad "%s: arena not yet open" path);
    let generation = Bigarray.Array1.get hdr c_generation in
    (match expect_gen with
    | Some g when g <> generation ->
        bad "%s: generation %#x does not match announced %#x (stale arena?)"
          path generation g
    | _ -> ());
    let nclasses = Bigarray.Array1.get hdr c_nclasses in
    let nslots = Bigarray.Array1.get hdr c_nslots in
    if nclasses <= 0 || nclasses > max_classes then
      bad "%s: corrupt class count" path;
    if nslots <= 0 || nslots > max_slots then bad "%s: corrupt slot count" path;
    let declared = ref header_bytes in
    for c = 0 to nclasses - 1 do
      let base = Bigarray.Array1.get hdr (c_cls_base c) in
      let bs = Bigarray.Array1.get hdr (c_cls_block c) in
      let nb = Bigarray.Array1.get hdr (c_cls_nblocks c) in
      if base <> !declared || bs < hdr_bytes + 8 || nb <= 0 then
        bad "%s: corrupt class table" path;
      declared := base + (bs * nb)
    done;
    if size < !declared then bad "%s: file shorter than its class table" path;
    let ints, chars = map_views fd ~size:!declared in
    {
      path;
      role = Reader;
      fd;
      ints;
      chars;
      generation;
      policy = Handoff;
      nclasses;
      nslots;
      size = !declared;
      builders = [||];
      alloc_tick = Atomic.make 0;
    }
  with
  | t -> t
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let path t = t.path
let role t = t.role
let generation t = t.generation
let policy t = t.policy
let nslots t = t.nslots
let nclasses t = t.nclasses
let size_bytes t = t.size
let state t = Bigarray.Array1.get t.ints c_state
let is_open t = state t = state_open

let require_owner t who =
  if t.role <> Owner then invalid_arg (Printf.sprintf "Arena.%s: not owner" who)

let cls_base t c = Bigarray.Array1.get t.ints (c_cls_base c)
let cls_block t c = Bigarray.Array1.get t.ints (c_cls_block c)
let cls_payload t c = Bigarray.Array1.get t.ints (c_cls_payload c)
let cls_nblocks t c = Bigarray.Array1.get t.ints (c_cls_nblocks c)

let class_of_off t off =
  let rec go c =
    if c >= t.nclasses then bad "%s: offset %d outside every class" t.path off
    else
      let base = cls_base t c in
      if off >= base && off < base + (cls_block t c * cls_nblocks t c) then c
      else go (c + 1)
  in
  go 0

let off_of_ref t r =
  let c = Ref.cls r in
  cls_base t c + (Ref.idx r * cls_block t c)

let era t = a_load t.ints c_era

let advance_era t =
  let cur = a_load t.ints c_era in
  if cur < era_mask then ignore (a_cas t.ints c_era cur (cur + 1))

let tick_era t =
  if Atomic.fetch_and_add t.alloc_tick 1 mod era_freq = era_freq - 1 then
    advance_era t

(* Free lists: Treiber stacks of byte offsets, ABA-tagged in the same
   packed layout as the reservation words (tag where era lives). *)

let rec push_free t ~cls off =
  let h = a_load t.ints (c_free cls) in
  a_store t.ints (w_next off) (word_head h);
  if
    not
      (a_cas t.ints (c_free cls) h
         (pack_word ~era:((word_era h + 1) land era_mask) ~head:off))
  then push_free t ~cls off

let rec pop_free t ~cls =
  let h = a_load t.ints (c_free cls) in
  let off = word_head h in
  if off = 0 then None
  else
    let nxt = a_load t.ints (w_next off) in
    if
      a_cas t.ints (c_free cls) h
        (pack_word ~era:((word_era h + 1) land era_mask) ~head:nxt)
    then Some off
    else pop_free t ~cls

let bump_alloc t ~cls =
  let nb = cls_nblocks t cls in
  let old = a_faa t.ints (c_bump cls) 1 in
  if old >= nb then (
    ignore (a_faa t.ints (c_bump cls) (-1));
    None)
  else Some (cls_base t cls + (old * cls_block t cls))

let alloc_block t ~len =
  let rec try_cls c =
    if c >= t.nclasses then None
    else if cls_payload t c < len then try_cls (c + 1)
    else
      match pop_free t ~cls:c with
      | Some off -> Some (c, off)
      | None -> (
          match bump_alloc t ~cls:c with
          | Some off -> Some (c, off)
          | None -> try_cls (c + 1))
  in
  match try_cls 0 with
  | None -> None
  | Some (c, off) ->
      a_store t.ints (w_birth off) (a_load t.ints c_era);
      ignore (a_faa t.ints (c_allocs c) 1);
      tick_era t;
      Some (c, off)

let alloc_put t s =
  require_owner t "alloc_put";
  let len = String.length s in
  if len = 0 || len > Ref.max_len then None
  else
    match alloc_block t ~len with
    | None -> None
    | Some (cls, off) ->
        blit_to s 0 t.chars (off + hdr_bytes) len;
        a_fence ();
        let gen = a_load t.ints (w_gen off) in
        let idx = (off - cls_base t cls) / cls_block t cls in
        Some (Ref.pack ~gen ~cls ~len ~idx)

let read_own t r =
  (* Owner-side read of a live block: the shard consumer holding the
     reference is the block's only retirer, so no stamp check. *)
  let len = Ref.len r in
  let off = off_of_ref t r in
  let buf = Bytes.create len in
  blit_from t.chars (off + hdr_bytes) buf 0 len;
  Bytes.unsafe_to_string buf

let read_ref t ~cls ~off ~len ~gen ?gate () =
  if cls < 0 || cls >= t.nclasses then None
  else
    let base = cls_base t cls and bs = cls_block t cls in
    if
      off < base
      || off >= base + (bs * cls_nblocks t cls)
      || (off - base) mod bs <> 0
      || len <= 0
      || len > cls_payload t cls
    then None
    else begin
      let buf = Bytes.create len in
      let half = len / 2 in
      blit_from t.chars (off + hdr_bytes) buf 0 half;
      (match gate with Some f -> f () | None -> ());
      blit_from t.chars (off + hdr_bytes + half) buf half (len - half);
      a_fence ();
      if a_load t.ints (w_gen off) land era_mask = gen then
        Some (Bytes.unsafe_to_string buf)
      else None
    end

(* Batch release: whole chain back to the free lists.  Runs in
   whichever process brought the REFS counter to zero. *)
let free_batch t refs =
  let n = ref refs in
  while !n <> 0 do
    let nxt = a_load t.ints (w_link !n) in
    let c = class_of_off t !n in
    push_free t ~cls:c !n;
    ignore (a_faa t.ints (c_frees c) 1);
    ignore (a_faa t.ints c_freed 1);
    n := nxt
  done

(* Reader-side list traversal after a detach: read the links before
   the decrement — once a node's batch counter hits zero the chain
   may be freed and rewritten under us. *)
let release_list t head =
  let n = ref head in
  while !n <> 0 do
    let nxt = a_load t.ints (w_next !n) in
    let refs = a_load t.ints (w_refs !n) in
    let old = a_faa t.ints (w_refs refs) (-1) in
    if old = 1 then free_batch t refs;
    n := nxt
  done

let enter t ~slot =
  let e = a_load t.ints c_era in
  let old = a_exchange t.ints (c_slot_word slot) (pack_word ~era:e ~head:0) in
  (* A leftover list here means the previous bracket was torn down by
     a sweep race; drain it rather than leak it. *)
  release_list t (word_head old)

let leave t ~slot =
  let old = a_exchange t.ints (c_slot_word slot) 0 in
  release_list t (word_head old)

let refresh t ~slot =
  let e = a_load t.ints c_era in
  let rec go () =
    let w = a_load t.ints (c_slot_word slot) in
    if word_era w < e && word_era w <> 0 then
      if not (a_cas t.ints (c_slot_word slot) w (pack_word ~era:e ~head:(word_head w)))
      then go ()
  in
  go ()

let announce t ~slot ~pid = a_store t.ints (c_slot_pid slot) pid
let heartbeat t ~slot = ignore (a_faa t.ints (c_slot_hb slot) 1)
let slot_era t ~slot = word_era (a_load t.ints (c_slot_word slot))
let slot_pid t ~slot = a_load t.ints (c_slot_pid slot)

let sweep_slot t ~slot =
  let old = a_exchange t.ints (c_slot_word slot) 0 in
  a_store t.ints (c_slot_pid slot) 0;
  a_store t.ints (c_slot_hb slot) 0;
  release_list t (word_head old)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true

let sweep_dead ?(alive = pid_alive) t =
  let swept = ref 0 in
  for s = 0 to t.nslots - 1 do
    let pid = a_load t.ints (c_slot_pid s) in
    if pid <> 0 && not (alive pid) then begin
      sweep_slot t ~slot:s;
      incr swept
    end
  done;
  !swept

(* Handoff retirement. *)

let builder_append t b off =
  a_store t.ints (w_link off) 0;
  if b.b_head = 0 then begin
    b.b_head <- off;
    b.b_tail <- off;
    b.b_n <- 1;
    b.b_min_birth <- a_load t.ints (w_birth off);
    (* This block is the batch's REFS node; zero the counter a past
       life may have left behind. *)
    a_store t.ints (w_refs off) 0
  end
  else begin
    a_store t.ints (w_link b.b_tail) off;
    b.b_tail <- off;
    b.b_n <- b.b_n + 1;
    b.b_min_birth <- min b.b_min_birth (a_load t.ints (w_birth off))
  end

let flush_builder t b =
  if b.b_head <> 0 then begin
    (* Pad to nslots+1 blocks so the insert pass cannot run dry; a
       full arena just means later slots are skipped, which the
       generation stamp keeps safe (they entered after these blocks
       were retired, so no live reference can name them). *)
    let exhausted = ref false in
    while b.b_n < t.nslots + 1 && not !exhausted do
      match alloc_block t ~len:1 with
      | None -> exhausted := true
      | Some (_, off) ->
          ignore (a_faa t.ints c_retired 1);
          builder_append t b off
    done;
    let refs = b.b_head in
    let min_birth = b.b_min_birth in
    let node = ref (a_load t.ints (w_link refs)) in
    let inserts = ref 0 in
    for s = 0 to t.nslots - 1 do
      if !node <> 0 then begin
        let retry = ref true in
        while !retry do
          let w = a_load t.ints (c_slot_word s) in
          let e = word_era w in
          if e = 0 || e < min_birth then retry := false
          else begin
            a_store t.ints (w_refs !node) refs;
            a_store t.ints (w_next !node) (word_head w);
            if
              a_cas t.ints (c_slot_word s) w (pack_word ~era:e ~head:!node)
            then begin
              incr inserts;
              node := a_load t.ints (w_link !node);
              retry := false
            end
          end
        done
      end
    done;
    b.b_head <- 0;
    b.b_tail <- 0;
    b.b_n <- 0;
    b.b_min_birth <- max_int;
    if !inserts = 0 then free_batch t refs
    else
      let old = a_faa t.ints (w_refs refs) !inserts in
      if old + !inserts = 0 then free_batch t refs
  end

(* Epoch retirement: limbo entries free once every active slot's era
   has moved past their retire era; one frozen slot pins everything
   retired from then on — the baseline the robust policy is gated
   against. *)

let min_active_era t =
  let m = ref max_int in
  for s = 0 to t.nslots - 1 do
    let e = word_era (a_load t.ints (c_slot_word s)) in
    if e <> 0 && e < !m then m := e
  done;
  !m

let epoch_scan t b =
  let min_active = min_active_era t in
  let keep = ref [] and kept = ref 0 in
  List.iter
    (fun ((off, e) as entry) ->
      if e < min_active then begin
        let c = class_of_off t off in
        push_free t ~cls:c off;
        ignore (a_faa t.ints (c_frees c) 1);
        ignore (a_faa t.ints c_freed 1)
      end
      else begin
        keep := entry :: !keep;
        incr kept
      end)
    b.b_limbo;
  b.b_limbo <- !keep;
  b.b_limbo_n <- !kept

let limbo_add t ~tid off =
  let b = t.builders.(tid) in
  b.b_limbo <- (off, a_load t.ints c_era) :: b.b_limbo;
  b.b_limbo_n <- b.b_limbo_n + 1;
  if b.b_limbo_n mod epoch_scan_every = 0 then epoch_scan t b

let retire t ~tid r =
  require_owner t "retire";
  let off = off_of_ref t r in
  let g = a_load t.ints (w_gen off) in
  a_store t.ints (w_gen off) (g + 1);
  ignore (a_faa t.ints c_retired 1);
  (match t.policy with
  | Handoff ->
      let b = t.builders.(tid) in
      builder_append t b off;
      if b.b_n >= t.nslots + 1 then flush_builder t b
  | Epoch -> limbo_add t ~tid off);
  (* Retirement cadence also drives the era clock so read-only phases
     cannot freeze it. *)
  tick_era t

let flush t =
  require_owner t "flush";
  Array.iter
    (fun b ->
      match t.policy with
      | Handoff -> flush_builder t b
      | Epoch -> epoch_scan t b)
    t.builders

let retired t = a_load t.ints c_retired
let freed t = a_load t.ints c_freed
let unreclaimed t = retired t - freed t

let gauges t =
  let rows = ref [] in
  for c = t.nclasses - 1 downto 0 do
    rows :=
      (Printf.sprintf "shmalloc_c%d_allocs" c, a_load t.ints (c_allocs c))
      :: (Printf.sprintf "shmalloc_c%d_frees" c, a_load t.ints (c_frees c))
      :: (Printf.sprintf "shmalloc_c%d_bump" c, a_load t.ints (c_bump c))
      :: !rows
  done;
  ("shmalloc_era", era t)
  :: ("shmalloc_retired", retired t)
  :: ("shmalloc_freed", freed t)
  :: ("shmalloc_unreclaimed", unreclaimed t)
  :: !rows

let mark_closed t =
  a_fence ();
  Bigarray.Array1.set t.ints c_state state_closed;
  a_fence ()

let detach t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let unlink t = try Unix.unlink t.path with Unix.Unix_error _ -> ()
let unlink_path path = try Unix.unlink path with Unix.Unix_error _ -> ()
