/* Cross-process atomics on aligned word cells of a shared int-bigarray
 * mapping, plus bulk blits between OCaml strings and the mapped data.
 *
 * OCaml's Atomic.t lives in the heap of one process; the arena's
 * free-list heads, reservation words, generation stamps and refcounts
 * live inside an mmap'd file shared between the daemon and its
 * clients, so every RMW below must be a real hardware atomic on the
 * mapping itself.  Cells are 8-byte-aligned intnat words (the same
 * no-tearing argument as the segment header page); values stay in
 * OCaml's 63-bit int range by construction, so Val_long/Long_val
 * round-trips are exact.
 */

#include <string.h>

#include <caml/bigarray.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

static inline intnat *cell(value v_ba, value v_idx)
{
    return (intnat *)Caml_ba_data_val(v_ba) + Long_val(v_idx);
}

CAMLprim value ml_shma_load(value v_ba, value v_idx)
{
    return Val_long(__atomic_load_n(cell(v_ba, v_idx), __ATOMIC_SEQ_CST));
}

CAMLprim value ml_shma_store(value v_ba, value v_idx, value v_x)
{
    __atomic_store_n(cell(v_ba, v_idx), Long_val(v_x), __ATOMIC_SEQ_CST);
    return Val_unit;
}

CAMLprim value ml_shma_cas(value v_ba, value v_idx, value v_old, value v_new)
{
    intnat expected = Long_val(v_old);
    return Val_bool(__atomic_compare_exchange_n(
        cell(v_ba, v_idx), &expected, Long_val(v_new), 0, __ATOMIC_SEQ_CST,
        __ATOMIC_SEQ_CST));
}

CAMLprim value ml_shma_faa(value v_ba, value v_idx, value v_d)
{
    return Val_long(
        __atomic_fetch_add(cell(v_ba, v_idx), Long_val(v_d), __ATOMIC_SEQ_CST));
}

CAMLprim value ml_shma_exchange(value v_ba, value v_idx, value v_x)
{
    return Val_long(
        __atomic_exchange_n(cell(v_ba, v_idx), Long_val(v_x), __ATOMIC_SEQ_CST));
}

CAMLprim value ml_shma_fence(value v_unit)
{
    __atomic_thread_fence(__ATOMIC_SEQ_CST);
    return Val_unit;
}

/* memcpy in and out of the char view: Bigarray has no blit-to/from
 * string, and a per-char loop is measurably slower on multi-KiB
 * values (same rationale as replica's ml_store_blit). */

CAMLprim value ml_shma_blit_to(value v_src, value v_srcoff, value v_map,
                               value v_dstoff, value v_len)
{
    memcpy((char *)Caml_ba_data_val(v_map) + Long_val(v_dstoff),
           String_val(v_src) + Long_val(v_srcoff), (size_t)Long_val(v_len));
    return Val_unit;
}

CAMLprim value ml_shma_blit_from(value v_map, value v_srcoff, value v_dst,
                                 value v_dstoff, value v_len)
{
    memcpy(Bytes_val(v_dst) + Long_val(v_dstoff),
           (char *)Caml_ba_data_val(v_map) + Long_val(v_srcoff),
           (size_t)Long_val(v_len));
    return Val_unit;
}
