(** A lock-free, size-classed value arena inside a shared mapping.

    The daemon (the {e Owner}) creates the arena file beside its
    listen path; each zero-copy client (a {e Reader}) attaches the
    same file after learning the generation stamp over the wire, and
    materializes [Val_ref] replies by copying payload bytes straight
    out of its own mapping.  All shared state — size-class free
    lists, the era clock, per-connection reservation words, block
    generation stamps and batch refcounts — lives in the mapping as
    aligned words driven by C atomic stubs, linked by byte offset so
    both processes agree on the structure regardless of map address.

    Reclamation follows the Hyaline-S/Crystalline discipline across
    the process boundary ([Handoff]): retired blocks batch up and are
    handed, one list node per batch, to every reservation slot whose
    published era could still reference them; slots whose era
    predates a batch's minimum birth era are skipped, which bounds
    the garbage a stalled reader pins.  [Epoch] is the EBR baseline
    (limbo freed only once every active slot's era has passed the
    retire era) that CI contrasts against.

    Correctness never rests on the reservations alone: {!read_ref}
    copies bytes out, fences, and re-validates the generation stamp
    bumped at retire — an unchanged stamp proves the bytes are the
    referenced value, a changed one sends the caller down the copy
    path.  See docs/SHM.md, "Cross-process zero-copy". *)

exception Bad_arena of string

type policy = Handoff | Epoch
type role = Owner | Reader
type t

val policy_name : policy -> string
val policy_of_string : string -> policy option

module Ref : sig
  (** Packed value reference, [⟨gen:22 | cls:3 | len:13 | idx:25⟩] in
      one 63-bit int.  The whole reference — generation stamp
      included — is minted from a single atomic map read, so a
      concurrent retire+realloc can never pair a fresh stamp with a
      stale offset. *)

  val pack : gen:int -> cls:int -> len:int -> idx:int -> int
  val gen : int -> int
  val cls : int -> int
  val len : int -> int
  val idx : int -> int

  val max_len : int
  (** Largest storable payload (8191 B). *)

  val max_idx : int
end

val create :
  path:string ->
  slots:int ->
  ?policy:policy ->
  ?tids:int ->
  ?payloads:int array ->
  ?blocks:int array ->
  unit ->
  t
(** Create the arena file at [path] (O_EXCL) and become its Owner.
    [slots] is the number of client reservation slots (≤ 64, one per
    connection tid); [tids] the number of independent retire builders
    (one per shard consumer).  [payloads] are ascending per-class
    payload capacities in bytes, [blocks] the per-class block counts
    (defaults: 16/128/1024/4104 B × 4096/2048/1024/512). *)

val attach : path:string -> ?expect_gen:int -> unit -> t
(** Map an existing open arena as a Reader.
    @raise Bad_arena on bad magic/version/state, a generation
    mismatch, or a corrupt class table. *)

val path : t -> string
val role : t -> role
val generation : t -> int
val policy : t -> policy
val nslots : t -> int
val nclasses : t -> int
val size_bytes : t -> int
val is_open : t -> bool

(** {1 Owner side: allocate, read own, retire} *)

val alloc_put : t -> string -> int option
(** Allocate a block for [s] (smallest fitting class, falling upward
    when one is exhausted), copy the bytes in, and return the packed
    reference to store in the map — or [None] when the arena is full
    or [s] exceeds {!Ref.max_len}. *)

val read_own : t -> int -> string
(** Dereference a live reference owner-side.  No stamp check: the
    shard consumer holding the map entry is the block's only
    retirer, so the block cannot be recycled under it. *)

val retire : t -> tid:int -> int -> unit
(** Retire the block behind a reference unlinked from the map: bump
    its generation stamp and queue it for reclamation on builder
    [tid] under the arena's policy. *)

val flush : t -> unit
(** Flush every retire builder: Handoff pads partial batches with
    dummy blocks and runs the insert pass; Epoch re-scans limbo. *)

val off_of_ref : t -> int -> int
(** Byte offset of a reference's block — the offset carried in the
    wire [Val_ref] frame. *)

(** {1 Reader side: reservation bracket and materialization} *)

val enter : t -> slot:int -> unit
(** Publish the current era in [slot]'s reservation word (head
    empty).  Retired batches whose blocks could still be referenced
    are handed to this slot until {!leave}. *)

val leave : t -> slot:int -> unit
(** Detach the slot's handed list wholesale and decrement each
    node's batch refcount, freeing any batch this reader was the
    last to release. *)

val refresh : t -> slot:int -> unit
(** Raise the slot's published era to the current clock, preserving
    the handed list — call between brackets kept open across many
    reads so the pinned-garbage bound tracks the clock. *)

val read_ref :
  t ->
  cls:int ->
  off:int ->
  len:int ->
  gen:int ->
  ?gate:(unit -> unit) ->
  unit ->
  string option
(** Materialize a [Val_ref]: bounds-check the frame fields, copy
    [len] payload bytes out, fence, and re-read the generation
    stamp.  [None] means the frame was malformed or the block was
    retired since the reference was minted (torn read detected) —
    retry through the copy path.  [gate], used by the fuzz tests,
    runs between the two halves of the copy-out. *)

val announce : t -> slot:int -> pid:int -> unit
(** Record the client pid behind [slot] for the confirmed-death
    sweep. *)

val heartbeat : t -> slot:int -> unit
val slot_era : t -> slot:int -> int
val slot_pid : t -> slot:int -> int

(** {1 Sweeping} *)

val sweep_slot : t -> slot:int -> unit
(** Force-clear a slot on the dead client's behalf: detach its word,
    release the handed list, zero pid and heartbeat. *)

val sweep_dead : ?alive:(int -> bool) -> t -> int
(** Sweep every slot whose announced pid no longer exists
    ([kill pid 0] → ESRCH, or a custom [alive] probe).  Returns the
    number of slots cleared. *)

(** {1 Stats and lifecycle} *)

val era : t -> int
val advance_era : t -> unit
val retired : t -> int
val freed : t -> int

val unreclaimed : t -> int
(** Retired-but-not-yet-freed block count — the quantity the
    stalled-reader CI gate bounds. *)

val gauges : t -> (string * int) list
(** Per-class alloc/free/bump counters plus era, retired, freed and
    unreclaimed, in lib/obs gauge form. *)

val mark_closed : t -> unit
val detach : t -> unit
val unlink : t -> unit
val unlink_path : string -> unit
