let wrap probe (packed : Tracker.packed) : Tracker.packed =
  if Obs.Probe.is_noop probe then packed
  else
    let module M = (val packed) in
    (module struct
      type t = M.t

      let name = M.name
      let robust = M.robust
      let transparent = M.transparent

      (* Installing the probe into the scheme's [Stats.t] is what makes
         the shared retire/free funnel start reporting; everything else
         here only adds the bracket events. *)
      let create cfg =
        let t = M.create cfg in
        Stats.set_probe (M.stats t) probe;
        t

      let enter t ~tid =
        probe.Obs.Probe.enter ~tid;
        M.enter t ~tid

      let leave t ~tid =
        M.leave t ~tid;
        probe.Obs.Probe.leave ~tid

      let trim t ~tid =
        M.trim t ~tid;
        probe.Obs.Probe.trim ~tid

      let alloc_hook t ~tid hdr =
        M.alloc_hook t ~tid hdr;
        probe.Obs.Probe.alloc ~tid

      let read = M.read
      let transfer = M.transfer
      let retire = M.retire
      let flush = M.flush
      let stats = M.stats
      let gauges = M.gauges
    end)
