type t = {
  cfg : Config.t;
  clock : int Atomic.t;
  reservations : int Atomic.t array;
  limbo : Limbo.t array;
  alloc_count : int array;
  stats : Stats.t;
}

let name = "Epoch"
let robust = false
let transparent = false
let inactive = max_int

let create cfg =
  Config.validate cfg;
  {
    cfg;
    clock = Atomic.make 0;
    reservations = Array.init cfg.nthreads (fun _ -> Atomic.make inactive);
    limbo = Array.init cfg.nthreads (fun _ -> Limbo.create ());
    alloc_count = Array.make cfg.nthreads 0;
    stats = Stats.create ();
  }

let enter t ~tid = Atomic.set t.reservations.(tid) (Atomic.get t.clock)
let leave t ~tid = Atomic.set t.reservations.(tid) inactive

let trim t ~tid =
  leave t ~tid;
  enter t ~tid

let alloc_hook t ~tid hdr =
  Stats.on_alloc t.stats;
  let c = t.alloc_count.(tid) + 1 in
  t.alloc_count.(tid) <- c;
  if c mod t.cfg.epoch_freq = 0 then Atomic.incr t.clock;
  hdr.Hdr.birth <- Atomic.get t.clock

let read t ~tid:_ ~idx:_ a proj =
  let v = Atomic.get a in
  if t.cfg.check_uaf then Hdr.check_not_freed "Ebr.read" (proj v);
  v

let min_reservation t =
  let m = ref inactive in
  Array.iter
    (fun r ->
      let v = Atomic.get r in
      if v < !m then m := v)
    t.reservations;
  !m

let scan t ~tid =
  let min_res = min_reservation t in
  Limbo.sweep t.limbo.(tid)
    ~keep:(fun h -> h.Hdr.retire_era >= min_res)
    ~free:(Tracker.free_block t.stats ~tid)

let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

let retire t ~tid hdr =
  hdr.Hdr.retire_era <- Atomic.get t.clock;
  Tracker.retire_block t.stats ~tid hdr;
  Limbo.push t.limbo.(tid) hdr;
  if Limbo.should_scan t.limbo.(tid) ~every:t.cfg.empty_freq then scan t ~tid

let flush t ~tid = scan t ~tid
let stats t = t.stats

let gauges t =
  let total = ref 0 and deepest = ref 0 in
  Array.iter
    (fun l ->
      let s = Limbo.size l in
      total := !total + s;
      if s > !deepest then deepest := s)
    t.limbo;
  [ ("limbo_total", !total); ("limbo_max", !deepest) ]
