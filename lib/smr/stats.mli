(** Reclamation statistics shared by every scheme.

    The paper's second metric (Figures 9, 12, 14, 16) is the average
    number of {e retired but not yet reclaimed} objects, sampled during
    the run; trackers bump these counters on each transition and the
    workload harness samples [unreclaimed].

    Read-side consistency: the counters are independent atomics, but
    every read path here orders its loads [frees] before [retires]
    before [allocs].  Since a block is allocated before it is retired
    and retired before it is freed, that order makes the invariant
    [allocs >= retires >= frees] hold for every value this interface
    returns — a sampler racing a retire+free pair can no longer
    observe a negative backlog. *)

type t

val create : unit -> t

val on_alloc : t -> unit
val on_retire : t -> unit
val on_free : t -> unit

val allocs : t -> int
val retires : t -> int
val frees : t -> int

val unreclaimed : t -> int
(** [retires - frees] at the moment of the call: blocks whose storage
    an unmanaged-heap program could not yet have returned to the OS.
    Never negative. *)

type snapshot = { allocs : int; retires : int; frees : int }

val snapshot : t -> snapshot
(** Internally consistent sample: [allocs >= retires >= frees]. *)

val unreclaimed_of : snapshot -> int
(** The snapshot's retired-not-yet-freed backlog, clamped at 0. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {2 Instrumentation}

    The stats block doubles as the per-tracker carrier of the
    observability {!Obs.Probe.t}: the shared retire/free funnel
    ({!Tracker.retire_block} / {!Tracker.free_block}) consults it, so
    installing a probe instruments every scheme's reclamation path
    without touching scheme internals.  Default: {!Obs.Probe.noop}
    (one physical-equality check per transition, nothing else). *)

val set_probe : t -> Obs.Probe.t -> unit
val probe : t -> Obs.Probe.t
