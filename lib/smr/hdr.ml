type t = {
  uid : int;
  mutable next : t;
  mutable batch_link : t;
  mutable ref_node : t;
  nref : int Atomic.t;
  mutable adjs : int;
  mutable birth : int;
  mutable retire_era : int;
  mutable retire_ns : int;
  mutable free_hook : unit -> unit;
  state : int Atomic.t;
}

let state_live = 0
let state_retired = 1
let state_freed = 2

let rec nil =
  {
    uid = -1;
    next = nil;
    batch_link = nil;
    ref_node = nil;
    nref = Atomic.make 0;
    adjs = 0;
    birth = 0;
    retire_era = 0;
    retire_ns = 0;
    free_hook = ignore;
    state = Atomic.make state_live;
  }

let is_nil h = h == nil
let uid_counter = Atomic.make 0

let create () =
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    next = nil;
    batch_link = nil;
    ref_node = nil;
    nref = Atomic.make 0;
    adjs = 0;
    birth = 0;
    retire_era = 0;
    retire_ns = 0;
    free_hook = ignore;
    state = Atomic.make state_live;
  }

exception Lifecycle of string * t

let state_name = function
  | 0 -> "live"
  | 1 -> "retired"
  | 2 -> "freed"
  | _ -> "?"

let set_live h =
  h.next <- nil;
  h.batch_link <- nil;
  h.ref_node <- nil;
  Atomic.set h.nref 0;
  h.adjs <- 0;
  h.birth <- 0;
  h.retire_era <- 0;
  h.retire_ns <- 0;
  Atomic.set h.state state_live

let set_retired h =
  let old = Atomic.exchange h.state state_retired in
  if old <> state_live then raise (Lifecycle ("double-retire", h))

let set_freed h =
  let old = Atomic.exchange h.state state_freed in
  if old = state_freed then raise (Lifecycle ("double-free", h))

let is_freed h = Atomic.get h.state = state_freed

let check_not_freed ctx h =
  if (not (is_nil h)) && is_freed h then
    raise (Lifecycle ("use-after-free: " ^ ctx, h))

let pp ppf h =
  if is_nil h then Format.fprintf ppf "<nil>"
  else
    Format.fprintf ppf "#%d[%s nref=%d birth=%d retire=%d]" h.uid
      (state_name (Atomic.get h.state))
      (Atomic.get h.nref) h.birth h.retire_era
