type t = {
  uid : int;
  mutable next : t;
  mutable batch_link : t;
  mutable ref_node : t;
  nref : int Atomic.t;
  mutable adjs : int;
  mutable birth : int;
  mutable retire_era : int;
  mutable retire_ns : int;
  mutable free_hook : unit -> unit;
  state : int Atomic.t;
}

let state_live = 0
let state_retired = 1
let state_freed = 2

let rec nil =
  {
    uid = -1;
    next = nil;
    batch_link = nil;
    ref_node = nil;
    nref = Atomic.make 0;
    adjs = 0;
    birth = 0;
    retire_era = 0;
    retire_ns = 0;
    free_hook = ignore;
    state = Atomic.make state_live;
  }

let is_nil h = h == nil

(* What a freed header's registry cell decodes to (distinct from [nil]:
   a nil cell means "not yet published" and lookups wait on it). *)
let rec tombstone =
  {
    uid = -2;
    next = tombstone;
    batch_link = tombstone;
    ref_node = tombstone;
    nref = Atomic.make 0;
    adjs = 0;
    birth = 0;
    retire_era = 0;
    retire_ns = 0;
    free_hook = ignore;
    state = Atomic.make state_freed;
  }

let is_tombstone h = h == tombstone

let uid_counter = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Uid registry: a wait-free [uid -> header] directory, the decode
   side of the packed single-word Head backend (Head.Packed encodes a
   header as [uid + 1] inside an immediate int, so something must map
   the int back to the block).

   Same chunked never-moves shape as Mpool's node registry: headers
   live in fixed-size chunks hung off a fixed directory and are never
   moved after publication, so [of_uid] is two array loads plus one
   atomic load.  [create] reserves the uid (the fetch-and-add above)
   strictly before publishing, so a uid below [uid_counter] may
   designate a cell that is not yet — but is about to be — filled;
   [of_uid] waits on that specific cell (the publisher is a bounded
   number of instructions away from the store).

   The registry holds a strong reference while the header is live or
   retired: a packed head keeps a retirement list reachable through
   nothing but an int, so the registry is what keeps the blocks alive
   for the GC.  [set_freed] swaps the cell to a dead sentinel
   ([tombstone]) and [set_live] republishes on pool recycling, so a
   freed header is retained only by whatever recycles it (its pool) —
   dropping a pool reclaims its headers instead of pinning them (and,
   through their free hooks, the pool itself) forever.  Decoding a
   freed uid is possible only from a stale snapshot of a head word
   (the node left the head before it could be freed), but staleness
   does {e not} make the snapshot's value CAS fail: the uid can be
   recycled ([set_live]) and re-inserted, and the word can revisit its
   old bit pattern, so the CAS may ABA-succeed while the decode — if
   it raced the freed window — returned [tombstone].  Decoders that go
   on to CAS against the snapshot must therefore test [is_tombstone]
   and retry on a fresh read; a {e non}-tombstone decode is ABA-safe,
   because a uid denotes the same physical header for that header's
   whole existence (set_live does not reassign it) — the reason
   uid-as-index works where Mpool-index-as-index would not
   (see DESIGN.md §1). *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 16
let uid_capacity = chunk_size * max_chunks

let registry : t Atomic.t array option Atomic.t array =
  Array.init max_chunks (fun _ -> Atomic.make None)

let register h =
  let i = h.uid in
  if i lsr chunk_bits >= max_chunks then
    failwith "Hdr.create: uid registry exhausted";
  let slot = registry.(i lsr chunk_bits) in
  (match Atomic.get slot with
  | Some _ -> ()
  | None ->
      (* Only one thread wins the install; losers use the winner's
         chunk.  Cells start at [nil] (not [option]) so the lookup
         fast path allocates nothing. *)
      let arr = Array.init chunk_size (fun _ -> Atomic.make nil) in
      ignore (Atomic.compare_and_set slot None (Some arr)));
  match Atomic.get slot with
  | Some arr -> Atomic.set arr.(i land (chunk_size - 1)) h
  | None -> assert false

(* The spin loops live at top level (not as local closures) so the
   decode path of the packed backend allocates nothing. *)
let rec registry_chunk c =
  match Atomic.get registry.(c) with
  | Some arr -> arr
  | None ->
      Domain.cpu_relax ();
      registry_chunk c

let rec registry_wait cell =
  let h = Atomic.get cell in
  if h == nil then begin
    Domain.cpu_relax ();
    registry_wait cell
  end
  else h

let of_uid i =
  if i < 0 || i >= Atomic.get uid_counter then
    invalid_arg "Hdr.of_uid: uid out of range";
  let arr = registry_chunk (i lsr chunk_bits) in
  registry_wait arr.(i land (chunk_size - 1))

let create () =
  let h =
    {
      uid = Atomic.fetch_and_add uid_counter 1;
      next = nil;
      batch_link = nil;
      ref_node = nil;
      nref = Atomic.make 0;
      adjs = 0;
      birth = 0;
      retire_era = 0;
      retire_ns = 0;
      free_hook = ignore;
      state = Atomic.make state_live;
    }
  in
  register h;
  h

exception Lifecycle of string * t

let state_name = function
  | 0 -> "live"
  | 1 -> "retired"
  | 2 -> "freed"
  | _ -> "?"

let set_live h =
  register h;
  h.next <- nil;
  h.batch_link <- nil;
  h.ref_node <- nil;
  Atomic.set h.nref 0;
  h.adjs <- 0;
  h.birth <- 0;
  h.retire_era <- 0;
  h.retire_ns <- 0;
  Atomic.set h.state state_live

let set_retired h =
  let old = Atomic.exchange h.state state_retired in
  if old <> state_live then raise (Lifecycle ("double-retire", h))

let set_freed h =
  let old = Atomic.exchange h.state state_freed in
  if old = state_freed then raise (Lifecycle ("double-free", h));
  (* Drop the registry's strong reference: from here until the next
     [set_live] the only thing keeping the record alive is its pool. *)
  match Atomic.get registry.(h.uid lsr chunk_bits) with
  | Some arr -> Atomic.set arr.(h.uid land (chunk_size - 1)) tombstone
  | None -> assert false

let is_freed h = Atomic.get h.state = state_freed

let check_not_freed ctx h =
  if (not (is_nil h)) && is_freed h then
    raise (Lifecycle ("use-after-free: " ^ ctx, h))

let pp ppf h =
  if is_nil h then Format.fprintf ppf "<nil>"
  else
    Format.fprintf ppf "#%d[%s nref=%d birth=%d retire=%d]" h.uid
      (state_name (Atomic.get h.state))
      (Atomic.get h.nref) h.birth h.retire_era
