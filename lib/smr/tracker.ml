module type S = sig
  type t

  val name : string
  val robust : bool
  val transparent : bool
  val create : Config.t -> t
  val enter : t -> tid:int -> unit
  val leave : t -> tid:int -> unit
  val trim : t -> tid:int -> unit
  val alloc_hook : t -> tid:int -> Hdr.t -> unit
  val read : t -> tid:int -> idx:int -> 'a Atomic.t -> ('a -> Hdr.t) -> 'a
  val transfer : t -> tid:int -> from_idx:int -> to_idx:int -> unit
  val retire : t -> tid:int -> Hdr.t -> unit
  val flush : t -> tid:int -> unit
  val stats : t -> Stats.t
  val gauges : t -> (string * int) list
end

type packed = (module S)

let free_block stats ~tid hdr =
  Hdr.set_freed hdr;
  hdr.Hdr.free_hook ();
  Stats.on_free stats;
  let p = Stats.probe stats in
  if not (Obs.Probe.is_noop p) then
    let lag_ns =
      if hdr.Hdr.retire_ns = 0 then 0
      else max 0 (Obs.Clock.now_ns () - hdr.Hdr.retire_ns)
    in
    p.Obs.Probe.free ~tid ~lag_ns

let retire_block stats ~tid hdr =
  Hdr.set_retired hdr;
  Stats.on_retire stats;
  let p = Stats.probe stats in
  if not (Obs.Probe.is_noop p) then begin
    hdr.Hdr.retire_ns <- Obs.Clock.now_ns ();
    p.Obs.Probe.retire ~tid
  end
