(** Attach an observability probe to a packed tracker.

    [wrap probe scheme] returns a tracker module with identical
    reclamation behaviour whose bracket operations ([enter], [leave],
    [trim]) and [alloc_hook] additionally fire the corresponding probe
    events, and whose [create] installs [probe] into the scheme's
    {!Stats.t} — which makes the shared {!Tracker.retire_block} /
    {!Tracker.free_block} funnel report retires and frees (with
    retire→free lag) for every block the scheme handles.

    [read] and [transfer] are passed through untouched: they are the
    traversal hot path, and per-dereference events would perturb the
    very latencies being measured.

    Wrapping with {!Obs.Probe.noop} returns the input module
    physically unchanged, so an uninstrumented benchmark run pays
    nothing — not even the extra closure layer. *)

val wrap : Obs.Probe.t -> Tracker.packed -> Tracker.packed
