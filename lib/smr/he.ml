type t = {
  cfg : Config.t;
  clock : int Atomic.t;
  (* eras.(tid).(idx): published protection eras; 0 = empty (the clock
     starts at 1 so a published era is never 0). *)
  eras : int Atomic.t array array;
  limbo : Limbo.t array;
  alloc_count : int array;
  stats : Stats.t;
}

let name = "HE"
let robust = true
let transparent = false
let empty = 0

let create cfg =
  Config.validate cfg;
  {
    cfg;
    clock = Atomic.make 1;
    eras =
      Array.init cfg.nthreads (fun _ ->
          Array.init cfg.hazards (fun _ -> Atomic.make empty));
    limbo = Array.init cfg.nthreads (fun _ -> Limbo.create ());
    alloc_count = Array.make cfg.nthreads 0;
    stats = Stats.create ();
  }

let enter _ ~tid:_ = ()

let leave t ~tid =
  Array.iter (fun slot -> Atomic.set slot empty) t.eras.(tid)

let trim t ~tid =
  leave t ~tid;
  enter t ~tid

let alloc_hook t ~tid hdr =
  Stats.on_alloc t.stats;
  let c = t.alloc_count.(tid) + 1 in
  t.alloc_count.(tid) <- c;
  if c mod t.cfg.epoch_freq = 0 then Atomic.incr t.clock;
  hdr.Hdr.birth <- Atomic.get t.clock

let read t ~tid ~idx a _proj =
  let slot = t.eras.(tid).(idx) in
  let rec loop prev =
    let e = Atomic.get t.clock in
    if prev <> e then Atomic.set slot e;
    let v = Atomic.get a in
    if Atomic.get t.clock = e then
      (* As in Hp.read: a frozen cell of an unlinked node may point at
         a block whose lifetime ended before our era was published;
         the caller's validating CAS rejects it before any
         dereference, so no assertion here. *)
      v
    else loop e
  in
  loop (Atomic.get slot)

(* The protection is the published era value; copying it to another
   slot extends it past the source slot's reuse. *)
let transfer t ~tid ~from_idx ~to_idx =
  let slots = t.eras.(tid) in
  Atomic.set slots.(to_idx) (Atomic.get slots.(from_idx))

let protected_by_someone t hdr =
  let birth = hdr.Hdr.birth and retired = hdr.Hdr.retire_era in
  let n = Array.length t.eras in
  let rec go i =
    if i >= n then false
    else
      let slots = t.eras.(i) in
      let m = Array.length slots in
      let rec go_slot j =
        if j >= m then go (i + 1)
        else
          let e = Atomic.get slots.(j) in
          if e <> empty && e >= birth && e <= retired then true
          else go_slot (j + 1)
      in
      go_slot 0
  in
  go 0

let scan t ~tid =
  Limbo.sweep t.limbo.(tid)
    ~keep:(fun h -> protected_by_someone t h)
    ~free:(Tracker.free_block t.stats ~tid)

let retire t ~tid hdr =
  hdr.Hdr.retire_era <- Atomic.get t.clock;
  Tracker.retire_block t.stats ~tid hdr;
  Limbo.push t.limbo.(tid) hdr;
  if Limbo.should_scan t.limbo.(tid) ~every:t.cfg.empty_freq then scan t ~tid

let flush t ~tid = scan t ~tid
let stats t = t.stats

let gauges t =
  let total = ref 0 and deepest = ref 0 in
  Array.iter
    (fun l ->
      let s = Limbo.size l in
      total := !total + s;
      if s > !deepest then deepest := s)
    t.limbo;
  [ ("limbo_total", !total); ("limbo_max", !deepest) ]
