type t = {
  cfg : Config.t;
  clock : int Atomic.t;
  lower : int Atomic.t array;
  upper : int Atomic.t array;
  limbo : Limbo.t array;
  alloc_count : int array;
  stats : Stats.t;
}

let name = "IBR"
let robust = true
let transparent = false

let create cfg =
  Config.validate cfg;
  {
    cfg;
    clock = Atomic.make 0;
    lower = Array.init cfg.nthreads (fun _ -> Atomic.make max_int);
    upper = Array.init cfg.nthreads (fun _ -> Atomic.make min_int);
    limbo = Array.init cfg.nthreads (fun _ -> Limbo.create ());
    alloc_count = Array.make cfg.nthreads 0;
    stats = Stats.create ();
  }

let enter t ~tid =
  let e = Atomic.get t.clock in
  Atomic.set t.lower.(tid) e;
  Atomic.set t.upper.(tid) e

let leave t ~tid =
  Atomic.set t.lower.(tid) max_int;
  Atomic.set t.upper.(tid) min_int

let trim t ~tid =
  leave t ~tid;
  enter t ~tid

let alloc_hook t ~tid hdr =
  Stats.on_alloc t.stats;
  let c = t.alloc_count.(tid) + 1 in
  t.alloc_count.(tid) <- c;
  if c mod t.cfg.epoch_freq = 0 then Atomic.incr t.clock;
  hdr.Hdr.birth <- Atomic.get t.clock

(* 2GE protected read: keep raising our published [upper] until the
   clock is quiescent across one pointer load, so any block reachable
   through the loaded value was born at or before our interval's upper
   end. *)
let read t ~tid ~idx:_ a proj =
  let up = t.upper.(tid) in
  let rec loop () =
    let v = Atomic.get a in
    let e = Atomic.get t.clock in
    if Atomic.get up = e then begin
      if t.cfg.check_uaf then Hdr.check_not_freed "Ibr.read" (proj v);
      v
    end
    else begin
      Atomic.set up e;
      loop ()
    end
  in
  loop ()

let conflicts t hdr =
  let birth = hdr.Hdr.birth and retired = hdr.Hdr.retire_era in
  let n = Array.length t.lower in
  let rec go i =
    if i >= n then false
    else
      let lo = Atomic.get t.lower.(i) and up = Atomic.get t.upper.(i) in
      (* Intervals intersect unless the block died before the
         reservation began or was born after it last advanced. *)
      if retired >= lo && birth <= up then true else go (i + 1)
  in
  go 0

let scan t ~tid =
  Limbo.sweep t.limbo.(tid)
    ~keep:(fun h -> conflicts t h)
    ~free:(Tracker.free_block t.stats ~tid)

let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

let retire t ~tid hdr =
  hdr.Hdr.retire_era <- Atomic.get t.clock;
  Tracker.retire_block t.stats ~tid hdr;
  Limbo.push t.limbo.(tid) hdr;
  if Limbo.should_scan t.limbo.(tid) ~every:t.cfg.empty_freq then scan t ~tid

let flush t ~tid = scan t ~tid
let stats t = t.stats

let gauges t =
  let total = ref 0 and deepest = ref 0 in
  Array.iter
    (fun l ->
      let s = Limbo.size l in
      total := !total + s;
      if s > !deepest then deepest := s)
    t.limbo;
  [ ("limbo_total", !total); ("limbo_max", !deepest) ]
