type t = { cfg : Config.t; stats : Stats.t }

let name = "UnsafeImmediate"
let robust = false
let transparent = true

let create cfg =
  Config.validate cfg;
  { cfg; stats = Stats.create () }

let enter _ ~tid:_ = ()
let leave _ ~tid:_ = ()
let trim _ ~tid:_ = ()
let alloc_hook t ~tid:_ (_ : Hdr.t) = Stats.on_alloc t.stats

let read t ~tid:_ ~idx:_ a proj =
  let v = Atomic.get a in
  if t.cfg.check_uaf then Hdr.check_not_freed "Unsafe_immediate.read" (proj v);
  v

let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

let retire t ~tid hdr =
  Tracker.retire_block t.stats ~tid hdr;
  Tracker.free_block t.stats ~tid hdr

let flush _ ~tid:_ = ()
let stats t = t.stats
let gauges _ = []
