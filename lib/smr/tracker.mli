(** The tracker interface every SMR scheme implements.

    This is the OCaml rendering of the API of the Wen et al. PPoPP'18
    test framework used by the paper's evaluation (and of the paper's
    own Figure 1a): data-structure operations are bracketed by
    {!S.enter} / {!S.leave}, traversal dereferences go through
    {!S.read}, unlinked blocks are handed to {!S.retire}, and the
    scheme decides when the block's [free_hook] may run.

    Thread ids: the harness assigns each worker a dense id
    [0 <= tid < Config.nthreads].  Transparent schemes (the Hyaline
    family) use [tid] only to index scratch handles — any number of
    concurrent entities may share them; registration-based schemes
    (EBR, HP, HE, IBR) genuinely reserve per-[tid] state, which is
    precisely the transparency gap the paper describes (§2.4).

    Teardown: the uid registry behind the packed head backends
    ([Hdr.of_uid]) holds a process-global strong reference to every
    header from [Hdr.create] until [Hdr.set_freed], and each [create]
    permanently consumes one of the [Hdr.uid_capacity] uids.  A
    tracker (plus its pools and blocks) is therefore only collectable
    once its blocks have actually been freed — abandon a structure by
    draining it ([flush] every tid, then [leave] all brackets so
    deferred batches reclaim), not by dropping the reference.  Schemes
    that never free ([Leaky]) pin their headers for the life of the
    process by design; long-running processes should recycle blocks
    through pools rather than create fresh headers per short-lived
    structure, or uid exhaustion eventually turns [Hdr.create] into a
    hard failure. *)

module type S = sig
  type t
  (** Shared scheme state. *)

  val name : string
  val robust : bool
  (** Whether stalled threads leave the number of unreclaimable blocks
      bounded (paper §2.3). *)

  val transparent : bool
  (** Whether threads are "off the hook" after [leave] — no per-thread
      registration, no post-[leave] obligations (paper §2.4). *)

  val create : Config.t -> t

  val enter : t -> tid:int -> unit
  (** Begin a data-structure operation. *)

  val leave : t -> tid:int -> unit
  (** End the operation started by the matching [enter]. *)

  val trim : t -> tid:int -> unit
  (** Logically [leave] followed by [enter] (paper §3.3): releases the
      blocks retired before this point without ending the bracket.
      Hyaline implements the contention-free version; baselines
      implement it literally as [leave; enter]. *)

  val alloc_hook : t -> tid:int -> Hdr.t -> unit
  (** Stamp a freshly allocated block (birth era for the era-based
      schemes) and advance allocation-driven clocks. *)

  val read : t -> tid:int -> idx:int -> 'a Atomic.t -> ('a -> Hdr.t) -> 'a
  (** [read t ~tid ~idx link proj] performs a protected dereference of
      [link]: it returns a value [v] such that the block [proj v] is
      guaranteed not to be freed until the protection is released
      (scheme-specific: until the slot [idx] is overwritten or cleared
      for HP/HE, until [leave] for the others).  [proj] maps the link
      value to the header of the block it designates ([Hdr.nil] for a
      null link).  [idx] selects a protection slot in
      [0 .. Config.hazards - 1]; schemes without per-pointer slots
      ignore it. *)

  val transfer : t -> tid:int -> from_idx:int -> to_idx:int -> unit
  (** Copy the protection held in slot [from_idx] to slot [to_idx]
      (both remain protected until overwritten).  Needed by algorithms
      whose helper records outlive a bounded window of recent reads —
      the Natarajan-Mittal seek keeps its ancestor/successor/parent
      pinned this way while the descent continues below them.  A no-op
      for schemes whose protection is not per-slot (EBR, IBR, the
      Hyaline family). *)

  val retire : t -> tid:int -> Hdr.t -> unit
  (** Hand an unlinked block to the scheme.  Must be called inside an
      [enter]/[leave] bracket.  The block's [free_hook] runs exactly
      once, at some point no concurrent operation can still reach it. *)

  val flush : t -> tid:int -> unit
  (** Finalize buffered work so a quiescent system reclaims fully:
      Hyaline pads and retires the thread's partial batch (the paper's
      "dummy nodes" finalization, §2.4); baselines attempt a limbo
      scan.  Safe to call outside a bracket for baselines; Hyaline
      requires an active bracket if the partial batch is non-empty. *)

  val stats : t -> Stats.t

  val gauges : t -> (string * int) list
  (** Instantaneous scheme-internal occupancy figures for the
      observability layer, as [(metric_name, value)] pairs — e.g. the
      total and maximum per-thread limbo-list population for the
      baselines, or slot count and pending-batch depth for Hyaline.
      Values are racy point samples; names are stable identifiers
      (lowercase, [_]-separated).  May be empty. *)
end

type packed = (module S)
(** First-class scheme module, for tables indexed by scheme. *)

val free_block : Stats.t -> tid:int -> Hdr.t -> unit
(** Shared free path: mark the header freed (checking for double
    free), run the [free_hook] and count the free.  Every scheme's
    reclamation funnels through here; when a probe is installed in
    [stats] it also reports the block's retire→free lag ([tid] is the
    {e freeing} thread, not necessarily the retiring one). *)

val retire_block : Stats.t -> tid:int -> Hdr.t -> unit
(** Shared retire entry: mark retired (checking for double retire) and
    count.  With a probe installed, additionally stamps
    [hdr.retire_ns] so the matching {!free_block} can report lag. *)
