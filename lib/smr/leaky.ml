type t = { stats : Stats.t }

let name = "Leaky"
let robust = false
let transparent = true
let create (_ : Config.t) = { stats = Stats.create () }
let enter _ ~tid:_ = ()
let leave _ ~tid:_ = ()
let trim _ ~tid:_ = ()
let alloc_hook t ~tid:_ (_ : Hdr.t) = Stats.on_alloc t.stats
let read _ ~tid:_ ~idx:_ a _proj = Atomic.get a
let transfer _ ~tid:_ ~from_idx:_ ~to_idx:_ = ()

let retire t ~tid hdr = Tracker.retire_block t.stats ~tid hdr
let flush _ ~tid:_ = ()
let stats t = t.stats
let gauges _ = []
