type t = {
  allocs : int Atomic.t;
  retires : int Atomic.t;
  frees : int Atomic.t;
  mutable probe : Obs.Probe.t;
}

let create () =
  {
    allocs = Atomic.make 0;
    retires = Atomic.make 0;
    frees = Atomic.make 0;
    probe = Obs.Probe.noop;
  }

let on_alloc t = Atomic.incr t.allocs
let on_retire t = Atomic.incr t.retires
let on_free t = Atomic.incr t.frees
let allocs t = Atomic.get t.allocs
let retires t = Atomic.get t.retires
let frees t = Atomic.get t.frees

(* A block is freed only after it was retired, and both counters are
   monotonic, so reading [frees] FIRST guarantees the [retires] read
   that follows is at least as recent: the difference cannot go
   negative however many retire+free pairs land in between.  (Reading
   in the opposite order — the old code — let a sampler racing a
   retire+free pair observe frees > retires and report a negative
   backlog, which skewed the Fig. 9/10 minima.)  The clamp guards the
   remaining case of a caller mixing reads from different moments. *)
let unreclaimed t =
  let f = Atomic.get t.frees in
  let r = Atomic.get t.retires in
  max 0 (r - f)

type snapshot = { allocs : int; retires : int; frees : int }

(* Same ordering discipline: frees, then retires (which covers frees),
   then allocs (which covers retires, since a block is retired only
   after it was allocated).  The resulting snapshot is internally
   consistent: allocs >= retires >= frees always holds. *)
let snapshot (t : t) =
  let frees = Atomic.get t.frees in
  let retires = max frees (Atomic.get t.retires) in
  let allocs = max retires (Atomic.get t.allocs) in
  { allocs; retires; frees }

let unreclaimed_of { retires; frees; _ } = max 0 (retires - frees)

let pp_snapshot ppf ({ allocs; retires; frees } as s) =
  Format.fprintf ppf "allocs=%d retires=%d frees=%d unreclaimed=%d" allocs
    retires frees (unreclaimed_of s)

let set_probe t probe = t.probe <- probe
let probe t = t.probe
