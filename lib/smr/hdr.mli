(** The per-block SMR header.

    Every reclaimable node embeds one [Hdr.t], mirroring the C test
    framework of Wen et al. (PPoPP'18) where blocks carry the union of
    all schemes' per-block state.  The header provides:

    - the three link words of a Hyaline batch node — {!type-t.next}
      (per-slot retirement-list link), {!type-t.batch_link} (chain of
      the batch's nodes) and {!type-t.ref_node} (pointer to the node
      carrying the batch's NRef counter);
    - the batch reference counter {!type-t.nref} (meaningful on the
      dedicated NRef node only) and the per-batch [Adjs] snapshot used
      by adaptive Hyaline-S (paper §4.3);
    - [birth] and [retire_era] stamps for the era-based schemes
      (HE, IBR, Hyaline-S);
    - a [free_hook] that returns the {e enclosing} node to its memory
      pool; and
    - a lifecycle [state] word giving reclamation observable semantics:
      illegal transitions (double retire, double free) raise, and
      readers can assert a block they dereference has not been freed —
      the manual-heap failure the GC would otherwise mask.

    Lists of headers are [nil]-terminated with the distinguished
    sentinel {!nil} (compared with [==]) rather than [option], to avoid
    allocating an ['a option] box per link update on hot paths. *)

type t = {
  uid : int;  (** unique id, assigned at creation; for debugging *)
  mutable next : t;
      (** Hyaline: successor in one slot's retirement list; baselines:
          successor in a thread-local limbo list. *)
  mutable batch_link : t;
      (** Hyaline: next node of the same batch ([nil]-terminated). *)
  mutable ref_node : t;
      (** Hyaline: the batch node that carries {!nref}.  On the NRef
          node itself this field is unused (the paper repurposes it to
          store the batch's [Adjs]; we keep a separate immediate field
          {!adjs} since OCaml words are typed). *)
  nref : int Atomic.t;
      (** Batch reference count, relaxed: transiently negative (or,
          viewed unsigned, huge) until all adjustments land. *)
  mutable adjs : int;
      (** Adaptive Hyaline-S: the [Adjs] constant captured when the
          batch was retired (paper §4.3). *)
  mutable birth : int;  (** birth era (HE / IBR / Hyaline-S) *)
  mutable retire_era : int;  (** retire era (HE / IBR) *)
  mutable retire_ns : int;
      (** Observability: wall timestamp of the retire, stamped by
          {!Tracker.retire_block} only when a probe is installed; the
          free funnel reports [now - retire_ns] as the block's
          reclamation lag. *)
  mutable free_hook : unit -> unit;
      (** Returns the enclosing block to its pool.  Set once when the
          enclosing node is created. *)
  state : int Atomic.t;  (** lifecycle word, see {!section-lifecycle} *)
}

val nil : t
(** Sentinel terminating header lists.  Physically unique; never
    retire, free or link it. *)

val is_nil : t -> bool

val create : unit -> t
(** [create ()] returns a fresh header in the {e live} state with all
    links set to {!nil} and a no-op [free_hook].  The header is
    published in the uid registry (see {!of_uid}) before it is
    returned.
    @raise Failure if the registry's index space ({!uid_capacity}
    headers) is exhausted. *)

(** {2 Uid registry}

    A wait-free [uid -> header] directory used by the packed
    single-word Head backend, which encodes a header pointer as
    [uid + 1] inside an immediate int.  Uids are assigned once by
    {!create} and survive pool recycling ([set_live] never reassigns
    them), so a uid denotes the same physical header for that header's
    whole existence — the property that makes value-based CAS on
    packed words ABA-safe.  The registry's reference is strong while
    the header is live or retired (a packed head may be the only thing
    keeping a retirement list reachable); {!set_freed} drops it, so a
    freed header is retained only by its pool and an abandoned pool is
    collectable, headers and all.

    Two costs of that design to keep in mind for long-running
    processes: only {!set_freed} unpins, so headers that are still
    live or retired when a structure is abandoned — including {e
    every} header managed by a non-reclaiming scheme such as [Leaky]
    — stay rooted by the registry for the life of the process; and
    every {!create} permanently consumes one of the {!uid_capacity}
    uids (recycling reuses headers, it does not mint uids back), after
    which [create] raises.  Tear trackers down by driving them to full
    reclamation (flush + final frees) and recycle headers through
    pools rather than creating fresh ones per short-lived structure —
    see the teardown note in [Tracker]. *)

val uid_capacity : int
(** Total number of uids the registry can hold (2{^28}); {!create}
    raises beyond it.  Well under the packed backend's 40-bit index
    budget, so registry exhaustion — not encoding overflow — is the
    binding limit.  Uids are never returned: see the pinning note
    above. *)

val of_uid : int -> t
(** [of_uid i] returns the header whose [uid] is [i].  Wait-free up to
    an in-flight publication: {!create} reserves the uid strictly
    before publishing the header, so [of_uid] may briefly spin on the
    specific cell of a header whose creation is in progress.  If the
    header is currently freed the result is the dead sentinel
    ({!is_tombstone}); that can only happen when decoding a stale
    snapshot of a head word (the node left the head before it could
    be freed).  Staleness does {e not} guarantee a later value CAS
    against that snapshot fails — the uid can be recycled and the
    word can revisit its old bit pattern — so callers intending to
    CAS must check {!is_tombstone} first and retry from a fresh read.
    @raise Invalid_argument if [i] is negative or beyond the last
    reserved uid. *)

val is_tombstone : t -> bool
(** Whether a header obtained from {!of_uid} is the dead sentinel
    standing in for a currently-freed uid.  Packed-head insert paths
    must test this before using a decoded predecessor in a CAS: the
    tombstone marks the one window in which the snapshot is provably
    stale yet its value CAS could still ABA-succeed (never retire,
    free or link the sentinel). *)

(** {2:lifecycle Lifecycle}

    [live] —(retire)→ [retired] —(free)→ [freed] —(reuse)→ [live].
    The checks below are always on: they are single atomic exchanges
    and form the use-after-free detector of the test suite. *)

exception Lifecycle of string * t
(** Raised on an illegal transition or a failed liveness check.  The
    string names the violated rule (["double-retire"],
    ["double-free"], ["use-after-free"]). *)

val set_live : t -> unit
(** Reset to live on (re)allocation; also clears links and eras and
    republishes the header in the uid registry. *)

val set_retired : t -> unit
(** @raise Lifecycle on double retire or retire-after-free. *)

val set_freed : t -> unit
(** Transition to freed; legal from both [retired] (the normal SMR
    path) and [live] (direct teardown of never-retired blocks).  Drops
    the uid registry's strong reference (see {!of_uid}).
    @raise Lifecycle on double free. *)

val check_not_freed : string -> t -> unit
(** [check_not_freed ctx h] raises {!Lifecycle} if [h] is freed.
    Called by trackers on dereference when UAF checking is enabled;
    [nil] always passes. *)

val is_freed : t -> bool

val pp : Format.formatter -> t -> unit
(** Debug printer: uid, state, nref, eras. *)
