type t = {
  cfg : Config.t;
  (* hazards.(tid).(idx): protected block, [Hdr.nil] when empty. *)
  hazards : Hdr.t Atomic.t array array;
  limbo : Limbo.t array;
  stats : Stats.t;
}

let name = "HP"
let robust = true
let transparent = false

let create cfg =
  Config.validate cfg;
  {
    cfg;
    hazards =
      Array.init cfg.nthreads (fun _ ->
          Array.init cfg.hazards (fun _ -> Atomic.make Hdr.nil));
    limbo = Array.init cfg.nthreads (fun _ -> Limbo.create ());
    stats = Stats.create ();
  }

let enter _ ~tid:_ = ()

let leave t ~tid =
  Array.iter (fun slot -> Atomic.set slot Hdr.nil) t.hazards.(tid)

let trim t ~tid =
  leave t ~tid;
  enter t ~tid

let alloc_hook t ~tid:_ (_ : Hdr.t) = Stats.on_alloc t.stats

(* Publish-and-validate: after announcing the target we re-read the
   link; if it still designates the same value, no scan that started
   after our announcement can miss the protection, and any free
   decided before it must have been based on the link already having
   moved on — in which case the re-read differs and we retry. *)
let read t ~tid ~idx a proj =
  let slot = t.hazards.(tid).(idx) in
  let rec loop () =
    let v = Atomic.get a in
    let h = proj v in
    if Hdr.is_nil h then begin
      Atomic.set slot Hdr.nil;
      v
    end
    else begin
      Atomic.set slot h;
      let v' = Atomic.get a in
      if v' == v then
        (* No use-after-free assertion here, deliberately: reading the
           frozen successor cell of an already-unlinked node may
           legitimately yield an already-freed block, which the data
           structure then discards when its validating CAS fails.  The
           protection contract only covers blocks the caller goes on
           to dereference after a successful validation. *)
        v
      else loop ()
    end
  in
  loop ()

(* Keep a record node protected while the rolling read window moves
   past it: duplicate its hazard into a dedicated slot. *)
let transfer t ~tid ~from_idx ~to_idx =
  let slots = t.hazards.(tid) in
  Atomic.set slots.(to_idx) (Atomic.get slots.(from_idx))

let scan t ~tid =
  (* Snapshot every published hazard, then sweep our limbo against the
     snapshot.  [uid]s are unique per header, so a hashtable keyed by
     uid is an exact representation of the snapshot. *)
  let protected_uids = Hashtbl.create (t.cfg.nthreads * t.cfg.hazards) in
  Array.iter
    (Array.iter (fun slot ->
         let h = Atomic.get slot in
         if not (Hdr.is_nil h) then Hashtbl.replace protected_uids h.Hdr.uid ()))
    t.hazards;
  Limbo.sweep t.limbo.(tid)
    ~keep:(fun h -> Hashtbl.mem protected_uids h.Hdr.uid)
    ~free:(Tracker.free_block t.stats ~tid)

let retire t ~tid hdr =
  Tracker.retire_block t.stats ~tid hdr;
  Limbo.push t.limbo.(tid) hdr;
  (* Michael's threshold: scan once the limbo outgrows the total
     number of protection slots by a constant factor. *)
  let threshold =
    let slots = t.cfg.nthreads * t.cfg.hazards in
    max t.cfg.empty_freq (2 * slots)
  in
  if Limbo.size t.limbo.(tid) >= threshold then scan t ~tid

let flush t ~tid = scan t ~tid
let stats t = t.stats

let gauges t =
  let total = ref 0 and deepest = ref 0 in
  Array.iter
    (fun l ->
      let s = Limbo.size l in
      total := !total + s;
      if s > !deepest then deepest := s)
    t.limbo;
  [ ("limbo_total", !total); ("limbo_max", !deepest) ]
