(* The durable-file namespace behind WAL segments and snapshots.

   Everything below the WAL is this record of closures, so the chaos
   suite runs on Mem — a "disk" whose crash semantics are exact and
   deterministic (synced bytes survive, unsynced bytes vanish) — while
   the daemon runs on fs with real fsync.  Same WAL code, same
   recovery code, different physics. *)

type writer = {
  w_append : string -> unit;
  w_sync : unit -> unit;
  w_close : unit -> unit;
}

type t = {
  s_label : string;
  s_list : unit -> string list;
  s_read : string -> string;
  s_source : string -> (bytes -> int -> int -> int) * (unit -> unit);
  s_write : string -> string -> unit;
  s_append : string -> writer;
  s_delete : string -> unit;
}

(* A Codec.source-shaped pull reader over an in-memory string: the
   default [s_source] for backends whose reads are already copies. *)
let string_reader s =
  let pos = ref 0 in
  let read buf off len =
    let n = min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n
  in
  (read, fun () -> ())

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fs ~dir =
  mkdir_p dir;
  let path name = Filename.concat dir name in
  let s_list () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           (not (Filename.check_suffix f ".tmp"))
           && not (Sys.is_directory (path f)))
    |> List.sort compare
  in
  let s_read name =
    In_channel.with_open_bin (path name) In_channel.input_all
  in
  (* Streaming read: an fd-backed pull source, so a frame-at-a-time
     loader never materializes the whole file. *)
  let s_source name =
    let fd =
      try Unix.openfile (path name) [ Unix.O_RDONLY ] 0
      with Unix.Unix_error (Unix.ENOENT, _, _) ->
        raise (Sys_error (path name ^ ": no such file"))
    in
    let read buf off len =
      let rec go () =
        try Unix.read fd buf off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()
    in
    (read, fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  in
  (* Atomic publish: the new contents become durable under a temp
     name, then rename — readers see the old file or the new one,
     never a prefix. *)
  let s_write name contents =
    let tmp = path (name ^ ".tmp") in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd contents 0 (String.length contents);
        Unix.fsync fd);
    Unix.rename tmp (path name)
  in
  let s_append name =
    let fd =
      Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    let closed = ref false in
    {
      w_append = (fun s -> write_all fd s 0 (String.length s));
      w_sync = (fun () -> Unix.fsync fd);
      w_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
    }
  in
  let s_delete name =
    try Unix.unlink (path name) with Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  { s_label = "fs:" ^ dir; s_list; s_read; s_source; s_write; s_append; s_delete }

(* ------------------------------------------------------------------ *)
(* Mmap-backed store: segment files are mapped shared-writable,
   appends are memcpys into the mapping, and the group-commit sync
   point is [msync] instead of [fsync].

   The discipline that keeps msync sufficient: file SIZE is made
   durable eagerly and rarely (ftruncate + fsync once per
   preallocation step), so the per-commit sync has only page contents
   to flush — no metadata.  The cost is a zero tail: a crash leaves
   the last segment preallocated beyond its logical end, which WAL
   recovery recognizes (an all-zeros tail after the last decodable
   record is torn residue, never acked history) and trims via its
   usual torn-tail rewrite.  Rotated segments are truncated to their
   exact length on close, so only the active segment ever carries the
   tail. *)

type mapping = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external msync : mapping -> int -> unit = "ml_store_msync"

external blit_to_map : string -> int -> mapping -> int -> int -> unit
  = "ml_store_blit"

let map_fd fd size : mapping =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| size |])

let mmap ~dir ?(prealloc = 64 * 1024) () =
  if prealloc <= 0 then invalid_arg "Store.mmap: prealloc <= 0";
  let base = fs ~dir in
  let path name = Filename.concat dir name in
  (* Atomic publish through the map: exact-size tmp, blit, msync,
     fsync (size), rename. *)
  let s_write name contents =
    let len = String.length contents in
    let tmp = path (name ^ ".tmp") in
    let fd =
      Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        if len > 0 then begin
          Unix.ftruncate fd len;
          let m = map_fd fd len in
          blit_to_map contents 0 m 0 len;
          msync m len
        end;
        Unix.fsync fd);
    Unix.rename tmp (path name)
  in
  let s_append name =
    let fd =
      Unix.openfile (path name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    in
    let len = ref (Unix.fstat fd).Unix.st_size in
    let cap = ref !len in
    let m = ref None in
    let closed = ref false in
    let grow need =
      let target = ref (max prealloc !cap) in
      while !target < need do
        target := !target * 2
      done;
      (* Size first, durably: after this, commits only ever need page
         contents flushed. *)
      Unix.ftruncate fd !target;
      Unix.fsync fd;
      cap := !target;
      m := Some (map_fd fd !cap)
    in
    {
      w_append =
        (fun s ->
          let n = String.length s in
          if n > 0 then begin
            if !len + n > !cap || !m = None then grow (!len + n);
            (match !m with
            | Some map -> blit_to_map s 0 map !len n
            | None -> assert false);
            len := !len + n
          end);
      w_sync =
        (fun () -> match !m with Some map -> msync map !cap | None -> ());
      w_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            (match !m with Some map -> msync map !cap | None -> ());
            m := None;
            (* Rotated segments become exact-size: no zero tail to
               recognize on later scans. *)
            (try
               Unix.ftruncate fd !len;
               Unix.fsync fd
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
    }
  in
  { base with s_label = "mmap:" ^ dir; s_write; s_append }

module Mem = struct
  (* One buffer per file plus a synced watermark: w_append grows the
     buffer, w_sync advances the watermark, crash truncates back to
     it.  That IS the contract a journaled filesystem gives an
     appender, minus nondeterminism. *)
  type mfile = { buf : Buffer.t; mutable synced : int }

  type handle = {
    files : (string, mfile) Hashtbl.t;
    mu : Mutex.t;
    mutable n_syncs : int;
  }

  let create ?(label = "mem") () =
    let h = { files = Hashtbl.create 16; mu = Mutex.create (); n_syncs = 0 } in
    let locked f =
      Mutex.lock h.mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock h.mu) f
    in
    let find_or_create name =
      match Hashtbl.find_opt h.files name with
      | Some f -> f
      | None ->
          let f = { buf = Buffer.create 256; synced = 0 } in
          Hashtbl.replace h.files name f;
          f
    in
    let t =
      {
        s_label = label;
        s_list =
          (fun () ->
            locked (fun () ->
                Hashtbl.fold (fun k _ acc -> k :: acc) h.files []
                |> List.filter (fun f -> not (Filename.check_suffix f ".tmp"))
                |> List.sort compare));
        s_read =
          (fun name ->
            locked (fun () ->
                match Hashtbl.find_opt h.files name with
                | Some f -> Buffer.contents f.buf
                | None -> raise (Sys_error (name ^ ": no such file"))));
        s_source =
          (fun name ->
            locked (fun () ->
                match Hashtbl.find_opt h.files name with
                | Some f -> string_reader (Buffer.contents f.buf)
                | None -> raise (Sys_error (name ^ ": no such file"))));
        s_write =
          (fun name contents ->
            locked (fun () ->
                (* Atomic publish: replace the entry wholesale, fully
                   synced.  A writer opened on the old entry keeps its
                   orphaned buffer — same as holding an fd to a
                   renamed-over inode. *)
                let f =
                  {
                    buf = Buffer.create (String.length contents);
                    synced = String.length contents;
                  }
                in
                Buffer.add_string f.buf contents;
                Hashtbl.replace h.files name f));
        s_append =
          (fun name ->
            let f = locked (fun () -> find_or_create name) in
            {
              w_append =
                (fun s -> locked (fun () -> Buffer.add_string f.buf s));
              w_sync =
                (fun () ->
                  locked (fun () ->
                      f.synced <- Buffer.length f.buf;
                      h.n_syncs <- h.n_syncs + 1));
              w_close = (fun () -> ());
            });
        s_delete = (fun name -> locked (fun () -> Hashtbl.remove h.files name));
      }
    in
    (t, h)

  let crash h =
    Mutex.lock h.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock h.mu)
      (fun () ->
        Hashtbl.iter (fun _ f -> Buffer.truncate f.buf f.synced) h.files)

  let with_file h name f =
    Mutex.lock h.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock h.mu)
      (fun () ->
        match Hashtbl.find_opt h.files name with
        | Some m -> f m
        | None -> raise (Sys_error (name ^ ": no such file")))

  let synced_bytes h name = with_file h name (fun f -> f.synced)

  let pending_bytes h name =
    with_file h name (fun f -> Buffer.length f.buf - f.synced)

  let syncs h =
    Mutex.lock h.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock h.mu)
      (fun () -> h.n_syncs)
end
