(* The durable primary: Shard service + per-shard WAL, glued by the
   ack hook.  The hook closes over [logging] so bootstrap replay —
   which pushes recovered mutations through the normal shard path —
   never re-appends what it just read from disk. *)

module Codec = Service.Codec
module Shard = Service.Shard

type t = {
  svc : Shard.t;
  store : Store.t;
  wals : Wal.t array;
  alive : bool Atomic.t;
  logging : bool Atomic.t;
}

type boot = {
  b_recovery : Wal.recovery array;
  b_snap_bindings : int array;
  b_replayed : int array;
}

(* Recovered mutations re-enter through the data path (same hashing,
   same shard, same map discipline).  Any reply outside the expected
   set means the replayed history is inconsistent — fail loudly. *)
let apply_mutation svc m =
  let req =
    match m with
    | Codec.Set { key; value } -> Codec.Put { key; value }
    | Codec.Unset key -> Codec.Del key
  in
  match Shard.call svc ~tid:0 req with
  | Codec.Created | Codec.Updated | Codec.Deleted | Codec.Not_found -> ()
  | r ->
      failwith
        (Printf.sprintf "replica: replay of %s answered %s"
           (Codec.mutation_to_string m)
           (Codec.reply_to_string r))

let create ~structure ~scheme (cfg : Shard.config) ~store ?segment_bytes () =
  let opened =
    Array.init cfg.Shard.shards (fun i ->
        Wal.open_ ~store ~shard:i ?segment_bytes ())
  in
  let wals = Array.map fst opened in
  let logging = Atomic.make false in
  let hook =
    {
      Shard.h_mutation =
        (fun ~shard m ->
          if Atomic.get logging then ignore (Wal.append wals.(shard) m));
      h_commit =
        (fun ~shard -> if Atomic.get logging then Wal.commit wals.(shard));
    }
  in
  let svc = Shard.create ~structure ~scheme { cfg with Shard.hook } in
  let b_snap = Array.make cfg.Shard.shards 0 in
  let b_rep = Array.make cfg.Shard.shards 0 in
  Array.iteri
    (fun i wal ->
      let snap_seq =
        match Snapshot.load_latest ~store ~shard:i with
        | None -> 0
        | Some (bindings, seq, _) ->
            List.iter
              (fun (key, value) -> apply_mutation svc (Codec.Set { key; value }))
              bindings;
            b_snap.(i) <- List.length bindings;
            seq
      in
      match Wal.read_from wal ~from:snap_seq ~max:max_int with
      | `Batch (records, _) ->
          List.iter (fun (_, m) -> apply_mutation svc m) records;
          b_rep.(i) <- List.length records
      | `Too_old base ->
          failwith
            (Printf.sprintf
               "replica: shard %d wal starts after seq %d but its newest \
                snapshot covers only up to %d"
               i base snap_seq))
    wals;
  Atomic.set logging true;
  ( { svc; store; wals; alive = Atomic.make true; logging },
    { b_recovery = Array.map snd opened; b_snap_bindings = b_snap; b_replayed = b_rep } )

let committed t = Array.map Wal.committed_seq t.wals

let handle t req =
  match req with
  | Codec.Rep_info -> Some (Codec.Rep_state (committed t))
  | Codec.Rep_pull { shard; from; max } ->
      if shard < 0 || shard >= Array.length t.wals then
        Some (Codec.Error (Printf.sprintf "rep: no such shard %d" shard))
      else begin
        let cap =
          min (if max <= 0 then Codec.rep_batch_max else max) Codec.rep_batch_max
        in
        match Wal.read_from t.wals.(shard) ~from ~max:cap with
        | `Batch (records, last) -> Some (Codec.Rep_batch { last; records })
        | `Too_old base ->
            Some
              (Codec.Error
                 (Printf.sprintf
                    "rep: shard %d wal truncated (base %d > requested %d); \
                     re-bootstrap from snapshot"
                    shard base from))
      end
  | _ -> None

let snapshot_shard t ~shard ?(gate = fun _ -> ()) ?(truncate = true) () =
  (* Stamp BEFORE the traversal: everything <= seq is already in the
     map (commit publishes after apply), and everything the fuzzy fold
     may or may not see is > seq and gets replayed as an absolute
     write. *)
  let seq = Wal.committed_seq t.wals.(shard) in
  let bindings = t.svc.Shard.snapshot ~shard ~gate in
  let file = Snapshot.write ~store:t.store ~shard ~seq bindings in
  if truncate then begin
    Wal.truncate_upto t.wals.(shard) ~seq;
    ignore (Snapshot.delete_older ~store:t.store ~shard ~keep_seq:seq)
  end;
  (file, seq)

let sweep t ~shard = t.svc.Shard.snapshot ~shard ~gate:(fun _ -> ())
let arm_torn_commit t ~shard = Wal.arm_torn_commit t.wals.(shard)

let kill t =
  if Atomic.compare_and_set t.alive true false then
    for i = 0 to t.svc.Shard.nshards - 1 do
      if t.svc.Shard.consumer_alive i then t.svc.Shard.crash ~shard:i
    done

let alive t = Atomic.get t.alive
let fsync_hist t ~shard = Wal.fsync_hist t.wals.(shard)

let gauges t =
  let acc = ref [] in
  Array.iteri
    (fun i w ->
      List.iter
        (fun (k, v) -> acc := (Printf.sprintf "rep_shard%d_%s" i k, v) :: !acc)
        (Wal.gauges w))
    t.wals;
  ("rep_primary_alive", if Atomic.get t.alive then 1 else 0) :: List.rev !acc

let stop t =
  Atomic.set t.alive false;
  t.svc.Shard.stop ();
  Array.iter Wal.close t.wals
