(* The durable primary: Shard service + per-shard WAL, glued by the
   ack hook.  The hook closes over [logging] so bootstrap replay —
   which pushes recovered mutations through the normal shard path —
   never re-appends what it just read from disk.

   Incremental snapshots ride the same hook: every applied mutation
   records its key in the shard's dirty set (a [Dirty.t] held in an
   Atomic cell), and [snapshot_shard] in delta mode visits only that
   set.  During bootstrap the cell holds [Dirty.none] while the chain
   bindings apply — they are base state, already covered by the chain
   on disk, and recording them would make the first post-boot delta
   re-ship the whole base (or instantly poison the set).  Tracking
   flips on just before WAL replay: replayed seqs sit above the chain
   tip, so their keys belong in the next delta exactly like live
   traffic's.

   Why the stamp -> swap -> seal -> traverse order is sound (the
   whole delta correctness argument):

     - the consumer applies a mutation to the map BEFORE its
       h_mutation fires, so by the time a key is visible in a dirty
       set its value is in the map;
     - a mutation committed at or below the stamp had its dirty add
       complete before the stamp read (add precedes commit in program
       order, and the stamp read saw the commit), hence before the
       swap: its key is in the OLD set — this delta ships it;
     - an add that lands in the old set after the swap (it raced)
       completes before the seal or is retried into the fresh set;
       either way the traversal starts after the seal, so every key
       in the old set is read AFTER its recorded mutation applied;
     - an add that lands in the fresh set belongs to a mutation whose
       commit follows the swap, i.e. seq > stamp: the WAL keeps its
       record (truncation stops at the stamp) and the next delta
       covers its key.

   So chain + WAL replay from the chain tip reconstructs exactly the
   acked history, same as full snapshots. *)

module Codec = Service.Codec
module Shard = Service.Shard

type tap = shard:int -> Codec.mutation -> unit

let no_tap : tap = fun ~shard:_ _ -> ()

(* Per-shard snapshot-chain bookkeeping, guarded by the shard's
   snapshot mutex. *)
type snap_meta = {
  mutable m_base : int option;  (* newest base's stamp *)
  mutable m_last : int;  (* chain tip stamp *)
  mutable m_deltas : int;  (* links since the base *)
  mutable m_file : string;  (* newest chain file *)
}

type t = {
  svc : Shard.t;
  store : Store.t;
  wals : Wal.t array;
  alive : bool Atomic.t;
  logging : bool Atomic.t;
  dirty : Dirty.t Atomic.t array;
  dirty_cap : int;
  (* Per-shard adaptive capacity for the NEXT dirty set, re-derived at
     every snapshot from the set just swapped out (see
     [next_dirty_cap]).  Starts at [dirty_cap] everywhere. *)
  dirty_caps : int array;
  compact_every : int;
  snap_mu : Mutex.t array;
  snap_meta : snap_meta array;
  tap : tap Atomic.t;
}

type boot = {
  b_recovery : Wal.recovery array;
  b_snap_bindings : int array;
  b_replayed : int array;
}

(* Retry loop of the seal handoff: [false] from [Dirty.add] means the
   set was sealed under us — re-read the cell (now holding the fresh
   set) and record there. *)
let rec record_dirty cell ~key =
  if not (Dirty.add (Atomic.get cell) ~key) then record_dirty cell ~key

(* Adaptive dirty-set sizing.  A [Dirty.t] poisons past half
   occupancy, and a poisoned set forces the next snapshot full — so a
   cap sized for the average write rate turns every burst into a full
   traversal.  Each snapshot therefore re-derives the next set's
   capacity from the one it just swapped out: overflowed, or more
   than a quarter full (i.e. past half the poison threshold), double;
   under 1/16th occupancy, halve — clamped to [16, 2^20].  One spike
   stops poisoning after a single cycle per doubling step, and a
   quiet shard decays back instead of paying a large probe table
   forever. *)
let min_dirty_cap = 16
let max_dirty_cap = 1 lsl 20

let next_dirty_cap t ~shard cur =
  let cap = t.dirty_caps.(shard) in
  let cap' =
    if Dirty.is_none cur then cap
    else if Dirty.overflowed cur then min (cap * 2) max_dirty_cap
    else begin
      let n = Dirty.count cur in
      if n * 4 > cap then min (cap * 2) max_dirty_cap
      else if n * 16 < cap then max (cap / 2) min_dirty_cap
      else cap
    end
  in
  t.dirty_caps.(shard) <- cap';
  cap'

(* Recovered mutations re-enter through the data path (same hashing,
   same shard, same map discipline).  Any reply outside the expected
   set means the replayed history is inconsistent — fail loudly. *)
let apply_mutation svc m =
  let req =
    match m with
    | Codec.Set { key; value } -> Codec.Put { key; value }
    | Codec.Unset key -> Codec.Del key
  in
  match Shard.call svc ~tid:0 req with
  | Codec.Created | Codec.Updated | Codec.Deleted | Codec.Not_found -> ()
  | r ->
      failwith
        (Printf.sprintf "replica: replay of %s answered %s"
           (Codec.mutation_to_string m)
           (Codec.reply_to_string r))

let create ~structure ~scheme (cfg : Shard.config) ~store ?segment_bytes
    ?(delta = false) ?(dirty_cap = 1 lsl 14) ?(compact_every = 8) () =
  let opened =
    Array.init cfg.Shard.shards (fun i ->
        Wal.open_ ~store ~shard:i ?segment_bytes ())
  in
  let wals = Array.map fst opened in
  let logging = Atomic.make false in
  (* Cells start at [Dirty.none] so chain bootstrap below applies base
     bindings without recording them; each shard's cell goes live
     right before its WAL replay. *)
  let dirty =
    Array.init cfg.Shard.shards (fun _ -> Atomic.make Dirty.none)
  in
  let tap = Atomic.make no_tap in
  let hook =
    {
      Shard.h_mutation =
        (fun ~shard m ->
          if Atomic.get logging then ignore (Wal.append wals.(shard) m);
          (let d = dirty.(shard) in
           if not (Dirty.is_none (Atomic.get d)) then
             let key =
               match m with Codec.Set { key; _ } -> key | Codec.Unset key -> key
             in
             record_dirty d ~key);
          let tp = Atomic.get tap in
          if tp != no_tap then tp ~shard m);
      h_commit =
        (fun ~shard -> if Atomic.get logging then Wal.commit wals.(shard));
    }
  in
  let svc = Shard.create ~structure ~scheme { cfg with Shard.hook } in
  let b_snap = Array.make cfg.Shard.shards 0 in
  let b_rep = Array.make cfg.Shard.shards 0 in
  let meta =
    Array.init cfg.Shard.shards (fun _ ->
        { m_base = None; m_last = 0; m_deltas = 0; m_file = "" })
  in
  Array.iteri
    (fun i wal ->
      let snap_seq =
        match Snapshot.load_chain ~store ~shard:i with
        | None -> 0
        | Some c ->
            List.iter
              (fun (key, value) -> apply_mutation svc (Codec.Set { key; value }))
              c.Snapshot.c_bindings;
            b_snap.(i) <- List.length c.Snapshot.c_bindings;
            meta.(i).m_base <- Some c.Snapshot.c_base_seq;
            meta.(i).m_last <- c.Snapshot.c_seq;
            meta.(i).m_deltas <- c.Snapshot.c_deltas;
            (match List.rev c.Snapshot.c_files with
            | f :: _ -> meta.(i).m_file <- f
            | [] -> ());
            c.Snapshot.c_seq
      in
      if delta then Atomic.set dirty.(i) (Dirty.create ~cap:dirty_cap);
      match Wal.read_from wal ~from:snap_seq ~max:max_int with
      | `Batch (records, _) ->
          List.iter (fun (_, m) -> apply_mutation svc m) records;
          b_rep.(i) <- List.length records
      | `Too_old base ->
          failwith
            (Printf.sprintf
               "replica: shard %d wal starts after seq %d but its newest \
                snapshot covers only up to %d"
               i base snap_seq))
    wals;
  Atomic.set logging true;
  ( {
      svc;
      store;
      wals;
      alive = Atomic.make true;
      logging;
      dirty;
      dirty_cap;
      dirty_caps = Array.make cfg.Shard.shards dirty_cap;
      compact_every;
      snap_mu = Array.init cfg.Shard.shards (fun _ -> Mutex.create ());
      snap_meta = meta;
      tap;
    },
    {
      b_recovery = Array.map snd opened;
      b_snap_bindings = b_snap;
      b_replayed = b_rep;
    } )

let set_tap t f = Atomic.set t.tap f
let committed t = Array.map Wal.committed_seq t.wals

let handle t req =
  match req with
  | Codec.Rep_info -> Some (Codec.Rep_state (committed t))
  | Codec.Rep_pull { shard; from; max } ->
      if shard < 0 || shard >= Array.length t.wals then
        Some (Codec.Error (Printf.sprintf "rep: no such shard %d" shard))
      else begin
        let cap =
          min (if max <= 0 then Codec.rep_batch_max else max) Codec.rep_batch_max
        in
        match Wal.read_from t.wals.(shard) ~from ~max:cap with
        | `Batch (records, last) -> Some (Codec.Rep_batch { last; records })
        | `Too_old base ->
            Some
              (Codec.Error
                 (Printf.sprintf
                    "rep: shard %d wal truncated (base %d > requested %d); \
                     re-bootstrap from snapshot"
                    shard base from))
      end
  | _ -> None

let snapshot_shard t ~shard ?(gate = fun _ -> ()) ?(truncate = true)
    ?(mode = `Auto) () =
  Mutex.lock t.snap_mu.(shard);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.snap_mu.(shard)) @@ fun () ->
  let meta = t.snap_meta.(shard) in
  let cell = t.dirty.(shard) in
  let cur = Atomic.get cell in
  (* Stamp BEFORE the swap: everything <= seq is already in the map
     (commit publishes after apply) and already in the current dirty
     set (add precedes commit), so a delta over the swapped-out set
     plus WAL replay from [seq] covers exactly the acked history. *)
  let seq = Wal.committed_seq t.wals.(shard) in
  let can_delta =
    (not (Dirty.is_none cur)) && meta.m_base <> None
    && not (Dirty.overflowed cur)
  in
  let do_delta =
    match mode with
    | `Full -> false
    | `Delta -> can_delta
    | `Auto -> can_delta && meta.m_deltas < t.compact_every
  in
  if do_delta && seq = meta.m_last then
    (* Nothing committed since the chain tip: the chain already covers
       everything, republishing would only add an empty link. *)
    (meta.m_file, meta.m_last)
  else if do_delta then begin
    let fresh = Dirty.create ~cap:(next_dirty_cap t ~shard cur) in
    let old = Atomic.exchange cell fresh in
    Dirty.seal old;
    (try
       let keys = List.sort_uniq compare (Dirty.elements old) in
       let entries = t.svc.Shard.snapshot_keys ~shard ~keys ~gate in
       let file =
         Snapshot.write_delta ~store:t.store ~shard ~from:meta.m_last ~seq
           entries
       in
       meta.m_last <- seq;
       meta.m_deltas <- meta.m_deltas + 1;
       meta.m_file <- file
     with e ->
       (* The delta never published: its write set must survive for
          the next attempt.  Merge the sealed set back into whatever
          the cell holds now (writers may already populate it). *)
       Dirty.iter old (fun key -> record_dirty cell ~key);
       if Dirty.overflowed old then Dirty.poison (Atomic.get cell);
       raise e);
    if truncate then Wal.truncate_upto t.wals.(shard) ~seq;
    (meta.m_file, seq)
  end
  else begin
    (* Full path.  Swap a fresh set in and seal the old one anyway —
       racing adds must be redirected to the fresh set.  The old set
       only becomes discardable once the base PUBLISHES: until then
       its keys are the sole record of what the chain is missing, so
       a failed traversal (Shard.snapshot raises when it overlaps a
       sweep) or store write must merge them back, exactly like the
       delta path — otherwise the next delta would silently omit
       them. *)
    let old =
      if Dirty.is_none cur then Dirty.none
      else begin
        let o =
          Atomic.exchange cell (Dirty.create ~cap:(next_dirty_cap t ~shard cur))
        in
        Dirty.seal o;
        o
      end
    in
    (try
       let bindings = t.svc.Shard.snapshot ~shard ~gate in
       let file = Snapshot.write ~store:t.store ~shard ~seq bindings in
       meta.m_base <- Some seq;
       meta.m_last <- seq;
       meta.m_deltas <- 0;
       meta.m_file <- file
     with e ->
       if not (Dirty.is_none old) then begin
         Dirty.iter old (fun key -> record_dirty cell ~key);
         if Dirty.overflowed old then Dirty.poison (Atomic.get cell)
       end;
       raise e);
    if truncate then begin
      Wal.truncate_upto t.wals.(shard) ~seq;
      ignore (Snapshot.delete_older ~store:t.store ~shard ~keep_seq:seq)
    end;
    (meta.m_file, seq)
  end

let sweep t ~shard = t.svc.Shard.snapshot ~shard ~gate:(fun _ -> ())
let arm_torn_commit t ~shard = Wal.arm_torn_commit t.wals.(shard)

let kill t =
  if Atomic.compare_and_set t.alive true false then
    for i = 0 to t.svc.Shard.nshards - 1 do
      if t.svc.Shard.consumer_alive i then t.svc.Shard.crash ~shard:i
    done

let alive t = Atomic.get t.alive
let fsync_hist t ~shard = Wal.fsync_hist t.wals.(shard)

let gauges t =
  let acc = ref [] in
  Array.iteri
    (fun i w ->
      List.iter
        (fun (k, v) -> acc := (Printf.sprintf "rep_shard%d_%s" i k, v) :: !acc)
        (Wal.gauges w);
      let d = Atomic.get t.dirty.(i) in
      if not (Dirty.is_none d) then begin
        acc := (Printf.sprintf "rep_shard%d_dirty_keys" i, Dirty.count d) :: !acc;
        acc :=
          ( Printf.sprintf "rep_shard%d_dirty_overflow" i,
            if Dirty.overflowed d then 1 else 0 )
          :: !acc;
        acc :=
          (Printf.sprintf "rep_shard%d_snap_deltas" i, t.snap_meta.(i).m_deltas)
          :: !acc;
        acc :=
          (Printf.sprintf "rep_shard%d_dirty_cap" i, t.dirty_caps.(i)) :: !acc
      end)
    t.wals;
  ("rep_primary_alive", if Atomic.get t.alive then 1 else 0) :: List.rev !acc

let stop t =
  Atomic.set t.alive false;
  t.svc.Shard.stop ();
  Array.iter Wal.close t.wals
