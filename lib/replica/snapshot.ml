(* Snapshot files: one header frame + N kv frames, all CRC-protected,
   published atomically via the store's temp+rename write.  Atomic
   publication is why the loader is strict: a torn or damaged
   snapshot cannot be crash residue, so it is always a loud error —
   the WAL's truncate-the-tail leniency does NOT apply here. *)

module Codec = Service.Codec

exception Corrupt of { file : string; reason : string }

let snap_name ~shard ~seq = Printf.sprintf "snap-%d-%012d.snap" shard seq

let parse_snap ~shard name =
  let prefix = Printf.sprintf "snap-%d-" shard in
  let plen = String.length prefix in
  if
    String.length name > plen + 5
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name plen (String.length name - plen - 5))
  else None

let write ~(store : Store.t) ~shard ~seq bindings =
  let buf = Buffer.create (64 + (32 * List.length bindings)) in
  Codec.encode_snap_head buf ~seq ~count:(List.length bindings);
  List.iter (fun (key, value) -> Codec.encode_snap_kv buf ~key ~value) bindings;
  let name = snap_name ~shard ~seq in
  store.Store.s_write name (Buffer.contents buf);
  name

let load ~(store : Store.t) file =
  let corrupt reason = raise (Corrupt { file; reason }) in
  let data = store.Store.s_read file in
  let frames, torn =
    match
      Codec.fold_frames (Codec.string_source data) (fun acc p -> p :: acc) []
    with
    | rev, torn -> (List.rev rev, torn)
    | exception Codec.Malformed m -> corrupt m
  in
  (match torn with
  | None -> ()
  | Some got ->
      corrupt
        (Printf.sprintf
           "torn tail (%d bytes) in an atomically-published snapshot" got));
  match frames with
  | [] -> corrupt "empty snapshot"
  | head :: kvs ->
      let seq, count =
        try Codec.decode_snap_head head
        with Codec.Malformed m -> corrupt m
      in
      if List.length kvs <> count then
        corrupt
          (Printf.sprintf "header says %d bindings, file carries %d" count
             (List.length kvs));
      let bindings =
        List.map
          (fun p ->
            try Codec.decode_snap_kv p with Codec.Malformed m -> corrupt m)
          kvs
      in
      (bindings, seq)

let load_latest ~store ~shard =
  let snaps =
    List.filter_map
      (fun n ->
        match parse_snap ~shard n with Some s -> Some (n, s) | None -> None)
      (store.Store.s_list ())
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  match snaps with
  | [] -> None
  | (file, name_seq) :: _ ->
      let bindings, seq = load ~store file in
      if seq <> name_seq then
        raise
          (Corrupt
             {
               file;
               reason =
                 Printf.sprintf "file name says seq %d, header says %d"
                   name_seq seq;
             });
      Some (bindings, seq, file)

let delete_older ~(store : Store.t) ~shard ~keep_seq =
  let victims =
    List.filter_map
      (fun n ->
        match parse_snap ~shard n with
        | Some s when s < keep_seq -> Some n
        | _ -> None)
      (store.Store.s_list ())
  in
  List.iter store.Store.s_delete victims;
  List.length victims
