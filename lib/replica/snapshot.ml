(* Snapshot files: one header frame + N body frames, all CRC-protected,
   published atomically via the store's temp+rename write.  Atomic
   publication is why the loader is strict: a torn or damaged
   snapshot cannot be crash residue, so it is always a loud error —
   the WAL's truncate-the-tail leniency does NOT apply here.

   Two file kinds form a chain:

     snap-<shard>-<seq>.snap           full base: every binding
     delta-<shard>-<from>-<seq>.snap   delta link: the bindings and
                                       tombstones of keys mutated in
                                       (from, seq]

   A delta's [from] must equal the stamp of the snapshot it extends,
   so the chain loader can verify continuity: base at B, then deltas
   B->s1, s1->s2, ... with no gap and no fork.  A gap or fork is a
   loud Corrupt, never a silent skip — a skipped delta would silently
   resurrect deleted keys and lose writes.  Deltas at or below the
   newest base are compaction-crash residue (the base that superseded
   them published, the cleanup pass died) and are ignored. *)

module Codec = Service.Codec

exception Corrupt of { file : string; reason : string }

let snap_name ~shard ~seq = Printf.sprintf "snap-%d-%012d.snap" shard seq

let delta_name ~shard ~from ~seq =
  Printf.sprintf "delta-%d-%012d-%012d.snap" shard from seq

let parse_snap ~shard name =
  let prefix = Printf.sprintf "snap-%d-" shard in
  let plen = String.length prefix in
  if
    String.length name > plen + 5
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name plen (String.length name - plen - 5))
  else None

(* [delta-<shard>-<from>-<seq>.snap] -> (from, seq). *)
let parse_delta ~shard name =
  let prefix = Printf.sprintf "delta-%d-" shard in
  let plen = String.length prefix in
  if
    String.length name > plen + 5
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ".snap"
  then
    match
      String.split_on_char '-'
        (String.sub name plen (String.length name - plen - 5))
    with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some from, Some seq -> Some (from, seq)
        | _ -> None)
    | _ -> None
  else None

let write ~(store : Store.t) ~shard ~seq bindings =
  let buf = Buffer.create (64 + (32 * List.length bindings)) in
  Codec.encode_snap_head buf ~seq ~count:(List.length bindings);
  List.iter (fun (key, value) -> Codec.encode_snap_kv buf ~key ~value) bindings;
  let name = snap_name ~shard ~seq in
  store.Store.s_write name (Buffer.contents buf);
  name

let write_delta ~(store : Store.t) ~shard ~from ~seq entries =
  let sets =
    List.length (List.filter (fun (_, v) -> v <> None) entries)
  in
  let tombs = List.length entries - sets in
  let buf = Buffer.create (64 + (32 * List.length entries)) in
  Codec.encode_snap_delta_head buf ~from ~seq ~sets ~tombs;
  List.iter
    (fun (key, v) ->
      match v with Some value -> Codec.encode_snap_kv buf ~key ~value | None -> ())
    entries;
  List.iter
    (fun (key, v) -> if v = None then Codec.encode_snap_tomb buf ~key)
    entries;
  let name = delta_name ~shard ~from ~seq in
  store.Store.s_write name (Buffer.contents buf);
  name

let corrupt_file file reason = raise (Corrupt { file; reason })

(* Streaming strict loader scaffolding: a frame_reader over the
   store's pull source, so loading costs one payload allocation per
   frame — the file is never materialized as a string. *)
let with_frames ~(store : Store.t) file k =
  let corrupt reason = corrupt_file file reason in
  let read, close = store.Store.s_source file in
  Fun.protect ~finally:close @@ fun () ->
  let r = Codec.frame_reader read in
  let next what =
    match Codec.next_frame r with
    | Codec.Frame p -> p
    | Codec.Eof -> corrupt (Printf.sprintf "truncated: missing %s" what)
    | Codec.Torn { got } ->
        corrupt
          (Printf.sprintf
             "torn %s (%d bytes) in an atomically-published snapshot" what got)
    | exception Codec.Malformed m -> corrupt m
  in
  let finish () =
    match Codec.next_frame r with
    | Codec.Eof -> ()
    | Codec.Frame _ -> corrupt "trailing frames past the declared counts"
    | Codec.Torn { got } ->
        corrupt
          (Printf.sprintf
             "torn tail (%d bytes) in an atomically-published snapshot" got)
    | exception Codec.Malformed m -> corrupt m
  in
  k next finish

let load ~(store : Store.t) file =
  with_frames ~store file @@ fun next finish ->
  let seq, count =
    try Codec.decode_snap_head (next "header")
    with Codec.Malformed m -> corrupt_file file m
  in
  let bindings = ref [] in
  for _ = 1 to count do
    let p = next "binding" in
    bindings :=
      (try Codec.decode_snap_kv p with Codec.Malformed m -> corrupt_file file m)
      :: !bindings
  done;
  finish ();
  (List.rev !bindings, seq)

(* A delta file's contents: [(key, Some v)] sets then [(key, None)]
   tombstones, plus the chain link from its header. *)
let load_delta ~(store : Store.t) file =
  with_frames ~store file @@ fun next finish ->
  let from, seq, sets, tombs =
    try Codec.decode_snap_delta_head (next "header")
    with Codec.Malformed m -> corrupt_file file m
  in
  let entries = ref [] in
  for _ = 1 to sets do
    let p = next "binding" in
    let k, v =
      try Codec.decode_snap_kv p with Codec.Malformed m -> corrupt_file file m
    in
    entries := (k, Some v) :: !entries
  done;
  for _ = 1 to tombs do
    let p = next "tombstone" in
    let k =
      try Codec.decode_snap_tomb p with Codec.Malformed m -> corrupt_file file m
    in
    entries := (k, None) :: !entries
  done;
  finish ();
  (List.rev !entries, from, seq)

let load_latest ~store ~shard =
  let snaps =
    List.filter_map
      (fun n ->
        match parse_snap ~shard n with Some s -> Some (n, s) | None -> None)
      (store.Store.s_list ())
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  match snaps with
  | [] -> None
  | (file, name_seq) :: _ ->
      let bindings, seq = load ~store file in
      if seq <> name_seq then
        raise
          (Corrupt
             {
               file;
               reason =
                 Printf.sprintf "file name says seq %d, header says %d"
                   name_seq seq;
             });
      Some (bindings, seq, file)

type chain = {
  c_bindings : (int * int) list;
  c_seq : int;
  c_base_seq : int;
  c_deltas : int;
  c_files : string list;
}

let load_chain ~(store : Store.t) ~shard =
  let files = store.Store.s_list () in
  let deltas =
    List.filter_map
      (fun n ->
        match parse_delta ~shard n with
        | Some (f, s) -> Some (n, f, s)
        | None -> None)
      files
  in
  match
    List.filter_map
      (fun n ->
        match parse_snap ~shard n with Some s -> Some (n, s) | None -> None)
      files
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  with
  | [] ->
      (match deltas with
      | (file, _, _) :: _ ->
          raise
            (Corrupt { file; reason = "delta chain with no base snapshot" })
      | [] -> ());
      None
  | (bfile, bseq) :: _ ->
      let bindings, seq = load ~store bfile in
      if seq <> bseq then
        raise
          (Corrupt
             {
               file = bfile;
               reason =
                 Printf.sprintf "file name says seq %d, header says %d" bseq
                   seq;
             });
      let tbl = Hashtbl.create (max 64 (List.length bindings)) in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
      (* Deltas at or below the base are residue of a compaction that
         published its base but died before cleanup: ignore.  Everything
         newer must chain exactly. *)
      let chain =
        List.filter (fun (_, _, dseq) -> dseq > bseq) deltas
        |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
      in
      let cur = ref bseq in
      let count = ref 0 in
      let cfiles = ref [ bfile ] in
      List.iter
        (fun (file, from, dseq) ->
          if from <> !cur then
            raise
              (Corrupt
                 {
                   file;
                   reason =
                     Printf.sprintf
                       "delta chains from seq %d but the chain tip is %d \
                        (missing delta or stamp gap)"
                       from !cur;
                 });
          let entries, hfrom, hseq = load_delta ~store file in
          if hfrom <> from || hseq <> dseq then
            raise
              (Corrupt
                 {
                   file;
                   reason =
                     Printf.sprintf
                       "file name says %d->%d, header says %d->%d" from dseq
                       hfrom hseq;
                 });
          List.iter
            (fun (k, v) ->
              match v with
              | Some value -> Hashtbl.replace tbl k value
              | None -> Hashtbl.remove tbl k)
            entries;
          cur := dseq;
          incr count;
          cfiles := file :: !cfiles)
        chain;
      let merged =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort compare
      in
      Some
        {
          c_bindings = merged;
          c_seq = !cur;
          c_base_seq = bseq;
          c_deltas = !count;
          c_files = List.rev !cfiles;
        }

let delete_older ~(store : Store.t) ~shard ~keep_seq =
  let victims =
    List.filter
      (fun n ->
        match parse_snap ~shard n with
        | Some s -> s < keep_seq
        | None -> (
            (* A delta whose tip is <= keep_seq is wholly covered by
               the kept base; one chaining past keep_seq stays. *)
            match parse_delta ~shard n with
            | Some (_, dseq) -> dseq <= keep_seq
            | None -> false))
      (store.Store.s_list ())
  in
  List.iter store.Store.s_delete victims;
  List.length victims
