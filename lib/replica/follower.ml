(* The follower replays the primary's committed record stream through
   its own shard service.  Mutations are absolute, so applying them in
   seq order (continuity-checked) converges the follower's maps to the
   primary's no matter where bootstrap left off. *)

module Codec = Service.Codec
module Shard = Service.Shard

type pull = shard:int -> from:int -> max:int -> Codec.reply

type t = {
  svc : Shard.t;
  pull : pull;
  applied : int Atomic.t array;
  lag_ : int Atomic.t array;
  hist : Obs.Hist.t;
  pulls : int Atomic.t;
}

type boot = {
  b_snap_bindings : int array;
  b_replayed : int array;
  b_torn_bytes : int array;
}

let apply_mutation svc m =
  let req =
    match m with
    | Codec.Set { key; value } -> Codec.Put { key; value }
    | Codec.Unset key -> Codec.Del key
  in
  match Shard.call svc ~tid:0 req with
  | Codec.Created | Codec.Updated | Codec.Deleted | Codec.Not_found -> ()
  | r ->
      failwith
        (Printf.sprintf "replica: follower apply of %s answered %s"
           (Codec.mutation_to_string m)
           (Codec.reply_to_string r))

let create ~structure ~scheme (cfg : Shard.config) ~pull ?store () =
  let svc = Shard.create ~structure ~scheme { cfg with Shard.hook = Shard.no_hook } in
  let n = cfg.Shard.shards in
  let t =
    {
      svc;
      pull;
      applied = Array.init n (fun _ -> Atomic.make 0);
      lag_ = Array.init n (fun _ -> Atomic.make 0);
      hist = Obs.Hist.create ();
      pulls = Atomic.make 0;
    }
  in
  let b_snap = Array.make n 0 in
  let b_rep = Array.make n 0 in
  let b_torn = Array.make n 0 in
  (match store with
  | None -> ()
  | Some store ->
      for shard = 0 to n - 1 do
        let snap_seq =
          (* The full chain — base plus continuity-checked deltas —
             so a follower bootstrapping off a delta-snapshotting
             primary starts from the chain tip, not the last base. *)
          match Snapshot.load_chain ~store ~shard with
          | None -> 0
          | Some c ->
              List.iter
                (fun (key, value) ->
                  apply_mutation svc (Codec.Set { key; value }))
                c.Snapshot.c_bindings;
              b_snap.(shard) <- List.length c.Snapshot.c_bindings;
              c.Snapshot.c_seq
        in
        let records, r = Wal.scan ~store ~shard in
        b_torn.(shard) <- r.Wal.r_truncated_bytes;
        let tail = List.filter (fun (seq, _) -> seq > snap_seq) records in
        (match tail with
        | (first, _) :: _ when first > snap_seq + 1 ->
            failwith
              (Printf.sprintf
                 "replica: shard %d wal starts at seq %d but its newest \
                  snapshot covers only up to %d"
                 shard first snap_seq)
        | _ -> ());
        List.iter (fun (_, m) -> apply_mutation svc m) tail;
        b_rep.(shard) <- List.length tail;
        Atomic.set t.applied.(shard) (max snap_seq r.Wal.r_last_seq)
      done);
  (t, { b_snap_bindings = b_snap; b_replayed = b_rep; b_torn_bytes = b_torn })

let apply_records t ~shard records =
  let n = ref 0 in
  List.iter
    (fun (seq, m) ->
      let cur = Atomic.get t.applied.(shard) in
      if seq <= cur then ()  (* already applied: an overlapping pull *)
      else if seq <> cur + 1 then
        failwith
          (Printf.sprintf
             "replica: shard %d stream gap: got seq %d after applied %d" shard
             seq cur)
      else begin
        apply_mutation t.svc m;
        Atomic.set t.applied.(shard) seq;
        incr n
      end)
    records;
  !n

let step t ~shard ?(max = Codec.rep_batch_max) () =
  let from = Atomic.get t.applied.(shard) in
  match t.pull ~shard ~from ~max with
  | Codec.Rep_batch { last; records } ->
      Atomic.incr t.pulls;
      let t0 = Obs.Clock.now_ns () in
      let n = apply_records t ~shard records in
      if n > 0 then Obs.Hist.add t.hist (Obs.Clock.now_ns () - t0);
      let applied = Atomic.get t.applied.(shard) in
      Atomic.set t.lag_.(shard) (if last > applied then last - applied else 0);
      if n = 0 && last <= applied then `Uptodate else `Applied n
  | Codec.Error m -> `Err m
  | r -> `Err ("unexpected pull reply " ^ Codec.reply_to_string r)

let sync ?(max_rounds = 1_000_000) t =
  let total = ref 0 in
  let rounds = ref 0 in
  let quiet = ref false in
  while not !quiet do
    incr rounds;
    if !rounds > max_rounds then
      failwith "replica: Follower.sync did not converge";
    quiet := true;
    for shard = 0 to t.svc.Shard.nshards - 1 do
      match step t ~shard () with
      | `Applied n ->
          total := !total + n;
          quiet := false
      | `Uptodate -> ()
      | `Err m -> failwith ("replica: Follower.sync: " ^ m)
    done
  done;
  !total

let apply_catchup t ~shard records =
  let applied = Atomic.get t.applied.(shard) in
  (match List.filter (fun (seq, _) -> seq > applied) records with
  | (first, _) :: _ when first > applied + 1 ->
      failwith
        (Printf.sprintf
           "replica: shard %d catch-up starts at seq %d but follower applied \
            only %d — snapshot bootstrap required"
           shard first applied)
  | _ -> ());
  let n = apply_records t ~shard records in
  Atomic.set t.lag_.(shard) 0;
  n

(* kvd's chase loop, here so its exit paths are testable: every way
   the loop can end — stop flag, primary gone, I/O failure, a pull
   error, a stream gap — RETURNS, so the caller's cleanup (report, fd
   close, [stop]) cannot be skipped by an escaping exception.  The bug
   this replaces: kvd turned [`Err] into [failwith], which matched
   neither of its handlers and flew past the cleanup, leaving the
   shard domains alive and the socket open. *)
let drive t ~running ?(poll_interval = 0.005) ?(on_progress = fun () -> ()) ()
    =
  let n = t.svc.Shard.nshards in
  let result = ref None in
  while !result = None && running () do
    try
      let idle = ref true in
      for shard = 0 to n - 1 do
        match step t ~shard () with
        | `Applied _ -> idle := false
        | `Uptodate -> ()
        | `Err m ->
            result := Some (`Pull_error m);
            raise Exit
      done;
      on_progress ();
      if !idle then Unix.sleepf poll_interval
    with
    | Exit -> ()
    | Service.Conn.Closed -> result := Some `Primary_gone
    (* A signal landing in sleepf/step is not a failure: the while
       condition re-checks [running]. *)
    | Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        result := Some (`Io_error (Unix.error_message e))
    | Failure m -> result := Some (`Pull_error m)
  done;
  match !result with None -> `Stopped | Some r -> r

let applied t = Array.map Atomic.get t.applied
let lag t = Array.map Atomic.get t.lag_
let nshards t = t.svc.Shard.nshards
let sweep t ~shard = t.svc.Shard.snapshot ~shard ~gate:(fun _ -> ())
let apply_hist t = t.hist

let gauges t =
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      acc := (Printf.sprintf "replica_applied_seq%d" i, Atomic.get a) :: !acc)
    t.applied;
  Array.iteri
    (fun i a ->
      acc := (Printf.sprintf "replica_lag_frames%d" i, Atomic.get a) :: !acc)
    t.lag_;
  ("replica_pulls", Atomic.get t.pulls)
  :: ("replica_apply_p99_ns", Obs.Hist.percentile t.hist 0.99)
  :: List.rev !acc

let stop t = t.svc.Shard.stop ()
