(** A follower: its own {!Service.Shard} service kept converged with
    the primary by pulling the committed record stream.

    Pull-based: the follower asks [Rep_pull {shard; from=applied;
    max}] through an injected {!type-pull} function — in-process
    ({!Primary.handle}) in tests and experiments, or over a socket
    ([Conn.call_fd]) in the daemon — and applies the records in seq
    order through its own data path, with a hard continuity check: a
    stream gap is a loud failure, never a silent skip.

    [lag = last_committed - applied] per shard is exported as
    [replica_lag_frames]; per-batch apply time feeds
    [replica_apply_ns]. *)

type pull = shard:int -> from:int -> max:int -> Service.Codec.reply

type t

type boot = {
  b_snap_bindings : int array;
  b_replayed : int array;
  b_torn_bytes : int array;
      (** torn tail observed (and skipped, read-only) per shard *)
}

val create :
  structure:Workload.Registry.structure ->
  scheme:Workload.Registry.scheme ->
  Service.Shard.config ->
  pull:pull ->
  ?store:Store.t ->
  unit ->
  t * boot
(** The config's [hook] is forced to {!Service.Shard.no_hook} (a
    follower's durability is the primary's WAL; promotion re-opens
    it).  [shards] must equal the primary's.  With [store], bootstrap
    from the newest snapshot plus a read-only WAL scan ({!Wal.scan})
    before the first pull — the shared-store cold start.  Client tid
    0 is reserved for the replication apply path. *)

val step :
  t -> shard:int -> ?max:int -> unit -> [ `Applied of int | `Uptodate | `Err of string ]
(** One pull-and-apply round for the shard.
    @raise Failure on a sequence gap in the stream. *)

val sync : ?max_rounds:int -> t -> int
(** Step every shard until all report [`Uptodate]; returns records
    applied.  Converges only against a quiescent (or dead) primary —
    against a live one it chases the log until [max_rounds]
    (default 1e6) and fails. *)

val apply_catchup :
  t -> shard:int -> (int * Service.Codec.mutation) list -> int
(** Apply records with seq > applied directly (failover catch-up from
    the shared store), continuity-checked; returns how many.
    @raise Failure if the records start beyond [applied + 1] — the
    follower is too far behind the truncated log and needs a
    snapshot bootstrap instead. *)

val drive :
  t ->
  running:(unit -> bool) ->
  ?poll_interval:float ->
  ?on_progress:(unit -> unit) ->
  unit ->
  [ `Stopped | `Primary_gone | `Io_error of string | `Pull_error of string ]
(** The daemon's chase loop: step every shard, call [on_progress] per
    round, sleep [poll_interval] (default 5ms) when idle, until
    [running ()] is false or the stream ends.  Total: {e every} exit —
    stop flag ([`Stopped]), primary hang-up ([`Primary_gone]), I/O
    failure ([`Io_error]), error reply or stream gap ([`Pull_error]) —
    is a return, never an escaping exception, so the caller's cleanup
    ([stop], fd close) runs unconditionally.  [EINTR] is swallowed (a
    signal is how [running] gets flipped). *)

val applied : t -> int array
val lag : t -> int array
val nshards : t -> int
val sweep : t -> shard:int -> (int * int) list
(** Ungated bracket-protected traversal of the follower's own map —
    the promoted-state oracle read. *)

val apply_hist : t -> Obs.Hist.t
val gauges : t -> (string * int) list
(** [replica_lag_frames<i>], [replica_applied_seq<i>],
    [replica_pulls], [replica_apply_p99_ns]. *)

val stop : t -> unit
