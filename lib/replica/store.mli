(** Injectable durable-file namespace backing WAL segments and
    snapshots.

    The WAL never touches the filesystem directly: it goes through
    this record of closures, so chaos tests substitute a deterministic
    in-memory "disk" ({!Mem}) whose crash semantics are exact — bytes
    appended but not yet synced vanish, bytes synced survive.  The
    real-disk implementation ({!fs}) maps sync to [Unix.fsync] and
    whole-file publication to write-temp-then-rename, the standard
    atomic-publish idiom.  (DESIGN.md records this substitution in the
    determinism ledger.) *)

type writer = {
  w_append : string -> unit;
      (** Buffered append; NOT durable until {!writer.w_sync} returns. *)
  w_sync : unit -> unit;
      (** Make every appended byte durable.  Returns only once it is —
          the WAL's group-commit point, timed as [fsync_ns]. *)
  w_close : unit -> unit;
}

type t = {
  s_label : string;  (** ["fs:<dir>"] or ["mem"] — for logs/CSV. *)
  s_list : unit -> string list;
      (** Regular files, sorted; names ending [".tmp"] (an interrupted
          atomic publish) are never listed. *)
  s_read : string -> string;
      (** Full contents, {e including} any appended-but-unsynced tail —
          after a real crash those bytes may or may not be present,
          which is exactly the torn-tail ambiguity recovery must
          tolerate.  @raise Sys_error if absent. *)
  s_write : string -> string -> unit;
      (** Atomic whole-file publish: the file either keeps its old
          contents or has exactly the new ones, durably (snapshots,
          recovery truncation). *)
  s_append : string -> writer;  (** Open (creating if absent) for append. *)
  s_delete : string -> unit;  (** Idempotent. *)
}

val fs : dir:string -> t
(** Real directory (created, with parents, if missing).  [w_sync] is
    [Unix.fsync]; [s_write] writes [name ^ ".tmp"], fsyncs, renames. *)

(** Deterministic in-memory store with explicit crash semantics. *)
module Mem : sig
  type handle

  val create : ?label:string -> unit -> t * handle
  (** The store plus a control handle the store's users never see. *)

  val crash : handle -> unit
  (** Power loss: every file's appended-but-unsynced suffix vanishes;
      synced bytes survive.  Open writers keep working (the "process"
      holding them is expected dead — a new store user re-lists and
      re-opens). *)

  val synced_bytes : handle -> string -> int
  val pending_bytes : handle -> string -> int

  val syncs : handle -> int
  (** Total [w_sync] calls across all writers — the group-commit
      counter the batching tests assert on (one sync per drained run,
      not one per record). *)
end
