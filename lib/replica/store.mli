(** Injectable durable-file namespace backing WAL segments and
    snapshots.

    The WAL never touches the filesystem directly: it goes through
    this record of closures, so chaos tests substitute a deterministic
    in-memory "disk" ({!Mem}) whose crash semantics are exact — bytes
    appended but not yet synced vanish, bytes synced survive.  The
    real-disk implementation ({!fs}) maps sync to [Unix.fsync] and
    whole-file publication to write-temp-then-rename, the standard
    atomic-publish idiom.  (DESIGN.md records this substitution in the
    determinism ledger.) *)

type writer = {
  w_append : string -> unit;
      (** Buffered append; NOT durable until {!writer.w_sync} returns. *)
  w_sync : unit -> unit;
      (** Make every appended byte durable.  Returns only once it is —
          the WAL's group-commit point, timed as [fsync_ns]. *)
  w_close : unit -> unit;
}

type t = {
  s_label : string;  (** ["fs:<dir>"] or ["mem"] — for logs/CSV. *)
  s_list : unit -> string list;
      (** Regular files, sorted; names ending [".tmp"] (an interrupted
          atomic publish) are never listed. *)
  s_read : string -> string;
      (** Full contents, {e including} any appended-but-unsynced tail —
          after a real crash those bytes may or may not be present,
          which is exactly the torn-tail ambiguity recovery must
          tolerate.  @raise Sys_error if absent. *)
  s_source : string -> (bytes -> int -> int -> int) * (unit -> unit);
      (** Streaming read: [(read, close)] where [read buf off len]
          pulls at most [len] bytes ([0] = EOF) — the
          {!Service.Codec.frame_reader} source shape, so a snapshot
          loader decodes frame-at-a-time with one payload allocation
          per frame instead of materializing the file.  The caller
          must call [close] (idempotent).  Same torn-tail semantics as
          {!t.s_read}.  @raise Sys_error if absent. *)
  s_write : string -> string -> unit;
      (** Atomic whole-file publish: the file either keeps its old
          contents or has exactly the new ones, durably (snapshots,
          recovery truncation). *)
  s_append : string -> writer;  (** Open (creating if absent) for append. *)
  s_delete : string -> unit;  (** Idempotent. *)
}

val fs : dir:string -> t
(** Real directory (created, with parents, if missing).  [w_sync] is
    [Unix.fsync]; [s_write] writes [name ^ ".tmp"], fsyncs, renames. *)

val mmap : dir:string -> ?prealloc:int -> unit -> t
(** Real directory with memory-mapped segment writers: appends are
    memcpys into a shared mapping and [w_sync] is [msync(MS_SYNC)]
    instead of [fsync].  Files are preallocated (to [prealloc] bytes,
    default 64KiB, doubling as needed) with the size fsynced {e once}
    per growth step, so the per-commit sync never waits on metadata —
    the fsync-vs-msync WAL rows in bench/main.ml measure the gap.

    Crash-exactness contract: a crash can leave the active segment
    with a zero tail (preallocated space past the logical end) and/or
    a torn final record, both of which WAL recovery recognizes and
    trims; closed (rotated) segments are truncated to exact length
    first, so only the newest segment ever carries the ambiguity.
    [s_write] publishes via an exact-size mapped temp file + msync +
    fsync + rename — the same atomicity as {!fs}.
    @raise Invalid_argument if [prealloc <= 0]. *)

(** Deterministic in-memory store with explicit crash semantics. *)
module Mem : sig
  type handle

  val create : ?label:string -> unit -> t * handle
  (** The store plus a control handle the store's users never see. *)

  val crash : handle -> unit
  (** Power loss: every file's appended-but-unsynced suffix vanishes;
      synced bytes survive.  Open writers keep working (the "process"
      holding them is expected dead — a new store user re-lists and
      re-opens). *)

  val synced_bytes : handle -> string -> int
  val pending_bytes : handle -> string -> int

  val syncs : handle -> int
  (** Total [w_sync] calls across all writers — the group-commit
      counter the batching tests assert on (one sync per drained run,
      not one per record). *)
end
