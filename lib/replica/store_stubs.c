/* msync + mapped-blit primitives for the mmap store backend.
 *
 * ml_store_msync flushes the first [len] bytes of a shared mapping
 * with MS_SYNC — the mmap WAL's group-commit point, the counterpart
 * of Unix.fsync on the fd-backed path.  The runtime lock is released
 * around the syscall: commits can take milliseconds on real disks and
 * must not stall other domains.
 *
 * ml_store_blit is a plain memcpy from an OCaml string into the
 * mapping.  Bigarray.Array1 has no blit-from-string, and a char-loop
 * through Bigarray.set is measurably slower on multi-KiB frames.
 */

#include <string.h>
#include <sys/mman.h>

#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value ml_store_msync(value v_map, value v_len)
{
    CAMLparam2(v_map, v_len);
    char *data = (char *)Caml_ba_data_val(v_map);
    long len = Long_val(v_len);
    int rc = 0;
    caml_release_runtime_system();
    if (len > 0)
        rc = msync(data, (size_t)len, MS_SYNC);
    caml_acquire_runtime_system();
    if (rc != 0)
        caml_failwith("Store.mmap: msync failed");
    CAMLreturn(Val_unit);
}

CAMLprim value ml_store_blit(value v_src, value v_srcoff, value v_map,
                             value v_dstoff, value v_len)
{
    /* No CAMLparam needed: no allocation, no runtime release. */
    memcpy((char *)Caml_ba_data_val(v_map) + Long_val(v_dstoff),
           String_val(v_src) + Long_val(v_srcoff), (size_t)Long_val(v_len));
    return Val_unit;
}
