(* Confirmed-death failover, mirroring Chaos.Reaper's discipline: no
   promotion on a single stale observation — the liveness flag must be
   down AND every shard heartbeat frozen across [threshold]
   consecutive polls.  Promotion then catches the follower up from
   the shared store, so acked-but-not-yet-replicated records are
   recovered rather than lost. *)

type monitor = {
  m_alive : unit -> bool;
  m_heartbeat : int -> int;
  nshards : int;
  last : int array;
  frozen : int array;
  threshold : int;
  mutable n_polls : int;
  mutable confirmed_at_ : int option;
}

let monitor ~alive ~heartbeat ~nshards ?(threshold = 3) () =
  if threshold < 1 then invalid_arg "Failover.monitor: threshold < 1";
  {
    m_alive = alive;
    m_heartbeat = heartbeat;
    nshards;
    last = Array.make nshards min_int;
    frozen = Array.make nshards 0;
    threshold;
    n_polls = 0;
    confirmed_at_ = None;
  }

let poll m =
  m.n_polls <- m.n_polls + 1;
  let all_frozen = ref true in
  for i = 0 to m.nshards - 1 do
    let hb = m.m_heartbeat i in
    if hb = m.last.(i) then m.frozen.(i) <- m.frozen.(i) + 1
    else begin
      m.last.(i) <- hb;
      m.frozen.(i) <- 0
    end;
    if m.frozen.(i) < m.threshold then all_frozen := false
  done;
  let dead = (not (m.m_alive ())) && !all_frozen in
  if dead && m.confirmed_at_ = None then m.confirmed_at_ <- Some m.n_polls;
  dead

let confirmed m = m.confirmed_at_ <> None
let polls m = m.n_polls
let confirmed_at m = m.confirmed_at_

type promotion = {
  p_caught_up : int array;
  p_torn_bytes : int array;
  p_applied : int array;
}

let promote follower ~store =
  let n = Follower.nshards follower in
  let caught = Array.make n 0 in
  let torn = Array.make n 0 in
  for shard = 0 to n - 1 do
    let records, r = Wal.scan ~store ~shard in
    torn.(shard) <- r.Wal.r_truncated_bytes;
    caught.(shard) <- Follower.apply_catchup follower ~shard records
  done;
  { p_caught_up = caught; p_torn_bytes = torn; p_applied = Follower.applied follower }
