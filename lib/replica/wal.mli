(** Per-shard write-ahead log of acknowledged mutations.

    Records are {!Service.Codec.encode_wal_record} frames (length
    prefix, kind, seq, operands, CRC32) appended to segment files
    [wal-<shard>-<firstseq>.seg].  Seqs are contiguous from 1.  The
    write path is group commit: {!append} only buffers (assigning the
    seq), {!commit} writes the whole buffered run and syncs {e once} —
    the shard hook calls it after the drained run's bracket closes and
    before any ack fires, so an acknowledged mutation is always
    durable and a non-durable mutation is never acknowledged.

    Recovery rule (the crash contract): a defective item — torn frame
    or CRC-damaged record — at the {e very end of the last segment} is
    the legitimate residue of a crash mid-group-commit; it was never
    acked, so {!open_} silently truncates it (reported in
    {!recovery.r_truncated_bytes}).  A defective item {e anywhere
    else} is damage to acknowledged history: {!open_} and {!scan}
    raise {!Corrupt} naming the expected seq — loud, never a silent
    skip.

    Committed records are also retained in memory (from
    {!base_seq}+1) to serve follower {!read_from} pulls without
    re-reading disk; {!truncate_upto} — called once a snapshot covers
    a prefix — drops them and deletes whole segments. *)

exception Crashed
(** The log was killed by an armed torn commit (or closed); the owner
    "process" is dead and must re-{!open_}. *)

exception Corrupt of { shard : int; segment : string; seq : int; reason : string }
(** Damage to acknowledged history: [seq] is the first record that
    could not be recovered intact. *)

type recovery = {
  r_records : int;  (** complete records recovered *)
  r_last_seq : int;  (** 0 when the log is empty *)
  r_truncated_bytes : int;  (** torn-tail bytes dropped; 0 = clean *)
  r_truncated_segment : string option;
  r_segments : int;
}

type t

val open_ :
  store:Store.t -> shard:int -> ?segment_bytes:int -> unit -> t * recovery
(** Scan, truncate a torn tail (rewriting the final segment to its
    good prefix, atomically), and take the append head.
    [segment_bytes] (default 64 KiB) is the soft rotation bound — a
    commit never splits across segments.  @raise Corrupt *)

val scan :
  store:Store.t -> shard:int -> (int * Service.Codec.mutation) list * recovery
(** Read-only recovery: every intact committed record in seq order,
    tolerating (and reporting) a torn tail without rewriting anything
    — follower bootstrap and failover catch-up read the shared store
    through this.  @raise Corrupt *)

val append : t -> Service.Codec.mutation -> int
(** Buffer one record, returning its seq.  Not durable until
    {!commit}.  @raise Crashed *)

val commit : t -> unit
(** Write all buffered records and sync once (a no-op when nothing is
    buffered: an all-reads run costs no fsync).  On return they are
    durable, {!committed_seq} has advanced, and the segment may have
    rotated.  @raise Crashed — in particular when a torn commit was
    armed: the sink receives a durable prefix ending mid-record, the
    log is dead, and nothing was promoted to committed. *)

val arm_torn_commit : t -> unit
(** The next {!commit} simulates power loss mid-write: only the first
    half of the run's {e first} record reaches the sink durably, then
    {!Crashed} is raised.  No complete record of the unacked run hits
    disk, so recovery truncates the partial frame and lands on exactly
    the acked history.  Deterministic on any {!Store.t}. *)

val committed_seq : t -> int
(** Last durable seq; lock-free (an [Atomic] read), so followers and
    gauges may call it from any domain. *)

val base_seq : t -> int
(** Seq before the first record still held in memory / on disk. *)

val read_from :
  t ->
  from:int ->
  max:int ->
  [ `Batch of (int * Service.Codec.mutation) list * int | `Too_old of int ]
(** Committed records with seq in [(from, committed]], at most [max]
    of them, plus the committed seq at read time.  [`Too_old base]
    when [from < base_seq] — the pull window was truncated away and
    the follower must re-bootstrap from a snapshot. *)

val truncate_upto : t -> seq:int -> unit
(** Drop records [<= min seq committed_seq] from memory and delete
    every segment wholly covered; the active segment always stays. *)

val fsync_hist : t -> Obs.Hist.t
(** Nanoseconds per {!commit} sync ([fsync_ns]). *)

val fsyncs : t -> int
val segments : t -> int
val gauges : t -> (string * int) list
(** [wal_committed_seq], [wal_base_seq], [wal_records],
    [wal_segments], [wal_fsyncs], [wal_fsync_p99_ns]. *)

val close : t -> unit
(** Close the writer; further {!append}/{!commit} raise {!Crashed}. *)
