(** Lock-free fixed-capacity dirty-key set: tracks which keys a shard
    mutated since the last published snapshot, so a delta snapshot
    visits the write set instead of the whole map.

    Writers ride the {!Service.Shard.ack_hook} mutation funnel (the
    hot path), so adds are allocation-free CAS inserts into an
    open-addressed table.  The distinguished {!none} instance — tested
    by physical equality — makes tracking zero-cost when off, the same
    discipline as [Shard.no_hook] / [Shard.admit_all].

    {b Handoff (why the seal exists).}  The snapshotter publishes the
    producer-visible set in an [Atomic.t] cell.  At snapshot start it
    exchanges a fresh set in, {!seal}s the old one, and only then
    iterates it.  A concurrent {!add} that raced the swap returns
    [false] when it observes the seal, and the caller retries against
    the cell — so every key lands either in the sealed set (covered by
    this delta) or the fresh one (covered by the next), never neither.

    {b Overflow.}  Past half occupancy (or a full probe ring, or a
    negative key) the set is poisoned: {!overflowed} turns true and
    stays true, and the snapshotter falls back to a full traversal.
    Adds after poisoning degrade to a flag read (no insert, no
    probing): correctness never depends on the set's contents once the
    flag is up, and a full table must not cost a whole probe ring per
    mutation on the hot path. *)

type t

val none : t
(** The permanently-disabled instance; recognized by {!is_none}
    ([==]).  {!add} on it is a no-op returning [true]. *)

val is_none : t -> bool

val create : cap:int -> t
(** A fresh set with capacity rounded up to a power of two.  Poisons
    itself past [capacity/2] live keys.
    @raise Invalid_argument if [cap < 2]. *)

val capacity : t -> int

val add : t -> key:int -> bool
(** Record [key].  [false] means the set was sealed concurrently and
    the caller must retry on the current cell contents ({!t} sets are
    used through an [Atomic.t] cell swapped at snapshot start). *)

val seal : t -> unit
(** Close the set for handoff: subsequent (and racing) {!add}s return
    [false].  Must be called {e before} {!iter}/{!elements} for the
    iteration to be a complete record. *)

val iter : t -> (int -> unit) -> unit
val elements : t -> int list

val count : t -> int
(** Successful inserts (approximate under concurrency; exact once
    sealed and quiescent). *)

val overflowed : t -> bool
(** Sticky poison flag: the set is no longer a complete record of the
    write set — snapshot full instead. *)

val poison : t -> unit
(** Force the overflow flag (merge-back of an overflowed set). *)
