(* Lock-free fixed-capacity dirty-key set: the write-rate tracker
   behind incremental snapshots.  Writers are shard consumers calling
   from the hot mutation path, so the structure is a plain
   open-addressed CAS table with no locks, no allocation per add, and
   a distinguished [none] instance recognized by physical equality —
   the same zero-cost-when-off discipline as [Shard.no_hook].

   Snapshot handoff protocol (the seal): the snapshotter atomically
   swaps a fresh set into the producer-visible cell, seals the old
   one, then iterates it.  A writer that raced the swap — read the old
   set before the exchange, inserted after — observes [sealed] on its
   way out of [add], gets [false], and retries against the cell (now
   holding the fresh set).  Sealing BEFORE iterating is what makes the
   iteration complete: every insert that did not land before the seal
   is re-routed to the new set, so a key is never lost between two
   deltas.

   Overflow is a poison flag, not an error: past [cap/2] occupancy (or
   a failed probe) the set stops being trustworthy as a complete
   record of the write set, and the snapshotter falls back to a full
   traversal.  The flag is sticky and survives merge-backs. *)

type t = {
  slots : int Atomic.t array;  (* key+1; 0 = empty *)
  mask : int;
  count : int Atomic.t;
  sealed : bool Atomic.t;
  overflow : bool Atomic.t;
}

let none =
  {
    slots = [||];
    mask = 0;
    count = Atomic.make 0;
    sealed = Atomic.make false;
    overflow = Atomic.make false;
  }

let is_none t = t == none

let create ~cap =
  if cap < 2 then invalid_arg "Dirty.create: cap < 2";
  (* Round up to a power of two so probing can mask. *)
  let c = ref 1 in
  while !c < cap do
    c := !c * 2
  done;
  {
    slots = Array.init !c (fun _ -> Atomic.make 0);
    mask = !c - 1;
    count = Atomic.make 0;
    sealed = Atomic.make false;
    overflow = Atomic.make false;
  }

let capacity t = Array.length t.slots
let overflowed t = Atomic.get t.overflow
let poison t = if not (is_none t) then Atomic.set t.overflow true

(* SplitMix finalizer, as the shard router uses: adjacent keys must
   not chain in the probe sequence. *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 32)) land max_int

(* Record [key] as dirty.  Returns [false] iff the set was sealed by
   the time the insert (or its abandonment) completed — the caller
   must then re-read its cell and retry, because this set's iteration
   may not include the key.  Keys must be non-negative (the service
   key space); a negative key poisons the set, which is safe: the
   snapshotter falls back to a full traversal. *)
let add t ~key =
  if is_none t then true
  else if key < 0 then begin
    Atomic.set t.overflow true;
    not (Atomic.get t.sealed)
  end
  else if Atomic.get t.overflow then
    (* Poisoned: the next snapshot is a full traversal regardless of
       what this set holds, so recording more keys is pure waste — and
       on a full table every insert would probe all [cap] slots.  The
       seal answer still matters (the caller's retry protocol). *)
    not (Atomic.get t.sealed)
  else begin
    let stored = key + 1 in
    let n = Array.length t.slots in
    let rec probe i left =
      if left = 0 then
        (* Table full: poison — the set is no longer a complete record. *)
        Atomic.set t.overflow true
      else
        let cell = t.slots.(i land t.mask) in
        let cur = Atomic.get cell in
        if cur = stored then ()
        else if cur = 0 then begin
          if Atomic.compare_and_set cell 0 stored then begin
            let c = Atomic.fetch_and_add t.count 1 in
            if c + 1 > n / 2 then Atomic.set t.overflow true
          end
          else probe i left  (* lost the slot: re-read it *)
        end
        else probe (i + 1) (left - 1)
    in
    probe (mix key) n;
    (* Check AFTER the insert: an insert that completed before the
       seal is covered by the sealing iterator; one that completed
       after might not be, so report it for retry. *)
    not (Atomic.get t.sealed)
  end

let seal t = if not (is_none t) then Atomic.set t.sealed true

let iter t f =
  Array.iter
    (fun cell ->
      let v = Atomic.get cell in
      if v <> 0 then f (v - 1))
    t.slots

let elements t =
  let acc = ref [] in
  iter t (fun k -> acc := k :: !acc);
  !acc

let count t = Atomic.get t.count
