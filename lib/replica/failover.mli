(** Failover: confirmed-death detection and follower promotion.

    Detection reuses the chaos reaper's discipline: a primary is
    declared dead only when its liveness flag is down {e and} every
    shard consumer's heartbeat has been frozen for [threshold]
    consecutive polls — a slow primary is never failed over on a
    single stale read.

    Promotion runs against the {e shared store} (the shared-disk
    model): the promoted follower catches up from the WAL itself —
    read-only {!Wal.scan}, torn tail truncated, never an error — so
    every {e acknowledged} record is recovered even if the follower's
    pull stream was behind at the moment of death.  The promoted
    state must therefore equal the sequential replay of the acked
    history exactly ([Chaos.Oracle.replay_state] is the judge in
    [experiments replicate]).  Re-opening the WAL for writes as a new
    primary is {!Primary.create} over the same store — promotion
    validates the state-convergence half, which is the part that can
    diverge. *)

type monitor

val monitor :
  alive:(unit -> bool) ->
  heartbeat:(int -> int) ->
  nshards:int ->
  ?threshold:int ->
  unit ->
  monitor
(** [threshold] defaults to 3 consecutive frozen observations. *)

val poll : monitor -> bool
(** One observation round; [true] once death is confirmed.  Callers
    space polls so a live-but-idle consumer gets a chance to bump its
    heartbeat between them. *)

val confirmed : monitor -> bool
val polls : monitor -> int
val confirmed_at : monitor -> int option
(** Poll count at which death was first confirmed. *)

type promotion = {
  p_caught_up : int array;  (** records applied from the store per shard *)
  p_torn_bytes : int array;  (** torn tail truncated per shard *)
  p_applied : int array;  (** per-shard applied seq after promotion *)
}

val promote : Follower.t -> store:Store.t -> promotion
(** Catch the follower up from the shared store and return the
    accounting.  @raise Wal.Corrupt on damaged acked history;
    @raise Failure if the follower is behind the truncated log (needs
    snapshot bootstrap). *)
