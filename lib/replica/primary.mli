(** The durable primary: a {!Service.Shard} service with per-shard
    WALs wired through the consumer ack hook.

    Group-commit discipline (enforced by the hook contract): inside a
    drained run's bracket, every applied mutation is
    {!Wal.append}ed; after the bracket closes, {!Wal.commit} syncs
    once; only then do the run's acks fire.  So an acked mutation is
    always durable, and a crash between apply and commit (the armed
    torn commit) kills the shard consumer with {e nothing} from that
    run acknowledged — recovery truncates the torn tail and replays
    exactly the acked history.

    {b Incremental snapshots.}  With [delta] enabled, the same hook
    records each mutated key in a per-shard lock-free {!Dirty} set,
    and {!snapshot_shard} can publish a {e delta} — only the keys
    mutated since the chain tip, read via
    {!Service.Shard.t.snapshot_keys} — instead of a full traversal:
    snapshot cost proportional to the write rate, not the map size.
    Deltas chain off a full base ({!Snapshot.load_chain} enforces
    continuity); every [compact_every] links the [`Auto] path folds
    the chain back into a fresh base and deletes what it covers.
    With [delta] off the dirty cells hold the distinguished
    {!Dirty.none} and the hot path pays one physical-equality check.

    Bootstrap on {!create}: newest snapshot {e chain} (if any) then
    WAL replay from its tip seq, with logging disabled so recovery
    never re-appends what it reads.  Chain bindings apply with dirty
    tracking {e off} — they are base state the chain already covers,
    and recording them would bloat (or poison) the first post-boot
    delta.  WAL replay then records dirty keys normally, because
    replayed seqs sit above the chain tip and belong in the next
    delta. *)

type tap = shard:int -> Service.Codec.mutation -> unit
(** Post-apply mutation observer (the cluster layer's slot-dirty
    feed).  Fires inside the consumer's bracket, after the WAL append
    and dirty record for the same mutation. *)

val no_tap : tap
(** The permanently-disabled instance; recognized by [==] — one
    physical-equality check per mutation when nothing is tapped. *)

type snap_meta = {
  mutable m_base : int option;  (** newest base's stamp *)
  mutable m_last : int;  (** chain tip stamp *)
  mutable m_deltas : int;  (** links since the base *)
  mutable m_file : string;  (** newest chain file *)
}

type t = {
  svc : Service.Shard.t;
  store : Store.t;
  wals : Wal.t array;
  alive : bool Atomic.t;
  logging : bool Atomic.t;
  dirty : Dirty.t Atomic.t array;
      (** per-shard dirty cells; {!Dirty.none} when delta is off *)
  dirty_cap : int;  (** configured starting capacity *)
  dirty_caps : int array;
      (** per-shard {e adaptive} capacity for the next dirty set:
          every snapshot re-derives it from the set just swapped out
          (overflowed or past quarter occupancy → double; under
          1/16th → halve; clamped to [16, 2^20]), so one burst stops
          poisoning after a doubling cycle and a quiet shard decays
          back.  Exported as the [rep_shard<i>_dirty_cap] gauge. *)
  compact_every : int;
  snap_mu : Mutex.t array;  (** serializes {!snapshot_shard} per shard *)
  snap_meta : snap_meta array;  (** guarded by [snap_mu] *)
  tap : tap Atomic.t;
}

type boot = {
  b_recovery : Wal.recovery array;
  b_snap_bindings : int array;  (** bindings restored from snapshots *)
  b_replayed : int array;  (** WAL records re-applied *)
}

val create :
  structure:Workload.Registry.structure ->
  scheme:Workload.Registry.scheme ->
  Service.Shard.config ->
  store:Store.t ->
  ?segment_bytes:int ->
  ?delta:bool ->
  ?dirty_cap:int ->
  ?compact_every:int ->
  unit ->
  t * boot
(** The given config's [hook] field is replaced by the WAL hook.
    Bootstrap uses client tid 0 synchronously before returning.
    [delta] (default off) enables dirty-key tracking; [dirty_cap]
    (default 16384, rounded up to a power of two) is each set's
    {e starting} bound — past half occupancy it poisons and the next
    snapshot goes full, and every snapshot then re-sizes the next set
    from the observed write-set (see {!t.dirty_caps});
    [compact_every] (default 8) bounds chain length.
    @raise Wal.Corrupt / {!Snapshot.Corrupt} on damaged acked history. *)

val set_tap : t -> tap -> unit
(** Install the mutation observer.  Install at wiring time, before
    traffic; {!no_tap} disables. *)

val handle : t -> Service.Codec.request -> Service.Codec.reply option
(** The {!Service.Conn} [ext] handler: answers [Rep_info] (per-shard
    committed seqs) and [Rep_pull] (committed records, capped at
    {!Service.Codec.rep_batch_max}); [None] for data requests. *)

val committed : t -> int array

val snapshot_shard :
  t ->
  shard:int ->
  ?gate:(int -> unit) ->
  ?truncate:bool ->
  ?mode:[ `Auto | `Full | `Delta ] ->
  unit ->
  string * int
(** Stamp = committed seq read {e before} the traversal; publish
    atomically; returns [(file, seq)].  With [truncate] (default) the
    WAL then drops everything the chain covers (and, after a full
    snapshot, superseded chain files are deleted).

    [`Full] forces a base.  [`Delta] publishes a delta link when one
    is possible (a base exists, tracking is on, the set has not
    overflowed) and otherwise falls back to a base — delta is
    best-effort; the returned file name says which happened.  [`Auto]
    (default) prefers a delta but compacts to a base every
    [compact_every] links.  If nothing committed since the chain tip,
    the delta path returns the existing tip without writing.

    Serialized per shard by [snap_mu]; concurrent calls block.  The
    map traversal itself still raises [Invalid_argument] if it
    overlaps a {!sweep}. *)

val sweep : t -> shard:int -> (int * int) list
(** Ungated snapshot traversal — the oracle-comparison read. *)

val arm_torn_commit : t -> shard:int -> unit
(** The shard's next group commit dies mid-write ({!Wal.commit}'s
    torn crash); the consumer dies as a crashed shard with that run
    unacked. *)

val kill : t -> unit
(** Simulated process death: [alive] drops and every still-live shard
    consumer is crashed ({!Service.Shard.t.crash} — heartbeats
    freeze).  The store survives; a new primary or a promoted
    follower recovers from it. *)

val alive : t -> bool
val fsync_hist : t -> shard:int -> Obs.Hist.t

val gauges : t -> (string * int) list
(** [rep_primary_alive] plus each WAL's gauges under
    [rep_shard<i>_...]; with delta tracking on, also
    [rep_shard<i>_dirty_keys]/[_dirty_overflow]/[_snap_deltas]. *)

val stop : t -> unit
(** Graceful shutdown: stop the service, close the WALs. *)
