(** The durable primary: a {!Service.Shard} service with per-shard
    WALs wired through the consumer ack hook.

    Group-commit discipline (enforced by the hook contract): inside a
    drained run's bracket, every applied mutation is
    {!Wal.append}ed; after the bracket closes, {!Wal.commit} syncs
    once; only then do the run's acks fire.  So an acked mutation is
    always durable, and a crash between apply and commit (the armed
    torn commit) kills the shard consumer with {e nothing} from that
    run acknowledged — recovery truncates the torn tail and replays
    exactly the acked history.

    Bootstrap on {!create}: newest snapshot (if any) then WAL replay
    from its stamp seq, with logging disabled so recovery never
    re-appends what it reads.  Replay applies absolute mutations
    through the normal shard path, so it lands on the same shard the
    original request did. *)

type t = {
  svc : Service.Shard.t;
  store : Store.t;
  wals : Wal.t array;
  alive : bool Atomic.t;
  logging : bool Atomic.t;
}

type boot = {
  b_recovery : Wal.recovery array;
  b_snap_bindings : int array;  (** bindings restored from snapshots *)
  b_replayed : int array;  (** WAL records re-applied *)
}

val create :
  structure:Workload.Registry.structure ->
  scheme:Workload.Registry.scheme ->
  Service.Shard.config ->
  store:Store.t ->
  ?segment_bytes:int ->
  unit ->
  t * boot
(** The given config's [hook] field is replaced by the WAL hook.
    Bootstrap uses client tid 0 synchronously before returning.
    @raise Wal.Corrupt / {!Snapshot.Corrupt} on damaged acked history. *)

val handle : t -> Service.Codec.request -> Service.Codec.reply option
(** The {!Service.Conn} [ext] handler: answers [Rep_info] (per-shard
    committed seqs) and [Rep_pull] (committed records, capped at
    {!Service.Codec.rep_batch_max}); [None] for data requests. *)

val committed : t -> int array

val snapshot_shard :
  t ->
  shard:int ->
  ?gate:(int -> unit) ->
  ?truncate:bool ->
  unit ->
  string * int
(** Stamp = committed seq read {e before} the traversal; traverse the
    live map inside one bracket ({!Service.Shard.t.snapshot}, [gate]
    forwarded); publish atomically.  With [truncate] (default) the
    WAL then drops everything the snapshot covers and older snapshots
    are deleted.  Returns [(file, seq)]. *)

val sweep : t -> shard:int -> (int * int) list
(** Ungated snapshot traversal — the oracle-comparison read. *)

val arm_torn_commit : t -> shard:int -> unit
(** The shard's next group commit dies mid-write ({!Wal.commit}'s
    torn crash); the consumer dies as a crashed shard with that run
    unacked. *)

val kill : t -> unit
(** Simulated process death: [alive] drops and every still-live shard
    consumer is crashed ({!Service.Shard.t.crash} — heartbeats
    freeze).  The store survives; a new primary or a promoted
    follower recovers from it. *)

val alive : t -> bool
val fsync_hist : t -> shard:int -> Obs.Hist.t
val gauges : t -> (string * int) list
(** [rep_primary_alive] plus each WAL's gauges under
    [rep_shard<i>_...]. *)

val stop : t -> unit
(** Graceful shutdown: stop the service, close the WALs. *)
