(** Point-in-time shard snapshots — full bases plus delta links — the
    WAL's truncation anchor.

    A base file [snap-<shard>-<seq>.snap] is a
    {!Service.Codec.encode_snap_head} frame (the WAL seq it is stamped
    with, and a binding count) followed by exactly that many
    {!Service.Codec.encode_snap_kv} frames.  A delta file
    [delta-<shard>-<from>-<seq>.snap] is an
    {!Service.Codec.encode_snap_delta_head} frame followed by its
    declared bindings and tombstones, and carries only the keys
    mutated in [(from, seq]] — its cost scales with the write rate,
    not the map size.  Every frame is CRC-protected and every file is
    published atomically ({!Store.t.s_write}: temp + rename) — so
    unlike the WAL there is {e no} legitimate torn snapshot: any
    damage raises {!Corrupt} loudly.

    {b Chain discipline.}  A delta's [from] must equal the stamp of
    the snapshot it extends: base at [B], then deltas [B -> s1],
    [s1 -> s2], ...  {!load_chain} verifies this continuity and raises
    {!Corrupt} on a gap, fork, or orphaned delta — never a silent
    skip, which would resurrect deleted keys and lose writes.  Deltas
    at or below the newest base are ignored as compaction-crash
    residue (their superseding base published; the cleanup died).

    The stamp seq is read from the WAL {e before} the traversal
    starts, so the fuzzy bindings plus WAL replay from [seq + 1]
    converge to the primary's state (mutations are absolute).

    Loading streams through {!Store.t.s_source} and
    {!Service.Codec.frame_reader}: one payload allocation per frame,
    never the whole file. *)

exception Corrupt of { file : string; reason : string }

val write :
  store:Store.t -> shard:int -> seq:int -> (int * int) list -> string
(** Publish a base snapshot atomically; returns the file name. *)

val write_delta :
  store:Store.t ->
  shard:int ->
  from:int ->
  seq:int ->
  (int * int option) list ->
  string
(** Publish a delta link atomically: [(key, Some v)] entries become
    bindings, [(key, None)] become tombstones.  [from] must be the
    stamp of the chain tip this extends; returns the file name. *)

val load_latest :
  store:Store.t -> shard:int -> ((int * int) list * int * string) option
(** Highest-seq {e base} snapshot of the shard: [(bindings, seq,
    file)], or [None] when the shard has never been snapshotted.
    Ignores deltas — use {!load_chain} for the full recovery picture.
    @raise Corrupt *)

type chain = {
  c_bindings : (int * int) list;  (** merged base+deltas, sorted by key *)
  c_seq : int;  (** chain tip stamp — replay the WAL from here *)
  c_base_seq : int;  (** the base file's stamp *)
  c_deltas : int;  (** delta links applied *)
  c_files : string list;  (** base first, then deltas in chain order *)
}

val load_chain : store:Store.t -> shard:int -> chain option
(** Load the newest base and every delta chaining from it, merged in
    order (sets replace, tombstones remove).  [None] when the shard
    has no snapshot at all.
    @raise Corrupt on damage, a continuity gap (a delta whose [from]
    is not the current chain tip), a fork (two deltas extending the
    same tip), or deltas present with no base. *)

val delete_older : store:Store.t -> shard:int -> keep_seq:int -> int
(** Delete bases with seq < [keep_seq] and deltas with tip seq <=
    [keep_seq] (wholly covered by the kept base); returns how many. *)
