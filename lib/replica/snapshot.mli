(** Point-in-time shard snapshots: the WAL's truncation anchor.

    A snapshot file [snap-<shard>-<seq>.snap] is a
    {!Service.Codec.encode_snap_head} frame (the WAL seq it is stamped
    with, and a binding count) followed by exactly that many
    {!Service.Codec.encode_snap_kv} frames, each CRC-protected, and is
    published atomically ({!Store.t.s_write}: temp + rename) — so
    unlike the WAL there is {e no} legitimate torn snapshot: any
    damage raises {!Corrupt} loudly.

    The stamp seq is read from the WAL {e before} the traversal
    starts, so the fuzzy bindings plus WAL replay from [seq + 1]
    converge to the primary's state (mutations are absolute). *)

exception Corrupt of { file : string; reason : string }

val write :
  store:Store.t -> shard:int -> seq:int -> (int * int) list -> string
(** Publish a snapshot atomically; returns the file name. *)

val load_latest :
  store:Store.t -> shard:int -> ((int * int) list * int * string) option
(** Highest-seq snapshot of the shard: [(bindings, seq, file)], or
    [None] when the shard has never been snapshotted.  @raise Corrupt *)

val delete_older : store:Store.t -> shard:int -> keep_seq:int -> int
(** Delete snapshots with seq < [keep_seq]; returns how many. *)
