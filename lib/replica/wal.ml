(* Per-shard write-ahead log: group-committed checksummed frames over
   an injectable Store, with the crash-recovery rule that makes
   ack-equals-durable sound:

     - a defective item at the very end of the LAST segment is the
       residue of dying mid-group-commit — its batch was never acked,
       so recovery TRUNCATES it and says how many bytes;
     - a defective item anywhere else is damage to acknowledged
       history — recovery fails LOUDLY with the expected seq, never
       silently skips.

   Appends buffer; commit writes the whole buffered run and syncs
   once.  The shard consumer calls commit after its drained run's
   bracket closes and before any ack fires. *)

module Codec = Service.Codec

exception Crashed
exception Corrupt of { shard : int; segment : string; seq : int; reason : string }

type recovery = {
  r_records : int;
  r_last_seq : int;
  r_truncated_bytes : int;
  r_truncated_segment : string option;
  r_segments : int;
}

let default_segment_bytes = 64 * 1024
let seg_name ~shard ~first = Printf.sprintf "wal-%d-%012d.seg" shard first

let parse_seg ~shard name =
  let prefix = Printf.sprintf "wal-%d-" shard in
  let plen = String.length prefix in
  if
    String.length name > plen + 4
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name plen (String.length name - plen - 4))
  else None

(* Scan every segment in seq order, enforcing frame integrity and seq
   continuity.  Returns (records, last_seq, torn, segments) where
   [torn = Some (segment, good_prefix_len, dropped_bytes)] describes a
   truncatable tail.  Raises Corrupt on anything else. *)
let scan_store ~(store : Store.t) ~shard =
  let segs =
    List.filter_map
      (fun n ->
        match parse_seg ~shard n with Some f -> Some (n, f) | None -> None)
      (store.Store.s_list ())
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let nsegs = List.length segs in
  let records = ref [] in
  let expect = ref (match segs with (_, f) :: _ -> f | [] -> 1) in
  let torn = ref None in
  List.iteri
    (fun i (name, first) ->
      let is_last = i = nsegs - 1 in
      if first <> !expect then
        raise
          (Corrupt
             {
               shard;
               segment = name;
               seq = !expect;
               reason =
                 Printf.sprintf
                   "segment starts at seq %d, expected %d (missing or \
                    reordered segment)"
                   first !expect;
             });
      let data = store.Store.s_read name in
      let len = String.length data in
      let pos = ref 0 in
      let read buf off want =
        let n = min want (len - !pos) in
        Bytes.blit_string data !pos buf off n;
        pos := !pos + n;
        n
      in
      let fail reason =
        raise (Corrupt { shard; segment = name; seq = !expect; reason })
      in
      (* Preallocated-store residue test: is everything from [from] to
         EOF zero bytes?  Real frames start with a nonzero length
         prefix, so acked history can never look like this — an
         all-zeros rest is the unwritten tail of an mmap-preallocated
         segment (plus, possibly, a torn final record whose payload
         read consumed part of it). *)
      let rest_is_zeros from =
        let rec go i = i >= len || (data.[i] = '\000' && go (i + 1)) in
        go from
      in
      let stop = ref false in
      while not !stop do
        let frame_start = !pos in
        match Codec.read_frame_from read with
        | exception Codec.Malformed reason ->
            (* A garbage length prefix: framing is lost from here on.
               In the last segment everything before this parsed clean,
               so the rest is tail residue — truncate.  Anywhere else
               it is a hole in acked history. *)
            if is_last then begin
              torn := Some (name, frame_start, len - frame_start);
              stop := true
            end
            else fail reason
        | Codec.Eof -> stop := true
        | Codec.Torn { got } ->
            if is_last then begin
              torn := Some (name, frame_start, len - frame_start);
              stop := true
            end
            else
              fail
                (Printf.sprintf
                   "torn frame (%d bytes) inside a non-final segment" got)
        | Codec.Frame payload -> (
            match Codec.decode_wal_record payload with
            | seq, m ->
                if seq <> !expect then
                  fail (Printf.sprintf "sequence gap: record carries seq %d" seq);
                records := (seq, m) :: !records;
                expect := seq + 1
            | exception Codec.Malformed reason ->
                (* Damaged record: the classic torn tail when the
                   damage runs to EOF in the last segment — directly
                   (!pos = len), or through the zero tail of an mmap-
                   preallocated segment (a torn record's payload read
                   consumed part of it; a zero length prefix reads as
                   an empty frame -> Malformed here).  A damaged
                   record FOLLOWED by non-zero frames is bitrot in
                   acknowledged history, not a tear — commits append
                   in order, so nothing past a tear was ever written —
                   and stays loud even in the newest segment.  In a
                   rotated segment the one benign shape is all zeros
                   from [frame_start] to EOF (the untrimmed prealloc
                   tail of a crash between last commit and rotation):
                   skipped without a rewrite; if the zeros actually
                   hid acked records, the next segment's first-seq
                   continuity check fails loudly. *)
                if is_last && (!pos = len || rest_is_zeros !pos) then begin
                  torn := Some (name, frame_start, len - frame_start);
                  stop := true
                end
                else if (not is_last) && rest_is_zeros frame_start then
                  stop := true
                else fail reason)
      done)
    segs;
  (List.rev !records, !expect - 1, !torn, segs)

let mk_recovery records last torn segs =
  {
    r_records = List.length records;
    r_last_seq = last;
    r_truncated_bytes = (match torn with Some (_, _, d) -> d | None -> 0);
    r_truncated_segment = (match torn with Some (n, _, _) -> Some n | None -> None);
    r_segments = List.length segs;
  }

let scan ~store ~shard =
  let records, last, torn, segs = scan_store ~store ~shard in
  (records, mk_recovery records last torn segs)

type t = {
  store : Store.t;
  shard : int;
  segment_bytes : int;
  mu : Mutex.t;
  (* Committed records with seqs (base, committed]; recs.(start + i)
     holds seq base+1+i.  Grown by doubling, compacted on growth. *)
  mutable recs : (int * Codec.mutation) array;
  mutable start : int;
  mutable count : int;
  mutable base : int;
  committed : int Atomic.t;
  mutable next_seq : int;
  pending : Buffer.t;
  mutable pending_recs : (int * Codec.mutation) list;  (* reversed *)
  mutable first_pending_frame : int;  (* bytes of the first buffered frame *)
  mutable writer : Store.writer;
  mutable writer_name : string;
  mutable writer_len : int;
  mutable segs : (string * int) list;  (* (name, first_seq) ascending *)
  hist : Obs.Hist.t;
  mutable n_fsyncs : int;
  mutable torn_armed : bool;
  mutable dead : bool;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let open_ ~store ~shard ?(segment_bytes = default_segment_bytes) () =
  let records, last, torn, segs = scan_store ~store ~shard in
  (* Rewrite the torn final segment to its good prefix (atomic
     publish) before taking the append head: the truncated bytes
     belonged to a batch that was never acknowledged. *)
  (match torn with
  | Some (name, good_len, _) ->
      let data = store.Store.s_read name in
      store.Store.s_write name (String.sub data 0 good_len)
  | None -> ());
  let segs =
    match segs with
    | [] ->
        let name = seg_name ~shard ~first:1 in
        store.Store.s_write name "";
        [ (name, 1) ]
    | l -> l
  in
  let base = snd (List.hd segs) - 1 in
  let writer_name = fst (List.nth segs (List.length segs - 1)) in
  let writer = store.Store.s_append writer_name in
  let writer_len = String.length (store.Store.s_read writer_name) in
  let recs = Array.of_list records in
  let t =
    {
      store;
      shard;
      segment_bytes;
      mu = Mutex.create ();
      recs;
      start = 0;
      count = Array.length recs;
      base;
      committed = Atomic.make last;
      next_seq = last + 1;
      pending = Buffer.create 1024;
      pending_recs = [];
      first_pending_frame = 0;
      writer;
      writer_name;
      writer_len;
      segs;
      hist = Obs.Hist.create ();
      n_fsyncs = 0;
      torn_armed = false;
      dead = false;
    }
  in
  (t, mk_recovery records last torn segs)

let append t m =
  locked t @@ fun () ->
  if t.dead then raise Crashed;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let before = Buffer.length t.pending in
  Codec.encode_wal_record t.pending ~seq m;
  if before = 0 then t.first_pending_frame <- Buffer.length t.pending;
  t.pending_recs <- (seq, m) :: t.pending_recs;
  seq

let push t r =
  if t.start + t.count = Array.length t.recs then begin
    let cap = max 64 (2 * t.count) in
    let a = Array.make cap (0, Codec.Unset 0) in
    Array.blit t.recs t.start a 0 t.count;
    t.recs <- a;
    t.start <- 0
  end;
  t.recs.(t.start + t.count) <- r;
  t.count <- t.count + 1

let rotate t =
  t.writer.Store.w_close ();
  let first = t.next_seq in
  let name = seg_name ~shard:t.shard ~first in
  t.store.Store.s_write name "";
  t.writer <- t.store.Store.s_append name;
  t.writer_name <- name;
  t.writer_len <- 0;
  t.segs <- t.segs @ [ (name, first) ]

let commit t =
  locked t @@ fun () ->
  if t.dead then raise Crashed;
  if Buffer.length t.pending > 0 then begin
    let bytes = Buffer.contents t.pending in
    if t.torn_armed then begin
      (* Power loss mid-write: the sink durably received only the
         first half of the run's FIRST record, then the process died.
         No complete record of the unacked run reaches disk (a
         complete-but-unacked record would be replayed by recovery and
         diverge from the acked history), nothing is promoted to
         committed, nothing gets acked; recovery finds exactly this
         torn partial frame and truncates it. *)
      let cut = (t.first_pending_frame + 1) / 2 in
      t.writer.Store.w_append (String.sub bytes 0 cut);
      t.writer.Store.w_sync ();
      t.torn_armed <- false;
      t.dead <- true;
      raise Crashed
    end;
    t.writer.Store.w_append bytes;
    let t0 = Obs.Clock.now_ns () in
    t.writer.Store.w_sync ();
    Obs.Hist.add t.hist (Obs.Clock.now_ns () - t0);
    t.n_fsyncs <- t.n_fsyncs + 1;
    t.writer_len <- t.writer_len + String.length bytes;
    List.iter (fun r -> push t r) (List.rev t.pending_recs);
    Buffer.clear t.pending;
    t.pending_recs <- [];
    t.first_pending_frame <- 0;
    Atomic.set t.committed (t.next_seq - 1);
    if t.writer_len >= t.segment_bytes then rotate t
  end

let arm_torn_commit t = locked t @@ fun () -> t.torn_armed <- true
let committed_seq t = Atomic.get t.committed
let base_seq t = locked t @@ fun () -> t.base

let read_from t ~from ~max =
  locked t @@ fun () ->
  if from < t.base then `Too_old t.base
  else begin
    let hi = Atomic.get t.committed in
    let avail = hi - from in
    let n = if avail < 0 then 0 else min avail (if max < 0 then 0 else max) in
    let out = ref [] in
    for i = n - 1 downto 0 do
      out := t.recs.(t.start + (from + i - t.base)) :: !out
    done;
    `Batch (!out, hi)
  end

let truncate_upto t ~seq =
  locked t @@ fun () ->
  let seq = min seq (Atomic.get t.committed) in
  if seq > t.base then begin
    let drop = seq - t.base in
    t.start <- t.start + drop;
    t.count <- t.count - drop;
    t.base <- seq;
    (* A segment covers [first, next_first); delete it once wholly
       covered by [seq].  The active (last) segment always stays. *)
    let rec prune = function
      | (name, _) :: ((_, next_first) :: _ as rest) when next_first <= seq + 1 ->
          t.store.Store.s_delete name;
          prune rest
      | l -> l
    in
    t.segs <- prune t.segs
  end

let fsync_hist t = t.hist
let fsyncs t = locked t @@ fun () -> t.n_fsyncs
let segments t = locked t @@ fun () -> List.length t.segs

let gauges t =
  locked t @@ fun () ->
  [
    ("wal_committed_seq", Atomic.get t.committed);
    ("wal_base_seq", t.base);
    ("wal_records", t.count);
    ("wal_segments", List.length t.segs);
    ("wal_fsyncs", t.n_fsyncs);
    ("wal_fsync_p99_ns", Obs.Hist.percentile t.hist 0.99);
  ]

let close t =
  locked t @@ fun () ->
  if not t.dead then begin
    t.dead <- true;
    t.writer.Store.w_close ()
  end
