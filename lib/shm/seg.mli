(** Segment file lifecycle for one shared-memory connection.

    A segment is an mmap'd regular file holding a header page (magic,
    version, generation stamp, open/closed state, ring index words,
    doorbell flags) and two SPSC ring data areas (client→server and
    server→client), plus two doorbell FIFOs beside it on disk.

    The creator publishes the header with [state = open] last, behind
    a fence; {!attach} validates magic, version, state, and — when
    the caller passes the generation it learned out-of-band — the
    generation stamp, so attaching a dead peer's leftover file fails
    fast with {!Bad_segment} instead of deadlocking on a ring nobody
    serves.  Teardown stamps [closed] before unlinking so a peer
    still holding the mapping observes the close. *)

exception Bad_segment of string

type role = Client | Server
type t

val create : path:string -> ?c2s_cap:int -> ?s2c_cap:int -> unit -> t
(** Create and fully initialize a segment at [path] (O_EXCL — the
    name must be fresh), including both doorbell FIFOs.  Capacities
    are bytes per direction, powers of two (default 64 KiB each).
    The caller is the [Client] end. *)

val attach : path:string -> ?expect_gen:int -> unit -> t
(** Map an existing open segment as the [Server] end.
    @raise Bad_segment on bad magic/version, a closed or half-built
    segment, an undersized file, or a generation mismatch. *)

val path : t -> string
val role : t -> role
val generation : t -> int
val is_open : t -> bool
(** False once either side called {!mark_closed}. *)

val c2s_ring : t -> Ring.t
(** Client→server ring view (client writes, server reads).  Build one
    per side; the view holds per-side cursor state. *)

val s2c_ring : t -> Ring.t
(** Server→client ring view (server writes, client reads). *)

val cli_bell : t -> string
(** FIFO path the client sleeps on (daemon rings it). *)

val srv_bell : t -> string
(** FIFO path the daemon sleeps on (client rings it). *)

val set_client_waiting : t -> bool -> unit
val client_waiting : t -> bool
val set_server_waiting : t -> bool -> unit
val server_waiting : t -> bool

val mark_closed : t -> unit
(** Stamp the header [closed] (visible to a peer that still holds the
    mapping even after the file is unlinked). *)

val detach : t -> unit
(** Close this side's file descriptor (mappings stay valid). *)

val unlink : t -> unit
(** Remove the segment file and both FIFOs from the filesystem. *)

val unlink_path : string -> unit
(** [unlink] by name alone — sweep a segment without attaching it. *)
