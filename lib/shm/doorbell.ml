(* Spin-then-sleep wakeup over a named FIFO.

   The hot path never touches the kernel: a waiter first spins on its
   ready predicate with exponential backoff.  Only when the spin
   budget runs out does it publish a "waiting" flag (a word in the
   shared segment, supplied by the caller as closures), re-check the
   predicate, and block in [select] on the FIFO's read end.  The
   ringer's fast path is a single shared-memory load of that flag —
   it opens and writes the FIFO only when the peer is actually
   asleep, so a saturated ring exchanges messages with no syscalls at
   all.

   Lost-wakeup freedom: the waiter opens its read end *before*
   raising the flag, and re-checks [ready] *after* raising it; the
   ringer publishes its data *before* loading the flag.  Either the
   waiter sees the data on the re-check, or the ringer sees the flag
   and writes a byte that [select] observes.  The FIFO write is
   non-blocking — a full pipe already guarantees a pending wakeup
   (EAGAIN is success), and ENXIO (no reader yet) can only happen
   outside the flagged window, where the select timeout bounds the
   race anyway. *)

type t = {
  path : string;
  mutable rd : Unix.file_descr option;
  mutable wr : Unix.file_descr option;
  drain_buf : bytes;
}

let default_spin = 200

let create ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.mkfifo path 0o600;
  { path; rd = None; wr = None; drain_buf = Bytes.create 64 }

let attach ~path = { path; rd = None; wr = None; drain_buf = Bytes.create 64 }
let path t = t.path

let fd_rd t =
  match t.rd with
  | Some fd -> fd
  | None ->
      let fd = Unix.openfile t.path [ Unix.O_RDONLY; Unix.O_NONBLOCK ] 0 in
      t.rd <- Some fd;
      fd

let drain t =
  match t.rd with
  | None -> ()
  | Some fd ->
      let rec go () =
        match Unix.read fd t.drain_buf 0 (Bytes.length t.drain_buf) with
        | n when n > 0 -> go ()
        | _ -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

let ring t =
  let write fd =
    match Unix.write fd t.drain_buf 0 1 with
    | _ -> true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true (* pipe full: a wakeup is already pending *)
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> false
  in
  match t.wr with
  | Some fd -> if not (write fd) then (Unix.close fd; t.wr <- None)
  | None -> (
      match Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 with
      | fd -> t.wr <- Some fd; if not (write fd) then (Unix.close fd; t.wr <- None)
      | exception Unix.Unix_error ((Unix.ENXIO | Unix.ENOENT), _, _) ->
          (* ENXIO: no reader has the FIFO open, so the peer cannot be
             inside its flagged sleep window; nothing to wake.  ENOENT:
             the peer already tore the connection down and unlinked the
             FIFO — equally nobody to wake. *)
          ())

let wait ?(spin = default_spin) ?(timeout_s = 0.05) t ~announce ~ready =
  if not (ready ()) then begin
    let b = Prims.Backoff.create ~min_wait:32 ~max_wait:1024 () in
    let budget = ref spin in
    while (not (ready ())) && !budget > 0 do
      decr budget;
      Prims.Backoff.once b
    done;
    if not (ready ()) then begin
      let fd = fd_rd t in
      announce true;
      (* Re-check after publishing the flag: the ringer loads the flag
         after publishing its data, so one side must see the other. *)
      if not (ready ()) then begin
        (match Unix.select [ fd ] [] [] timeout_s with
        | [], _, _ -> ()
        | _ -> drain t
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        ()
      end;
      announce false;
      drain t
    end
  end

let close t =
  (match t.rd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  (match t.wr with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.rd <- None;
  t.wr <- None

let unlink t = try Unix.unlink t.path with Unix.Unix_error _ -> ()
