(** Length-prefixed SPSC byte ring over a shared bigarray window.

    One writer process/domain, one reader process/domain.  Messages
    are [u32-BE length ‖ payload] — the service codec's wire-frame
    convention, so a codec-framed buffer enters the ring verbatim —
    and each message is followed in the ring by a 4-byte commit stamp
    (a function of the per-ring sequence number and the length) that
    the writer stores last; stale bytes there make the reader report
    {!pending} = [`Torn] instead of decoding garbage.  Messages wrap
    the power-of-two data area byte-wise at any split point.

    Head/tail indices are monotonic byte counts living in an
    [int]-kind control bigarray (single aligned 8-byte moves, no
    cross-process tearing); each side caches the peer's index and
    rereads shared memory only when the cached value is insufficient. *)

type ctrl = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type data =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val init : ctrl:ctrl -> head_cell:int -> tail_cell:int -> unit
(** Zero the index cells of a freshly created segment (creator only,
    before the segment is published). *)

val create :
  ctrl:ctrl -> head_cell:int -> tail_cell:int -> data:data -> off:int ->
  cap:int -> t
(** Attach a ring view over [data.(off .. off+cap-1)] with its index
    pair in [ctrl].  [cap] must be a power of two > 16.  Each side
    builds its own [t] (per-side cached indices and sequence numbers
    live here, not in shared memory); a given [t] may be used as
    writer, reader, or both ends of the same ring in-process. *)

val capacity : t -> int

val max_payload : t -> int
(** Largest payload a single message can carry: capacity minus the
    length prefix, the commit stamp, and one distinguishing byte. *)

(** {1 Writer side} *)

val try_send : t -> bytes -> pos:int -> len:int -> bool
(** Copy the already-framed message [b.(pos .. pos+len-1)] (its first
    4 bytes must be the BE length prefix of the remaining [len - 4])
    into the ring, append the commit stamp and publish the tail.
    Returns [false] if the ring lacks space (retry after the reader
    drains).  Raises [Invalid_argument] on a malformed frame or one
    that can never fit. *)

val send_space : t -> int
(** Free bytes right now (refreshes the cached head). A message needs
    [len + 4]. *)

(** {1 Reader side} *)

val pending : t -> [ `Empty | `Msg of int | `Torn of string ]
(** What the ring holds: nothing, a complete stamped message of
    [`Msg payload_len], or corruption.  [`Torn] is sticky — the ring
    is unusable once damage is seen.  After [`Msg], consume exactly
    [4 + payload_len] bytes through {!source}, then call
    {!finish_msg}. *)

val source : t -> bytes -> int -> int -> int
(** A [Codec.source]-shaped reader over the current message's
    [length ‖ payload] bytes (copies out of the ring, handling
    wrap). Returns 0 when the message is exhausted.  The closure is
    allocated once per ring, so it can be passed to a streaming
    decoder on the hot path without per-message allocation. *)

val finish_msg : t -> unit
(** Retire the fully consumed message and publish the new head,
    releasing its bytes to the writer. *)

val is_broken : t -> bool

(** {1 Fault injection (writer side, tests only)}

    Parity with [Conn.Faults]: damage the next [n] sends to prove the
    reader reports rather than corrupts. *)

val arm_torn_stamp : t -> int -> unit
(** Flip bits in the commit stamp of the next [n] messages. *)

val arm_truncate : t -> int -> unit
(** Write only the first half of the next [n] messages' payloads
    (never reaching the stamp) yet publish their full extent —
    a mid-frame truncation, as a crashed writer could leave. *)

(** {1 Gauges} *)

val msgs_sent : t -> int
val bytes_sent : t -> int
val msgs_received : t -> int
