(* Shared-memory segment lifecycle for one client↔daemon connection.

   A segment is a regular file, mmap'd by both sides:

     page 0 (4096 B, mapped as an int bigarray — each cell an aligned
             8-byte word so cross-process loads/stores never tear):
       [0]  magic            [1] version
       [2]  generation       [3] state (init → open → closed)
       [4]  c2s capacity     [5] s2c capacity
       [8]  c2s head         [16] c2s tail      (cells 64 B apart so
       [24] s2c head         [32] s2c tail       each index owns a line)
       [40] client-waiting   [48] server-waiting (doorbell flags)
     bytes 4096 …            c2s ring data, then s2c ring data

   The creator (the client) writes the whole header with state=init,
   and flips state to `open` last, behind a fence — an attacher can
   never observe a half-built header.  The generation is a fresh
   random-ish stamp the client also announces out-of-band (over the
   daemon's listen FIFO); the daemon refuses to attach a segment
   whose generation does not match the announcement, so a name reused
   after a crashed peer — or a leftover file from a dead daemon's
   tree — is detected as [Bad_segment], not silently conversed with.
   Teardown stamps state=closed *before* unlinking, so a peer that
   still holds a mapping sees the close even though the name is gone.

   Alongside the file live two doorbell FIFOs, "<path>.cli.bell" (the
   client sleeps on it, the daemon rings) and "<path>.srv.bell" (vice
   versa), created with the segment and unlinked with it. *)

(* 6 bytes of ASCII "KVSHM1" — comfortably inside OCaml's 63-bit int;
   an 8-byte magic would not survive the int bigarray round-trip. *)
let magic = 0x4B5653484D31
let version = 1
let header_bytes = 4096
let header_cells = header_bytes / 8

let state_init = 0
let state_open = 1
let state_closed = 2

(* Header cell indices. *)
let c_magic = 0
let c_version = 1
let c_generation = 2
let c_state = 3
let c_c2s_cap = 4
let c_s2c_cap = 5
let c_c2s_head = 8
let c_c2s_tail = 16
let c_s2c_head = 24
let c_s2c_tail = 32
let c_cli_waiting = 40
let c_srv_waiting = 48

exception Bad_segment of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_segment s)) fmt

type role = Client | Server

type t = {
  path : string;
  role : role;
  fd : Unix.file_descr;
  ctrl : Ring.ctrl;
  data : Ring.data;
  generation : int;
  c2s_cap : int;
  s2c_cap : int;
}

let fence_cell = Atomic.make 0
let fence () = ignore (Atomic.fetch_and_add fence_cell 0)

let gen_counter = Atomic.make 0

let fresh_generation () =
  let t_us = int_of_float (Unix.gettimeofday () *. 1e6) in
  let g =
    (Unix.getpid () lsl 44)
    lxor (t_us land 0xFFF_FFFF_FFFF)
    lxor (Atomic.fetch_and_add gen_counter 1 lsl 20)
  in
  let g = g land max_int in
  if g = 0 then 1 else g

let cli_bell_path path = path ^ ".cli.bell"
let srv_bell_path path = path ^ ".srv.bell"

let map_views fd ~c2s_cap ~s2c_cap =
  let ctrl =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| header_cells |])
  in
  let data =
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.char
         Bigarray.c_layout true
         [| c2s_cap + s2c_cap |])
  in
  (ctrl, data)

let check_cap name cap =
  if cap <= 16 || cap land (cap - 1) <> 0 then
    invalid_arg (Printf.sprintf "Seg.create: %s must be a power of two > 16" name)

let create ~path ?(c2s_cap = 1 lsl 16) ?(s2c_cap = 1 lsl 16) () =
  check_cap "c2s_cap" c2s_cap;
  check_cap "s2c_cap" s2c_cap;
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600
  in
  match
    Unix.ftruncate fd (header_bytes + c2s_cap + s2c_cap);
    map_views fd ~c2s_cap ~s2c_cap
  with
  | ctrl, data ->
      let generation = fresh_generation () in
      Bigarray.Array1.set ctrl c_magic magic;
      Bigarray.Array1.set ctrl c_version version;
      Bigarray.Array1.set ctrl c_generation generation;
      Bigarray.Array1.set ctrl c_state state_init;
      Bigarray.Array1.set ctrl c_c2s_cap c2s_cap;
      Bigarray.Array1.set ctrl c_s2c_cap s2c_cap;
      Bigarray.Array1.set ctrl c_cli_waiting 0;
      Bigarray.Array1.set ctrl c_srv_waiting 0;
      Ring.init ~ctrl ~head_cell:c_c2s_head ~tail_cell:c_c2s_tail;
      Ring.init ~ctrl ~head_cell:c_s2c_head ~tail_cell:c_s2c_tail;
      ignore (Doorbell.create ~path:(cli_bell_path path));
      ignore (Doorbell.create ~path:(srv_bell_path path));
      fence ();
      Bigarray.Array1.set ctrl c_state state_open;
      { path; role = Client; fd; ctrl; data; generation; c2s_cap; s2c_cap }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      raise e

let attach ~path ?expect_gen () =
  let fd =
    match Unix.openfile path [ Unix.O_RDWR ] 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        bad "cannot open %s: %s" path (Unix.error_message e)
  in
  match
    let size = (Unix.fstat fd).Unix.st_size in
    if size < header_bytes then bad "%s: too small for a header" path;
    let ctrl =
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| header_cells |])
    in
    if Bigarray.Array1.get ctrl c_magic <> magic then
      bad "%s: bad magic (not a kvd shm segment)" path;
    if Bigarray.Array1.get ctrl c_version <> version then
      bad "%s: segment version %d, expected %d" path
        (Bigarray.Array1.get ctrl c_version)
        version;
    (match Bigarray.Array1.get ctrl c_state with
    | s when s = state_open -> ()
    | s when s = state_closed -> bad "%s: segment already closed" path
    | _ -> bad "%s: segment not yet open" path);
    let generation = Bigarray.Array1.get ctrl c_generation in
    (match expect_gen with
    | Some g when g <> generation ->
        bad "%s: generation %#x does not match announced %#x (stale peer?)"
          path generation g
    | _ -> ());
    let c2s_cap = Bigarray.Array1.get ctrl c_c2s_cap in
    let s2c_cap = Bigarray.Array1.get ctrl c_s2c_cap in
    check_cap "c2s_cap" c2s_cap;
    check_cap "s2c_cap" s2c_cap;
    if size < header_bytes + c2s_cap + s2c_cap then
      bad "%s: file shorter than its declared rings" path;
    let _, data = map_views fd ~c2s_cap ~s2c_cap in
    { path; role = Server; fd; ctrl; data; generation; c2s_cap; s2c_cap }
  with
  | t -> t
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let path t = t.path
let role t = t.role
let generation t = t.generation
let state t = Bigarray.Array1.get t.ctrl c_state
let is_open t = state t = state_open

let c2s_ring t =
  Ring.create ~ctrl:t.ctrl ~head_cell:c_c2s_head ~tail_cell:c_c2s_tail
    ~data:t.data ~off:0 ~cap:t.c2s_cap

let s2c_ring t =
  Ring.create ~ctrl:t.ctrl ~head_cell:c_s2c_head ~tail_cell:c_s2c_tail
    ~data:t.data ~off:t.c2s_cap ~cap:t.s2c_cap

(* Doorbell flags.  The waiter's [announce] stores behind a fence;
   the ringer's check loads after its own publish (which fenced). *)

let set_waiting t cell b =
  fence ();
  Bigarray.Array1.set t.ctrl cell (if b then 1 else 0);
  fence ()

let set_client_waiting t b = set_waiting t c_cli_waiting b
let set_server_waiting t b = set_waiting t c_srv_waiting b
let client_waiting t = Bigarray.Array1.get t.ctrl c_cli_waiting <> 0
let server_waiting t = Bigarray.Array1.get t.ctrl c_srv_waiting <> 0

let cli_bell t = cli_bell_path t.path
let srv_bell t = srv_bell_path t.path

let mark_closed t =
  fence ();
  Bigarray.Array1.set t.ctrl c_state state_closed;
  fence ()

let detach t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let unlink t =
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  (try Unix.unlink (cli_bell_path t.path) with Unix.Unix_error _ -> ());
  (try Unix.unlink (srv_bell_path t.path) with Unix.Unix_error _ -> ())

let unlink_path path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (try Unix.unlink (cli_bell_path path) with Unix.Unix_error _ -> ());
  (try Unix.unlink (srv_bell_path path) with Unix.Unix_error _ -> ())
