(** Spin-then-sleep wakeup between two processes sharing a segment.

    A doorbell is a named FIFO plus a caller-supplied "waiting" flag
    in shared memory.  The waiter spins briefly on its ready
    predicate, and only if that fails announces itself asleep and
    blocks in [select] on the FIFO; the ringer's fast path is one
    shared-memory load of the flag, writing the FIFO only when the
    peer is actually asleep.  Under load neither side makes a
    syscall.  Wakeups may be spurious; callers re-check their
    predicate in a loop.  All waits are bounded by [timeout_s], so a
    died peer can never strand the waiter. *)

type t

val default_spin : int

val create : path:string -> t
(** Create the FIFO at [path] (mode 0600, replacing any stale one).
    Done by the segment creator for both directions. *)

val attach : path:string -> t
(** Wrap an existing FIFO created by the peer. *)

val path : t -> string

val wait :
  ?spin:int -> ?timeout_s:float -> t ->
  announce:(bool -> unit) -> ready:(unit -> bool) -> unit
(** Wait until [ready ()] looks true or [timeout_s] elapses.
    [announce b] must store the waiting flag [b] into shared memory
    (with a fence); [ready] must load from shared memory.  Returns
    with the flag cleared.  May return spuriously. *)

val fd_rd : t -> Unix.file_descr
(** The FIFO's read end (opened non-blocking on first use) — for
    waiters that multiplex several doorbells through one [select]
    instead of {!wait}. *)

val ring : t -> unit
(** Wake the peer if it announced itself asleep.  Call after
    publishing data *and observing the peer's waiting flag*; cheap
    to call unconditionally only when the peer might sleep.  Never
    blocks, never raises. *)

val drain : t -> unit
(** Discard any pending wakeup bytes (waiter side). *)

val close : t -> unit
(** Close this side's descriptors (keeps the FIFO on disk). *)

val unlink : t -> unit
(** Remove the FIFO from the filesystem (segment owner teardown). *)
