(* SPSC byte ring over a shared (usually mmap'd) bigarray window.

   The ring carries length-prefixed messages — the same [u32-BE length
   ‖ payload] convention as the service codec's wire frames, so a
   codec-framed buffer goes into the ring verbatim — each followed by
   a 4-byte commit stamp written after the message bytes:

     [len:4][payload:len][stamp:4]

   The stamp is a pure function of the per-ring message sequence
   number and the payload length, so the reader can recompute it with
   no shared state beyond the byte stream itself.  Because it is the
   last thing the writer stores before publishing the tail index, any
   prefix-torn write — a writer that died or was cut off partway
   through a message, the only kind of tear a single writer can
   produce — leaves stale bytes where the stamp belongs, and the
   reader reports [`Torn] instead of handing garbage to the decoder.
   (With the publish-last tail discipline a torn message is normally
   invisible anyway: the stamp is the belt-and-braces layer for
   weakly-ordered hardware, for crash-published pages, and for the
   fault injection below, which deliberately publishes damaged
   messages to prove the reader rejects them.)

   Indices are monotonically increasing byte counts (63-bit, they
   never wrap in practice); positions reduce to offsets with a
   power-of-two mask, and messages wrap the data-area boundary
   byte-wise — a message may split anywhere, including inside its
   length prefix or stamp.  Each side caches the other's index and
   refreshes it from shared memory only when the cached value is
   insufficient (the classic SPSC optimization: an uncontended send
   or receive touches only its own line).

   Shared-memory visibility: the control words live in an [int]-kind
   bigarray, so loads and stores compile to single aligned 8-byte
   moves (no tearing), and every publish/consume pair brackets the
   data copies with a full fence (an [Atomic.fetch_and_add] on a
   process-local cell), which is a hardware fence regardless of the
   OCaml memory model's silence on bigarray races. *)

type ctrl = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type data =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let fence_cell = Atomic.make 0
let fence () = ignore (Atomic.fetch_and_add fence_cell 0)

type t = {
  ctrl : ctrl;
  head_cell : int;
  tail_cell : int;
  data : data;
  off : int;  (** data-area base offset within [data] *)
  cap : int;
  mask : int;
  (* Writer-side state (single writer). *)
  mutable cached_head : int;
  mutable wseq : int;
  mutable torn_stamp_armed : int;
  mutable truncate_armed : int;
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  (* Reader-side state (single reader). *)
  mutable cached_tail : int;
  mutable rseq : int;
  mutable broken : string option;
  mutable msg_total : int;  (** bytes of the current message incl stamp *)
  mutable msg_remaining : int;  (** unread [len‖payload] bytes *)
  mutable msg_cursor : int;
  mutable msgs_received : int;
  source : bytes -> int -> int -> int;
}

let init ~ctrl ~head_cell ~tail_cell =
  Bigarray.Array1.set ctrl head_cell 0;
  Bigarray.Array1.set ctrl tail_cell 0

let rec make_source cell buf off len =
  match !cell with
  | None -> 0
  | Some t ->
      let n = min len t.msg_remaining in
      if n = 0 then 0
      else begin
        let pos = t.msg_cursor in
        for i = 0 to n - 1 do
          Bytes.unsafe_set buf (off + i)
            (Bigarray.Array1.unsafe_get t.data (t.off + ((pos + i) land t.mask)))
        done;
        t.msg_cursor <- pos + n;
        t.msg_remaining <- t.msg_remaining - n;
        n
      end

and create ~ctrl ~head_cell ~tail_cell ~data ~off ~cap =
  if cap <= 16 || cap land (cap - 1) <> 0 then
    invalid_arg "Ring.create: capacity must be a power of two > 16";
  if off < 0 || off + cap > Bigarray.Array1.dim data then
    invalid_arg "Ring.create: data window out of bounds";
  let cell = ref None in
  let t =
    {
      ctrl;
      head_cell;
      tail_cell;
      data;
      off;
      cap;
      mask = cap - 1;
      cached_head = Bigarray.Array1.get ctrl head_cell;
      wseq = 0;
      torn_stamp_armed = 0;
      truncate_armed = 0;
      msgs_sent = 0;
      bytes_sent = 0;
      cached_tail = Bigarray.Array1.get ctrl tail_cell;
      rseq = 0;
      broken = None;
      msg_total = 0;
      msg_remaining = 0;
      msg_cursor = 0;
      msgs_received = 0;
      source = make_source cell;
    }
  in
  cell := Some t;
  t

let capacity t = t.cap

(* The largest payload a message can carry: [4 ‖ payload ‖ 4] must
   leave at least one free byte so a full ring is distinguishable. *)
let max_payload t = t.cap - 9

let stamp ~seq ~len = ((seq * 0x9E3779B9) lxor len lxor 0x5EED1) land 0xFFFFFFFF

let set8 t pos v =
  Bigarray.Array1.unsafe_set t.data
    (t.off + (pos land t.mask))
    (Char.unsafe_chr (v land 0xff))

let get8 t pos =
  Char.code (Bigarray.Array1.unsafe_get t.data (t.off + (pos land t.mask)))

let set_u32 t pos v =
  set8 t pos (v lsr 24);
  set8 t (pos + 1) (v lsr 16);
  set8 t (pos + 2) (v lsr 8);
  set8 t (pos + 3) v

let get_u32 t pos =
  (get8 t pos lsl 24)
  lor (get8 t (pos + 1) lsl 16)
  lor (get8 t (pos + 2) lsl 8)
  lor get8 t (pos + 3)

let blit_in t b ~pos ~len ~at =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.data
      (t.off + ((at + i) land t.mask))
      (Bytes.unsafe_get b (pos + i))
  done

(* ------------------------------------------------------------------ *)
(* Writer side. *)

let send_space t =
  let tail = Bigarray.Array1.get t.ctrl t.tail_cell in
  t.cached_head <- Bigarray.Array1.get t.ctrl t.head_cell;
  t.cap - (tail - t.cached_head)

let arm_torn_stamp t n =
  if n < 0 then invalid_arg "Ring.arm_torn_stamp: n < 0";
  t.torn_stamp_armed <- t.torn_stamp_armed + n

let arm_truncate t n =
  if n < 0 then invalid_arg "Ring.arm_truncate: n < 0";
  t.truncate_armed <- t.truncate_armed + n

let try_send t b ~pos ~len =
  if len < 4 then invalid_arg "Ring.try_send: message below its length prefix";
  if pos < 0 || pos + len > Bytes.length b then
    invalid_arg "Ring.try_send: range out of bounds";
  let plen = len - 4 in
  let embedded =
    (Char.code (Bytes.get b pos) lsl 24)
    lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
    lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
    lor Char.code (Bytes.get b (pos + 3))
  in
  if embedded <> plen then
    invalid_arg "Ring.try_send: embedded length prefix disagrees with len";
  let total = len + 4 in
  if total >= t.cap then
    invalid_arg "Ring.try_send: message exceeds ring capacity";
  let tail = Bigarray.Array1.get t.ctrl t.tail_cell in
  let fits =
    t.cap - (tail - t.cached_head) >= total
    || begin
         t.cached_head <- Bigarray.Array1.get t.ctrl t.head_cell;
         t.cap - (tail - t.cached_head) >= total
       end
  in
  if not fits then false
  else begin
    let s = stamp ~seq:t.wseq ~len:plen in
    (if t.truncate_armed > 0 then begin
       (* Torn-write injection: stop partway through the payload and
          never reach the stamp, but publish the full extent — the
          dangerous interleaving a crashed writer on weakly-ordered
          hardware could expose.  The stale bytes where the stamp
          belongs make the reader report [`Torn]. *)
       t.truncate_armed <- t.truncate_armed - 1;
       blit_in t b ~pos ~len:(4 + (plen / 2)) ~at:tail
     end
     else if t.torn_stamp_armed > 0 then begin
       t.torn_stamp_armed <- t.torn_stamp_armed - 1;
       blit_in t b ~pos ~len ~at:tail;
       set_u32 t (tail + len) (s lxor 0xDEAD)
     end
     else begin
       blit_in t b ~pos ~len ~at:tail;
       set_u32 t (tail + len) s
     end);
    fence ();
    Bigarray.Array1.set t.ctrl t.tail_cell (tail + total);
    t.wseq <- t.wseq + 1;
    t.msgs_sent <- t.msgs_sent + 1;
    t.bytes_sent <- t.bytes_sent + total;
    true
  end

(* ------------------------------------------------------------------ *)
(* Reader side. *)

let break t msg =
  t.broken <- Some msg;
  `Torn msg

let pending t =
  match t.broken with
  | Some m -> `Torn m
  | None ->
      if t.msg_remaining > 0 then
        (* A begun message is consumed through [source] to the end
           before the next [pending]. *)
        `Msg (t.msg_total - 8)
      else begin
        let head = Bigarray.Array1.get t.ctrl t.head_cell in
        let avail =
          let a = t.cached_tail - head in
          if a >= 4 then a
          else begin
            t.cached_tail <- Bigarray.Array1.get t.ctrl t.tail_cell;
            fence ();
            t.cached_tail - head
          end
        in
        if avail = 0 then `Empty
        else if avail < 4 then
          (* The writer publishes whole messages; a committed region
             smaller than a length prefix cannot come from this
             protocol. *)
          break t "committed region below a length prefix"
        else begin
          let plen = get_u32 t head in
          if plen > max_payload t then
            break t
              (Printf.sprintf "insane message length %d (max %d)" plen
                 (max_payload t))
          else begin
            let total = 4 + plen + 4 in
            if avail < total then
              (* Not yet fully committed (a peer publishing at finer
                 grain than whole messages); wait. *)
              `Empty
            else begin
              let stored = get_u32 t (head + 4 + plen) in
              let expected = stamp ~seq:t.rseq ~len:plen in
              if stored <> expected then
                break t
                  (Printf.sprintf
                     "commit stamp mismatch on message %d (stored 0x%08x, \
                      expected 0x%08x)"
                     t.rseq stored expected)
              else begin
                t.msg_total <- total;
                t.msg_remaining <- 4 + plen;
                t.msg_cursor <- head;
                `Msg plen
              end
            end
          end
        end
      end

let source t = t.source

let finish_msg t =
  if t.msg_total = 0 then invalid_arg "Ring.finish_msg: no message in progress";
  if t.msg_remaining <> 0 then
    invalid_arg "Ring.finish_msg: message not fully consumed";
  let head = Bigarray.Array1.get t.ctrl t.head_cell in
  fence ();
  Bigarray.Array1.set t.ctrl t.head_cell (head + t.msg_total);
  t.msg_total <- 0;
  t.rseq <- t.rseq + 1;
  t.msgs_received <- t.msgs_received + 1

let msgs_sent t = t.msgs_sent
let bytes_sent t = t.bytes_sent
let msgs_received t = t.msgs_received
let is_broken t = t.broken <> None
