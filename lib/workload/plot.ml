type series = { label : string; points : (float * float) list }

let fmt_ns v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2gs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.3gms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.3gus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

let histogram ?(width = 48) ~title buckets =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if buckets = [] then Buffer.add_string buf "  (no samples)\n"
  else begin
    let total = List.fold_left (fun a (_, _, c) -> a + c) 0 buckets in
    let biggest = List.fold_left (fun a (_, _, c) -> max a c) 0 buckets in
    List.iter
      (fun (lo, hi, c) ->
        let bar = c * width / max 1 biggest in
        (* A non-empty bucket always shows at least one tick, so rare
           outliers (the whole point of a latency histogram) remain
           visible next to a dominant mode. *)
        let bar = if c > 0 && bar = 0 then 1 else bar in
        Buffer.add_string buf
          (Printf.sprintf "  [%9s, %9s) %-*s %d (%.1f%%)\n" (fmt_ns lo)
             (fmt_ns hi) width (String.make bar '#') c
             (100.0 *. float_of_int c /. float_of_int (max 1 total))))
      buckets;
    Buffer.add_string buf (Printf.sprintf "  total: %d samples\n" total)
  end;
  Buffer.contents buf

let render ?(width = 64) ?(height = 16) ?(logy = false) ~title ~ylabel ~xlabel
    series =
  let buf = Buffer.create 4096 in
  let all_pts = List.concat_map (fun s -> s.points) series in
  if all_pts = [] then begin
    Buffer.add_string buf (title ^ ": (no data)\n");
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst all_pts and ys = List.map snd all_pts in
    let fmin l = List.fold_left min infinity l
    and fmax l = List.fold_left max neg_infinity l in
    let xmin = fmin xs and xmax = fmax xs in
    let tr_y y = if logy then log10 (max y 1.0) else y in
    let ymin_raw = if logy then 1.0 else min 0.0 (fmin ys) in
    let ymin = tr_y ymin_raw in
    let ymax =
      let m = tr_y (fmax ys) in
      if m <= ymin then ymin +. 1.0 else m
    in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let col x =
      int_of_float
        (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
    in
    let row y =
      let t = (tr_y y -. ymin) /. (ymax -. ymin) in
      let t = if t < 0.0 then 0.0 else if t > 1.0 then 1.0 else t in
      height - 1 - int_of_float (Float.round (t *. float_of_int (height - 1)))
    in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun i s ->
        let marker = Char.chr (Char.code 'A' + (i mod 26)) in
        List.iter
          (fun (x, y) ->
            let r = row y and c = col x in
            canvas.(r).(c) <-
              (if canvas.(r).(c) = ' ' || canvas.(r).(c) = marker then marker
               else '*'))
          s.points)
      series;
    Buffer.add_string buf (Printf.sprintf "%s\n" title);
    let untr v = if logy then 10.0 ** v else v in
    let ytick r =
      let t = float_of_int (height - 1 - r) /. float_of_int (height - 1) in
      untr (ymin +. (t *. (ymax -. ymin)))
    in
    let fmt_val v =
      if Float.abs v >= 1_000_000.0 then Printf.sprintf "%.1fM" (v /. 1e6)
      else if Float.abs v >= 1_000.0 then Printf.sprintf "%.1fk" (v /. 1e3)
      else if Float.abs v >= 10.0 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.2f" v
    in
    for r = 0 to height - 1 do
      let label =
        if r = 0 || r = height - 1 || r = height / 2 then
          Printf.sprintf "%8s |" (fmt_val (ytick r))
        else Printf.sprintf "%8s |" ""
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf
      (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  %-*s%*s\n" "" (width / 2) (fmt_val xmin)
         (width - (width / 2))
         (fmt_val xmax));
    Buffer.add_string buf
      (Printf.sprintf "%10s(x: %s, y: %s%s)\n" "" xlabel ylabel
         (if logy then ", log scale" else ""));
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%10s%c = %s\n" ""
             (Char.chr (Char.code 'A' + (i mod 26)))
             s.label))
      series;
    Buffer.contents buf
  end
