(** Experiment definitions: one entry per table/figure of the paper's
    evaluation (§6 Figures 8-10, Appendix A Figures 11-16, Table 1).

    Each figure is a list of {!Driver} runs; the same run yields both
    the throughput figure and its companion unreclaimed-objects figure
    (8/9, 11/12, 13/14, 15/16 are printed from one pass, as in the
    paper where both metrics come from the same executions). *)

type scale = {
  label : string;
  threads : int list;  (** thread counts to sweep *)
  stalled : int list;  (** stalled-thread counts for Figure 10a *)
  duration : float;
  prefill : int;  (** for hashmap/bonsai/nmtree *)
  key_range : int;
  list_prefill : int;  (** the O(n) list gets a smaller working set *)
  list_key_range : int;
  repeats : int;  (** runs per data point; the paper averages 5 *)
  dist : [ `Uniform | `Zipf of float ] option;
      (** key distribution override ([--dist]); [None] keeps the
          driver's default uniform draw.  Kept as a spec, not a
          {!Keydist.t}, because the concrete range differs per
          structure (the list's working set is smaller). *)
}

(* One-core-container scale: small enough that the whole suite runs in
   minutes; the paper scale is available behind --paper. *)
let quick =
  {
    label = "quick";
    threads = [ 1; 2; 4 ];
    stalled = [ 0; 1; 2; 4 ];
    duration = 0.5;
    prefill = 10_000;
    key_range = 20_000;
    list_prefill = 500;
    list_key_range = 1_000;
    repeats = 1;
    dist = None;
  }

let paper =
  {
    label = "paper";
    threads = [ 1; 2; 4; 8; 16; 32; 64; 72; 96; 144 ];
    stalled = [ 0; 1; 2; 4; 8; 16; 32; 57; 64 ];
    duration = 10.0;
    prefill = 50_000;
    key_range = 100_000;
    list_prefill = 50_000;
    list_key_range = 100_000;
    repeats = 5;
    dist = None;
  }

(* The scheme line-up of Figures 8/9/11/12 (HP and HE dropped on
   bonsai, as in the paper). *)
let figure8_schemes =
  [
    "Leaky"; "Epoch"; "HP"; "HE"; "IBR"; "Hyaline"; "Hyaline-1"; "Hyaline-S";
    "Hyaline-1S";
  ]

(* The "PowerPC" line-up (Figures 13-16): the Hyaline family running
   over the emulated single-width LL/SC backend of §4.4, next to the
   baselines (whose algorithms never needed a wide CAS). *)
let ppc_schemes =
  [
    "Leaky"; "Epoch"; "HP"; "HE"; "IBR"; "Hyaline(llsc)"; "Hyaline-S(llsc)";
    "Hyaline-1"; "Hyaline-1S";
  ]

(* Figure 10a: robustness.  The paper plots Epoch and basic Hyaline
   exploding, HP/HE/IBR/Hyaline-1S flat, capped Hyaline-S flat until
   slots run out, adaptive Hyaline-S flat throughout. *)
let fig10a_schemes =
  [ "Epoch"; "Hyaline"; "HP"; "HE"; "IBR"; "Hyaline-S"; "Hyaline-1S"; "Crystalline" ]

let params_for (sc : scale) ~(structure : Registry.structure) ~threads
    ~stalled ~mix ~use_trim ~cfg : Driver.params =
  let is_list = structure.Registry.d_name = "list" in
  let key_range = if is_list then sc.list_key_range else sc.key_range in
  {
    Driver.threads;
    stalled;
    duration = sc.duration;
    prefill = (if is_list then sc.list_prefill else sc.prefill);
    key_range;
    mix;
    dist =
      (match sc.dist with
      | None -> None
      | Some `Uniform -> Some (Keydist.uniform ~range:key_range)
      | Some (`Zipf theta) ->
          (* The inverse-CDF table is cached by (theta, range), so
             instantiating per data point costs a hash lookup. *)
          Some (Keydist.zipf ~theta ~range:key_range ()));
    use_trim;
    cfg;
    seed = 2024;
    sample_every = 0.005;
  }

type row = Driver.result

(* Run one throughput/unreclaimed sweep (Figures 8/9, 11/12, 13/14,
   15/16 depending on [mix] and [schemes]). *)
let sweep ~(sc : scale) ~structure_name ~schemes ~mix ~emit =
  let structure = Registry.find_structure structure_name in
  List.iter
    (fun threads ->
      List.iter
        (fun sname ->
          let scheme = Registry.find_scheme sname in
          if Registry.compatible ~structure ~scheme then begin
            let cfg = Smr.Config.paper ~nthreads:threads in
            let p =
              params_for sc ~structure ~threads ~stalled:0 ~mix
                ~use_trim:false ~cfg
            in
            emit (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
          end)
        schemes)
    sc.threads

(* Figure 10a: fixed worker count, sweep stalled threads, hashmap.
   Run capped Hyaline-S and (separately) adaptive Hyaline-S.

   The window is 4x the scale's: the robust schemes' backlog is a
   plateau (one-time pinning of blocks born before the stall, times
   the batch amplification of Theorem 4's (k+1) factor) while the
   non-robust schemes' grows with the operation count — distinguishing
   a plateau from growth needs enough operations past the transient. *)
let robustness ~(sc : scale) ~active ~emit =
  let sc = { sc with duration = sc.duration *. 4.0 } in
  let structure = Registry.find_structure "hashmap" in
  List.iter
    (fun stalled ->
      List.iter
        (fun sname ->
          let scheme = Registry.find_scheme sname in
          let cfg = Smr.Config.paper ~nthreads:(active + stalled) in
          let p =
            params_for sc ~structure ~threads:active ~stalled
              ~mix:Driver.write_heavy ~use_trim:false ~cfg
          in
          emit (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p))
        fig10a_schemes;
      (* adaptive Hyaline-S, small slot cap so adaptation matters *)
      let scheme = Registry.find_scheme "Hyaline-S" in
      let cfg =
        { (Smr.Config.paper ~nthreads:(active + stalled)) with
          Smr.Config.adaptive = true;
          slots = 8;
        }
      in
      let p =
        params_for sc ~structure ~threads:active ~stalled
          ~mix:Driver.write_heavy ~use_trim:false ~cfg
      in
      let r = Driver.run_many ~repeat:sc.repeats ~structure ~scheme p in
      emit { r with Driver.scheme = "Hyaline-S(adapt)" })
    sc.stalled

(* Figure 10b: trimming with a small slot cap (32 in the paper), the
   Hyaline variants with and without trim. *)
let trimming ~(sc : scale) ~emit =
  let structure = Registry.find_structure "hashmap" in
  let hyalines = [ "Hyaline"; "Hyaline-1"; "Hyaline-S"; "Hyaline-1S" ] in
  List.iter
    (fun threads ->
      List.iter
        (fun sname ->
          let scheme = Registry.find_scheme sname in
          List.iter
            (fun use_trim ->
              let cfg =
                { (Smr.Config.paper ~nthreads:threads) with
                  Smr.Config.slots = 32;
                }
              in
              let p =
                params_for sc ~structure ~threads ~stalled:0
                  ~mix:Driver.write_heavy ~use_trim ~cfg
              in
              let r = Driver.run_many ~repeat:sc.repeats ~structure ~scheme p in
              let tag = if use_trim then "+trim" else "" in
              emit { r with Driver.scheme = r.Driver.scheme ^ tag })
            [ false; true ])
        hyalines)
    sc.threads

(* Table 1: qualitative properties, printed from the modules
   themselves so the table cannot drift from the code. *)
let table1 ppf =
  Format.fprintf ppf "%-16s %-8s %-12s %-14s@." "scheme" "robust"
    "transparent" "reclamation";
  let reclam = function
    | "HP" | "HE" -> "O(mn) scan"
    | "Epoch" | "IBR" -> "O(n) scan"
    | "Leaky" -> "none"
    | s when String.length s >= 7 && String.sub s 0 7 = "Hyaline" -> "~O(1)"
    | s when String.length s >= 11 && String.sub s 0 11 = "Crystalline" ->
        "O(k) pass"
    | _ -> "?"
  in
  List.iter
    (fun (s : Registry.scheme) ->
      let module T = (val s.Registry.s_mod : Smr.Tracker.S) in
      Format.fprintf ppf "%-16s %-8b %-12b %-14s@." T.name T.robust
        T.transparent (reclam s.Registry.s_name))
    Registry.schemes;
  (* LFRC does not fit the tracker interface (it is intrusive); its
     row comes from the standalone Smr.Lfrc module, exercised by the
     Table 1 microbenchmarks and test suite. *)
  Format.fprintf ppf "%-16s %-8b %-12s %-14s@." "LFRC" true
    "partially" "O(1), intrusive"

(* ------------------------------------------------------------------ *)
(* Ablations: the design knobs §3.2-§4.3 discuss, each swept in
   isolation on the hash map.  Not paper figures — these quantify the
   trade-offs the paper states qualitatively. *)

let tagged r tag = { r with Driver.scheme = r.Driver.scheme ^ tag }

(* The first measured run of a process pays one-time costs (heap
   growth, page faults); a discarded warm-up run keeps single-knob
   sweeps comparable row to row. *)
let warmup ~(sc : scale) ~structure ~scheme =
  let cfg = Smr.Config.paper ~nthreads:2 in
  let p =
    params_for
      { sc with duration = 0.1 }
      ~structure ~threads:2 ~stalled:0 ~mix:Driver.write_heavy
      ~use_trim:false ~cfg
  in
  ignore (Driver.run ~structure ~scheme p)

(* Batch size: §3.2 likens it to the epoch-increment frequency — large
   batches amortize retire cost but hold more garbage; §6 notes the
   pre-peak gap "can be eliminated by further increasing batch
   sizes". *)
let ablate_batch ~(sc : scale) ~emit =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline" in
  warmup ~sc ~structure ~scheme;
  List.iter
    (fun threads ->
      List.iter
        (fun batch_min ->
          (* k = 8 so the effective batch size max(b, k+1) is the
             swept value, not the 128-slot minimum. *)
          let cfg =
            { (Smr.Config.paper ~nthreads:threads) with
              Smr.Config.batch_min;
              slots = 8;
            }
          in
          let p =
            params_for sc ~structure ~threads ~stalled:0
              ~mix:Driver.write_heavy ~use_trim:false ~cfg
          in
          emit
            (tagged
               (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
               (Printf.sprintf "[b=%d]" batch_min)))
        [ 16; 64; 256; 1024 ])
    sc.threads

(* Slot count: k = 1 is the §3.1 single-list version (maximal Head
   contention); the paper caps k at 128 ~ next_pow2(cores). *)
let ablate_slots ~(sc : scale) ~emit =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline" in
  warmup ~sc ~structure ~scheme;
  List.iter
    (fun threads ->
      List.iter
        (fun slots ->
          let cfg =
            { (Smr.Config.paper ~nthreads:threads) with Smr.Config.slots }
          in
          let p =
            params_for sc ~structure ~threads ~stalled:0
              ~mix:Driver.write_heavy ~use_trim:false ~cfg
          in
          emit
            (tagged
               (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
               (Printf.sprintf "[k=%d]" slots)))
        [ 1; 8; 32; 128 ])
    sc.threads

(* Era frequency (Fig. 5's Freq): how often allocation advances the
   era clock.  Rare advances -> coarse eras -> more batches pinned by
   a stalled slot (Theorem 4's bound is proportional to Freq). *)
let ablate_freq ~(sc : scale) ~emit =
  (* Longer window and smaller prefill: the freq-dependent term of
     Theorem 4's bound must emerge from under the one-time pinning of
     pre-stall blocks. *)
  let sc = { sc with duration = sc.duration *. 4.0; prefill = 2_000 } in
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline-S" in
  warmup ~sc ~structure ~scheme;
  List.iter
    (fun epoch_freq ->
      let threads = List.hd (List.rev sc.threads) in
      let cfg =
        { (Smr.Config.paper ~nthreads:(threads + 1)) with
          Smr.Config.epoch_freq;
        }
      in
      let p =
        params_for sc ~structure ~threads ~stalled:1 ~mix:Driver.write_heavy
          ~use_trim:false ~cfg
      in
      emit
        (tagged
           (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
           (Printf.sprintf "[freq=%d]" epoch_freq)))
    [ 10; 150; 1000; 10_000 ]

(* ------------------------------------------------------------------ *)
(* Reclamation lag (observability extension, not a paper figure): the
   retire→free latency distribution per scheme, with and without
   stalled readers.  This is the distributional view of Figure 10a: a
   stalled reader does not merely grow a non-robust scheme's garbage
   count, it stretches the lag tail to the whole measurement window
   (pinned blocks free only at the end-of-run flush), while robust
   schemes keep the tail bounded.

   No prefill: the stalled reader publishes its reservation before the
   workers start, so prefilled blocks are all born before it — and one
   pre-stall node in a batch drags the whole batch's min-birth below
   the stalled slot's access era, defeating the era skip and pinning
   all of it (the one-time transient §6 notes for Figure 10a).  In a
   short window that transient swamps the steady state.  Starting
   empty, every block is born after the stall, which is exactly the
   regime Theorem 4 bounds: robust schemes' lag stays flat, and the
   Epoch/basic-Hyaline tail stretches to the window. *)

type lag_row = { l_result : Driver.result; l_recorder : Obs.Recorder.t }

let lag_schemes = fig10a_schemes

let reclamation_lag ~(sc : scale) ~structure_name ?(schemes = lag_schemes)
    ~stalled_counts ~emit () =
  let structure = Registry.find_structure structure_name in
  let threads = List.fold_left max 1 sc.threads in
  List.iter
    (fun stalled ->
      List.iter
        (fun sname ->
          let scheme = Registry.find_scheme sname in
          if Registry.compatible ~structure ~scheme then begin
            let total = threads + stalled in
            (* Latency-oriented scheme parameters, not the paper's
               throughput-oriented ones: a block's lag is bounded below
               by how long its batch takes to fill and how stale the
               era clock runs, so the figure-8 settings (129-node
               batches, era per 150 allocs) would put a ~100x floor
               under every Hyaline distribution and amplify each
               era-straddling node into a whole pinned batch. *)
            let cfg =
              { Smr.Config.default with Smr.Config.nthreads = total }
            in
            let recorder = Obs.Recorder.create ~nthreads:total () in
            let p =
              {
                (params_for sc ~structure ~threads ~stalled
                   ~mix:Driver.write_heavy ~use_trim:false ~cfg)
                with
                Driver.prefill = 0;
              }
            in
            let r =
              Driver.run_many ~recorder ~repeat:sc.repeats ~structure ~scheme
                p
            in
            emit { l_result = r; l_recorder = recorder }
          end)
        schemes)
    stalled_counts

(* Spurious SC failure rate of the emulated LL/SC backend (§4.4): how
   much weak-CAS retrying costs the llsc port. *)
let ablate_spurious ~(sc : scale) ~emit =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline(llsc)" in
  warmup ~sc ~structure ~scheme;
  List.iter
    (fun threads ->
      List.iter
        (fun rate ->
          Hyaline_core.Llsc_head.spurious_every := rate;
          Fun.protect
            ~finally:(fun () -> Hyaline_core.Llsc_head.spurious_every := 0)
            (fun () ->
              let cfg = Smr.Config.paper ~nthreads:threads in
              let p =
                params_for sc ~structure ~threads ~stalled:0
                  ~mix:Driver.write_heavy ~use_trim:false ~cfg
              in
              emit
                (tagged
                   (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
                   (if rate = 0 then "[sc-fail=none]"
                    else Printf.sprintf "[sc-fail=1/%d]" rate))))
        [ 0; 16; 4; 2 ])
    sc.threads

(* Key skew (extension, not a paper figure): Zipfian draws concentrate
   contention and retirement on hot keys; compares how the schemes
   cope with a skewed update stream. *)
let ablate_skew ~(sc : scale) ~emit =
  let structure = Registry.find_structure "hashmap" in
  List.iter
    (fun sname ->
      let scheme = Registry.find_scheme sname in
      warmup ~sc ~structure ~scheme;
      List.iter
        (fun dist ->
          let threads = List.hd (List.rev sc.threads) in
          let cfg = Smr.Config.paper ~nthreads:threads in
          let p =
            {
              (params_for sc ~structure ~threads ~stalled:0
                 ~mix:Driver.write_heavy ~use_trim:false ~cfg)
              with
              Driver.dist = dist;
            }
          in
          let label =
            match dist with
            | None -> "[uniform]"
            | Some d -> "[" ^ Keydist.describe d ^ "]"
          in
          emit
            (tagged
               (Driver.run_many ~repeat:sc.repeats ~structure ~scheme p)
               label))
        [
          None;
          Some (Keydist.zipf ~theta:0.99 ~range:sc.key_range ());
          Some (Keydist.zipf ~theta:1.3 ~range:sc.key_range ());
        ])
    [ "Epoch"; "Hyaline"; "Hyaline-1"; "Hyaline-S" ]
