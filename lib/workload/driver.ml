type mix = { insert_pct : int; delete_pct : int; put_pct : int }

let write_heavy = { insert_pct = 50; delete_pct = 50; put_pct = 0 }
(* The paper's "90% get, 10% put": the write share is split between
   inserts and deletes so it generates reclamation traffic in every
   structure (in-place value updates retire nothing). *)
let read_mostly = { insert_pct = 5; delete_pct = 5; put_pct = 0 }

type params = {
  threads : int;
  stalled : int;
  duration : float;
  prefill : int;
  key_range : int;
  mix : mix;
  dist : Keydist.t option;
  use_trim : bool;
  cfg : Smr.Config.t;
  seed : int;
  sample_every : float;
}

let default_params =
  {
    threads = 2;
    stalled = 0;
    duration = 1.0;
    prefill = 10_000;
    key_range = 20_000;
    mix = write_heavy;
    dist = None;
    use_trim = false;
    cfg = Smr.Config.paper ~nthreads:2;
    seed = 2024;
    sample_every = 0.005;
  }

let paper_params =
  {
    default_params with
    duration = 10.0;
    prefill = 50_000;
    key_range = 100_000;
  }

type result = {
  scheme : string;
  structure : string;
  threads : int;
  stalled : int;
  ops : int;
  duration : float;
  throughput : float;
  avg_unreclaimed : float;
  max_unreclaimed : int;
  retires : int;
  frees : int;
  samples : int;
}

let pp_result_header ppf () =
  Format.fprintf ppf "%-16s %-8s %4s %4s %12s %10s %14s %12s@." "scheme"
    "structure" "thr" "stl" "ops" "Mops/s" "avg-unreclaim" "max-unreclaim"

let pp_result ppf r =
  Format.fprintf ppf "%-16s %-8s %4d %4d %12d %10.3f %14.1f %12d@." r.scheme
    r.structure r.threads r.stalled r.ops r.throughput r.avg_unreclaimed
    r.max_unreclaimed

let now () = Unix.gettimeofday ()

let run ?recorder ~(structure : Registry.structure)
    ~(scheme : Registry.scheme) (p : params) =
  if not (Registry.compatible ~structure ~scheme) then
    invalid_arg
      (Printf.sprintf "%s is not run on %s (per the paper's evaluation)"
         scheme.Registry.s_name structure.Registry.d_name);
  let scheme =
    (* Instrumented runs swap in the probe-firing wrapper; [None]
       leaves the scheme module physically untouched. *)
    match recorder with
    | None -> scheme
    | Some r ->
        {
          scheme with
          Registry.s_mod =
            Smr.Instrument.wrap (Obs.Recorder.probe r) scheme.Registry.s_mod;
        }
  in
  let module M = (val Registry.make_map structure scheme : Dstruct.Map_intf.S)
  in
  let total_threads = p.threads + p.stalled in
  let cfg = { p.cfg with Smr.Config.nthreads = max 1 total_threads } in
  let m = M.create ~cfg () in
  if p.prefill * 2 > p.key_range then
    invalid_arg "Driver.run: prefill must be at most half the key range";
  (* Prefill from tid 0, trim-chained so limbo does not balloon. *)
  let rng = Prims.Rng.create ~seed:p.seed in
  M.enter m ~tid:0;
  let filled = ref 0 in
  while !filled < p.prefill do
    let k = Prims.Rng.below rng p.key_range in
    if M.insert m ~tid:0 k k then incr filled;
    M.trim m ~tid:0
  done;
  M.leave m ~tid:0;
  let stop = Atomic.make false in
  let started = Atomic.make 0 in
  let ops_of = Array.make (max 1 p.threads) 0 in
  let draw_key rng =
    match p.dist with
    | None -> Prims.Rng.below rng p.key_range
    | Some d -> Keydist.draw d rng
  in
  let worker tid () =
    let rng = Prims.Rng.create ~seed:(p.seed + (7919 * (tid + 1))) in
    Atomic.incr started;
    let ops = ref 0 in
    if p.use_trim then M.enter m ~tid;
    while not (Atomic.get stop) do
      let k = draw_key rng in
      let pct = Prims.Rng.below rng 100 in
      if not p.use_trim then M.enter m ~tid;
      (if pct < p.mix.insert_pct then ignore (M.insert m ~tid k k)
       else if pct < p.mix.insert_pct + p.mix.delete_pct then
         ignore (M.remove m ~tid k)
       else if pct < p.mix.insert_pct + p.mix.delete_pct + p.mix.put_pct then
         ignore (M.put m ~tid k k)
       else ignore (M.get m ~tid k));
      if p.use_trim then M.trim m ~tid else M.leave m ~tid;
      incr ops
    done;
    if p.use_trim then M.leave m ~tid;
    ops_of.(tid) <- !ops
  in
  (* A stalled thread enters, performs one protected read, then parks
     inside its bracket until the window closes. *)
  let stalled_worker tid () =
    let rng = Prims.Rng.create ~seed:(p.seed + (104729 * (tid + 1))) in
    M.enter m ~tid;
    ignore (M.get m ~tid (Prims.Rng.below rng p.key_range));
    Atomic.incr started;
    while not (Atomic.get stop) do
      Domain.cpu_relax ()
    done;
    M.leave m ~tid
  in
  let stats = M.stats m in
  let domains =
    List.init p.threads (fun tid -> Domain.spawn (worker tid))
    @ List.init p.stalled (fun i ->
          Domain.spawn (stalled_worker (p.threads + i)))
  in
  (* Wait for every thread to be on CPU before opening the window. *)
  while Atomic.get started < total_threads do
    Domain.cpu_relax ()
  done;
  let t0 = now () in
  let deadline = t0 +. p.duration in
  let sum_unreclaimed = ref 0.0 in
  let max_unreclaimed = ref 0 in
  let samples = ref 0 in
  while now () < deadline do
    Unix.sleepf p.sample_every;
    (* One consistent snapshot per tick: counters ordered so the
       backlog can never read negative (see Smr.Stats). *)
    let s = Smr.Stats.snapshot stats in
    let u = Smr.Stats.unreclaimed_of s in
    sum_unreclaimed := !sum_unreclaimed +. float_of_int u;
    if u > !max_unreclaimed then max_unreclaimed := u;
    (match recorder with
    | None -> ()
    | Some r ->
        Obs.Recorder.set_gauge r ~name:"unreclaimed" u;
        List.iter (fun (name, v) -> Obs.Recorder.set_gauge r ~name v)
          (M.gauges m));
    incr samples
  done;
  Atomic.set stop true;
  let t1 = now () in
  List.iter Domain.join domains;
  for tid = 0 to total_threads - 1 do
    M.flush m ~tid
  done;
  let ops = Array.fold_left ( + ) 0 ops_of in
  let duration = t1 -. t0 in
  let s = Smr.Stats.snapshot stats in
  {
    scheme = scheme.Registry.s_name;
    structure = structure.Registry.d_name;
    threads = p.threads;
    stalled = p.stalled;
    ops;
    duration;
    throughput = float_of_int ops /. duration /. 1e6;
    avg_unreclaimed =
      (if !samples = 0 then 0.0
       else !sum_unreclaimed /. float_of_int !samples);
    max_unreclaimed = !max_unreclaimed;
    retires = s.Smr.Stats.retires;
    frees = s.Smr.Stats.frees;
    samples = !samples;
  }

let run_many ?recorder ~repeat ~structure ~scheme p =
  if repeat <= 0 then invalid_arg "Driver.run_many: repeat <= 0";
  let runs =
    List.init repeat (fun i ->
        run ?recorder ~structure ~scheme { p with seed = p.seed + (i * 7717) })
  in
  let first = List.hd runs in
  let fsum f = List.fold_left (fun a r -> a +. f r) 0.0 runs in
  let isum f = List.fold_left (fun a r -> a + f r) 0 runs in
  let imax f = List.fold_left (fun a r -> max a (f r)) min_int runs in
  let ops = isum (fun r -> r.ops) in
  let duration = fsum (fun r -> r.duration) in
  {
    first with
    ops;
    duration;
    throughput = float_of_int ops /. duration /. 1e6;
    avg_unreclaimed =
      fsum (fun r -> r.avg_unreclaimed) /. float_of_int repeat;
    max_unreclaimed = imax (fun r -> r.max_unreclaimed);
    retires = isum (fun r -> r.retires);
    frees = isum (fun r -> r.frees);
    samples = isum (fun r -> r.samples);
  }
