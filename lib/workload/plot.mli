(** Terminal line charts for the figure harness.

    The paper's results are figures, not tables; this renders each
    sweep as a multi-series ASCII chart (one marker letter per scheme)
    so the regenerated "figure" is visually comparable to the paper's
    — who is on top, where lines cross, what explodes.  Pure string
    output, deterministic, unit-testable. *)

type series = { label : string; points : (float * float) list }
(** One scheme's line: (x, y) pairs, e.g. (threads, Mops/s). *)

val fmt_ns : int -> string
(** Human-readable duration: ["840ns"], ["3.2us"], ["1.5ms"],
    ["2.1s"]. *)

val histogram : ?width:int -> title:string -> (int * int * int) list -> string
(** [histogram ~title buckets] renders [(lo, hi, count)] buckets (as
    produced by {!Obs.Hist.buckets}, values in nanoseconds) as
    horizontal ['#'] bars scaled to the fullest bucket ([width] chars,
    default 48); non-empty buckets always show at least one tick.
    Newline-terminated. *)

val render :
  ?width:int ->
  ?height:int ->
  ?logy:bool ->
  title:string ->
  ylabel:string ->
  xlabel:string ->
  series list ->
  string
(** [render ~title ~ylabel ~xlabel series] draws all series on one
    canvas ([width] x [height] plot area, default 64 x 16), assigning
    marker letters [A], [B], ... in order; colliding points print
    ['*'].  [logy] uses a log10 y-axis (for the unreclaimed-objects
    figures whose paper versions are log-scale).  Returns the chart
    with an axis, tick labels and a legend, newline-terminated. *)
