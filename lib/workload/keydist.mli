(** Key distributions for the workload driver.

    The paper draws keys uniformly (§6); real caches and indexes are
    skewed, and skew concentrates both contention and retirement
    traffic on a few hot nodes — a regime worth measuring as an
    extension (the [ablate-skew] experiment).  The Zipfian sampler
    uses an exact inverse-CDF table: O(range) setup, O(log range) per
    draw, deterministic given the generator. *)

type t

val uniform : range:int -> t
(** Uniform over [\[0, range)]. *)

val zipf : ?theta:float -> range:int -> unit -> t
(** Zipfian with exponent [theta] (default 0.99, the YCSB choice):
    rank-[r] key drawn with probability proportional to
    [1/(r+1)^theta].  The O(range) inverse-CDF table is built once per
    distinct [(theta, range)] and shared (thread-safe; the table is
    immutable), so per-worker construction is cheap.
    @raise Invalid_argument if [theta < 0.] or [range <= 0]. *)

val zipf_cache_builds : unit -> int
(** How many distinct inverse-CDF tables have ever been built —
    repeated {!zipf} calls with identical parameters do not raise it
    (observable cache effectiveness; used by tests). *)

val draw : t -> Prims.Rng.t -> int
(** Sample a key. *)

val range : t -> int

val describe : t -> string
(** ["uniform"] or ["zipf(0.99)"], for row labels. *)
