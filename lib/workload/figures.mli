(** Experiment definitions — one entry per table/figure of the paper's
    evaluation (§6 Figures 8-10, Appendix A Figures 11-16, Table 1).

    Both front-ends ([bin/experiments.exe] and [bench/main.exe]) drive
    figures through this module, so the experiment definitions cannot
    drift between them. *)

type scale = {
  label : string;
  threads : int list;
  stalled : int list;
  duration : float;
  prefill : int;
  key_range : int;
  list_prefill : int;
      (** the O(n)-per-op list gets a smaller working set *)
  list_key_range : int;
  repeats : int;  (** runs averaged per data point (paper: 5) *)
  dist : [ `Uniform | `Zipf of float ] option;
      (** key-distribution override for every run of the sweep
          ([--dist] on the CLI); [None] = the driver's uniform
          default.  A spec rather than a {!Keydist.t} because the
          concrete key range differs per structure. *)
}

val quick : scale
(** Scaled to a small/one-core machine; minutes for the whole suite. *)

val paper : scale
(** The paper's §6 parameters (50k prefill, 10 s windows, thread
    sweep up to 144).  Very slow off the paper's 72-core testbed. *)

val figure8_schemes : string list
(** Scheme line-up of Figures 8/9/11/12. *)

val ppc_schemes : string list
(** Line-up for the Appendix "PowerPC" figures 13-16: the Hyaline
    family over the emulated LL/SC backend (§4.4) next to the
    baselines. *)

val fig10a_schemes : string list

val params_for :
  scale ->
  structure:Registry.structure ->
  threads:int ->
  stalled:int ->
  mix:Driver.mix ->
  use_trim:bool ->
  cfg:Smr.Config.t ->
  Driver.params

type row = Driver.result

val sweep :
  sc:scale ->
  structure_name:string ->
  schemes:string list ->
  mix:Driver.mix ->
  emit:(row -> unit) ->
  unit
(** One throughput/unreclaimed sweep: every scheme at every thread
    count (Figures 8/9, 11/12, 13/14, 15/16 depending on [mix] and
    [schemes]). *)

val robustness : sc:scale -> active:int -> emit:(row -> unit) -> unit
(** Figure 10a: [active] workers plus a sweep of stalled threads on
    the hash map, including capped and adaptive Hyaline-S. *)

val trimming : sc:scale -> emit:(row -> unit) -> unit
(** Figure 10b: the Hyaline variants, 32 slots, with and without
    [trim]-chained operations. *)

val table1 : Format.formatter -> unit
(** Table 1's qualitative columns, printed from the scheme modules
    themselves. *)

(** {2 Reclamation lag (observability extension)} *)

type lag_row = { l_result : Driver.result; l_recorder : Obs.Recorder.t }
(** One instrumented data point: the usual result row plus the
    recorder that captured it (lag histogram, event totals, gauges). *)

val lag_schemes : string list
(** Default line-up for {!reclamation_lag} (the Figure 10a schemes:
    the robustness contrast is where the lag distributions differ). *)

val reclamation_lag :
  sc:scale ->
  structure_name:string ->
  ?schemes:string list ->
  stalled_counts:int list ->
  emit:(lag_row -> unit) ->
  unit ->
  unit
(** Run every compatible scheme at the scale's largest thread count,
    once per entry of [stalled_counts], with a fresh
    {!Obs.Recorder.t} wired through {!Driver.run_many} — the
    retire→free latency distribution per (scheme × stall level). *)

(** {2 Ablations}

    Not paper figures: each sweeps one design knob the paper discusses
    qualitatively (§3.2-§4.4), on the hash map.  Row scheme names are
    tagged with the knob value, e.g. ["Hyaline[b=256]"]. *)

val ablate_batch : sc:scale -> emit:(row -> unit) -> unit
(** Hyaline batch size 16..1024: retire amortization vs held garbage. *)

val ablate_slots : sc:scale -> emit:(row -> unit) -> unit
(** Hyaline slot count k = 1 (the §3.1 single list) .. 128. *)

val ablate_freq : sc:scale -> emit:(row -> unit) -> unit
(** Hyaline-S era frequency under one stalled thread: Theorem 4's
    bound grows with [Freq]. *)

val ablate_spurious : sc:scale -> emit:(row -> unit) -> unit
(** Injected SC failure rate of the LL/SC backend (§4.4). *)

val ablate_skew : sc:scale -> emit:(row -> unit) -> unit
(** Extension: uniform vs Zipfian key draws — skew concentrates
    contention and retirement on hot nodes. *)
