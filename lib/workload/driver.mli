(** The benchmark driver: one call = one data point of a paper figure.

    Reproduces the measurement loop of §6: prefill the structure with
    [prefill] elements, then run [threads] workers for [duration]
    seconds, each repeatedly drawing a uniform key from
    [\[0, key_range)] and performing an operation drawn from [mix];
    optionally park [stalled] additional threads mid-bracket (the
    Figure 10a robustness scenario) and optionally chain operations
    with [trim] instead of re-entering (Figure 10b).  A sampler thread
    concurrently records the number of retired-but-not-freed blocks —
    the paper's second metric (Figures 9/12/14/16). *)

type mix = {
  insert_pct : int;  (** percent of operations that are inserts *)
  delete_pct : int;  (** percent that are deletes *)
  put_pct : int;  (** percent that are puts; the rest are gets *)
}

val write_heavy : mix
(** 50% insert / 50% delete — §6's main workload. *)

val read_mostly : mix
(** 90% get / 10% put — the Appendix A workload. *)

type params = {
  threads : int;
  stalled : int;
  duration : float;  (** seconds *)
  prefill : int;
  key_range : int;
  mix : mix;
  dist : Keydist.t option;
      (** key distribution for worker draws; [None] = uniform over
          [key_range].  Prefill is always uniform. *)
  use_trim : bool;
  cfg : Smr.Config.t;  (** scheme parameters; [nthreads] is overridden *)
  seed : int;
  sample_every : float;  (** sampler period, seconds *)
}

val default_params : params
(** Laptop-scale defaults: 10 000 prefill over a 20 000-key range,
    1 s duration, paper's scheme parameters. *)

val paper_params : params
(** The paper's §6 settings: 50 000 prefill, 100 000-key range, 10 s
    duration.  Slow on one core. *)

type result = {
  scheme : string;
  structure : string;
  threads : int;
  stalled : int;
  ops : int;  (** completed operations *)
  duration : float;  (** measured wall time *)
  throughput : float;  (** M ops/s *)
  avg_unreclaimed : float;  (** mean retired-not-freed over samples *)
  max_unreclaimed : int;
  retires : int;
  frees : int;
  samples : int;
}

val pp_result_header : Format.formatter -> unit -> unit
val pp_result : Format.formatter -> result -> unit

val run :
  ?recorder:Obs.Recorder.t ->
  structure:Registry.structure ->
  scheme:Registry.scheme ->
  params ->
  result
(** Execute one data point.  Spawns [threads + stalled] domains plus a
    sampler; joins everything before returning (stalled threads are
    released at the end of the measurement window).

    With [?recorder], the scheme runs wrapped in
    {!Smr.Instrument.wrap} — every alloc/retire/free/enter/leave/trim
    lands in the recorder (including the retire→free lag histogram),
    and each sampler tick refreshes the recorder's gauges from the
    structure's {!Dstruct.Map_intf.S.gauges} plus an [unreclaimed]
    gauge.  Create the recorder with [nthreads >= threads + stalled]
    so no per-thread ring is missing.  Without it, nothing is
    instrumented and nothing slows down. *)

val run_many :
  ?recorder:Obs.Recorder.t ->
  repeat:int ->
  structure:Registry.structure ->
  scheme:Registry.scheme ->
  params ->
  result
(** [run_many ~repeat ...] executes the data point [repeat] times (the
    paper runs each 5 times) and reports the aggregate: summed ops over
    summed wall time, mean of the per-run unreclaimed averages, max of
    maxima. *)
