(** The (scheme x structure) registry behind the benchmark harness:
    every reclamation scheme the paper compares in §6 and every
    benchmark structure, addressable by name. *)

type scheme = {
  s_name : string;
  s_mod : Smr.Tracker.packed;
  robust : bool;
  pointer_grained : bool;
      (** HP-style per-pointer protection; such schemes are not run on
          the Bonsai tree, as in the paper. *)
}

val schemes : scheme list

type structure = {
  d_name : string;
  d_mod : (module Dstruct.Map_intf.MAKER);
  hp_compatible : bool;
}

val structures : structure list

val find_scheme : string -> scheme
(** Case- and punctuation-insensitive lookup (["hyaline1s"] and
    ["Hyaline-1S"] are the same scheme), with the alias ["ebr"] for
    ["Epoch"].  @raise Invalid_argument if unknown. *)

val with_backend : scheme -> backend:string -> scheme
(** [with_backend s ~backend] is the scheme implementing [s]'s
    algorithm over the given head backend (["dwcas"], ["llsc"],
    ["packed"]; ["default"] strips any suffix), e.g. ["Hyaline-S"]
    with [~backend:"packed"] is ["Hyaline-S(packed)"].  Schemes with
    no such variant — the non-Hyaline baselines, Hyaline-1 under
    [llsc] — are returned unchanged, so mapping a whole sweep list
    stays total. *)

val scheme_with_backend : string -> backend:string -> string
(** {!with_backend} on scheme names, for CLI sweep lists.
    @raise Invalid_argument if the base name is unknown. *)

val find_structure : string -> structure
(** @raise Invalid_argument if unknown. *)

val compatible : structure:structure -> scheme:scheme -> bool
(** Whether the paper's evaluation runs this pair. *)

val make_map : structure -> scheme -> (module Dstruct.Map_intf.S)
(** Instantiate the benchmark map for a pair. *)
