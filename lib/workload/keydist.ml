type t =
  | Uniform of int
  | Zipf of { range : int; theta : float; cdf : float array }

let uniform ~range =
  if range <= 0 then invalid_arg "Keydist.uniform: range <= 0";
  Uniform range

(* The inverse-CDF table costs O(range) to build but is a pure
   function of (theta, range), so identical distributions — every
   worker of a sweep point, every shard of a service run — share one
   table instead of rebuilding it.  Tables are immutable after
   publication; the lock covers only the (rare) build-or-lookup. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_cache_lock = Mutex.create ()
let zipf_builds = ref 0

let build_zipf_cdf ~theta ~range =
  let cdf = Array.make range 0.0 in
  let acc = ref 0.0 in
  for r = 0 to range - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to range - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  cdf

let zipf ?(theta = 0.99) ~range () =
  if range <= 0 then invalid_arg "Keydist.zipf: range <= 0";
  if theta < 0.0 then invalid_arg "Keydist.zipf: theta < 0";
  let key = (range, theta) in
  Mutex.lock zipf_cache_lock;
  let cdf =
    match Hashtbl.find_opt zipf_cache key with
    | Some cdf -> cdf
    | None ->
        let cdf = build_zipf_cdf ~theta ~range in
        incr zipf_builds;
        Hashtbl.add zipf_cache key cdf;
        cdf
  in
  Mutex.unlock zipf_cache_lock;
  Zipf { range; theta; cdf }

let zipf_cache_builds () =
  Mutex.lock zipf_cache_lock;
  let n = !zipf_builds in
  Mutex.unlock zipf_cache_lock;
  n

let draw t rng =
  match t with
  | Uniform n -> Prims.Rng.below rng n
  | Zipf { cdf; range; _ } ->
      let u = Prims.Rng.float rng in
      (* First index with cdf >= u. *)
      let lo = ref 0 and hi = ref (range - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo

let range = function Uniform n -> n | Zipf { range; _ } -> range

let describe = function
  | Uniform _ -> "uniform"
  | Zipf { theta; _ } -> Printf.sprintf "zipf(%.2f)" theta
