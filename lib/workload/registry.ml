(** The (scheme x structure) registry behind the benchmark harness:
    every reclamation scheme the paper compares (§6) and every
    benchmark structure, addressable by name. *)

type scheme = {
  s_name : string;
  s_mod : Smr.Tracker.packed;
  robust : bool;
  (* HP-style per-pointer protection cannot cover Bonsai's snapshot
     traversals; the paper omits HP and HE on that benchmark. *)
  pointer_grained : bool;
}

let schemes : scheme list =
  [
    { s_name = "Leaky"; s_mod = (module Smr.Leaky); robust = false; pointer_grained = false };
    { s_name = "Epoch"; s_mod = (module Smr.Ebr); robust = false; pointer_grained = false };
    { s_name = "HP"; s_mod = (module Smr.Hp); robust = true; pointer_grained = true };
    { s_name = "HE"; s_mod = (module Smr.He); robust = true; pointer_grained = true };
    { s_name = "IBR"; s_mod = (module Smr.Ibr); robust = true; pointer_grained = false };
    { s_name = "Hyaline"; s_mod = (module Hyaline_core.Hyaline); robust = false; pointer_grained = false };
    { s_name = "Hyaline-1"; s_mod = (module Hyaline_core.Hyaline1); robust = false; pointer_grained = false };
    { s_name = "Hyaline-S"; s_mod = (module Hyaline_core.Hyaline_s); robust = true; pointer_grained = false };
    { s_name = "Hyaline-1S"; s_mod = (module Hyaline_core.Hyaline1s); robust = true; pointer_grained = false };
    {
      s_name = "Hyaline(llsc)";
      s_mod = (module Hyaline_core.Hyaline.Llsc);
      robust = false;
      pointer_grained = false;
    };
    {
      s_name = "Hyaline-S(llsc)";
      s_mod = (module Hyaline_core.Hyaline_s.Llsc);
      robust = true;
      pointer_grained = false;
    };
    {
      s_name = "Hyaline(packed)";
      s_mod = (module Hyaline_core.Hyaline.Packed);
      robust = false;
      pointer_grained = false;
    };
    {
      s_name = "Hyaline-S(packed)";
      s_mod = (module Hyaline_core.Hyaline_s.Packed);
      robust = true;
      pointer_grained = false;
    };
    {
      s_name = "Hyaline-1(packed)";
      s_mod = (module Hyaline_core.Hyaline1.Packed);
      robust = false;
      pointer_grained = false;
    };
    {
      s_name = "Hyaline-1S(packed)";
      s_mod = (module Hyaline_core.Hyaline1s.Packed);
      robust = true;
      pointer_grained = false;
    };
    {
      s_name = "Crystalline";
      s_mod = (module Hyaline_core.Crystalline);
      robust = true;
      pointer_grained = false;
    };
    {
      s_name = "Crystalline(packed)";
      s_mod = (module Hyaline_core.Crystalline.Packed);
      robust = true;
      pointer_grained = false;
    };
  ]

type structure = {
  d_name : string;
  d_mod : (module Dstruct.Map_intf.MAKER);
  hp_compatible : bool;
}

let structures : structure list =
  [
    { d_name = "list"; d_mod = (module Dstruct.Harris_list.Make); hp_compatible = true };
    { d_name = "hashmap"; d_mod = (module Dstruct.Hash_map.Make); hp_compatible = true };
    { d_name = "bonsai"; d_mod = (module Dstruct.Bonsai.Make); hp_compatible = false };
    { d_name = "nmtree"; d_mod = (module Dstruct.Nm_tree.Make); hp_compatible = true };
  ]

(* Scheme lookup is forgiving about punctuation ("hyaline-1s",
   "Hyaline_1S" and "hyaline1s" are the same name) and accepts the
   literature's usual aliases, so CLI flags like
   --schemes ebr,hyaline,hyaline1s resolve without the user knowing
   our canonical spelling. *)
let normalize_scheme_name name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
      | _ -> ())
    name;
  match Buffer.contents b with "ebr" -> "epoch" | n -> n

let find_scheme name =
  let wanted = normalize_scheme_name name in
  match
    List.find_opt (fun s -> normalize_scheme_name s.s_name = wanted) schemes
  with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scheme %S (known: %s)" name
           (String.concat ", " (List.map (fun s -> s.s_name) schemes)))

(* Head-backend selection: map a scheme to its sibling over another
   backend ("Hyaline-S" -> "Hyaline-S(packed)").  The base name (no
   suffix) is each family's default backend — dwcas for the slotted
   schemes, the boxed word for Hyaline-1/1S — so [~backend:"default"]
   strips any suffix.  Schemes without the requested variant (the
   baselines; Hyaline-1 under llsc) are returned unchanged: a sweep
   stays total over its scheme list. *)
let with_backend (s : scheme) ~backend =
  let base =
    match String.index_opt s.s_name '(' with
    | Some i -> String.sub s.s_name 0 i
    | None -> s.s_name
  in
  let wanted =
    match backend with
    | "default" | "dwcas" | "boxed" -> base
    | b -> base ^ "(" ^ b ^ ")"
  in
  let wanted = normalize_scheme_name wanted in
  match
    List.find_opt (fun s -> normalize_scheme_name s.s_name = wanted) schemes
  with
  | Some s -> s
  | None -> s

(* Name-level [with_backend] for CLI sweep lists ([Figures] addresses
   schemes by name). *)
let scheme_with_backend name ~backend =
  (with_backend (find_scheme name) ~backend).s_name

let find_structure name =
  match List.find_opt (fun d -> d.d_name = String.lowercase_ascii name) structures with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "unknown structure %S (known: %s)" name
           (String.concat ", " (List.map (fun d -> d.d_name) structures)))

let compatible ~structure ~scheme =
  structure.hp_compatible || not scheme.pointer_grained

(** Instantiate a benchmark map for a (structure, scheme) pair. *)
let make_map (d : structure) (s : scheme) : (module Dstruct.Map_intf.S) =
  let module Mk = (val d.d_mod : Dstruct.Map_intf.MAKER) in
  let module T = (val s.s_mod : Smr.Tracker.S) in
  (module Mk (T))
