(* Tests for the observability layer: event rings, the log-scaled lag
   histogram, the probe no-op contract, and the assembled recorder. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Ring                                                               *)

let all_kinds =
  [ Obs.Ring.Alloc; Retire; Free; Enter; Leave; Trim ]

let test_ring_kind_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Obs.Ring.kind_name k) true
        (Obs.Ring.kind_of_int (Obs.Ring.kind_to_int k) = k))
    all_kinds;
  Alcotest.(check int) "n_kinds" (List.length all_kinds) Obs.Ring.n_kinds

let test_ring_fill_no_wrap () =
  let r = Obs.Ring.create ~capacity:8 in
  for i = 0 to 4 do
    Obs.Ring.record r ~at:(100 + i) ~kind:Obs.Ring.Alloc ~info:i
  done;
  Alcotest.(check int) "total" 5 (Obs.Ring.total r);
  Alcotest.(check int) "length" 5 (Obs.Ring.length r);
  Alcotest.(check int) "dropped" 0 (Obs.Ring.dropped r);
  let evs = Obs.Ring.snapshot r in
  Alcotest.(check int) "snapshot size" 5 (Array.length evs);
  Array.iteri
    (fun i (e : Obs.Ring.event) ->
      Alcotest.(check int) "at oldest-first" (100 + i) e.at;
      Alcotest.(check int) "info" i e.info)
    evs

let test_ring_wraparound () =
  (* Capacity 4, 10 records: the ring must hold exactly the last 4,
     oldest first, and account for the 6 overwritten. *)
  let r = Obs.Ring.create ~capacity:4 in
  for i = 0 to 9 do
    let kind = if i mod 2 = 0 then Obs.Ring.Retire else Obs.Ring.Free in
    Obs.Ring.record r ~at:i ~kind ~info:(10 * i)
  done;
  Alcotest.(check int) "total" 10 (Obs.Ring.total r);
  Alcotest.(check int) "length" 4 (Obs.Ring.length r);
  Alcotest.(check int) "dropped" 6 (Obs.Ring.dropped r);
  let evs = Obs.Ring.snapshot r in
  Alcotest.(check (list int))
    "last four, oldest first" [ 6; 7; 8; 9 ]
    (Array.to_list evs |> List.map (fun (e : Obs.Ring.event) -> e.at));
  Array.iter
    (fun (e : Obs.Ring.event) ->
      Alcotest.(check int) "info rides along" (10 * e.at) e.info;
      Alcotest.(check bool)
        "kind rides along" true
        (e.kind = if e.at mod 2 = 0 then Obs.Ring.Retire else Obs.Ring.Free))
    evs;
  let counts = Obs.Ring.counts_by_kind r in
  Alcotest.(check int)
    "held retires" 2
    counts.(Obs.Ring.kind_to_int Obs.Ring.Retire);
  Alcotest.(check int)
    "held frees" 2
    counts.(Obs.Ring.kind_to_int Obs.Ring.Free)

let test_ring_capacity_one () =
  let r = Obs.Ring.create ~capacity:1 in
  for i = 1 to 3 do
    Obs.Ring.record r ~at:i ~kind:Obs.Ring.Enter ~info:0
  done;
  let evs = Obs.Ring.snapshot r in
  Alcotest.(check int) "holds one" 1 (Array.length evs);
  Alcotest.(check int) "the newest" 3 evs.(0).Obs.Ring.at;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity <= 0") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Hist                                                               *)

let test_hist_bucket_edges () =
  (* Bucket 0 is {0, 1}; bucket b >= 1 is [2^b, 2^(b+1)). *)
  Alcotest.(check int) "0" 0 (Obs.Hist.bucket_of_value 0);
  Alcotest.(check int) "1" 0 (Obs.Hist.bucket_of_value 1);
  Alcotest.(check int) "2" 1 (Obs.Hist.bucket_of_value 2);
  Alcotest.(check int) "3" 1 (Obs.Hist.bucket_of_value 3);
  Alcotest.(check int) "4" 2 (Obs.Hist.bucket_of_value 4);
  Alcotest.(check int) "7" 2 (Obs.Hist.bucket_of_value 7);
  Alcotest.(check int) "8" 3 (Obs.Hist.bucket_of_value 8);
  (* max_int = 2^62 - 1 on 64-bit: top of bucket 61, inside range. *)
  Alcotest.(check bool) "max_int fits a bucket" true
    (Obs.Hist.bucket_of_value max_int < Obs.Hist.n_buckets);
  Alcotest.(check int) "max_int shares 2^61's bucket"
    (Obs.Hist.bucket_of_value (1 lsl 61))
    (Obs.Hist.bucket_of_value max_int);
  for b = 1 to 20 do
    let lo = Obs.Hist.bucket_lo b and hi = Obs.Hist.bucket_hi b in
    Alcotest.(check int) "lo = 2^b" (1 lsl b) lo;
    Alcotest.(check int) "hi = 2^(b+1) - 1" ((1 lsl (b + 1)) - 1) hi;
    Alcotest.(check int) "lo maps to b" b (Obs.Hist.bucket_of_value lo);
    Alcotest.(check int) "hi maps to b" b (Obs.Hist.bucket_of_value hi)
  done

let test_hist_basic_stats () =
  let h = Obs.Hist.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Hist.count h);
  Alcotest.(check int) "empty percentile" 0 (Obs.Hist.percentile h 0.99);
  List.iter (Obs.Hist.add h) [ 1; 100; 10_000 ];
  Alcotest.(check int) "count" 3 (Obs.Hist.count h);
  Alcotest.(check int) "sum" 10_101 (Obs.Hist.sum h);
  Alcotest.(check int) "max exact" 10_000 (Obs.Hist.max_value h);
  Alcotest.(check (float 0.001)) "mean" 3367.0 (Obs.Hist.mean h);
  (* Negative samples clamp into bucket 0 rather than crashing. *)
  Obs.Hist.add h (-5);
  Alcotest.(check int) "negative clamps" 4 (Obs.Hist.count h);
  let lo0, _, c0 = List.hd (Obs.Hist.buckets h) in
  Alcotest.(check int) "bucket 0 lo" 0 lo0;
  Alcotest.(check int) "bucket 0 holds 1 and the clamp" 2 c0

let test_hist_percentile_conservative () =
  (* The reported quantile is the containing bucket's upper edge
     clamped by the exact max: never below the true quantile, and
     never above the largest sample. *)
  let h = Obs.Hist.create () in
  let samples = List.init 100 (fun i -> (i + 1) * 10) in
  List.iter (Obs.Hist.add h) samples;
  let exact q =
    List.nth samples
      (max 0 (int_of_float (ceil (q *. 100.)) - 1))
  in
  List.iter
    (fun q ->
      let p = Obs.Hist.percentile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f upper-bounds exact" (q *. 100.))
        true
        (p >= exact q);
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f <= max" (q *. 100.))
        true
        (p <= Obs.Hist.max_value h))
    [ 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check int) "p100 is the exact max" 1000
    (Obs.Hist.percentile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Hist.percentile: q outside [0,1]") (fun () ->
      ignore (Obs.Hist.percentile h 1.5))

let test_hist_merge_clear () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.add a) [ 5; 50 ];
  List.iter (Obs.Hist.add b) [ 500; 5000 ];
  Obs.Hist.merge ~into:a b;
  Alcotest.(check int) "merged count" 4 (Obs.Hist.count a);
  Alcotest.(check int) "merged sum" 5555 (Obs.Hist.sum a);
  Alcotest.(check int) "merged max" 5000 (Obs.Hist.max_value a);
  Alcotest.(check int) "src untouched" 2 (Obs.Hist.count b);
  Obs.Hist.clear a;
  Alcotest.(check int) "cleared count" 0 (Obs.Hist.count a);
  Alcotest.(check int) "cleared max" 0 (Obs.Hist.max_value a);
  Alcotest.(check (list (triple int int int))) "cleared buckets" []
    (Obs.Hist.buckets a)

let prop_hist_percentile_bounds =
  QCheck.Test.make ~name:"hist percentile always in [true quantile, max]"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 1_000_000))
    (fun samples ->
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.add h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      List.for_all
        (fun q ->
          let p = Obs.Hist.percentile h q in
          let rank = max 0 (int_of_float (ceil (q *. float_of_int n)) - 1) in
          p >= List.nth sorted rank && p <= List.nth sorted (n - 1))
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

(* ------------------------------------------------------------------ *)
(* Probe                                                              *)

let test_probe_noop () =
  Alcotest.(check bool) "noop is noop" true (Obs.Probe.is_noop Obs.Probe.noop);
  (* A structurally identical literal must NOT be the noop: the guard
     is physical equality, so instrumented probes built as literals are
     always detected as instrumented. *)
  let look_alike =
    {
      Obs.Probe.alloc = (fun ~tid:_ -> ());
      retire = (fun ~tid:_ -> ());
      free = (fun ~tid:_ ~lag_ns:_ -> ());
      enter = (fun ~tid:_ -> ());
      leave = (fun ~tid:_ -> ());
      trim = (fun ~tid:_ -> ());
    }
  in
  Alcotest.(check bool) "literal is not noop" false
    (Obs.Probe.is_noop look_alike)

let test_instrument_wrap_noop_is_identity () =
  (* The zero-cost contract: wrapping with the noop probe returns the
     scheme module physically unchanged, so uninstrumented runs are
     bit-identical to never having heard of lib/obs. *)
  let packed = (Workload.Registry.find_scheme "Epoch").Workload.Registry.s_mod in
  let wrapped = Smr.Instrument.wrap Obs.Probe.noop packed in
  Alcotest.(check bool) "physically unchanged" true (wrapped == packed);
  let r = Obs.Recorder.create ~nthreads:1 () in
  let instrumented = Smr.Instrument.wrap (Obs.Recorder.probe r) packed in
  Alcotest.(check bool) "real probe wraps" true (instrumented != packed)

let test_instrument_wrap_records () =
  (* Drive a wrapped tracker directly and check events flow into the
     recorder: enter/leave per operation, retire/free per block, and a
     non-garbage lag sample per free. *)
  let r = Obs.Recorder.create ~nthreads:2 () in
  let module T =
    (val Smr.Instrument.wrap (Obs.Recorder.probe r)
           (module Smr.Unsafe_immediate : Smr.Tracker.S))
  in
  let cfg = { Smr.Config.default with Smr.Config.nthreads = 2 } in
  let t = T.create cfg in
  let hdrs = Array.init 4 (fun _ -> Smr.Hdr.create ()) in
  for tid = 0 to 1 do
    T.enter t ~tid;
    T.retire t ~tid hdrs.((2 * tid) + 0);
    T.retire t ~tid hdrs.((2 * tid) + 1);
    T.leave t ~tid
  done;
  Alcotest.(check int) "enters" 2 (Obs.Recorder.events_total r Obs.Ring.Enter);
  Alcotest.(check int) "leaves" 2 (Obs.Recorder.events_total r Obs.Ring.Leave);
  Alcotest.(check int) "retires" 4
    (Obs.Recorder.events_total r Obs.Ring.Retire);
  (* UnsafeImmediate frees at retire time, so all four are freed. *)
  Alcotest.(check int) "frees" 4 (Obs.Recorder.events_total r Obs.Ring.Free);
  let h = Obs.Recorder.lag_hist r in
  Alcotest.(check int) "one lag sample per free" 4 (Obs.Hist.count h);
  (* Immediate reclamation: lag must be tiny (well under a second). *)
  Alcotest.(check bool) "lags sane" true
    (Obs.Hist.max_value h < 1_000_000_000)

(* ------------------------------------------------------------------ *)
(* Recorder                                                           *)

let test_recorder_rings_and_totals () =
  let r = Obs.Recorder.create ~ring_capacity:8 ~nthreads:2 () in
  let p = Obs.Recorder.probe r in
  p.Obs.Probe.alloc ~tid:0;
  p.Obs.Probe.alloc ~tid:1;
  p.Obs.Probe.enter ~tid:0;
  (* Out-of-range tids are counted but land in no ring. *)
  p.Obs.Probe.alloc ~tid:7;
  Alcotest.(check int) "alloc total includes stray tid" 3
    (Obs.Recorder.events_total r Obs.Ring.Alloc);
  let rings = Obs.Recorder.rings r in
  Alcotest.(check int) "one ring per thread" 2 (Array.length rings);
  Alcotest.(check int) "tid 0 ring" 2 (Obs.Ring.total rings.(0));
  Alcotest.(check int) "tid 1 ring" 1 (Obs.Ring.total rings.(1));
  p.Obs.Probe.free ~tid:0 ~lag_ns:4096;
  Alcotest.(check int) "free lag sampled" 1
    (Obs.Hist.count (Obs.Recorder.lag_hist r));
  Alcotest.(check int) "free lag value" 4096
    (Obs.Hist.max_value (Obs.Recorder.lag_hist r))

let test_recorder_gauges () =
  let r = Obs.Recorder.create ~nthreads:1 () in
  Alcotest.(check (option int)) "absent" None
    (Obs.Recorder.gauge r ~name:"limbo_total");
  Obs.Recorder.set_gauge r ~name:"limbo_total" 17;
  Obs.Recorder.set_gauge r ~name:"mpool_live" 3;
  Obs.Recorder.set_gauge r ~name:"limbo_total" 21;
  Alcotest.(check (option int)) "last write wins" (Some 21)
    (Obs.Recorder.gauge r ~name:"limbo_total");
  Alcotest.(check (list (pair string int)))
    "first-registration order"
    [ ("limbo_total", 21); ("mpool_live", 3) ]
    (Obs.Recorder.gauges r)

let test_recorder_prometheus () =
  let r = Obs.Recorder.create ~nthreads:1 () in
  let p = Obs.Recorder.probe r in
  p.Obs.Probe.retire ~tid:0;
  p.Obs.Probe.free ~tid:0 ~lag_ns:100;
  Obs.Recorder.set_gauge r ~name:"batch pending.max" 5;
  let text = Obs.Recorder.prometheus r in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "smr_events_total{kind=\"retire\"} 1";
      "smr_events_total{kind=\"free\"} 1";
      "smr_reclamation_lag_ns";
      "_count 1";
      (* Gauge names are sanitized to the Prometheus charset. *)
      "batch_pending_max 5";
    ]

let suites =
  [
    ( "obs.ring",
      [
        Alcotest.test_case "kind roundtrip" `Quick test_ring_kind_roundtrip;
        Alcotest.test_case "fill without wrap" `Quick test_ring_fill_no_wrap;
        Alcotest.test_case "wraparound keeps newest" `Quick
          test_ring_wraparound;
        Alcotest.test_case "capacity one / zero" `Quick test_ring_capacity_one;
      ] );
    ( "obs.hist",
      [
        Alcotest.test_case "bucket edges" `Quick test_hist_bucket_edges;
        Alcotest.test_case "count/sum/max/mean, negative clamp" `Quick
          test_hist_basic_stats;
        Alcotest.test_case "percentile is a tight upper bound" `Quick
          test_hist_percentile_conservative;
        Alcotest.test_case "merge and clear" `Quick test_hist_merge_clear;
        qcheck prop_hist_percentile_bounds;
      ] );
    ( "obs.probe",
      [
        Alcotest.test_case "noop identity" `Quick test_probe_noop;
        Alcotest.test_case "wrap noop = physical identity" `Quick
          test_instrument_wrap_noop_is_identity;
        Alcotest.test_case "wrap records lifecycle events" `Quick
          test_instrument_wrap_records;
      ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "rings and totals" `Quick
          test_recorder_rings_and_totals;
        Alcotest.test_case "gauges" `Quick test_recorder_gauges;
        Alcotest.test_case "prometheus exposition" `Quick
          test_recorder_prometheus;
      ] );
  ]
