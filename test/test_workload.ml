(* Tests for the benchmark harness itself: registry integrity, driver
   invariants (ops counted, reclamation books balanced, stalled
   threads joined), trim mode, and the figure definitions. *)

open Workload

let quick_params ~threads =
  {
    Driver.default_params with
    Driver.threads;
    duration = 0.08;
    prefill = 200;
    key_range = 1_000;
    cfg = Smr.Config.paper ~nthreads:threads;
    sample_every = 0.002;
  }

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_lookup () =
  let s = Registry.find_scheme "hyaline" in
  Alcotest.(check string) "case-insensitive" "Hyaline" s.Registry.s_name;
  let d = Registry.find_structure "hashmap" in
  Alcotest.(check string) "structure" "hashmap" d.Registry.d_name;
  (match Registry.find_scheme "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown scheme accepted");
  match Registry.find_structure "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown structure accepted"

let test_registry_counts () =
  Alcotest.(check int) "17 schemes" 17 (List.length Registry.schemes);
  Alcotest.(check int) "4 structures" 4 (List.length Registry.structures)

let test_registry_names_unique () =
  let names = List.map (fun s -> s.Registry.s_name) Registry.schemes in
  Alcotest.(check int) "unique scheme names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_with_backend () =
  let check name backend expect =
    Alcotest.(check string)
      (Printf.sprintf "%s + %s" name backend)
      expect
      (Registry.scheme_with_backend name ~backend)
  in
  check "Hyaline" "packed" "Hyaline(packed)";
  check "Hyaline-S" "packed" "Hyaline-S(packed)";
  check "Hyaline-1" "packed" "Hyaline-1(packed)";
  check "Hyaline-1S" "packed" "Hyaline-1S(packed)";
  check "Hyaline" "llsc" "Hyaline(llsc)";
  (* Re-basing a suffixed scheme swaps the backend, not stacks it. *)
  check "Hyaline(llsc)" "packed" "Hyaline(packed)";
  check "Hyaline(packed)" "default" "Hyaline";
  check "Hyaline" "dwcas" "Hyaline";
  (* Schemes without the variant pass through unchanged so mapping a
     sweep list stays total. *)
  check "Epoch" "packed" "Epoch";
  check "HP" "packed" "HP";
  check "Hyaline-1" "llsc" "Hyaline-1"

let test_compatibility_matrix () =
  let bonsai = Registry.find_structure "bonsai" in
  let hp = Registry.find_scheme "HP" in
  let he = Registry.find_scheme "HE" in
  let ebr = Registry.find_scheme "Epoch" in
  Alcotest.(check bool) "no HP on bonsai" false
    (Registry.compatible ~structure:bonsai ~scheme:hp);
  Alcotest.(check bool) "no HE on bonsai" false
    (Registry.compatible ~structure:bonsai ~scheme:he);
  Alcotest.(check bool) "Epoch on bonsai ok" true
    (Registry.compatible ~structure:bonsai ~scheme:ebr);
  let list = Registry.find_structure "list" in
  Alcotest.(check bool) "HP on list ok" true
    (Registry.compatible ~structure:list ~scheme:hp)

let test_registry_instantiates_all_pairs () =
  List.iter
    (fun d ->
      List.iter
        (fun s ->
          if Registry.compatible ~structure:d ~scheme:s then begin
            let module M =
              (val Registry.make_map d s : Dstruct.Map_intf.S)
            in
            let m = M.create ~cfg:(Smr.Config.paper ~nthreads:2) () in
            M.enter m ~tid:0;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s insert" d.Registry.d_name
                 s.Registry.s_name)
              true (M.insert m ~tid:0 1 1);
            Alcotest.(check (option int)) "get" (Some 1) (M.get m ~tid:0 1);
            M.leave m ~tid:0
          end)
        Registry.schemes)
    Registry.structures

(* ------------------------------------------------------------------ *)
(* Driver *)

let test_driver_basic_run () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline" in
  let r = Driver.run ~structure ~scheme (quick_params ~threads:2) in
  Alcotest.(check bool) "did work" true (r.Driver.ops > 0);
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput > 0.0);
  Alcotest.(check bool) "duration sane" true
    (r.Driver.duration > 0.0 && r.Driver.duration < 5.0);
  Alcotest.(check bool) "sampled" true (r.Driver.samples > 0);
  Alcotest.(check bool) "frees <= retires" true
    (r.Driver.frees <= r.Driver.retires)

let test_driver_reclaims_with_every_scheme () =
  let structure = Registry.find_structure "hashmap" in
  List.iter
    (fun (s : Registry.scheme) ->
      let r = Driver.run ~structure ~scheme:s (quick_params ~threads:2) in
      if s.Registry.s_name <> "Leaky" then
        Alcotest.(check bool)
          (Printf.sprintf "%s reclaims (%d/%d)" s.Registry.s_name
             r.Driver.frees r.Driver.retires)
          true
          (r.Driver.frees > 0))
    Registry.schemes

let test_driver_stalled_threads_join () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline-S" in
  let p = { (quick_params ~threads:1) with Driver.stalled = 2 } in
  let p = { p with Driver.cfg = Smr.Config.paper ~nthreads:3 } in
  let r = Driver.run ~structure ~scheme p in
  (* If stalled domains failed to join, run would hang (test timeout
     would catch it); check bookkeeping instead. *)
  Alcotest.(check int) "stalled recorded" 2 r.Driver.stalled;
  Alcotest.(check bool) "worker made progress" true (r.Driver.ops > 0)

let test_driver_trim_mode () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline" in
  let p = { (quick_params ~threads:2) with Driver.use_trim = true } in
  let r = Driver.run ~structure ~scheme p in
  Alcotest.(check bool) "trim mode works" true (r.Driver.ops > 0);
  Alcotest.(check bool) "trim mode reclaims" true (r.Driver.frees > 0)

let test_driver_rejects_incompatible () =
  let structure = Registry.find_structure "bonsai" in
  let scheme = Registry.find_scheme "HP" in
  match Driver.run ~structure ~scheme (quick_params ~threads:1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "HP on bonsai should be rejected"

let test_driver_rejects_bad_prefill () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Leaky" in
  let p = { (quick_params ~threads:1) with Driver.prefill = 900 } in
  match Driver.run ~structure ~scheme p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prefill > key_range/2 should be rejected"

let test_driver_mixes () =
  (* Write-heavy produces retires; read-mostly produces fewer but,
     with node-replacing puts, not zero. *)
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Epoch" in
  let heavy =
    Driver.run ~structure ~scheme
      { (quick_params ~threads:1) with Driver.mix = Driver.write_heavy }
  in
  let mostly =
    Driver.run ~structure ~scheme
      { (quick_params ~threads:1) with Driver.mix = Driver.read_mostly }
  in
  Alcotest.(check bool) "write-heavy retires" true (heavy.Driver.retires > 0);
  Alcotest.(check bool) "read-mostly retires too (puts replace)" true
    (mostly.Driver.retires > 0);
  Alcotest.(check bool) "but fewer per op" true
    (float_of_int mostly.Driver.retires /. float_of_int mostly.Driver.ops
    < float_of_int heavy.Driver.retires /. float_of_int heavy.Driver.ops)

(* ------------------------------------------------------------------ *)
(* Figures *)

let tiny_scale =
  {
    Figures.quick with
    Figures.threads = [ 1 ];
    stalled = [ 0; 1 ];
    duration = 0.05;
    prefill = 100;
    key_range = 400;
    list_prefill = 50;
    list_key_range = 200;
  }

let test_figures_sweep_emits () =
  let rows = ref 0 in
  Figures.sweep ~sc:tiny_scale ~structure_name:"hashmap"
    ~schemes:[ "Epoch"; "Hyaline" ] ~mix:Driver.write_heavy
    ~emit:(fun _ -> incr rows);
  Alcotest.(check int) "2 schemes x 1 thread-count" 2 !rows

let test_figures_sweep_skips_incompatible () =
  let rows = ref 0 in
  Figures.sweep ~sc:tiny_scale ~structure_name:"bonsai"
    ~schemes:[ "HP"; "HE"; "Hyaline" ] ~mix:Driver.write_heavy
    ~emit:(fun _ -> incr rows);
  Alcotest.(check int) "HP/HE skipped on bonsai" 1 !rows

let test_figures_robustness_emits () =
  let rows = ref 0 in
  let adaptive_seen = ref false in
  Figures.robustness ~sc:tiny_scale ~active:1 ~emit:(fun r ->
      incr rows;
      if r.Driver.scheme = "Hyaline-S(adapt)" then adaptive_seen := true);
  (* 8 named schemes + the adaptive extra, per stalled count (0 and 1). *)
  Alcotest.(check int) "rows" 18 !rows;
  Alcotest.(check bool) "adaptive variant present" true !adaptive_seen

let test_figures_trimming_emits () =
  let with_trim = ref 0 and without = ref 0 in
  Figures.trimming ~sc:tiny_scale ~emit:(fun r ->
      if String.length r.Driver.scheme > 5
         && String.sub r.Driver.scheme
              (String.length r.Driver.scheme - 5)
              5
            = "+trim"
      then incr with_trim
      else incr without);
  Alcotest.(check int) "trim rows" 4 !with_trim;
  Alcotest.(check int) "no-trim rows" 4 !without

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table1_renders () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Figures.table1 ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions %s" needle)
        true (contains out needle))
    [ "Hyaline-1S"; "Epoch"; "~O(1)" ]

let suites =
  [
    ( "workload.registry",
      [
        Alcotest.test_case "lookup" `Quick test_registry_lookup;
        Alcotest.test_case "counts" `Quick test_registry_counts;
        Alcotest.test_case "unique names" `Quick test_registry_names_unique;
        Alcotest.test_case "backend selection" `Quick test_with_backend;
        Alcotest.test_case "compatibility matrix" `Quick
          test_compatibility_matrix;
        Alcotest.test_case "all pairs instantiate" `Quick
          test_registry_instantiates_all_pairs;
      ] );
    ( "workload.driver",
      [
        Alcotest.test_case "basic run" `Slow test_driver_basic_run;
        Alcotest.test_case "all schemes reclaim" `Slow
          test_driver_reclaims_with_every_scheme;
        Alcotest.test_case "stalled threads join" `Slow
          test_driver_stalled_threads_join;
        Alcotest.test_case "trim mode" `Slow test_driver_trim_mode;
        Alcotest.test_case "rejects incompatible pair" `Quick
          test_driver_rejects_incompatible;
        Alcotest.test_case "rejects bad prefill" `Quick
          test_driver_rejects_bad_prefill;
        Alcotest.test_case "mix shapes" `Slow test_driver_mixes;
      ] );
    ( "workload.figures",
      [
        Alcotest.test_case "sweep emits" `Slow test_figures_sweep_emits;
        Alcotest.test_case "sweep skips incompatible" `Slow
          test_figures_sweep_skips_incompatible;
        Alcotest.test_case "robustness emits" `Slow
          test_figures_robustness_emits;
        Alcotest.test_case "trimming emits" `Slow test_figures_trimming_emits;
        Alcotest.test_case "table1 renders" `Quick test_table1_renders;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Key distributions *)

let test_keydist_uniform () =
  let d = Keydist.uniform ~range:100 in
  let rng = Prims.Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let k = Keydist.draw d rng in
    if k < 0 || k >= 100 then Alcotest.fail "out of range"
  done;
  Alcotest.(check int) "range" 100 (Keydist.range d);
  Alcotest.(check string) "label" "uniform" (Keydist.describe d)

let test_keydist_zipf_range_and_skew () =
  let range = 200 in
  let freq theta =
    let d = Keydist.zipf ~theta ~range () in
    let rng = Prims.Rng.create ~seed:7 in
    let hits = Array.make range 0 in
    for _ = 1 to 20_000 do
      let k = Keydist.draw d rng in
      if k < 0 || k >= range then Alcotest.fail "out of range";
      hits.(k) <- hits.(k) + 1
    done;
    hits
  in
  let h1 = freq 0.99 and h2 = freq 1.5 in
  (* Rank 0 is the hottest key and skew grows with theta. *)
  Alcotest.(check bool) "rank0 hot (0.99)" true (h1.(0) > h1.(50));
  Alcotest.(check bool) "hotter at higher theta" true (h2.(0) > h1.(0));
  (* Roughly Zipf: the hottest key under theta=0.99 takes ~1/H_n of
     mass; sanity-bound it between 10% and 30% for n=200. *)
  Alcotest.(check bool)
    (Printf.sprintf "mass share sane (%d/20000)" h1.(0))
    true
    (h1.(0) > 2_000 && h1.(0) < 6_000)

let test_keydist_zipf_deterministic () =
  let d = Keydist.zipf ~range:50 () in
  let a = Prims.Rng.create ~seed:11 and b = Prims.Rng.create ~seed:11 in
  for _ = 1 to 200 do
    Alcotest.(check int) "same stream" (Keydist.draw d a) (Keydist.draw d b)
  done

let test_keydist_invalid () =
  (match Keydist.zipf ~range:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "range 0 accepted");
  match Keydist.zipf ~theta:(-1.0) ~range:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative theta accepted"

let test_driver_zipf_run () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Hyaline" in
  let p =
    {
      (quick_params ~threads:2) with
      Driver.dist = Some (Keydist.zipf ~range:1_000 ());
    }
  in
  let r = Driver.run ~structure ~scheme p in
  Alcotest.(check bool) "skewed run works" true (r.Driver.ops > 0);
  Alcotest.(check bool) "reclaims" true (r.Driver.frees > 0)

let test_run_many_aggregates () =
  let structure = Registry.find_structure "hashmap" in
  let scheme = Registry.find_scheme "Epoch" in
  let p = quick_params ~threads:1 in
  let one = Driver.run ~structure ~scheme p in
  let three = Driver.run_many ~repeat:3 ~structure ~scheme p in
  Alcotest.(check bool) "ops accumulate over repeats" true
    (three.Driver.ops > one.Driver.ops);
  Alcotest.(check bool) "duration accumulates" true
    (three.Driver.duration > 2.5 *. one.Driver.duration /. 2.0);
  Alcotest.(check bool) "throughput same order" true
    (three.Driver.throughput > one.Driver.throughput /. 4.0
    && three.Driver.throughput < one.Driver.throughput *. 4.0)

let extra_suites =
  [
    ( "workload.keydist",
      [
        Alcotest.test_case "uniform" `Quick test_keydist_uniform;
        Alcotest.test_case "zipf range and skew" `Quick
          test_keydist_zipf_range_and_skew;
        Alcotest.test_case "zipf deterministic" `Quick
          test_keydist_zipf_deterministic;
        Alcotest.test_case "invalid args" `Quick test_keydist_invalid;
        Alcotest.test_case "driver under zipf" `Slow test_driver_zipf_run;
        Alcotest.test_case "run_many aggregates" `Slow
          test_run_many_aggregates;
      ] );
  ]

let suites = suites @ extra_suites
